// Reproduces Figure 6: increase in the number of triples after the first
// bootstrap cycle for the three RNN configurations (2 epochs, 10 epochs,
// 2 epochs + cleaning).

#include <iostream>

#include "table23_runner.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Figure 6 — triple increase after cycle 1, RNN configs",
              options);
  Table23Results results = RunTable23(
      options,
      {"RNN 2 epochs", "RNN 10 epochs", "RNN 2 epochs + cleaning"});

  TablePrinter table(
      "Fig. 6 — triples added by the first cycle (vs seed)");
  table.SetHeader({"Category", "seed", "RNN 2 ep", "RNN 10 ep",
                   "RNN 2 ep + cleaning"});
  int overfit_wins = 0;
  int cleaning_smallest = 0;
  for (datagen::CategoryId id : datagen::PaperTableCategories()) {
    const std::string name = datagen::CategoryName(id);
    const size_t seed = results.seed_triples.at(name);
    const auto gain = [&](const char* label) {
      const size_t total = results.triples.at(label).at(name);
      return total > seed ? total - seed : 0;
    };
    const size_t g2 = gain("RNN 2 epochs");
    const size_t g10 = gain("RNN 10 epochs");
    const size_t g2c = gain("RNN 2 epochs + cleaning");
    if (g10 >= g2) ++overfit_wins;
    if (g2c <= g2 && g2c <= g10) ++cleaning_smallest;
    table.AddRow({name, std::to_string(seed), std::to_string(g2),
                  std::to_string(g10), std::to_string(g2c)});
  }
  table.Print(std::cout);
  std::cout << "\nShape checks (paper): 10 epochs adds far more triples\n"
            << "than 2 epochs (" << overfit_wins
            << "/8 here) — at the Table II precision cost — and the\n"
            << "cleaned configuration adds the least ("
            << cleaning_smallest << "/8 here) while keeping precision.\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
