#ifndef PAE_BENCH_TABLE23_RUNNER_H_
#define PAE_BENCH_TABLE23_RUNNER_H_

#include <map>
#include <string>
#include <vector>

#include "experiment_lib.h"

namespace pae::bench {

/// The five system configurations of Tables II/III, in paper row order.
struct Table23Config {
  std::string label;      // "RNN 2 epochs", ...
  core::PipelineConfig config;
};
std::vector<Table23Config> Table23Configs();

/// Result of the shared first-iteration experiment behind Tables II/III
/// and Figures 4/6: metrics[config label][category name].
struct Table23Results {
  std::map<std::string, std::map<std::string, core::TripleMetrics>> metrics;
  /// Seed-stage triple counts per category (baseline for Fig. 6).
  std::map<std::string, size_t> seed_triples;
  /// First-iteration triple counts per config/category (Fig. 6).
  std::map<std::string, std::map<std::string, size_t>> triples;
};

/// Runs the 5-config × 8-category experiment (1 bootstrap iteration).
/// `config_filter`: run only configs whose label is listed (empty = all).
Table23Results RunTable23(const BenchOptions& options,
                          const std::vector<std::string>& config_filter = {});

/// Paper values for Table II (precision) and Table III (coverage),
/// keyed [config label][category name].
const std::map<std::string, std::map<std::string, double>>&
PaperTable2Precision();
const std::map<std::string, std::map<std::string, double>>&
PaperTable3Coverage();

}  // namespace pae::bench

#endif  // PAE_BENCH_TABLE23_RUNNER_H_
