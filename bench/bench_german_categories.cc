// Reproduces the German-language results of §VII-B/C: precision,
// coverage, and triple counts for the three German categories (mailbox,
// coffee machines, garden) with the full CRF pipeline.

#include <iostream>
#include <map>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

struct PaperRow {
  double precision;
  double coverage;
  int triples;
};

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("§VII-B/C — German categories (full CRF pipeline)", options);

  const std::map<datagen::CategoryId, PaperRow> paper = {
      {datagen::CategoryId::kMailboxDe, {94.36, 73.0, 2943}},
      {datagen::CategoryId::kCoffeeMachinesDe, {92.0, 57.3, 1626}},
      {datagen::CategoryId::kGardenDe, {84.2, 87.03, 2096}},
  };

  TablePrinter table("German categories (paper / measured)");
  table.SetHeader({"Category", "Precision %", "Coverage %", "#Triples"});
  for (const auto& [id, row] : paper) {
    const PreparedCategory& category = Prepare(id, options);
    std::cerr << "[german] " << datagen::CategoryName(id) << "\n";
    core::PipelineResult result =
        RunPipeline(category, CrfConfig(/*iterations=*/5, true));
    core::TripleMetrics metrics = Evaluate(category, result.final_triples());
    table.AddRow({datagen::CategoryName(id),
                  PaperVsMeasured(row.precision, metrics.precision),
                  PaperVsMeasured(row.coverage, metrics.coverage),
                  std::to_string(row.triples) + " / " +
                      std::to_string(metrics.total)});
  }
  table.Print(std::cout);
  std::cout << "\nShape checks (paper): results for German are comparable\n"
            << "to the Japanese categories — high precision with good\n"
            << "coverage, garden again the weakest on precision. The\n"
            << "pipeline is unchanged except tokenizer + PoS resources.\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
