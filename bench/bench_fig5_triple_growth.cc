// Reproduces Figure 5: total number of triples of different categories
// through bootstrap iterations, using CRF with cleaning.

#include <iostream>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

const std::vector<datagen::CategoryId>& Fig5Categories() {
  static const auto* kCategories = new std::vector<datagen::CategoryId>{
      datagen::CategoryId::kTennis,
      datagen::CategoryId::kCosmetics,
      datagen::CategoryId::kLadiesBags,
      datagen::CategoryId::kVacuumCleaner,
  };
  return *kCategories;
}

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Figure 5 — triple counts across iterations (CRF + cleaning)",
              options);

  TablePrinter table("Fig. 5 — number of triples per iteration");
  std::vector<std::string> header = {"Category", "seed"};
  for (int it = 1; it <= 5; ++it) {
    header.push_back("iter " + std::to_string(it));
  }
  table.SetHeader(header);

  for (datagen::CategoryId id : Fig5Categories()) {
    const PreparedCategory& category = Prepare(id, options);
    std::cerr << "[fig5] " << datagen::CategoryName(id) << "\n";
    core::PipelineResult result =
        RunPipeline(category, CrfConfig(/*iterations=*/5, true));
    std::vector<std::string> row = {datagen::CategoryName(id)};
    // Per-iteration totals come straight from the pipeline's recorded
    // IterationStats — no re-scoring of every snapshot against the
    // truth sample just to count triples.
    row.push_back(std::to_string(result.seed_triples.size()));
    for (const core::IterationStats& stats : result.iteration_stats) {
      row.push_back(std::to_string(stats.cumulative_triples));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nShape checks (paper): a steady increase whose per-\n"
            << "iteration gains shrink — continuing past 5 iterations\n"
            << "would yield diminishing returns (§VII-C).\n";
  MaybeWriteMetricsReport();
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
