#ifndef PAE_BENCH_EXPERIMENT_LIB_H_
#define PAE_BENCH_EXPERIMENT_LIB_H_

#include <map>
#include <string>
#include <vector>

#include "core/bootstrap.h"
#include "core/eval.h"
#include "datagen/generator.h"

namespace pae::bench {

/// Scale knobs shared by all experiment binaries. Overridable via
/// environment: PAE_PRODUCTS (products per category), PAE_SEED,
/// PAE_THREADS (0 = all hardware threads; results are identical for
/// every value, only wall-clock changes).
/// Defaults are sized so each binary finishes in minutes on one core;
/// the shapes are stable from a few hundred products up.
struct BenchOptions {
  int num_products = 300;
  uint64_t seed = 42;
  int threads = 0;

  static BenchOptions FromEnv(int default_products = 300);
};

/// One experiment arm: a model/cleaning configuration with a label.
struct Arm {
  std::string label;
  core::PipelineConfig config;
};

/// Pre-canned arms matching the paper's configurations.
core::PipelineConfig CrfConfig(int iterations, bool cleaning);
core::PipelineConfig RnnConfig(int iterations, int epochs, bool cleaning);

/// A cached generated + processed category (generation is deterministic,
/// so binaries can rebuild identical corpora).
struct PreparedCategory {
  datagen::GeneratedCategory generated;
  core::ProcessedCorpus corpus;

  size_t num_products() const { return corpus.pages.size(); }
};

/// Generates + preprocesses one category (cached per process).
const PreparedCategory& Prepare(datagen::CategoryId id,
                                const BenchOptions& options);

/// Runs the pipeline on a prepared category; aborts the binary on error.
core::PipelineResult RunPipeline(const PreparedCategory& category,
                                 const core::PipelineConfig& config);

/// Evaluates triples against the category's truth sample.
core::TripleMetrics Evaluate(const PreparedCategory& category,
                             const std::vector<core::Triple>& triples);

/// Formats "paper / measured" cell content.
std::string PaperVsMeasured(double paper, double measured, int digits = 2);

/// Prints the standard bench header (scale, seed, reproduction note).
void PrintHeader(const std::string& title, const BenchOptions& options);

/// Writes the global metrics registry's JSON run report to the path in
/// $PAE_METRICS_OUT, if set ("-" = stdout). No-op otherwise. Benches
/// call this once at exit so experiment runs leave the same structured
/// telemetry as `pae-extract --metrics-out`.
void MaybeWriteMetricsReport();

}  // namespace pae::bench

#endif  // PAE_BENCH_EXPERIMENT_LIB_H_
