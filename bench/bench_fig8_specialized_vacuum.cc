// Reproduces Figure 8: increase in the coverage of the Vacuum Cleaner
// attributes (B1 type, B2 container type, B3 power supply type) when
// tagged by a specialized model (§VIII-C/D).

#include "specialized_runner.h"
#include "util/logging.h"

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::RunSpecializedBench(
      "Figure 8 — specialized-model attribute coverage (Vacuum Cleaner)",
      pae::datagen::CategoryId::kVacuumCleaner,
      {"タイプ", "集じん方式", "電源方式"},
      {"B1 type", "B2 container type", "B3 power supply"});
}
