// Extension experiment: quantifying the evaluation bias the paper
// acknowledges in §VI-B. Rakuten's truth sample was produced by the
// system itself, so the paper can only report "coverage" (products with
// a triple) and explicitly cannot measure recall ("it is difficult to
// evaluate how many attributes are left out"). Our synthetic ground
// truth knows every correct triple, so this bench reports, side by
// side: precision, product coverage (the paper's proxy), and TRUE
// triple recall — across bootstrap iterations.

#include <iostream>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Extension — true recall vs the paper's coverage proxy",
              options);

  for (datagen::CategoryId id : {datagen::CategoryId::kVacuumCleaner,
                                 datagen::CategoryId::kLadiesBags,
                                 datagen::CategoryId::kGarden}) {
    const PreparedCategory& category = Prepare(id, options);
    std::cerr << "[recall] " << datagen::CategoryName(id) << "\n";
    core::PipelineResult result =
        RunPipeline(category, CrfConfig(/*iterations=*/5, true));

    TablePrinter table(std::string("CRF + cleaning — ") +
                       datagen::CategoryName(id));
    table.SetHeader({"Stage", "precision %", "coverage %",
                     "oracle recall %"});
    auto add_row = [&](const std::string& stage,
                       const std::vector<core::Triple>& triples) {
      core::TripleMetrics m = Evaluate(category, triples);
      core::OracleMetrics oracle =
          core::EvaluateOracleRecall(triples, category.generated.truth);
      table.AddRow({stage, FormatDouble(m.precision, 2),
                    FormatDouble(m.coverage, 2),
                    FormatDouble(oracle.recall, 2)});
    };
    add_row("seed", result.seed_triples);
    for (size_t i = 0; i < result.triples_after.size(); ++i) {
      add_row("iter " + std::to_string(i + 1), result.triples_after[i]);
    }
    table.Print(std::cout);

    // Attribute-name discovery quality (problem definition 3.1 part i).
    core::AttributeDiscoveryMetrics discovery =
        core::EvaluateAttributeDiscovery(result.seed.attributes,
                                         category.generated.truth);
    std::cout << "  attribute discovery: " << discovery.discovered << "/"
              << discovery.truth_attributes << " canonical attributes ("
              << FormatDouble(discovery.recall, 1) << "%), "
              << discovery.spurious << " spurious names\n";
  }
  std::cout << "\nReading: the paper's product-level coverage is only a\n"
            << "proxy — 'if a product is covered, it does not mean that\n"
            << "all its attributes are tagged' (§VI-C). The oracle column\n"
            << "shows what the proxy hides: true triple recall differs\n"
            << "from coverage at every stage, and grows with iterations\n"
            << "while precision declines — the trade §VI-B could only\n"
            << "describe qualitatively.\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
