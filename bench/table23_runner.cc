#include "table23_runner.h"

#include <algorithm>
#include <iostream>

namespace pae::bench {

std::vector<Table23Config> Table23Configs() {
  return {
      {"RNN 2 epochs", RnnConfig(/*iterations=*/1, /*epochs=*/2,
                                 /*cleaning=*/false)},
      {"RNN 10 epochs", RnnConfig(1, 10, false)},
      {"RNN 2 epochs + cleaning", RnnConfig(1, 2, true)},
      {"CRF", CrfConfig(1, /*cleaning=*/false)},
      {"CRF + cleaning", CrfConfig(1, true)},
  };
}

Table23Results RunTable23(const BenchOptions& options,
                          const std::vector<std::string>& config_filter) {
  Table23Results results;
  for (datagen::CategoryId id : datagen::PaperTableCategories()) {
    const PreparedCategory& category = Prepare(id, options);
    const std::string name = datagen::CategoryName(id);
    bool seed_recorded = false;
    for (const Table23Config& arm : Table23Configs()) {
      if (!config_filter.empty() &&
          std::find(config_filter.begin(), config_filter.end(), arm.label) ==
              config_filter.end()) {
        continue;
      }
      std::cerr << "[table2/3] " << name << " :: " << arm.label << "\n";
      core::PipelineResult result = RunPipeline(category, arm.config);
      if (!seed_recorded) {
        results.seed_triples[name] =
            Evaluate(category, result.seed_triples).total;
        seed_recorded = true;
      }
      core::TripleMetrics metrics =
          Evaluate(category, result.final_triples());
      results.metrics[arm.label][name] = metrics;
      results.triples[arm.label][name] = metrics.total;
    }
  }
  return results;
}

const std::map<std::string, std::map<std::string, double>>&
PaperTable2Precision() {
  static const auto* kPaper = new std::map<
      std::string, std::map<std::string, double>>{
      {"RNN 2 epochs",
       {{"Tennis", 81.29},
        {"Kitchen", 83.61},
        {"Cosmetics", 91.66},
        {"Garden", 64.22},
        {"Shoes", 83.45},
        {"Ladies bags", 85.09},
        {"Digital Cameras", 99.45},
        {"Vacuum Cleaner", 80.28}}},
      {"RNN 10 epochs",
       {{"Tennis", 40.29},
        {"Kitchen", 77.04},
        {"Cosmetics", 40.33},
        {"Garden", 76.62},
        {"Shoes", 53.92},
        {"Ladies bags", 76.12},
        {"Digital Cameras", 98.36},
        {"Vacuum Cleaner", 74.80}}},
      {"RNN 2 epochs + cleaning",
       {{"Tennis", 89.77},
        {"Kitchen", 88.06},
        {"Cosmetics", 91.61},
        {"Garden", 75.53},
        {"Shoes", 91.22},
        {"Ladies bags", 96.25},
        {"Digital Cameras", 99.94},
        {"Vacuum Cleaner", 87.46}}},
      {"CRF",
       {{"Tennis", 92.75},
        {"Kitchen", 89.30},
        {"Cosmetics", 88.97},
        {"Garden", 89.69},
        {"Shoes", 88.69},
        {"Ladies bags", 96.56},
        {"Digital Cameras", 97.79},
        {"Vacuum Cleaner", 92.96}}},
      {"CRF + cleaning",
       {{"Tennis", 94.51},
        {"Kitchen", 89.71},
        {"Cosmetics", 89.81},
        {"Garden", 90.14},
        {"Shoes", 90.36},
        {"Ladies bags", 95.97},
        {"Digital Cameras", 97.79},
        {"Vacuum Cleaner", 93.05}}},
  };
  return *kPaper;
}

const std::map<std::string, std::map<std::string, double>>&
PaperTable3Coverage() {
  static const auto* kPaper = new std::map<
      std::string, std::map<std::string, double>>{
      {"RNN 2 epochs",
       {{"Tennis", 85.85},
        {"Kitchen", 57.8},
        {"Cosmetics", 85.86},
        {"Garden", 39.9},
        {"Shoes", 54.17},
        {"Ladies bags", 90.67},
        {"Digital Cameras", 16.92},
        {"Vacuum Cleaner", 88.4}}},
      {"RNN 10 epochs",
       {{"Tennis", 99.65},
        {"Kitchen", 75.31},
        {"Cosmetics", 99.65},
        {"Garden", 45.11},
        {"Shoes", 83.28},
        {"Ladies bags", 91.44},
        {"Digital Cameras", 22.29},
        {"Vacuum Cleaner", 95.31}}},
      {"RNN 2 epochs + cleaning",
       {{"Tennis", 79.37},
        {"Kitchen", 46.96},
        {"Cosmetics", 80.14},
        {"Garden", 23.84},
        {"Shoes", 47.26},
        {"Ladies bags", 80.95},
        {"Digital Cameras", 16.59},
        {"Vacuum Cleaner", 73.2}}},
      {"CRF",
       {{"Tennis", 56.26},
        {"Kitchen", 46.21},
        {"Cosmetics", 80.18},
        {"Garden", 42.73},
        {"Shoes", 83.01},
        {"Ladies bags", 80.14},
        {"Digital Cameras", 78.07},
        {"Vacuum Cleaner", 74.43}}},
      {"CRF + cleaning",
       {{"Tennis", 50.45},
        {"Kitchen", 42.32},
        {"Cosmetics", 77.53},
        {"Garden", 34.82},
        {"Shoes", 30.11},
        {"Ladies bags", 73.2},
        {"Digital Cameras", 77.24},
        {"Vacuum Cleaner", 70.65}}},
  };
  return *kPaper;
}

}  // namespace pae::bench
