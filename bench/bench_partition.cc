// Extension experiment (§VIII-D future work): the self-supervised
// attribute-partition planner. Plans a global/specialized split from
// held-out seed labels only, then verifies the plan against the real
// truth sample.

#include <iostream>

#include "core/partition.h"
#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/400);
  PrintHeader("Extension — attribute-partition planning (§VIII-D)",
              options);

  for (datagen::CategoryId id : {datagen::CategoryId::kDigitalCameras,
                                 datagen::CategoryId::kVacuumCleaner}) {
    const PreparedCategory& category = Prepare(id, options);
    std::cerr << "[partition] " << datagen::CategoryName(id) << "\n";
    core::PipelineConfig config = CrfConfig(/*iterations=*/1, true);
    auto plan = core::PlanAttributePartition(category.corpus, config,
                                             core::PartitionOptions{});
    if (!plan.ok()) {
      std::cerr << plan.status().ToString() << "\n";
      continue;
    }

    TablePrinter table(std::string("planned partition — ") +
                       datagen::CategoryName(id));
    table.SetHeader({"Attribute", "gold spans", "global R/P",
                     "specialized R/P", "assignment"});
    for (const auto& diag : plan.value().diagnostics) {
      table.AddRow(
          {diag.attribute, std::to_string(diag.gold_spans),
           FormatDouble(100 * diag.global_recall, 1) + " / " +
               FormatDouble(100 * diag.global_precision, 1),
           diag.tried_specialized
               ? FormatDouble(100 * diag.specialized_recall, 1) + " / " +
                     FormatDouble(100 * diag.specialized_precision, 1)
               : "-",
           diag.assign_specialized ? "specialized" : "global"});
    }
    table.Print(std::cout);

    // Verify the plan against the actual truth sample: run the global
    // pipeline and, if a specialized group was planned, the specialized
    // pipeline, and combine their triples.
    core::PipelineResult global = RunPipeline(category, config);
    std::vector<core::Triple> combined = global.final_triples();
    if (!plan.value().specialized_group.empty()) {
      core::PipelineConfig special_config = config;
      special_config.preprocess.attribute_filter =
          plan.value().specialized_group;
      core::PipelineResult special = RunPipeline(category, special_config);
      // Replace the specialized attributes' triples with the
      // specialized model's output.
      std::vector<core::Triple> merged;
      for (const core::Triple& t : combined) {
        bool in_special = false;
        for (const auto& attribute : plan.value().specialized_group) {
          if (t.attribute == attribute) in_special = true;
        }
        if (!in_special) merged.push_back(t);
      }
      for (const core::Triple& t : special.final_triples()) {
        for (const auto& attribute : plan.value().specialized_group) {
          if (t.attribute == attribute) merged.push_back(t);
        }
      }
      combined = std::move(merged);
    }
    core::TripleMetrics global_metrics =
        Evaluate(category, global.final_triples());
    core::TripleMetrics combined_metrics = Evaluate(category, combined);
    std::cout << "  global-only:      precision="
              << FormatDouble(global_metrics.precision, 2)
              << "% coverage=" << FormatDouble(global_metrics.coverage, 2)
              << "%\n"
              << "  planned partition: precision="
              << FormatDouble(combined_metrics.precision, 2)
              << "% coverage=" << FormatDouble(combined_metrics.coverage, 2)
              << "%\n";
  }
  std::cout << "\nExpected shape: the planner only splits attributes whose\n"
            << "specialized model wins on held-out seed labels, so the\n"
            << "combined system should not lose precision while weak\n"
            << "attributes gain coverage (the §VIII-D aspiration).\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
