// Reproduces Table I: precision and coverage of the automatically
// obtained seed instances across the eight Japanese categories.

#include <iostream>
#include <map>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

struct PaperRow {
  int pairs;
  int triples;
  double precision_pairs;
  double precision_triples;
  double coverage_triples;
};

const std::map<std::string, PaperRow>& PaperTable1() {
  static const auto* kPaper = new std::map<std::string, PaperRow>{
      {"Tennis", {296, 2109, 100.0, 98.76, 25.50}},
      {"Kitchen", {467, 1394, 94.06, 93.03, 19.50}},
      {"Cosmetics", {613, 6655, 100.0, 93.08, 36.61}},
      {"Garden", {196, 952, 92.08, 88.52, 8.3}},
      {"Shoes", {156, 697, 93.02, 92.09, 6.47}},
      {"Ladies bags", {723, 5156, 98.45, 98.05, 39.15}},
      {"Digital Cameras", {224, 2157, 95.55, 99.74, 12.14}},
      {"Vacuum Cleaner", {509, 2135, 94.96, 96.45, 27.25}},
  };
  return *kPaper;
}

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/400);
  PrintHeader("Table I — seed precision & coverage", options);

  TablePrinter table("Table I (paper / measured)");
  table.SetHeader({"Category", "#Pairs", "#Triples", "Prec. pairs %",
                   "Prec. triples %", "Coverage triples %"});

  for (datagen::CategoryId id : datagen::PaperTableCategories()) {
    const PreparedCategory& category = Prepare(id, options);
    const std::string name = datagen::CategoryName(id);
    // A 0-iteration pipeline stops after seed construction.
    core::PipelineResult result =
        RunPipeline(category, CrfConfig(/*iterations=*/0, true));

    std::vector<core::AttributeValue> pairs;
    pairs.reserve(result.seed.pairs.size());
    for (const auto& seed_pair : result.seed.pairs) {
      pairs.push_back(
          core::AttributeValue{seed_pair.attribute, seed_pair.value_display});
    }
    core::PairMetrics pair_metrics =
        core::EvaluatePairs(pairs, category.generated.truth);
    core::TripleMetrics triple_metrics =
        Evaluate(category, result.seed_triples);

    const PaperRow& paper = PaperTable1().at(name);
    table.AddRow({
        name,
        std::to_string(paper.pairs) + " / " +
            std::to_string(pair_metrics.total),
        std::to_string(paper.triples) + " / " +
            std::to_string(triple_metrics.total),
        PaperVsMeasured(paper.precision_pairs, pair_metrics.precision),
        PaperVsMeasured(paper.precision_triples, triple_metrics.precision),
        PaperVsMeasured(paper.coverage_triples, triple_metrics.coverage),
    });
  }
  table.Print(std::cout);
  std::cout << "\nShape checks: seed precision high everywhere (>85%);\n"
            << "Garden/Shoes have the smallest coverage, Ladies bags /\n"
            << "Cosmetics the largest; counts scale with corpus size.\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
