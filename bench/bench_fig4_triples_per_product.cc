// Reproduces Figure 4: average number of triples per product obtained by
// CRF and RNN after the first bootstrap iteration, including cleaning.

#include <iostream>

#include "table23_runner.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Figure 4 — triples per product, CRF vs RNN (+cleaning)",
              options);
  // Only the two cleaned arms are needed.
  Table23Results results = RunTable23(
      options, {"CRF + cleaning", "RNN 2 epochs + cleaning"});

  TablePrinter table("Fig. 4 — average triples per product");
  table.SetHeader({"Category", "CRF + cleaning", "RNN 2 ep + cleaning"});
  int crf_wins = 0;
  for (datagen::CategoryId id : datagen::PaperTableCategories()) {
    const std::string name = datagen::CategoryName(id);
    const double crf =
        results.metrics.at("CRF + cleaning").at(name).triples_per_product;
    const double rnn = results.metrics.at("RNN 2 epochs + cleaning")
                           .at(name)
                           .triples_per_product;
    if (crf >= rnn) ++crf_wins;
    table.AddRow({name, FormatDouble(crf, 2), FormatDouble(rnn, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape checks (paper): CRF consistently associates more\n"
            << "triples per product than RNN (" << crf_wins
            << "/8 categories here), and both stay below ~3 properties\n"
            << "per product on average (§VII-C).\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
