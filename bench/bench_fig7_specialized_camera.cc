// Reproduces Figure 7: increase in the coverage of the challenging
// Digital Camera attributes (A1 shutter speed, A2 effective pixels,
// A3 weight) when tagged by a specialized model (§VIII-C/D).

#include "specialized_runner.h"
#include "util/logging.h"

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::RunSpecializedBench(
      "Figure 7 — specialized-model attribute coverage (Digital Cameras)",
      pae::datagen::CategoryId::kDigitalCameras,
      {"シャッタースピード", "有効画素数", "重量"},
      {"A1 shutter speed", "A2 effective pixels", "A3 weight"});
}
