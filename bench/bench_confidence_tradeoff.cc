// Extension experiment: the precision/coverage dial of §II, driven by
// the tagger's posterior confidence. Sweeping the minimum span
// confidence trades coverage for precision — the knob Rakuten's
// "precision over coverage" business requirement asks for.

#include <iostream>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Extension — span-confidence precision/coverage trade-off",
              options);

  const std::vector<datagen::CategoryId> categories = {
      datagen::CategoryId::kGarden, datagen::CategoryId::kVacuumCleaner};
  const double thresholds[] = {0.0, 0.5, 0.8, 0.9, 0.97};

  for (datagen::CategoryId id : categories) {
    const PreparedCategory& category = Prepare(id, options);
    TablePrinter table(std::string("CRF + cleaning, 1 cycle — ") +
                       datagen::CategoryName(id));
    table.SetHeader({"min span confidence", "precision %", "coverage %",
                     "triples"});
    for (double threshold : thresholds) {
      std::cerr << "[confidence] " << datagen::CategoryName(id) << " τ="
                << threshold << "\n";
      core::PipelineConfig config = CrfConfig(/*iterations=*/1, true);
      config.min_span_confidence = threshold;
      core::PipelineResult result = RunPipeline(category, config);
      core::TripleMetrics metrics =
          Evaluate(category, result.final_triples());
      table.AddRow({FormatDouble(threshold, 2),
                    FormatDouble(metrics.precision, 2),
                    FormatDouble(metrics.coverage, 2),
                    std::to_string(metrics.total)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape: triples fall monotonically with the\n"
            << "threshold; precision rises (or holds) while coverage\n"
            << "drops — a smooth dial between the Table II/III corners.\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
