// Microbenchmarks of the computational kernels behind the pipeline:
// CRF forward–backward & Viterbi, LSTM steps, word2vec training,
// HTML parsing and tokenization. google-benchmark based.

#include <benchmark/benchmark.h>

#include <string_view>
#include <unordered_map>

#include "crf/compiled_corpus.h"
#include "crf/crf_model.h"
#include "crf/crf_tagger.h"
#include "crf/feature_extractor.h"
#include "datagen/generator.h"
#include "embed/word2vec.h"
#include "html/parser.h"
#include "html/table_extractor.h"
#include "lstm/lstm_cell.h"
#include "math/kernels.h"
#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pae {
namespace {

// ---- CRF kernels ----

struct CrfFixture {
  crf::CrfModel model;
  crf::CompiledSequence seq;
  std::vector<double> weights;

  CrfFixture(size_t labels, size_t features, size_t length) {
    Rng rng(1);
    for (size_t y = 0; y < labels; ++y) {
      model.AddLabel("L" + std::to_string(y));
    }
    for (size_t f = 0; f < features; ++f) {
      model.AddFeature("F" + std::to_string(f));
    }
    seq.features.resize(length);
    seq.labels.resize(length);
    for (size_t t = 0; t < length; ++t) {
      for (int k = 0; k < 12; ++k) {
        seq.features[t].push_back(
            static_cast<int>(rng.NextBounded(features)));
      }
      seq.labels[t] = static_cast<int>(rng.NextBounded(labels));
    }
    weights.resize(model.WeightDim());
    for (double& w : weights) w = rng.NextGaussian() * 0.1;
  }
};

void BM_CrfSequenceNll(benchmark::State& state) {
  CrfFixture fixture(static_cast<size_t>(state.range(0)), 2000, 15);
  std::vector<double> grad(fixture.weights.size());
  for (auto _ : state) {
    std::fill(grad.begin(), grad.end(), 0.0);
    benchmark::DoNotOptimize(
        fixture.model.SequenceNll(fixture.seq, fixture.weights, &grad));
  }
}
BENCHMARK(BM_CrfSequenceNll)->Arg(9)->Arg(17)->Arg(25);

void BM_CrfViterbi(benchmark::State& state) {
  CrfFixture fixture(static_cast<size_t>(state.range(0)), 2000, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.model.Viterbi(fixture.seq, fixture.weights));
  }
}
BENCHMARK(BM_CrfViterbi)->Arg(9)->Arg(17)->Arg(25);

// ---- LSTM kernels ----

void BM_LstmForward(benchmark::State& state) {
  Rng rng(2);
  const size_t hidden = static_cast<size_t>(state.range(0));
  lstm::LstmParams params(24, hidden);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(15, std::vector<float>(24));
  for (auto& x : inputs) {
    for (float& v : x) v = static_cast<float>(rng.NextGaussian());
  }
  lstm::LstmTrace trace;
  for (auto _ : state) {
    lstm::LstmForward(params, inputs, &trace);
    benchmark::DoNotOptimize(trace.h.back()[0]);
  }
}
BENCHMARK(BM_LstmForward)->Arg(16)->Arg(32)->Arg(64);

void BM_LstmBackward(benchmark::State& state) {
  Rng rng(3);
  const size_t hidden = static_cast<size_t>(state.range(0));
  lstm::LstmParams params(24, hidden);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(15, std::vector<float>(24));
  for (auto& x : inputs) {
    for (float& v : x) v = static_cast<float>(rng.NextGaussian());
  }
  lstm::LstmTrace trace;
  lstm::LstmForward(params, inputs, &trace);
  std::vector<std::vector<float>> dh(15, std::vector<float>(hidden, 1.0f));
  lstm::LstmParams grad(24, hidden);
  std::vector<std::vector<float>> dx;
  for (auto _ : state) {
    grad.SetZero();
    lstm::LstmBackward(params, trace, dh, &grad, &dx);
    benchmark::DoNotOptimize(dx[0][0]);
  }
}
BENCHMARK(BM_LstmBackward)->Arg(16)->Arg(32)->Arg(64);

// ---- word2vec ----

void BM_Word2VecTrain(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::string> sentence;
    for (int k = 0; k < 10; ++k) {
      sentence.push_back("w" + std::to_string(rng.NextBounded(400)));
    }
    corpus.push_back(std::move(sentence));
  }
  embed::Word2VecOptions options;
  options.dim = static_cast<int>(state.range(0));
  options.epochs = 1;
  options.min_count = 1;
  for (auto _ : state) {
    embed::Word2Vec model(options);
    benchmark::DoNotOptimize(model.Train(corpus).ok());
  }
}
BENCHMARK(BM_Word2VecTrain)->Arg(16)->Arg(32)->Arg(64);

// ---- HTML + tokenization ----

void BM_HtmlParseAndExtract(benchmark::State& state) {
  datagen::GeneratorConfig config;
  config.num_products = 50;
  config.seed = 5;
  datagen::GeneratedCategory category = datagen::GenerateCategory(
      datagen::CategoryId::kVacuumCleaner, config);
  for (auto _ : state) {
    size_t tables = 0;
    for (const auto& page : category.corpus.pages) {
      auto dom = html::ParseHtml(page.html);
      tables += html::ExtractDictionaryTables(*dom).size();
      benchmark::DoNotOptimize(html::ExtractText(*dom).size());
    }
    benchmark::DoNotOptimize(tables);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(category.corpus.pages.size()));
}
BENCHMARK(BM_HtmlParseAndExtract);

void BM_CjkTokenize(benchmark::State& state) {
  text::CjkTokenizer tokenizer({"重量", "カラー", "です", "集じん方式"});
  const std::string sentence =
      "この商品の重量は2.5kgです。カラーはブラックです。集じん方式:"
      "サイクロン式。";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(sentence).size());
  }
}
BENCHMARK(BM_CjkTokenize);

// Shared builder for the CRF-training benchmarks: a small patterned
// dataset whose gradient pass dominates the runtime.
std::vector<text::LabeledSequence> MakeCrfTrainData(int sequences) {
  Rng rng(6);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < sequences; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"重量", "は", v, "kg", "です"};
    seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
    seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
    data.push_back(std::move(seq));
  }
  return data;
}

void BM_CrfTrainSmall(benchmark::State& state) {
  // End-to-end training cost; Arg = thread count. The trained weights
  // are bit-identical for every arg, so the times are comparable.
  const std::vector<text::LabeledSequence> data = MakeCrfTrainData(200);
  crf::CrfOptions options;
  options.max_iterations = 15;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    crf::CrfTagger tagger(options);
    benchmark::DoNotOptimize(tagger.Train(data).ok());
  }
}
BENCHMARK(BM_CrfTrainSmall)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_CrfBatchTag(benchmark::State& state) {
  // Batch tagging (the apply/bootstrap Tagger-stage kernel): per-sentence
  // PredictScored fanned out over a thread pool; Arg = thread count.
  const std::vector<text::LabeledSequence> data = MakeCrfTrainData(64);
  crf::CrfOptions options;
  options.max_iterations = 15;
  crf::CrfTagger tagger(options);
  if (!tagger.Train(data).ok()) {
    state.SkipWithError("CRF training failed");
    return;
  }
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<text::SequenceTagger::ScoredPrediction> predictions(data.size());
  for (auto _ : state) {
    pool.ParallelFor(0, data.size(), 8, [&](size_t i) {
      predictions[i] = tagger.PredictScored(data[i]);
    });
    benchmark::DoNotOptimize(predictions.front().labels.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_CrfBatchTag)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

// ---- CRF feature pipeline ----
//
// Three stages of the same work, from the pre-interner string pipeline
// to the compiled-corpus cache, all threads-parameterized:
//   FeatureExtractStrings / FeatureExtract   — template → features
//   FeatureCompileStrings / FeatureCompile / — features → model ids
//       FeatureCompileCached
//   CrfObjective                             — ids → NLL + gradient
// scripts/bench_feature_pipeline.sh runs these and writes
// BENCH_feature_pipeline.json.

std::vector<text::LabeledSequence> MakeFeatureCorpus(int sentences) {
  const std::vector<std::string> words = {"重量", "は",  "kg", "サイズ",
                                          "blue", "5",  "10", "です",
                                          "色",   "cm", "横幅", "奥行"};
  const std::vector<std::string> tags = {"NN", "PRT", "UNIT", "NUM", "ADJ"};
  Rng rng(8);
  std::vector<text::LabeledSequence> corpus;
  for (int i = 0; i < sentences; ++i) {
    text::LabeledSequence seq;
    const int len = static_cast<int>(rng.NextInt(4, 14));
    for (int t = 0; t < len; ++t) {
      seq.tokens.push_back(words[rng.NextBounded(words.size())]);
      seq.pos.push_back(tags[rng.NextBounded(tags.size())]);
    }
    seq.sentence_index = static_cast<int>(rng.NextInt(0, 9));
    corpus.push_back(std::move(seq));
  }
  return corpus;
}

crf::CrfModel BuildFeatureModel(
    const std::vector<text::LabeledSequence>& corpus,
    const crf::FeatureConfig& config) {
  crf::CrfModel model;
  model.AddLabel("O");
  crf::FeatureEncoder encoder(config);
  for (const auto& seq : corpus) {
    encoder.Encode(seq, [&](size_t, std::string_view feature) {
      model.AddFeature(feature);
    });
  }
  return model;
}

void BM_FeatureExtractStrings(benchmark::State& state) {
  // Baseline extraction: every feature materialized as its own
  // std::string (the reference implementation); Arg = thread count.
  const auto corpus = MakeFeatureCorpus(256);
  const crf::FeatureConfig config;
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<size_t> sink(corpus.size());
  for (auto _ : state) {
    pool.ParallelFor(0, corpus.size(), 8, [&](size_t i) {
      std::vector<std::vector<std::string>> feats;
      crf::ExtractFeatures(corpus[i], config, &feats);
      size_t bytes = 0;
      for (const auto& position : feats) {
        for (const auto& f : position) bytes += f.size();
      }
      sink[i] = bytes;
    });
    benchmark::DoNotOptimize(sink.front());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_FeatureExtractStrings)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_FeatureExtract(benchmark::State& state) {
  // Allocation-free extraction: the encoder renders each feature into a
  // reusable scratch buffer; Arg = thread count.
  const auto corpus = MakeFeatureCorpus(256);
  const crf::FeatureConfig config;
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<size_t> sink(corpus.size());
  for (auto _ : state) {
    pool.ParallelFor(0, corpus.size(), 8, [&](size_t i) {
      thread_local crf::FeatureEncoder encoder;
      encoder.Reset(config);
      size_t bytes = 0;
      encoder.Encode(corpus[i], [&](size_t, std::string_view feature) {
        bytes += feature.size();
      });
      sink[i] = bytes;
    });
    benchmark::DoNotOptimize(sink.front());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_FeatureExtract)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_FeatureCompileStrings(benchmark::State& state) {
  // The pre-interner compile path: string extraction plus an
  // unordered_map<string,int> dictionary probe per feature.
  const auto corpus = MakeFeatureCorpus(256);
  const crf::FeatureConfig config;
  const crf::CrfModel model = BuildFeatureModel(corpus, config);
  std::unordered_map<std::string, int> dictionary;
  for (size_t f = 0; f < model.num_features(); ++f) {
    dictionary.emplace(std::string(model.FeatureName(static_cast<int>(f))),
                       static_cast<int>(f));
  }
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<crf::CompiledSequence> compiled(corpus.size());
  for (auto _ : state) {
    pool.ParallelFor(0, corpus.size(), 8, [&](size_t i) {
      std::vector<std::vector<std::string>> feats;
      crf::ExtractFeatures(corpus[i], config, &feats);
      compiled[i].features.assign(feats.size(), {});
      for (size_t t = 0; t < feats.size(); ++t) {
        for (const std::string& f : feats[t]) {
          auto it = dictionary.find(f);
          if (it != dictionary.end()) {
            compiled[i].features[t].push_back(it->second);
          }
        }
      }
    });
    benchmark::DoNotOptimize(compiled.front().features.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_FeatureCompileStrings)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_FeatureCompile(benchmark::State& state) {
  // The interned compile path: encoder scratch buffer + heterogeneous
  // string_view probe of the model's flat interner.
  const auto corpus = MakeFeatureCorpus(256);
  const crf::FeatureConfig config;
  const crf::CrfModel model = BuildFeatureModel(corpus, config);
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<crf::CompiledSequence> compiled(corpus.size());
  for (auto _ : state) {
    pool.ParallelFor(0, corpus.size(), 8, [&](size_t i) {
      thread_local crf::FeatureEncoder encoder;
      encoder.Reset(config);
      compiled[i].features.assign(corpus[i].tokens.size(), {});
      for (auto& feats : compiled[i].features) {
        feats.reserve(static_cast<size_t>(4 * config.window + 4));
      }
      encoder.Encode(corpus[i], [&](size_t t, std::string_view feature) {
        const int id = model.LookupFeature(feature);
        if (id >= 0) compiled[i].features[t].push_back(id);
      });
    });
    benchmark::DoNotOptimize(compiled.front().features.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_FeatureCompile)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_FeatureCompileCached(benchmark::State& state) {
  // The bootstrap steady state: extraction already cached, compilation
  // is a remap gather per sentence.
  const auto corpus = MakeFeatureCorpus(256);
  const crf::FeatureConfig config;
  const crf::CrfModel model = BuildFeatureModel(corpus, config);
  crf::CompiledCorpus cache;
  std::vector<const text::LabeledSequence*> refs;
  for (const auto& seq : corpus) refs.push_back(&seq);
  cache.Build(refs, config);
  cache.Bind(model, 1);
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<crf::CompiledSequence> compiled(corpus.size());
  for (auto _ : state) {
    pool.ParallelFor(0, corpus.size(), 8, [&](size_t i) {
      cache.Materialize(i, &compiled[i]);
    });
    benchmark::DoNotOptimize(compiled.front().features.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(corpus.size()));
}
BENCHMARK(BM_FeatureCompileCached)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_CrfObjective(benchmark::State& state) {
  // One NLL+gradient evaluation over a compiled training set, with the
  // sparse per-shard accumulators Train uses; Arg = thread count.
  const std::vector<text::LabeledSequence> data = MakeCrfTrainData(200);
  crf::CrfOptions options;
  options.max_iterations = 1;
  options.trainer = crf::CrfTrainer::kAdagrad;
  crf::CrfTagger tagger(options);
  if (!tagger.Train(data).ok()) {
    state.SkipWithError("CRF training failed");
    return;
  }
  const crf::CrfModel& model = tagger.model();
  const std::vector<double>& w = tagger.weights();
  std::vector<crf::CompiledSequence> compiled;
  std::vector<std::vector<int>> unique_feats;
  {
    crf::FeatureEncoder encoder(options.features);
    for (const auto& seq : data) {
      crf::CompiledSequence cs;
      cs.features.resize(seq.tokens.size());
      encoder.Encode(seq, [&](size_t t, std::string_view feature) {
        const int id = model.LookupFeature(feature);
        if (id >= 0) cs.features[t].push_back(id);
      });
      for (const std::string& label : seq.labels) {
        cs.labels.push_back(model.LookupLabel(label));
      }
      std::vector<int> u;
      for (const auto& feats : cs.features) {
        u.insert(u.end(), feats.begin(), feats.end());
      }
      std::sort(u.begin(), u.end());
      u.erase(std::unique(u.begin(), u.end()), u.end());
      unique_feats.push_back(std::move(u));
      compiled.push_back(std::move(cs));
    }
  }
  const size_t L = model.num_labels();
  const size_t dim = model.WeightDim();
  const size_t trans_base = model.num_features() * L;
  struct ShardAcc {
    std::vector<double> grad;
    std::vector<int> touched;
    std::vector<uint8_t> mark;
    double nll = 0;
  };
  std::vector<ShardAcc> shard_accs(
      util::NumReductionShards(compiled.size(), 4, 32));
  for (ShardAcc& acc : shard_accs) {
    acc.grad.assign(dim, 0.0);
    acc.mark.assign(model.num_features(), 0);
  }
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<double> grad(dim, 0.0);
  for (auto _ : state) {
    std::fill(grad.begin(), grad.end(), 0.0);
    double nll = 0;
    util::OrderedReduce<ShardAcc*>(
        pool, compiled.size(), 4, 32,
        [&, next = size_t{0}]() mutable { return &shard_accs[next++]; },
        [&](ShardAcc* acc, size_t i) {
          acc->nll += model.SequenceNll(compiled[i], w, &acc->grad);
          for (int f : unique_feats[i]) {
            if (!acc->mark[static_cast<size_t>(f)]) {
              acc->mark[static_cast<size_t>(f)] = 1;
              acc->touched.push_back(f);
            }
          }
        },
        [&](ShardAcc* acc, size_t) {
          nll += acc->nll;
          acc->nll = 0;
          for (int f : acc->touched) {
            const size_t base = static_cast<size_t>(f) * L;
            for (size_t y = 0; y < L; ++y) {
              grad[base + y] += acc->grad[base + y];
              acc->grad[base + y] = 0.0;
            }
            acc->mark[static_cast<size_t>(f)] = 0;
          }
          acc->touched.clear();
          for (size_t i = trans_base; i < dim; ++i) {
            grad[i] += acc->grad[i];
            acc->grad[i] = 0.0;
          }
        });
    benchmark::DoNotOptimize(nll);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(compiled.size()));
}
BENCHMARK(BM_CrfObjective)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_Word2VecTrainSharded(benchmark::State& state) {
  // Sharded word2vec epochs; Arg = thread count at a fixed shard count
  // (the vectors depend on shards, never on threads).
  Rng rng(7);
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::string> sentence;
    for (int k = 0; k < 10; ++k) {
      sentence.push_back("w" + std::to_string(rng.NextBounded(400)));
    }
    corpus.push_back(std::move(sentence));
  }
  embed::Word2VecOptions options;
  options.dim = 32;
  options.epochs = 1;
  options.min_count = 1;
  options.shards = 8;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    embed::Word2Vec model(options);
    benchmark::DoNotOptimize(model.Train(corpus).ok());
  }
}
BENCHMARK(BM_Word2VecTrainSharded)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

// ---- SIMD kernel layer ----
//
// ISA-parameterized benchmarks of the math/kernels.h dispatch tiers.
// Arg = Isa enum value (0 scalar, 1 sse2, 2 avx2); tiers the host
// cannot run are skipped. scripts/bench_simd.sh runs these and writes
// BENCH_simd_kernels.json.

bool EnterIsa(benchmark::State& state, math::kernels::Isa* prev) {
  const auto isa = static_cast<math::kernels::Isa>(state.range(0));
  if (!math::kernels::IsaSupported(isa)) {
    state.SkipWithError("isa unsupported on this host");
    return false;
  }
  *prev = math::kernels::ActiveIsa();
  math::kernels::SetIsa(isa);
  return true;
}

void FillGaussian(Rng* rng, std::vector<float>* v) {
  for (float& x : *v) x = static_cast<float>(rng->NextGaussian());
}

void BM_SimdDot(benchmark::State& state) {
  math::kernels::Isa prev;
  if (!EnterIsa(state, &prev)) return;
  Rng rng(9);
  std::vector<float> a(1024), b(1024);
  FillGaussian(&rng, &a);
  FillGaussian(&rng, &b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::kernels::Dot(a.data(), b.data(), a.size()));
  }
  math::kernels::SetIsa(prev);
}
BENCHMARK(BM_SimdDot)->ArgName("isa")->Arg(0)->Arg(1)->Arg(2);

void BM_SimdMatVec(benchmark::State& state) {
  math::kernels::Isa prev;
  if (!EnterIsa(state, &prev)) return;
  constexpr size_t kRows = 256;
  constexpr size_t kCols = 256;
  Rng rng(10);
  std::vector<float> m(kRows * kCols), x(kCols), out(kRows);
  FillGaussian(&rng, &m);
  FillGaussian(&rng, &x);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    math::kernels::MatVec(m.data(), kRows, kCols, x.data(), out.data());
    benchmark::DoNotOptimize(out.data());
  }
  math::kernels::SetIsa(prev);
}
BENCHMARK(BM_SimdMatVec)->ArgName("isa")->Arg(0)->Arg(1)->Arg(2);

void BM_SimdWord2VecStep(benchmark::State& state) {
  // The word2vec negative-sampling update for one center word exactly as
  // embed/word2vec.cc issues it: per sample a Dot plus two Axpys into the
  // output vector and gradient buffer, then one Axpy back into the input
  // vector. 1 positive + 5 negatives (the `negative` default) at
  // dim 128; the per-sample sigmoid is a fixed scalar cost, so smaller
  // dims shift the measurement from the kernels to libm.
  math::kernels::Isa prev;
  if (!EnterIsa(state, &prev)) return;
  constexpr size_t kDim = 128;
  constexpr int kSamples = 6;
  Rng rng(11);
  std::vector<float> vin(kDim), grad_in(kDim);
  std::vector<std::vector<float>> vouts(kSamples, std::vector<float>(kDim));
  FillGaussian(&rng, &vin);
  for (auto& vout : vouts) FillGaussian(&rng, &vout);
  for (auto _ : state) {
    std::fill(grad_in.begin(), grad_in.end(), 0.0f);
    for (int s = 0; s < kSamples; ++s) {
      float* vout = vouts[static_cast<size_t>(s)].data();
      const double dot = math::kernels::Dot(vin.data(), vout, kDim);
      const float label = s == 0 ? 1.0f : 0.0f;
      const float pred = 1.0f / (1.0f + static_cast<float>(std::exp(-dot)));
      const float g = 0.025f * (label - pred);
      math::kernels::Axpy(g, vout, grad_in.data(), kDim);
      math::kernels::Axpy(g, vin.data(), vout, kDim);
    }
    math::kernels::Axpy(1.0f, grad_in.data(), vin.data(), kDim);
    benchmark::DoNotOptimize(vin.data());
  }
  math::kernels::SetIsa(prev);
}
BENCHMARK(BM_SimdWord2VecStep)->ArgName("isa")->Arg(0)->Arg(1)->Arg(2);

void BM_SimdLstmStep(benchmark::State& state) {
  // One fused LSTM timestep (gate preactivations + activations) at the
  // tagger's hidden size, the per-token cost of the BiLSTM forward pass.
  math::kernels::Isa prev;
  if (!EnterIsa(state, &prev)) return;
  constexpr size_t kHidden = 64;
  constexpr size_t kInput = 48;
  Rng rng(12);
  std::vector<float> wx(4 * kHidden * kInput), wh(4 * kHidden * kHidden);
  std::vector<float> b(4 * kHidden), x(kInput), h_prev(kHidden);
  std::vector<float> c_prev(kHidden), pre(4 * kHidden);
  std::vector<float> i(kHidden), f(kHidden), o(kHidden), g(kHidden);
  std::vector<float> c(kHidden), h(kHidden);
  FillGaussian(&rng, &wx);
  FillGaussian(&rng, &wh);
  FillGaussian(&rng, &b);
  FillGaussian(&rng, &x);
  FillGaussian(&rng, &h_prev);
  FillGaussian(&rng, &c_prev);
  for (auto _ : state) {
    math::kernels::LstmGatePreact(wx.data(), wh.data(), b.data(), x.data(),
                                  h_prev.data(), kHidden, kInput, pre.data());
    math::kernels::LstmActivateGates(pre.data(), c_prev.data(), kHidden,
                                     i.data(), f.data(), o.data(), g.data(),
                                     c.data(), h.data());
    benchmark::DoNotOptimize(h.data());
  }
  math::kernels::SetIsa(prev);
}
BENCHMARK(BM_SimdLstmStep)->ArgName("isa")->Arg(0)->Arg(1)->Arg(2);

void BM_SimdMatMul(benchmark::State& state) {
  // The batched GEMM tier against a [256×256] weight panel; args are
  // (isa, batch). items/s counts output columns, so the per-column cost
  // at batch 8/32 against batch 1 is the batching win directly.
  math::kernels::Isa prev;
  if (!EnterIsa(state, &prev)) return;
  constexpr size_t kRows = 256;
  constexpr size_t kK = 256;
  const size_t batch = static_cast<size_t>(state.range(1));
  Rng rng(13);
  std::vector<float> m(kRows * kK), x(batch * kK), bias(kRows);
  std::vector<float> out(batch * kRows);
  FillGaussian(&rng, &m);
  FillGaussian(&rng, &x);
  FillGaussian(&rng, &bias);
  for (auto _ : state) {
    math::kernels::MatMul(m.data(), kRows, kK, x.data(), batch, bias.data(),
                          out.data());
    benchmark::DoNotOptimize(out.data());
  }
  math::kernels::SetIsa(prev);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_SimdMatMul)
    ->ArgNames({"isa", "batch"})
    ->Args({0, 1})->Args({0, 8})->Args({0, 32})
    ->Args({1, 1})->Args({1, 8})->Args({1, 32})
    ->Args({2, 1})->Args({2, 8})->Args({2, 32});

void BM_SimdLstmLayer(benchmark::State& state) {
  // A full LSTM layer pass over a batch of equal-length sequences: one
  // batched gate GEMM per timestep. Args are (isa, hidden, batch) with
  // input_dim = 3H/4 (the tagger's D:H ratio). h=64 is the model's
  // word-layer shape, where the libm gate activations bound the step;
  // h=384 is the serving-scale shape where the [4H×D] weight pair
  // (~4 MB) no longer fits L2 and re-streaming it per sequence is the
  // cost batching amortises. items/s counts sequences, so batch 32 vs
  // batch 1 at the same isa/hidden is the batching speedup directly.
  // (The determinism contract keeps the gate activations on scalar
  // libm, so at h=64 they bound the step and cap the batching win;
  // the GEMM-bound h=384 rows show the full effect.)
  math::kernels::Isa prev;
  if (!EnterIsa(state, &prev)) return;
  const size_t hidden = static_cast<size_t>(state.range(1));
  const size_t input_dim = hidden * 3 / 4;
  constexpr size_t kSteps = 15;
  const size_t batch = static_cast<size_t>(state.range(2));
  Rng rng(14);
  lstm::LstmParams params(input_dim, hidden);
  params.Init(&rng);
  std::vector<float> inputs(kSteps * batch * input_dim);
  FillGaussian(&rng, &inputs);
  lstm::LstmBatchTrace trace;
  for (auto _ : state) {
    lstm::LstmForwardBatch(params, inputs.data(), kSteps, batch, &trace);
    benchmark::DoNotOptimize(trace.h.data());
  }
  math::kernels::SetIsa(prev);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(batch));
}
BENCHMARK(BM_SimdLstmLayer)
    ->ArgNames({"isa", "hidden", "batch"})
    ->Args({0, 64, 1})->Args({0, 64, 8})->Args({0, 64, 32})
    ->Args({1, 64, 1})->Args({1, 64, 8})->Args({1, 64, 32})
    ->Args({2, 64, 1})->Args({2, 64, 8})->Args({2, 64, 32})
    ->Args({0, 384, 1})->Args({0, 384, 8})->Args({0, 384, 32})
    ->Args({1, 384, 1})->Args({1, 384, 8})->Args({1, 384, 32})
    ->Args({2, 384, 1})->Args({2, 384, 8})->Args({2, 384, 32});

}  // namespace
}  // namespace pae

BENCHMARK_MAIN();
