// Microbenchmarks of the computational kernels behind the pipeline:
// CRF forward–backward & Viterbi, LSTM steps, word2vec training,
// HTML parsing and tokenization. google-benchmark based.

#include <benchmark/benchmark.h>

#include "crf/crf_model.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "embed/word2vec.h"
#include "html/parser.h"
#include "html/table_extractor.h"
#include "lstm/lstm_cell.h"
#include "text/tokenizer.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pae {
namespace {

// ---- CRF kernels ----

struct CrfFixture {
  crf::CrfModel model;
  crf::CompiledSequence seq;
  std::vector<double> weights;

  CrfFixture(size_t labels, size_t features, size_t length) {
    Rng rng(1);
    for (size_t y = 0; y < labels; ++y) {
      model.AddLabel("L" + std::to_string(y));
    }
    for (size_t f = 0; f < features; ++f) {
      model.AddFeature("F" + std::to_string(f));
    }
    seq.features.resize(length);
    seq.labels.resize(length);
    for (size_t t = 0; t < length; ++t) {
      for (int k = 0; k < 12; ++k) {
        seq.features[t].push_back(
            static_cast<int>(rng.NextBounded(features)));
      }
      seq.labels[t] = static_cast<int>(rng.NextBounded(labels));
    }
    weights.resize(model.WeightDim());
    for (double& w : weights) w = rng.NextGaussian() * 0.1;
  }
};

void BM_CrfSequenceNll(benchmark::State& state) {
  CrfFixture fixture(static_cast<size_t>(state.range(0)), 2000, 15);
  std::vector<double> grad(fixture.weights.size());
  for (auto _ : state) {
    std::fill(grad.begin(), grad.end(), 0.0);
    benchmark::DoNotOptimize(
        fixture.model.SequenceNll(fixture.seq, fixture.weights, &grad));
  }
}
BENCHMARK(BM_CrfSequenceNll)->Arg(9)->Arg(17)->Arg(25);

void BM_CrfViterbi(benchmark::State& state) {
  CrfFixture fixture(static_cast<size_t>(state.range(0)), 2000, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.model.Viterbi(fixture.seq, fixture.weights));
  }
}
BENCHMARK(BM_CrfViterbi)->Arg(9)->Arg(17)->Arg(25);

// ---- LSTM kernels ----

void BM_LstmForward(benchmark::State& state) {
  Rng rng(2);
  const size_t hidden = static_cast<size_t>(state.range(0));
  lstm::LstmParams params(24, hidden);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(15, std::vector<float>(24));
  for (auto& x : inputs) {
    for (float& v : x) v = static_cast<float>(rng.NextGaussian());
  }
  lstm::LstmTrace trace;
  for (auto _ : state) {
    lstm::LstmForward(params, inputs, &trace);
    benchmark::DoNotOptimize(trace.h.back()[0]);
  }
}
BENCHMARK(BM_LstmForward)->Arg(16)->Arg(32)->Arg(64);

void BM_LstmBackward(benchmark::State& state) {
  Rng rng(3);
  const size_t hidden = static_cast<size_t>(state.range(0));
  lstm::LstmParams params(24, hidden);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(15, std::vector<float>(24));
  for (auto& x : inputs) {
    for (float& v : x) v = static_cast<float>(rng.NextGaussian());
  }
  lstm::LstmTrace trace;
  lstm::LstmForward(params, inputs, &trace);
  std::vector<std::vector<float>> dh(15, std::vector<float>(hidden, 1.0f));
  lstm::LstmParams grad(24, hidden);
  std::vector<std::vector<float>> dx;
  for (auto _ : state) {
    grad.SetZero();
    lstm::LstmBackward(params, trace, dh, &grad, &dx);
    benchmark::DoNotOptimize(dx[0][0]);
  }
}
BENCHMARK(BM_LstmBackward)->Arg(16)->Arg(32)->Arg(64);

// ---- word2vec ----

void BM_Word2VecTrain(benchmark::State& state) {
  Rng rng(4);
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::string> sentence;
    for (int k = 0; k < 10; ++k) {
      sentence.push_back("w" + std::to_string(rng.NextBounded(400)));
    }
    corpus.push_back(std::move(sentence));
  }
  embed::Word2VecOptions options;
  options.dim = static_cast<int>(state.range(0));
  options.epochs = 1;
  options.min_count = 1;
  for (auto _ : state) {
    embed::Word2Vec model(options);
    benchmark::DoNotOptimize(model.Train(corpus).ok());
  }
}
BENCHMARK(BM_Word2VecTrain)->Arg(16)->Arg(32)->Arg(64);

// ---- HTML + tokenization ----

void BM_HtmlParseAndExtract(benchmark::State& state) {
  datagen::GeneratorConfig config;
  config.num_products = 50;
  config.seed = 5;
  datagen::GeneratedCategory category = datagen::GenerateCategory(
      datagen::CategoryId::kVacuumCleaner, config);
  for (auto _ : state) {
    size_t tables = 0;
    for (const auto& page : category.corpus.pages) {
      auto dom = html::ParseHtml(page.html);
      tables += html::ExtractDictionaryTables(*dom).size();
      benchmark::DoNotOptimize(html::ExtractText(*dom).size());
    }
    benchmark::DoNotOptimize(tables);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(category.corpus.pages.size()));
}
BENCHMARK(BM_HtmlParseAndExtract);

void BM_CjkTokenize(benchmark::State& state) {
  text::CjkTokenizer tokenizer({"重量", "カラー", "です", "集じん方式"});
  const std::string sentence =
      "この商品の重量は2.5kgです。カラーはブラックです。集じん方式:"
      "サイクロン式。";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(sentence).size());
  }
}
BENCHMARK(BM_CjkTokenize);

// Shared builder for the CRF-training benchmarks: a small patterned
// dataset whose gradient pass dominates the runtime.
std::vector<text::LabeledSequence> MakeCrfTrainData(int sequences) {
  Rng rng(6);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < sequences; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"重量", "は", v, "kg", "です"};
    seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
    seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
    data.push_back(std::move(seq));
  }
  return data;
}

void BM_CrfTrainSmall(benchmark::State& state) {
  // End-to-end training cost; Arg = thread count. The trained weights
  // are bit-identical for every arg, so the times are comparable.
  const std::vector<text::LabeledSequence> data = MakeCrfTrainData(200);
  crf::CrfOptions options;
  options.max_iterations = 15;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    crf::CrfTagger tagger(options);
    benchmark::DoNotOptimize(tagger.Train(data).ok());
  }
}
BENCHMARK(BM_CrfTrainSmall)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_CrfBatchTag(benchmark::State& state) {
  // Batch tagging (the apply/bootstrap Tagger-stage kernel): per-sentence
  // PredictScored fanned out over a thread pool; Arg = thread count.
  const std::vector<text::LabeledSequence> data = MakeCrfTrainData(64);
  crf::CrfOptions options;
  options.max_iterations = 15;
  crf::CrfTagger tagger(options);
  if (!tagger.Train(data).ok()) {
    state.SkipWithError("CRF training failed");
    return;
  }
  util::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<text::SequenceTagger::ScoredPrediction> predictions(data.size());
  for (auto _ : state) {
    pool.ParallelFor(0, data.size(), 8, [&](size_t i) {
      predictions[i] = tagger.PredictScored(data[i]);
    });
    benchmark::DoNotOptimize(predictions.front().labels.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_CrfBatchTag)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

void BM_Word2VecTrainSharded(benchmark::State& state) {
  // Sharded word2vec epochs; Arg = thread count at a fixed shard count
  // (the vectors depend on shards, never on threads).
  Rng rng(7);
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::string> sentence;
    for (int k = 0; k < 10; ++k) {
      sentence.push_back("w" + std::to_string(rng.NextBounded(400)));
    }
    corpus.push_back(std::move(sentence));
  }
  embed::Word2VecOptions options;
  options.dim = 32;
  options.epochs = 1;
  options.min_count = 1;
  options.shards = 8;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    embed::Word2Vec model(options);
    benchmark::DoNotOptimize(model.Train(corpus).ok());
  }
}
BENCHMARK(BM_Word2VecTrainSharded)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4);

}  // namespace
}  // namespace pae

BENCHMARK_MAIN();
