// Reproduces Table II: precision after the first bootstrap iteration for
// the five system configurations (RNN 2/10 epochs, RNN 2 + cleaning,
// CRF, CRF + cleaning) across the eight Japanese categories. Also
// reports the §VIII-B veto-rule discard rate.

#include <iostream>

#include "table23_runner.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Table II — first-iteration precision by configuration",
              options);
  Table23Results results = RunTable23(options);

  TablePrinter table("Table II precision % (paper / measured)");
  std::vector<std::string> header = {"Configuration"};
  for (datagen::CategoryId id : datagen::PaperTableCategories()) {
    header.push_back(datagen::CategoryName(id));
  }
  table.SetHeader(header);
  for (const Table23Config& arm : Table23Configs()) {
    std::vector<std::string> row = {arm.label};
    for (datagen::CategoryId id : datagen::PaperTableCategories()) {
      const std::string name = datagen::CategoryName(id);
      row.push_back(PaperVsMeasured(
          PaperTable2Precision().at(arm.label).at(name),
          results.metrics.at(arm.label).at(name).precision));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nShape checks: cleaning raises precision for both model\n"
            << "families; RNN at 10 epochs overfits the distant-\n"
            << "supervision noise and loses precision vs 2 epochs; CRF\n"
            << "is the most stable configuration.\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
