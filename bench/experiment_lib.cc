#include "experiment_lib.h"

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "math/kernels.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace pae::bench {

BenchOptions BenchOptions::FromEnv(int default_products) {
  BenchOptions options;
  options.num_products = default_products;
  // Bench drivers read their environment once on the main thread at
  // startup, before spawning workers — no concurrent setenv exists.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PAE_PRODUCTS")) {
    options.num_products = std::atoi(env);
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PAE_SEED")) {
    options.seed = static_cast<uint64_t>(std::atoll(env));
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PAE_THREADS")) {
    options.threads = std::max(0, std::atoi(env));
  }
  return options;
}

core::PipelineConfig CrfConfig(int iterations, bool cleaning) {
  core::PipelineConfig config;
  config.model = core::ModelType::kCrf;
  config.iterations = iterations;
  config.crf.max_iterations = 40;
  config.syntactic_cleaning = cleaning;
  config.semantic_cleaning = cleaning;
  config.seed = 7;
  return config;
}

core::PipelineConfig RnnConfig(int iterations, int epochs, bool cleaning) {
  core::PipelineConfig config;
  config.model = core::ModelType::kBiLstm;
  config.iterations = iterations;
  config.lstm.epochs = epochs;
  config.syntactic_cleaning = cleaning;
  config.semantic_cleaning = cleaning;
  config.seed = 7;
  return config;
}

const PreparedCategory& Prepare(datagen::CategoryId id,
                                const BenchOptions& options) {
  static auto* cache = new std::map<std::pair<int, uint64_t>,
                                    std::unique_ptr<PreparedCategory>>();
  const auto key = std::make_pair(static_cast<int>(id), options.seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    datagen::GeneratorConfig generator_config;
    generator_config.num_products = options.num_products;
    generator_config.seed = options.seed;
    auto prepared = std::make_unique<PreparedCategory>();
    prepared->generated = datagen::GenerateCategory(id, generator_config);
    prepared->corpus =
        core::ProcessCorpus(prepared->generated.corpus, options.threads);
    it = cache->emplace(key, std::move(prepared)).first;
  }
  return *it->second;
}

core::PipelineResult RunPipeline(const PreparedCategory& category,
                                 const core::PipelineConfig& config) {
  core::Pipeline pipeline(config);
  Result<core::PipelineResult> result = pipeline.Run(category.corpus);
  if (!result.ok()) {
    std::cerr << "pipeline failed on " << category.corpus.category << ": "
              << result.status().ToString() << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

core::TripleMetrics Evaluate(const PreparedCategory& category,
                             const std::vector<core::Triple>& triples) {
  return core::EvaluateTriples(triples, category.generated.truth,
                               category.num_products());
}

std::string PaperVsMeasured(double paper, double measured, int digits) {
  return FormatDouble(paper, digits) + " / " +
         FormatDouble(measured, digits);
}

void PrintHeader(const std::string& title, const BenchOptions& options) {
  std::cout << "####################################################\n"
            << "# " << title << "\n"
            << "# corpus: " << options.num_products
            << " products/category (synthetic, seed=" << options.seed
            << ", threads="
            << util::ThreadPool::ResolveThreads(options.threads) << ")\n"
            << "# Cells show: paper / measured. Absolute numbers come\n"
            << "# from a synthetic substitute corpus; the reproduction\n"
            << "# target is the SHAPE (orderings, gaps, crossovers).\n"
            << "####################################################\n";
}

void MaybeWriteMetricsReport() {
  // Main-thread read after the benchmark's workers have joined.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  const char* path = std::getenv("PAE_METRICS_OUT");
  if (path == nullptr || path[0] == '\0') return;
  // Stamp the SIMD dispatch decision right before snapshotting: gauges
  // set at startup would not survive a MetricsRegistry::Reset().
  math::kernels::RecordSimdMetrics();
  const util::RunReport report = util::MetricsRegistry::Global().Snapshot();
  Status status = report.WriteJsonFile(path);
  if (!status.ok()) {
    std::cerr << "PAE_METRICS_OUT: " << status.ToString() << "\n";
    return;
  }
  if (std::string(path) != "-") {
    std::cout << "metrics report -> " << path << "\n";
  }
}

}  // namespace pae::bench
