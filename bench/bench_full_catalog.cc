// Extension experiment backing the paper's §VI-A scope claim ("We
// evaluated 21 different categories in Japanese and German"): runs the
// full CRF pipeline (2 cycles) over every category in the catalog —
// 18 Japanese + 3 German + the heterogeneous study pair — and prints
// the summary the paper's §VII-E gives in prose: overall precision and
// coverage are high across categories and languages.

#include <iostream>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"
#include "util/thread_pool.h"

namespace pae::bench {
namespace {

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/250);
  PrintHeader("Catalog sweep — full pipeline over all 21+ categories",
              options);

  const int threads = util::ThreadPool::ResolveThreads(options.threads);
  TablePrinter table("CRF + cleaning, 2 cycles");
  table.SetHeader({"Category", "Lang", "Threads", "Attrs", "Precision %",
                   "Coverage %", "Triples"});
  double precision_sum = 0;
  int rows = 0;
  for (datagen::CategoryId id : datagen::AllCategories()) {
    const PreparedCategory& category = Prepare(id, options);
    std::cerr << "[catalog] " << datagen::CategoryName(id) << "\n";
    core::PipelineConfig config = CrfConfig(/*iterations=*/2, true);
    config.threads = options.threads;
    core::PipelineResult result = RunPipeline(category, config);
    core::TripleMetrics metrics = Evaluate(category, result.final_triples());
    precision_sum += metrics.precision;
    ++rows;
    table.AddRow({datagen::CategoryName(id),
                  text::LanguageName(category.corpus.language),
                  std::to_string(threads),
                  std::to_string(result.seed.attributes.size()),
                  FormatDouble(metrics.precision, 2),
                  FormatDouble(metrics.coverage, 2),
                  std::to_string(metrics.total)});
  }
  table.Print(std::cout);
  std::cout << "\nMean precision across the catalog: "
            << FormatDouble(precision_sum / rows, 2)
            << "% (the paper's headline claim is ~90% on average, with\n"
            << "the heterogeneous Baby Goods as the documented outlier).\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
