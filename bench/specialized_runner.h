#ifndef PAE_BENCH_SPECIALIZED_RUNNER_H_
#define PAE_BENCH_SPECIALIZED_RUNNER_H_

// Shared implementation of Figures 7/8: per-attribute coverage of a
// single global model vs a specialized model trained on an attribute
// subset (§VIII-D), plus the per-attribute precision the paper discusses
// (high precision globally; specialized models trade some of it away).

#include <iostream>
#include <string>
#include <vector>

#include "experiment_lib.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {

inline core::TripleMetrics EvaluateAttribute(
    const PreparedCategory& category, const std::vector<core::Triple>& triples,
    const std::string& attribute) {
  std::vector<core::Triple> filtered;
  for (const core::Triple& t : triples) {
    if (category.generated.truth.Canonical(t.attribute) == attribute) {
      filtered.push_back(t);
    }
  }
  return Evaluate(category, filtered);
}

/// Runs the global-vs-specialized comparison for `attributes` of
/// `category_id`, printing coverage (+g vs +s, as in Figs. 7/8) and
/// precision.
inline int RunSpecializedBench(const std::string& title,
                               datagen::CategoryId category_id,
                               const std::vector<std::string>& attributes,
                               const std::vector<std::string>& labels) {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/400);
  PrintHeader(title, options);
  const PreparedCategory& category = Prepare(category_id, options);

  std::cerr << "[specialized] global model\n";
  core::PipelineResult global =
      RunPipeline(category, CrfConfig(/*iterations=*/1, true));

  core::PipelineConfig specialized_config = CrfConfig(1, true);
  specialized_config.preprocess.attribute_filter = attributes;
  std::cerr << "[specialized] specialized model\n";
  core::PipelineResult specialized =
      RunPipeline(category, specialized_config);

  TablePrinter table("coverage % and precision %: global (+g) vs "
                     "specialized (+s)");
  table.SetHeader({"Attribute", "cov +g", "cov +s", "prec +g", "prec +s"});
  int raised = 0;
  for (size_t i = 0; i < attributes.size(); ++i) {
    core::TripleMetrics mg =
        EvaluateAttribute(category, global.final_triples(), attributes[i]);
    core::TripleMetrics ms = EvaluateAttribute(
        category, specialized.final_triples(), attributes[i]);
    if (ms.coverage > mg.coverage) ++raised;
    table.AddRow({labels[i] + " (" + attributes[i] + ")",
                  FormatDouble(mg.coverage, 2), FormatDouble(ms.coverage, 2),
                  FormatDouble(mg.precision, 2),
                  FormatDouble(ms.precision, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape checks (paper): the specialized model raises the\n"
            << "coverage of its target attributes (" << raised << "/"
            << attributes.size()
            << " here; the paper reports up to orders of magnitude),\n"
            << "while §VIII-D warns that separating attributes can cost\n"
            << "precision (power-supply type dropped 90% → <70%).\n";
  return 0;
}

}  // namespace pae::bench

#endif  // PAE_BENCH_SPECIALIZED_RUNNER_H_
