// Reproduces Table III: product coverage after the first bootstrap
// iteration for the five system configurations across the eight
// Japanese categories.

#include <iostream>

#include "table23_runner.h"
#include "util/logging.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Table III — first-iteration coverage by configuration",
              options);
  Table23Results results = RunTable23(options);

  TablePrinter table("Table III coverage % (paper / measured)");
  std::vector<std::string> header = {"Configuration"};
  for (datagen::CategoryId id : datagen::PaperTableCategories()) {
    header.push_back(datagen::CategoryName(id));
  }
  table.SetHeader(header);
  for (const Table23Config& arm : Table23Configs()) {
    std::vector<std::string> row = {arm.label};
    for (datagen::CategoryId id : datagen::PaperTableCategories()) {
      const std::string name = datagen::CategoryName(id);
      row.push_back(PaperVsMeasured(
          PaperTable3Coverage().at(arm.label).at(name),
          results.metrics.at(arm.label).at(name).coverage));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nShape checks: coverage is inversely correlated with\n"
            << "Table II's precision — RNN 10 epochs covers the most,\n"
            << "cleaning always costs coverage, and the high-precision\n"
            << "configurations keep 'decent' coverage (the business\n"
            << "trade-off of §VII-B).\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
