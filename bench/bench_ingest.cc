// Ingestion benchmark behind scripts/bench_ingest.sh: the barrier
// pipeline (LoadCorpus materializes every page, then ProcessCorpus,
// then DiscoverCandidates re-walks the tables, then a serial vocab
// fold re-walks the tokens) vs the single-pass streaming pipeline
// (core/ingest.h: one read into a reused buffer, parse + tokenize +
// tag + harvest + intern per page while it is cache-hot, one serial
// canonicalization fold at the end).
//
//   bench_ingest --dir CORPUS [--products N] [--seed S] [--reps R]
//                [--threads "1,4,8"] [--json OUT | -]
//
// If --dir does not exist it is generated there with pae-datagen's
// camera schema at --products scale, so the corpus working set can be
// pushed past the LLC from the command line. Both arms read the same
// directory; FNV-1a checksums over the full ProcessedCorpus /
// CandidateSet / Vocab contents are computed per arm and thread count
// and PAE_CHECKed identical — a timing win that changes a byte is a
// bug, not a win. Also measures interner throughput (FlatStringInterner
// vs ConcurrentStringInterner, serial and under ParallelFor
// contention) and the FlatStringInterner::Reserve effect that the
// Vocab/CompiledCorpus/CrfModel call sites rely on.
//
// All non-timing fields are deterministic for a fixed corpus + seed.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/corpus_io.h"
#include "core/document.h"
#include "core/ingest.h"
#include "core/preprocess.h"
#include "datagen/generator.h"
#include "text/vocab.h"
#include "tools/args.h"
#include "util/concurrent_interner.h"
#include "util/interner.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

/// Runs `fn` `reps` times and keeps the fastest wall time. One untimed
/// warmup first so both arms start with the page cache hot.
template <typename Fn>
double MinSeconds(int reps, Fn fn) {
  fn();
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto begin = Clock::now();
    fn();
    best = std::min(best, Seconds(begin, Clock::now()));
  }
  return best;
}

/// FNV-1a over everything the downstream pipeline can observe; field
/// separators keep ("ab","c") distinct from ("a","bc").
struct Fnv {
  uint64_t h = 1469598103934665603ull;
  void Add(std::string_view s) {
    for (const char c : s) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
    h = (h ^ 0x1f) * 1099511628211ull;
  }
  void Add(uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
      h = (h ^ ((v >> shift) & 0xff)) * 1099511628211ull;
    }
  }
};

struct IngestChecksums {
  uint64_t corpus = 0;
  uint64_t candidates = 0;
  uint64_t vocab = 0;
  bool operator==(const IngestChecksums&) const = default;
};

uint64_t Checksum(const pae::core::ProcessedCorpus& corpus) {
  Fnv fnv;
  fnv.Add(corpus.category);
  fnv.Add(static_cast<uint64_t>(corpus.language));
  for (const std::string& q : corpus.query_log) fnv.Add(q);
  for (const pae::core::ProcessedPage& page : corpus.pages) {
    fnv.Add(page.product_id);
    for (const auto& sentence : page.sentences) {
      fnv.Add(static_cast<uint64_t>(sentence.sentence_index));
      for (const auto& token : sentence.tokens) fnv.Add(token);
      for (const auto& tag : sentence.pos) fnv.Add(tag);
    }
    for (const auto& table : page.tables) {
      for (const auto& [name, value] : table.entries) {
        fnv.Add(name);
        fnv.Add(value);
      }
    }
  }
  return fnv.h;
}

uint64_t Checksum(const pae::core::CandidateSet& candidates) {
  Fnv fnv;
  for (const pae::core::CandidatePair& pair : candidates.pairs) {
    fnv.Add(pair.attribute);
    fnv.Add(pair.value);
    fnv.Add(static_cast<uint64_t>(pair.count));
    for (const std::string& pid : pair.product_ids) fnv.Add(pid);
  }
  return fnv.h;
}

uint64_t Checksum(const pae::text::Vocab& vocab) {
  Fnv fnv;
  for (size_t id = 0; id < vocab.size(); ++id) {
    fnv.Add(vocab.Word(static_cast<int32_t>(id)));
  }
  return fnv.h;
}

/// The barrier pipeline, phase by phase: full-corpus load, parse,
/// candidate re-walk, serial token fold. Returns the checksums so the
/// caller can demand byte-equality with the streaming arm.
IngestChecksums RunBarrier(const std::string& dir, int threads) {
  auto loaded = pae::core::LoadCorpus(dir);
  PAE_CHECK(loaded.ok()) << loaded.status().ToString();
  const pae::core::ProcessedCorpus corpus =
      pae::core::ProcessCorpus(loaded.value(), threads);
  const pae::core::CandidateSet candidates =
      pae::core::DiscoverCandidates(corpus);
  pae::text::Vocab vocab;
  for (const pae::core::ProcessedPage& page : corpus.pages) {
    for (const auto& sentence : page.sentences) {
      for (const std::string& token : sentence.tokens) vocab.GetOrAdd(token);
    }
  }
  return {Checksum(corpus), Checksum(candidates), Checksum(vocab)};
}

IngestChecksums RunStreaming(const std::string& dir, int threads) {
  pae::core::IngestOptions options;
  options.threads = threads;
  auto ingested = pae::core::IngestCorpusDir(dir, options);
  PAE_CHECK(ingested.ok()) << ingested.status().ToString();
  return {Checksum(ingested.value().corpus),
          Checksum(ingested.value().candidates),
          Checksum(ingested.value().token_vocab)};
}

std::vector<std::string> MakeKeyUniverse(size_t distinct) {
  std::vector<std::string> keys;
  keys.reserve(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    keys.push_back("w[" + std::to_string(i % 5) +
                   "]=tok" + std::to_string(i));
  }
  return keys;
}

}  // namespace

int main(int argc, char** argv) {
  pae::tools::Args args(argc, argv);
  const std::string dir = args.GetString("dir", "");
  if (dir.empty()) {
    std::cerr << "usage: bench_ingest --dir CORPUS [--products N] [--seed S]\n"
              << "                    [--page-sentences N] [--reps R]\n"
              << "                    [--threads \"1,4,8\"] [--json OUT|-]\n";
    return 2;
  }
  const int products = args.GetInt("products", 800);
  const int seed = args.GetInt("seed", 1);
  // Description length per page. The camera schema's default (3–8 filler
  // sentences) yields ~0.5 KB pages, which weights the benchmark toward
  // per-page fixed costs; field product pages run far longer, so the
  // ingest benchmark defaults to description-heavy pages.
  const int page_sentences = args.GetInt("page-sentences", 40);
  const int reps = args.GetInt("reps", 5);
  const std::string thread_list = args.GetString("threads", "1,4,8");

  namespace fs = std::filesystem;
  if (!fs::exists(fs::path(dir) / "pages")) {
    pae::datagen::GeneratorConfig config;
    config.num_products = products;
    config.seed = static_cast<uint64_t>(seed);
    pae::datagen::CategorySpec spec = pae::datagen::BuildCategorySpec(
        pae::datagen::CategoryId::kDigitalCameras);
    spec.min_sentences = page_sentences / 2;
    spec.max_sentences = page_sentences;
    const auto category = pae::datagen::GenerateCategory(spec, config);
    const pae::Status saved = pae::core::SaveCorpus(category.corpus, dir);
    PAE_CHECK(saved.ok()) << saved.ToString();
    std::cerr << "generated " << category.corpus.pages.size()
              << "-page corpus at " << dir << "\n";
  }

  std::vector<int> thread_counts;
  {
    std::istringstream is(thread_list);
    for (std::string piece; std::getline(is, piece, ',');) {
      thread_counts.push_back(std::stoi(piece));
    }
    PAE_CHECK(!thread_counts.empty());
  }

  // Corpus shape, from the reader both arms use.
  auto reader = pae::core::StreamingCorpusReader::Open(dir);
  PAE_CHECK(reader.ok()) << reader.status().ToString();
  const size_t pages = reader.value().page_count();
  const uint64_t page_bytes = reader.value().total_page_bytes();

  // --- barrier phase profile (single-threaded): where the four-phase
  // pipeline spends its time, so arm-level deltas are attributable ---
  double load_seconds = 0, parse_seconds = 0, discover_seconds = 0,
         vocab_seconds = 0;
  {
    pae::core::Corpus raw;
    const double total_load = MinSeconds(reps, [&] {
      auto loaded = pae::core::LoadCorpus(dir);
      PAE_CHECK(loaded.ok());
      raw = std::move(loaded).value();
    });
    pae::core::ProcessedCorpus processed;
    const double total_parse = MinSeconds(reps, [&] {
      processed = pae::core::ProcessCorpus(raw, 1);
    });
    pae::core::CandidateSet candidates;
    const double total_discover = MinSeconds(reps, [&] {
      candidates = pae::core::DiscoverCandidates(processed);
    });
    const double total_vocab = MinSeconds(reps, [&] {
      pae::text::Vocab vocab;
      for (const pae::core::ProcessedPage& page : processed.pages) {
        for (const auto& sentence : page.sentences) {
          for (const std::string& token : sentence.tokens) {
            vocab.GetOrAdd(token);
          }
        }
      }
    });
    load_seconds = total_load;
    parse_seconds = total_parse;
    discover_seconds = total_discover;
    vocab_seconds = total_vocab;
  }

  // --- barrier vs streaming, per thread count ---
  IngestChecksums reference;
  bool have_reference = false;
  bool identical = true;
  std::ostringstream arms;
  double speedup_at_max_threads = 0;
  for (const int threads : thread_counts) {
    // The arms are interleaved rep by rep rather than measured in two
    // separate blocks: under a container CPU quota, a sustained burst
    // gets throttled partway through, which would bill the throttle to
    // whichever arm happened to run later. Paired sampling spreads it
    // evenly; min-of-reps then discards the throttled pairs.
    IngestChecksums barrier_sums = RunBarrier(dir, threads);      // warmup
    IngestChecksums streaming_sums = RunStreaming(dir, threads);  // warmup
    double barrier_seconds = 1e300;
    double streaming_seconds = 1e300;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = Clock::now();
      barrier_sums = RunBarrier(dir, threads);
      const auto t1 = Clock::now();
      streaming_sums = RunStreaming(dir, threads);
      const auto t2 = Clock::now();
      barrier_seconds = std::min(barrier_seconds, Seconds(t0, t1));
      streaming_seconds = std::min(streaming_seconds, Seconds(t1, t2));
    }
    if (!have_reference) {
      reference = barrier_sums;
      have_reference = true;
    }
    // Byte-equality across arms AND across thread counts, enforced.
    PAE_CHECK(barrier_sums == reference) << "barrier drift at t=" << threads;
    PAE_CHECK(streaming_sums == reference)
        << "streaming drift at t=" << threads;
    identical = identical && barrier_sums == reference &&
                streaming_sums == reference;

    const double speedup = barrier_seconds / streaming_seconds;
    speedup_at_max_threads = speedup;  // thread_counts ascends; keep last
    arms << "    \"threads_" << threads << "\": {\n"
         << "      \"barrier_seconds\": "
         << pae::FormatDouble(barrier_seconds, 9) << ",\n"
         << "      \"streaming_seconds\": "
         << pae::FormatDouble(streaming_seconds, 9) << ",\n"
         << "      \"barrier_pages_per_sec\": "
         << pae::FormatDouble(static_cast<double>(pages) / barrier_seconds, 1)
         << ",\n"
         << "      \"streaming_pages_per_sec\": "
         << pae::FormatDouble(static_cast<double>(pages) / streaming_seconds,
                              1)
         << ",\n      \"streaming_speedup\": "
         << pae::FormatDouble(speedup, 2) << "\n    },\n";
    std::cerr << "t=" << threads << ": barrier " << barrier_seconds * 1e3
              << " ms, streaming " << streaming_seconds * 1e3
              << " ms, speedup " << speedup << "x\n";
  }

  // --- interner throughput: 1M mixed-hit interns over 200k keys ---
  const std::vector<std::string> keys = MakeKeyUniverse(200'000);
  constexpr int kInternOps = 1'000'000;
  const double flat_seconds = MinSeconds(3, [&] {
    pae::util::FlatStringInterner interner;
    interner.Reserve(keys.size());
    pae::Rng rng(7);
    for (int i = 0; i < kInternOps; ++i) {
      interner.Intern(keys[rng.NextBounded(keys.size())]);
    }
  });
  const double concurrent_serial_seconds = MinSeconds(3, [&] {
    pae::util::ConcurrentStringInterner interner(keys.size());
    pae::Rng rng(7);
    for (int i = 0; i < kInternOps; ++i) {
      interner.Intern(keys[rng.NextBounded(keys.size())]);
    }
  });
  // Contended: 4 workers share one table and the full key universe.
  constexpr int kContendedThreads = 4;
  const double concurrent_contended_seconds = MinSeconds(3, [&] {
    pae::util::ConcurrentStringInterner interner(keys.size());
    pae::util::ThreadPool pool(kContendedThreads);
    pool.ParallelFor(0, kContendedThreads, 1, [&](size_t t) {
      pae::Rng rng(7 + t);
      for (int i = 0; i < kInternOps / kContendedThreads; ++i) {
        interner.Intern(keys[rng.NextBounded(keys.size())]);
      }
    });
  });

  // --- FlatStringInterner::Reserve effect (the Vocab / CompiledCorpus /
  // CrfModel call sites pre-size exactly like the reserved arm) ---
  const double build_unreserved_seconds = MinSeconds(3, [&] {
    pae::util::FlatStringInterner interner;
    for (const std::string& key : keys) interner.Intern(key);
  });
  const double build_reserved_seconds = MinSeconds(3, [&] {
    pae::util::FlatStringInterner interner;
    interner.Reserve(keys.size());
    for (const std::string& key : keys) interner.Intern(key);
  });

  std::ostringstream json;
  json << "{\n  \"version\": 1,\n  \"benchmark\": \"ingest\",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"corpus\": {\n    \"products\": " << products
       << ",\n    \"pages\": " << pages
       << ",\n    \"page_bytes\": " << page_bytes << "\n  },\n"
       << "  \"barrier_phase_seconds\": {\n"
       << "    \"load\": " << pae::FormatDouble(load_seconds, 9)
       << ",\n    \"parse\": " << pae::FormatDouble(parse_seconds, 9)
       << ",\n    \"discover\": " << pae::FormatDouble(discover_seconds, 9)
       << ",\n    \"vocab_fold\": " << pae::FormatDouble(vocab_seconds, 9)
       << "\n  },\n"
       << "  \"arms\": {\n"
       << arms.str()
       << "    \"outputs_identical_across_arms_and_threads\": "
       << (identical ? "true" : "false") << "\n  },\n"
       << "  \"checksums\": {\n"
       << "    \"corpus\": \"" << std::hex << reference.corpus
       << "\",\n    \"candidates\": \"" << reference.candidates
       << "\",\n    \"vocab\": \"" << reference.vocab << "\"\n  },\n"
       << std::dec
       << "  \"interner_million_ops_seconds\": {\n"
       << "    \"flat_serial\": " << pae::FormatDouble(flat_seconds, 9)
       << ",\n    \"concurrent_serial\": "
       << pae::FormatDouble(concurrent_serial_seconds, 9)
       << ",\n    \"concurrent_contended_4_threads\": "
       << pae::FormatDouble(concurrent_contended_seconds, 9) << "\n  },\n"
       << "  \"flat_reserve_build_200k_keys\": {\n"
       << "    \"unreserved_seconds\": "
       << pae::FormatDouble(build_unreserved_seconds, 9)
       << ",\n    \"reserved_seconds\": "
       << pae::FormatDouble(build_reserved_seconds, 9)
       << ",\n    \"speedup\": "
       << pae::FormatDouble(build_unreserved_seconds / build_reserved_seconds,
                            2)
       << "\n  },\n"
       << "  \"streaming_speedup_at_max_threads\": "
       << pae::FormatDouble(speedup_at_max_threads, 2) << "\n}\n";

  const std::string json_path = args.GetString("json", "-");
  if (json_path == "-") {
    std::cout << json.str();
  } else {
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out) {
      std::cerr << "failed writing " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}
