// Reproduces Table IV: precision of ablated configurations (full,
// −semantic cleaning, −semantic−syntactic cleaning, −diversification)
// on Vacuum Cleaner and Garden after the 1st and the 5th bootstrap
// cycle. Also runs the §VIII-B semantic-core-size sweep.

#include <iostream>
#include <map>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

struct AblationArm {
  std::string label;
  bool semantic;
  bool syntactic;
  bool diversification;
};

const std::vector<AblationArm>& Arms() {
  static const auto* kArms = new std::vector<AblationArm>{
      {"CRF full", true, true, true},
      {"CRF -sem", false, true, true},
      {"CRF -sem-synt", false, false, true},
      {"CRF -div", true, true, false},
  };
  return *kArms;
}

// Paper Table IV values: [arm][category] for cycle 1 and cycle 5.
const std::map<std::string, std::map<std::string, double>>& PaperCycle1() {
  static const auto* kPaper =
      new std::map<std::string, std::map<std::string, double>>{
          {"CRF full", {{"Vacuum Cleaner", 93.1}, {"Garden", 90.14}}},
          {"CRF -sem", {{"Vacuum Cleaner", 92.94}, {"Garden", 83.33}}},
          {"CRF -sem-synt", {{"Vacuum Cleaner", 91.87}, {"Garden", 80.33}}},
          {"CRF -div", {{"Vacuum Cleaner", 91.18}, {"Garden", 87.90}}},
      };
  return *kPaper;
}

const std::map<std::string, std::map<std::string, double>>& PaperCycle5() {
  static const auto* kPaper =
      new std::map<std::string, std::map<std::string, double>>{
          {"CRF full", {{"Vacuum Cleaner", 86.49}, {"Garden", 86.17}}},
          {"CRF -sem", {{"Vacuum Cleaner", 87.93}, {"Garden", 76.4}}},
          {"CRF -sem-synt", {{"Vacuum Cleaner", 76.92}, {"Garden", 67.69}}},
          {"CRF -div", {{"Vacuum Cleaner", 75.74}, {"Garden", 85.98}}},
      };
  return *kPaper;
}

core::PipelineConfig MakeConfig(const AblationArm& arm, int iterations) {
  core::PipelineConfig config = CrfConfig(iterations, /*cleaning=*/true);
  config.semantic_cleaning = arm.semantic;
  config.syntactic_cleaning = arm.syntactic;
  config.preprocess.enable_diversification = arm.diversification;
  return config;
}

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Table IV — module ablation (Vacuum Cleaner, Garden)",
              options);
  const std::vector<datagen::CategoryId> categories = {
      datagen::CategoryId::kVacuumCleaner, datagen::CategoryId::kGarden};

  // Run each arm for 5 cycles once; cycle-1 numbers come from the first
  // snapshot of the same run.
  std::map<std::string, std::map<std::string, std::pair<double, double>>>
      measured;  // [arm][category] -> (cycle1, cycle5)
  std::map<std::string, std::map<std::string, double>> veto_rate;
  for (datagen::CategoryId id : categories) {
    const PreparedCategory& category = Prepare(id, options);
    const std::string name = datagen::CategoryName(id);
    for (const AblationArm& arm : Arms()) {
      std::cerr << "[table4] " << name << " :: " << arm.label << "\n";
      core::PipelineResult result =
          RunPipeline(category, MakeConfig(arm, /*iterations=*/5));
      const double cycle1 =
          Evaluate(category, result.triples_after.front()).precision;
      const double cycle5 =
          Evaluate(category, result.triples_after.back()).precision;
      measured[arm.label][name] = {cycle1, cycle5};
      const auto& stats = result.iteration_stats.front().cleaning;
      veto_rate[arm.label][name] =
          stats.input > 0 ? 100.0 * static_cast<double>(stats.vetoed()) /
                                static_cast<double>(stats.input)
                          : 0.0;
    }
  }

  for (int cycle : {1, 5}) {
    TablePrinter table("Table IV — precision % after cycle " +
                       std::to_string(cycle) + " (paper / measured)");
    table.SetHeader({"Configuration", "Vacuum Cleaner", "Garden"});
    const auto& paper = (cycle == 1) ? PaperCycle1() : PaperCycle5();
    for (const AblationArm& arm : Arms()) {
      std::vector<std::string> row = {arm.label};
      for (datagen::CategoryId id : categories) {
        const std::string name = datagen::CategoryName(id);
        const auto& [c1, c5] = measured[arm.label][name];
        row.push_back(PaperVsMeasured(paper.at(arm.label).at(name),
                                      cycle == 1 ? c1 : c5));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }

  std::cout << "\nVeto-rule discard rate at iteration 1 (§VIII-B quotes"
            << " ~10%):\n";
  for (datagen::CategoryId id : categories) {
    const std::string name = datagen::CategoryName(id);
    std::cout << "  " << name << ": "
              << FormatDouble(veto_rate["CRF full"][name], 1) << "%\n";
  }

  // §VIII-B: semantic-core-size sweep on Garden — unrestricted n costs
  // at most ~1% precision.
  std::cout << "\nSemantic-core size sweep (Garden, 1 cycle):\n";
  const PreparedCategory& garden =
      Prepare(datagen::CategoryId::kGarden, options);
  for (int core_size : {5, 10, 20, 0 /* unrestricted */}) {
    core::PipelineConfig config = CrfConfig(1, true);
    config.semantic.core_size = core_size;
    core::PipelineResult result = RunPipeline(garden, config);
    core::TripleMetrics metrics = Evaluate(garden, result.final_triples());
    std::cout << "  n=" << (core_size == 0 ? std::string("unrestricted")
                                           : std::to_string(core_size))
              << ": precision=" << FormatDouble(metrics.precision, 2)
              << "% coverage=" << FormatDouble(metrics.coverage, 2) << "%\n";
  }

  std::cout << "\nShape checks: every module removal costs precision;\n"
            << "semantic cleaning matters most on Garden; the gaps widen\n"
            << "by cycle 5; core-size restriction is worth at most ~1%.\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
