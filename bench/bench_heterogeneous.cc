// Reproduces §VIII-E: applying the methodology to a heterogeneous
// category. Baby Carriers (homogeneous) reaches high precision; the
// parent category Baby Goods (carriers + clothes + toys, with
// overlapping attribute names and values) degrades markedly.

#include <iostream>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/400);
  PrintHeader("§VIII-E — homogeneous vs heterogeneous categories",
              options);

  TablePrinter table("precision % (paper / measured)");
  table.SetHeader({"Category", "Precision %", "Coverage %"});

  const struct {
    datagen::CategoryId id;
    double paper_precision;
  } rows[] = {
      {datagen::CategoryId::kBabyCarriers, 85.15},
      {datagen::CategoryId::kBabyGoods, 63.16},
  };
  double measured[2] = {0, 0};
  int i = 0;
  for (const auto& row : rows) {
    const PreparedCategory& category = Prepare(row.id, options);
    std::cerr << "[heterogeneous] " << datagen::CategoryName(row.id) << "\n";
    core::PipelineResult result =
        RunPipeline(category, CrfConfig(/*iterations=*/2, true));
    core::TripleMetrics metrics = Evaluate(category, result.final_triples());
    measured[i++] = metrics.precision;
    table.AddRow({datagen::CategoryName(row.id),
                  PaperVsMeasured(row.paper_precision, metrics.precision),
                  FormatDouble(metrics.coverage, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check (paper): the heterogeneous parent loses "
            << (measured[0] - measured[1] > 0 ? "precision" : "NOTHING?!")
            << "\n(paper: 85.15% → 63.16%; measured gap: "
            << FormatDouble(measured[0] - measured[1], 2)
            << " points). Semantically different attributes with\n"
            << "overlapping values render the model imprecise.\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
