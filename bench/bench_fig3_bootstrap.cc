// Reproduces Figure 3: precision (top) and coverage (bottom) of the CRF
// model across the five bootstrap iterations, without cleaning (left)
// and with cleaning (right).

#include <iostream>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

const std::vector<datagen::CategoryId>& Fig3Categories() {
  static const auto* kCategories = new std::vector<datagen::CategoryId>{
      datagen::CategoryId::kTennis,
      datagen::CategoryId::kGarden,
      datagen::CategoryId::kLadiesBags,
      datagen::CategoryId::kDigitalCameras,
      datagen::CategoryId::kVacuumCleaner,
  };
  return *kCategories;
}

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Figure 3 — CRF precision & coverage across iterations",
              options);

  for (bool cleaning : {false, true}) {
    // series[category][iteration] = metrics
    std::vector<std::vector<core::TripleMetrics>> series;
    for (datagen::CategoryId id : Fig3Categories()) {
      const PreparedCategory& category = Prepare(id, options);
      std::cerr << "[fig3] " << datagen::CategoryName(id)
                << (cleaning ? " (clean)" : " (no clean)") << "\n";
      core::PipelineResult result =
          RunPipeline(category, CrfConfig(/*iterations=*/5, cleaning));
      std::vector<core::TripleMetrics> per_iteration;
      for (const auto& snapshot : result.triples_after) {
        per_iteration.push_back(Evaluate(category, snapshot));
      }
      series.push_back(std::move(per_iteration));
    }

    for (const char* what : {"precision", "coverage"}) {
      TablePrinter table(std::string("Fig. 3 ") + what + " % — CRF " +
                         (cleaning ? "with cleaning" : "without cleaning"));
      std::vector<std::string> header = {"Iteration"};
      for (datagen::CategoryId id : Fig3Categories()) {
        header.push_back(datagen::CategoryName(id));
      }
      table.SetHeader(header);
      for (int it = 0; it < 5; ++it) {
        std::vector<std::string> row = {std::to_string(it + 1)};
        for (const auto& per_iteration : series) {
          const core::TripleMetrics& m = per_iteration[static_cast<size_t>(it)];
          row.push_back(FormatDouble(
              std::string(what) == "precision" ? m.precision : m.coverage,
              2));
        }
        table.AddRow(row);
      }
      table.Print(std::cout);
    }
  }

  std::cout << "\nShape checks (paper): precision decreases mildly across\n"
            << "iterations but cleaning keeps it high (>85% in most\n"
            << "categories); coverage rises strongly across iterations and\n"
            << "rises further without cleaning (at a precision cost).\n";
  MaybeWriteMetricsReport();
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
