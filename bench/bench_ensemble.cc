// Extension experiment (§IX future work): combining CRF and BiLSTM.
// The paper observes the two model families "often make similar
// mistakes, but they can complement each other" — this bench measures
// the two natural combinations against the individual models after one
// bootstrap cycle.

#include <iostream>

#include "experiment_lib.h"
#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::bench {
namespace {

const std::vector<datagen::CategoryId>& EnsembleCategories() {
  static const auto* kCategories = new std::vector<datagen::CategoryId>{
      datagen::CategoryId::kLadiesBags,
      datagen::CategoryId::kVacuumCleaner,
      datagen::CategoryId::kGarden,
  };
  return *kCategories;
}

int Run() {
  BenchOptions options = BenchOptions::FromEnv(/*default_products=*/300);
  PrintHeader("Extension — CRF/BiLSTM ensembles (1 cycle, with cleaning)",
              options);

  const struct {
    const char* label;
    core::ModelType model;
  } arms[] = {
      {"CRF", core::ModelType::kCrf},
      {"BiLSTM", core::ModelType::kBiLstm},
      {"CRF ∩ BiLSTM (intersection)",
       core::ModelType::kEnsembleIntersection},
      {"CRF ∪ BiLSTM (union)", core::ModelType::kEnsembleUnion},
  };

  TablePrinter table("precision % / coverage % by model");
  std::vector<std::string> header = {"Model"};
  for (datagen::CategoryId id : EnsembleCategories()) {
    header.push_back(datagen::CategoryName(id));
  }
  table.SetHeader(header);

  for (const auto& arm : arms) {
    std::vector<std::string> row = {arm.label};
    for (datagen::CategoryId id : EnsembleCategories()) {
      const PreparedCategory& category = Prepare(id, options);
      std::cerr << "[ensemble] " << datagen::CategoryName(id) << " :: "
                << arm.label << "\n";
      core::PipelineConfig config = CrfConfig(/*iterations=*/1, true);
      config.model = arm.model;
      config.lstm.epochs = 4;
      core::PipelineResult result = RunPipeline(category, config);
      core::TripleMetrics metrics =
          Evaluate(category, result.final_triples());
      row.push_back(FormatDouble(metrics.precision, 1) + " / " +
                    FormatDouble(metrics.coverage, 1));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the intersection is the most precise\n"
            << "configuration (and the least covering); the union covers\n"
            << "the most; both single models sit in between — the\n"
            << "precision/coverage dial §IX anticipates.\n";
  return 0;
}

}  // namespace
}  // namespace pae::bench

int main() {
  pae::SetMinLogLevel(1);
  return pae::bench::Run();
}
