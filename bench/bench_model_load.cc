// Model-load benchmark behind scripts/bench_model_load.sh: the legacy
// BinaryReader parse vs the mmap'ed `.paez` artifact (checksum-verified
// first touch and warm structural open), the bytes each path copies,
// and the int8-embedding cleaning gate (one bootstrap iteration with
// f32 vs quantized semantic-cleaning vectors on the golden corpus).
//
//   bench_model_load --model m.crf --paez m.paez [--iterations 50]
//                    [--json OUT | -] [--skip-int8-gate]
//   bench_model_load --make-model m.crf --make-features N
//                    [--make-labels L] [--make-seed S]
//
// The --make-model mode writes a synthetic legacy model at production
// scale (the bundled datagen corpora train only ~1.5k features; field
// deployments carry hundreds of thousands), with feature strings shaped
// exactly like the real extractor's (`w[d]=`, `pos[d]=`, `sent=`) and
// deterministic pseudo-weights. Both formats then serve the same bytes,
// so the parse-vs-mmap comparison stays apples to apples.
//
// All non-timing fields are deterministic for a fixed model + seed, so
// two runs on the same commit must agree on everything but the seconds.

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/bootstrap.h"
#include "core/model_artifact.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "tools/args.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serial.h"
#include "util/strings.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point begin, Clock::time_point end) {
  return std::chrono::duration<double>(end - begin).count();
}

struct TimingStats {
  double first = 0;  // iteration 0 (cold path: pages not yet touched)
  double min = 0;    // fastest warm iteration
  double mean = 0;   // over the warm iterations
};

/// Times `fn` once cold and `iterations` more warm times.
template <typename Fn>
TimingStats Time(int iterations, Fn fn) {
  TimingStats stats;
  {
    const auto begin = Clock::now();
    fn();
    stats.first = Seconds(begin, Clock::now());
  }
  std::vector<double> warm;
  warm.reserve(static_cast<size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    const auto begin = Clock::now();
    fn();
    warm.push_back(Seconds(begin, Clock::now()));
  }
  stats.min = *std::min_element(warm.begin(), warm.end());
  double sum = 0;
  for (const double w : warm) sum += w;
  stats.mean = sum / static_cast<double>(warm.size());
  return stats;
}

void AppendStats(std::ostringstream* json, const std::string& key,
                 const TimingStats& stats) {
  *json << "  \"" << key << "\": {\n"
        << "    \"first_seconds\": " << pae::FormatDouble(stats.first, 9)
        << ",\n    \"min_seconds\": " << pae::FormatDouble(stats.min, 9)
        << ",\n    \"mean_seconds\": " << pae::FormatDouble(stats.mean, 9)
        << "\n  },\n";
}

int64_t CounterValue(const char* name) {
  return pae::util::MetricsRegistry::Global().GetCounter(name)->value();
}

/// One bootstrap iteration on the golden corpus with the given
/// semantic-cleaning quantization mode; returns the extracted triples.
std::vector<pae::core::Triple> RunCleaningArm(bool quantize_int8) {
  pae::datagen::GeneratorConfig generator;
  generator.num_products = 120;
  generator.seed = 42;
  auto crawl = pae::datagen::GenerateCategory(
      pae::datagen::CategoryId::kVacuumCleaner, generator);
  pae::core::ProcessedCorpus corpus = pae::core::ProcessCorpus(crawl.corpus);

  pae::core::PipelineConfig config;
  config.iterations = 1;
  config.crf.max_iterations = 25;
  config.seed = 7;
  config.semantic.quantize_int8 = quantize_int8;
  pae::core::Pipeline pipeline(config);
  auto result = pipeline.Run(corpus);
  PAE_CHECK(result.ok()) << result.status().ToString();
  return result.value().final_triples();
}

// Matches the private constants in crf/crf_tagger.cc; the mode below
// Load()s the file it wrote, so a drift in either value fails loudly.
constexpr uint32_t kCrfMagic = 0x43524631;  // "CRF1"
constexpr uint32_t kCrfVersion = 1;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Writes a synthetic legacy model with `num_features` features and
/// `num_labels` BIO labels directly in the CrfTagger::Save wire format,
/// then round-trips it through CrfTagger::Load as a self-check.
int MakeModel(const std::string& path, int num_features, int num_labels,
              uint64_t seed) {
  static const char* kAttrs[] = {"weight",   "width", "height", "depth",
                                 "capacity", "power", "noise"};
  static const char* kPos[] = {"NN", "NUM", "UNIT", "PRT", "VB", "ADJ", "SYM"};
  std::vector<std::string> labels;
  labels.emplace_back("O");
  for (size_t a = 0; static_cast<int>(labels.size()) < num_labels; ++a) {
    const std::string attr = kAttrs[a % (sizeof(kAttrs) / sizeof(*kAttrs))] +
                             (a < 7 ? "" : std::to_string(a / 7));
    labels.push_back("B-" + attr);
    if (static_cast<int>(labels.size()) < num_labels) {
      labels.push_back("I-" + attr);
    }
  }

  uint64_t rng = seed;
  std::vector<std::string> features;
  features.reserve(static_cast<size_t>(num_features));
  // The real extractor emits word-identity features in a window, PoS
  // features, a PoS n-gram, and a sentence-length bucket; cycle through
  // the same shapes with a synthetic vocabulary.
  for (int f = 0; f < num_features; ++f) {
    const int d = f % 5 - 2;  // window offset in [-2, 2]
    const uint64_t r = SplitMix64(&rng);
    std::string feat;
    switch (f % 7) {
      case 0:
      case 1:
      case 2:
      case 3:
        // Unique via the feature index; key length varies like real words.
        feat = "w[" + std::to_string(d) + "]=tok" + std::to_string(f) +
               std::string(r % 7, 'x');
        break;
      case 4:
        feat = "pos[" + std::to_string(d) + "]=" + kPos[r % 7] + "_" +
               std::to_string(f);
        break;
      case 5:
        feat = std::string("posgram=") + kPos[r % 7] + "|" + kPos[(r >> 8) % 7] +
               "|" + std::to_string(f);
        break;
      default:
        feat = "sent=" + std::to_string(f);
        break;
    }
    features.push_back(std::move(feat));
  }

  const size_t L = static_cast<size_t>(num_labels);
  const size_t dim = static_cast<size_t>(num_features) * L + L * L + 2 * L;
  std::vector<double> weights(dim, 0.0);
  for (size_t i = 0; i < dim; ++i) {
    const uint64_t r = SplitMix64(&rng);
    // OWL-QN's L1 penalty leaves trained models sparse; mimic ~60%
    // exact zeros with small nonzero weights elsewhere.
    if (r % 10 < 6) continue;
    weights[i] = (static_cast<double>(r % 2001) - 1000.0) / 2000.0;
  }

  pae::BinaryWriter writer(path, kCrfMagic, kCrfVersion);
  writer.WriteI32(2);   // window
  writer.WriteI32(40);  // max_sentence_bucket
  writer.WriteDouble(0.1);  // c1
  writer.WriteDouble(1.0);  // c2
  writer.WriteStringVec(labels);
  writer.WriteStringVec(features);
  writer.WriteDoubleVec(weights);
  const pae::Status finish = writer.Finish();
  PAE_CHECK(finish.ok()) << finish.ToString();

  pae::crf::CrfTagger check;
  const pae::Status loaded = check.Load(path);
  PAE_CHECK(loaded.ok()) << loaded.ToString();
  PAE_CHECK_EQ(check.model().num_features(),
               static_cast<size_t>(num_features));
  std::cerr << "wrote " << path << ": " << labels.size() << " labels, "
            << features.size() << " features, " << dim << " weights ("
            << std::filesystem::file_size(path) << " bytes)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  pae::tools::Args args(argc, argv);
  const std::string make_path = args.GetString("make-model", "");
  if (!make_path.empty()) {
    return MakeModel(make_path, args.GetInt("make-features", 200000),
                     args.GetInt("make-labels", 15),
                     static_cast<uint64_t>(args.GetInt("make-seed", 1)));
  }
  const std::string model_path = args.GetString("model", "");
  const std::string paez_path = args.GetString("paez", "");
  if (model_path.empty() || paez_path.empty()) {
    std::cerr << "usage: bench_model_load --model m.crf --paez m.paez\n"
              << "                        [--iterations N] [--json OUT|-]\n"
              << "                        [--skip-int8-gate]\n"
              << "       bench_model_load --make-model m.crf\n"
              << "                        [--make-features N] [--make-labels L]"
              << "\n";
    return 2;
  }
  const int iterations = args.GetInt("iterations", 50);

  // --- legacy parse: every table copied into fresh allocations ---
  const int64_t legacy_copied_before = CounterValue("model.load.bytes_copied");
  const TimingStats legacy = Time(iterations, [&] {
    pae::crf::CrfTagger tagger;
    PAE_CHECK(tagger.Load(model_path).ok());
  });
  const int64_t legacy_bytes_copied =
      (CounterValue("model.load.bytes_copied") - legacy_copied_before) /
      (iterations + 1);

  // --- paez first touch: checksum-verified open reads every page, the
  // pack-time integrity pass an operator runs once per artifact ---
  const TimingStats first_touch = Time(iterations, [&] {
    pae::core::ModelArtifact::OpenOptions verify;
    verify.verify_checksums = true;
    auto artifact = pae::core::ModelArtifact::Open(paez_path, verify);
    PAE_CHECK(artifact.ok()) << artifact.status().ToString();
  });

  // --- paez warm: the serving hot path (structural validation only,
  // model bound in place) ---
  const int64_t paez_copied_before = CounterValue("model.load.bytes_copied");
  const TimingStats warm = Time(iterations, [&] {
    auto artifact = pae::core::ModelArtifact::Open(paez_path);
    PAE_CHECK(artifact.ok()) << artifact.status().ToString();
    auto packed = pae::core::MakePackedCrfModel(std::move(artifact).value());
    PAE_CHECK(packed.ok()) << packed.status().ToString();
    pae::crf::CrfTagger tagger;
    PAE_CHECK(tagger.LoadPacked(std::move(packed).value()).ok());
  });
  const int64_t paez_bytes_copied =
      (CounterValue("model.load.bytes_copied") - paez_copied_before) /
      (iterations + 1);

  auto artifact = pae::core::ModelArtifact::Open(paez_path);
  PAE_CHECK(artifact.ok());
  const auto& meta = artifact.value()->crf_meta();

  // --- int8 cleaning gate ---
  std::string int8_block;
  if (!args.Has("skip-int8-gate")) {
    const std::vector<pae::core::Triple> f32 = RunCleaningArm(false);
    const std::vector<pae::core::Triple> int8 = RunCleaningArm(true);
    std::ostringstream block;
    block << "  \"int8_cleaning_gate\": {\n"
          << "    \"triples_f32\": " << f32.size() << ",\n"
          << "    \"triples_int8\": " << int8.size() << ",\n"
          << "    \"decisions_unchanged\": "
          << (f32 == int8 ? "true" : "false") << "\n  },\n";
    int8_block = block.str();
  }

  const double speedup = legacy.min / warm.min;
  std::ostringstream json;
  json << "{\n  \"version\": 1,\n  \"benchmark\": \"model-load\",\n"
       << "  \"iterations\": " << iterations << ",\n"
       << "  \"model\": {\n"
       << "    \"legacy_bytes\": "
       << std::filesystem::file_size(model_path) << ",\n"
       << "    \"paez_bytes\": " << std::filesystem::file_size(paez_path)
       << ",\n"
       << "    \"labels\": " << meta.num_labels << ",\n"
       << "    \"features\": " << meta.num_features << ",\n"
       << "    \"weights\": " << meta.weight_count << "\n  },\n";
  AppendStats(&json, "legacy_parse", legacy);
  AppendStats(&json, "paez_first_touch_verified", first_touch);
  AppendStats(&json, "paez_warm_mmap", warm);
  json << "  \"bytes_copied_per_load\": {\n"
       << "    \"legacy\": " << legacy_bytes_copied << ",\n"
       << "    \"paez\": " << paez_bytes_copied << "\n  },\n"
       << int8_block
       << "  \"warm_speedup_vs_legacy\": " << pae::FormatDouble(speedup, 1)
       << "\n}\n";

  const std::string json_path = args.GetString("json", "-");
  if (json_path == "-") {
    std::cout << json.str();
  } else {
    std::ofstream out(json_path, std::ios::trunc);
    out << json.str();
    if (!out) {
      std::cerr << "failed writing " << json_path << "\n";
      return 1;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  std::cerr << "legacy min " << legacy.min * 1e3 << " ms, paez warm min "
            << warm.min * 1e6 << " us, speedup " << speedup << "x\n";
  return 0;
}
