// Byte-equality proof for the streaming ingestion (core/ingest.h): the
// single-pass pipeline (and its on-disk streaming variant) must produce
// memcmp-identical ProcessedCorpus, CandidateSet, Vocab, and Seed
// artifacts to the barrier pipeline (LoadCorpus → ProcessCorpus →
// DiscoverCandidates → BuildSeed) at every thread count.

#include "core/ingest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/corpus_io.h"
#include "core/document.h"
#include "core/preprocess.h"
#include "datagen/generator.h"
#include "text/vocab.h"

namespace pae::core {
namespace {

namespace fs = std::filesystem;

datagen::GeneratedCategory MakeCategory(int products, uint64_t seed) {
  datagen::GeneratorConfig config;
  config.num_products = products;
  config.seed = seed;
  return datagen::GenerateCategory(datagen::CategoryId::kDigitalCameras,
                                   config);
}

// Field-for-field serializations: string equality below is
// byte-equality of everything the downstream pipeline can observe.

std::string Serialize(const ProcessedCorpus& corpus) {
  std::ostringstream os;
  os << corpus.category << '\x1f' << static_cast<int>(corpus.language)
     << '\x1f';
  for (const std::string& q : corpus.query_log) os << q << '\x1f';
  for (const ProcessedPage& page : corpus.pages) {
    os << "\x1e" << page.product_id << '\x1f';
    for (const auto& sentence : page.sentences) {
      os << sentence.sentence_index << '\x1f';
      for (const auto& token : sentence.tokens) os << token << '\x1f';
      for (const auto& tag : sentence.pos) os << tag << '\x1f';
    }
    for (const auto& table : page.tables) {
      for (const auto& [name, value] : table.entries) {
        os << name << '\x1f' << value << '\x1f';
      }
    }
  }
  return os.str();
}

std::string Serialize(const CandidateSet& candidates) {
  std::ostringstream os;
  for (const CandidatePair& pair : candidates.pairs) {
    os << pair.attribute << '\x1f' << pair.value << '\x1f' << pair.count
       << '\x1f';
    for (const std::string& pid : pair.product_ids) os << pid << '\x1f';
    os << '\x1e';
  }
  return os.str();
}

std::string Serialize(const text::Vocab& vocab) {
  std::ostringstream os;
  for (size_t id = 0; id < vocab.size(); ++id) {
    os << vocab.Word(static_cast<int32_t>(id)) << '\x1f';
  }
  return os.str();
}

std::string Serialize(const Seed& seed) {
  std::ostringstream os;
  os << seed.candidates_before_cleaning << '\x1f'
     << seed.pairs_after_cleaning << '\x1f'
     << seed.pairs_added_by_diversification << '\x1f';
  for (const SeedPair& pair : seed.pairs) {
    os << pair.attribute << '\x1f' << pair.value_display << '\x1f';
    for (const std::string& token : pair.value_tokens) os << token << '\x1f';
    os << '\x1e';
  }
  for (const Triple& t : seed.table_triples) {
    os << t.product_id << '\x1f' << t.attribute << '\x1f' << t.value
       << '\x1e';
  }
  for (const std::string& attribute : seed.attributes) {
    os << attribute << '\x1f';
  }
  std::vector<std::pair<std::string, std::string>> reps(
      seed.surface_to_rep.begin(), seed.surface_to_rep.end());
  std::sort(reps.begin(), reps.end());
  for (const auto& [surface, rep] : reps) {
    os << surface << '\x1f' << rep << '\x1f';
  }
  return os.str();
}

/// The barrier pipeline's token vocabulary: a serial GetOrAdd over
/// every token in page-major order.
text::Vocab SerialVocab(const ProcessedCorpus& corpus) {
  text::Vocab vocab;
  for (const ProcessedPage& page : corpus.pages) {
    for (const auto& sentence : page.sentences) {
      for (const std::string& token : sentence.tokens) {
        vocab.GetOrAdd(token);
      }
    }
  }
  return vocab;
}

TEST(StreamingIngestTest, MatchesBarrierPipelineAtEveryThreadCount) {
  const datagen::GeneratedCategory category = MakeCategory(120, 4242);

  // Barrier reference: the existing four-phase pipeline, single thread.
  const ProcessedCorpus barrier = ProcessCorpus(category.corpus, 1);
  const std::string barrier_corpus_bytes = Serialize(barrier);
  const std::string barrier_candidates_bytes =
      Serialize(DiscoverCandidates(barrier));
  const std::string barrier_vocab_bytes = Serialize(SerialVocab(barrier));
  const std::string barrier_seed_bytes =
      Serialize(BuildSeed(barrier, PreprocessConfig{}));
  ASSERT_FALSE(barrier_candidates_bytes.empty());
  ASSERT_FALSE(barrier_vocab_bytes.empty());

  for (int threads : {1, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    IngestOptions options;
    options.threads = threads;
    const IngestedCorpus ingested = IngestCorpus(category.corpus, options);
    EXPECT_EQ(Serialize(ingested.corpus), barrier_corpus_bytes);
    EXPECT_EQ(Serialize(ingested.candidates), barrier_candidates_bytes);
    EXPECT_EQ(Serialize(ingested.token_vocab), barrier_vocab_bytes);
    EXPECT_EQ(Serialize(BuildSeedFromCandidates(
                  ingested.corpus, ingested.candidates, PreprocessConfig{})),
              barrier_seed_bytes);
  }
}

TEST(StreamingIngestTest, GermanCategoryMatchesBarrierPipeline) {
  // Latin-tokenizer coverage: the Japanese default above never touches
  // the LatinTokenizer arm of the fused segmenter.
  datagen::GeneratorConfig config;
  config.num_products = 90;
  config.seed = 1337;
  const datagen::GeneratedCategory category = datagen::GenerateCategory(
      datagen::CategoryId::kCoffeeMachinesDe, config);
  ASSERT_EQ(category.corpus.language, text::Language::kDe);

  const ProcessedCorpus barrier = ProcessCorpus(category.corpus, 1);
  const std::string barrier_corpus_bytes = Serialize(barrier);
  const std::string barrier_candidates_bytes =
      Serialize(DiscoverCandidates(barrier));
  const std::string barrier_vocab_bytes = Serialize(SerialVocab(barrier));
  ASSERT_FALSE(barrier_candidates_bytes.empty());

  for (int threads : {1, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    IngestOptions options;
    options.threads = threads;
    const IngestedCorpus ingested = IngestCorpus(category.corpus, options);
    EXPECT_EQ(Serialize(ingested.corpus), barrier_corpus_bytes);
    EXPECT_EQ(Serialize(ingested.candidates), barrier_candidates_bytes);
    EXPECT_EQ(Serialize(ingested.token_vocab), barrier_vocab_bytes);
  }
}

TEST(StreamingIngestTest, DiskStreamingMatchesInMemoryIngestion) {
  const datagen::GeneratedCategory category = MakeCategory(80, 777);
  const std::string dir =
      (fs::temp_directory_path() / "pae_streaming_ingest").string();
  fs::remove_all(dir);
  ASSERT_TRUE(SaveCorpus(category.corpus, dir).ok());

  // The on-disk round trip may reorder/rename nothing, but go through
  // LoadCorpus once so the reference saw exactly the same bytes.
  auto loaded = LoadCorpus(dir);
  ASSERT_TRUE(loaded.ok());
  IngestOptions serial;
  serial.threads = 1;
  const IngestedCorpus reference = IngestCorpus(loaded.value(), serial);
  const std::string corpus_bytes = Serialize(reference.corpus);
  const std::string candidates_bytes = Serialize(reference.candidates);
  const std::string vocab_bytes = Serialize(reference.token_vocab);

  for (int threads : {1, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    IngestOptions options;
    options.threads = threads;
    auto streamed = IngestCorpusDir(dir, options);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_EQ(Serialize(streamed.value().corpus), corpus_bytes);
    EXPECT_EQ(Serialize(streamed.value().candidates), candidates_bytes);
    EXPECT_EQ(Serialize(streamed.value().token_vocab), vocab_bytes);
  }
  fs::remove_all(dir);
}

TEST(StreamingIngestTest, SizeHintOverridesAreHonored) {
  const datagen::GeneratedCategory category = MakeCategory(30, 99);
  IngestOptions options;
  options.threads = 2;
  // Generous explicit hints must not change the output, only sizing.
  options.expected_distinct_tokens = 1 << 16;
  options.expected_distinct_pairs = 1 << 12;
  const IngestedCorpus hinted = IngestCorpus(category.corpus, options);
  IngestOptions defaults;
  defaults.threads = 2;
  const IngestedCorpus derived = IngestCorpus(category.corpus, defaults);
  EXPECT_EQ(Serialize(hinted.candidates), Serialize(derived.candidates));
  EXPECT_EQ(Serialize(hinted.token_vocab), Serialize(derived.token_vocab));
}

TEST(StreamingIngestTest, MissingDirectoryFailsLikeLoadCorpus) {
  IngestOptions options;
  auto result = IngestCorpusDir(
      (fs::temp_directory_path() / "pae_ingest_missing").string(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), LoadCorpus("/nonexistent").status().code());
}

}  // namespace
}  // namespace pae::core
