// The `.paez` zero-copy model artifact: pack/open round-trips,
// byte-identical inference between the legacy parse and the mmap'ed
// load (at 1 and 8 threads and on the scalar kernel tier), the
// zero-copy claim proven through the model.load.bytes_copied counter,
// and the f32/int8 packed embedding views.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/apply.h"
#include "core/bootstrap.h"
#include "core/model_artifact.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "embed/word2vec.h"
#include "math/kernels.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace pae {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("pae_artifact_" + name)).string();
}

/// Restores the dispatched kernel tier on scope exit.
class ScopedIsa {
 public:
  explicit ScopedIsa(math::kernels::Isa isa) { math::kernels::SetIsa(isa); }
  ~ScopedIsa() { math::kernels::SetIsa(math::kernels::BestSupportedIsa()); }
};

/// One bootstrap-trained model + corpus, built once per process: the
/// realistic fixture behind every cross-format comparison here.
struct TrainedFixture {
  core::ProcessedCorpus corpus;
  std::shared_ptr<crf::CrfTagger> tagger;  // the in-memory original
  std::string legacy_path;                 // CrfTagger::Save output
  std::string paez_path;                   // packed artifact
};

const TrainedFixture& Fixture() {
  static const TrainedFixture* fixture = [] {
    auto* f = new TrainedFixture();
    datagen::GeneratorConfig config;
    config.num_products = 150;
    config.seed = 42;
    auto crawl = datagen::GenerateCategory(
        datagen::CategoryId::kVacuumCleaner, config);
    f->corpus = core::ProcessCorpus(crawl.corpus);

    core::PipelineConfig pipeline_config;
    pipeline_config.iterations = 1;
    pipeline_config.crf.max_iterations = 25;
    pipeline_config.train_final_model = true;
    pipeline_config.seed = 7;
    core::Pipeline pipeline(pipeline_config);
    auto trained = pipeline.Run(f->corpus);
    PAE_CHECK(trained.ok());
    PAE_CHECK(trained.value().final_tagger != nullptr);
    f->tagger = std::dynamic_pointer_cast<crf::CrfTagger>(
        trained.value().final_tagger);
    PAE_CHECK(f->tagger != nullptr);

    f->legacy_path = TempPath("fixture.crf");
    PAE_CHECK(f->tagger->Save(f->legacy_path).ok());
    f->paez_path = TempPath("fixture.paez");
    PAE_CHECK(core::PackModelArtifact(*f->tagger, nullptr,
                                      core::PackOptions(), f->paez_path)
                  .ok());
    return f;
  }();
  return *fixture;
}

/// Opens the fixture artifact and binds a packed tagger to it.
crf::CrfTagger LoadPackedFixture() {
  auto artifact = core::ModelArtifact::Open(Fixture().paez_path);
  PAE_CHECK(artifact.ok()) << artifact.status().ToString();
  auto packed = core::MakePackedCrfModel(std::move(artifact).value());
  PAE_CHECK(packed.ok()) << packed.status().ToString();
  crf::CrfTagger tagger;
  PAE_CHECK(tagger.LoadPacked(std::move(packed).value()).ok());
  return tagger;
}

// ---------------- format round-trip ----------------

TEST(ModelArtifactTest, SniffDistinguishesFormats) {
  EXPECT_TRUE(core::IsPaezFile(Fixture().paez_path));
  EXPECT_FALSE(core::IsPaezFile(Fixture().legacy_path));
  EXPECT_FALSE(core::IsPaezFile(TempPath("does_not_exist.paez")));
}

TEST(ModelArtifactTest, OpenWithChecksumVerificationSucceeds) {
  core::ModelArtifact::OpenOptions options;
  options.verify_checksums = true;
  auto artifact = core::ModelArtifact::Open(Fixture().paez_path, options);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  const core::ModelArtifact& a = *artifact.value();
  EXPECT_TRUE(a.has_crf());
  EXPECT_FALSE(a.has_embeddings());
  const crf::CrfModel& model = Fixture().tagger->model();
  EXPECT_EQ(a.crf_meta().num_labels, model.num_labels());
  EXPECT_EQ(a.crf_meta().num_features, model.num_features());
  EXPECT_EQ(a.crf_meta().weight_count,
            Fixture().tagger->weights_span().size());
  // Weight and vector blocks are page-aligned so the kernels see the
  // same alignment mmap grants a fresh allocation.
  for (const core::PaezSection& s : a.sections()) {
    if (s.kind == core::kCrfWeights) EXPECT_EQ(s.offset % 4096, 0u);
  }
}

TEST(ModelArtifactTest, PackingAPackedTaggerIsRefused) {
  crf::CrfTagger packed = LoadPackedFixture();
  EXPECT_TRUE(packed.packed());
  const Status status = core::PackModelArtifact(
      packed, nullptr, core::PackOptions(), TempPath("repack.paez"));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // Save is equally unavailable: the artifact on disk already is the
  // serialized form.
  EXPECT_EQ(packed.Save(TempPath("resave.crf")).code(),
            StatusCode::kFailedPrecondition);
}

// ---------------- cross-format equivalence ----------------

TEST(ModelArtifactTest, PackedPredictionsMatchLegacyExactly) {
  crf::CrfTagger legacy;
  ASSERT_TRUE(legacy.Load(Fixture().legacy_path).ok());
  crf::CrfTagger packed = LoadPackedFixture();

  int compared = 0;
  for (const auto& page : Fixture().corpus.pages) {
    for (const auto& sentence : page.sentences) {
      const auto a = legacy.PredictScored(sentence);
      const auto b = packed.PredictScored(sentence);
      EXPECT_EQ(a.labels, b.labels);
      // Same doubles, same arithmetic: bitwise equality, not tolerance.
      EXPECT_EQ(a.confidence, b.confidence);
      if (++compared >= 200) return;
    }
  }
}

TEST(ModelArtifactTest, TriplesByteIdenticalAcrossFormatsAndThreads) {
  crf::CrfTagger legacy;
  ASSERT_TRUE(legacy.Load(Fixture().legacy_path).ok());
  crf::CrfTagger packed = LoadPackedFixture();

  core::ApplyOptions options;
  options.threads = 1;
  const std::vector<core::Triple> reference =
      core::ExtractWithModel(legacy, Fixture().corpus, options);
  ASSERT_FALSE(reference.empty());

  for (const int threads : {1, 8}) {
    options.threads = threads;
    EXPECT_EQ(core::ExtractWithModel(packed, Fixture().corpus, options),
              reference)
        << "packed triples diverge at threads=" << threads;
    EXPECT_EQ(core::ExtractWithModel(legacy, Fixture().corpus, options),
              reference)
        << "legacy triples diverge at threads=" << threads;
  }

  // And on the scalar kernel tier (the PAE_SIMD=scalar run of check.sh).
  ScopedIsa scalar(math::kernels::Isa::kScalar);
  options.threads = 8;
  EXPECT_EQ(core::ExtractWithModel(packed, Fixture().corpus, options),
            reference);
}

// ---------------- zero-copy metric proof ----------------

TEST(ModelArtifactTest, PackedLoadCopiesOnlyLabelBytes) {
  util::Counter* copied = util::MetricsRegistry::Global().GetCounter(
      "model.load.bytes_copied");
  const int64_t weights_bytes = static_cast<int64_t>(
      Fixture().tagger->weights_span().size() * sizeof(double));

  const int64_t before_legacy = copied->value();
  {
    crf::CrfTagger legacy;
    ASSERT_TRUE(legacy.Load(Fixture().legacy_path).ok());
  }
  const int64_t legacy_delta = copied->value() - before_legacy;
  EXPECT_GT(legacy_delta, weights_bytes)
      << "legacy load must copy at least the weight block";

  const int64_t before_packed = copied->value();
  {
    crf::CrfTagger packed = LoadPackedFixture();
    EXPECT_FALSE(packed.weights_span().empty());
  }
  const int64_t packed_delta = copied->value() - before_packed;
  // Labels are the single copied piece — a few hundred bytes against a
  // megabyte-class model. "Zero model-sized allocations" as a counter.
  EXPECT_LT(packed_delta, 4096);
  EXPECT_LT(packed_delta * 100, legacy_delta)
      << "packed load copied more than 1% of the legacy load";
}

// ---------------- packed embeddings ----------------

embed::Word2Vec TrainTinyEmbeddings() {
  embed::Word2VecOptions options;
  options.dim = 24;
  options.epochs = 6;
  options.min_count = 1;
  embed::Word2Vec model(options);
  std::vector<std::vector<std::string>> corpus;
  Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    corpus.push_back({"red", rng.Bernoulli(0.5) ? "blue" : "green",
                      "heavy", rng.Bernoulli(0.3) ? "light" : "solid",
                      "red"});
  }
  PAE_CHECK(model.Train(corpus).ok());
  return model;
}

TEST(ModelArtifactTest, PackedF32EmbeddingsMatchWord2VecExactly) {
  embed::Word2Vec model = TrainTinyEmbeddings();
  const std::string path = TempPath("embed_f32.paez");
  ASSERT_TRUE(core::PackModelArtifact(*Fixture().tagger, &model,
                                      core::PackOptions(), path)
                  .ok());
  core::ModelArtifact::OpenOptions verify;
  verify.verify_checksums = true;
  auto artifact = core::ModelArtifact::Open(path, verify);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  auto packed = core::MakePackedEmbeddings(artifact.value());
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_FALSE(packed.value().quantized());
  EXPECT_EQ(packed.value().dim(), model.dim());

  const std::vector<std::string> words = {"red", "blue", "green", "heavy",
                                          "light", "solid"};
  for (const auto& a : words) {
    EXPECT_EQ(packed.value().Contains(a), model.Contains(a));
    for (const auto& b : words) {
      EXPECT_DOUBLE_EQ(packed.value().Similarity(a, b),
                       model.Similarity(a, b));
    }
  }
  EXPECT_FALSE(packed.value().Contains("zzz"));
  std::remove(path.c_str());
}

TEST(ModelArtifactTest, PackedInt8EmbeddingsTrackQuantizedModel) {
  embed::Word2Vec model = TrainTinyEmbeddings();
  const std::string path = TempPath("embed_i8.paez");
  core::PackOptions options;
  options.quantize_embeddings = true;
  ASSERT_TRUE(
      core::PackModelArtifact(*Fixture().tagger, &model, options, path)
          .ok());
  auto artifact = core::ModelArtifact::Open(path);
  ASSERT_TRUE(artifact.ok()) << artifact.status().ToString();
  ASSERT_TRUE(artifact.value()->embeddings_quantized());
  auto packed = core::MakePackedEmbeddings(artifact.value());
  ASSERT_TRUE(packed.ok()) << packed.status().ToString();
  EXPECT_TRUE(packed.value().quantized());

  // The reference: the same vectors round-tripped through int8 in the
  // float domain. The integer-moment path rounds once instead of per
  // element, so agreement is to float rounding, not bitwise.
  model.QuantizeInPlace();
  const std::vector<std::string> words = {"red", "blue", "green", "heavy",
                                          "light", "solid"};
  for (const auto& a : words) {
    for (const auto& b : words) {
      EXPECT_NEAR(packed.value().Similarity(a, b), model.Similarity(a, b),
                  1e-5)
          << a << " ~ " << b;
    }
  }

  // CopyRow dequantizes to exactly the round-tripped vectors.
  std::vector<float> row(packed.value().dim());
  ASSERT_TRUE(packed.value().CopyRow("red", row.data()));
  const float* reference = model.Vector("red");
  ASSERT_NE(reference, nullptr);
  for (size_t i = 0; i < row.size(); ++i) EXPECT_EQ(row[i], reference[i]);
  std::remove(path.c_str());
}

TEST(ModelArtifactTest, Int8SimilarityBitIdenticalAcrossKernelTiers) {
  embed::Word2Vec model = TrainTinyEmbeddings();
  const std::string path = TempPath("embed_isa.paez");
  core::PackOptions options;
  options.quantize_embeddings = true;
  ASSERT_TRUE(
      core::PackModelArtifact(*Fixture().tagger, &model, options, path)
          .ok());
  auto artifact = core::ModelArtifact::Open(path);
  ASSERT_TRUE(artifact.ok());
  auto packed = core::MakePackedEmbeddings(artifact.value());
  ASSERT_TRUE(packed.ok());

  const std::vector<std::string> words = {"red", "blue", "green", "heavy",
                                          "light", "solid"};
  std::vector<double> reference;
  {
    ScopedIsa scalar(math::kernels::Isa::kScalar);
    for (const auto& a : words) {
      for (const auto& b : words) {
        reference.push_back(packed.value().Similarity(a, b));
      }
    }
  }
  for (const math::kernels::Isa isa :
       {math::kernels::Isa::kSse2, math::kernels::Isa::kAvx2}) {
    if (!math::kernels::IsaSupported(isa)) continue;
    ScopedIsa scoped(isa);
    size_t k = 0;
    for (const auto& a : words) {
      for (const auto& b : words) {
        // Exact integer moments → one shared rounding site → bitwise
        // equality across tiers, the same discipline as the f64 kernels.
        EXPECT_EQ(packed.value().Similarity(a, b), reference[k++])
            << a << " ~ " << b;
      }
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pae
