#include <gtest/gtest.h>

#include "embed/word2vec.h"
#include "util/rng.h"

namespace pae::embed {
namespace {

/// Builds a corpus with two disjoint "topics": color words co-occur with
/// color contexts, weight words with weight contexts. Word2vec should
/// place same-topic words closer than cross-topic words.
std::vector<std::vector<std::string>> TopicCorpus(int n, uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> colors = {"red", "blue", "green", "white"};
  const std::vector<std::string> weights = {"5kg", "3kg", "7kg", "2kg"};
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.5)) {
      corpus.push_back({"the", "color", "is", colors[rng.NextBounded(4)],
                        "and", "also", colors[rng.NextBounded(4)],
                        "paint"});
    } else {
      corpus.push_back({"the", "weight", "is", weights[rng.NextBounded(4)],
                        "and", "heavy", weights[rng.NextBounded(4)],
                        "scale"});
    }
  }
  return corpus;
}

Word2VecOptions SmallOptions() {
  Word2VecOptions options;
  options.dim = 24;
  options.epochs = 8;
  options.window = 3;
  options.min_count = 2;
  options.seed = 11;
  return options;
}

TEST(Word2VecTest, TrainsAndExposesVectors) {
  Word2Vec model(SmallOptions());
  ASSERT_TRUE(model.Train(TopicCorpus(600, 3)).ok());
  EXPECT_TRUE(model.Contains("red"));
  EXPECT_TRUE(model.Contains("5kg"));
  EXPECT_NE(model.Vector("red"), nullptr);
  EXPECT_EQ(model.Vector("nonexistent"), nullptr);
}

TEST(Word2VecTest, SameTopicWordsCloserThanCrossTopic) {
  Word2Vec model(SmallOptions());
  ASSERT_TRUE(model.Train(TopicCorpus(800, 4)).ok());
  const double same_color = model.Similarity("red", "blue");
  const double same_weight = model.Similarity("5kg", "3kg");
  const double cross = model.Similarity("red", "5kg");
  EXPECT_GT(same_color, cross);
  EXPECT_GT(same_weight, cross);
}

TEST(Word2VecTest, SelfSimilarityIsOne) {
  Word2Vec model(SmallOptions());
  ASSERT_TRUE(model.Train(TopicCorpus(300, 5)).ok());
  EXPECT_NEAR(model.Similarity("red", "red"), 1.0, 1e-9);
}

TEST(Word2VecTest, OovSimilarityIsZero) {
  Word2Vec model(SmallOptions());
  ASSERT_TRUE(model.Train(TopicCorpus(300, 6)).ok());
  EXPECT_EQ(model.Similarity("red", "zzz"), 0.0);
}

TEST(Word2VecTest, MinCountDropsRareWords) {
  Word2VecOptions options = SmallOptions();
  options.min_count = 100;  // drop everything rare
  Word2Vec model(options);
  std::vector<std::vector<std::string>> corpus = TopicCorpus(30, 7);
  corpus.push_back({"hapax", "legomenon"});
  // Words above the threshold exist only if frequent enough.
  Status status = model.Train(corpus);
  if (status.ok()) {
    EXPECT_FALSE(model.Contains("hapax"));
  }
}

TEST(Word2VecTest, EmptyCorpusRejected) {
  Word2Vec model(SmallOptions());
  EXPECT_FALSE(model.Train({}).ok());
}

TEST(Word2VecTest, DeterministicGivenSeed) {
  Word2Vec a(SmallOptions()), b(SmallOptions());
  ASSERT_TRUE(a.Train(TopicCorpus(200, 8)).ok());
  ASSERT_TRUE(b.Train(TopicCorpus(200, 8)).ok());
  EXPECT_DOUBLE_EQ(a.Similarity("red", "blue"), b.Similarity("red", "blue"));
}

TEST(Word2VecTest, CosineStaticHelper) {
  const float a[2] = {1.0f, 0.0f};
  const float b[2] = {0.0f, 2.0f};
  EXPECT_NEAR(Word2Vec::Cosine(a, a, 2), 1.0, 1e-9);
  EXPECT_NEAR(Word2Vec::Cosine(a, b, 2), 0.0, 1e-9);
}

}  // namespace
}  // namespace pae::embed
