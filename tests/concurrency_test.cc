// Concurrency suite: byte-identical results across thread counts for
// every parallelized stage (preprocessing, bootstrap, apply, CRF
// training, sharded word2vec), plus scheduling stress. Run it under
// -DPAE_SANITIZE=thread to turn the determinism checks into race
// detection as well (scripts/check.sh does).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/apply.h"
#include "core/bootstrap.h"
#include "core/eval.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "embed/word2vec.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pae {
namespace {

// A small but non-trivial corpus: enough pages that every parallel
// stage actually fans out, small enough that the full pipeline runs in
// seconds per thread-count arm.
core::ProcessedCorpus MakeCorpus(int threads = 1) {
  datagen::GeneratorConfig config;
  config.num_products = 40;
  config.seed = 11;
  datagen::GeneratedCategory category =
      datagen::GenerateCategory(datagen::CategoryId::kVacuumCleaner, config);
  return core::ProcessCorpus(category.corpus,threads);
}

core::PipelineConfig SmallConfig(int threads) {
  core::PipelineConfig config;
  config.model = core::ModelType::kCrf;
  config.iterations = 2;
  config.crf.max_iterations = 20;
  config.seed = 7;
  config.threads = threads;
  config.train_final_model = true;
  return config;
}

// ---------------- preprocessing ----------------

TEST(ConcurrencyTest, ProcessCorpusIdenticalAcrossThreadCounts) {
  datagen::GeneratorConfig config;
  config.num_products = 30;
  config.seed = 5;
  datagen::GeneratedCategory category =
      datagen::GenerateCategory(datagen::CategoryId::kGarden, config);
  const core::ProcessedCorpus serial =
      core::ProcessCorpus(category.corpus,1);
  const core::ProcessedCorpus parallel =
      core::ProcessCorpus(category.corpus,4);
  ASSERT_EQ(serial.pages.size(), parallel.pages.size());
  for (size_t p = 0; p < serial.pages.size(); ++p) {
    const auto& a = serial.pages[p];
    const auto& b = parallel.pages[p];
    EXPECT_EQ(a.product_id, b.product_id);
    ASSERT_EQ(a.sentences.size(), b.sentences.size()) << "page " << p;
    for (size_t s = 0; s < a.sentences.size(); ++s) {
      EXPECT_EQ(a.sentences[s].tokens, b.sentences[s].tokens);
      EXPECT_EQ(a.sentences[s].pos, b.sentences[s].pos);
    }
    ASSERT_EQ(a.tables.size(), b.tables.size()) << "page " << p;
  }
}

// ---------------- full bootstrap pipeline ----------------

TEST(ConcurrencyTest, PipelineByteIdenticalAcrossThreadCounts) {
  const core::ProcessedCorpus corpus = MakeCorpus();

  core::Pipeline serial(SmallConfig(1));
  auto serial_result = serial.Run(corpus);
  ASSERT_TRUE(serial_result.ok()) << serial_result.status().ToString();

  core::Pipeline parallel(SmallConfig(4));
  auto parallel_result = parallel.Run(corpus);
  ASSERT_TRUE(parallel_result.ok()) << parallel_result.status().ToString();

  const core::PipelineResult& a = serial_result.value();
  const core::PipelineResult& b = parallel_result.value();

  // Seed, per-iteration triples, and the final set: exact equality,
  // element order included.
  EXPECT_EQ(a.seed_triples, b.seed_triples);
  ASSERT_EQ(a.triples_after.size(), b.triples_after.size());
  for (size_t i = 0; i < a.triples_after.size(); ++i) {
    EXPECT_EQ(a.triples_after[i], b.triples_after[i]) << "iteration " << i;
  }
  EXPECT_EQ(a.final_triples(), b.final_triples());
  EXPECT_EQ(a.known_pair_keys, b.known_pair_keys);

  // Final model weights: bitwise identical.
  auto* crf_a = dynamic_cast<crf::CrfTagger*>(a.final_tagger.get());
  auto* crf_b = dynamic_cast<crf::CrfTagger*>(b.final_tagger.get());
  ASSERT_NE(crf_a, nullptr);
  ASSERT_NE(crf_b, nullptr);
  const std::vector<double>& wa = crf_a->weights();
  const std::vector<double>& wb = crf_b->weights();
  ASSERT_EQ(wa.size(), wb.size());
  ASSERT_FALSE(wa.empty());
  EXPECT_EQ(0, std::memcmp(wa.data(), wb.data(),
                           wa.size() * sizeof(double)));
}

// ---------------- apply phase ----------------

TEST(ConcurrencyTest, ApplyByteIdenticalAcrossThreadCounts) {
  const core::ProcessedCorpus corpus = MakeCorpus();
  core::Pipeline pipeline(SmallConfig(1));
  auto result = pipeline.Run(corpus);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result.value().final_tagger, nullptr);
  const text::SequenceTagger& tagger = *result.value().final_tagger;

  core::ApplyOptions serial_options;
  serial_options.threads = 1;
  for (const std::string& key : result.value().known_pair_keys) {
    serial_options.accepted_pairs.insert(key);
  }
  core::ApplyOptions parallel_options = serial_options;
  parallel_options.threads = 4;

  const std::vector<core::Triple> serial_triples =
      core::ExtractWithModel(tagger, corpus, serial_options);
  const std::vector<core::Triple> parallel_triples =
      core::ExtractWithModel(tagger, corpus, parallel_options);
  ASSERT_FALSE(serial_triples.empty());
  EXPECT_EQ(serial_triples, parallel_triples);
}

// ---------------- CRF training ----------------

TEST(ConcurrencyTest, CrfTrainingWeightsBitIdenticalAcrossThreadCounts) {
  Rng rng(3);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < 120; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"重量", "は", v, "kg", "です"};
    seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
    seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
    data.push_back(std::move(seq));
  }
  std::vector<std::vector<double>> weights_by_threads;
  for (int threads : {1, 2, 4}) {
    crf::CrfOptions options;
    options.max_iterations = 25;
    options.threads = threads;
    crf::CrfTagger tagger(options);
    ASSERT_TRUE(tagger.Train(data).ok());
    weights_by_threads.push_back(tagger.weights());
  }
  for (size_t i = 1; i < weights_by_threads.size(); ++i) {
    ASSERT_EQ(weights_by_threads[0].size(), weights_by_threads[i].size());
    EXPECT_EQ(0, std::memcmp(weights_by_threads[0].data(),
                             weights_by_threads[i].data(),
                             weights_by_threads[0].size() * sizeof(double)))
        << "threads arm " << i;
  }
}

// ---------------- sharded word2vec ----------------

TEST(ConcurrencyTest, ShardedWord2VecIdenticalAcrossThreadCounts) {
  Rng rng(9);
  std::vector<std::vector<std::string>> corpus;
  for (int i = 0; i < 300; ++i) {
    std::vector<std::string> sentence;
    for (int k = 0; k < 8; ++k) {
      sentence.push_back("w" + std::to_string(rng.NextBounded(150)));
    }
    corpus.push_back(std::move(sentence));
  }
  auto train_with = [&](int threads) {
    embed::Word2VecOptions options;
    options.dim = 16;
    options.epochs = 2;
    options.min_count = 1;
    options.shards = 8;
    options.threads = threads;
    embed::Word2Vec model(options);
    EXPECT_TRUE(model.Train(corpus).ok());
    return model;
  };
  const embed::Word2Vec serial = train_with(1);
  const embed::Word2Vec parallel = train_with(4);
  ASSERT_EQ(serial.vocab_size(), parallel.vocab_size());
  size_t compared = 0;
  for (int w = 0; w < 150; ++w) {
    const std::string word = "w" + std::to_string(w);
    const float* va = serial.Vector(word);
    const float* vb = parallel.Vector(word);
    ASSERT_EQ(va == nullptr, vb == nullptr) << word;
    if (va == nullptr) continue;
    EXPECT_EQ(0, std::memcmp(va, vb, serial.dim() * sizeof(float))) << word;
    ++compared;
  }
  EXPECT_GT(compared, 100u);
}

// ---------------- scheduling stress ----------------

TEST(ConcurrencyTest, StressManyTinyLoops) {
  // Thousands of tiny jobs exercise job hand-off, wake-up, and teardown
  // paths far more than a few big loops would.
  util::ThreadPool pool(4);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 2000; ++round) {
    pool.ParallelFor(0, 5, 1, [&](size_t i) { total += i + 1; });
  }
  EXPECT_EQ(total.load(std::memory_order_seq_cst), 2000u * 15u);
}

TEST(ConcurrencyTest, StressManyTinyPools) {
  for (int round = 0; round < 200; ++round) {
    util::ThreadPool pool(3);
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, 16, 2, [&](size_t i) { sum += i; });
    ASSERT_EQ(sum.load(std::memory_order_seq_cst), 120u) << "round " << round;
  }
}

TEST(ConcurrencyTest, StressExceptionsUnderLoad) {
  util::ThreadPool pool(4);
  for (int round = 0; round < 100; ++round) {
    try {
      pool.ParallelFor(0, 64, 1, [&](size_t i) {
        if (i % 7 == 3) {
          throw std::runtime_error("i=" + std::to_string(i));
        }
      });
      FAIL() << "expected an exception in round " << round;
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "i=3");  // lowest throwing chunk, always
    }
  }
}

}  // namespace
}  // namespace pae
