// Metrics layer: counter/gauge/histogram/series semantics, scoped
// timers, registry identity and reset, JSON run-report shape, and the
// observational guarantee — extraction output is byte-identical with
// metrics enabled or disabled, at any thread count.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/bootstrap.h"
#include "datagen/generator.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace pae::util {
namespace {

/// Restores the global registry's enabled flag on scope exit so tests
/// that flip it cannot poison later tests in the same process.
class EnabledGuard {
 public:
  EnabledGuard() : was_(MetricsRegistry::Global().enabled()) {}
  ~EnabledGuard() { MetricsRegistry::Global().set_enabled(was_); }

 private:
  bool was_;
};

TEST(MetricsTest, CounterAddsAndIncrements) {
  Counter* counter = MetricsRegistry::Global().GetCounter("test.counter.a");
  const int64_t before = counter->value();
  counter->Increment();
  counter->Add(41);
  EXPECT_EQ(counter->value(), before + 42);
}

TEST(MetricsTest, GaugeIsLastWriteWins) {
  Gauge* gauge = MetricsRegistry::Global().GetGauge("test.gauge.a");
  gauge->Set(1.5);
  gauge->Set(-2.25);
  EXPECT_EQ(gauge->value(), -2.25);
}

TEST(MetricsTest, HistogramBucketsUseLeSemantics) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.histogram.le", std::vector<double>{1.0, 2.0, 3.0});
  h->Observe(1.0);  // exactly on a bound lands in that bucket
  h->Observe(1.5);
  h->Observe(3.0);
  h->Observe(4.0);  // past the last bound → overflow
  EXPECT_EQ(h->bucket_counts(), (std::vector<uint64_t>{1, 1, 1, 1}));
  EXPECT_EQ(h->count(), 4u);
  EXPECT_DOUBLE_EQ(h->sum(), 9.5);
  EXPECT_DOUBLE_EQ(h->min(), 1.0);
  EXPECT_DOUBLE_EQ(h->max(), 4.0);
}

TEST(MetricsTest, SeriesPreservesOrder) {
  Series* series = MetricsRegistry::Global().GetSeries("test.series.a");
  series->Append(3.0);
  series->Append(1.0);
  series->Extend({2.0, 0.5});
  EXPECT_EQ(series->values(), (std::vector<double>{3.0, 1.0, 2.0, 0.5}));
  EXPECT_EQ(series->size(), 4u);
}

TEST(MetricsTest, ScopedTimerObservesOnceAndOnlyOnce) {
  Histogram* h = MetricsRegistry::Global().GetHistogram(
      "test.timer.seconds", DefaultLatencyBoundsSeconds());
  const uint64_t before = h->count();
  ScopedTimer timer(h);
  const double elapsed = timer.Stop();
  EXPECT_GE(elapsed, 0.0);
  EXPECT_EQ(h->count(), before + 1);
  EXPECT_EQ(timer.Stop(), 0.0);  // second Stop is a no-op
  EXPECT_EQ(h->count(), before + 1);
}

TEST(MetricsTest, NullTimerIsInert) {
  ScopedTimer timer(nullptr);
  EXPECT_EQ(timer.Stop(), 0.0);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_EQ(registry.GetCounter("test.identity.c"),
            registry.GetCounter("test.identity.c"));
  EXPECT_EQ(registry.GetGauge("test.identity.g"),
            registry.GetGauge("test.identity.g"));
  EXPECT_EQ(registry.GetHistogram("test.identity.h"),
            registry.GetHistogram("test.identity.h"));
  EXPECT_EQ(registry.GetSeries("test.identity.s"),
            registry.GetSeries("test.identity.s"));
}

TEST(MetricsTest, TypeMismatchIsFatal) {
  MetricsRegistry::Global().GetCounter("test.mismatch");
  EXPECT_DEATH(MetricsRegistry::Global().GetGauge("test.mismatch"),
               "different type");
}

TEST(MetricsTest, DisabledRegistryMutationsAreNoOps) {
  EnabledGuard guard;
  MetricsRegistry& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter("test.disabled.c");
  Histogram* h = registry.GetHistogram("test.disabled.h");
  Series* series = registry.GetSeries("test.disabled.s");
  registry.set_enabled(false);
  const int64_t counter_before = counter->value();
  counter->Add(100);
  h->Observe(1.0);
  series->Append(1.0);
  {
    ScopedTimer timer(h);  // must not observe either
  }
  EXPECT_EQ(counter->value(), counter_before);
  EXPECT_EQ(h->count(), 0u);
  EXPECT_EQ(series->size(), 0u);
}

TEST(MetricsTest, StandaloneRegistryResetsToZero) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add(5);
  registry.GetGauge("g")->Set(2.0);
  registry.GetHistogram("h")->Observe(1.0);
  registry.GetSeries("s")->Append(1.0);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c")->value(), 0);
  EXPECT_EQ(registry.GetGauge("g")->value(), 0.0);
  EXPECT_EQ(registry.GetHistogram("h")->count(), 0u);
  EXPECT_EQ(registry.GetSeries("s")->size(), 0u);
}

TEST(MetricsTest, ConcurrentCounterIncrementsAreExact) {
  Counter* counter =
      MetricsRegistry::Global().GetCounter("test.concurrent.c");
  const int64_t before = counter->value();
  ThreadPool pool(4);
  pool.ParallelFor(0, 10000, 1, [&](size_t) { counter->Increment(); });
  EXPECT_EQ(counter->value(), before + 10000);
}

// ---------------- JSON report ----------------

/// Minimal recursive-descent JSON checker: accepts exactly the subset
/// the report writer emits and rejects structural breakage (unbalanced
/// braces, trailing commas, bare tokens).
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      default:
        return Literal();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') return ++pos_, true;
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') return ++pos_, true;
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;
    return true;
  }

  bool Literal() {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(MetricsTest, JsonReportHasAllTopLevelKeysAndParses) {
  MetricsRegistry registry;
  registry.GetCounter("c.one")->Add(7);
  registry.GetGauge("g.one")->Set(0.5);
  registry.GetHistogram("h.one", {1.0, 10.0})->Observe(2.0);
  registry.GetSeries("s.one")->Extend({1.0, 2.0, 3.0});

  std::ostringstream os;
  registry.Snapshot().WriteJson(os);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(MetricsTest, JsonReportEmitsNullForNonFinite) {
  MetricsRegistry registry;
  registry.GetGauge("g.nan")->Set(std::nan(""));
  std::ostringstream os;
  registry.Snapshot().WriteJson(os);
  EXPECT_NE(os.str().find("\"g.nan\": null"), std::string::npos);
  EXPECT_TRUE(JsonChecker(os.str()).Valid()) << os.str();
}

TEST(MetricsTest, EmptyReportIsStillValidJson) {
  MetricsRegistry registry;
  std::ostringstream os;
  registry.Snapshot().WriteJson(os);
  EXPECT_TRUE(JsonChecker(os.str()).Valid()) << os.str();
}

TEST(MetricsTest, PrintSummaryRendersEveryKind) {
  MetricsRegistry registry;
  registry.GetCounter("c.one")->Add(7);
  registry.GetGauge("g.one")->Set(0.5);
  registry.GetHistogram("h.one")->Observe(2.0);
  registry.GetSeries("s.one")->Extend({1.0, 2.0});
  std::ostringstream os;
  registry.Snapshot().PrintSummary(os);
  EXPECT_NE(os.str().find("c.one"), std::string::npos);
  EXPECT_NE(os.str().find("g.one"), std::string::npos);
  EXPECT_NE(os.str().find("h.one"), std::string::npos);
  EXPECT_NE(os.str().find("s.one"), std::string::npos);
}

// ---------------- observational guarantee ----------------

std::vector<core::Triple> RunSmallPipeline(int threads) {
  datagen::GeneratorConfig generator_config;
  generator_config.num_products = 40;
  generator_config.seed = 13;
  datagen::GeneratedCategory generated = datagen::GenerateCategory(
      datagen::CategoryId::kVacuumCleaner, generator_config);
  core::ProcessedCorpus corpus =
      core::ProcessCorpus(generated.corpus, threads);

  core::PipelineConfig config;
  config.model = core::ModelType::kCrf;
  config.iterations = 2;
  config.crf.max_iterations = 15;
  config.threads = threads;
  config.seed = 5;
  core::Pipeline pipeline(config);
  auto result = pipeline.Run(corpus);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (!result.ok()) return {};
  return result.value().final_triples();
}

TEST(MetricsTest, ExtractionIsIdenticalWithMetricsOnOrOff) {
  EnabledGuard guard;
  MetricsRegistry::Global().set_enabled(true);
  const std::vector<core::Triple> with_metrics = RunSmallPipeline(1);
  MetricsRegistry::Global().set_enabled(false);
  const std::vector<core::Triple> without_metrics = RunSmallPipeline(1);
  const std::vector<core::Triple> without_metrics_mt = RunSmallPipeline(4);
  ASSERT_FALSE(with_metrics.empty());
  EXPECT_EQ(with_metrics, without_metrics);
  EXPECT_EQ(with_metrics, without_metrics_mt);
}

TEST(MetricsTest, PipelineFillsCoreMetrics) {
  EnabledGuard guard;
  MetricsRegistry::Global().set_enabled(true);
  RunSmallPipeline(2);
  MetricsRegistry& registry = MetricsRegistry::Global();
  EXPECT_GT(registry.GetCounter("preprocess.pages")->value(), 0);
  EXPECT_GT(registry.GetCounter("seed.pairs")->value(), 0);
  EXPECT_GT(registry.GetCounter("crf.trainings")->value(), 0);
  EXPECT_GT(registry.GetCounter("cleaning.input")->value(), 0);
  EXPECT_GT(registry.GetCounter("threadpool.jobs")->value(), 0);
  EXPECT_GE(registry.GetSeries("bootstrap.triples_total")->size(), 2u);
  EXPECT_GT(registry.GetSeries("crf.objective")->size(), 0u);
  EXPECT_GT(registry.GetHistogram("bootstrap.seconds")->count(), 0u);
}

}  // namespace
}  // namespace pae::util
