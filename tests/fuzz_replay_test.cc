// Deterministic fuzz-harness coverage: replays the committed corpus
// under fuzz/corpus/ through both harnesses and then runs
// structure-aware mutation sweeps (header bytes, section-table fields,
// meta counts, frame length words) derived from the seed inputs. This
// is the regression gate on toolchains without libFuzzer — under ASan
// or UBSan any out-of-mapping read or hostile-arithmetic trap fails
// the suite; in plain builds it still catches crashes and logic traps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/model_artifact.h"
#include "frame_harness.h"
#include "paez_harness.h"
#include "paez_mutator.h"

namespace pae {
namespace {

namespace fs = std::filesystem;

std::string CorpusDir(const std::string& target) {
  return std::string(PAE_FUZZ_CORPUS_DIR) + "/" + target;
}

std::vector<std::string> CorpusFiles(const std::string& target) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(CorpusDir(target))) {
    if (entry.is_regular_file()) files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

const uint8_t* Bytes(const std::string& s) {
  return static_cast<const uint8_t*>(static_cast<const void*>(s.data()));
}

void RunPaez(const std::string& input) {
  fuzz::FuzzPaezOneInput(Bytes(input), input.size());
}

void RunFrame(const std::string& input) {
  fuzz::FuzzFrameOneInput(Bytes(input), input.size());
}

// ---------------- committed corpus replay ----------------

TEST(FuzzReplayTest, PaezCorpusReplaysClean) {
  const std::vector<std::string> files = CorpusFiles("paez");
  // Seeds + malformed variants + the overflow reproducer; an empty or
  // half-missing corpus means the replay gate is not gating anything.
  ASSERT_GE(files.size(), 8u);
  for (const std::string& file : files) RunPaez(ReadBytes(file));
}

TEST(FuzzReplayTest, FrameCorpusReplaysClean) {
  const std::vector<std::string> files = CorpusFiles("frame");
  ASSERT_GE(files.size(), 10u);
  for (const std::string& file : files) RunFrame(ReadBytes(file));
}

TEST(FuzzReplayTest, SeedArtifactsActuallyOpen) {
  // The mutation sweeps below only bite if the seeds they start from
  // are valid artifacts that pass the strict open.
  int opened = 0;
  for (const std::string& file : CorpusFiles("paez")) {
    if (file.find("seed-") == std::string::npos) continue;
    core::ModelArtifact::OpenOptions verify;
    verify.verify_checksums = true;
    auto artifact = core::ModelArtifact::Open(file, verify);
    EXPECT_TRUE(artifact.ok()) << file << ": " << artifact.status().ToString();
    ++opened;
  }
  EXPECT_EQ(opened, 3);
}

// ---------------- the overflow regression entry ----------------

// The committed reproducer: feature_slot_count = 2^60 made the
// expected-bytes multiplication (count × 16) wrap to 0, so a
// zero-length slots section passed validation and StringTableView's
// probe read far outside the mapping. The overflow-safe element-count
// check must reject it at Open, on both open configurations.
TEST(FuzzReplayTest, SlotCountOverflowArtifactIsRejected) {
  const std::string path =
      CorpusDir("paez") + "/regression-slot-count-overflow.paez";
  ASSERT_TRUE(fs::exists(path)) << "regression corpus entry missing";

  auto serving = core::ModelArtifact::Open(path);
  ASSERT_FALSE(serving.ok());
  EXPECT_NE(serving.status().ToString().find("element count exceeds"),
            std::string::npos)
      << serving.status().ToString();

  core::ModelArtifact::OpenOptions verify;
  verify.verify_checksums = true;
  auto checked = core::ModelArtifact::Open(path, verify);
  EXPECT_FALSE(checked.ok());
}

// ---------------- structure-aware .paez mutation sweeps ----------------

class PaezMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = ReadBytes(CorpusDir("paez") + "/seed-crf.paez");
    ASSERT_GT(seed_.size(), core::kPaezHeaderBytes);
  }

  std::string seed_;
};

TEST_F(PaezMutationTest, HeaderByteFlipsNeverCrash) {
  // Every header byte, three interesting overwrite values each. These
  // mostly die at magic/version/shape checks — the sweep proves they
  // die cleanly.
  for (size_t i = 0; i < core::kPaezHeaderBytes; ++i) {
    for (const char value : {'\x00', '\xff', '\x80'}) {
      std::string mutated = seed_;
      mutated[i] = value;
      RunPaez(mutated);
    }
  }
}

TEST_F(PaezMutationTest, RestampedSectionFieldMutationsNeverCrash) {
  // Hostile section-table fields with the table checksum restamped so
  // the mutation penetrates past the integrity gate and reaches the
  // structural validators. Offsets/lengths probe the overflow corners;
  // kind/align probe the shape checks.
  core::PaezHeader header;
  ASSERT_TRUE(fuzz::ReadPaezHeader(seed_, &header));
  const uint64_t hostile[] = {0,
                              1,
                              0x7fffffffull,
                              0xffffffffull,
                              1ull << 40,
                              1ull << 60,
                              0xffffffffffffffffull};
  for (size_t index = 0; index < header.section_count; ++index) {
    for (const uint64_t value : hostile) {
      for (const int field : {0, 1, 2, 3}) {  // kind, align, offset, length
        std::string mutated = seed_;
        core::PaezSection section;
        ASSERT_TRUE(fuzz::ReadPaezSection(mutated, index, &section));
        switch (field) {
          case 0: section.kind = static_cast<uint32_t>(value); break;
          case 1: section.align = static_cast<uint32_t>(value); break;
          case 2: section.offset = value; break;
          default: section.length = value; break;
        }
        fuzz::WritePaezSection(&mutated, index, section);
        fuzz::RestampPaezTableChecksum(&mutated);
        RunPaez(mutated);
      }
    }
  }
}

TEST_F(PaezMutationTest, RestampedMetaCountMutationsNeverCrash) {
  // The meta-count class the overflow reproducer came from: hostile
  // feature_slot_count / weight_count / num_features values with both
  // checksums restamped, so validation logic (not integrity) decides.
  const int meta_index = fuzz::FindPaezSection(seed_, core::kCrfMeta);
  ASSERT_GE(meta_index, 0);
  core::PaezSection meta_section;
  ASSERT_TRUE(fuzz::ReadPaezSection(seed_, meta_index, &meta_section));
  ASSERT_EQ(meta_section.length, sizeof(core::PaezCrfMeta));

  const uint64_t hostile[] = {0,       1,         3,        1ull << 32,
                              1ull << 60, 1ull << 63, 0xffffffffffffffffull};
  for (const uint64_t value : hostile) {
    for (const int field : {0, 1, 2}) {
      std::string mutated = seed_;
      core::PaezCrfMeta meta;
      std::memcpy(&meta, mutated.data() + meta_section.offset, sizeof(meta));
      switch (field) {
        case 0: meta.feature_slot_count = value; break;
        case 1: meta.weight_count = value; break;
        default: meta.num_features = static_cast<uint32_t>(value); break;
      }
      std::memcpy(mutated.data() + meta_section.offset, &meta, sizeof(meta));
      fuzz::RestampPaezSectionChecksum(&mutated, meta_index);
      fuzz::RestampPaezTableChecksum(&mutated);
      RunPaez(mutated);
    }
  }
}

TEST_F(PaezMutationTest, TruncationAtEveryStructuralBoundaryNeverCrashes) {
  const size_t boundaries[] = {0,
                               4,
                               8,
                               core::kPaezHeaderBytes - 1,
                               core::kPaezHeaderBytes,
                               core::kPaezHeaderBytes + 1,
                               core::kPaezHeaderBytes + sizeof(core::PaezSection),
                               seed_.size() / 2,
                               seed_.size() - 1};
  for (const size_t at : boundaries) {
    RunPaez(seed_.substr(0, std::min(at, seed_.size())));
  }
}

// ---------------- structure-aware frame mutation sweeps ----------------

class FrameMutationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    seed_ = ReadBytes(CorpusDir("frame") + "/seed-extract.bin");
    ASSERT_GT(seed_.size(), sizeof(uint32_t));
  }

  std::string seed_;
};

TEST_F(FrameMutationTest, LengthWordMutationsNeverCrash) {
  const uint32_t hostile[] = {0,          1,           100,
                              0x00ffffff, 0x04000000,  // kMaxFrameBytes
                              0x7fffffff, 0xffffffffu};
  for (const uint32_t value : hostile) {
    std::string mutated = seed_;
    std::memcpy(mutated.data(), &value, sizeof(value));
    RunFrame(mutated);
  }
}

TEST_F(FrameMutationTest, EveryOpcodeByteNeverCrashes) {
  // One-byte payload sweeping all 256 opcodes: the five real ones
  // decode (with empty or truncated bodies), the rest must fail clean.
  for (int op = 0; op < 256; ++op) {
    std::string payload(1, static_cast<char>(op));
    const uint32_t length = 1;
    std::string frame(sizeof(length), '\0');
    std::memcpy(frame.data(), &length, sizeof(length));
    RunFrame(frame + payload);
  }
}

TEST_F(FrameMutationTest, TruncationAtEveryPrefixNeverCrashes) {
  // Every prefix of a real extract-request frame: EOF inside the
  // length word, inside the opcode, inside each string's length and
  // body. Small frame, so the full sweep is cheap.
  for (size_t at = 0; at <= seed_.size(); ++at) {
    RunFrame(seed_.substr(0, at));
  }
}

TEST_F(FrameMutationTest, PayloadByteFlipsNeverCrash) {
  for (size_t i = sizeof(uint32_t); i < seed_.size(); ++i) {
    for (const char value : {'\x00', '\xff'}) {
      std::string mutated = seed_;
      mutated[i] = value;
      RunFrame(mutated);
    }
  }
}

}  // namespace
}  // namespace pae
