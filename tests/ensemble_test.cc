// Ensemble tagger (CRF ∘ BiLSTM combinations) and confidence-scored
// prediction / span-confidence filtering.

#include <gtest/gtest.h>

#include <memory>

#include "core/bootstrap.h"
#include "core/ensemble.h"
#include "core/eval.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "lstm/bilstm_tagger.h"
#include "util/rng.h"

namespace pae {
namespace {

/// A deterministic fake tagger that emits a fixed label sequence with a
/// fixed confidence, regardless of input.
class FakeTagger : public text::SequenceTagger {
 public:
  FakeTagger(std::vector<std::string> labels, double confidence)
      : labels_(std::move(labels)), confidence_(confidence) {}

  Status Train(const std::vector<text::LabeledSequence>&) override {
    return Status::Ok();
  }
  std::vector<std::string> Predict(
      const text::LabeledSequence& seq) const override {
    std::vector<std::string> out = labels_;
    out.resize(seq.tokens.size(), text::kOutsideLabel);
    return out;
  }
  ScoredPrediction PredictScored(
      const text::LabeledSequence& seq) const override {
    ScoredPrediction out;
    out.labels = Predict(seq);
    out.confidence.assign(out.labels.size(), confidence_);
    return out;
  }
  std::string Name() const override { return "fake"; }

 private:
  std::vector<std::string> labels_;
  double confidence_;
};

text::LabeledSequence FourTokens() {
  text::LabeledSequence seq;
  seq.tokens = {"t0", "t1", "t2", "t3"};
  seq.pos = {"NN", "NN", "NN", "NN"};
  return seq;
}

TEST(EnsembleTest, IntersectionKeepsOnlyAgreedSpans) {
  auto a = std::make_unique<FakeTagger>(
      std::vector<std::string>{"B-x", "I-x", "O", "B-y"}, 0.9);
  auto b = std::make_unique<FakeTagger>(
      std::vector<std::string>{"B-x", "I-x", "O", "O"}, 0.8);
  core::EnsembleTagger ensemble(std::move(a), std::move(b),
                                core::EnsembleMode::kIntersection);
  std::vector<std::string> labels = ensemble.Predict(FourTokens());
  EXPECT_EQ(labels,
            (std::vector<std::string>{"B-x", "I-x", "O", "O"}));
}

TEST(EnsembleTest, IntersectionRequiresIdenticalBoundaries) {
  auto a = std::make_unique<FakeTagger>(
      std::vector<std::string>{"B-x", "I-x", "O", "O"}, 0.9);
  auto b = std::make_unique<FakeTagger>(
      std::vector<std::string>{"B-x", "O", "O", "O"}, 0.8);
  core::EnsembleTagger ensemble(std::move(a), std::move(b),
                                core::EnsembleMode::kIntersection);
  std::vector<std::string> labels = ensemble.Predict(FourTokens());
  // Boundaries differ → span dropped entirely.
  EXPECT_EQ(labels, (std::vector<std::string>{"O", "O", "O", "O"}));
}

TEST(EnsembleTest, IntersectionConfidenceIsMin) {
  auto a = std::make_unique<FakeTagger>(
      std::vector<std::string>{"B-x", "O", "O", "O"}, 0.9);
  auto b = std::make_unique<FakeTagger>(
      std::vector<std::string>{"B-x", "O", "O", "O"}, 0.6);
  core::EnsembleTagger ensemble(std::move(a), std::move(b),
                                core::EnsembleMode::kIntersection);
  auto scored = ensemble.PredictScored(FourTokens());
  EXPECT_NEAR(scored.confidence[0], 0.6, 1e-12);
}

TEST(EnsembleTest, UnionAddsNonOverlappingSpans) {
  auto a = std::make_unique<FakeTagger>(
      std::vector<std::string>{"B-x", "O", "O", "O"}, 0.9);
  auto b = std::make_unique<FakeTagger>(
      std::vector<std::string>{"O", "O", "B-y", "I-y"}, 0.8);
  core::EnsembleTagger ensemble(std::move(a), std::move(b),
                                core::EnsembleMode::kUnion);
  std::vector<std::string> labels = ensemble.Predict(FourTokens());
  EXPECT_EQ(labels,
            (std::vector<std::string>{"B-x", "O", "B-y", "I-y"}));
}

TEST(EnsembleTest, UnionFirstMemberWinsOverlaps) {
  auto a = std::make_unique<FakeTagger>(
      std::vector<std::string>{"B-x", "I-x", "O", "O"}, 0.9);
  auto b = std::make_unique<FakeTagger>(
      std::vector<std::string>{"O", "B-y", "I-y", "O"}, 0.8);
  core::EnsembleTagger ensemble(std::move(a), std::move(b),
                                core::EnsembleMode::kUnion);
  std::vector<std::string> labels = ensemble.Predict(FourTokens());
  EXPECT_EQ(labels,
            (std::vector<std::string>{"B-x", "I-x", "O", "O"}));
}

TEST(EnsembleTest, NameEncodesModeAndMembers) {
  core::EnsembleTagger ensemble(
      std::make_unique<crf::CrfTagger>(),
      std::make_unique<lstm::BiLstmTagger>(),
      core::EnsembleMode::kIntersection);
  EXPECT_EQ(ensemble.Name(), "ensemble-intersect(crf,bilstm)");
}

// ---------------- real models through the pipeline ----------------

struct PipelineMetrics {
  core::TripleMetrics metrics;
};

core::TripleMetrics RunModel(const datagen::GeneratedCategory& category,
                             const core::ProcessedCorpus& corpus,
                             core::ModelType model) {
  core::PipelineConfig config;
  config.model = model;
  config.iterations = 1;
  config.crf.max_iterations = 30;
  config.lstm.epochs = 3;
  config.seed = 7;
  core::Pipeline pipeline(config);
  auto result = pipeline.Run(corpus);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return core::EvaluateTriples(result.value().final_triples(),
                               category.truth, corpus.pages.size());
}

TEST(EnsembleTest, IntersectionTradesCoverageForPrecision) {
  datagen::GeneratorConfig gen;
  gen.num_products = 250;
  gen.seed = 42;
  auto category =
      datagen::GenerateCategory(datagen::CategoryId::kLadiesBags, gen);
  core::ProcessedCorpus corpus = core::ProcessCorpus(category.corpus);

  auto intersect =
      RunModel(category, corpus, core::ModelType::kEnsembleIntersection);
  auto united = RunModel(category, corpus, core::ModelType::kEnsembleUnion);
  // Union covers at least as much as intersection; intersection is at
  // least as precise (up to small-sample noise: allow equality).
  EXPECT_GE(united.coverage, intersect.coverage);
  EXPECT_GE(intersect.precision + 2.0, united.precision);
  EXPECT_GT(intersect.total, 0u);
}

// ---------------- confidence filtering ----------------

TEST(ConfidenceTest, CrfConfidencesAreProbabilities) {
  Rng rng(5);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < 60; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"色", "は", v, "番"};
    seq.pos = {"NN", "PRT", "NUM", "NN"};
    seq.labels = {"O", "O", "B-色", "I-色"};
    data.push_back(std::move(seq));
  }
  crf::CrfOptions options;
  options.max_iterations = 25;
  crf::CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(data).ok());
  auto scored = tagger.PredictScored(data[0]);
  ASSERT_EQ(scored.confidence.size(), 4u);
  for (double c : scored.confidence) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
}

TEST(ConfidenceTest, ThresholdMonotonicallyReducesTriples) {
  datagen::GeneratorConfig gen;
  gen.num_products = 200;
  gen.seed = 11;
  auto category =
      datagen::GenerateCategory(datagen::CategoryId::kKitchen, gen);
  core::ProcessedCorpus corpus = core::ProcessCorpus(category.corpus);

  size_t previous = SIZE_MAX;
  for (double threshold : {0.0, 0.7, 0.95}) {
    core::PipelineConfig config;
    config.iterations = 1;
    config.crf.max_iterations = 30;
    config.min_span_confidence = threshold;
    config.seed = 7;
    core::Pipeline pipeline(config);
    auto result = pipeline.Run(corpus);
    ASSERT_TRUE(result.ok());
    const size_t total = core::EvaluateTriples(
        result.value().final_triples(), category.truth,
        corpus.pages.size()).total;
    EXPECT_LE(total, previous);
    previous = total;
  }
}

}  // namespace
}  // namespace pae
