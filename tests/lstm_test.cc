#include <gtest/gtest.h>

#include <cmath>

#include "lstm/bilstm_tagger.h"
#include "lstm/lstm_cell.h"
#include "util/rng.h"

namespace pae::lstm {
namespace {

// ---------------- LSTM cell ----------------

TEST(LstmCellTest, ForwardShapes) {
  Rng rng(1);
  LstmParams params(3, 4);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(5, std::vector<float>(3, 0.1f));
  LstmTrace trace;
  LstmForward(params, inputs, &trace);
  ASSERT_EQ(trace.h.size(), 5u);
  EXPECT_EQ(trace.h[0].size(), 4u);
  EXPECT_EQ(trace.c.size(), 5u);
}

TEST(LstmCellTest, HiddenStateBounded) {
  Rng rng(2);
  LstmParams params(2, 3);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(20, std::vector<float>(2, 5.0f));
  LstmTrace trace;
  LstmForward(params, inputs, &trace);
  for (const auto& h : trace.h) {
    for (float v : h) EXPECT_LE(std::fabs(v), 1.0f);  // |o·tanh(c)| ≤ 1
  }
}

TEST(LstmCellTest, EmptySequence) {
  Rng rng(3);
  LstmParams params(2, 3);
  params.Init(&rng);
  LstmTrace trace;
  LstmForward(params, {}, &trace);
  EXPECT_TRUE(trace.h.empty());
  LstmParams grad(2, 3);
  std::vector<std::vector<float>> dx;
  LstmBackward(params, trace, {}, &grad, &dx);
  EXPECT_TRUE(dx.empty());
}

/// Scalar loss for gradient checking: sum of all hidden states.
double ForwardLoss(const LstmParams& params,
                   const std::vector<std::vector<float>>& inputs) {
  LstmTrace trace;
  LstmForward(params, inputs, &trace);
  double loss = 0;
  for (const auto& h : trace.h) {
    for (float v : h) loss += v;
  }
  return loss;
}

class LstmGradientTest : public ::testing::TestWithParam<int> {};

TEST_P(LstmGradientTest, BackwardMatchesFiniteDifferences) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 5);
  const size_t in_dim = 3, hidden = 4, T = 4;
  LstmParams params(in_dim, hidden);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(T, std::vector<float>(in_dim));
  for (auto& x : inputs) {
    for (float& v : x) v = static_cast<float>(rng.NextGaussian() * 0.5);
  }

  LstmTrace trace;
  LstmForward(params, inputs, &trace);
  // dLoss/dh = 1 everywhere.
  std::vector<std::vector<float>> dh(T, std::vector<float>(hidden, 1.0f));
  LstmParams grad(in_dim, hidden);
  std::vector<std::vector<float>> dx;
  LstmBackward(params, trace, dh, &grad, &dx);

  const float eps = 1e-3f;
  // Check a few parameter coordinates in each block.
  auto check_matrix = [&](math::Matrix* m, const math::Matrix& g,
                          const char* name) {
    for (int probe = 0; probe < 5; ++probe) {
      const size_t r = rng.NextBounded(m->rows());
      const size_t c = rng.NextBounded(m->cols());
      const float saved = m->at(r, c);
      m->at(r, c) = saved + eps;
      const double fp = ForwardLoss(params, inputs);
      m->at(r, c) = saved - eps;
      const double fm = ForwardLoss(params, inputs);
      m->at(r, c) = saved;
      const double numeric = (fp - fm) / (2 * eps);
      EXPECT_NEAR(g.at(r, c), numeric, 5e-2)
          << name << "[" << r << "," << c << "]";
    }
  };
  check_matrix(&params.wx, grad.wx, "wx");
  check_matrix(&params.wh, grad.wh, "wh");

  // Bias coordinates.
  for (int probe = 0; probe < 4; ++probe) {
    const size_t i = rng.NextBounded(params.b.size());
    const float saved = params.b[i];
    params.b[i] = saved + eps;
    const double fp = ForwardLoss(params, inputs);
    params.b[i] = saved - eps;
    const double fm = ForwardLoss(params, inputs);
    params.b[i] = saved;
    EXPECT_NEAR(grad.b[i], (fp - fm) / (2 * eps), 5e-2) << "b[" << i << "]";
  }

  // Input gradients.
  for (int probe = 0; probe < 4; ++probe) {
    const size_t t = rng.NextBounded(T);
    const size_t d = rng.NextBounded(in_dim);
    const float saved = inputs[t][d];
    inputs[t][d] = saved + eps;
    const double fp = ForwardLoss(params, inputs);
    inputs[t][d] = saved - eps;
    const double fm = ForwardLoss(params, inputs);
    inputs[t][d] = saved;
    EXPECT_NEAR(dx[t][d], (fp - fm) / (2 * eps), 5e-2)
        << "dx[" << t << "][" << d << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LstmGradientTest, ::testing::Range(0, 6));

// ---------------- BiLSTM tagger ----------------

std::vector<text::LabeledSequence> ToyData(int n, uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> colors = {"red", "blue", "green", "pink"};
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < n; ++i) {
    text::LabeledSequence seq;
    const std::string color = colors[rng.NextBounded(colors.size())];
    const std::string num = std::to_string(rng.NextInt(1, 9));
    if (rng.Bernoulli(0.5)) {
      seq.tokens = {"color", "is", color, "today"};
      seq.pos = {"NN", "VB", "NN", "NN"};
      seq.labels = {"O", "O", "B-color", "O"};
    } else {
      seq.tokens = {"weight", "is", num, "kg"};
      seq.pos = {"NN", "VB", "NUM", "UNIT"};
      seq.labels = {"O", "O", "B-weight", "I-weight"};
    }
    data.push_back(std::move(seq));
  }
  return data;
}

TEST(BiLstmTaggerTest, LearnsToyPattern) {
  BiLstmOptions options;
  options.epochs = 12;
  options.learning_rate = 0.08f;
  options.dropout = 0.2f;
  options.seed = 5;
  BiLstmTagger tagger(options);
  ASSERT_TRUE(tagger.Train(ToyData(200, 44)).ok());

  text::LabeledSequence probe;
  probe.tokens = {"weight", "is", "7", "kg"};
  probe.pos = {"NN", "VB", "NUM", "UNIT"};
  std::vector<std::string> labels = tagger.Predict(probe);
  EXPECT_EQ(labels[2], "B-weight");
  EXPECT_EQ(labels[0], "O");
}

TEST(BiLstmTaggerTest, MoreEpochsLowerTrainingLoss) {
  auto data = ToyData(120, 45);
  BiLstmOptions short_options;
  short_options.epochs = 1;
  short_options.seed = 6;
  BiLstmTagger short_run(short_options);
  ASSERT_TRUE(short_run.Train(data).ok());

  BiLstmOptions long_options;
  long_options.epochs = 10;
  long_options.seed = 6;
  BiLstmTagger long_run(long_options);
  ASSERT_TRUE(long_run.Train(data).ok());

  EXPECT_LT(long_run.final_epoch_loss(), short_run.final_epoch_loss());
}

TEST(BiLstmTaggerTest, DeterministicGivenSeed) {
  auto data = ToyData(60, 46);
  BiLstmOptions options;
  options.epochs = 2;
  options.seed = 77;
  BiLstmTagger a(options), b(options);
  ASSERT_TRUE(a.Train(data).ok());
  ASSERT_TRUE(b.Train(data).ok());
  text::LabeledSequence probe;
  probe.tokens = {"color", "is", "red", "today"};
  probe.pos = {"NN", "VB", "NN", "NN"};
  EXPECT_EQ(a.Predict(probe), b.Predict(probe));
}

TEST(BiLstmTaggerTest, EmptyTrainingSetRejected) {
  BiLstmTagger tagger;
  EXPECT_FALSE(tagger.Train({}).ok());
}

TEST(BiLstmTaggerTest, UntrainedPredictsOutside) {
  BiLstmTagger tagger;
  text::LabeledSequence probe;
  probe.tokens = {"x"};
  probe.pos = {"NN"};
  EXPECT_EQ(tagger.Predict(probe), (std::vector<std::string>{"O"}));
}

TEST(BiLstmTaggerTest, HandlesUnseenWordsViaCharsAndUnk) {
  BiLstmOptions options;
  options.epochs = 8;
  options.seed = 9;
  BiLstmTagger tagger(options);
  ASSERT_TRUE(tagger.Train(ToyData(150, 47)).ok());
  text::LabeledSequence probe;
  probe.tokens = {"weight", "is", "42", "kg"};  // "42" unseen
  probe.pos = {"NN", "VB", "NUM", "UNIT"};
  std::vector<std::string> labels = tagger.Predict(probe);
  EXPECT_EQ(labels.size(), 4u);
}

TEST(BiLstmTaggerTest, MultibyteTokensSplitIntoCharUnits) {
  BiLstmOptions options;
  options.epochs = 2;
  options.seed = 10;
  BiLstmTagger tagger(options);
  std::vector<text::LabeledSequence> data;
  text::LabeledSequence seq;
  seq.tokens = {"重量", "は", "5", "kg"};
  seq.pos = {"NN", "PRT", "NUM", "UNIT"};
  seq.labels = {"O", "O", "B-重量", "I-重量"};
  data.assign(30, seq);
  ASSERT_TRUE(tagger.Train(data).ok());
  EXPECT_EQ(tagger.Predict(seq).size(), 4u);
}

}  // namespace
}  // namespace pae::lstm
