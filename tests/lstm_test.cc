#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>

#include "lstm/bilstm_tagger.h"
#include "lstm/lstm_cell.h"
#include "util/metrics.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pae::lstm {
namespace {

// ---------------- LSTM cell ----------------

TEST(LstmCellTest, ForwardShapes) {
  Rng rng(1);
  LstmParams params(3, 4);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(5, std::vector<float>(3, 0.1f));
  LstmTrace trace;
  LstmForward(params, inputs, &trace);
  ASSERT_EQ(trace.h.size(), 5u);
  EXPECT_EQ(trace.h[0].size(), 4u);
  EXPECT_EQ(trace.c.size(), 5u);
}

TEST(LstmCellTest, HiddenStateBounded) {
  Rng rng(2);
  LstmParams params(2, 3);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(20, std::vector<float>(2, 5.0f));
  LstmTrace trace;
  LstmForward(params, inputs, &trace);
  for (const auto& h : trace.h) {
    for (float v : h) EXPECT_LE(std::fabs(v), 1.0f);  // |o·tanh(c)| ≤ 1
  }
}

TEST(LstmCellTest, EmptySequence) {
  Rng rng(3);
  LstmParams params(2, 3);
  params.Init(&rng);
  LstmTrace trace;
  LstmForward(params, {}, &trace);
  EXPECT_TRUE(trace.h.empty());
  LstmParams grad(2, 3);
  std::vector<std::vector<float>> dx;
  LstmBackward(params, trace, {}, &grad, &dx);
  EXPECT_TRUE(dx.empty());
}

/// Scalar loss for gradient checking: sum of all hidden states.
double ForwardLoss(const LstmParams& params,
                   const std::vector<std::vector<float>>& inputs) {
  LstmTrace trace;
  LstmForward(params, inputs, &trace);
  double loss = 0;
  for (const auto& h : trace.h) {
    for (float v : h) loss += v;
  }
  return loss;
}

class LstmGradientTest : public ::testing::TestWithParam<int> {};

TEST_P(LstmGradientTest, BackwardMatchesFiniteDifferences) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 5);
  const size_t in_dim = 3, hidden = 4, T = 4;
  LstmParams params(in_dim, hidden);
  params.Init(&rng);
  std::vector<std::vector<float>> inputs(T, std::vector<float>(in_dim));
  for (auto& x : inputs) {
    for (float& v : x) v = static_cast<float>(rng.NextGaussian() * 0.5);
  }

  LstmTrace trace;
  LstmForward(params, inputs, &trace);
  // dLoss/dh = 1 everywhere.
  std::vector<std::vector<float>> dh(T, std::vector<float>(hidden, 1.0f));
  LstmParams grad(in_dim, hidden);
  std::vector<std::vector<float>> dx;
  LstmBackward(params, trace, dh, &grad, &dx);

  const float eps = 1e-3f;
  // Check a few parameter coordinates in each block.
  auto check_matrix = [&](math::Matrix* m, const math::Matrix& g,
                          const char* name) {
    for (int probe = 0; probe < 5; ++probe) {
      const size_t r = rng.NextBounded(m->rows());
      const size_t c = rng.NextBounded(m->cols());
      const float saved = m->at(r, c);
      m->at(r, c) = saved + eps;
      const double fp = ForwardLoss(params, inputs);
      m->at(r, c) = saved - eps;
      const double fm = ForwardLoss(params, inputs);
      m->at(r, c) = saved;
      const double numeric = (fp - fm) / (2 * eps);
      EXPECT_NEAR(g.at(r, c), numeric, 5e-2)
          << name << "[" << r << "," << c << "]";
    }
  };
  check_matrix(&params.wx, grad.wx, "wx");
  check_matrix(&params.wh, grad.wh, "wh");

  // Bias coordinates.
  for (int probe = 0; probe < 4; ++probe) {
    const size_t i = rng.NextBounded(params.b.size());
    const float saved = params.b[i];
    params.b[i] = saved + eps;
    const double fp = ForwardLoss(params, inputs);
    params.b[i] = saved - eps;
    const double fm = ForwardLoss(params, inputs);
    params.b[i] = saved;
    EXPECT_NEAR(grad.b[i], (fp - fm) / (2 * eps), 5e-2) << "b[" << i << "]";
  }

  // Input gradients.
  for (int probe = 0; probe < 4; ++probe) {
    const size_t t = rng.NextBounded(T);
    const size_t d = rng.NextBounded(in_dim);
    const float saved = inputs[t][d];
    inputs[t][d] = saved + eps;
    const double fp = ForwardLoss(params, inputs);
    inputs[t][d] = saved - eps;
    const double fm = ForwardLoss(params, inputs);
    inputs[t][d] = saved;
    EXPECT_NEAR(dx[t][d], (fp - fm) / (2 * eps), 5e-2)
        << "dx[" << t << "][" << d << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LstmGradientTest, ::testing::Range(0, 6));

// ---------------- batched LSTM layer ----------------

TEST(LstmBatchTest, ForwardBatchBitEqualsPerSequenceForward) {
  Rng rng(11);
  const size_t D = 5, H = 4, T = 6;
  LstmParams params(D, H);
  params.Init(&rng);
  for (size_t B : {1u, 3u, 8u}) {
    std::vector<float> flat(T * B * D);
    for (float& v : flat) v = static_cast<float>(rng.NextGaussian() * 0.5);
    LstmBatchTrace batch;
    LstmForwardBatch(params, flat.data(), T, B, &batch);
    for (size_t b = 0; b < B; ++b) {
      std::vector<std::vector<float>> inputs(T, std::vector<float>(D));
      for (size_t t = 0; t < T; ++t) {
        const float* src = flat.data() + (t * B + b) * D;
        std::copy(src, src + D, inputs[t].begin());
      }
      LstmTrace single;
      LstmForward(params, inputs, &single);
      for (size_t t = 0; t < T; ++t) {
        EXPECT_EQ(0, std::memcmp(single.h[t].data(),
                                 batch.H(t) + b * H, H * sizeof(float)))
            << "h B=" << B << " b=" << b << " t=" << t;
        EXPECT_EQ(0, std::memcmp(single.c[t].data(),
                                 batch.C(t) + b * H, H * sizeof(float)))
            << "c B=" << B << " b=" << b << " t=" << t;
      }
    }
  }
}

TEST(LstmBatchTest, BackwardBatchBitEqualsPerSequenceBackward) {
  Rng rng(12);
  const size_t D = 4, H = 3, T = 5, B = 4;
  LstmParams params(D, H);
  params.Init(&rng);
  std::vector<float> flat(T * B * D), dh(T * B * H);
  for (float& v : flat) v = static_cast<float>(rng.NextGaussian() * 0.5);
  for (float& v : dh) v = static_cast<float>(rng.NextGaussian());

  LstmBatchTrace batch;
  LstmForwardBatch(params, flat.data(), T, B, &batch);
  std::vector<float> dpre(T * B * 4 * H), dx(T * B * D);
  LstmBackwardBatch(params, batch, dh.data(), dpre.data(), dx.data());

  for (size_t b = 0; b < B; ++b) {
    // Reference: the same sequence run alone (batch width 1).
    std::vector<float> flat1(T * D), dh1(T * H);
    for (size_t t = 0; t < T; ++t) {
      std::copy(flat.data() + (t * B + b) * D,
                flat.data() + (t * B + b) * D + D, flat1.data() + t * D);
      std::copy(dh.data() + (t * B + b) * H,
                dh.data() + (t * B + b) * H + H, dh1.data() + t * H);
    }
    LstmBatchTrace single;
    LstmForwardBatch(params, flat1.data(), T, 1, &single);
    std::vector<float> dpre1(T * 4 * H), dx1(T * D);
    LstmBackwardBatch(params, single, dh1.data(), dpre1.data(), dx1.data());
    for (size_t t = 0; t < T; ++t) {
      EXPECT_EQ(0, std::memcmp(dpre1.data() + t * 4 * H,
                               dpre.data() + (t * B + b) * 4 * H,
                               4 * H * sizeof(float)))
          << "dpre b=" << b << " t=" << t;
      EXPECT_EQ(0, std::memcmp(dx1.data() + t * D,
                               dx.data() + (t * B + b) * D,
                               D * sizeof(float)))
          << "dx b=" << b << " t=" << t;
    }
    // Canonical-order parameter accumulation must match, too.
    LstmParams grad_batch(D, H), grad_single(D, H);
    grad_batch.SetZero();
    grad_single.SetZero();
    LstmAccumulateGrads(batch, dpre.data(), b, &grad_batch);
    LstmAccumulateGrads(single, dpre1.data(), 0, &grad_single);
    EXPECT_EQ(0, std::memcmp(grad_single.wx.data().data(),
                             grad_batch.wx.data().data(),
                             grad_batch.wx.data().size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(grad_single.wh.data().data(),
                             grad_batch.wh.data().data(),
                             grad_batch.wh.data().size() * sizeof(float)));
    EXPECT_EQ(0, std::memcmp(grad_single.b.data(), grad_batch.b.data(),
                             grad_batch.b.size() * sizeof(float)));
  }
}

// ---------------- BiLSTM tagger ----------------

std::vector<text::LabeledSequence> ToyData(int n, uint64_t seed) {
  Rng rng(seed);
  const std::vector<std::string> colors = {"red", "blue", "green", "pink"};
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < n; ++i) {
    text::LabeledSequence seq;
    const std::string color = colors[rng.NextBounded(colors.size())];
    const std::string num = std::to_string(rng.NextInt(1, 9));
    if (rng.Bernoulli(0.5)) {
      seq.tokens = {"color", "is", color, "today"};
      seq.pos = {"NN", "VB", "NN", "NN"};
      seq.labels = {"O", "O", "B-color", "O"};
    } else {
      seq.tokens = {"weight", "is", num, "kg"};
      seq.pos = {"NN", "VB", "NUM", "UNIT"};
      seq.labels = {"O", "O", "B-weight", "I-weight"};
    }
    data.push_back(std::move(seq));
  }
  return data;
}

TEST(BiLstmTaggerTest, LearnsToyPattern) {
  BiLstmOptions options;
  options.epochs = 12;
  options.learning_rate = 0.08f;
  options.dropout = 0.2f;
  options.seed = 5;
  BiLstmTagger tagger(options);
  ASSERT_TRUE(tagger.Train(ToyData(200, 44)).ok());

  text::LabeledSequence probe;
  probe.tokens = {"weight", "is", "7", "kg"};
  probe.pos = {"NN", "VB", "NUM", "UNIT"};
  std::vector<std::string> labels = tagger.Predict(probe);
  EXPECT_EQ(labels[2], "B-weight");
  EXPECT_EQ(labels[0], "O");
}

TEST(BiLstmTaggerTest, MoreEpochsLowerTrainingLoss) {
  auto data = ToyData(120, 45);
  BiLstmOptions short_options;
  short_options.epochs = 1;
  short_options.seed = 6;
  BiLstmTagger short_run(short_options);
  ASSERT_TRUE(short_run.Train(data).ok());

  BiLstmOptions long_options;
  long_options.epochs = 10;
  long_options.seed = 6;
  BiLstmTagger long_run(long_options);
  ASSERT_TRUE(long_run.Train(data).ok());

  EXPECT_LT(long_run.final_epoch_loss(), short_run.final_epoch_loss());
}

TEST(BiLstmTaggerTest, DeterministicGivenSeed) {
  auto data = ToyData(60, 46);
  BiLstmOptions options;
  options.epochs = 2;
  options.seed = 77;
  BiLstmTagger a(options), b(options);
  ASSERT_TRUE(a.Train(data).ok());
  ASSERT_TRUE(b.Train(data).ok());
  text::LabeledSequence probe;
  probe.tokens = {"color", "is", "red", "today"};
  probe.pos = {"NN", "VB", "NN", "NN"};
  EXPECT_EQ(a.Predict(probe), b.Predict(probe));
}

TEST(BiLstmTaggerTest, EmptyTrainingSetRejected) {
  BiLstmTagger tagger;
  EXPECT_FALSE(tagger.Train({}).ok());
}

TEST(BiLstmTaggerTest, UntrainedPredictsOutside) {
  BiLstmTagger tagger;
  text::LabeledSequence probe;
  probe.tokens = {"x"};
  probe.pos = {"NN"};
  EXPECT_EQ(tagger.Predict(probe), (std::vector<std::string>{"O"}));
}

TEST(BiLstmTaggerTest, HandlesUnseenWordsViaCharsAndUnk) {
  BiLstmOptions options;
  options.epochs = 8;
  options.seed = 9;
  BiLstmTagger tagger(options);
  ASSERT_TRUE(tagger.Train(ToyData(150, 47)).ok());
  text::LabeledSequence probe;
  probe.tokens = {"weight", "is", "42", "kg"};  // "42" unseen
  probe.pos = {"NN", "VB", "NUM", "UNIT"};
  std::vector<std::string> labels = tagger.Predict(probe);
  EXPECT_EQ(labels.size(), 4u);
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Mixed-length corpus so decode panels group several distinct lengths.
std::vector<text::LabeledSequence> MixedLengthData(int n, uint64_t seed) {
  auto data = ToyData(n, seed);
  Rng rng(seed * 31 + 7);
  for (auto& seq : data) {
    const int extra = static_cast<int>(rng.NextBounded(3));
    for (int e = 0; e < extra; ++e) {
      seq.tokens.push_back("pad" + std::to_string(e));
      seq.pos.push_back("NN");
      seq.labels.push_back("O");
    }
  }
  return data;
}

TEST(BiLstmTaggerTest, TrainingByteIdenticalAcrossBatchSizes) {
  const auto data = MixedLengthData(60, 48);
  std::string ref_model;
  std::vector<double> ref_losses;
  for (int batch_size : {1, 8, 32}) {
    BiLstmOptions options;
    options.epochs = 2;
    options.seed = 21;
    options.batch_size = batch_size;
    BiLstmTagger tagger(options);
    ASSERT_TRUE(tagger.Train(data).ok());
    const std::string path = testing::TempDir() + "/bilstm_b" +
                             std::to_string(batch_size) + ".bin";
    ASSERT_TRUE(tagger.Save(path).ok());
    const std::string bytes = FileBytes(path);
    ASSERT_FALSE(bytes.empty());
    if (batch_size == 1) {
      ref_model = bytes;
      ref_losses = tagger.epoch_losses();
    } else {
      // Whole-model byte equality: every weight of every layer matches
      // the batch_size=1 run bit for bit.
      EXPECT_EQ(ref_model, bytes) << "batch_size=" << batch_size;
      ASSERT_EQ(ref_losses.size(), tagger.epoch_losses().size());
      for (size_t e = 0; e < ref_losses.size(); ++e) {
        EXPECT_EQ(ref_losses[e], tagger.epoch_losses()[e])
            << "epoch " << e << " batch_size=" << batch_size;
      }
    }
  }
}

TEST(BiLstmTaggerTest, DecodeByteIdenticalAcrossBatchSizesAndThreads) {
  const auto data = MixedLengthData(80, 49);
  BiLstmOptions options;
  options.epochs = 2;
  options.seed = 22;
  BiLstmTagger tagger(options);
  ASSERT_TRUE(tagger.Train(data).ok());

  const auto probes = MixedLengthData(37, 50);
  // Reference: one sentence at a time through the public API.
  std::vector<text::SequenceTagger::ScoredPrediction> ref;
  for (const auto& seq : probes) ref.push_back(tagger.PredictScored(seq));

  util::ThreadPool pool1(1), pool8(8);
  for (int batch_size : {1, 8, 32}) {
    BiLstmOptions opt = options;
    opt.batch_size = batch_size;
    BiLstmTagger batched(opt);
    ASSERT_TRUE(batched.Train(data).ok());  // same seed → same model
    for (util::ThreadPool* pool :
         {static_cast<util::ThreadPool*>(nullptr), &pool1, &pool8}) {
      const auto got = batched.PredictScoredBatch(probes, pool);
      ASSERT_EQ(got.size(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i].labels, got[i].labels)
            << "sentence " << i << " batch_size=" << batch_size;
        ASSERT_EQ(ref[i].confidence.size(), got[i].confidence.size());
        for (size_t t = 0; t < ref[i].confidence.size(); ++t) {
          EXPECT_EQ(0, std::memcmp(&ref[i].confidence[t],
                                   &got[i].confidence[t], sizeof(double)))
              << "confidence sentence " << i << " token " << t
              << " batch_size=" << batch_size;
        }
      }
    }
  }
}

TEST(BiLstmTaggerTest, NonFiniteGradientNormSkipsStepAndCounts) {
  util::Counter* skips = util::MetricsRegistry::Global().GetCounter(
      "lstm.train.nonfinite_grad_skips");
  const int64_t before = skips->value();

  BiLstmOptions options;
  options.epochs = 2;
  options.seed = 23;
  options.inject_nonfinite_grad_at = 3;  // poison the 4th SGD step
  BiLstmTagger tagger(options);
  ASSERT_TRUE(tagger.Train(ToyData(40, 51)).ok());

  // Exactly one step was skipped, and the model survived: every epoch
  // loss is finite and the network still predicts.
  EXPECT_EQ(skips->value() - before, 1);
  for (double loss : tagger.epoch_losses()) {
    EXPECT_TRUE(std::isfinite(loss)) << loss;
  }
  text::LabeledSequence probe;
  probe.tokens = {"color", "is", "red", "today"};
  probe.pos = {"NN", "VB", "NN", "NN"};
  const auto pred = tagger.PredictScored(probe);
  ASSERT_EQ(pred.labels.size(), 4u);
  for (double c : pred.confidence) EXPECT_TRUE(std::isfinite(c));
}

TEST(BiLstmTaggerTest, MultibyteTokensSplitIntoCharUnits) {
  BiLstmOptions options;
  options.epochs = 2;
  options.seed = 10;
  BiLstmTagger tagger(options);
  std::vector<text::LabeledSequence> data;
  text::LabeledSequence seq;
  seq.tokens = {"重量", "は", "5", "kg"};
  seq.pos = {"NN", "PRT", "NUM", "UNIT"};
  seq.labels = {"O", "O", "B-重量", "I-重量"};
  data.assign(30, seq);
  ASSERT_TRUE(tagger.Train(data).ok());
  EXPECT_EQ(tagger.Predict(seq).size(), 4u);
}

}  // namespace
}  // namespace pae::lstm
