// Failure injection and adversarial-input robustness: fuzzed HTML,
// corrupt model files, hostile corpus content, degenerate pipeline
// inputs. Nothing here may crash; errors must surface as Status.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/bootstrap.h"
#include "core/eval.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "html/parser.h"
#include "html/table_extractor.h"
#include "text/sentence.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace pae {
namespace {

namespace fs = std::filesystem;

// ---------------- HTML fuzzing ----------------

class HtmlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(HtmlFuzzTest, RandomBytesNeverCrashParser) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 13);
  std::string soup;
  const std::string alphabet = "<>/abc=\"' &#;タグ表！１２";
  for (int i = 0; i < 400; ++i) {
    soup += alphabet[rng.NextBounded(alphabet.size())];
  }
  auto dom = html::ParseHtml(soup);
  ASSERT_NE(dom, nullptr);
  // Downstream consumers must also survive.
  std::string text = html::ExtractText(*dom);
  auto tables = html::ExtractDictionaryTables(*dom);
  auto sentences = text::SplitSentences(text);
  text::CjkTokenizer tokenizer({});
  for (const auto& sentence : sentences) tokenizer.Tokenize(sentence);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HtmlFuzzTest, ::testing::Range(0, 16));

TEST(HtmlFuzzTest, MutatedRealPagesNeverCrash) {
  datagen::GeneratorConfig config;
  config.num_products = 20;
  config.seed = 3;
  datagen::GeneratedCategory category =
      datagen::GenerateCategory(datagen::CategoryId::kGarden, config);
  Rng rng(99);
  for (const auto& page : category.corpus.pages) {
    std::string mutated = page.html;
    for (int m = 0; m < 25 && !mutated.empty(); ++m) {
      const size_t pos = rng.NextBounded(mutated.size());
      switch (rng.NextBounded(3)) {
        case 0:
          mutated[pos] = static_cast<char>(rng.NextBounded(256));
          break;
        case 1:
          mutated.erase(pos, 1);
          break;
        default:
          mutated.insert(pos, 1, '<');
          break;
      }
    }
    auto dom = html::ParseHtml(mutated);
    ASSERT_NE(dom, nullptr);
    html::ExtractText(*dom);
    html::ExtractDictionaryTables(*dom);
  }
}

TEST(HtmlFuzzTest, DeeplyNestedMarkup) {
  std::string html;
  for (int i = 0; i < 2000; ++i) html += "<div>";
  html += "x";
  auto dom = html::ParseHtml(html);
  ASSERT_NE(dom, nullptr);
  EXPECT_NE(html::ExtractText(*dom).find('x'), std::string::npos);
}

TEST(HtmlFuzzTest, GiantAttributeSoup) {
  std::string html = "<div " + std::string(10000, 'a') + ">body</div>";
  auto dom = html::ParseHtml(html);
  EXPECT_NE(html::ExtractText(*dom).find("body"), std::string::npos);
}

// ---------------- corrupt model files ----------------

TEST(CorruptModelTest, GarbageFileRejected) {
  const std::string path =
      (fs::temp_directory_path() / "pae_garbage.crf").string();
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a model file at all, sorry";
  }
  crf::CrfTagger tagger;
  Status status = tagger.Load(path);
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(tagger.trained());
  std::remove(path.c_str());
}

TEST(CorruptModelTest, BitFlippedModelDoesNotCrash) {
  Rng rng(5);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < 40; ++i) {
    text::LabeledSequence seq;
    seq.tokens = {"a", std::to_string(rng.NextInt(0, 9))};
    seq.pos = {"NN", "NUM"};
    seq.labels = {"O", "B-x"};
    data.push_back(std::move(seq));
  }
  crf::CrfOptions options;
  options.max_iterations = 10;
  crf::CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(data).ok());
  const std::string path =
      (fs::temp_directory_path() / "pae_bitflip.crf").string();
  ASSERT_TRUE(tagger.Save(path).ok());

  // Flip bytes in the middle of the file (after the header) and load.
  for (int trial = 0; trial < 8; ++trial) {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    const auto size = fs::file_size(path);
    const uint64_t pos = 8 + rng.NextBounded(size - 8);
    file.seekp(static_cast<std::streamoff>(pos));
    char byte = static_cast<char>(rng.NextBounded(256));
    file.write(&byte, 1);
    file.close();
    crf::CrfTagger victim;
    // Either loads (benign flip) or fails with a Status — never crashes.
    Status status = victim.Load(path);
    if (status.ok()) {
      text::LabeledSequence probe;
      probe.tokens = {"a", "5"};
      probe.pos = {"NN", "NUM"};
      victim.Predict(probe);
    }
  }
  std::remove(path.c_str());
}

// ---------------- hostile corpus content ----------------

TEST(HostileCorpusTest, PipelineSurvivesAdversarialPages) {
  core::Corpus corpus;
  corpus.language = text::Language::kJa;
  corpus.tokenizer_lexicon = {"重量", "です"};
  const char* nasty[] = {
      "",                                        // empty page
      "plain text, no markup at all 重量5kg",    // no HTML
      "<table><tr><td>重量</td></tr></table>",   // 1-column table
      "<<<<<>>>>>",                              // tag soup
      "<table><tr><th>重量</th><td>5kg</td></tr>"
      "<tr><th>色</th><td>赤</td></tr></table>", // one real table
      "\xFF\xFE broken utf8 \x80\x80",           // invalid bytes
  };
  int id = 0;
  for (const char* html : nasty) {
    core::ProductPage page;
    page.product_id = "hostile_" + std::to_string(id++);
    page.html = html;
    corpus.pages.push_back(std::move(page));
  }
  core::ProcessedCorpus processed = core::ProcessCorpus(corpus);
  EXPECT_EQ(processed.pages.size(), corpus.pages.size());

  core::PipelineConfig config;
  config.iterations = 1;
  config.preprocess.value_min_count = 1;
  config.crf.max_iterations = 5;
  core::Pipeline pipeline(config);
  // One dictionary table exists, so the seed may or may not form; both
  // a clean result and a clean error are acceptable — a crash is not.
  auto result = pipeline.Run(processed);
  if (result.ok()) {
    EXPECT_GE(result.value().seed.pairs.size(), 1u);
  }
}

TEST(HostileCorpusTest, HugeSingleSentenceIsHandled) {
  core::Corpus corpus;
  corpus.language = text::Language::kDe;
  core::ProductPage page;
  page.product_id = "big";
  std::string body;
  for (int i = 0; i < 5000; ++i) body += "wort ";
  page.html = "<p>" + body + "</p>";
  corpus.pages.push_back(std::move(page));
  core::ProcessedCorpus processed = core::ProcessCorpus(corpus);
  ASSERT_EQ(processed.pages.size(), 1u);
  ASSERT_FALSE(processed.pages[0].sentences.empty());
  EXPECT_EQ(processed.pages[0].sentences[0].tokens.size(), 5000u);
}

// ---------------- thread-count knob ----------------

core::ProcessedCorpus SmallThreadTestCorpus() {
  datagen::GeneratorConfig config;
  config.num_products = 40;
  config.seed = 21;
  datagen::GeneratedCategory category =
      datagen::GenerateCategory(datagen::CategoryId::kGarden, config);
  return core::ProcessCorpus(category.corpus);
}

TEST(ThreadKnobTest, NegativeThreadsRejectedWithStatus) {
  const core::ProcessedCorpus corpus = SmallThreadTestCorpus();
  core::PipelineConfig config;
  config.iterations = 1;
  config.crf.max_iterations = 5;
  config.threads = -2;
  core::Pipeline pipeline(config);
  auto result = pipeline.Run(corpus);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("threads"), std::string::npos);
}

TEST(ThreadKnobTest, ZeroThreadsMeansAutoAndRunsCleanly) {
  const core::ProcessedCorpus corpus = SmallThreadTestCorpus();
  core::PipelineConfig config;
  config.iterations = 1;
  config.crf.max_iterations = 5;
  config.threads = 0;  // auto: all hardware threads
  core::Pipeline pipeline(config);
  auto result = pipeline.Run(corpus);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result.value().final_triples().empty());
}

TEST(ThreadKnobTest, NegativeThreadsClampWhereNoStatusChannelExists) {
  // ProcessCorpus and ApplyOptions have no Status channel; negative
  // values clamp to 1 instead of being UB.
  datagen::GeneratorConfig config;
  config.num_products = 5;
  config.seed = 22;
  datagen::GeneratedCategory category =
      datagen::GenerateCategory(datagen::CategoryId::kGarden, config);
  const core::ProcessedCorpus corpus =
      core::ProcessCorpus(category.corpus, -7);
  EXPECT_EQ(corpus.pages.size(), category.corpus.pages.size());
}

// ---------------- CRF compaction ----------------

TEST(CompactTest, DropsZeroFeaturesWithoutChangingPredictions) {
  Rng rng(6);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < 150; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"重量", "は", v, "kg", "です"};
    seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
    seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
    data.push_back(std::move(seq));
  }
  crf::CrfOptions options;
  options.c1 = 1.0;  // strong L1 → many exact zeros
  options.max_iterations = 40;
  crf::CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(data).ok());

  text::LabeledSequence probe;
  probe.tokens = {"重量", "は", "6", "kg", "です"};
  probe.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
  const std::vector<std::string> before = tagger.Predict(probe);
  const size_t features_before = tagger.model().num_features();

  const size_t removed = tagger.Compact();
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(tagger.model().num_features() + removed, features_before);
  EXPECT_EQ(tagger.Predict(probe), before);

  // Compacting twice is a no-op.
  EXPECT_EQ(tagger.Compact(), 0u);
  EXPECT_EQ(tagger.Predict(probe), before);
}

TEST(CompactTest, UntrainedCompactIsNoop) {
  crf::CrfTagger tagger;
  EXPECT_EQ(tagger.Compact(), 0u);
}

// ---------------- evaluator oracle metrics ----------------

TEST(OracleTest, RecallCountsDistinctCorrectTriples) {
  core::TruthSample truth;
  auto add = [&](const char* pid, const char* attr, const char* value,
                 bool correct) {
    core::TruthEntry e;
    e.triple = {pid, attr, value};
    e.triple_correct = correct;
    truth.entries.push_back(e);
  };
  add("p1", "色", "赤", true);
  add("p1", "重量", "5kg", true);
  add("p2", "色", "青", true);
  add("p2", "色", "偽", false);  // incorrect entries don't count

  std::vector<core::Triple> found = {
      {"p1", "色", "赤"},
      {"p9", "色", "緑"},  // not in truth
  };
  core::OracleMetrics m = core::EvaluateOracleRecall(found, truth);
  EXPECT_EQ(m.truth_triples, 3u);
  EXPECT_EQ(m.recalled, 1u);
  EXPECT_NEAR(m.recall, 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(m.recall_by_attribute["色"], 50.0, 1e-9);
  EXPECT_NEAR(m.recall_by_attribute["重量"], 0.0, 1e-9);
}

TEST(OracleTest, AttributeDiscovery) {
  core::TruthSample truth;
  truth.attribute_aliases = {
      {"カラー", "カラー"}, {"色", "カラー"}, {"重量", "重量"}};
  core::AttributeDiscoveryMetrics m = core::EvaluateAttributeDiscovery(
      {"色", "カラー", "備考"}, truth);
  EXPECT_EQ(m.truth_attributes, 2u);  // カラー, 重量
  EXPECT_EQ(m.discovered, 1u);        // カラー (via both surfaces)
  EXPECT_EQ(m.spurious, 1u);          // 備考
  EXPECT_NEAR(m.recall, 50.0, 1e-9);
}

}  // namespace
}  // namespace pae
