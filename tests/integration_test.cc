// End-to-end tests: synthetic corpus → full bootstrap pipeline →
// evaluation, asserting the qualitative shapes the paper reports.

#include <gtest/gtest.h>

#include "core/bootstrap.h"
#include "core/eval.h"
#include "datagen/generator.h"

namespace pae {
namespace {

using core::ModelType;
using core::Pipeline;
using core::PipelineConfig;
using core::PipelineResult;
using core::TripleMetrics;

datagen::GeneratedCategory Generate(datagen::CategoryId id, int products,
                                    uint64_t seed = 42) {
  datagen::GeneratorConfig config;
  config.num_products = products;
  config.seed = seed;
  return datagen::GenerateCategory(id, config);
}

PipelineConfig BaseConfig(int iterations = 1) {
  PipelineConfig config;
  config.model = ModelType::kCrf;
  config.iterations = iterations;
  config.crf.max_iterations = 40;
  config.seed = 7;
  return config;
}

struct RunOutput {
  PipelineResult result;
  TripleMetrics metrics;
};

RunOutput RunPipeline(const datagen::GeneratedCategory& category,
              const PipelineConfig& config) {
  core::ProcessedCorpus corpus = core::ProcessCorpus(category.corpus);
  Pipeline pipeline(config);
  Result<PipelineResult> result = pipeline.Run(corpus);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunOutput out{std::move(result).value(), {}};
  out.metrics = core::EvaluateTriples(out.result.final_triples(),
                                      category.truth, corpus.pages.size());
  return out;
}

TEST(PipelineIntegrationTest, SeedIsHighPrecision) {
  auto category = Generate(datagen::CategoryId::kLadiesBags, 250);
  auto out = RunPipeline(category, BaseConfig(0));
  TripleMetrics seed = core::EvaluateTriples(
      out.result.seed_triples, category.truth, category.corpus.pages.size());
  // Table I: seed precision is high (≈ 93–99 %) with modest coverage.
  EXPECT_GT(seed.precision, 88.0);
  EXPECT_GT(seed.coverage, 10.0);
  EXPECT_LT(seed.coverage, 70.0);
}

TEST(PipelineIntegrationTest, BootstrapRaisesCoverageALot) {
  auto category = Generate(datagen::CategoryId::kVacuumCleaner, 250);
  auto out = RunPipeline(category, BaseConfig(1));
  TripleMetrics seed = core::EvaluateTriples(
      out.result.seed_triples, category.truth, category.corpus.pages.size());
  // The whole point of bootstrapping (§VII-A): coverage multiplies.
  EXPECT_GT(out.metrics.coverage, seed.coverage * 1.8);
  // While precision stays high.
  EXPECT_GT(out.metrics.precision, 80.0);
}

TEST(PipelineIntegrationTest, CleaningImprovesPrecision) {
  // Drift compounds over cycles (Fig. 3), so the gap is asserted after
  // the full five Tagger–Cleaner cycles (as in Table IV bottom).
  auto category = Generate(datagen::CategoryId::kGarden, 300);
  PipelineConfig with = BaseConfig(5);
  PipelineConfig without = BaseConfig(5);
  without.syntactic_cleaning = false;
  without.semantic_cleaning = false;
  auto metrics_with = RunPipeline(category, with).metrics;
  auto metrics_without = RunPipeline(category, without).metrics;
  // Table IV: removing the cleaning modules costs precision on Garden.
  EXPECT_GT(metrics_with.precision, metrics_without.precision);
  // And cleaning costs some coverage (Fig. 3).
  EXPECT_LE(metrics_with.total, metrics_without.total);
}

TEST(PipelineIntegrationTest, TriplesGrowAcrossIterations) {
  auto category = Generate(datagen::CategoryId::kKitchen, 200);
  auto out = RunPipeline(category, BaseConfig(3));
  ASSERT_EQ(out.result.triples_after.size(), 3u);
  EXPECT_GE(out.result.triples_after[1].size(),
            out.result.triples_after[0].size());
  EXPECT_GE(out.result.triples_after[2].size(),
            out.result.triples_after[1].size());
}

TEST(PipelineIntegrationTest, DiversificationRecoversDecimalWeights) {
  // §VIII-A: without diversification the integer-only seed mis-bounds
  // decimal weights; with it, decimal values enter the seed.
  auto category = Generate(datagen::CategoryId::kVacuumCleaner, 300);
  PipelineConfig with = BaseConfig(1);
  PipelineConfig without = BaseConfig(1);
  without.preprocess.enable_diversification = false;

  core::ProcessedCorpus corpus = core::ProcessCorpus(category.corpus);
  core::Seed seed_with = core::BuildSeed(corpus, with.preprocess);
  core::Seed seed_without = core::BuildSeed(corpus, without.preprocess);

  auto decimal_weight_values = [](const core::Seed& seed) {
    int n = 0;
    for (const auto& pair : seed.pairs) {
      if (pair.attribute != "重量") continue;
      if (pair.value_display.find('.') != std::string::npos) ++n;
    }
    return n;
  };
  EXPECT_EQ(decimal_weight_values(seed_without), 0);
  EXPECT_GT(decimal_weight_values(seed_with), 0);
  EXPECT_GT(seed_with.pairs_added_by_diversification, 0u);
}

TEST(PipelineIntegrationTest, VetoRulesDiscardRoughlyTenPercent) {
  auto category = Generate(datagen::CategoryId::kDigitalCameras, 250);
  auto out = RunPipeline(category, BaseConfig(1));
  ASSERT_FALSE(out.result.iteration_stats.empty());
  const auto& stats = out.result.iteration_stats[0];
  // §VIII-B: veto rules discard around 10 % of first-iteration
  // candidates. Allow a generous band.
  const double rate = stats.cleaning.input > 0
                          ? 100.0 * static_cast<double>(
                                        stats.cleaning.vetoed()) /
                                static_cast<double>(stats.cleaning.input)
                          : 0.0;
  EXPECT_GT(rate, 2.0);
  EXPECT_LT(rate, 40.0);
}

TEST(PipelineIntegrationTest, SpecializedModelRaisesAttributeCoverage) {
  // §VIII-D / Fig. 7: a model restricted to a low-coverage attribute
  // subset raises that attribute's coverage.
  auto category = Generate(datagen::CategoryId::kDigitalCameras, 250);
  core::ProcessedCorpus corpus = core::ProcessCorpus(category.corpus);

  PipelineConfig global = BaseConfig(1);
  Pipeline global_pipeline(global);
  auto global_result = global_pipeline.Run(corpus);
  ASSERT_TRUE(global_result.ok());

  PipelineConfig specialized = BaseConfig(1);
  specialized.preprocess.attribute_filter = {"シャッタースピード",
                                             "有効画素数", "重量"};
  Pipeline specialized_pipeline(specialized);
  auto specialized_result = specialized_pipeline.Run(corpus);
  ASSERT_TRUE(specialized_result.ok());

  auto global_coverage = core::PerAttributeCoverage(
      global_result.value().final_triples(), category.truth,
      corpus.pages.size());
  auto special_coverage = core::PerAttributeCoverage(
      specialized_result.value().final_triples(), category.truth,
      corpus.pages.size());
  // The specialized model must at least match the global model on its
  // target attributes in aggregate.
  const double global_sum = global_coverage["シャッタースピード"] +
                            global_coverage["有効画素数"] +
                            global_coverage["重量"];
  const double special_sum = special_coverage["シャッタースピード"] +
                             special_coverage["有効画素数"] +
                             special_coverage["重量"];
  EXPECT_GE(special_sum, global_sum * 0.9);
  EXPECT_GT(special_sum, 0.0);
}

TEST(PipelineIntegrationTest, HeterogeneousCategoryHurtsPrecision) {
  // §VIII-E: Baby Goods (heterogeneous) < Baby Carriers (homogeneous).
  auto carriers = Generate(datagen::CategoryId::kBabyCarriers, 250, 11);
  auto goods = Generate(datagen::CategoryId::kBabyGoods, 250, 11);
  auto carriers_metrics = RunPipeline(carriers, BaseConfig(1)).metrics;
  auto goods_metrics = RunPipeline(goods, BaseConfig(1)).metrics;
  EXPECT_GT(carriers_metrics.precision, goods_metrics.precision);
}

TEST(PipelineIntegrationTest, BiLstmPipelineRuns) {
  auto category = Generate(datagen::CategoryId::kLadiesBags, 150);
  PipelineConfig config = BaseConfig(1);
  config.model = ModelType::kBiLstm;
  config.lstm.epochs = 2;
  auto out = RunPipeline(category, config);
  EXPECT_GT(out.metrics.total, 0u);
  EXPECT_GT(out.metrics.precision, 60.0);
}

TEST(PipelineIntegrationTest, GermanCategoryWorksEndToEnd) {
  auto category = Generate(datagen::CategoryId::kMailboxDe, 250);
  auto out = RunPipeline(category, BaseConfig(1));
  // §VII-B: German results are comparable to Japanese.
  EXPECT_GT(out.metrics.precision, 75.0);
  EXPECT_GT(out.metrics.coverage, 20.0);
}

TEST(PipelineIntegrationTest, DeterministicAcrossRuns) {
  auto category = Generate(datagen::CategoryId::kShoes, 150);
  auto a = RunPipeline(category, BaseConfig(1));
  auto b = RunPipeline(category, BaseConfig(1));
  EXPECT_EQ(a.metrics.total, b.metrics.total);
  EXPECT_EQ(a.metrics.correct, b.metrics.correct);
}

TEST(PipelineIntegrationTest, NegationFilteringDropsNegatedMentions) {
  // Definition 3.1: negated sentences must not yield triples. The
  // filter can only remove triples, and what it removes is judged
  // error mass, so precision must not get worse.
  auto category = Generate(datagen::CategoryId::kKitchen, 300);
  PipelineConfig with = BaseConfig(1);
  PipelineConfig without = BaseConfig(1);
  without.negation_filtering = false;
  auto m_with = RunPipeline(category, with).metrics;
  auto m_without = RunPipeline(category, without).metrics;
  EXPECT_LE(m_with.total, m_without.total);
  EXPECT_GE(m_with.precision, m_without.precision);
}

TEST(PipelineIntegrationTest, EmptyCorpusFailsGracefully) {
  core::Corpus corpus;
  corpus.language = text::Language::kJa;
  core::ProcessedCorpus processed = core::ProcessCorpus(corpus);
  Pipeline pipeline(BaseConfig(1));
  auto result = pipeline.Run(processed);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace pae
