#include "util/interner.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pae::util {
namespace {

TEST(FlatStringInternerTest, AssignsDenseFirstInsertionIds) {
  FlatStringInterner interner;
  EXPECT_TRUE(interner.empty());
  EXPECT_EQ(interner.Intern("alpha"), 0);
  EXPECT_EQ(interner.Intern("beta"), 1);
  EXPECT_EQ(interner.Intern("gamma"), 2);
  // Re-interning returns the original id without growing the table.
  EXPECT_EQ(interner.Intern("beta"), 1);
  EXPECT_EQ(interner.Intern("alpha"), 0);
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.key(0), "alpha");
  EXPECT_EQ(interner.key(1), "beta");
  EXPECT_EQ(interner.key(2), "gamma");
}

TEST(FlatStringInternerTest, FindAndContainsDoNotInsert) {
  FlatStringInterner interner;
  interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), 0);
  EXPECT_EQ(interner.Find("absent"), -1);
  EXPECT_TRUE(interner.Contains("present"));
  EXPECT_FALSE(interner.Contains("absent"));
  EXPECT_EQ(interner.size(), 1u);
}

TEST(FlatStringInternerTest, HandlesEmptyKey) {
  FlatStringInterner interner;
  const int id = interner.Intern("");
  EXPECT_EQ(interner.Find(""), id);
  EXPECT_EQ(interner.key(id), "");
  EXPECT_NE(interner.Intern("nonempty"), id);
}

TEST(FlatStringInternerTest, HeterogeneousLookupMatchesStringBytes) {
  FlatStringInterner interner;
  const std::string owned = "w[0]=重量";
  const int id = interner.Intern(owned);
  // A view over different storage with the same bytes must resolve to
  // the same id; a view that is a strict prefix must not.
  const char buffer[] = "w[0]=重量tail";
  EXPECT_EQ(interner.Find(std::string_view(buffer, owned.size())), id);
  EXPECT_EQ(interner.Find(std::string_view(buffer, owned.size() - 1)), -1);
  EXPECT_EQ(interner.Find(std::string_view(buffer)), -1);
}

TEST(FlatStringInternerTest, ViewsStayValidAcrossRehashes) {
  FlatStringInterner interner;
  // Grow well past several doublings of the initial 16-slot table and
  // keep the early views around: the arena guarantee says they must
  // still point at the right bytes afterwards.
  std::vector<std::string_view> early;
  for (int i = 0; i < 64; ++i) {
    early.push_back(interner.key(interner.Intern("early" + std::to_string(i))));
  }
  for (int i = 0; i < 20000; ++i) {
    interner.Intern("filler" + std::to_string(i));
  }
  EXPECT_EQ(interner.size(), 64u + 20000u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(early[static_cast<size_t>(i)], "early" + std::to_string(i));
    EXPECT_EQ(interner.Find(early[static_cast<size_t>(i)]), i);
  }
  // Every filler key still resolves and round-trips after all rehashes.
  for (int i = 0; i < 20000; ++i) {
    const std::string k = "filler" + std::to_string(i);
    const int id = interner.Find(k);
    ASSERT_GE(id, 64);
    EXPECT_EQ(interner.key(id), k);
  }
}

TEST(FlatStringInternerTest, OversizedKeysGetDedicatedBlocks) {
  FlatStringInterner interner;
  interner.Intern("small-before");
  const std::string huge_a(200000, 'a');  // > the 64 KiB arena block
  const std::string huge_b(70000, 'b');
  const int id_a = interner.Intern(huge_a);
  const std::string_view view_a = interner.key(id_a);
  const int id_b = interner.Intern(huge_b);
  // Small keys keep packing into the regular fill block around them.
  for (int i = 0; i < 5000; ++i) {
    interner.Intern("small" + std::to_string(i));
  }
  EXPECT_EQ(view_a, huge_a);
  EXPECT_EQ(interner.key(id_a), huge_a);
  EXPECT_EQ(interner.key(id_b), huge_b);
  EXPECT_EQ(interner.Find(huge_a), id_a);
  EXPECT_EQ(interner.Find(huge_b), id_b);
  EXPECT_EQ(interner.Find("small-before"), 0);
}

TEST(FlatStringInternerTest, SimilarShortKeysAllDistinct) {
  // The feature templates produce exactly this shape — short keys with
  // long shared prefixes — which is where a weak hash would cluster.
  FlatStringInterner interner;
  std::vector<std::string> keys;
  for (int d = -3; d <= 3; ++d) {
    for (int v = 0; v < 500; ++v) {
      keys.push_back("w[" + std::to_string(d) + "]=" + std::to_string(v));
      keys.push_back("p[" + std::to_string(d) + "]=" + std::to_string(v));
    }
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(interner.Intern(keys[i]), static_cast<int>(i));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(interner.Find(keys[i]), static_cast<int>(i));
  }
}

TEST(FlatStringInternerTest, UnicodeKeysRoundTrip) {
  FlatStringInterner interner;
  const std::vector<std::string> keys = {
      "重量", "サイズ", "色=青", "w[0]=☃", "größe", "пример"};
  for (const std::string& k : keys) interner.Intern(k);
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(interner.Find(keys[i]), static_cast<int>(i));
    EXPECT_EQ(interner.key(static_cast<int>(i)), keys[i]);
  }
}

TEST(FlatStringInternerTest, ReserveDoesNotDisturbContents) {
  FlatStringInterner interner;
  interner.Intern("a");
  interner.Intern("b");
  interner.Reserve(100000);
  EXPECT_EQ(interner.Find("a"), 0);
  EXPECT_EQ(interner.Find("b"), 1);
  for (int i = 0; i < 1000; ++i) interner.Intern("k" + std::to_string(i));
  EXPECT_EQ(interner.size(), 1002u);
}

TEST(FlatStringInternerTest, ReservePreAllocatesTheProbeTable) {
  FlatStringInterner interner;
  interner.Reserve(10000);
  const size_t reserved_capacity = interner.capacity();
  // 10000 keys fit under the interner's load factor, so the bulk build
  // never rehashes: capacity is untouched by the inserts.
  for (int i = 0; i < 10000; ++i) interner.Intern("k" + std::to_string(i));
  EXPECT_EQ(interner.capacity(), reserved_capacity);
  EXPECT_EQ(interner.size(), 10000u);
  // An unreserved build of the same keys goes through the doubling
  // storm and lands on the same final capacity or smaller.
  FlatStringInterner unreserved;
  for (int i = 0; i < 10000; ++i) unreserved.Intern("k" + std::to_string(i));
  EXPECT_LE(unreserved.capacity(), reserved_capacity);
}

TEST(FlatStringInternerTest, CopyReInternsIndependently) {
  FlatStringInterner original;
  for (int i = 0; i < 300; ++i) original.Intern("key" + std::to_string(i));
  FlatStringInterner copy(original);
  ASSERT_EQ(copy.size(), original.size());
  for (int i = 0; i < 300; ++i) {
    const std::string k = "key" + std::to_string(i);
    EXPECT_EQ(copy.Find(k), i);
    EXPECT_EQ(copy.key(i), k);
    // Same bytes, distinct arenas.
    EXPECT_NE(copy.key(i).data(), original.key(i).data());
  }
  copy.Intern("only-in-copy");
  EXPECT_FALSE(original.Contains("only-in-copy"));

  FlatStringInterner assigned;
  assigned.Intern("stale");
  assigned = original;
  EXPECT_FALSE(assigned.Contains("stale"));
  EXPECT_EQ(assigned.Find("key0"), 0);
  EXPECT_EQ(assigned.size(), original.size());
}

TEST(FlatStringInternerTest, MovePreservesViews) {
  FlatStringInterner original;
  const int id = original.Intern("movable");
  const std::string_view view = original.key(id);
  FlatStringInterner moved(std::move(original));
  EXPECT_EQ(moved.Find("movable"), id);
  EXPECT_EQ(moved.key(id), view);
  EXPECT_EQ(moved.key(id).data(), view.data());  // arena moved, not copied
}

TEST(FlatStringInternerTest, HashIsStableAndSpreads) {
  const uint64_t h = FlatStringInterner::Hash("w[0]=重量");
  EXPECT_EQ(h, FlatStringInterner::Hash("w[0]=重量"));
  EXPECT_NE(FlatStringInterner::Hash("sent=1"),
            FlatStringInterner::Hash("sent=2"));
  // Single-character keys must not collapse into the low bits.
  EXPECT_NE(FlatStringInterner::Hash("a") & 0xff,
            FlatStringInterner::Hash("b") & 0xff);
}

}  // namespace
}  // namespace pae::util
