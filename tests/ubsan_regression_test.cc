// UBSan regression corpus: feeds the byte-level decoders and the
// feature encoder the malformed / boundary inputs most likely to trip
// undefined behaviour (shift overflows, signed-char promotion, buffer
// walks past the end). The assertions pin the defined fallback
// behaviour — invalid sequences decode to U+FFFD — and the real payoff
// is running this suite under `-fsanitize=undefined` (scripts/check.sh
// pass 4), where any UB aborts the test.

#include <string>
#include <string_view>
#include <vector>

#include "crf/feature_extractor.h"
#include "gtest/gtest.h"
#include "text/labeled_sequence.h"
#include "text/utf8.h"

namespace pae {
namespace {

using text::DecodeUtf8;
using text::EncodeUtf8;
using text::kReplacementChar;
using text::NextCodepoint;
using text::Utf8Length;

// Every decoded code point must be a scalar value or the replacement
// character — never garbage assembled from invalid continuation bytes.
void ExpectAllScalarOrReplacement(std::string_view input) {
  for (char32_t cp : DecodeUtf8(input)) {
    const bool scalar =
        cp <= 0x10FFFF && !(cp >= 0xD800 && cp <= 0xDFFF);
    EXPECT_TRUE(scalar) << "cp=" << static_cast<uint32_t>(cp)
                        << " from input of size " << input.size();
  }
}

TEST(Utf8UbsanRegression, TruncatedSequences) {
  // Lead bytes promising 2/3/4 bytes, cut off at end of input.
  for (const char* s : {"\xC3", "\xE2", "\xE2\x82", "\xF0", "\xF0\x9F",
                        "\xF0\x9F\x92"}) {
    const std::string_view input(s);
    ExpectAllScalarOrReplacement(input);
    EXPECT_EQ(DecodeUtf8(input).front(), kReplacementChar) << input.size();
    EXPECT_EQ(Utf8Length(input), DecodeUtf8(input).size());
  }
  // Same lead bytes truncated mid-string rather than at the end.
  const std::string mid = std::string("ab\xE2\x82") + "cd";
  const std::vector<char32_t> cps = DecodeUtf8(mid);
  ASSERT_GE(cps.size(), 3u);
  EXPECT_EQ(cps[0], U'a');
  EXPECT_EQ(cps[2], kReplacementChar);
  EXPECT_EQ(cps.back(), U'd');
}

TEST(Utf8UbsanRegression, OverlongEncodings) {
  // Overlong '/' (0x2F): must NOT decode to '/', the classic path-check
  // bypass.
  for (const char* s : {"\xC0\xAF", "\xE0\x80\xAF", "\xF0\x80\x80\xAF"}) {
    const std::string_view input(s);
    ExpectAllScalarOrReplacement(input);
    for (char32_t cp : DecodeUtf8(input)) EXPECT_NE(cp, U'/');
  }
  // Overlong NUL.
  for (char32_t cp : DecodeUtf8(std::string_view("\xC0\x80", 2))) {
    EXPECT_NE(cp, U'\0');
  }
}

TEST(Utf8UbsanRegression, SurrogatesAndOutOfRange) {
  // CESU-8 style surrogate halves and code points above U+10FFFF.
  for (const char* s :
       {"\xED\xA0\x80", "\xED\xBF\xBF", "\xF4\x90\x80\x80",
        "\xF7\xBF\xBF\xBF"}) {
    ExpectAllScalarOrReplacement(s);
  }
}

TEST(Utf8UbsanRegression, StrayAndInvalidBytes) {
  // Bare continuation bytes, 0xFE/0xFF (never valid in UTF-8), and a
  // lead byte followed by a non-continuation byte.
  for (const char* s : {"\x80", "\xBF", "\xFE", "\xFF", "\xC3(",
                        "\xE2\x82(", "\x80\x80\x80"}) {
    const std::string_view input(s);
    ExpectAllScalarOrReplacement(input);
    EXPECT_EQ(DecodeUtf8(input).front(), kReplacementChar);
  }
  // High-bit bytes exercise the signed-char → char32_t promotion path.
  std::string all_bytes;
  for (int b = 0x80; b <= 0xFF; ++b) {
    all_bytes.push_back(static_cast<char>(b));
  }
  ExpectAllScalarOrReplacement(all_bytes);
}

TEST(Utf8UbsanRegression, NextCodepointAlwaysAdvances) {
  // Every malformed input must still make progress (no infinite loop,
  // no read past the end).
  for (const char* s : {"\xC3", "\xE2\x82", "\xF0\x9F\x92", "\xFF",
                        "\x80\x80", "\xED\xA0\x80"}) {
    const std::string_view input(s);
    size_t pos = 0;
    size_t steps = 0;
    while (pos < input.size()) {
      const size_t before = pos;
      (void)NextCodepoint(input, &pos);
      ASSERT_GT(pos, before);
      ASSERT_LE(pos, input.size());
      ASSERT_LT(++steps, 16u);
    }
  }
}

TEST(Utf8UbsanRegression, RoundTripValidScalars) {
  // Boundary scalars on both sides of every encoding-length switch.
  for (char32_t cp : {U'\x01', U'\x7F', char32_t{0x80}, char32_t{0x7FF},
                      char32_t{0x800}, char32_t{0xD7FF}, char32_t{0xE000},
                      char32_t{0xFFFD}, char32_t{0x10000},
                      char32_t{0x10FFFF}}) {
    const std::string enc = EncodeUtf8(cp);
    const std::vector<char32_t> dec = DecodeUtf8(enc);
    ASSERT_EQ(dec.size(), 1u) << static_cast<uint32_t>(cp);
    EXPECT_EQ(dec[0], cp);
  }
}

// ---------------------------------------------------------------------
// FeatureEncoder boundary offsets: windows hanging over both sentence
// edges index TokenAt with negative and past-the-end positions; under
// UBSan any bad pointer arithmetic in the scratch-buffer reuse aborts.

text::LabeledSequence MakeSeq(std::vector<std::string> tokens) {
  text::LabeledSequence seq;
  seq.pos.assign(tokens.size(), "NN");
  seq.labels.assign(tokens.size(), text::kOutsideLabel);
  seq.tokens = std::move(tokens);
  seq.sentence_index = 0;
  return seq;
}

size_t CountEncoded(crf::FeatureEncoder& enc,
                    const text::LabeledSequence& seq,
                    std::vector<std::vector<std::string>>* collected) {
  collected->assign(seq.tokens.size(), {});
  size_t n = 0;
  enc.Encode(seq, [&](size_t t, std::string_view f) {
    (*collected)[t].emplace_back(f);
    ++n;
  });
  return n;
}

TEST(FeatureEncoderUbsanRegression, EmptySequence) {
  crf::FeatureConfig config;
  crf::FeatureEncoder enc(config);
  std::vector<std::vector<std::string>> got;
  EXPECT_EQ(CountEncoded(enc, MakeSeq({}), &got), 0u);
}

TEST(FeatureEncoderUbsanRegression, ShortSentencesMatchReference) {
  // Sentences shorter than the window force every out-of-range offset:
  // with K = 2 a length-1 sentence needs TokenAt(-2..2).
  crf::FeatureConfig config;
  config.window = 2;
  crf::FeatureEncoder enc(config);
  for (const auto& tokens :
       {std::vector<std::string>{"solo"},
        std::vector<std::string>{"two", "tokens"},
        std::vector<std::string>{"a", "b", "c"}}) {
    const text::LabeledSequence seq = MakeSeq(tokens);
    std::vector<std::vector<std::string>> got;
    const size_t n = CountEncoded(enc, seq, &got);
    // Template emits 4K + 4 features per token: w[t], 2K window words,
    // 2K+1 PoS tags, pwin, sent.
    const size_t per_token = 4 * 2 + 4;
    EXPECT_EQ(n, per_token * tokens.size());

    std::vector<std::vector<std::string>> want;
    crf::ExtractFeatures(seq, config, &want);
    EXPECT_EQ(got, want) << "length " << tokens.size();
  }
}

TEST(FeatureEncoderUbsanRegression, MalformedUtf8Tokens) {
  // Tokens carrying raw invalid bytes flow through the scratch buffers
  // unchanged; the encoder must treat them as opaque bytes.
  crf::FeatureConfig config;
  config.window = 2;
  crf::FeatureEncoder enc(config);
  const text::LabeledSequence seq =
      MakeSeq({"\xC3", "ok", "\xF0\x9F\x92", "\xFF\xFE"});
  std::vector<std::vector<std::string>> got;
  const size_t n = CountEncoded(enc, seq, &got);
  EXPECT_EQ(n, (4 * 2 + 4) * seq.tokens.size());
  std::vector<std::vector<std::string>> want;
  crf::ExtractFeatures(seq, config, &want);
  EXPECT_EQ(got, want);
}

TEST(FeatureEncoderUbsanRegression, WindowLargerThanSentence) {
  crf::FeatureConfig config;
  config.window = 5;
  crf::FeatureEncoder enc(config);
  const text::LabeledSequence seq = MakeSeq({"tiny", "seq"});
  std::vector<std::vector<std::string>> got;
  const size_t n = CountEncoded(enc, seq, &got);
  EXPECT_EQ(n, (4 * 5 + 4) * seq.tokens.size());
  std::vector<std::vector<std::string>> want;
  crf::ExtractFeatures(seq, config, &want);
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace pae
