#include <gtest/gtest.h>

#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "core/document.h"
#include "text/char_class.h"
#include "text/utf8.h"
#include "core/normalize.h"
#include "datagen/generator.h"
#include "datagen/schema.h"
#include "datagen/word_factory.h"
#include "html/parser.h"
#include "util/rng.h"

namespace pae::datagen {
namespace {

// ---------------- word factory ----------------

TEST(WordFactoryTest, JapaneseNounsAreKatakana) {
  WordFactory wf(text::Language::kJa);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    std::string w = wf.MakeNoun(&rng, 3);
    for (char32_t cp : text::DecodeUtf8(w)) {
      EXPECT_EQ(text::ClassifyChar(cp), text::CharClass::kKatakana) << w;
    }
  }
}

TEST(WordFactoryTest, GermanNounsCapitalized) {
  WordFactory wf(text::Language::kDe);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    std::string w = wf.MakeNoun(&rng, 2);
    ASSERT_FALSE(w.empty());
    EXPECT_TRUE(std::isupper(static_cast<unsigned char>(w[0]))) << w;
  }
}

TEST(WordFactoryTest, IdeographWordLength) {
  WordFactory wf(text::Language::kJa);
  Rng rng(3);
  EXPECT_EQ(text::Utf8Length(wf.MakeIdeographWord(&rng, 2)), 2u);
  EXPECT_EQ(text::Utf8Length(wf.MakeIdeographWord(&rng, 3)), 3u);
}

TEST(WordFactoryTest, NumberFormattingJapanese) {
  WordFactory wf(text::Language::kJa);
  EXPECT_EQ(wf.FormatNumber(2.5, 1, false), "2.5");
  EXPECT_EQ(wf.FormatNumber(2430, 0, true), "2,430");
  EXPECT_EQ(wf.FormatNumber(1234567, 0, true), "1,234,567");
  EXPECT_EQ(wf.FormatNumber(5, 0, false), "5");
}

TEST(WordFactoryTest, NumberFormattingGermanUsesCommaDecimal) {
  WordFactory wf(text::Language::kDe);
  EXPECT_EQ(wf.FormatNumber(2.5, 1, false), "2,5");
  EXPECT_EQ(wf.FormatNumber(2430, 0, true), "2.430");
}

// ---------------- schema ----------------

TEST(SchemaTest, AllCategoriesBuild) {
  for (CategoryId id : AllCategories()) {
    CategorySpec spec = BuildCategorySpec(id);
    EXPECT_FALSE(spec.name.empty());
    if (spec.heterogeneous()) {
      EXPECT_GE(spec.mixture.size(), 2u);
    } else {
      EXPECT_GE(spec.attributes.size(), 4u) << spec.name;
      for (const auto& attr : spec.attributes) {
        EXPECT_FALSE(attr.canonical.empty());
        if (attr.kind == ValueKind::kEnum) {
          EXPECT_GE(attr.enum_values.size(), 3u) << attr.canonical;
        }
      }
    }
  }
}

TEST(SchemaTest, PaperTableCategoriesMatchPaperOrder) {
  const auto& cats = PaperTableCategories();
  ASSERT_EQ(cats.size(), 8u);
  EXPECT_EQ(CategoryName(cats[0]), std::string("Tennis"));
  EXPECT_EQ(CategoryName(cats[7]), std::string("Vacuum Cleaner"));
}

TEST(SchemaTest, SchemasAreDeterministic) {
  CategorySpec a = BuildCategorySpec(CategoryId::kGarden);
  CategorySpec b = BuildCategorySpec(CategoryId::kGarden);
  ASSERT_EQ(a.attributes.size(), b.attributes.size());
  for (size_t i = 0; i < a.attributes.size(); ++i) {
    EXPECT_EQ(a.attributes[i].canonical, b.attributes[i].canonical);
    EXPECT_EQ(a.attributes[i].enum_values, b.attributes[i].enum_values);
  }
}

TEST(SchemaTest, ConfusablePairsAreSymmetric) {
  for (CategoryId id : AllCategories()) {
    CategorySpec spec = BuildCategorySpec(id);
    const auto check = [](const CategorySpec& s) {
      for (size_t i = 0; i < s.attributes.size(); ++i) {
        const int j = s.attributes[i].confusable_with;
        if (j >= 0) {
          ASSERT_LT(static_cast<size_t>(j), s.attributes.size());
          EXPECT_EQ(s.attributes[static_cast<size_t>(j)].confusable_with,
                    static_cast<int>(i));
        }
      }
    };
    if (spec.heterogeneous()) {
      for (const auto& sub : spec.mixture) check(sub);
    } else {
      check(spec);
    }
  }
}

TEST(SchemaTest, LanguageAssignment) {
  EXPECT_EQ(CategoryLanguage(CategoryId::kGarden), text::Language::kJa);
  EXPECT_EQ(CategoryLanguage(CategoryId::kMailboxDe), text::Language::kDe);
}

TEST(SchemaTest, VacuumWeightHasDiversificationLever) {
  // The §VIII-A case study requires integer-biased tables with decimal
  // text values for the vacuum-cleaner weight.
  CategorySpec spec = BuildCategorySpec(CategoryId::kVacuumCleaner);
  const AttributeSpec* weight = nullptr;
  for (const auto& attr : spec.attributes) {
    if (attr.canonical == "重量") weight = &attr;
  }
  ASSERT_NE(weight, nullptr);
  EXPECT_LT(weight->numeric.decimal_prob_table, 0.15);
  EXPECT_GT(weight->numeric.decimal_prob_text, 0.5);
}

// ---------------- generator ----------------

GeneratedCategory SmallCategory(CategoryId id, uint64_t seed = 9) {
  GeneratorConfig config;
  config.num_products = 120;
  config.seed = seed;
  return GenerateCategory(id, config);
}

TEST(GeneratorTest, ProducesRequestedProducts) {
  GeneratedCategory cat = SmallCategory(CategoryId::kTennis);
  EXPECT_EQ(cat.corpus.pages.size(), 120u);
  EXPECT_FALSE(cat.corpus.query_log.empty());
  EXPECT_FALSE(cat.truth.entries.empty());
  EXPECT_FALSE(cat.attribute_names.empty());
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratedCategory a = SmallCategory(CategoryId::kKitchen, 5);
  GeneratedCategory b = SmallCategory(CategoryId::kKitchen, 5);
  ASSERT_EQ(a.corpus.pages.size(), b.corpus.pages.size());
  for (size_t i = 0; i < a.corpus.pages.size(); ++i) {
    EXPECT_EQ(a.corpus.pages[i].html, b.corpus.pages[i].html);
  }
  EXPECT_EQ(a.truth.entries.size(), b.truth.entries.size());
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratedCategory a = SmallCategory(CategoryId::kKitchen, 5);
  GeneratedCategory b = SmallCategory(CategoryId::kKitchen, 6);
  size_t same = 0;
  for (size_t i = 0; i < a.corpus.pages.size(); ++i) {
    if (a.corpus.pages[i].html == b.corpus.pages[i].html) ++same;
  }
  EXPECT_LT(same, a.corpus.pages.size() / 2);
}

TEST(GeneratorTest, PagesAreParseableHtml) {
  GeneratedCategory cat = SmallCategory(CategoryId::kCosmetics);
  for (const auto& page : cat.corpus.pages) {
    auto dom = html::ParseHtml(page.html);
    ASSERT_NE(dom, nullptr);
    EXPECT_FALSE(html::ExtractText(*dom).empty()) << page.product_id;
  }
}

TEST(GeneratorTest, TableFractionRoughlyHonored) {
  GeneratorConfig config;
  config.num_products = 600;
  config.seed = 10;
  GeneratedCategory bags =
      GenerateCategory(CategoryId::kLadiesBags, config);
  GeneratedCategory garden = GenerateCategory(CategoryId::kGarden, config);
  auto table_count = [](const GeneratedCategory& cat) {
    size_t n = 0;
    for (const auto& page : cat.corpus.pages) {
      auto dom = html::ParseHtml(page.html);
      if (!html::ExtractDictionaryTables(*dom).empty()) ++n;
    }
    return n;
  };
  const size_t bags_tables = table_count(bags);
  const size_t garden_tables = table_count(garden);
  // Ladies Bags ≈ 42 % ≫ Garden ≈ 8.5 % (Table I coverage ordering).
  EXPECT_GT(bags_tables, garden_tables * 2);
}

TEST(GeneratorTest, TruthEntriesReferenceExistingProducts) {
  GeneratedCategory cat = SmallCategory(CategoryId::kShoes);
  std::unordered_set<std::string> ids;
  for (const auto& page : cat.corpus.pages) ids.insert(page.product_id);
  for (const auto& entry : cat.truth.entries) {
    EXPECT_TRUE(ids.count(entry.triple.product_id) > 0);
  }
}

TEST(GeneratorTest, CorrectTruthValuesAppearOnTheirPage) {
  GeneratedCategory cat = SmallCategory(CategoryId::kVacuumCleaner);
  std::unordered_map<std::string, std::string> page_text;
  for (const auto& page : cat.corpus.pages) {
    auto dom = html::ParseHtml(page.html);
    page_text[page.product_id] =
        core::NormalizeValue(html::ExtractText(*dom));
  }
  size_t checked = 0;
  for (const auto& entry : cat.truth.entries) {
    if (!entry.triple_correct) continue;
    const std::string norm = core::NormalizeValue(entry.triple.value);
    EXPECT_NE(page_text[entry.triple.product_id].find(norm),
              std::string::npos)
        << entry.triple.product_id << " " << entry.triple.value;
    if (++checked > 200) break;
  }
}

TEST(GeneratorTest, AliasesMapSynonymsToCanonical) {
  GeneratedCategory cat = SmallCategory(CategoryId::kVacuumCleaner);
  // メーカー synonyms map to the canonical name.
  EXPECT_EQ(cat.truth.Canonical("製造元"), "メーカー");
  EXPECT_EQ(cat.truth.Canonical("ブランド"), "メーカー");
  EXPECT_EQ(cat.truth.Canonical("メーカー"), "メーカー");
  // Unknown names map to themselves.
  EXPECT_EQ(cat.truth.Canonical("備考"), "備考");
}

TEST(GeneratorTest, ValidPairsCoverCorrectEntries) {
  GeneratedCategory cat = SmallCategory(CategoryId::kTennis);
  for (const auto& entry : cat.truth.entries) {
    if (!entry.triple_correct || !entry.pair_valid) continue;
    const std::string key =
        core::PairKey(cat.truth.Canonical(entry.triple.attribute),
                      core::NormalizeValue(entry.triple.value));
    EXPECT_TRUE(cat.truth.valid_pairs.count(key) > 0);
  }
}

TEST(GeneratorTest, IncorrectEntriesExist) {
  GeneratorConfig config;
  config.num_products = 400;
  config.seed = 20;
  GeneratedCategory cat = GenerateCategory(CategoryId::kGarden, config);
  size_t incorrect = 0;
  for (const auto& entry : cat.truth.entries) {
    if (!entry.triple_correct) ++incorrect;
  }
  EXPECT_GT(incorrect, 10u);  // noise sources are active
}

TEST(GeneratorTest, HeterogeneousCategoryMixesSchemas) {
  GeneratedCategory cat = SmallCategory(CategoryId::kBabyGoods);
  // Attributes from all three sub-schemas are present.
  std::unordered_set<std::string> names(cat.attribute_names.begin(),
                                        cat.attribute_names.end());
  EXPECT_TRUE(names.count("対象年齢") > 0);
  EXPECT_TRUE(names.count("サイズ") > 0);   // clothes
  EXPECT_TRUE(names.count("電池") > 0);     // toys
  EXPECT_TRUE(names.count("安全基準") > 0); // carriers
}

TEST(GeneratorTest, GermanCorpusIsLatinScript) {
  GeneratedCategory cat = SmallCategory(CategoryId::kMailboxDe);
  EXPECT_EQ(cat.corpus.language, text::Language::kDe);
  auto dom = html::ParseHtml(cat.corpus.pages[0].html);
  const std::string page_text = html::ExtractText(*dom);
  for (char32_t cp : text::DecodeUtf8(page_text)) {
    EXPECT_NE(text::ClassifyChar(cp), text::CharClass::kKatakana);
    EXPECT_NE(text::ClassifyChar(cp), text::CharClass::kCjk);
  }
}

TEST(GeneratorTest, LexiconCoversSchemaWords) {
  GeneratedCategory cat = SmallCategory(CategoryId::kVacuumCleaner);
  std::unordered_set<std::string> lexicon(
      cat.corpus.tokenizer_lexicon.begin(),
      cat.corpus.tokenizer_lexicon.end());
  EXPECT_TRUE(lexicon.count("重量") > 0);
  EXPECT_TRUE(lexicon.count("集じん方式") > 0);
  EXPECT_TRUE(lexicon.count("です") > 0);
}

TEST(GeneratorTest, TokenizedPagesRoundTripValues) {
  // Processing the corpus must let the distant supervisor find seed
  // values: tokenize a known correct truth value and ensure its token
  // sequence appears in the page's sentences.
  GeneratedCategory cat = SmallCategory(CategoryId::kLadiesBags, 33);
  core::ProcessedCorpus corpus = core::ProcessCorpus(cat.corpus);
  std::unordered_map<std::string, const core::ProcessedPage*> by_id;
  for (const auto& page : corpus.pages) by_id[page.product_id] = &page;

  size_t found = 0, checked = 0;
  for (const auto& entry : cat.truth.entries) {
    if (!entry.triple_correct) continue;
    std::vector<std::string> value_tokens =
        corpus.Tokenize(entry.triple.value);
    if (value_tokens.empty()) continue;
    const core::ProcessedPage* page = by_id[entry.triple.product_id];
    ASSERT_NE(page, nullptr);
    bool hit = false;
    for (const auto& sentence : page->sentences) {
      for (size_t start = 0;
           start + value_tokens.size() <= sentence.tokens.size() && !hit;
           ++start) {
        hit = std::equal(value_tokens.begin(), value_tokens.end(),
                         sentence.tokens.begin() + static_cast<long>(start));
      }
      if (hit) break;
    }
    found += hit ? 1 : 0;
    if (++checked >= 120) break;
  }
  // The overwhelming majority of correct mentions must be retrievable
  // after tokenization (a few live only inside the title's decorations).
  EXPECT_GT(found * 10, checked * 9);
}

// Property sweep: every category generates a corpus whose pages parse
// and whose truth sample is internally consistent.
class GeneratorPropertyTest
    : public ::testing::TestWithParam<CategoryId> {};

TEST_P(GeneratorPropertyTest, CategoryGeneratesConsistently) {
  GeneratorConfig config;
  config.num_products = 60;
  config.seed = 77;
  GeneratedCategory cat = GenerateCategory(GetParam(), config);
  EXPECT_EQ(cat.corpus.pages.size(), 60u);
  EXPECT_FALSE(cat.truth.entries.empty());
  for (const auto& entry : cat.truth.entries) {
    EXPECT_FALSE(entry.triple.attribute.empty());
    EXPECT_FALSE(entry.triple.value.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllCategories, GeneratorPropertyTest,
                         ::testing::ValuesIn(AllCategories()),
                         [](const auto& info) {
                           std::string name = CategoryName(info.param);
                           std::string out;
                           for (char c : name) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               out.push_back(c);
                             }
                           }
                           return out;
                         });

}  // namespace
}  // namespace pae::datagen
