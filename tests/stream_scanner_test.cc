// Equivalence proofs for the two fused streaming-ingestion components:
//
//   * html::StreamScanner must produce byte-identical visible text and
//     equal dictionary tables to the DOM path
//     (ParseHtml → ExtractText / ExtractDictionaryTables), including on
//     malformed tag soup — the scanner replicates ParseHtml's tolerant
//     recovery, not an idealized HTML grammar.
//   * text::FusedSegmenter must produce exactly the LabeledSequences of
//     the modular pipeline (SplitSentences → Tokenizer → PosTagger) for
//     both corpus languages, through both its decode path and its
//     sentence-memo hit path, including on invalid UTF-8.
//
// Each half pairs handcrafted edge cases with a seeded randomized
// differential so the contracts stay enforced as the fused code evolves.

#include "html/stream_scanner.h"

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "html/parser.h"
#include "html/table_extractor.h"
#include "text/fused_segmenter.h"
#include "text/pos_tagger.h"
#include "text/sentence.h"
#include "text/tokenizer.h"
#include "util/rng.h"

namespace pae {
namespace {

// ---------------------------------------------------------------------------
// StreamScanner vs. the DOM path.

void ExpectScannerMatchesDom(const std::string& html_src) {
  html::StreamScanner scanner;
  scanner.Scan(html_src);

  const std::unique_ptr<html::HtmlNode> dom = html::ParseHtml(html_src);
  EXPECT_EQ(scanner.text(), html::ExtractText(*dom)) << "html: " << html_src;

  const std::vector<html::DictionaryTable> dom_tables =
      html::ExtractDictionaryTables(*dom);
  ASSERT_EQ(scanner.tables().size(), dom_tables.size())
      << "html: " << html_src;
  for (size_t i = 0; i < dom_tables.size(); ++i) {
    EXPECT_EQ(scanner.tables()[i].entries, dom_tables[i].entries)
        << "table " << i << " of html: " << html_src;
  }
}

TEST(StreamScannerTest, HandcraftedEdgeCases) {
  const std::vector<std::string> cases = {
      // Plain structure and block breaks.
      "",
      "just text, no markup",
      "<p>one</p><p>two</p>",
      "<div>a<span>b</span>c</div>",
      "a<br>b<br/>c<hr>d",
      // Well-formed n×2 and 2×n dictionary tables.
      "<table><tr><td>Brand</td><td>Acme</td></tr>"
      "<tr><td>Zoom</td><td>10x</td></tr></table>",
      "<table><tr><th>Brand</th><th>Zoom</th></tr>"
      "<tr><td>Acme</td><td>10x</td></tr></table>",
      // Nested table inside a cell: only the inner/outer grids ParseHtml
      // sees may become dictionaries.
      "<table><tr><td>k</td><td><table><tr><td>a</td><td>b</td></tr>"
      "<tr><td>c</td><td>d</td></tr></table></td></tr>"
      "<tr><td>x</td><td>y</td></tr></table>",
      // Unclosed cells / rows / table: everything closes at end of input.
      "<table><tr><td>Brand<td>Acme<tr><td>Zoom<td>10x",
      "<table><tr><td>a</td><td>b",
      // Cells with markup, entities, and whitespace runs to collapse.
      "<table><tr><td> a&amp;b \n c </td><td><b>v</b>1</td></tr>"
      "<tr><td>k2</td><td>v2</td></tr></table>",
      // Empty cells are dropped by GridToDictionary.
      "<table><tr><td></td><td>v</td></tr><tr><td>k</td><td>w</td></tr>"
      "</table>",
      // Non-dictionary shapes: 1 row, ragged rows, 3 columns.
      "<table><tr><td>only</td><td>row</td></tr></table>",
      "<table><tr><td>a</td></tr><tr><td>b</td><td>c</td></tr></table>",
      "<table><tr><td>a</td><td>b</td><td>c</td></tr>"
      "<tr><td>d</td><td>e</td><td>f</td></tr></table>",
      // script/style bodies are dropped, even with fake tags inside.
      "before<script>var x = '<td>not a cell</td>';</script>after",
      "a<style>p { content: \"</table>\" }</style>b",
      "<script>unterminated",
      // Comments, doctype, processing cruft.
      "<!doctype html><!-- c --><p>x<!-- <td>fake</td> --></p>",
      "<!-- unterminated comment <p>gone",
      // Void and self-closing elements never take children.
      "<img src=\"a.png\">text<input value=\"v\"><meta charset=\"utf-8\">",
      "<div/>tail",
      // Unmatched close tags are ignored; stray brackets survive.
      "</div>text</table></td>more",
      "a < b and c > d",
      "tail<",
      "tail<t",
      "<>empty tag<>",
      // Entities in visible text, including numeric and unknown ones.
      "&lt;tag&gt; &amp; &quot;q&quot; &#65;&#x42; &unknown; &#xZZ;",
      // Attributes with '>' inside quotes.
      "<div title=\"a > b\">inside</div>",
      // Deep unbalanced nesting.
      "<div><p><span><b>deep</div>after",
      // Multi-byte UTF-8 page text around structure.
      "<p>光学ズーム 10倍。</p><table><tr><td>画素</td><td>2,000万</td></tr>"
      "<tr><td>ズーム</td><td>10倍</td></tr></table>",
  };
  for (const std::string& html_src : cases) {
    SCOPED_TRACE(html_src);
    ExpectScannerMatchesDom(html_src);
  }
}

TEST(StreamScannerTest, ScannerStateResetsBetweenPages) {
  // One scanner instance reused across pages (the ingestion pattern)
  // must match a fresh DOM parse of each page, in any order.
  const std::vector<std::string> pages = {
      "<table><tr><td>k</td><td>v</td></tr><tr><td>a</td><td>b</td></tr>"
      "</table>",
      "plain text only",
      "<table><tr><td>unclosed",
      "<p>after the broken page</p>",
  };
  html::StreamScanner scanner;
  for (const std::string& page : pages) {
    SCOPED_TRACE(page);
    scanner.Scan(page);
    const std::unique_ptr<html::HtmlNode> dom = html::ParseHtml(page);
    EXPECT_EQ(scanner.text(), html::ExtractText(*dom));
    const auto dom_tables = html::ExtractDictionaryTables(*dom);
    ASSERT_EQ(scanner.tables().size(), dom_tables.size());
    for (size_t i = 0; i < dom_tables.size(); ++i) {
      EXPECT_EQ(scanner.tables()[i].entries, dom_tables[i].entries);
    }
  }
}

/// Random tag-soup generator: emits structural tokens (often unbalanced),
/// text with entities, comments, script/style, and raw junk so the
/// differential walks the scanner's recovery paths, not just happy HTML.
std::string RandomHtmlSoup(Rng* rng) {
  static const std::vector<std::string> kTokens = {
      "<div>",     "</div>",  "<p>",        "</p>",      "<span>",
      "</span>",   "<b>",     "</b>",       "<table>",   "</table>",
      "<tr>",      "</tr>",   "<td>",       "</td>",     "<th>",
      "</th>",     "<br>",    "<br/>",      "<hr>",      "<img src=\"x\">",
      "<div/>",    "</li>",   "<!-- c -->", "<!doctype html>",
      "<script>var t = '<td>';</script>",   "<style>b{}</style>",
      "<div title=\"a > b\">",              "<>",
  };
  static const std::vector<std::string> kText = {
      "word",  "  ",     "\n",      "123",      "a&amp;b", "&lt;x&gt;",
      "&#65;", "&bad;",  "光学",    "ズーム",   "<",       ">",
      "価格",  "10,000", "k v",     "&#x42;",
  };
  std::string out;
  const int pieces = static_cast<int>(rng->NextInt(1, 60));
  for (int i = 0; i < pieces; ++i) {
    if (rng->Bernoulli(0.55)) {
      out += kTokens[static_cast<size_t>(
          rng->NextInt(0, static_cast<int64_t>(kTokens.size()) - 1))];
    } else {
      out += kText[static_cast<size_t>(
          rng->NextInt(0, static_cast<int64_t>(kText.size()) - 1))];
    }
  }
  // Occasionally end mid-tag — the scanner must not read past the end.
  if (rng->Bernoulli(0.1)) out += "<t";
  return out;
}

TEST(StreamScannerTest, RandomizedSoupDifferential) {
  Rng rng(20260809);
  html::StreamScanner scanner;
  for (int iter = 0; iter < 400; ++iter) {
    const std::string html_src = RandomHtmlSoup(&rng);
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + html_src);
    scanner.Scan(html_src);
    const std::unique_ptr<html::HtmlNode> dom = html::ParseHtml(html_src);
    ASSERT_EQ(scanner.text(), html::ExtractText(*dom));
    const auto dom_tables = html::ExtractDictionaryTables(*dom);
    ASSERT_EQ(scanner.tables().size(), dom_tables.size());
    for (size_t i = 0; i < dom_tables.size(); ++i) {
      ASSERT_EQ(scanner.tables()[i].entries, dom_tables[i].entries);
    }
  }
}

// ---------------------------------------------------------------------------
// FusedSegmenter vs. the modular pipeline.

std::vector<std::string> JaLexicon() {
  return {"光学ズーム", "手ぶれ補正", "画素", "防水", "ズーム"};
}

text::PosLexicon TestPosLexicon() {
  text::PosLexicon lexicon;
  lexicon.word_tags = {{"万", "UNIT"}, {"mm", "UNIT"}, {"倍", "UNIT"},
                       {"の", "PRT"},  {"kg", "UNIT"}};
  return lexicon;
}

/// The exact per-page loop of ProcessCorpus (core/document.cc) that the
/// fused segmenter replaces.
std::vector<text::LabeledSequence> ModularSegment(
    text::Language lang, const std::vector<std::string>& lexicon,
    const text::PosLexicon& pos_lexicon, std::string_view page_text) {
  const std::unique_ptr<text::Tokenizer> tokenizer =
      text::MakeTokenizer(lang, lexicon);
  const text::PosTagger tagger(lang, pos_lexicon);
  std::vector<text::LabeledSequence> out;
  int sentence_index = 0;
  for (const std::string& sentence : text::SplitSentences(page_text)) {
    text::LabeledSequence seq;
    seq.tokens = tokenizer->Tokenize(sentence);
    if (seq.tokens.empty()) continue;
    seq.pos = tagger.Tag(seq.tokens);
    seq.sentence_index = sentence_index++;
    out.push_back(std::move(seq));
  }
  return out;
}

void ExpectSequencesEqual(const std::vector<text::LabeledSequence>& fused,
                          const std::vector<text::LabeledSequence>& modular) {
  ASSERT_EQ(fused.size(), modular.size());
  for (size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i].tokens, modular[i].tokens) << "sentence " << i;
    EXPECT_EQ(fused[i].pos, modular[i].pos) << "sentence " << i;
    EXPECT_EQ(fused[i].sentence_index, modular[i].sentence_index)
        << "sentence " << i;
  }
}

void ExpectFusedMatchesModular(text::Language lang,
                               const std::vector<std::string>& lexicon,
                               const text::PosLexicon& pos_lexicon,
                               const std::string& page_text) {
  const text::FusedSegmenter segmenter(lang, lexicon, pos_lexicon);
  text::FusedSegmenter::Scratch scratch;
  const std::vector<text::LabeledSequence> modular =
      ModularSegment(lang, lexicon, pos_lexicon, page_text);

  // First pass exercises the decode path, second the memo-hit path; both
  // must match the modular pipeline exactly.
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE("pass " + std::to_string(pass));
    std::vector<text::LabeledSequence> fused;
    segmenter.Segment(page_text, &fused, &scratch);
    ExpectSequencesEqual(fused, modular);
  }
}

TEST(FusedSegmenterTest, HandcraftedJapanese) {
  const std::vector<std::string> cases = {
      "",
      "光学ズーム10倍。手ぶれ補正つき。",
      // '.' between digits does not split; elsewhere it does.
      "重さ1.5kg。価格は10.000円",
      "バージョン2.betaです。",
      "末尾が数字で終わる1.",
      ".先頭ピリオド",
      // Every boundary marker, including fullwidth.
      "あ。い!う?え！お？か\nき",
      // Fullwidth digits around '.' (IsDigitCp covers FF10-FF19).
      "値は１.５です",
      // Whitespace-only and empty sentences are dropped without
      // consuming a sentence_index.
      "  \n  。。  実文です。 \n ",
      // Lexicon longest-match vs single-char fallback.
      "光学ズームと光学と補正",
      // Latin/katakana/digit runs inside CJK text.
      "SONYカメラABC123で2,000万画素",
      // Invalid UTF-8: stray continuation, truncated lead, 0xFF.
      std::string("正\x80常。") + "\xE3\x81" + "。末尾\xFF",
      std::string("\xC3") /* truncated at end of page */,
      // A sentence whose only content is invalid bytes.
      std::string("\x80\x80。ほげ。"),
  };
  for (const std::string& page : cases) {
    SCOPED_TRACE(page);
    ExpectFusedMatchesModular(text::Language::kJa, JaLexicon(),
                              TestPosLexicon(), page);
  }
}

TEST(FusedSegmenterTest, HandcraftedGerman) {
  text::PosLexicon pos_lexicon;
  pos_lexicon.word_tags = {{"mm", "UNIT"}, {"kg", "UNIT"}, {"Watt", "UNIT"}};
  const std::vector<std::string> cases = {
      "",
      "Die Maschine hat 15 bar Druck. Sie wiegt 4,5 kg.",
      // Decimal points and thousands separators stay inside numbers.
      "Preis 1.299 Euro. Fassungsvermögen 1,8 Liter!",
      "Ende ohne Punkt",
      "Satz eins.Satz zwei?Satz drei",
      "Umlaute: Kaffeemaschine für Espresso übergroß.",
      std::string("kaputt\xC0\xC0 bytes. Noch ein Satz."),
  };
  for (const std::string& page : cases) {
    SCOPED_TRACE(page);
    ExpectFusedMatchesModular(text::Language::kDe, {}, pos_lexicon, page);
  }
}

/// Random page-text generator biased toward the segmenter's tricky
/// spots: boundary chars next to digits, lexicon prefixes, fullwidth
/// digits, and (optionally) invalid byte sequences.
std::string RandomPageText(Rng* rng, text::Language lang,
                           bool allow_invalid) {
  static const std::vector<std::string> kJaPieces = {
      "光学ズーム", "光学",  "ズーム", "手ぶれ補正", "補正",   "画素",
      "の",         "です",  "カメラ", "ソニー",     "10",     "2,000",
      "1.5",        "１５",  "。",     ".",          "!",      "？",
      "\n",         " ",     "、",     "万",         "倍",     "mm",
      "ABC",        "x",
  };
  static const std::vector<std::string> kDePieces = {
      "Kaffee", "Maschine", "mit",  "und",  "1.299", "4,5", "15",
      "bar",    "kg",       "Watt", ".",    "!",     "?",   "\n",
      " ",      "für",      "groß", "XL",   ",",     "-",
  };
  static const std::vector<std::string> kInvalid = {
      "\x80", "\xC3", "\xE3\x81", "\xF0\x9F", "\xFF", "\xED\xA0\x80",
  };
  const auto& pieces =
      lang == text::Language::kJa ? kJaPieces : kDePieces;
  std::string out;
  const int n = static_cast<int>(rng->NextInt(0, 40));
  for (int i = 0; i < n; ++i) {
    if (allow_invalid && rng->Bernoulli(0.06)) {
      out += kInvalid[static_cast<size_t>(
          rng->NextInt(0, static_cast<int64_t>(kInvalid.size()) - 1))];
    } else {
      out += pieces[static_cast<size_t>(
          rng->NextInt(0, static_cast<int64_t>(pieces.size()) - 1))];
    }
  }
  return out;
}

TEST(FusedSegmenterTest, RandomizedDifferentialBothLanguages) {
  for (const text::Language lang :
       {text::Language::kJa, text::Language::kDe}) {
    SCOPED_TRACE(text::LanguageName(lang));
    const std::vector<std::string> lexicon =
        lang == text::Language::kJa ? JaLexicon()
                                    : std::vector<std::string>{};
    const text::PosLexicon pos_lexicon = TestPosLexicon();
    const text::FusedSegmenter segmenter(lang, lexicon, pos_lexicon);
    // One scratch across all iterations: repeated random pieces land in
    // the sentence memo, so later iterations mix hit and miss paths.
    text::FusedSegmenter::Scratch scratch;
    Rng rng(lang == text::Language::kJa ? 111 : 222);
    for (int iter = 0; iter < 300; ++iter) {
      const bool allow_invalid = iter % 3 == 0;
      const std::string page = RandomPageText(&rng, lang, allow_invalid);
      SCOPED_TRACE("iter " + std::to_string(iter) + ": " + page);
      std::vector<text::LabeledSequence> fused;
      segmenter.Segment(page, &fused, &scratch);
      ExpectSequencesEqual(
          fused, ModularSegment(lang, lexicon, pos_lexicon, page));
    }
  }
}

TEST(FusedSegmenterTest, EntryCookiesPersistAcrossSegments) {
  const text::FusedSegmenter segmenter(text::Language::kJa, JaLexicon(),
                                       TestPosLexicon());
  text::FusedSegmenter::Scratch scratch;
  const std::string page = "光学ズーム10倍。手ぶれ補正つき。";

  std::vector<text::LabeledSequence> out;
  std::vector<text::FusedSegmenter::CacheEntry*> entries;
  segmenter.Segment(page, &out, &scratch, &entries);
  ASSERT_EQ(entries.size(), out.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    ASSERT_NE(entries[i], nullptr);
    entries[i]->cookie_generation = 7;
    entries[i]->cookie = {static_cast<uint64_t>(i), 42};
  }

  // A second segmentation of the same page must hand back the same
  // entries with the caller's cookies intact (this is what lets
  // core/ingest skip interning on repeated sentences).
  std::vector<text::LabeledSequence> out2;
  std::vector<text::FusedSegmenter::CacheEntry*> entries2;
  segmenter.Segment(page, &out2, &scratch, &entries2);
  ASSERT_EQ(entries2.size(), entries.size());
  for (size_t i = 0; i < entries2.size(); ++i) {
    EXPECT_EQ(entries2[i], entries[i]);
    EXPECT_EQ(entries2[i]->cookie_generation, 7u);
    EXPECT_EQ(entries2[i]->cookie,
              (std::vector<uint64_t>{static_cast<uint64_t>(i), 42}));
  }
}

TEST(FusedSegmenterTest, MemoGrowthKeepsEntryPointersValid) {
  // Push the sentence memo through several growth doublings (initial
  // capacity is 1024 slots) and verify early entry pointers still hold
  // their cookies — FindOrInsert hands out heap pointers precisely so
  // growth cannot invalidate them.
  // The segmenter keeps a reference to the PoS lexicon, so it must
  // outlive the segmenter — a temporary here would dangle.
  const text::PosLexicon pos_lexicon;
  const text::FusedSegmenter segmenter(text::Language::kDe, {}, pos_lexicon);
  text::FusedSegmenter::Scratch scratch;

  std::vector<text::LabeledSequence> out;
  std::vector<text::FusedSegmenter::CacheEntry*> first;
  segmenter.Segment("sentinel sentence zero.", &out, &scratch, &first);
  ASSERT_EQ(first.size(), 1u);
  ASSERT_NE(first[0], nullptr);
  first[0]->cookie_generation = 99;

  for (int i = 0; i < 3000; ++i) {
    out.clear();
    segmenter.Segment("filler nummer " + std::to_string(i) + ".", &out,
                      &scratch);
  }

  out.clear();
  std::vector<text::FusedSegmenter::CacheEntry*> again;
  segmenter.Segment("sentinel sentence zero.", &out, &scratch, &again);
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again[0], first[0]);
  EXPECT_EQ(again[0]->cookie_generation, 99u);
}

}  // namespace
}  // namespace pae
