// Golden tests for the allocation-free CRF feature pipeline: the
// string-materializing `ExtractFeatures` is the reference the
// `FeatureEncoder` / interner / `CompiledCorpus` fast paths are held to.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "crf/compiled_corpus.h"
#include "crf/crf_model.h"
#include "crf/crf_tagger.h"
#include "crf/feature_extractor.h"
#include "text/labeled_sequence.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pae::crf {
namespace {

text::LabeledSequence MakeSeq(std::vector<std::string> tokens,
                              std::vector<std::string> pos,
                              int sentence_index) {
  text::LabeledSequence seq;
  seq.tokens = std::move(tokens);
  seq.pos = std::move(pos);
  seq.sentence_index = sentence_index;
  return seq;
}

std::vector<text::LabeledSequence> MakeCorpus(int sentences, uint64_t seed) {
  // Mixed-script tokens so the byte-equality checks cover multi-byte
  // UTF-8 through every path.
  const std::vector<std::string> words = {"重量", "は",  "kg", "サイズ",
                                          "blue", "5",  "10", "です",
                                          "色",   "cm"};
  const std::vector<std::string> tags = {"NN", "PRT", "UNIT", "NUM", "ADJ"};
  Rng rng(seed);
  std::vector<text::LabeledSequence> corpus;
  for (int i = 0; i < sentences; ++i) {
    text::LabeledSequence seq;
    const int len = rng.NextInt(1, 9);
    for (int t = 0; t < len; ++t) {
      seq.tokens.push_back(words[rng.NextBounded(words.size())]);
      seq.pos.push_back(tags[rng.NextBounded(tags.size())]);
    }
    seq.sentence_index = rng.NextInt(0, 12);
    corpus.push_back(std::move(seq));
  }
  return corpus;
}

std::vector<text::LabeledSequence> MakeTrainingSet(int sentences) {
  Rng rng(3);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < sentences; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"重量", "は", v, "kg", "です"};
    seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
    seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
    seq.sentence_index = rng.NextInt(0, 4);
    data.push_back(std::move(seq));
  }
  return data;
}

// ---------------- encoder vs reference extraction ----------------

void ExpectEncoderMatchesReference(const text::LabeledSequence& seq,
                                   const FeatureConfig& config,
                                   FeatureEncoder* encoder) {
  std::vector<std::vector<std::string>> reference;
  ExtractFeatures(seq, config, &reference);
  std::vector<std::vector<std::string>> encoded(seq.tokens.size());
  encoder->Reset(config);
  encoder->Encode(seq, [&](size_t t, std::string_view feature) {
    encoded[t].emplace_back(feature);
  });
  ASSERT_EQ(encoded.size(), reference.size());
  for (size_t t = 0; t < reference.size(); ++t) {
    EXPECT_EQ(encoded[t], reference[t]) << "position " << t;
  }
}

TEST(FeaturePipelineTest, EncoderMatchesReferenceByteForByte) {
  FeatureEncoder encoder;
  for (int window : {1, 2, 3}) {
    FeatureConfig config;
    config.window = window;
    for (const auto& seq : MakeCorpus(50, 17)) {
      ExpectEncoderMatchesReference(seq, config, &encoder);
    }
  }
}

TEST(FeaturePipelineTest, EncoderMatchesReferenceOnEdgeCases) {
  FeatureEncoder encoder;
  FeatureConfig config;
  // Single-token sentence: the whole window is boundary padding.
  ExpectEncoderMatchesReference(MakeSeq({"一"}, {"NN"}, 0), config, &encoder);
  // Sentence index beyond the bucket cap.
  ExpectEncoderMatchesReference(MakeSeq({"a", "b"}, {"X", "Y"}, 99), config,
                                &encoder);
  // Empty sequence emits nothing.
  text::LabeledSequence empty;
  std::vector<std::vector<std::string>> reference;
  ExtractFeatures(empty, config, &reference);
  EXPECT_TRUE(reference.empty());
  int emitted = 0;
  encoder.Reset(config);
  encoder.Encode(empty, [&](size_t, std::string_view) { ++emitted; });
  EXPECT_EQ(emitted, 0);
}

TEST(FeaturePipelineTest, EncoderSurvivesConfigSwitches) {
  // One (thread_local) encoder serves taggers with different windows;
  // Reset must fully re-seat the prefix tables each time.
  FeatureEncoder encoder;
  const auto corpus = MakeCorpus(10, 29);
  for (int round = 0; round < 3; ++round) {
    for (int window : {3, 1, 2}) {
      FeatureConfig config;
      config.window = window;
      for (const auto& seq : corpus) {
        ExpectEncoderMatchesReference(seq, config, &encoder);
      }
    }
  }
}

// ---------------- interned pipeline vs string pipeline ----------------

/// The pre-interner training pipeline, reimplemented as the golden
/// reference: two string extraction passes, unordered_map counting, and
/// first-occurrence feature ids, followed by the same sharded AdaGrad
/// loop the tagger runs. Kept deliberately naive.
void TrainReferenceStringPipeline(
    const std::vector<text::LabeledSequence>& data, const CrfOptions& options,
    CrfModel* model, std::vector<double>* weights) {
  model->AddLabel("O");
  std::unordered_map<std::string, int> counts;
  std::vector<std::string> first_seen;
  for (const auto& seq : data) {
    for (const std::string& label : seq.labels) model->AddLabel(label);
    std::vector<std::vector<std::string>> feats;
    ExtractFeatures(seq, options.features, &feats);
    for (const auto& position : feats) {
      for (const std::string& f : position) {
        if (++counts[f] == 1) first_seen.push_back(f);
      }
    }
  }
  for (const std::string& f : first_seen) {
    if (counts[f] >= options.min_feature_count) model->AddFeature(f);
  }
  std::vector<CompiledSequence> compiled;
  for (const auto& seq : data) {
    CompiledSequence cs;
    std::vector<std::vector<std::string>> feats;
    ExtractFeatures(seq, options.features, &feats);
    cs.features.resize(feats.size());
    for (size_t t = 0; t < feats.size(); ++t) {
      for (const std::string& f : feats[t]) {
        int id = model->LookupFeature(f);
        if (id >= 0) cs.features[t].push_back(id);
      }
    }
    for (const std::string& label : seq.labels) {
      cs.labels.push_back(model->AddLabel(label));
    }
    compiled.push_back(std::move(cs));
  }

  const size_t dim = model->WeightDim();
  weights->assign(dim, 0.0);
  // Mirror the tagger's gradient reduction structure (grain 4, max 32
  // shards, serial order) so floating-point summation trees line up.
  util::ThreadPool pool(1);
  auto objective = [&](const std::vector<double>& w,
                       std::vector<double>* grad) {
    grad->assign(dim, 0.0);
    double nll = 0;
    std::vector<std::vector<double>> shard_grads(
        util::NumReductionShards(compiled.size(), 4, 32));
    std::vector<double> shard_nll(shard_grads.size(), 0.0);
    util::OrderedReduce<size_t>(
        pool, compiled.size(), 4, 32,
        [&, next = size_t{0}]() mutable { return next++; },
        [&](size_t shard, size_t i) {
          if (shard_grads[shard].empty()) shard_grads[shard].assign(dim, 0.0);
          shard_nll[shard] += model->SequenceNll(compiled[i], w,
                                                 &shard_grads[shard]);
        },
        [&](size_t shard, size_t) {
          nll += shard_nll[shard];
          for (size_t i = 0; i < dim; ++i) (*grad)[i] += shard_grads[shard][i];
        });
    if (options.c2 > 0) {
      double reg = 0;
      for (size_t i = 0; i < dim; ++i) {
        reg += w[i] * w[i];
        (*grad)[i] += 2.0 * options.c2 * w[i];
      }
      nll += options.c2 * reg;
    }
    return nll;
  };
  std::vector<double> grad(dim, 0.0);
  std::vector<double> accum(dim, 1e-8);
  double previous = objective(*weights, &grad);
  for (int epoch = 0; epoch < options.max_iterations; ++epoch) {
    for (size_t i = 0; i < dim; ++i) {
      accum[i] += grad[i] * grad[i];
      (*weights)[i] -=
          options.adagrad_learning_rate * grad[i] / std::sqrt(accum[i]);
    }
    const double current = objective(*weights, &grad);
    if (std::fabs(previous - current) <
        options.epsilon * std::max(1.0, std::fabs(current))) {
      break;
    }
    previous = current;
  }
}

TEST(FeaturePipelineTest, InternedPipelineMatchesStringPipeline) {
  const auto data = MakeTrainingSet(80);
  CrfOptions options;
  options.trainer = CrfTrainer::kAdagrad;
  options.max_iterations = 15;
  options.threads = 1;

  CrfModel reference_model;
  std::vector<double> reference_weights;
  TrainReferenceStringPipeline(data, options, &reference_model,
                               &reference_weights);

  CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(data).ok());

  // Same dictionary (both assign first-occurrence ids over the same
  // extraction order, so this is exact, not just set-equal)…
  ASSERT_EQ(tagger.model().num_features(), reference_model.num_features());
  for (size_t f = 0; f < reference_model.num_features(); ++f) {
    EXPECT_EQ(tagger.model().FeatureName(static_cast<int>(f)),
              reference_model.FeatureName(static_cast<int>(f)));
  }
  ASSERT_EQ(tagger.model().labels(), reference_model.labels());
  // …and byte-identical trained weights: identical dictionaries mean
  // identical compiled sequences, and the sparse shard merge adds the
  // same partial sums in the same order the dense reference does.
  ASSERT_EQ(tagger.weights().size(), reference_weights.size());
  EXPECT_EQ(0, std::memcmp(tagger.weights().data(), reference_weights.data(),
                           reference_weights.size() * sizeof(double)));
  // Predictions agree exactly on fresh sentences.
  for (const auto& seq : MakeTrainingSet(20)) {
    text::LabeledSequence unlabeled = seq;
    unlabeled.labels.clear();
    std::vector<std::vector<std::string>> feats;
    ExtractFeatures(unlabeled, options.features, &feats);
    CompiledSequence cs;
    cs.features.resize(feats.size());
    for (size_t t = 0; t < feats.size(); ++t) {
      for (const std::string& f : feats[t]) {
        int id = reference_model.LookupFeature(f);
        if (id >= 0) cs.features[t].push_back(id);
      }
    }
    std::vector<int> reference_path =
        reference_model.Viterbi(cs, reference_weights);
    std::vector<std::string> predicted = tagger.Predict(unlabeled);
    ASSERT_EQ(predicted.size(), reference_path.size());
    for (size_t t = 0; t < predicted.size(); ++t) {
      EXPECT_EQ(predicted[t], reference_model.LabelName(reference_path[t]));
    }
  }
}

TEST(FeaturePipelineTest, TrainedWeightsByteIdenticalAcrossThreads) {
  const auto data = MakeTrainingSet(120);
  std::vector<std::vector<double>> weights_by_threads;
  for (int threads : {1, 2, 8}) {
    CrfOptions options;
    options.max_iterations = 20;
    options.threads = threads;
    CrfTagger tagger(options);
    ASSERT_TRUE(tagger.Train(data).ok());
    weights_by_threads.push_back(tagger.weights());
  }
  for (size_t i = 1; i < weights_by_threads.size(); ++i) {
    ASSERT_EQ(weights_by_threads[0].size(), weights_by_threads[i].size());
    EXPECT_EQ(0, std::memcmp(weights_by_threads[0].data(),
                             weights_by_threads[i].data(),
                             weights_by_threads[0].size() * sizeof(double)))
        << "threads arm " << i;
  }
}

// ---------------- compiled-corpus cache ----------------

TEST(FeaturePipelineTest, CachedPredictionMatchesDirectByteForByte) {
  const auto data = MakeTrainingSet(80);
  CrfOptions options;
  options.max_iterations = 20;
  CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(data).ok());

  auto corpus = MakeCorpus(60, 41);
  std::vector<const text::LabeledSequence*> refs;
  for (const auto& seq : corpus) refs.push_back(&seq);
  CompiledCorpus cache;
  cache.Build(refs, tagger.options().features);
  ASSERT_EQ(cache.size(), corpus.size());
  cache.Bind(tagger.model(), tagger.Generation());

  CompiledSequence compiled;
  for (size_t i = 0; i < corpus.size(); ++i) {
    cache.Materialize(i, &compiled);
    const auto cached = tagger.PredictScored(compiled);
    const auto direct = tagger.PredictScored(corpus[i]);
    ASSERT_EQ(cached.labels, direct.labels) << "sentence " << i;
    ASSERT_EQ(cached.confidence.size(), direct.confidence.size());
    EXPECT_EQ(0, std::memcmp(cached.confidence.data(),
                             direct.confidence.data(),
                             direct.confidence.size() * sizeof(double)))
        << "sentence " << i;
  }
}

TEST(FeaturePipelineTest, CacheRebindsAcrossGenerations) {
  auto corpus = MakeCorpus(40, 53);
  std::vector<const text::LabeledSequence*> refs;
  for (const auto& seq : corpus) refs.push_back(&seq);

  CrfOptions options;
  options.max_iterations = 12;
  CrfTagger tagger(options);
  CompiledCorpus cache;
  cache.Build(refs, options.features);

  // Retrain the same tagger on different data between sweeps — the
  // bootstrap's exact pattern. The cache must follow each generation's
  // feature dictionary.
  uint64_t last_generation = tagger.Generation();
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(tagger.Train(MakeTrainingSet(40 + 20 * round)).ok());
    EXPECT_GT(tagger.Generation(), last_generation);
    last_generation = tagger.Generation();
    cache.Bind(tagger.model(), tagger.Generation());
    CompiledSequence compiled;
    for (size_t i = 0; i < corpus.size(); ++i) {
      cache.Materialize(i, &compiled);
      const auto cached = tagger.PredictScored(compiled);
      const auto direct = tagger.PredictScored(corpus[i]);
      EXPECT_EQ(cached.labels, direct.labels)
          << "round " << round << " sentence " << i;
    }
  }
}

TEST(FeaturePipelineTest, CachedPredictionsIdenticalAcrossThreadCounts) {
  const auto data = MakeTrainingSet(60);
  CrfOptions options;
  options.max_iterations = 15;
  CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(data).ok());

  auto corpus = MakeCorpus(80, 71);
  std::vector<const text::LabeledSequence*> refs;
  for (const auto& seq : corpus) refs.push_back(&seq);
  CompiledCorpus cache;
  cache.Build(refs, tagger.options().features);
  cache.Bind(tagger.model(), tagger.Generation());

  auto sweep = [&](int threads) {
    std::vector<std::vector<std::string>> labels(corpus.size());
    util::ThreadPool pool(threads);
    pool.ParallelFor(0, corpus.size(), 8, [&](size_t i) {
      thread_local CompiledSequence compiled;
      cache.Materialize(i, &compiled);
      labels[i] = tagger.PredictScored(compiled).labels;
    });
    return labels;
  };
  const auto serial = sweep(1);
  for (int threads : {2, 8}) {
    EXPECT_EQ(sweep(threads), serial) << "threads " << threads;
  }
}

TEST(FeaturePipelineTest, CompactedModelKeepsCachedPredictions) {
  const auto data = MakeTrainingSet(80);
  CrfOptions options;  // OWL-QN default: L1 produces all-zero columns
  options.max_iterations = 30;
  CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(data).ok());

  auto corpus = MakeCorpus(30, 83);
  std::vector<const text::LabeledSequence*> refs;
  for (const auto& seq : corpus) refs.push_back(&seq);
  CompiledCorpus cache;
  cache.Build(refs, tagger.options().features);
  cache.Bind(tagger.model(), tagger.Generation());

  std::vector<std::vector<std::string>> before(corpus.size());
  CompiledSequence compiled;
  for (size_t i = 0; i < corpus.size(); ++i) {
    cache.Materialize(i, &compiled);
    before[i] = tagger.PredictScored(compiled).labels;
  }

  const uint64_t generation_before = tagger.Generation();
  const size_t removed = tagger.Compact();
  if (removed > 0) {
    EXPECT_GT(tagger.Generation(), generation_before);
  }
  cache.Bind(tagger.model(), tagger.Generation());
  for (size_t i = 0; i < corpus.size(); ++i) {
    cache.Materialize(i, &compiled);
    EXPECT_EQ(tagger.PredictScored(compiled).labels, before[i])
        << "sentence " << i;
  }
}

}  // namespace
}  // namespace pae::crf
