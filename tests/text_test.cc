#include <gtest/gtest.h>

#include "text/char_class.h"
#include "text/labeled_sequence.h"
#include "text/negation.h"
#include "text/pos_tagger.h"
#include "text/sentence.h"
#include "text/tokenizer.h"
#include "text/utf8.h"
#include "text/vocab.h"
#include "util/rng.h"
#include "util/strings.h"

namespace pae::text {
namespace {

// ---------------- UTF-8 ----------------

TEST(Utf8Test, AsciiRoundTrip) {
  const std::string s = "hello 123!";
  EXPECT_EQ(EncodeUtf8(DecodeUtf8(s)), s);
  EXPECT_EQ(Utf8Length(s), s.size());
}

TEST(Utf8Test, MultibyteRoundTrip) {
  const std::string s = "重量は2.5kgです。";
  EXPECT_EQ(EncodeUtf8(DecodeUtf8(s)), s);
  EXPECT_EQ(Utf8Length("重量"), 2u);
}

TEST(Utf8Test, FourByteCodepoint) {
  const std::string s = EncodeUtf8(static_cast<char32_t>(0x1F600));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(DecodeUtf8(s)[0], static_cast<char32_t>(0x1F600));
}

TEST(Utf8Test, InvalidBytesBecomeReplacement) {
  std::string bad = "a";
  bad.push_back(static_cast<char>(0xFF));
  bad.push_back('b');
  std::vector<char32_t> cps = DecodeUtf8(bad);
  ASSERT_EQ(cps.size(), 3u);
  EXPECT_EQ(cps[1], kReplacementChar);
}

TEST(Utf8Test, TruncatedSequenceIsReplacement) {
  std::string truncated = EncodeUtf8(static_cast<char32_t>(0x91CF));
  truncated.pop_back();
  std::vector<char32_t> cps = DecodeUtf8(truncated);
  EXPECT_EQ(cps[0], kReplacementChar);
}

TEST(Utf8Test, OverlongEncodingRejected) {
  // 0xC0 0xAF is an overlong encoding of '/'.
  std::string overlong = "\xC0\xAF";
  std::vector<char32_t> cps = DecodeUtf8(overlong);
  EXPECT_EQ(cps[0], kReplacementChar);
}

TEST(Utf8Test, SurrogatesRejectedOnEncode) {
  EXPECT_EQ(EncodeUtf8(static_cast<char32_t>(0xD800)),
            EncodeUtf8(kReplacementChar));
}

// Property: round-trip of random valid code points.
class Utf8RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(Utf8RoundTripTest, RandomCodepointsRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<char32_t> cps;
  for (int i = 0; i < 64; ++i) {
    char32_t cp;
    do {
      cp = static_cast<char32_t>(rng.NextBounded(0x10FFFF) + 1);
    } while (cp >= 0xD800 && cp <= 0xDFFF);
    cps.push_back(cp);
  }
  EXPECT_EQ(DecodeUtf8(EncodeUtf8(cps)), cps);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Utf8RoundTripTest, ::testing::Range(0, 8));

// ---------------- char classes ----------------

TEST(CharClassTest, Classification) {
  EXPECT_EQ(ClassifyChar(U'7'), CharClass::kDigit);
  EXPECT_EQ(ClassifyChar(U'a'), CharClass::kLatin);
  EXPECT_EQ(ClassifyChar(U'ü'), CharClass::kLatin);
  EXPECT_EQ(ClassifyChar(U'の'), CharClass::kHiragana);
  EXPECT_EQ(ClassifyChar(U'カ'), CharClass::kKatakana);
  EXPECT_EQ(ClassifyChar(U'重'), CharClass::kCjk);
  EXPECT_EQ(ClassifyChar(U'.'), CharClass::kSymbol);
  EXPECT_EQ(ClassifyChar(U' '), CharClass::kSpace);
  EXPECT_EQ(ClassifyChar(static_cast<char32_t>(0x3000)), CharClass::kSpace);
  EXPECT_EQ(ClassifyChar(static_cast<char32_t>(0x3002)),
            CharClass::kSymbol);  // 。
}

// ---------------- Latin tokenizer ----------------

TEST(LatinTokenizerTest, SplitsOnWhitespaceAndPunct) {
  LatinTokenizer tok;
  EXPECT_EQ(tok.Tokenize("Der Gewicht: 5 kg."),
            (std::vector<std::string>{"Der", "Gewicht", ":", "5", "kg",
                                      "."}));
}

TEST(LatinTokenizerTest, KeepsDecimalCommaInsideNumbers) {
  LatinTokenizer tok;
  EXPECT_EQ(tok.Tokenize("2,5 kg und 1.299 Watt"),
            (std::vector<std::string>{"2,5", "kg", "und", "1.299", "Watt"}));
}

TEST(LatinTokenizerTest, TrailingSeparatorIsNotPartOfNumber) {
  LatinTokenizer tok;
  EXPECT_EQ(tok.Tokenize("5, und"),
            (std::vector<std::string>{"5", ",", "und"}));
}

TEST(LatinTokenizerTest, EmptyInput) {
  LatinTokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("   ").empty());
}

// ---------------- CJK tokenizer ----------------

TEST(CjkTokenizerTest, DecimalSplitsIntoThreeTokens) {
  // §V-A footnote 3: the Japanese tokenizer splits 1.5 into 3 tokens.
  CjkTokenizer tok({});
  EXPECT_EQ(tok.Tokenize("1.5kg"),
            (std::vector<std::string>{"1", ".", "5", "kg"}));
}

TEST(CjkTokenizerTest, ThousandsSeparatorSplits) {
  CjkTokenizer tok({});
  EXPECT_EQ(tok.Tokenize("2,430万画素"),
            (std::vector<std::string>{"2", ",", "430", "万", "画", "素"}));
}

TEST(CjkTokenizerTest, LexiconLongestMatch) {
  CjkTokenizer tok({"重量", "万画素"});
  EXPECT_EQ(tok.Tokenize("重量2430万画素"),
            (std::vector<std::string>{"重量", "2430", "万画素"}));
}

TEST(CjkTokenizerTest, KatakanaRunIsOneToken) {
  CjkTokenizer tok({});
  EXPECT_EQ(tok.Tokenize("カラーはブラック"),
            (std::vector<std::string>{"カラー", "は", "ブラック"}));
}

TEST(CjkTokenizerTest, LatinRunInsideCjkText) {
  CjkTokenizer tok({"重量"});
  EXPECT_EQ(tok.Tokenize("重量5kgです"),
            (std::vector<std::string>{"重量", "5", "kg", "で", "す"}));
}

TEST(CjkTokenizerTest, LexiconSegmentsHiragana) {
  CjkTokenizer tok({"です"});
  EXPECT_EQ(tok.Tokenize("ですです"),
            (std::vector<std::string>{"です", "です"}));
}

TEST(CjkTokenizerTest, GreedyPrefersLongestWord) {
  CjkTokenizer tok({"最大", "最大積載重量", "重量"});
  EXPECT_EQ(tok.Tokenize("最大積載重量"),
            (std::vector<std::string>{"最大積載重量"}));
}

TEST(CjkTokenizerTest, DropsAllWhitespace) {
  CjkTokenizer tok({});
  EXPECT_EQ(tok.Tokenize(" a　b "),
            (std::vector<std::string>{"a", "b"}));
}

// Property: concatenating CJK tokens reproduces the input minus spaces.
class CjkTokenizerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CjkTokenizerPropertyTest, TokensConcatenateToInput) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  CjkTokenizer tok({"重量", "です", "カラー"});
  const std::vector<std::string> pieces = {"重量", "です",  "カラー", "5",
                                           ".",    "kg",    "。",     "ブラック",
                                           "は",   "2430", "万"};
  std::string input;
  for (int i = 0; i < 30; ++i) input += pieces[rng.NextBounded(pieces.size())];
  std::string reassembled = StrJoin(tok.Tokenize(input), "");
  EXPECT_EQ(reassembled, input);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CjkTokenizerPropertyTest,
                         ::testing::Range(0, 10));

TEST(TokenizerFactoryTest, SelectsByLanguage) {
  auto ja = MakeTokenizer(Language::kJa, {"重量"});
  auto de = MakeTokenizer(Language::kDe, {});
  EXPECT_EQ(ja->Tokenize("重量5kg").size(), 3u);
  EXPECT_EQ(de->Tokenize("Gewicht 5 kg").size(), 3u);
}

// ---------------- PoS tagger ----------------

TEST(PosTaggerTest, LexiconWins) {
  PosLexicon lex;
  lex.word_tags["kg"] = std::string(kPosUnit);
  PosTagger tagger(Language::kJa, lex);
  EXPECT_EQ(tagger.TagToken("kg"), kPosUnit);
}

TEST(PosTaggerTest, FallbackRules) {
  PosTagger tagger(Language::kJa, {});
  EXPECT_EQ(tagger.TagToken("123"), kPosNumber);
  EXPECT_EQ(tagger.TagToken("2,5"), kPosNumber);
  EXPECT_EQ(tagger.TagToken("."), kPosSymbol);
  EXPECT_EQ(tagger.TagToken("の"), kPosParticle);
  EXPECT_EQ(tagger.TagToken("カラー"), kPosNoun);
  EXPECT_EQ(tagger.TagToken("重量"), kPosNoun);
  EXPECT_EQ(tagger.TagToken("Gewicht"), kPosNoun);
}

TEST(PosTaggerTest, TagsWholeSequence) {
  PosTagger tagger(Language::kJa, {});
  std::vector<std::string> tags =
      tagger.Tag({"重量", "は", "5", "kg", "です"});
  EXPECT_EQ(tags, (std::vector<std::string>{"NN", "PRT", "NUM", "NN",
                                            "PRT"}));
}

// ---------------- sentence splitting ----------------

TEST(SentenceTest, SplitsOnJapanesePeriod) {
  auto s = SplitSentences("重量は5kgです。カラーはブラックです。");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "重量は5kgです。");
}

TEST(SentenceTest, DecimalPointDoesNotSplit) {
  auto s = SplitSentences("Das Gewicht ist 2.5 kg. Danke.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "Das Gewicht ist 2.5 kg.");
}

TEST(SentenceTest, NewlinesSplit) {
  auto s = SplitSentences("line one\nline two\n\n");
  ASSERT_EQ(s.size(), 2u);
}

TEST(SentenceTest, EmptyInput) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences(" \n ").empty());
}

// ---------------- vocab ----------------

TEST(VocabTest, UnkIsIdZero) {
  Vocab v;
  EXPECT_EQ(v.Lookup("missing"), Vocab::kUnkId);
  EXPECT_EQ(v.Word(Vocab::kUnkId), "<unk>");
}

TEST(VocabTest, GetOrAddStable) {
  Vocab v;
  int32_t a = v.GetOrAdd("x");
  int32_t b = v.GetOrAdd("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(v.Lookup("x"), a);
  EXPECT_EQ(v.Word(a), "x");
  EXPECT_EQ(v.size(), 2u);
}

TEST(VocabTest, HeterogeneousStringViewLookup) {
  Vocab v;
  const int32_t id = v.GetOrAdd(std::string_view("重量"));
  // A view sliced out of unrelated storage resolves without ever
  // materializing a std::string.
  const char buffer[] = "xx重量yy";
  const std::string_view slice(buffer + 2, 6);  // the 2 UTF-8 code points
  EXPECT_EQ(v.Lookup(slice), id);
  EXPECT_TRUE(v.Contains(slice));
  EXPECT_FALSE(v.Contains(std::string_view(buffer + 2, 3)));
  EXPECT_EQ(v.Lookup("absent"), Vocab::kUnkId);
  EXPECT_EQ(v.Word(id), "重量");
}

TEST(VocabTest, WordViewsStableAcrossGrowth) {
  Vocab v;
  const std::string_view early = v.Word(v.GetOrAdd("anchor"));
  for (int i = 0; i < 5000; ++i) v.GetOrAdd("w" + std::to_string(i));
  EXPECT_EQ(early, "anchor");  // interner arena never reallocates keys
  EXPECT_EQ(v.Lookup(early), 1);
}

// ---------------- BIO machinery ----------------

TEST(BioTest, ParseLabels) {
  std::string attr;
  bool begin = false;
  EXPECT_TRUE(ParseBioLabel("B-色", &attr, &begin));
  EXPECT_EQ(attr, "色");
  EXPECT_TRUE(begin);
  EXPECT_TRUE(ParseBioLabel("I-色", &attr, &begin));
  EXPECT_FALSE(begin);
  EXPECT_FALSE(ParseBioLabel("O", &attr, &begin));
  EXPECT_FALSE(ParseBioLabel("X-色", &attr, &begin));
}

TEST(BioTest, DecodeSpans) {
  std::vector<ValueSpan> spans =
      DecodeBioSpans({"O", "B-a", "I-a", "O", "B-b"});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].attribute, "a");
  EXPECT_EQ(spans[0].begin, 1u);
  EXPECT_EQ(spans[0].end, 3u);
  EXPECT_EQ(spans[1].attribute, "b");
  EXPECT_EQ(spans[1].begin, 4u);
  EXPECT_EQ(spans[1].end, 5u);
}

TEST(BioTest, OrphanInsideStartsSpan) {
  std::vector<ValueSpan> spans = DecodeBioSpans({"O", "I-a", "I-a"});
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].begin, 1u);
  EXPECT_EQ(spans[0].end, 3u);
}

TEST(BioTest, AdjacentBStartsNewSpan) {
  std::vector<ValueSpan> spans = DecodeBioSpans({"B-a", "B-a"});
  ASSERT_EQ(spans.size(), 2u);
}

TEST(BioTest, AttributeChangeSplitsSpan) {
  std::vector<ValueSpan> spans = DecodeBioSpans({"B-a", "I-b"});
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].attribute, "a");
  EXPECT_EQ(spans[1].attribute, "b");
}

// ---------------- negation ----------------

TEST(NegationTest, JapaneseCues) {
  NegationDetector det(Language::kJa);
  EXPECT_TRUE(det.IsNegated({"ケース", "は", "付属しません", "。"}));
  EXPECT_TRUE(det.IsNegated({"カラー", "は", "赤", "ではありません"}));
  EXPECT_FALSE(det.IsNegated({"カラー", "は", "赤", "です"}));
}

TEST(NegationTest, GermanCues) {
  NegationDetector det(Language::kDe);
  EXPECT_TRUE(det.IsNegated({"Der", "Farbe", "ist", "nicht", "rot"}));
  EXPECT_TRUE(det.IsNegated({"ohne", "Deckel"}));
  EXPECT_FALSE(det.IsNegated({"Die", "Farbe", "ist", "rot"}));
}

TEST(NegationTest, EmptySentence) {
  NegationDetector det(Language::kJa);
  EXPECT_FALSE(det.IsNegated({}));
}

TEST(NegationTest, CueMustBeWholeToken) {
  NegationDetector det(Language::kDe);
  // "nichtig" is one token and not a cue.
  EXPECT_FALSE(det.IsNegated({"nichtig"}));
}

}  // namespace
}  // namespace pae::text
