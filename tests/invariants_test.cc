// Cross-cutting invariants, property-style: facts that must hold for
// every category, seed, and configuration.

#include <gtest/gtest.h>

#include <unordered_map>

#include "core/bootstrap.h"
#include "core/eval.h"
#include "core/normalize.h"
#include "datagen/generator.h"
#include "html/parser.h"

namespace pae {
namespace {

struct Scenario {
  datagen::CategoryId category;
  uint64_t seed;
};

class PipelineInvariantTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(PipelineInvariantTest, HoldsForScenario) {
  const Scenario scenario = GetParam();
  datagen::GeneratorConfig gen;
  gen.num_products = 150;
  gen.seed = scenario.seed;
  datagen::GeneratedCategory category =
      datagen::GenerateCategory(scenario.category, gen);
  core::ProcessedCorpus corpus = core::ProcessCorpus(category.corpus);

  core::PipelineConfig config;
  config.iterations = 1;
  config.crf.max_iterations = 25;
  config.seed = scenario.seed + 1;
  core::Pipeline pipeline(config);
  auto result = pipeline.Run(corpus);
  if (!result.ok()) {
    GTEST_SKIP() << "seed too small at this scale: "
                 << result.status().ToString();
  }

  // Normalized page text per product.
  std::unordered_map<std::string, std::string> page_text;
  for (const auto& page : category.corpus.pages) {
    auto dom = html::ParseHtml(page.html);
    page_text[page.product_id] =
        core::NormalizeValue(html::ExtractText(*dom));
  }

  const auto& triples = result.value().final_triples();

  // Invariant 1: every extracted value literally occurs on its page
  // (the system extracts, it never invents).
  for (const core::Triple& t : triples) {
    auto it = page_text.find(t.product_id);
    ASSERT_NE(it, page_text.end()) << t.product_id;
    EXPECT_NE(it->second.find(core::NormalizeValue(t.value)),
              std::string::npos)
        << "<" << t.product_id << ", " << t.attribute << ", " << t.value
        << "> not on page";
  }

  // Invariant 2: evaluation buckets partition the deduplicated output.
  core::TripleMetrics m =
      core::EvaluateTriples(triples, category.truth, corpus.pages.size());
  EXPECT_EQ(m.total,
            m.correct + m.incorrect + m.maybe_incorrect + m.unjudged);
  EXPECT_LE(m.covered_products, corpus.pages.size());
  EXPECT_GE(m.precision, 0.0);
  EXPECT_LE(m.precision, 100.0);
  EXPECT_GE(m.coverage, 0.0);
  EXPECT_LE(m.coverage, 100.0);

  // Invariant 3: oracle recall is bounded and consistent.
  core::OracleMetrics oracle =
      core::EvaluateOracleRecall(triples, category.truth);
  EXPECT_LE(oracle.recalled, oracle.truth_triples);
  EXPECT_LE(oracle.recalled, m.total);
  // Recalled triples are exactly the correct ones (a triple matching a
  // correct truth entry is judged correct, and vice versa).
  EXPECT_EQ(oracle.recalled, m.correct);

  // Invariant 4: triples never grow across iterations within a
  // snapshot's dedup key space more than the stats claim.
  for (const auto& stats : result.value().iteration_stats) {
    EXPECT_LE(stats.accepted_values, stats.candidate_values);
    EXPECT_EQ(stats.cleaning.input,
              stats.candidate_values);
  }

  // Invariant 5: seed triples come only from pages that have tables.
  std::unordered_map<std::string, bool> has_table;
  for (const auto& page : corpus.pages) {
    has_table[page.product_id] = !page.tables.empty();
  }
  for (const core::Triple& t : result.value().seed_triples) {
    EXPECT_TRUE(has_table[t.product_id])
        << "seed triple from table-less page " << t.product_id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, PipelineInvariantTest,
    ::testing::Values(
        Scenario{datagen::CategoryId::kTennis, 1},
        Scenario{datagen::CategoryId::kKitchen, 2},
        Scenario{datagen::CategoryId::kLadiesBags, 3},
        Scenario{datagen::CategoryId::kVacuumCleaner, 4},
        Scenario{datagen::CategoryId::kMailboxDe, 5},
        Scenario{datagen::CategoryId::kWine, 6},
        Scenario{datagen::CategoryId::kHeadphones, 7},
        Scenario{datagen::CategoryId::kBabyGoods, 8}),
    [](const auto& info) {
      return std::string(datagen::CategoryName(info.param.category))
                 .substr(0, 3) +
             "S" + std::to_string(info.param.seed);
    });

// Generator-level invariants over many categories/seeds.

class GeneratorInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorInvariantTest, QueryLogTermsAppearInCatalog) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const auto& all = datagen::AllCategories();
  datagen::CategoryId id = all[rng.NextBounded(all.size())];
  datagen::GeneratorConfig gen;
  gen.num_products = 80;
  gen.seed = rng.NextU64();
  gen.query_noise_fraction = 0.0;  // isolate the value-derived queries
  datagen::GeneratedCategory category = datagen::GenerateCategory(id, gen);

  std::string all_text;
  for (const auto& page : category.corpus.pages) {
    auto dom = html::ParseHtml(page.html);
    all_text += core::NormalizeValue(html::ExtractText(*dom));
  }
  for (const auto& query : category.corpus.query_log) {
    EXPECT_NE(all_text.find(core::NormalizeValue(query)),
              std::string::npos)
        << "query '" << query << "' never occurs in "
        << datagen::CategoryName(id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorInvariantTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace pae
