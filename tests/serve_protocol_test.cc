// The serving wire layer under attack: WireWriter/WireReader latching,
// protocol encode/decode round trips, and an adversarial frame corpus
// fired at a live server — truncated frames, oversize length words,
// zero-length and byte-by-byte partial writes, mid-request disconnects.
// The server must latch the bad connection's error and keep serving
// every other connection.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/socket.h"
#include "util/serial.h"
#include "util/wire.h"

namespace pae {
namespace {

constexpr char kPageHtml[] = "<p>色は赤です。</p>";

class RedTagger : public text::SequenceTagger {
 public:
  Status Train(const std::vector<text::LabeledSequence>&) override {
    return Status::Ok();
  }
  std::vector<std::string> Predict(
      const text::LabeledSequence& seq) const override {
    std::vector<std::string> labels(seq.tokens.size(), text::kOutsideLabel);
    for (size_t i = 0; i < seq.tokens.size(); ++i) {
      if (seq.tokens[i] == "赤") labels[i] = "B-色";
    }
    return labels;
  }
  ScoredPrediction PredictScored(
      const text::LabeledSequence& seq) const override {
    ScoredPrediction out;
    out.labels = Predict(seq);
    out.confidence.assign(out.labels.size(), 0.9);
    return out;
  }
  std::string Name() const override { return "red"; }
};

std::shared_ptr<const core::ExtractionEngine> MakeEngine() {
  return std::make_shared<core::ExtractionEngine>(
      std::make_shared<RedTagger>(), text::Language::kJa,
      std::vector<std::string>{"です"}, text::PosLexicon{},
      core::EngineOptions{});
}

std::string TestSocketPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

/// A server fixture shared by the adversarial tests: unix socket, 4
/// workers, one published stub generation.
class ProtocolServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    options_.unix_path = TestSocketPath("pae_protocol_test.sock");
    options_.workers = 4;
    server_ = std::make_unique<serve::Server>(options_);
    ASSERT_TRUE(server_->Start().ok());
    server_->Publish(MakeEngine());
  }
  void TearDown() override { server_->Stop(); }

  /// A healthy request on a fresh connection must succeed — the
  /// liveness probe run after every attack.
  void ExpectServerStillHealthy() {
    auto client = serve::Client::ConnectUnixSocket(options_.unix_path);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto response = client.value().Extract("probe", kPageHtml);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().triples.size(), 1u);
  }

  serve::ServerOptions options_;
  std::unique_ptr<serve::Server> server_;
};

// ---------------------------------------------------------------------
// WireWriter / WireReader

TEST(WireTest, ScalarAndStringRoundTrip) {
  util::WireWriter writer;
  writer.PutU8(7);
  writer.PutU32(123456);
  writer.PutU64(1ull << 40);
  writer.PutString("みかん");
  ASSERT_TRUE(writer.Finish().ok());

  util::WireReader reader(writer.data());
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  std::string s;
  EXPECT_TRUE(reader.GetU8(&u8));
  EXPECT_TRUE(reader.GetU32(&u32));
  EXPECT_TRUE(reader.GetU64(&u64));
  EXPECT_TRUE(reader.GetString(&s));
  EXPECT_TRUE(reader.ExpectEnd());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 1ull << 40);
  EXPECT_EQ(s, "みかん");
}

TEST(WireTest, UnderrunLatchesAndStaysLatched) {
  util::WireReader reader(std::string_view("\x01"));
  uint32_t v = 0;
  EXPECT_FALSE(reader.GetU32(&v));
  EXPECT_FALSE(reader.ok());
  // Latched: even a 1-byte read that would fit now fails.
  uint8_t b = 0;
  EXPECT_FALSE(reader.GetU8(&b));
}

TEST(WireTest, OversizeStringLengthRejectedBeforeAllocation) {
  // A length word claiming kMaxSerialElements bytes with a 4-byte body.
  util::WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(kMaxSerialElements));
  writer.PutU32(0);
  util::WireReader reader(writer.data());
  std::string s;
  EXPECT_FALSE(reader.GetString(&s));
  EXPECT_EQ(reader.status().code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(s.empty());
}

TEST(WireTest, TrailingBytesFailExpectEnd) {
  util::WireWriter writer;
  writer.PutU8(1);
  writer.PutU8(2);
  util::WireReader reader(writer.data());
  uint8_t b = 0;
  EXPECT_TRUE(reader.GetU8(&b));
  EXPECT_FALSE(reader.ExpectEnd());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------
// Protocol encode/decode

TEST(ProtocolTest, RequestRoundTrips) {
  serve::ExtractRequest extract;
  extract.product_id = "p9";
  extract.html = "<p>x</p>";
  auto decoded = serve::DecodeRequest(serve::EncodeExtractRequest(extract));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().op, serve::Op::kExtract);
  EXPECT_EQ(decoded.value().extract.product_id, "p9");
  EXPECT_EQ(decoded.value().extract.html, "<p>x</p>");

  auto ping = serve::DecodeRequest(serve::EncodePingRequest());
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.value().op, serve::Op::kPing);

  serve::PublishRequest publish;
  publish.model_path = "m.crf";
  publish.resources_dir = "dir";
  auto pub = serve::DecodeRequest(serve::EncodePublishRequest(publish));
  ASSERT_TRUE(pub.ok());
  EXPECT_EQ(pub.value().publish.model_path, "m.crf");
}

TEST(ProtocolTest, UnknownOpcodeAndTrailingBytesRejected) {
  EXPECT_FALSE(serve::DecodeRequest(std::string("\x7f", 1)).ok());
  EXPECT_FALSE(serve::DecodeRequest(std::string()).ok());
  std::string trailing = serve::EncodePingRequest() + "extra";
  EXPECT_FALSE(serve::DecodeRequest(trailing).ok());
}

TEST(ProtocolTest, ErrorResponseCarriesStatusThroughEnvelope) {
  const std::string payload = serve::EncodeErrorResponse(
      serve::Op::kExtract, Status::FailedPrecondition("no model"));
  auto decoded = serve::DecodeExtractResponse(payload, "p1");
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(decoded.status().message(), "no model");
}

TEST(ProtocolTest, ExtractResponseReattachesProductId) {
  serve::ExtractResponse response;
  response.generation = 3;
  response.triples = {core::Triple{"", "色", "赤"}};
  auto decoded = serve::DecodeExtractResponse(
      serve::EncodeExtractResponse(response), "p42");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().generation, 3u);
  ASSERT_EQ(decoded.value().triples.size(), 1u);
  EXPECT_EQ(decoded.value().triples[0].product_id, "p42");
}

TEST(ProtocolTest, CorruptResponseBodyNeverDecodesOk) {
  serve::ExtractResponse response;
  response.generation = 1;
  response.triples = {core::Triple{"", "色", "赤"}};
  std::string payload = serve::EncodeExtractResponse(response);
  // Truncate mid-body at every offset: none may decode as Ok.
  for (size_t cut = 1; cut < payload.size(); ++cut) {
    auto decoded =
        serve::DecodeExtractResponse(payload.substr(0, cut), "p");
    EXPECT_FALSE(decoded.ok()) << "cut=" << cut;
  }
}

// ---------------------------------------------------------------------
// Adversarial frames against a live server

TEST_F(ProtocolServerTest, TruncatedFrameLatchesOnlyThatConnection) {
  auto fd = serve::ConnectUnix(options_.unix_path);
  ASSERT_TRUE(fd.ok());
  // Announce 100 bytes, deliver 10, hang up.
  const uint32_t length = 100;
  ASSERT_TRUE(
      serve::WriteFull(fd.value(), &length, sizeof(length)).ok());
  ASSERT_TRUE(serve::WriteFull(fd.value(), "0123456789", 10).ok());
  fd.value().Close();
  ExpectServerStillHealthy();
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(ProtocolServerTest, OversizeLengthWordsRejected) {
  for (const uint32_t length :
       {UINT32_MAX, static_cast<uint32_t>(kMaxSerialElements),
        serve::kMaxFrameBytes + 1}) {
    auto fd = serve::ConnectUnix(options_.unix_path);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        serve::WriteFull(fd.value(), &length, sizeof(length)).ok());
    // The server must reject before reading (or allocating) the body:
    // the next read on this connection observes EOF/reset promptly.
    std::string response;
    Status read = serve::ReadFrame(fd.value(), &response);
    EXPECT_FALSE(read.ok()) << "length=" << length;
    ExpectServerStillHealthy();
  }
  EXPECT_GE(server_->stats().protocol_errors, 3u);
}

TEST_F(ProtocolServerTest, ZeroLengthFrameGetsErrorResponse) {
  auto fd = serve::ConnectUnix(options_.unix_path);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(serve::WriteFrame(fd.value(), std::string()).ok());
  // An empty payload cannot carry an opcode: the server answers with an
  // error envelope, then closes.
  std::string response;
  ASSERT_TRUE(serve::ReadFrame(fd.value(), &response).ok());
  size_t body_pos = 0;
  Status carried =
      serve::DecodeResponseEnvelope(response, serve::Op::kPing, &body_pos);
  EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);
  ExpectServerStillHealthy();
}

TEST_F(ProtocolServerTest, BytewisePartialWritesStillParse) {
  auto fd = serve::ConnectUnix(options_.unix_path);
  ASSERT_TRUE(fd.ok());
  const std::string payload = serve::EncodePingRequest();
  const uint32_t length = static_cast<uint32_t>(payload.size());
  char header[sizeof(length)];
  std::memcpy(header, &length, sizeof(length));
  // Dribble the frame one byte at a time: framing must reassemble it.
  for (char byte : std::string(header, sizeof(header)) + payload) {
    ASSERT_TRUE(serve::WriteFull(fd.value(), &byte, 1).ok());
  }
  std::string response;
  ASSERT_TRUE(serve::ReadFrame(fd.value(), &response).ok());
  auto ping = serve::DecodePingResponse(response);
  ASSERT_TRUE(ping.ok()) << ping.status().ToString();
  EXPECT_EQ(ping.value().generation, 1u);
}

TEST_F(ProtocolServerTest, MidRequestDisconnectKeepsServing) {
  for (int i = 0; i < 8; ++i) {
    auto fd = serve::ConnectUnix(options_.unix_path);
    ASSERT_TRUE(fd.ok());
    const std::string payload = serve::EncodeExtractRequest(
        serve::ExtractRequest{"p1", kPageHtml});
    const uint32_t length = static_cast<uint32_t>(payload.size());
    ASSERT_TRUE(
        serve::WriteFull(fd.value(), &length, sizeof(length)).ok());
    // Half the body, then vanish.
    ASSERT_TRUE(
        serve::WriteFull(fd.value(), payload.data(), payload.size() / 2)
            .ok());
    fd.value().Close();
  }
  ExpectServerStillHealthy();
}

TEST_F(ProtocolServerTest, MalformedInnerStringsRejected) {
  // A kExtract opcode whose product_id length word covers more bytes
  // than the payload holds.
  util::WireWriter writer;
  writer.PutU8(static_cast<uint8_t>(serve::Op::kExtract));
  writer.PutU32(1000);  // product_id allegedly 1000 bytes...
  writer.PutU8('x');    // ...but only one follows
  auto fd = serve::ConnectUnix(options_.unix_path);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(serve::WriteFrame(fd.value(), writer.data()).ok());
  std::string response;
  ASSERT_TRUE(serve::ReadFrame(fd.value(), &response).ok());
  size_t body_pos = 0;
  Status carried = serve::DecodeResponseEnvelope(
      response, serve::Op::kExtract, &body_pos);
  EXPECT_FALSE(carried.ok());
  ExpectServerStillHealthy();
}

TEST_F(ProtocolServerTest, HealthyConnectionSurvivesConcurrentAttack) {
  // One long-lived healthy client interleaved with attacks: its
  // connection must never be collateral damage.
  auto client = serve::Client::ConnectUnixSocket(options_.unix_path);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().Extract("p1", kPageHtml).ok());

  for (int round = 0; round < 4; ++round) {
    auto attacker = serve::ConnectUnix(options_.unix_path);
    ASSERT_TRUE(attacker.ok());
    const uint32_t garbage = UINT32_MAX - static_cast<uint32_t>(round);
    ASSERT_TRUE(
        serve::WriteFull(attacker.value(), &garbage, sizeof(garbage))
            .ok());
    attacker.value().Close();

    auto response = client.value().Extract("p1", kPageHtml);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response.value().triples.size(), 1u);
  }
  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().protocol_errors, 4u);
}

TEST_F(ProtocolServerTest, PublishOfMissingModelFailsWithoutSwap) {
  auto client = serve::Client::ConnectUnixSocket(options_.unix_path);
  ASSERT_TRUE(client.ok());
  auto generation =
      client.value().Publish("/nonexistent/model.crf", "/nonexistent");
  ASSERT_FALSE(generation.ok());
  // The failed publish must not advance the generation.
  auto ping = client.value().Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.value().generation, 1u);
  EXPECT_EQ(server_->stats().hot_swaps, 0u);
}

}  // namespace
}  // namespace pae
