// Tests for the pae_lint rule engine: every rule must fire on a fixture
// snippet that violates it and stay quiet on clean code, so the ctest
// `pae_lint` target is demonstrably enforcing something.

#include "pae_lint_lib.h"

#include <algorithm>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace pae::lint {
namespace {

bool HasRule(const std::vector<Violation>& vs, const std::string& rule) {
  return std::any_of(vs.begin(), vs.end(),
                     [&](const Violation& v) { return v.rule == rule; });
}

TEST(StripCommentsAndStrings, RemovesCommentsKeepsNewlines) {
  const std::string in =
      "int a; // trailing unordered_map<std::string, int>\n"
      "/* block\n"
      "   spanning */ int b;\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_EQ(out.find("unordered_map"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
}

TEST(StripCommentsAndStrings, RemovesStringAndCharLiterals) {
  const std::string in =
      "auto s = \"std::cout << rand()\";\n"
      "char c = 'x';\n"
      "auto r = R\"(assert(true))\";\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("cout"), std::string::npos);
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("assert"), std::string::npos);
  EXPECT_EQ(out.find('x'), std::string::npos);
}

TEST(StripCommentsAndStrings, EscapedQuoteStaysInString) {
  const std::string out =
      StripCommentsAndStrings("auto s = \"a\\\"b\"; int cout_like;\n");
  EXPECT_NE(out.find("cout_like"), std::string::npos);
  EXPECT_EQ(out.find("a\\\"b"), std::string::npos);
}

TEST(StripCommentsAndStrings, DigitSeparatorIsNotCharLiteral) {
  const std::string out =
      StripCommentsAndStrings("int n = 1'000'000; std::cerr << n;\n");
  // If 1'000'000 opened a char literal the std::cerr would be eaten.
  EXPECT_NE(out.find("std::cerr"), std::string::npos);
}

TEST(ExpectedIncludeGuard, CanonicalForm) {
  EXPECT_EQ(ExpectedIncludeGuard("src/crf/crf_model.h"),
            "PAE_CRF_CRF_MODEL_H_");
  EXPECT_EQ(ExpectedIncludeGuard("src/util/logging.h"),
            "PAE_UTIL_LOGGING_H_");
  EXPECT_EQ(ExpectedIncludeGuard("src/embed/word2vec.h"),
            "PAE_EMBED_WORD2VEC_H_");
  EXPECT_EQ(ExpectedIncludeGuard("tools/pae_lint_lib.h"),
            "PAE_TOOLS_PAE_LINT_LIB_H_");
}

// ---------------------------------------------------------------------
// Rule: hot-path-string-map

TEST(LintFile, FlagsStringMapInCrf) {
  const std::string snippet =
      "#include <unordered_map>\n"
      "std::unordered_map<std::string, int> counts;\n";
  EXPECT_TRUE(HasRule(LintFile("src/crf/foo.cc", snippet),
                      "hot-path-string-map"));
  EXPECT_TRUE(HasRule(LintFile("src/text/foo.cc", snippet),
                      "hot-path-string-map"));
}

TEST(LintFile, StringMapAllowedOutsideHotPaths) {
  const std::string snippet =
      "std::unordered_map<std::string, int> counts;\n";
  EXPECT_FALSE(HasRule(LintFile("src/util/foo.cc", snippet),
                       "hot-path-string-map"));
}

TEST(LintFile, IntKeyedMapIsFine) {
  const std::string snippet = "std::unordered_map<int, double> m;\n";
  EXPECT_FALSE(HasRule(LintFile("src/crf/foo.cc", snippet),
                       "hot-path-string-map"));
}

TEST(LintFile, StringViewKeyedMapIsFine) {
  const std::string snippet =
      "std::unordered_map<std::string_view, int> m;\n";
  EXPECT_FALSE(HasRule(LintFile("src/crf/foo.cc", snippet),
                       "hot-path-string-map"));
}

TEST(LintFile, StringMapInCommentIsFine) {
  const std::string snippet =
      "// faster than std::unordered_map<std::string, int> here\n"
      "int x;\n";
  EXPECT_FALSE(HasRule(LintFile("src/crf/foo.cc", snippet),
                       "hot-path-string-map"));
}

// ---------------------------------------------------------------------
// Rule: raw-random

TEST(LintFile, FlagsRand) {
  EXPECT_TRUE(HasRule(LintFile("src/crf/foo.cc", "int r = rand();\n"),
                      "raw-random"));
  EXPECT_TRUE(
      HasRule(LintFile("src/crf/foo.cc", "int r = std::rand();\n"),
              "raw-random"));
  EXPECT_TRUE(HasRule(LintFile("src/crf/foo.cc", "srand(42);\n"),
                      "raw-random"));
}

TEST(LintFile, FlagsRandomDevice) {
  EXPECT_TRUE(HasRule(
      LintFile("src/embed/foo.cc", "std::random_device rd;\n"),
      "raw-random"));
}

TEST(LintFile, RngHeaderIsExempt) {
  EXPECT_FALSE(HasRule(
      LintFile("src/util/rng.h",
               "#ifndef PAE_UTIL_RNG_H_\n#define PAE_UTIL_RNG_H_\n"
               "std::random_device rd;\n#endif\n"),
      "raw-random"));
}

TEST(LintFile, RandSubstringIsFine) {
  // "operand" and "randomize_order" contain 'rand' but are not calls.
  const std::string snippet =
      "int operand(int x);\nbool randomize_order = false;\n";
  EXPECT_FALSE(HasRule(LintFile("src/crf/foo.cc", snippet), "raw-random"));
}

// ---------------------------------------------------------------------
// Rule: raw-stdio

TEST(LintFile, FlagsCoutCerr) {
  EXPECT_TRUE(HasRule(
      LintFile("src/crf/foo.cc", "std::cout << \"hi\\n\";\n"),
      "raw-stdio"));
  EXPECT_TRUE(HasRule(LintFile("src/crf/foo.cc", "std::cerr << x;\n"),
                      "raw-stdio"));
}

TEST(LintFile, LoggingCcIsExempt) {
  EXPECT_FALSE(HasRule(
      LintFile("src/util/logging.cc", "std::cerr << msg;\n"),
      "raw-stdio"));
}

TEST(LintFile, CliFrontEndsMayUseStdio) {
  // tools/ and bench/ print their output (tables, JSON, usage) to
  // stdout by design; the rule polices library code under src/ only.
  EXPECT_FALSE(HasRule(
      LintFile("tools/pae_extract.cc", "std::cout << report;\n"),
      "raw-stdio"));
  EXPECT_FALSE(HasRule(
      LintFile("bench/table23_runner.cc", "std::cerr << usage;\n"),
      "raw-stdio"));
}

// ---------------------------------------------------------------------
// Rule: naked-assert

TEST(LintFile, FlagsNakedAssert) {
  EXPECT_TRUE(HasRule(
      LintFile("src/crf/foo.cc", "#include <cassert>\nassert(x > 0);\n"),
      "naked-assert"));
}

TEST(LintFile, StaticAssertIsFine) {
  EXPECT_FALSE(HasRule(
      LintFile("src/crf/foo.cc", "static_assert(sizeof(int) == 4);\n"),
      "naked-assert"));
}

TEST(LintFile, DcheckIsFine) {
  EXPECT_FALSE(HasRule(
      LintFile("src/crf/foo.cc", "PAE_DCHECK(x > 0);\n"), "naked-assert"));
}

// ---------------------------------------------------------------------
// Rule: include-guard

TEST(LintFile, FlagsWrongIncludeGuard) {
  const std::string snippet =
      "#ifndef FOO_H\n#define FOO_H\n#endif  // FOO_H\n";
  const std::vector<Violation> vs = LintFile("src/crf/foo.h", snippet);
  ASSERT_TRUE(HasRule(vs, "include-guard"));
  bool mentions_expected = false;
  for (const Violation& v : vs) {
    if (v.message.find("PAE_CRF_FOO_H_") != std::string::npos) {
      mentions_expected = true;
    }
  }
  EXPECT_TRUE(mentions_expected);
}

TEST(LintFile, FlagsMissingIncludeGuard) {
  EXPECT_TRUE(
      HasRule(LintFile("src/crf/foo.h", "int x;\n"), "include-guard"));
}

TEST(LintFile, CorrectGuardIsFine) {
  const std::string snippet =
      "#ifndef PAE_CRF_FOO_H_\n#define PAE_CRF_FOO_H_\n"
      "#endif  // PAE_CRF_FOO_H_\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/crf/foo.h", snippet), "include-guard"));
}

TEST(LintFile, GuardRuleIgnoresCcFiles) {
  EXPECT_FALSE(
      HasRule(LintFile("src/crf/foo.cc", "int x;\n"), "include-guard"));
}

// ---------------------------------------------------------------------
// Rule: float-accumulator

TEST(LintFile, FlagsFloatAccumulator) {
  const std::string snippet =
      "float sum = 0.0f;\n"
      "for (float v : xs) {\n"
      "  sum += v;\n"
      "}\n";
  EXPECT_TRUE(
      HasRule(LintFile("src/crf/foo.cc", snippet), "float-accumulator"));
}

TEST(LintFile, DoubleAccumulatorIsFine) {
  const std::string snippet =
      "double sum = 0.0;\n"
      "for (float v : xs) sum += v;\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/crf/foo.cc", snippet), "float-accumulator"));
}

TEST(LintFile, FloatWithoutAccumulationIsFine) {
  const std::string snippet =
      "float lr = 0.0f;\n"
      "lr = ComputeRate();\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/crf/foo.cc", snippet), "float-accumulator"));
}

TEST(LintFile, FarAwayAccumulationIsOutsideWindow) {
  std::string snippet = "float sum = 0.0f;\n";
  for (int i = 0; i < 30; ++i) snippet += "Unrelated();\n";
  snippet += "sum += 1.0f;\n";
  EXPECT_FALSE(
      HasRule(LintFile("src/crf/foo.cc", snippet), "float-accumulator"));
}

// ---------------------------------------------------------------------
// Rule: hand-rolled-kernel

TEST(LintFile, FlagsHandRolledDot) {
  const std::string snippet =
      "double s = 0;\n"
      "for (size_t i = 0; i < n; ++i) {\n"
      "  s += static_cast<double>(a[i]) * b[i];\n"
      "}\n";
  const std::vector<Violation> vs = LintFile("src/lstm/foo.cc", snippet);
  ASSERT_TRUE(HasRule(vs, "hand-rolled-kernel"));
  EXPECT_NE(vs[0].message.find("Dot"), std::string::npos);
}

TEST(LintFile, FlagsHandRolledAxpy) {
  const std::string snippet =
      "for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];\n";
  EXPECT_TRUE(HasRule(LintFile("src/embed/foo.cc", snippet),
                      "hand-rolled-kernel"));
}

TEST(LintFile, KernelLayerItselfIsExempt) {
  const std::string snippet =
      "double s = 0;\n"
      "s += static_cast<double>(a[i]) * b[i];\n"
      "y[i] += alpha * x[i];\n";
  EXPECT_FALSE(HasRule(LintFile("src/math/kernels.cc", snippet),
                       "hand-rolled-kernel"));
}

TEST(LintFile, ElementwiseAdditionIsNotAKernelLoop) {
  // No product of two indexed operands: plain accumulation, elementwise
  // sums and scalar updates stay legal outside src/math/.
  const std::string snippet =
      "b[r] += dpre[r];\n"
      "mean[k] += row[k];\n"
      "s += w[i] * x[i];\n";  // double path: no static_cast idiom
  EXPECT_FALSE(HasRule(LintFile("src/crf/foo.cc", snippet),
                       "hand-rolled-kernel"));
}

// ---------------------------------------------------------------------
// Rule: raw-mutex

TEST(LintFile, FlagsRawMutexOutsideUtil) {
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.cc", "std::mutex mu;\n"), "raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintFile("src/crf/foo.cc",
               "std::lock_guard<std::mutex> lock(mu);\n"),
      "raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintFile("tests/foo_test.cc",
               "std::unique_lock<std::mutex> lock(mu);\n"),
      "raw-mutex"));
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.cc", "std::condition_variable cv;\n"),
      "raw-mutex"));
}

TEST(LintFile, WrapperImplementationIsExempt) {
  EXPECT_FALSE(HasRule(
      LintFile("src/util/mutex.h", "std::mutex mu_;\n"), "raw-mutex"));
}

TEST(LintFile, AnnotatedWrapperIsFine) {
  const std::string snippet =
      "util::Mutex mu_;\n"
      "util::MutexLock lock(mu_);\n"
      "util::CondVar cv_;\n";
  EXPECT_FALSE(HasRule(LintFile("src/serve/foo.cc", snippet), "raw-mutex"));
}

TEST(LintFile, MutexIncludeAloneIsFine) {
  // Including <mutex> without declaring std types is legal (the wrapper
  // header does it); only the std:: type usages are flagged.
  EXPECT_FALSE(HasRule(
      LintFile("src/serve/foo.cc", "#include <mutex>\n"), "raw-mutex"));
}

// ---------------------------------------------------------------------
// Rule: atomic-memory-order

TEST(LintFile, FlagsImplicitOrderAtomicOps) {
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.cc", "bool v = stop_.load();\n"),
      "atomic-memory-order"));
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.cc", "stop_.store(true);\n"),
      "atomic-memory-order"));
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.cc", "count_.fetch_add(1);\n"),
      "atomic-memory-order"));
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.cc", "bool was = flag_->exchange(true);\n"),
      "atomic-memory-order"));
}

TEST(LintFile, ExplicitOrderIsFine) {
  const std::string snippet =
      "bool v = stop_.load(std::memory_order_seq_cst);\n"
      "count_.fetch_add(1, std::memory_order_relaxed);\n"
      "done_.store(true, std::memory_order_release);\n"
      "v_.compare_exchange_strong(e, d, std::memory_order_seq_cst);\n";
  EXPECT_FALSE(HasRule(LintFile("src/serve/foo.cc", snippet),
                       "atomic-memory-order"));
}

TEST(LintFile, MultilineExplicitOrderIsFine) {
  // The order argument may land on a later line than the call token.
  const std::string snippet =
      "start_ns.compare_exchange_strong(\n"
      "    expected, Now(),\n"
      "    std::memory_order_seq_cst);\n";
  EXPECT_FALSE(HasRule(LintFile("src/serve/foo.cc", snippet),
                       "atomic-memory-order"));
}

TEST(LintFile, NonMemberLoadStoreIsFine) {
  // Free functions and plain identifiers named load/store are not
  // atomic member calls.
  const std::string snippet =
      "auto m = load(path);\n"
      "int store = 3;\n"
      "Result<Model> r = Load(path);\n";
  EXPECT_FALSE(HasRule(LintFile("src/serve/foo.cc", snippet),
                       "atomic-memory-order"));
}

// ---------------------------------------------------------------------
// Rule: detached-thread

TEST(LintFile, FlagsDetachedThread) {
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.cc",
               "std::thread([] { Work(); }).detach();\n"),
      "detached-thread"));
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.cc", "worker->detach();\n"),
      "detached-thread"));
}

TEST(LintFile, JoinedThreadIsFine) {
  const std::string snippet =
      "std::thread t([] { Work(); });\n"
      "t.join();\n";
  EXPECT_FALSE(HasRule(LintFile("src/serve/foo.cc", snippet),
                       "detached-thread"));
}

// ---------------------------------------------------------------------
// Rule: unguarded-mutable

TEST(LintFile, FlagsUnguardedMutableMember) {
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.h",
               "#ifndef PAE_SERVE_FOO_H_\n"
               "mutable std::vector<int> cache_;\n#endif\n"),
      "unguarded-mutable"));
}

TEST(LintFile, GuardedMutableIsFine) {
  const std::string snippet =
      "mutable std::vector<int> cache_ PAE_GUARDED_BY(mutex_);\n";
  EXPECT_FALSE(HasRule(LintFile("src/serve/foo.cc", snippet),
                       "unguarded-mutable"));
}

TEST(LintFile, MutableAtomicAndMutexAreFine) {
  const std::string snippet =
      "mutable std::atomic<int64_t> readers{0};\n"
      "mutable Mutex mutex_;\n"
      "mutable util::Mutex other_mutex_;\n";
  EXPECT_FALSE(HasRule(LintFile("src/serve/foo.cc", snippet),
                       "unguarded-mutable"));
}

TEST(LintFile, LambdaMutableQualifierIsFine) {
  const std::string snippet =
      "auto gen = [&, next = size_t{0}]() mutable { return next++; };\n";
  EXPECT_FALSE(HasRule(LintFile("src/crf/foo.cc", snippet),
                       "unguarded-mutable"));
}

// ---------------------------------------------------------------------
// Rule: mmap-reinterpret-cast

TEST(LintFile, FlagsReinterpretCast) {
  EXPECT_TRUE(HasRule(
      LintFile("src/serve/foo.cc",
               "auto* h = reinterpret_cast<const Header*>(data);\n"),
      "mmap-reinterpret-cast"));
}

TEST(LintFile, ArtifactAndMmapFilesAreExempt) {
  const std::string snippet =
      "auto* h = reinterpret_cast<const PaezHeader*>(bytes);\n";
  EXPECT_FALSE(HasRule(LintFile("src/core/model_artifact.cc", snippet),
                       "mmap-reinterpret-cast"));
  EXPECT_FALSE(HasRule(LintFile("src/util/mmap_file.cc", snippet),
                       "mmap-reinterpret-cast"));
}

TEST(LintFile, MemcpyInsteadOfCastIsFine) {
  const std::string snippet =
      "PaezHeader h;\n"
      "std::memcpy(&h, data, sizeof(h));\n";
  EXPECT_FALSE(HasRule(LintFile("src/serve/foo.cc", snippet),
                       "mmap-reinterpret-cast"));
}

// ---------------------------------------------------------------------
// Rule: single-writer-interner

TEST(LintFile, FlagsInternInsideParallelFor) {
  const std::string snippet =
      "pool.ParallelFor(0, n, 1, [&](size_t i) {\n"
      "  ids[i] = interner.Intern(tokens[i]);\n"
      "});\n";
  const std::vector<Violation> vs = LintFile("src/core/foo.cc", snippet);
  ASSERT_TRUE(HasRule(vs, "single-writer-interner"));
  // The violation points at the offending call, not the loop header.
  const auto it = std::find_if(vs.begin(), vs.end(), [](const Violation& v) {
    return v.rule == "single-writer-interner";
  });
  EXPECT_EQ(it->line, 2);
}

TEST(LintFile, FlagsGetOrAddInsideParallelFor) {
  const std::string snippet =
      "pool.ParallelFor(0, pages.size(), 1, [&](size_t p) {\n"
      "  for (const auto& tok : pages[p].tokens) {\n"
      "    vocab->GetOrAdd(tok);\n"
      "  }\n"
      "});\n";
  EXPECT_TRUE(HasRule(LintFile("src/core/foo.cc", snippet),
                      "single-writer-interner"));
}

TEST(LintFile, InternOutsideParallelForIsFine) {
  const std::string snippet =
      "pool.ParallelFor(0, n, 1, [&](size_t i) { Parse(i); });\n"
      "for (const auto& tok : tokens) interner.Intern(tok);\n"
      "vocab.GetOrAdd(word);\n";
  EXPECT_FALSE(HasRule(LintFile("src/core/foo.cc", snippet),
                       "single-writer-interner"));
}

TEST(LintFile, NonMemberInternInsideParallelForIsFine) {
  // Free functions / other identifiers named Intern are not member
  // calls on an interner.
  const std::string snippet =
      "pool.ParallelFor(0, n, 1, [&](size_t i) {\n"
      "  ids[i] = Intern(tokens[i]);\n"
      "  int GetOrAdd = 3;\n"
      "});\n";
  EXPECT_FALSE(HasRule(LintFile("src/core/foo.cc", snippet),
                       "single-writer-interner"));
}

// ---------------------------------------------------------------------
// Violation metadata / allowlist

TEST(LintFile, ReportsFileAndLine) {
  const std::vector<Violation> vs =
      LintFile("src/crf/foo.cc", "int a;\nint r = rand();\n");
  ASSERT_EQ(vs.size(), 1u);
  EXPECT_EQ(vs[0].file, "src/crf/foo.cc");
  EXPECT_EQ(vs[0].line, 2);
  EXPECT_EQ(vs[0].rule, "raw-random");
  EXPECT_NE(vs[0].ToString().find("src/crf/foo.cc:2: [raw-random]"),
            std::string::npos);
}

TEST(Allowlist, ParsesAndFilters) {
  const std::vector<AllowlistEntry> entries = ParseAllowlist(
      "# comment\n"
      "\n"
      "raw-random src/crf/foo.cc\n"
      "naked-assert src/text/bar.cc  # trailing note\n");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "raw-random");
  EXPECT_EQ(entries[0].file, "src/crf/foo.cc");
  EXPECT_EQ(entries[1].rule, "naked-assert");
  EXPECT_EQ(entries[1].file, "src/text/bar.cc");

  std::vector<Violation> vs = {
      {"src/crf/foo.cc", 3, "raw-random", "m"},
      {"src/crf/foo.cc", 4, "naked-assert", "m"},
      {"src/crf/other.cc", 5, "raw-random", "m"},
  };
  vs = ApplyAllowlist(std::move(vs), entries);
  ASSERT_EQ(vs.size(), 2u);
  // The (rule, file) pair must match exactly; same rule in another file
  // and another rule in the same file both survive.
  EXPECT_EQ(vs[0].rule, "naked-assert");
  EXPECT_EQ(vs[1].file, "src/crf/other.cc");
}

TEST(Allowlist, EmptyAllowlistKeepsEverything) {
  std::vector<Violation> vs = {{"src/crf/foo.cc", 1, "raw-random", "m"}};
  EXPECT_EQ(ApplyAllowlist(vs, {}).size(), 1u);
}

}  // namespace
}  // namespace pae::lint
