// The inference-time "apply" phase: ExtractWithModel semantics and the
// end-to-end train → persist → apply-to-new-crawl flow.

#include <gtest/gtest.h>

#include <memory>

#include "core/apply.h"
#include "core/bootstrap.h"
#include "core/eval.h"
#include "core/normalize.h"
#include "datagen/generator.h"

namespace pae {
namespace {

/// Tags the literal token "赤" as B-色 with configurable confidence.
class RedTagger : public text::SequenceTagger {
 public:
  explicit RedTagger(double confidence) : confidence_(confidence) {}

  Status Train(const std::vector<text::LabeledSequence>&) override {
    return Status::Ok();
  }
  std::vector<std::string> Predict(
      const text::LabeledSequence& seq) const override {
    std::vector<std::string> labels(seq.tokens.size(), text::kOutsideLabel);
    for (size_t i = 0; i < seq.tokens.size(); ++i) {
      if (seq.tokens[i] == "赤") labels[i] = "B-色";
    }
    return labels;
  }
  ScoredPrediction PredictScored(
      const text::LabeledSequence& seq) const override {
    ScoredPrediction out;
    out.labels = Predict(seq);
    out.confidence.assign(out.labels.size(), confidence_);
    return out;
  }
  std::string Name() const override { return "red"; }

 private:
  double confidence_;
};

core::ProcessedCorpus TinyCorpus() {
  core::Corpus corpus;
  corpus.language = text::Language::kJa;
  corpus.tokenizer_lexicon = {"です", "ではありません"};
  core::ProductPage p1;
  p1.product_id = "p1";
  p1.html = "<p>色は赤です。</p>";
  core::ProductPage p2;
  p2.product_id = "p2";
  p2.html = "<p>色は赤ではありません。</p>";  // negated
  corpus.pages = {p1, p2};
  return core::ProcessCorpus(corpus);
}

TEST(ApplyTest, ExtractsSpansAsTriples) {
  core::ProcessedCorpus corpus = TinyCorpus();
  RedTagger tagger(0.9);
  core::ApplyOptions options;
  options.negation_filtering = false;
  std::vector<core::Triple> triples =
      core::ExtractWithModel(tagger, corpus, options);
  ASSERT_EQ(triples.size(), 2u);
  EXPECT_EQ(triples[0].attribute, "色");
  EXPECT_EQ(triples[0].value, "赤");
}

TEST(ApplyTest, NegationFilteringDropsNegatedPage) {
  core::ProcessedCorpus corpus = TinyCorpus();
  RedTagger tagger(0.9);
  core::ApplyOptions options;  // negation filtering on by default
  std::vector<core::Triple> triples =
      core::ExtractWithModel(tagger, corpus, options);
  ASSERT_EQ(triples.size(), 1u);
  EXPECT_EQ(triples[0].product_id, "p1");
}

TEST(ApplyTest, ConfidenceThresholdDropsLowConfidenceSpans) {
  core::ProcessedCorpus corpus = TinyCorpus();
  RedTagger tagger(0.4);
  core::ApplyOptions options;
  options.negation_filtering = false;
  options.min_span_confidence = 0.5;
  EXPECT_TRUE(core::ExtractWithModel(tagger, corpus, options).empty());
}

TEST(ApplyTest, AcceptedPairsActAsWhitelist) {
  core::ProcessedCorpus corpus = TinyCorpus();
  RedTagger tagger(0.9);
  core::ApplyOptions options;
  options.negation_filtering = false;
  options.accepted_pairs = {core::PairKey("色", "青")};  // not 赤
  EXPECT_TRUE(core::ExtractWithModel(tagger, corpus, options).empty());
  options.accepted_pairs = {core::PairKey("色", core::NormalizeValue("赤"))};
  EXPECT_EQ(core::ExtractWithModel(tagger, corpus, options).size(), 2u);
}

TEST(ApplyTest, DuplicateTriplesDeduplicated) {
  core::Corpus corpus;
  corpus.language = text::Language::kJa;
  corpus.tokenizer_lexicon = {"です"};
  core::ProductPage page;
  page.product_id = "p1";
  page.html = "<p>赤です。</p><p>赤です。</p>";  // two mentions
  corpus.pages = {page};
  core::ProcessedCorpus processed = core::ProcessCorpus(corpus);
  RedTagger tagger(0.9);
  core::ApplyOptions options;
  EXPECT_EQ(core::ExtractWithModel(tagger, processed, options).size(), 1u);
}

TEST(ApplyTest, TrainPersistApplyOnFreshCrawl) {
  // Bootstrap on crawl A, keep the final model, apply it to crawl B
  // (same category, different seed → different products).
  datagen::GeneratorConfig gen_a;
  gen_a.num_products = 250;
  gen_a.seed = 42;
  auto crawl_a = datagen::GenerateCategory(
      datagen::CategoryId::kVacuumCleaner, gen_a);
  core::ProcessedCorpus corpus_a = core::ProcessCorpus(crawl_a.corpus);

  core::PipelineConfig config;
  config.iterations = 1;
  config.crf.max_iterations = 30;
  config.train_final_model = true;
  config.seed = 7;
  core::Pipeline pipeline(config);
  auto trained = pipeline.Run(corpus_a);
  ASSERT_TRUE(trained.ok());
  ASSERT_NE(trained.value().final_tagger, nullptr);
  ASSERT_FALSE(trained.value().known_pair_keys.empty());

  datagen::GeneratorConfig gen_b = gen_a;
  gen_b.num_products = 150;
  gen_b.seed = 4242;
  auto crawl_b = datagen::GenerateCategory(
      datagen::CategoryId::kVacuumCleaner, gen_b);
  core::ProcessedCorpus corpus_b = core::ProcessCorpus(crawl_b.corpus);

  core::ApplyOptions apply;
  apply.accepted_pairs.insert(trained.value().known_pair_keys.begin(),
                              trained.value().known_pair_keys.end());
  std::vector<core::Triple> triples = core::ExtractWithModel(
      *trained.value().final_tagger, corpus_b, apply);
  ASSERT_FALSE(triples.empty());

  core::TripleMetrics metrics = core::EvaluateTriples(
      triples, crawl_b.truth, corpus_b.pages.size());
  EXPECT_GT(metrics.precision, 75.0);
  EXPECT_GT(metrics.coverage, 30.0);
}

}  // namespace
}  // namespace pae
