// The serving layer: GenerationCell hot-swap semantics (including the
// multi-threaded swap hammer), ExtractionEngine byte-identity with the
// batch ExtractWithModel path, the in-process server smoke and the
// deterministic load driver.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/apply.h"
#include "core/bootstrap.h"
#include "core/corpus_io.h"
#include "core/engine.h"
#include "core/model_artifact.h"
#include "core/normalize.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "serve/client.h"
#include "serve/generation.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/metrics.h"

namespace pae {
namespace {

constexpr char kPageHtml[] = "<p>色は赤です。</p>";

/// Tags the literal token "赤" with a per-instance attribute name, so a
/// response's triples identify exactly which engine generation served
/// it.
class GenTagger : public text::SequenceTagger {
 public:
  explicit GenTagger(std::string attribute)
      : attribute_(std::move(attribute)) {}

  Status Train(const std::vector<text::LabeledSequence>&) override {
    return Status::Ok();
  }
  std::vector<std::string> Predict(
      const text::LabeledSequence& seq) const override {
    std::vector<std::string> labels(seq.tokens.size(), text::kOutsideLabel);
    for (size_t i = 0; i < seq.tokens.size(); ++i) {
      if (seq.tokens[i] == "赤") labels[i] = "B-" + attribute_;
    }
    return labels;
  }
  ScoredPrediction PredictScored(
      const text::LabeledSequence& seq) const override {
    ScoredPrediction out;
    out.labels = Predict(seq);
    out.confidence.assign(out.labels.size(), 0.9);
    return out;
  }
  std::string Name() const override { return "gen-" + attribute_; }

 private:
  std::string attribute_;
};

/// An engine whose output attribute encodes `tag` (e.g. "色7" for the
/// 7th published generation).
std::shared_ptr<const core::ExtractionEngine> MakeStubEngine(
    const std::string& tag) {
  return std::make_shared<core::ExtractionEngine>(
      std::make_shared<GenTagger>(tag), text::Language::kJa,
      std::vector<std::string>{"です", "ではありません"},
      text::PosLexicon{},
      core::EngineOptions{});
}

/// The batch-path reference output for a one-page corpus tagged by
/// GenTagger(tag): what ExtractWithModel returns, which the engine must
/// match byte for byte.
std::vector<core::Triple> BatchReference(const std::string& product_id,
                                         const std::string& tag) {
  core::Corpus corpus;
  corpus.language = text::Language::kJa;
  corpus.tokenizer_lexicon = {"です", "ではありません"};
  core::ProductPage page;
  page.product_id = product_id;
  page.html = kPageHtml;
  corpus.pages = {page};
  core::ProcessedCorpus processed = core::ProcessCorpus(corpus);
  GenTagger tagger(tag);
  return core::ExtractWithModel(tagger, processed, core::ApplyOptions{});
}

std::string TestSocketPath(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

// ---------------------------------------------------------------------
// GenerationCell

TEST(GenerationCellTest, EmptyBeforeFirstPublish) {
  serve::GenerationCell cell;
  EXPECT_EQ(cell.generation(), 0u);
  serve::GenerationCell::Lease lease = cell.Acquire();
  EXPECT_TRUE(lease.empty());
  EXPECT_EQ(lease.engine(), nullptr);
}

TEST(GenerationCellTest, PublishAdvancesGenerations) {
  serve::GenerationCell cell;
  EXPECT_EQ(cell.Publish(MakeStubEngine("a")), 1u);
  EXPECT_EQ(cell.Publish(MakeStubEngine("b")), 2u);
  EXPECT_EQ(cell.generation(), 2u);
  serve::GenerationCell::Lease lease = cell.Acquire();
  ASSERT_FALSE(lease.empty());
  EXPECT_EQ(lease.generation(), 2u);
}

TEST(GenerationCellTest, LeasePinsOldGenerationAcrossSwap) {
  serve::GenerationCell cell;
  auto old_engine = MakeStubEngine("old");
  cell.Publish(old_engine);
  serve::GenerationCell::Lease lease = cell.Acquire();
  ASSERT_EQ(lease.generation(), 1u);
  const core::ExtractionEngine* pinned = lease.engine();
  cell.Publish(MakeStubEngine("new"));
  // The in-flight lease still serves the old snapshot...
  EXPECT_EQ(lease.engine(), pinned);
  EXPECT_EQ(pinned, old_engine.get());
  // ...while new acquisitions see the new generation.
  serve::GenerationCell::Lease fresh = cell.Acquire();
  EXPECT_EQ(fresh.generation(), 2u);
  EXPECT_NE(fresh.engine(), pinned);
}

TEST(GenerationCellTest, PublisherRunsAheadUntilSlotReuse) {
  serve::GenerationCell cell;
  cell.Publish(MakeStubEngine("g1"));
  serve::GenerationCell::Lease lease = cell.Acquire();  // pins slot 1
  // Slots 2..kSlots and slot 0 are free: kSlots - 1 more publishes must
  // not block. Reusing slot 1 (generation kSlots + 1) would.
  for (size_t i = 2; i <= serve::GenerationCell::kSlots; ++i) {
    EXPECT_EQ(cell.Publish(MakeStubEngine("g" + std::to_string(i))), i);
  }
  // Release in a helper thread, then the blocked publish completes.
  std::thread releaser([&lease] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    lease.Release();
  });
  EXPECT_EQ(cell.Publish(MakeStubEngine("g9")),
            serve::GenerationCell::kSlots + 1);
  releaser.join();
}

// The tentpole race test: reader threads hammer Extract through the
// generation pointer while a publisher swaps 100 generations under
// them. Every response must be attributable to exactly one published
// generation and byte-identical to the batch path's output for that
// generation. Run under TSan in check.sh's sanitizer pass.
TEST(GenerationCellTest, HotSwapHammerYieldsOnlyPublishedGenerations) {
  constexpr int kGenerations = 100;
  constexpr int kReaders = 8;

  std::vector<std::shared_ptr<const core::ExtractionEngine>> engines;
  std::vector<std::vector<core::Triple>> expected(kGenerations + 1);
  engines.reserve(kGenerations);
  for (int g = 1; g <= kGenerations; ++g) {
    const std::string tag = "色" + std::to_string(g);
    engines.push_back(MakeStubEngine(tag));
    expected[static_cast<size_t>(g)] = BatchReference("p1", tag);
    ASSERT_FALSE(expected[static_cast<size_t>(g)].empty());
  }

  serve::GenerationCell cell;
  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> mismatches{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto scratch = core::ExtractionEngine::NewScratch();
      while (!done.load(std::memory_order_seq_cst)) {
        serve::GenerationCell::Lease lease = cell.Acquire();
        if (lease.empty()) continue;
        const uint64_t generation = lease.generation();
        if (generation < 1 ||
            generation > static_cast<uint64_t>(kGenerations)) {
          mismatches.fetch_add(1, std::memory_order_seq_cst);
          continue;
        }
        std::vector<core::Triple> triples =
            lease.engine()->Extract("p1", kPageHtml, scratch.get());
        if (triples != expected[generation]) {
          mismatches.fetch_add(1, std::memory_order_seq_cst);
        }
        reads.fetch_add(1, std::memory_order_seq_cst);
      }
    });
  }

  for (int g = 1; g <= kGenerations; ++g) {
    cell.Publish(engines[static_cast<size_t>(g - 1)]);
    std::this_thread::yield();
  }
  // Let readers observe the final generation before stopping.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  done.store(true, std::memory_order_seq_cst);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(std::memory_order_seq_cst), 0);
  EXPECT_GT(reads.load(std::memory_order_seq_cst), 0);
  EXPECT_EQ(cell.generation(), static_cast<uint64_t>(kGenerations));
}

// The same hammer against real CRF engines, one legacy-parsed and one
// mmap-backed (`.paez`): publishes alternate between the two load paths
// of the SAME model while readers run inference straight over the
// shared mapping. Every response must be byte-identical to the
// reference regardless of which format served it. Run under TSan in
// check.sh's serve pass; the fixture is built once per process so
// --gtest_repeat reuses it.
TEST(GenerationCellTest, HotSwapHammerPackedArtifact) {
  struct Fixture {
    std::shared_ptr<const core::ExtractionEngine> legacy_engine;
    std::shared_ptr<const core::ExtractionEngine> packed_engine;
    std::vector<core::Triple> expected;
  };
  static const Fixture* fixture = [] {
    auto* f = new Fixture();
    Rng rng(9);
    std::vector<text::LabeledSequence> data;
    for (int i = 0; i < 80; ++i) {
      text::LabeledSequence seq;
      seq.tokens = {"重量", "は", std::to_string(rng.NextInt(1, 9)), "kg",
                    "です"};
      seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
      seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
      data.push_back(std::move(seq));
    }
    crf::CrfOptions options;
    options.max_iterations = 20;
    auto trained = std::make_shared<crf::CrfTagger>(options);
    PAE_CHECK(trained->Train(data).ok());

    const std::string model_path =
        TestSocketPath("hammer_model.crf");  // temp-dir path helper
    const std::string paez_path = TestSocketPath("hammer_model.paez");
    PAE_CHECK(trained->Save(model_path).ok());
    PAE_CHECK(core::PackModelArtifact(*trained, nullptr,
                                      core::PackOptions(), paez_path)
                  .ok());

    auto legacy = std::make_shared<crf::CrfTagger>();
    PAE_CHECK(legacy->Load(model_path).ok());
    auto artifact = core::ModelArtifact::Open(paez_path);
    PAE_CHECK(artifact.ok()) << artifact.status().ToString();
    auto packed_model = core::MakePackedCrfModel(std::move(artifact).value());
    PAE_CHECK(packed_model.ok());
    auto packed = std::make_shared<crf::CrfTagger>();
    PAE_CHECK(packed->LoadPacked(std::move(packed_model).value()).ok());
    PAE_CHECK(packed->packed());

    const std::vector<std::string> lexicon = {"重量", "kg", "です"};
    text::PosLexicon pos;
    pos.word_tags = {{"重量", "NN"}, {"kg", "UNIT"}, {"です", "VB"}};
    f->legacy_engine = std::make_shared<core::ExtractionEngine>(
        legacy, text::Language::kJa, lexicon, pos, core::EngineOptions{});
    f->packed_engine = std::make_shared<core::ExtractionEngine>(
        packed, text::Language::kJa, lexicon, pos, core::EngineOptions{});
    auto scratch = core::ExtractionEngine::NewScratch();
    f->expected = f->legacy_engine->Extract(
        "p1", "<p>重量は7kgです。</p>", scratch.get());
    PAE_CHECK(!f->expected.empty())
        << "fixture page must actually extract, or the hammer is vacuous";
    return f;
  }();

  constexpr int kSwaps = 100;
  constexpr int kReaders = 4;
  serve::GenerationCell cell;
  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};
  std::atomic<int64_t> mismatches{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      auto scratch = core::ExtractionEngine::NewScratch();
      while (!done.load(std::memory_order_seq_cst)) {
        serve::GenerationCell::Lease lease = cell.Acquire();
        if (lease.empty()) continue;
        std::vector<core::Triple> triples = lease.engine()->Extract(
            "p1", "<p>重量は7kgです。</p>", scratch.get());
        if (triples != fixture->expected) {
          mismatches.fetch_add(1, std::memory_order_seq_cst);
        }
        reads.fetch_add(1, std::memory_order_seq_cst);
      }
    });
  }

  for (int g = 1; g <= kSwaps; ++g) {
    cell.Publish(g % 2 == 0 ? fixture->packed_engine
                            : fixture->legacy_engine);
    std::this_thread::yield();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  done.store(true, std::memory_order_seq_cst);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(std::memory_order_seq_cst), 0);
  EXPECT_GT(reads.load(std::memory_order_seq_cst), 0);
}

// ---------------------------------------------------------------------
// ExtractionEngine

TEST(ExtractionEngineTest, MatchesBatchPathByteForByte) {
  auto engine = MakeStubEngine("色");
  auto scratch = core::ExtractionEngine::NewScratch();
  std::vector<core::Triple> served =
      engine->Extract("p1", kPageHtml, scratch.get());
  EXPECT_EQ(served, BatchReference("p1", "色"));
  ASSERT_EQ(served.size(), 1u);
  EXPECT_EQ(served[0].attribute, "色");
  EXPECT_EQ(served[0].value, "赤");
}

TEST(ExtractionEngineTest, ScratchReuseAllocatesNoNewScratches) {
  auto engine = MakeStubEngine("色");
  auto scratch = core::ExtractionEngine::NewScratch();
  util::Counter* created =
      util::MetricsRegistry::Global().GetCounter("engine.scratch_created");
  engine->Extract("warm", kPageHtml, scratch.get());
  const int64_t before = created->value();
  for (int i = 0; i < 100; ++i) {
    engine->Extract("p" + std::to_string(i), kPageHtml, scratch.get());
  }
  // Steady state: the pre-allocated scratch serves every request; no
  // request-path Scratch construction (the model-sized state lives in
  // the engine, allocated once before the loop).
  EXPECT_EQ(created->value(), before);
}

TEST(ExtractionEngineTest, StatsReportPipelineCounts) {
  auto engine = MakeStubEngine("色");
  core::EngineRequestStats stats;
  engine->Extract("p1", kPageHtml, nullptr, &stats);
  EXPECT_EQ(stats.sentences, 1);
  EXPECT_EQ(stats.spans, 1);
  EXPECT_EQ(stats.triples, 1);
  // A negated page: the span is dropped by negation filtering.
  engine->Extract("p2", "<p>色は赤ではありません。</p>", nullptr, &stats);
  EXPECT_EQ(stats.triples, 0);
}

TEST(ExtractionEngineTest, RealCrfEngineMatchesBatchApply) {
  // Train a real CRF on synthetic data, persist model + resources, load
  // them back into an engine and hold it byte-identical to the batch
  // apply path on a fresh crawl.
  datagen::GeneratorConfig gen;
  gen.num_products = 200;
  gen.seed = 42;
  auto crawl =
      datagen::GenerateCategory(datagen::CategoryId::kVacuumCleaner, gen);
  core::ProcessedCorpus corpus = core::ProcessCorpus(crawl.corpus);

  core::PipelineConfig config;
  config.iterations = 1;
  config.crf.max_iterations = 30;
  config.train_final_model = true;
  config.seed = 7;
  core::Pipeline pipeline(config);
  auto trained = pipeline.Run(corpus);
  ASSERT_TRUE(trained.ok());
  ASSERT_NE(trained.value().final_tagger, nullptr);
  auto* crf_tagger = dynamic_cast<crf::CrfTagger*>(
      trained.value().final_tagger.get());
  ASSERT_NE(crf_tagger, nullptr);

  const auto dir =
      std::filesystem::path(::testing::TempDir()) / "serve_crf_engine";
  std::filesystem::create_directories(dir);
  const std::string model_path = (dir / "model.crf").string();
  ASSERT_TRUE(crf_tagger->Save(model_path).ok());
  ASSERT_TRUE(core::SaveCorpus(crawl.corpus, dir.string()).ok());

  core::EngineOptions engine_options;
  engine_options.min_span_confidence = 0.5;
  auto engine = core::LoadCrfEngine(model_path, dir.string(),
                                    engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Fresh crawl, same category: the serving path must equal the batch
  // path page for page (veto rules off — they are corpus-level
  // statistics, not a serving-time concept).
  datagen::GeneratorConfig fresh = gen;
  fresh.num_products = 40;
  fresh.seed = 4242;
  auto crawl_b =
      datagen::GenerateCategory(datagen::CategoryId::kVacuumCleaner, fresh);
  // The engine tokenizes with the deployed (training-time) resources, so
  // the batch side must process the fresh pages with the same lexicons —
  // each crawl's own lexicon only covers the words it happened to emit.
  core::Corpus fresh_pages = crawl_b.corpus;
  fresh_pages.tokenizer_lexicon = crawl.corpus.tokenizer_lexicon;
  fresh_pages.pos_lexicon = crawl.corpus.pos_lexicon;
  core::ProcessedCorpus corpus_b = core::ProcessCorpus(fresh_pages);

  core::ApplyOptions batch_options;
  batch_options.min_span_confidence = 0.5;
  batch_options.veto_rules = false;
  std::vector<core::Triple> batch =
      core::ExtractWithModel(*crf_tagger, corpus_b, batch_options);

  auto scratch = core::ExtractionEngine::NewScratch();
  std::vector<core::Triple> served;
  for (const auto& page : crawl_b.corpus.pages) {
    std::vector<core::Triple> one = engine.value()->Extract(
        page.product_id, page.html, scratch.get());
    served.insert(served.end(), one.begin(), one.end());
  }
  // The engine loaded accepted_pairs from model.crf.pairs; mirror that
  // in the batch options for an apples-to-apples comparison.
  core::ApplyOptions paired = batch_options;
  paired.accepted_pairs = engine.value()->options().accepted_pairs;
  std::vector<core::Triple> batch_paired =
      core::ExtractWithModel(*crf_tagger, corpus_b, paired);
  EXPECT_EQ(served, batch_paired);
  ASSERT_FALSE(served.empty());
  (void)batch;
}

// ---------------------------------------------------------------------
// In-process server smoke

TEST(ServerSmokeTest, TwoHundredRequestsOneSwapCleanShutdown) {
  serve::ServerOptions options;
  options.unix_path = TestSocketPath("pae_serve_smoke.sock");
  options.workers = 4;
  serve::Server server(options);
  ASSERT_TRUE(server.Start().ok());
  server.Publish(MakeStubEngine("色1"));

  const std::vector<core::Triple> expected_gen1 =
      BatchReference("p1", "色1");
  const std::vector<core::Triple> expected_gen2 =
      BatchReference("p1", "色2");

  auto client = serve::Client::ConnectUnixSocket(options.unix_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  int gen1_seen = 0;
  int gen2_seen = 0;
  for (int i = 0; i < 200; ++i) {
    if (i == 100) server.Publish(MakeStubEngine("色2"));
    auto response = client.value().Extract("p1", kPageHtml);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    if (response.value().generation == 1) {
      EXPECT_EQ(response.value().triples, expected_gen1);
      ++gen1_seen;
    } else {
      ASSERT_EQ(response.value().generation, 2u);
      EXPECT_EQ(response.value().triples, expected_gen2);
      ++gen2_seen;
    }
  }
  EXPECT_GT(gen1_seen, 0);
  EXPECT_GT(gen2_seen, 0);

  auto ping = client.value().Ping();
  ASSERT_TRUE(ping.ok());
  EXPECT_EQ(ping.value().generation, 2u);
  EXPECT_EQ(ping.value().model_name, "gen-色2");

  auto stats = client.value().Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats.value().requests, 201u);
  EXPECT_EQ(stats.value().hot_swaps, 1u);
  EXPECT_EQ(stats.value().protocol_errors, 0u);

  ASSERT_TRUE(client.value().Shutdown().ok());
  server.WaitUntilStopRequested();
  server.Stop();
  EXPECT_FALSE(server.running());
}

TEST(ServerSmokeTest, ExtractBeforePublishFailsPrecondition) {
  serve::ServerOptions options;
  options.unix_path = TestSocketPath("pae_serve_empty.sock");
  options.workers = 1;
  serve::Server server(options);
  ASSERT_TRUE(server.Start().ok());
  auto client = serve::Client::ConnectUnixSocket(options.unix_path);
  ASSERT_TRUE(client.ok());
  auto response = client.value().Extract("p1", kPageHtml);
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(response.status().code(), StatusCode::kFailedPrecondition);
  // The connection survives an application-level error.
  EXPECT_TRUE(client.value().Ping().ok());
  server.Stop();
}

// ---------------------------------------------------------------------
// Deterministic load driver

TEST(LoadgenTest, ScheduleIsSeedDeterministicAndThreadIndependent) {
  serve::LoadgenOptions options;
  options.seed = 123;
  options.requests = 500;
  options.extract_fraction = 0.8;
  options.threads = 1;
  std::vector<serve::RequestSlot> a = BuildSchedule(options, 37);
  options.threads = 8;  // thread count must not shape the schedule
  std::vector<serve::RequestSlot> b = BuildSchedule(options, 37);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].product, b[i].product);
    EXPECT_EQ(a[i].is_extract, b[i].is_extract);
  }
  options.seed = 124;
  std::vector<serve::RequestSlot> c = BuildSchedule(options, 37);
  bool any_different = false;
  for (size_t i = 0; i < a.size(); ++i) {
    any_different |= a[i].product != c[i].product;
  }
  EXPECT_TRUE(any_different);
}

TEST(LoadgenTest, NURandStaysInRangeAndSkews) {
  Rng rng(7);
  std::vector<int> histogram(16, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = serve::NURand(15, 3, 16, rng);
    ASSERT_LT(v, 16u);
    ++histogram[static_cast<size_t>(v)];
  }
  // The OR of two uniform draws biases toward indices with more set
  // bits: index 15 must be drawn far more often than index 0.
  EXPECT_GT(histogram[(15 + 3) % 16], histogram[(0 + 3) % 16] * 2);
}

TEST(LoadgenTest, QuantileInterpolatesWithinBuckets) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // All mass in (1, 2]: the median sits mid-bucket.
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(bounds, {0, 10, 0, 0}, 0.5), 1.5);
  // Empty histogram: 0 by definition.
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(bounds, {0, 0, 0, 0}, 0.5), 0.0);
  // Overflow mass clamps to the last bound.
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(bounds, {0, 0, 0, 10}, 0.99), 4.0);
}

TEST(LoadgenTest, QuantileSaturationFlag) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // Overflow-bucket quantile: the clamp is an underestimate and must
  // raise the flag.
  bool saturated = false;
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(bounds, {0, 0, 0, 10}, 0.99, &saturated),
      4.0);
  EXPECT_TRUE(saturated);
  // Mixed mass: p50 interpolates inside a finite bucket (no flag), p99
  // lands in overflow (flag).
  saturated = false;
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(bounds, {8, 0, 0, 2}, 0.5, &saturated),
      0.625);
  EXPECT_FALSE(saturated);
  serve::QuantileFromBuckets(bounds, {8, 0, 0, 2}, 0.99, &saturated);
  EXPECT_TRUE(saturated);
  // The flag is sticky-or friendly: an in-range quantile never clears
  // a previously set value.
  serve::QuantileFromBuckets(bounds, {8, 0, 0, 2}, 0.5, &saturated);
  EXPECT_TRUE(saturated);
}

TEST(LoadgenTest, QuantileEdgeCases) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  bool saturated = false;
  // Target exactly on a cumulative bucket boundary: 10 samples in
  // (0, 1], 10 in (1, 2]; p50 target = 10 = the first bucket's whole
  // cumulative mass → exactly its upper bound, no spill-over.
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(bounds, {10, 10, 0, 0}, 0.5, &saturated),
      1.0);
  // Zero-count interior buckets are skipped, not interpolated across.
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(bounds, {10, 0, 10, 0}, 0.75, &saturated),
      3.0);
  // q = 0: degenerate target 0 lands at the very start of the first
  // non-empty bucket.
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(bounds, {0, 10, 0, 0}, 0.0, &saturated),
      1.0);
  // q = 1 with all mass in one finite bucket: its upper bound.
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(bounds, {0, 10, 0, 0}, 1.0, &saturated),
      2.0);
  EXPECT_FALSE(saturated);
  // Single-bucket histogram (one finite bound + overflow).
  const std::vector<double> one_bound = {0.5};
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(one_bound, {4, 0}, 0.5, &saturated), 0.25);
  EXPECT_FALSE(saturated);
  EXPECT_DOUBLE_EQ(
      serve::QuantileFromBuckets(one_bound, {0, 4}, 0.5, &saturated), 0.5);
  EXPECT_TRUE(saturated);
}

TEST(LoadgenTest, AggregatesAreIdenticalAtOneAndEightThreads) {
  serve::ServerOptions server_options;
  server_options.unix_path = TestSocketPath("pae_serve_loadgen.sock");
  server_options.workers = 8;
  serve::Server server(server_options);
  ASSERT_TRUE(server.Start().ok());
  server.Publish(MakeStubEngine("色"));

  std::vector<serve::LoadgenProduct> products;
  for (int i = 0; i < 7; ++i) {
    products.push_back(serve::LoadgenProduct{
        "p" + std::to_string(i), kPageHtml});
  }
  auto connect = [&server_options] {
    return serve::Client::ConnectUnixSocket(server_options.unix_path);
  };

  serve::LoadgenOptions options;
  options.seed = 99;
  options.requests = 400;
  options.extract_fraction = 0.9;

  options.threads = 1;
  auto single = RunLoadgen(options, products, connect);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  options.threads = 8;
  auto eight = RunLoadgen(options, products, connect);
  ASSERT_TRUE(eight.ok()) << eight.status().ToString();
  server.Stop();

  EXPECT_EQ(single.value().requests_sent, 400u);
  EXPECT_EQ(eight.value().requests_sent, 400u);
  EXPECT_EQ(single.value().ok_responses, eight.value().ok_responses);
  EXPECT_EQ(single.value().triples, eight.value().triples);
  EXPECT_EQ(single.value().checksum, eight.value().checksum);
  EXPECT_GT(single.value().triples, 0u);
  EXPECT_EQ(single.value().error_responses, 0u);
  EXPECT_EQ(eight.value().transport_errors, 0u);
}

TEST(LoadgenTest, SwapHookFiresExactlyOnceAtThreshold) {
  serve::ServerOptions server_options;
  server_options.unix_path = TestSocketPath("pae_serve_swap.sock");
  server_options.workers = 4;
  serve::Server server(server_options);
  ASSERT_TRUE(server.Start().ok());
  server.Publish(MakeStubEngine("色1"));

  std::vector<serve::LoadgenProduct> products = {
      serve::LoadgenProduct{"p1", kPageHtml}};
  auto connect = [&server_options] {
    return serve::Client::ConnectUnixSocket(server_options.unix_path);
  };
  std::atomic<int> swaps{0};
  serve::LoadgenOptions options;
  options.requests = 200;
  options.threads = 2;
  options.swap_at = 100;
  auto report = RunLoadgen(options, products, connect, [&] {
    swaps.fetch_add(1, std::memory_order_seq_cst);
    server.Publish(MakeStubEngine("色2"));
  });
  server.Stop();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(swaps.load(std::memory_order_seq_cst), 1);
  EXPECT_EQ(report.value().generation_min, 1u);
  EXPECT_EQ(report.value().generation_max, 2u);
}

}  // namespace
}  // namespace pae
