// Attribute-partition planner (§VIII-D future work).

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/partition.h"
#include "datagen/generator.h"

namespace pae {
namespace {

core::ProcessedCorpus Corpus(datagen::CategoryId id, int products,
                             datagen::GeneratedCategory* out) {
  datagen::GeneratorConfig config;
  config.num_products = products;
  config.seed = 42;
  *out = datagen::GenerateCategory(id, config);
  return core::ProcessCorpus(out->corpus);
}

core::PipelineConfig FastConfig() {
  core::PipelineConfig config;
  config.crf.max_iterations = 30;
  return config;
}

TEST(PartitionTest, ProducesACompletePartition) {
  datagen::GeneratedCategory category;
  core::ProcessedCorpus corpus =
      Corpus(datagen::CategoryId::kDigitalCameras, 400, &category);
  auto plan = core::PlanAttributePartition(corpus, FastConfig(),
                                           core::PartitionOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  // Every seed attribute is assigned to exactly one group.
  std::unordered_set<std::string> assigned;
  for (const auto& a : plan.value().global_group) {
    EXPECT_TRUE(assigned.insert(a).second);
  }
  for (const auto& a : plan.value().specialized_group) {
    EXPECT_TRUE(assigned.insert(a).second);
  }
  EXPECT_EQ(assigned.size(), plan.value().diagnostics.size());
  EXPECT_FALSE(plan.value().diagnostics.empty());
}

TEST(PartitionTest, DiagnosticsAreValidRates) {
  datagen::GeneratedCategory category;
  core::ProcessedCorpus corpus =
      Corpus(datagen::CategoryId::kVacuumCleaner, 300, &category);
  auto plan = core::PlanAttributePartition(corpus, FastConfig(),
                                           core::PartitionOptions{});
  ASSERT_TRUE(plan.ok());
  for (const auto& diag : plan.value().diagnostics) {
    EXPECT_GE(diag.global_recall, 0.0);
    EXPECT_LE(diag.global_recall, 1.0);
    EXPECT_GE(diag.global_precision, 0.0);
    EXPECT_LE(diag.global_precision, 1.0);
    if (!diag.tried_specialized) {
      EXPECT_FALSE(diag.assign_specialized);
    }
  }
}

TEST(PartitionTest, StrictGuardsKeepEverythingGlobal) {
  datagen::GeneratedCategory category;
  core::ProcessedCorpus corpus =
      Corpus(datagen::CategoryId::kLadiesBags, 250, &category);
  core::PartitionOptions options;
  options.min_recall_gain = 1.1;  // unsatisfiable
  auto plan =
      core::PlanAttributePartition(corpus, FastConfig(), options);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value().specialized_group.empty());
}

TEST(PartitionTest, DeterministicGivenSeed) {
  datagen::GeneratedCategory category;
  core::ProcessedCorpus corpus =
      Corpus(datagen::CategoryId::kDigitalCameras, 300, &category);
  auto a = core::PlanAttributePartition(corpus, FastConfig(),
                                        core::PartitionOptions{});
  auto b = core::PlanAttributePartition(corpus, FastConfig(),
                                        core::PartitionOptions{});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().specialized_group, b.value().specialized_group);
  EXPECT_EQ(a.value().global_group, b.value().global_group);
}

TEST(PartitionTest, EmptyCorpusFails) {
  core::Corpus corpus;
  corpus.language = text::Language::kJa;
  core::ProcessedCorpus processed = core::ProcessCorpus(corpus);
  auto plan = core::PlanAttributePartition(processed, FastConfig(),
                                           core::PartitionOptions{});
  EXPECT_FALSE(plan.ok());
}

}  // namespace
}  // namespace pae
