#include <gtest/gtest.h>

#include <unordered_map>

#include "core/cleaning.h"
#include "core/document.h"
#include "core/eval.h"
#include "core/normalize.h"
#include "core/preprocess.h"
#include "core/tagging.h"
#include "core/types.h"
#include "util/rng.h"

namespace pae::core {
namespace {

// ---------------- normalize ----------------

TEST(NormalizeTest, StripsSpacesAndLowercases) {
  EXPECT_EQ(NormalizeValue("2,5 kg"), "2,5kg");
  EXPECT_EQ(NormalizeValue("  A B C "), "abc");
  EXPECT_EQ(NormalizeValue("重量　5kg"), "重量5kg");  // ideographic space
  EXPECT_EQ(NormalizeValue(""), "");
}

TEST(NormalizeTest, PairKey) {
  EXPECT_EQ(PairKey("a", "b"), "a\tb");
}

// ---------------- distant supervision ----------------

text::LabeledSequence Sent(std::vector<std::string> tokens) {
  text::LabeledSequence seq;
  seq.tokens = std::move(tokens);
  seq.pos.assign(seq.tokens.size(), "NN");
  return seq;
}

std::vector<SeedPair> SimpleSeed() {
  return {
      {"色", {"赤"}, "赤"},
      {"重量", {"5", "kg"}, "5kg"},
      {"重量", {"2", ".", "5", "kg"}, "2.5kg"},
  };
}

TEST(DistantSupervisorTest, LabelsOccurrences) {
  DistantSupervisor ds(SimpleSeed());
  auto seq = Sent({"色", "は", "赤", "です"});
  EXPECT_EQ(ds.Label(&seq), 1);
  EXPECT_EQ(seq.labels,
            (std::vector<std::string>{"O", "O", "B-色", "O"}));
}

TEST(DistantSupervisorTest, MultiTokenValue) {
  DistantSupervisor ds(SimpleSeed());
  auto seq = Sent({"重量", "は", "5", "kg", "です"});
  ds.Label(&seq);
  EXPECT_EQ(seq.labels[2], "B-重量");
  EXPECT_EQ(seq.labels[3], "I-重量");
}

TEST(DistantSupervisorTest, LongestMatchWins) {
  DistantSupervisor ds(SimpleSeed());
  auto seq = Sent({"2", ".", "5", "kg"});
  EXPECT_EQ(ds.Label(&seq), 1);
  EXPECT_EQ(seq.labels,
            (std::vector<std::string>{"B-重量", "I-重量", "I-重量",
                                      "I-重量"}));
}

TEST(DistantSupervisorTest, PartialSuffixMatchIsTheDocumentedNoise) {
  // Without the decimal value in the seed, "2.5kg" gets its suffix
  // "5kg" tagged — the §VIII-A label-noise mechanism.
  DistantSupervisor ds({{"重量", {"5", "kg"}, "5kg"}});
  auto seq = Sent({"2", ".", "5", "kg"});
  EXPECT_EQ(ds.Label(&seq), 1);
  EXPECT_EQ(seq.labels,
            (std::vector<std::string>{"O", "O", "B-重量", "I-重量"}));
}

TEST(DistantSupervisorTest, NonOverlappingLeftToRight) {
  DistantSupervisor ds({{"a", {"x", "y"}, "xy"}, {"b", {"y", "z"}, "yz"}});
  auto seq = Sent({"x", "y", "z"});
  ds.Label(&seq);
  // "xy" claims positions 0-1; "yz" cannot overlap.
  EXPECT_EQ(seq.labels,
            (std::vector<std::string>{"B-a", "I-a", "O"}));
}

TEST(DistantSupervisorTest, EarlierPairWinsTies) {
  DistantSupervisor ds({{"first", {"v"}, "v"}, {"second", {"v"}, "v"}});
  auto seq = Sent({"v"});
  ds.Label(&seq);
  EXPECT_EQ(seq.labels[0], "B-first");
}

TEST(DistantSupervisorTest, EmptySentence) {
  DistantSupervisor ds(SimpleSeed());
  auto seq = Sent({});
  EXPECT_EQ(ds.Label(&seq), 0);
  EXPECT_TRUE(seq.labels.empty());
}

// ---------------- attribute aggregation ----------------

CandidateSet MakeCandidates(
    const std::vector<std::tuple<std::string, std::string, int>>& raw) {
  CandidateSet set;
  for (const auto& [attr, value, count] : raw) {
    CandidatePair pair;
    pair.attribute = attr;
    pair.value = value;
    pair.count = count;
    for (int i = 0; i < count; ++i) {
      pair.product_ids.push_back("p" + std::to_string(i));
    }
    set.pairs.push_back(std::move(pair));
  }
  return set;
}

TEST(AggregationTest, MergesHighOverlapSurfaces) {
  CandidateSet set = MakeCandidates({
      {"メーカー", "A社", 5},
      {"メーカー", "B社", 4},
      {"メーカー", "C社", 3},
      {"製造元", "A社", 2},
      {"製造元", "B社", 2},
      {"カラー", "赤", 6},
      {"カラー", "青", 5},
  });
  auto mapping = AggregateAttributes(set, AggregationConfig{});
  EXPECT_EQ(mapping.at("製造元"), "メーカー");  // higher support wins
  EXPECT_EQ(mapping.at("メーカー"), "メーカー");
  EXPECT_EQ(mapping.at("カラー"), "カラー");    // disjoint stays apart
}

TEST(AggregationTest, NoMergeWithoutOverlap) {
  CandidateSet set = MakeCandidates({
      {"a", "v1", 3},
      {"a", "v2", 3},
      {"b", "w1", 3},
      {"b", "w2", 3},
  });
  auto mapping = AggregateAttributes(set, AggregationConfig{});
  EXPECT_EQ(mapping.at("a"), "a");
  EXPECT_EQ(mapping.at("b"), "b");
}

TEST(AggregationTest, ThresholdControlsMerging) {
  CandidateSet set = MakeCandidates({
      {"a", "shared", 3},
      {"a", "v1", 3},
      {"a", "v2", 3},
      {"a", "v3", 3},
      {"b", "shared", 3},
      {"b", "w1", 3},
      {"b", "w2", 3},
      {"b", "w3", 3},
  });
  AggregationConfig strict;
  strict.threshold = 0.9;
  auto mapping = AggregateAttributes(set, strict);
  EXPECT_EQ(mapping.at("a"), "a");
  EXPECT_EQ(mapping.at("b"), "b");
}

// ---------------- veto rules ----------------

TaggedCandidate Cand(const std::string& attr,
                     std::vector<std::string> tokens, int items) {
  TaggedCandidate c;
  c.attribute = attr;
  c.value_tokens = std::move(tokens);
  std::string display;
  for (const auto& t : c.value_tokens) display += t;
  c.value_display = display;
  c.item_count = items;
  return c;
}

TEST(VetoTest, SymbolEntitiesRemoved) {
  CleaningStats stats;
  auto out = ApplyVetoRules({Cand("a", {";"}, 5), Cand("a", {"赤"}, 5)},
                            VetoConfig{}, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value_display, "赤");
  EXPECT_EQ(stats.veto_symbol, 1u);
}

TEST(VetoTest, MarkupRemoved) {
  CleaningStats stats;
  auto out = ApplyVetoRules(
      {Cand("a", {"<b>", "赤"}, 5), Cand("a", {"★", "白"}, 5),
       Cand("a", {"青"}, 5)},
      VetoConfig{}, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.veto_markup, 2u);
}

TEST(VetoTest, LongValuesRemoved) {
  CleaningStats stats;
  std::string long_token(40, 'x');
  auto out = ApplyVetoRules(
      {Cand("a", {long_token}, 5), Cand("a", {"ok"}, 5)}, VetoConfig{},
      &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.veto_long, 1u);
}

TEST(VetoTest, LengthIsMeasuredInCodepoints) {
  CleaningStats stats;
  // 29 CJK chars = 87 bytes but below the 30-codepoint limit.
  std::string cjk;
  for (int i = 0; i < 29; ++i) cjk += "赤";
  auto out =
      ApplyVetoRules({Cand("a", {cjk}, 5)}, VetoConfig{}, &stats);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(stats.veto_long, 0u);
}

TEST(VetoTest, UnpopularTailRemoved) {
  CleaningStats stats;
  std::vector<TaggedCandidate> candidates;
  for (int i = 0; i < 10; ++i) {
    candidates.push_back(
        Cand("a", {"v" + std::to_string(i)}, 100 - i * 10));
  }
  auto out = ApplyVetoRules(std::move(candidates), VetoConfig{}, &stats);
  EXPECT_EQ(out.size(), 8u);  // top 80 %
  EXPECT_EQ(stats.veto_unpopular, 2u);
  for (const auto& c : out) EXPECT_GT(c.item_count, 10);
}

TEST(VetoTest, UnpopularRuleIsPerAttribute) {
  CleaningStats stats;
  std::vector<TaggedCandidate> candidates;
  for (int i = 0; i < 5; ++i) {
    candidates.push_back(Cand("a", {"a" + std::to_string(i)}, 10 - i));
    candidates.push_back(Cand("b", {"b" + std::to_string(i)}, 10 - i));
  }
  auto out = ApplyVetoRules(std::move(candidates), VetoConfig{}, &stats);
  EXPECT_EQ(out.size(), 8u);  // ceil(0.8·5)=4 per attribute
}

TEST(VetoTest, VetoIsMonotoneInKeepFraction) {
  // Property: a larger keep fraction never yields fewer survivors.
  std::vector<TaggedCandidate> base;
  for (int i = 0; i < 12; ++i) {
    base.push_back(Cand("a", {"v" + std::to_string(i)}, 50 - i));
  }
  size_t prev = 0;
  for (double keep : {0.2, 0.5, 0.8, 1.0}) {
    CleaningStats stats;
    VetoConfig config;
    config.unpopular_keep_fraction = keep;
    auto out = ApplyVetoRules(base, config, &stats);
    EXPECT_GE(out.size(), prev);
    prev = out.size();
  }
}

// ---------------- semantic cleaner ----------------

TEST(SemanticCleanerTest, MergedToken) {
  EXPECT_EQ(SemanticCleaner::MergedToken({"solo"}), "solo");
  EXPECT_EQ(SemanticCleaner::MergedToken({"100", "%", "cotton"}),
            "100_%_cotton");
}

TEST(SemanticCleanerTest, RemovesDriftedValues) {
  // Build a corpus where colors live in color contexts and one drifted
  // word ("flower") lives in a different context.
  Corpus corpus;
  corpus.category = "t";
  corpus.language = text::Language::kDe;
  Rng rng(13);
  const std::vector<std::string> colors = {"rot", "blau", "gruen", "weiss"};
  for (int i = 0; i < 500; ++i) {
    ProductPage page;
    page.product_id = "p" + std::to_string(i);
    const std::string c1 = colors[rng.NextBounded(4)];
    const std::string c2 = colors[rng.NextBounded(4)];
    page.html = "<p>farbe ist " + c1 + " und " + c2 + " lack.</p>" +
                "<p>blume hat form rosette und blatt stern garten.</p>";
    corpus.pages.push_back(std::move(page));
  }
  ProcessedCorpus processed = ProcessCorpus(corpus);

  SemanticCleaner::Config config;
  config.threshold = 0.5;
  config.word2vec.dim = 24;
  config.word2vec.epochs = 6;
  SemanticCleaner cleaner(config);
  std::vector<SeedPair> merge;
  ASSERT_TRUE(cleaner.Train(processed, merge).ok());

  std::unordered_map<std::string, std::vector<std::vector<std::string>>>
      known;
  known["farbe"] = {{"rot"}, {"blau"}, {"gruen"}};

  CleaningStats stats;
  auto out = cleaner.Filter(
      {Cand("farbe", {"weiss"}, 5), Cand("farbe", {"rosette"}, 5)}, known,
      &stats);
  // The in-topic value survives; the drifted one is removed.
  bool weiss_kept = false, rosette_kept = false;
  for (const auto& c : out) {
    if (c.value_display == "weiss") weiss_kept = true;
    if (c.value_display == "rosette") rosette_kept = true;
  }
  EXPECT_TRUE(weiss_kept);
  EXPECT_FALSE(rosette_kept);
  EXPECT_EQ(stats.semantic_removed, 1u);
}

TEST(SemanticCleanerTest, SmallCoreSkipsFiltering) {
  Corpus corpus;
  corpus.language = text::Language::kDe;
  ProductPage page;
  page.product_id = "p";
  page.html = "<p>a b c d e f g h.</p>";
  corpus.pages.assign(30, page);
  ProcessedCorpus processed = ProcessCorpus(corpus);
  SemanticCleaner cleaner(SemanticCleaner::Config{});
  ASSERT_TRUE(cleaner.Train(processed, {}).ok());
  std::unordered_map<std::string, std::vector<std::vector<std::string>>>
      known;  // no known values at all
  CleaningStats stats;
  auto out = cleaner.Filter({Cand("x", {"a"}, 3)}, known, &stats);
  EXPECT_EQ(out.size(), 1u);  // kept: no reliable core
}

TEST(SemanticCleanerTest, CachedNormScoringMatchesPerPairCosines) {
  // Filter now normalizes the core embeddings once per pass and scores
  // candidates with a single MatVec instead of per-pair cosine calls
  // that recompute both norms every time. This replays the filtering
  // decision with the naive per-pair formula and asserts both agree.
  Corpus corpus;
  corpus.category = "t";
  corpus.language = text::Language::kDe;
  Rng rng(13);
  const std::vector<std::string> colors = {"rot", "blau", "gruen", "weiss"};
  for (int i = 0; i < 300; ++i) {
    ProductPage page;
    page.product_id = "p" + std::to_string(i);
    const std::string c1 = colors[rng.NextBounded(4)];
    const std::string c2 = colors[rng.NextBounded(4)];
    page.html = "<p>farbe ist " + c1 + " und " + c2 + " lack.</p>" +
                "<p>blume hat form rosette und blatt stern garten.</p>";
    corpus.pages.push_back(std::move(page));
  }
  ProcessedCorpus processed = ProcessCorpus(corpus);

  SemanticCleaner::Config config;
  config.threshold = 0.5;
  config.core_size = 0;  // core = every in-vocab known value (replayable)
  config.word2vec.dim = 24;
  config.word2vec.epochs = 6;
  SemanticCleaner cleaner(config);
  ASSERT_TRUE(cleaner.Train(processed, {}).ok());

  std::unordered_map<std::string, std::vector<std::vector<std::string>>>
      known;
  known["farbe"] = {{"rot"}, {"blau"}, {"gruen"}, {"weiss"}};
  const std::vector<TaggedCandidate> candidates = {
      Cand("farbe", {"rot"}, 5),     Cand("farbe", {"lack"}, 4),
      Cand("farbe", {"rosette"}, 3), Cand("farbe", {"stern"}, 2),
      Cand("farbe", {"garten"}, 2),  Cand("farbe", {"blatt"}, 1)};

  CleaningStats stats;
  const auto kept = cleaner.Filter(candidates, known, &stats);
  std::unordered_set<std::string> kept_values;
  for (const auto& c : kept) kept_values.insert(c.value_display);

  // Naive replica: per-pair similarities, norms recomputed every call.
  const embed::Word2Vec& model = cleaner.model();
  std::vector<std::string> core;
  for (const auto& tokens : known["farbe"]) {
    const std::string merged = SemanticCleaner::MergedToken(tokens);
    if (model.Contains(merged)) core.push_back(merged);
  }
  ASSERT_GE(core.size(), 3u);
  auto naive_score = [&](const std::string& value) {
    double log_sum = 0;
    int n = 0;
    for (const std::string& member : core) {
      if (member == value) continue;
      const double cos = model.Similarity(value, member);
      log_sum += std::log(std::max(1e-6, (cos + 1.0) / 2.0));
      ++n;
    }
    return (n > 0) ? std::exp(log_sum / n) : 1.0;
  };
  double cohesion = 0;
  for (const std::string& member : core) cohesion += naive_score(member);
  cohesion /= static_cast<double>(core.size());
  const double bar = std::max(config.threshold,
                              config.relative_alpha * cohesion);
  size_t expected_removed = 0;
  for (const auto& c : candidates) {
    const std::string merged = SemanticCleaner::MergedToken(c.value_tokens);
    const bool expect_keep =
        !model.Contains(merged) || naive_score(merged) >= bar;
    EXPECT_EQ(kept_values.count(c.value_display) > 0, expect_keep)
        << c.value_display;
    if (!expect_keep) ++expected_removed;
  }
  EXPECT_EQ(stats.semantic_removed, expected_removed);
}

// ---------------- evaluation ----------------

TruthSample MakeTruth() {
  TruthSample truth;
  truth.attribute_aliases["色"] = "カラー";
  truth.attribute_aliases["カラー"] = "カラー";
  auto add = [&](const std::string& pid, const std::string& attr,
                 const std::string& value, bool correct) {
    TruthEntry e;
    e.triple = {pid, attr, value};
    e.triple_correct = correct;
    truth.entries.push_back(e);
    if (correct) {
      truth.valid_pairs.insert(
          PairKey(truth.Canonical(attr), NormalizeValue(value)));
    }
  };
  add("p1", "カラー", "赤", true);
  add("p1", "重量", "5kg", true);
  add("p2", "カラー", "青", true);
  add("p2", "カラー", "偽", false);
  return truth;
}

TEST(EvalTest, CorrectIncorrectMaybeUnjudged) {
  TruthSample truth = MakeTruth();
  std::vector<Triple> triples = {
      {"p1", "カラー", "赤"},   // correct
      {"p2", "カラー", "偽"},   // judged incorrect
      {"p1", "カラー", "白"},   // maybe incorrect (same pid+attr)
      {"p9", "カラー", "赤"},   // unjudged (unknown product)
  };
  TripleMetrics m = EvaluateTriples(triples, truth, 10);
  EXPECT_EQ(m.total, 4u);
  EXPECT_EQ(m.correct, 1u);
  EXPECT_EQ(m.incorrect, 1u);
  EXPECT_EQ(m.maybe_incorrect, 1u);
  EXPECT_EQ(m.unjudged, 1u);
  EXPECT_NEAR(m.precision, 100.0 / 3.0, 1e-9);
  EXPECT_EQ(m.covered_products, 3u);
  EXPECT_NEAR(m.coverage, 30.0, 1e-9);
}

TEST(EvalTest, AliasAndNormalizationApplied) {
  TruthSample truth = MakeTruth();
  // Surface name 色 and a spaced value still match.
  std::vector<Triple> triples = {{"p1", "色", " 赤 "}};
  TripleMetrics m = EvaluateTriples(triples, truth, 10);
  EXPECT_EQ(m.correct, 1u);
}

TEST(EvalTest, DuplicateTriplesCountedOnce) {
  TruthSample truth = MakeTruth();
  std::vector<Triple> triples = {{"p1", "カラー", "赤"},
                                 {"p1", "色", "赤"}};
  TripleMetrics m = EvaluateTriples(triples, truth, 10);
  EXPECT_EQ(m.total, 1u);
}

TEST(EvalTest, EmptySystemOutput) {
  TripleMetrics m = EvaluateTriples({}, MakeTruth(), 10);
  EXPECT_EQ(m.total, 0u);
  EXPECT_EQ(m.precision, 0.0);
  EXPECT_EQ(m.coverage, 0.0);
}

TEST(EvalTest, PairPrecision) {
  TruthSample truth = MakeTruth();
  std::vector<AttributeValue> pairs = {
      {"カラー", "赤"},  // valid
      {"色", "青"},      // valid via alias
      {"カラー", "紫"},  // not a valid pair
  };
  PairMetrics m = EvaluatePairs(pairs, truth);
  EXPECT_EQ(m.total, 3u);
  EXPECT_EQ(m.valid, 2u);
  EXPECT_NEAR(m.precision, 200.0 / 3.0, 1e-9);
}

TEST(EvalTest, PerAttributeCoverage) {
  TruthSample truth = MakeTruth();
  std::vector<Triple> triples = {
      {"p1", "カラー", "赤"},
      {"p2", "色", "青"},
      {"p1", "重量", "5kg"},
  };
  auto coverage = PerAttributeCoverage(triples, truth, 10);
  EXPECT_NEAR(coverage["カラー"], 20.0, 1e-9);  // p1+p2, alias folded
  EXPECT_NEAR(coverage["重量"], 10.0, 1e-9);
}

// ---------------- document processing ----------------

TEST(DocumentTest, ProcessesPagesIntoSentences) {
  Corpus corpus;
  corpus.language = text::Language::kJa;
  corpus.tokenizer_lexicon = {"重量", "です"};
  ProductPage page;
  page.product_id = "p1";
  page.html =
      "<html><body><p>重量は5kgです。</p>"
      "<table><tr><th>重量</th><td>5kg</td></tr>"
      "<tr><th>色</th><td>赤</td></tr></table></body></html>";
  corpus.pages.push_back(page);
  ProcessedCorpus processed = ProcessCorpus(corpus);
  ASSERT_EQ(processed.pages.size(), 1u);
  EXPECT_EQ(processed.pages[0].tables.size(), 1u);
  ASSERT_FALSE(processed.pages[0].sentences.empty());
  const auto& first = processed.pages[0].sentences[0];
  EXPECT_EQ(first.tokens[0], "重量");
  EXPECT_EQ(first.pos.size(), first.tokens.size());
}

TEST(DocumentTest, DetokenizeByLanguage) {
  Corpus ja;
  ja.language = text::Language::kJa;
  ProcessedCorpus pj = ProcessCorpus(ja);
  EXPECT_EQ(pj.Detokenize({"a", "b"}), "ab");
  Corpus de;
  de.language = text::Language::kDe;
  ProcessedCorpus pd = ProcessCorpus(de);
  EXPECT_EQ(pd.Detokenize({"a", "b"}), "a b");
}

}  // namespace
}  // namespace pae::core
