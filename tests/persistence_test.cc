// Serialization: BinaryWriter/Reader primitives, model Save/Load
// round-trips (CRF, BiLSTM, word2vec), and the on-disk corpus layout.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/corpus_io.h"
#include "core/model_artifact.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "embed/word2vec.h"
#include "lstm/bilstm_tagger.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/serial.h"

namespace pae {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("pae_test_" + name)).string();
}

// ---------------- binary primitives ----------------

TEST(SerialTest, ScalarAndVectorRoundTrip) {
  const std::string path = TempPath("scalars.bin");
  {
    BinaryWriter writer(path, 0xABCD0001, 3);
    writer.WriteU32(42);
    writer.WriteI32(-7);
    writer.WriteU64(1ULL << 40);
    writer.WriteDouble(3.25);
    writer.WriteFloat(-1.5f);
    writer.WriteString("重量=5kg");
    writer.WriteDoubleVec({1.0, 2.0, 3.0});
    writer.WriteFloatVec({0.5f});
    writer.WriteStringVec({"a", "", "長い文字列"});
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path, 0xABCD0001, 3);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  uint32_t u32 = 0;
  int32_t i32 = 0;
  uint64_t u64 = 0;
  double d = 0;
  float f = 0;
  std::string s;
  std::vector<double> dv;
  std::vector<float> fv;
  std::vector<std::string> sv;
  EXPECT_TRUE(reader.ReadU32(&u32));
  EXPECT_TRUE(reader.ReadI32(&i32));
  EXPECT_TRUE(reader.ReadU64(&u64));
  EXPECT_TRUE(reader.ReadDouble(&d));
  EXPECT_TRUE(reader.ReadFloat(&f));
  EXPECT_TRUE(reader.ReadString(&s));
  EXPECT_TRUE(reader.ReadDoubleVec(&dv));
  EXPECT_TRUE(reader.ReadFloatVec(&fv));
  EXPECT_TRUE(reader.ReadStringVec(&sv));
  EXPECT_EQ(u32, 42u);
  EXPECT_EQ(i32, -7);
  EXPECT_EQ(u64, 1ULL << 40);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(f, -1.5f);
  EXPECT_EQ(s, "重量=5kg");
  EXPECT_EQ(dv, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(sv, (std::vector<std::string>{"a", "", "長い文字列"}));
  std::remove(path.c_str());
}

TEST(SerialTest, BadMagicRejected) {
  const std::string path = TempPath("magic.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path, 0x22222222, 1);
  EXPECT_FALSE(reader.ok());
  std::remove(path.c_str());
}

TEST(SerialTest, WrongVersionRejected) {
  const std::string path = TempPath("version.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path, 0x11111111, 2);
  EXPECT_FALSE(reader.ok());
  std::remove(path.c_str());
}

TEST(SerialTest, TruncatedFileFailsGracefully) {
  const std::string path = TempPath("trunc.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    writer.WriteU32(1234);
    ASSERT_TRUE(writer.Finish().ok());
  }
  fs::resize_file(path, 9);  // header (8) + 1 byte
  BinaryReader reader(path, 0x11111111, 1);
  ASSERT_TRUE(reader.ok());
  uint32_t v = 0;
  EXPECT_FALSE(reader.ReadU32(&v));
  std::remove(path.c_str());
}

TEST(SerialTest, MissingFileIsNotFound) {
  BinaryReader reader(TempPath("does_not_exist.bin"), 1, 1);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

// ---------------- corrupt length words & silent failures ----------------

// Every BinaryReader failure must surface through status(), not only
// through the bool return — callers that forward reader.status() (model
// Load functions) must never report Ok for a corrupt file.

TEST(SerialTest, TruncatedReadLatchesNonOkStatus) {
  const std::string path = TempPath("trunc_status.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    writer.WriteU32(1234);
    ASSERT_TRUE(writer.Finish().ok());
  }
  fs::resize_file(path, 9);
  BinaryReader reader(path, 0x11111111, 1);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader.status().ok());
  uint32_t v = 0;
  EXPECT_FALSE(reader.ReadU32(&v));
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.status().ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(SerialTest, OversizeLengthWordFailsEveryContainerReader) {
  // A corrupt length word above kMaxSerialElements must fail the read
  // AND latch a non-Ok status — this was the silent-failure bug: the
  // read returned false but ok()/status() still claimed success.
  const std::string path = TempPath("oversize_len.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    writer.WriteU32(kMaxSerialElements + 1);  // bogus length word
    ASSERT_TRUE(writer.Finish().ok());
  }
  const auto expect_fails = [&](auto read_fn) {
    BinaryReader reader(path, 0x11111111, 1);
    ASSERT_TRUE(reader.ok());
    EXPECT_FALSE(read_fn(reader));
    EXPECT_FALSE(reader.ok());
    ASSERT_FALSE(reader.status().ok());
    EXPECT_EQ(reader.status().code(), StatusCode::kOutOfRange);
  };
  expect_fails([](BinaryReader& r) {
    std::string s;
    return r.ReadString(&s);
  });
  expect_fails([](BinaryReader& r) {
    std::vector<double> v;
    return r.ReadDoubleVec(&v);
  });
  expect_fails([](BinaryReader& r) {
    std::vector<float> v;
    return r.ReadFloatVec(&v);
  });
  expect_fails([](BinaryReader& r) {
    std::vector<std::string> v;
    return r.ReadStringVec(&v);
  });
  std::remove(path.c_str());
}

TEST(SerialTest, MidVectorEofLatchesNonOkStatus) {
  const std::string path = TempPath("mid_vector_eof.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    writer.WriteDoubleVec({1, 2, 3, 4, 5, 6, 7, 8});
    ASSERT_TRUE(writer.Finish().ok());
  }
  // Header (8) + length word (4) + 3.5 doubles: EOF mid-payload.
  fs::resize_file(path, 8 + 4 + 28);
  BinaryReader reader(path, 0x11111111, 1);
  ASSERT_TRUE(reader.ok());
  std::vector<double> v;
  EXPECT_FALSE(reader.ReadDoubleVec(&v));
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(SerialTest, MidStringVecEofLatchesNonOkStatus) {
  const std::string path = TempPath("mid_stringvec_eof.bin");
  size_t full_size = 0;
  {
    BinaryWriter writer(path, 0x11111111, 1);
    writer.WriteStringVec({"first", "second", "third"});
    ASSERT_TRUE(writer.Finish().ok());
    full_size = static_cast<size_t>(fs::file_size(path));
  }
  fs::resize_file(path, full_size - 4);  // cut into the last string
  BinaryReader reader(path, 0x11111111, 1);
  ASSERT_TRUE(reader.ok());
  std::vector<std::string> v;
  EXPECT_FALSE(reader.ReadStringVec(&v));
  EXPECT_FALSE(reader.ok());
  EXPECT_FALSE(reader.status().ok());
  std::remove(path.c_str());
}

TEST(SerialTest, WriterRefusesOversizeContainers) {
  // The writer shares the reader's element bound, so a container whose
  // length word would be unreadable (or, at > 4 GiB, silently truncated
  // from size_t to uint32_t) is refused up front and Finish() reports it.
  const std::string path = TempPath("oversize_write.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    const std::string huge(static_cast<size_t>(kMaxSerialElements) + 1, 'x');
    writer.WriteString(huge);
    EXPECT_FALSE(writer.ok());
    const Status finish = writer.Finish();
    ASSERT_FALSE(finish.ok());
    EXPECT_EQ(finish.code(), StatusCode::kOutOfRange);
  }
  // Nothing beyond the header may have been written for the refused
  // container — a partial/truncated length word on disk would defeat
  // the point.
  EXPECT_LE(fs::file_size(path), 8u);
  std::remove(path.c_str());
}

TEST(SerialTest, WriterOversizeErrorLatchesFirstError) {
  const std::string path = TempPath("oversize_latch.bin");
  BinaryWriter writer(path, 0x11111111, 1);
  const std::string huge(static_cast<size_t>(kMaxSerialElements) + 1, 'x');
  writer.WriteString(huge);
  writer.WriteString("small");  // later valid writes don't clear the error
  const Status finish = writer.Finish();
  ASSERT_FALSE(finish.ok());
  EXPECT_EQ(finish.code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

// ---------------- model round-trips ----------------

std::vector<text::LabeledSequence> TinyTrainingData() {
  Rng rng(9);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < 80; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"重量", "は", v, "kg", "です"};
    seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
    seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
    data.push_back(std::move(seq));
  }
  return data;
}

TEST(PersistenceTest, CrfSaveLoadPredictsIdentically) {
  crf::CrfOptions options;
  options.max_iterations = 25;
  crf::CrfTagger original(options);
  ASSERT_TRUE(original.Train(TinyTrainingData()).ok());
  const std::string path = TempPath("model.crf");
  ASSERT_TRUE(original.Save(path).ok());

  crf::CrfTagger restored;
  ASSERT_TRUE(restored.Load(path).ok());

  text::LabeledSequence probe;
  probe.tokens = {"重量", "は", "7", "kg", "です"};
  probe.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
  EXPECT_EQ(restored.Predict(probe), original.Predict(probe));
  auto scored_a = original.PredictScored(probe);
  auto scored_b = restored.PredictScored(probe);
  ASSERT_EQ(scored_a.confidence.size(), scored_b.confidence.size());
  for (size_t i = 0; i < scored_a.confidence.size(); ++i) {
    EXPECT_NEAR(scored_a.confidence[i], scored_b.confidence[i], 1e-12);
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, CrfSaveUntrainedFails) {
  crf::CrfTagger untrained;
  EXPECT_FALSE(untrained.Save(TempPath("untrained.crf")).ok());
}

// Overwrites `count` bytes at `offset` in the file at `path`.
void CorruptBytes(const std::string& path, size_t offset, size_t count,
                  char byte) {
  std::fstream file(path,
                    std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open()) << path;
  file.seekp(static_cast<std::streamoff>(offset));
  for (size_t i = 0; i < count; ++i) file.put(byte);
  ASSERT_TRUE(file.good());
}

TEST(PersistenceTest, CrfLoadRejectsCorruptModels) {
  // A corrupt model file must never load as Ok — a tagger silently
  // built from garbage weights would poison every downstream triple.
  crf::CrfOptions options;
  options.max_iterations = 10;
  crf::CrfTagger original(options);
  ASSERT_TRUE(original.Train(TinyTrainingData()).ok());
  const std::string good = TempPath("corrupt_base.crf");
  ASSERT_TRUE(original.Save(good).ok());
  const size_t full_size = static_cast<size_t>(fs::file_size(good));
  const std::string path = TempPath("corrupt_probe.crf");

  const auto copy_model = [&]() {
    fs::copy_file(good, path, fs::copy_options::overwrite_existing);
  };

  // Truncation anywhere in the file: sample offsets from mid-header to
  // one byte short of complete.
  for (const size_t size :
       {size_t{4}, size_t{16}, size_t{40}, full_size / 2, full_size - 1}) {
    ASSERT_LT(size, full_size);
    copy_model();
    fs::resize_file(path, size);
    crf::CrfTagger restored;
    const Status status = restored.Load(path);
    EXPECT_FALSE(status.ok()) << "loaded a model truncated to " << size
                              << " of " << full_size << " bytes";
  }

  // Flipped magic byte.
  copy_model();
  CorruptBytes(path, 0, 1, '\x00');
  {
    crf::CrfTagger restored;
    EXPECT_FALSE(restored.Load(path).ok());
  }

  // Corrupt container length word. The CRF layout is header (8 bytes) +
  // i32 window + i32 bucket + double c1 + double c2 = 32 bytes, then the
  // label StringVec's length word; 0xFFFFFFFF there exceeds
  // kMaxSerialElements and must be rejected, not allocated.
  copy_model();
  CorruptBytes(path, 32, 4, '\xFF');
  {
    crf::CrfTagger restored;
    const Status status = restored.Load(path);
    ASSERT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  }

  std::remove(good.c_str());
  std::remove(path.c_str());
}

// ---------------- .paez artifact corruption ----------------

// The zero-copy reader's contract: a corrupt artifact yields a clean
// non-Ok status from Open — never a crash, never a read outside the
// mapping (the ASan pass in check.sh runs this suite to hold that).

/// A small packed artifact built once per process; tests copy it to a
/// probe path before mutating bytes.
const std::string& PackedArtifactPath() {
  static const std::string* path = [] {
    crf::CrfOptions options;
    options.max_iterations = 15;
    crf::CrfTagger tagger(options);
    PAE_CHECK(tagger.Train(TinyTrainingData()).ok());
    auto* p = new std::string(TempPath("artifact_base.paez"));
    PAE_CHECK(
        core::PackModelArtifact(tagger, nullptr, core::PackOptions(), *p)
            .ok());
    return p;
  }();
  return *path;
}

/// Copies the base artifact to a fresh probe file and returns its path.
std::string CopyArtifact(const std::string& name) {
  const std::string path = TempPath(name);
  fs::copy_file(PackedArtifactPath(), path,
                fs::copy_options::overwrite_existing);
  return path;
}

/// Mutates the header/section table of a `.paez` file through `fn`,
/// then re-stamps the table checksum so Open exercises the structural
/// validation under test instead of tripping on the checksum first.
template <typename Fn>
void PatchArtifactTable(const std::string& path, Fn fn) {
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  in.close();
  core::PaezHeader header;
  std::memcpy(&header, data.data(), sizeof(header));
  std::vector<core::PaezSection> table(header.section_count);
  std::memcpy(table.data(), data.data() + core::kPaezHeaderBytes,
              table.size() * sizeof(core::PaezSection));
  fn(&header, table.data());
  header.table_checksum = core::ArtifactChecksum(
      table.data(), table.size() * sizeof(core::PaezSection));
  std::memcpy(data.data(), &header, sizeof(header));
  std::memcpy(data.data() + core::kPaezHeaderBytes, table.data(),
              table.size() * sizeof(core::PaezSection));
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

TEST(PaezCorruptionTest, TruncatedHeaderRejected) {
  const std::string path = CopyArtifact("trunc_header.paez");
  for (const size_t size : {size_t{0}, size_t{3}, size_t{63}}) {
    fs::resize_file(path, size);
    auto artifact = core::ModelArtifact::Open(path);
    ASSERT_FALSE(artifact.ok()) << "opened a " << size << "-byte header";
    EXPECT_EQ(artifact.status().code(), StatusCode::kOutOfRange);
  }
  std::remove(path.c_str());
}

TEST(PaezCorruptionTest, TruncatedFileRejected) {
  const std::string path = CopyArtifact("trunc_file.paez");
  const size_t full = static_cast<size_t>(fs::file_size(path));
  for (const size_t size : {full / 2, full - 1}) {
    fs::resize_file(path, size);
    auto artifact = core::ModelArtifact::Open(path);
    ASSERT_FALSE(artifact.ok()) << "opened a file cut to " << size;
    EXPECT_EQ(artifact.status().code(), StatusCode::kOutOfRange);
  }
  std::remove(path.c_str());
}

TEST(PaezCorruptionTest, BadMagicRejected) {
  const std::string path = CopyArtifact("bad_magic.paez");
  CorruptBytes(path, 0, 1, '\x00');
  EXPECT_FALSE(core::IsPaezFile(path));
  auto artifact = core::ModelArtifact::Open(path);
  ASSERT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PaezCorruptionTest, UnknownVersionRejected) {
  const std::string path = CopyArtifact("bad_version.paez");
  PatchArtifactTable(path, [](core::PaezHeader* header, core::PaezSection*) {
    header->version = core::kPaezVersion + 1;
  });
  auto artifact = core::ModelArtifact::Open(path);
  ASSERT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PaezCorruptionTest, SectionOffsetOutOfBoundsRejected) {
  const std::string path = CopyArtifact("oob_offset.paez");
  const size_t full = static_cast<size_t>(fs::file_size(path));
  PatchArtifactTable(path,
                     [&](core::PaezHeader*, core::PaezSection* table) {
                       // Push the weights section past EOF, keeping its
                       // alignment valid so only the bounds check fires.
                       table[5].offset = (full + 8191) & ~size_t{4095};
                     });
  auto artifact = core::ModelArtifact::Open(path);
  ASSERT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(PaezCorruptionTest, OverlappingSectionsRejected) {
  const std::string path = CopyArtifact("overlap.paez");
  PatchArtifactTable(path, [](core::PaezHeader*, core::PaezSection* table) {
    // Slots and keys are both 16-aligned; aliasing their offsets keeps
    // every per-section check green and trips only the overlap sweep.
    table[3].offset = table[2].offset;
  });
  auto artifact = core::ModelArtifact::Open(path);
  ASSERT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), StatusCode::kOutOfRange);
  std::remove(path.c_str());
}

TEST(PaezCorruptionTest, ReservedSectionKindRejected) {
  const std::string path = CopyArtifact("reserved_kind.paez");
  PatchArtifactTable(path, [](core::PaezHeader*, core::PaezSection* table) {
    table[4].kind = core::kLstmParams;  // reserved for v2
  });
  auto artifact = core::ModelArtifact::Open(path);
  ASSERT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PaezCorruptionTest, TableChecksumAlwaysVerified) {
  const std::string path = CopyArtifact("table_checksum.paez");
  // Flip one section-table byte WITHOUT re-stamping the checksum: even
  // a default (no payload verification) open must refuse.
  CorruptBytes(path, core::kPaezHeaderBytes + 9, 1, '\x7F');
  auto artifact = core::ModelArtifact::Open(path);
  ASSERT_FALSE(artifact.ok());
  EXPECT_EQ(artifact.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PaezCorruptionTest, PayloadChecksumPolicyIsOptIn) {
  const std::string path = CopyArtifact("payload_checksum.paez");
  // Flip one byte deep inside the weights payload. The structural open
  // still succeeds (bounds are intact — this is the documented
  // policy), while a verifying open refuses.
  const size_t full = static_cast<size_t>(fs::file_size(path));
  CorruptBytes(path, full - 16, 1, '\x55');
  auto structural = core::ModelArtifact::Open(path);
  EXPECT_TRUE(structural.ok()) << structural.status().ToString();
  core::ModelArtifact::OpenOptions verify;
  verify.verify_checksums = true;
  auto checked = core::ModelArtifact::Open(path, verify);
  ASSERT_FALSE(checked.ok());
  EXPECT_EQ(checked.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(PaezCorruptionTest, MetaDimensionMismatchRejected) {
  const std::string path = CopyArtifact("meta_mismatch.paez");
  // Corrupt num_labels inside the CRF meta payload; the weight-count
  // cross-check must catch the inconsistency. Re-stamp the payload
  // checksum so a verifying open exercises the same path.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(file.is_open());
  core::PaezHeader header;
  file.read(reinterpret_cast<char*>(&header), sizeof(header));
  std::vector<core::PaezSection> table(header.section_count);
  file.read(reinterpret_cast<char*>(table.data()),
            static_cast<std::streamsize>(table.size() *
                                         sizeof(core::PaezSection)));
  ASSERT_EQ(table[0].kind, core::kCrfMeta);
  core::PaezCrfMeta meta;
  file.seekg(static_cast<std::streamoff>(table[0].offset));
  file.read(reinterpret_cast<char*>(&meta), sizeof(meta));
  meta.num_labels += 1;
  file.seekp(static_cast<std::streamoff>(table[0].offset));
  file.write(reinterpret_cast<const char*>(&meta), sizeof(meta));
  file.close();
  PatchArtifactTable(path, [&](core::PaezHeader*, core::PaezSection* t) {
    t[0].checksum = core::ArtifactChecksum(&meta, sizeof(meta));
  });
  auto artifact = core::ModelArtifact::Open(path);
  ASSERT_FALSE(artifact.ok());
  std::remove(path.c_str());
}

TEST(PersistenceTest, BiLstmSaveLoadPredictsIdentically) {
  lstm::BiLstmOptions options;
  options.epochs = 4;
  options.seed = 3;
  lstm::BiLstmTagger original(options);
  ASSERT_TRUE(original.Train(TinyTrainingData()).ok());
  const std::string path = TempPath("model.lstm");
  ASSERT_TRUE(original.Save(path).ok());

  lstm::BiLstmTagger restored;
  ASSERT_TRUE(restored.Load(path).ok());

  text::LabeledSequence probe;
  probe.tokens = {"重量", "は", "3", "kg", "です"};
  probe.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
  EXPECT_EQ(restored.Predict(probe), original.Predict(probe));
  std::remove(path.c_str());
}

TEST(PersistenceTest, Word2VecSaveLoadKeepsSimilarities) {
  embed::Word2VecOptions options;
  options.dim = 16;
  options.epochs = 4;
  options.min_count = 1;
  embed::Word2Vec original(options);
  std::vector<std::vector<std::string>> corpus;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    corpus.push_back({"a", "b", rng.Bernoulli(0.5) ? "c" : "d", "e"});
  }
  ASSERT_TRUE(original.Train(corpus).ok());
  const std::string path = TempPath("model.w2v");
  ASSERT_TRUE(original.Save(path).ok());

  embed::Word2Vec restored;
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.dim(), original.dim());
  EXPECT_DOUBLE_EQ(restored.Similarity("a", "b"),
                   original.Similarity("a", "b"));
  EXPECT_TRUE(restored.Contains("c"));
  EXPECT_FALSE(restored.Contains("zzz"));
  std::remove(path.c_str());
}

// ---------------- corpus I/O ----------------

TEST(CorpusIoTest, CorpusRoundTrip) {
  datagen::GeneratorConfig config;
  config.num_products = 40;
  config.seed = 21;
  datagen::GeneratedCategory generated = datagen::GenerateCategory(
      datagen::CategoryId::kLadiesBags, config);

  const std::string dir = TempPath("corpus_roundtrip");
  fs::remove_all(dir);
  ASSERT_TRUE(core::SaveCorpus(generated.corpus, dir).ok());
  auto loaded = core::LoadCorpus(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().category, generated.corpus.category);
  EXPECT_EQ(loaded.value().language, generated.corpus.language);
  ASSERT_EQ(loaded.value().pages.size(), generated.corpus.pages.size());
  // Pages come back sorted by id; compare as map.
  std::map<std::string, std::string> original_pages, loaded_pages;
  for (const auto& p : generated.corpus.pages) {
    original_pages[p.product_id] = p.html;
  }
  for (const auto& p : loaded.value().pages) {
    loaded_pages[p.product_id] = p.html;
  }
  EXPECT_EQ(original_pages, loaded_pages);
  EXPECT_EQ(loaded.value().query_log.size(),
            generated.corpus.query_log.size());
  EXPECT_EQ(loaded.value().tokenizer_lexicon,
            generated.corpus.tokenizer_lexicon);
  EXPECT_EQ(loaded.value().pos_lexicon.word_tags.size(),
            generated.corpus.pos_lexicon.word_tags.size());
  fs::remove_all(dir);
}

TEST(CorpusIoTest, TruthRoundTripPreservesJudgements) {
  datagen::GeneratorConfig config;
  config.num_products = 60;
  config.seed = 22;
  datagen::GeneratedCategory generated =
      datagen::GenerateCategory(datagen::CategoryId::kGarden, config);

  const std::string dir = TempPath("truth_roundtrip");
  fs::remove_all(dir);
  ASSERT_TRUE(core::SaveTruth(generated.truth, dir).ok());
  auto loaded = core::LoadTruth(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded.value().entries.size(), generated.truth.entries.size());
  EXPECT_EQ(loaded.value().attribute_aliases,
            generated.truth.attribute_aliases);
  EXPECT_EQ(loaded.value().valid_pairs, generated.truth.valid_pairs);
  fs::remove_all(dir);
}

TEST(CorpusIoTest, TriplesRoundTrip) {
  const std::string path = TempPath("triples.tsv");
  std::vector<core::Triple> triples = {
      {"p1", "カラー", "赤"},
      {"p2", "重量", "2.5kg"},
  };
  ASSERT_TRUE(core::SaveTriples(triples, path).ok());
  auto loaded = core::LoadTriples(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0], triples[0]);
  EXPECT_EQ(loaded.value()[1], triples[1]);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadMissingDirectoryFails) {
  auto result = core::LoadCorpus(TempPath("nope_nope"));
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace pae
