// Serialization: BinaryWriter/Reader primitives, model Save/Load
// round-trips (CRF, BiLSTM, word2vec), and the on-disk corpus layout.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/corpus_io.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "embed/word2vec.h"
#include "lstm/bilstm_tagger.h"
#include "util/rng.h"
#include "util/serial.h"

namespace pae {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  return (fs::temp_directory_path() / ("pae_test_" + name)).string();
}

// ---------------- binary primitives ----------------

TEST(SerialTest, ScalarAndVectorRoundTrip) {
  const std::string path = TempPath("scalars.bin");
  {
    BinaryWriter writer(path, 0xABCD0001, 3);
    writer.WriteU32(42);
    writer.WriteI32(-7);
    writer.WriteU64(1ULL << 40);
    writer.WriteDouble(3.25);
    writer.WriteFloat(-1.5f);
    writer.WriteString("重量=5kg");
    writer.WriteDoubleVec({1.0, 2.0, 3.0});
    writer.WriteFloatVec({0.5f});
    writer.WriteStringVec({"a", "", "長い文字列"});
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path, 0xABCD0001, 3);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  uint32_t u32 = 0;
  int32_t i32 = 0;
  uint64_t u64 = 0;
  double d = 0;
  float f = 0;
  std::string s;
  std::vector<double> dv;
  std::vector<float> fv;
  std::vector<std::string> sv;
  EXPECT_TRUE(reader.ReadU32(&u32));
  EXPECT_TRUE(reader.ReadI32(&i32));
  EXPECT_TRUE(reader.ReadU64(&u64));
  EXPECT_TRUE(reader.ReadDouble(&d));
  EXPECT_TRUE(reader.ReadFloat(&f));
  EXPECT_TRUE(reader.ReadString(&s));
  EXPECT_TRUE(reader.ReadDoubleVec(&dv));
  EXPECT_TRUE(reader.ReadFloatVec(&fv));
  EXPECT_TRUE(reader.ReadStringVec(&sv));
  EXPECT_EQ(u32, 42u);
  EXPECT_EQ(i32, -7);
  EXPECT_EQ(u64, 1ULL << 40);
  EXPECT_EQ(d, 3.25);
  EXPECT_EQ(f, -1.5f);
  EXPECT_EQ(s, "重量=5kg");
  EXPECT_EQ(dv, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(sv, (std::vector<std::string>{"a", "", "長い文字列"}));
  std::remove(path.c_str());
}

TEST(SerialTest, BadMagicRejected) {
  const std::string path = TempPath("magic.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path, 0x22222222, 1);
  EXPECT_FALSE(reader.ok());
  std::remove(path.c_str());
}

TEST(SerialTest, WrongVersionRejected) {
  const std::string path = TempPath("version.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    ASSERT_TRUE(writer.Finish().ok());
  }
  BinaryReader reader(path, 0x11111111, 2);
  EXPECT_FALSE(reader.ok());
  std::remove(path.c_str());
}

TEST(SerialTest, TruncatedFileFailsGracefully) {
  const std::string path = TempPath("trunc.bin");
  {
    BinaryWriter writer(path, 0x11111111, 1);
    writer.WriteU32(1234);
    ASSERT_TRUE(writer.Finish().ok());
  }
  fs::resize_file(path, 9);  // header (8) + 1 byte
  BinaryReader reader(path, 0x11111111, 1);
  ASSERT_TRUE(reader.ok());
  uint32_t v = 0;
  EXPECT_FALSE(reader.ReadU32(&v));
  std::remove(path.c_str());
}

TEST(SerialTest, MissingFileIsNotFound) {
  BinaryReader reader(TempPath("does_not_exist.bin"), 1, 1);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kNotFound);
}

// ---------------- model round-trips ----------------

std::vector<text::LabeledSequence> TinyTrainingData() {
  Rng rng(9);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < 80; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"重量", "は", v, "kg", "です"};
    seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
    seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
    data.push_back(std::move(seq));
  }
  return data;
}

TEST(PersistenceTest, CrfSaveLoadPredictsIdentically) {
  crf::CrfOptions options;
  options.max_iterations = 25;
  crf::CrfTagger original(options);
  ASSERT_TRUE(original.Train(TinyTrainingData()).ok());
  const std::string path = TempPath("model.crf");
  ASSERT_TRUE(original.Save(path).ok());

  crf::CrfTagger restored;
  ASSERT_TRUE(restored.Load(path).ok());

  text::LabeledSequence probe;
  probe.tokens = {"重量", "は", "7", "kg", "です"};
  probe.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
  EXPECT_EQ(restored.Predict(probe), original.Predict(probe));
  auto scored_a = original.PredictScored(probe);
  auto scored_b = restored.PredictScored(probe);
  ASSERT_EQ(scored_a.confidence.size(), scored_b.confidence.size());
  for (size_t i = 0; i < scored_a.confidence.size(); ++i) {
    EXPECT_NEAR(scored_a.confidence[i], scored_b.confidence[i], 1e-12);
  }
  std::remove(path.c_str());
}

TEST(PersistenceTest, CrfSaveUntrainedFails) {
  crf::CrfTagger untrained;
  EXPECT_FALSE(untrained.Save(TempPath("untrained.crf")).ok());
}

TEST(PersistenceTest, BiLstmSaveLoadPredictsIdentically) {
  lstm::BiLstmOptions options;
  options.epochs = 4;
  options.seed = 3;
  lstm::BiLstmTagger original(options);
  ASSERT_TRUE(original.Train(TinyTrainingData()).ok());
  const std::string path = TempPath("model.lstm");
  ASSERT_TRUE(original.Save(path).ok());

  lstm::BiLstmTagger restored;
  ASSERT_TRUE(restored.Load(path).ok());

  text::LabeledSequence probe;
  probe.tokens = {"重量", "は", "3", "kg", "です"};
  probe.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
  EXPECT_EQ(restored.Predict(probe), original.Predict(probe));
  std::remove(path.c_str());
}

TEST(PersistenceTest, Word2VecSaveLoadKeepsSimilarities) {
  embed::Word2VecOptions options;
  options.dim = 16;
  options.epochs = 4;
  options.min_count = 1;
  embed::Word2Vec original(options);
  std::vector<std::vector<std::string>> corpus;
  Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    corpus.push_back({"a", "b", rng.Bernoulli(0.5) ? "c" : "d", "e"});
  }
  ASSERT_TRUE(original.Train(corpus).ok());
  const std::string path = TempPath("model.w2v");
  ASSERT_TRUE(original.Save(path).ok());

  embed::Word2Vec restored;
  ASSERT_TRUE(restored.Load(path).ok());
  EXPECT_EQ(restored.dim(), original.dim());
  EXPECT_DOUBLE_EQ(restored.Similarity("a", "b"),
                   original.Similarity("a", "b"));
  EXPECT_TRUE(restored.Contains("c"));
  EXPECT_FALSE(restored.Contains("zzz"));
  std::remove(path.c_str());
}

// ---------------- corpus I/O ----------------

TEST(CorpusIoTest, CorpusRoundTrip) {
  datagen::GeneratorConfig config;
  config.num_products = 40;
  config.seed = 21;
  datagen::GeneratedCategory generated = datagen::GenerateCategory(
      datagen::CategoryId::kLadiesBags, config);

  const std::string dir = TempPath("corpus_roundtrip");
  fs::remove_all(dir);
  ASSERT_TRUE(core::SaveCorpus(generated.corpus, dir).ok());
  auto loaded = core::LoadCorpus(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().category, generated.corpus.category);
  EXPECT_EQ(loaded.value().language, generated.corpus.language);
  ASSERT_EQ(loaded.value().pages.size(), generated.corpus.pages.size());
  // Pages come back sorted by id; compare as map.
  std::map<std::string, std::string> original_pages, loaded_pages;
  for (const auto& p : generated.corpus.pages) {
    original_pages[p.product_id] = p.html;
  }
  for (const auto& p : loaded.value().pages) {
    loaded_pages[p.product_id] = p.html;
  }
  EXPECT_EQ(original_pages, loaded_pages);
  EXPECT_EQ(loaded.value().query_log.size(),
            generated.corpus.query_log.size());
  EXPECT_EQ(loaded.value().tokenizer_lexicon,
            generated.corpus.tokenizer_lexicon);
  EXPECT_EQ(loaded.value().pos_lexicon.word_tags.size(),
            generated.corpus.pos_lexicon.word_tags.size());
  fs::remove_all(dir);
}

TEST(CorpusIoTest, TruthRoundTripPreservesJudgements) {
  datagen::GeneratorConfig config;
  config.num_products = 60;
  config.seed = 22;
  datagen::GeneratedCategory generated =
      datagen::GenerateCategory(datagen::CategoryId::kGarden, config);

  const std::string dir = TempPath("truth_roundtrip");
  fs::remove_all(dir);
  ASSERT_TRUE(core::SaveTruth(generated.truth, dir).ok());
  auto loaded = core::LoadTruth(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  ASSERT_EQ(loaded.value().entries.size(), generated.truth.entries.size());
  EXPECT_EQ(loaded.value().attribute_aliases,
            generated.truth.attribute_aliases);
  EXPECT_EQ(loaded.value().valid_pairs, generated.truth.valid_pairs);
  fs::remove_all(dir);
}

TEST(CorpusIoTest, TriplesRoundTrip) {
  const std::string path = TempPath("triples.tsv");
  std::vector<core::Triple> triples = {
      {"p1", "カラー", "赤"},
      {"p2", "重量", "2.5kg"},
  };
  ASSERT_TRUE(core::SaveTriples(triples, path).ok());
  auto loaded = core::LoadTriples(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0], triples[0]);
  EXPECT_EQ(loaded.value()[1], triples[1]);
  std::remove(path.c_str());
}

TEST(CorpusIoTest, LoadMissingDirectoryFails) {
  auto result = core::LoadCorpus(TempPath("nope_nope"));
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace pae
