// SIMD kernel layer suite: the determinism contract (bit-identical
// results across the avx2/sse2/scalar tiers, every size class),
// correctness against naive references, dispatch/override plumbing,
// and end-to-end extraction equality between PAE_SIMD tiers at 1 and
// 8 threads (mirroring concurrency_test's thread-count arms).

#include "math/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/apply.h"
#include "core/bootstrap.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "lstm/bilstm_tagger.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace pae {
namespace {

namespace kernels = math::kernels;
using kernels::Isa;

/// Every tier this host can execute, scalar first.
std::vector<Isa> SupportedIsas() {
  std::vector<Isa> isas = {Isa::kScalar};
  if (kernels::IsaSupported(Isa::kSse2)) isas.push_back(Isa::kSse2);
  if (kernels::IsaSupported(Isa::kAvx2)) isas.push_back(Isa::kAvx2);
  return isas;
}

/// Forces a tier for one scope and restores the best tier on exit.
class ScopedIsa {
 public:
  explicit ScopedIsa(Isa isa) { kernels::SetIsa(isa); }
  ~ScopedIsa() { kernels::SetIsa(kernels::BestSupportedIsa()); }
};

/// The adversarial size classes from the kernel contract: empty, below
/// one lane block, exactly one block, one past it, and the 4H±1 sizes
/// an LSTM gate slab produces (H = 24 → 95/96/97), plus larger odd
/// sizes that leave every possible SIMD tail length.
const size_t kSizes[] = {0, 1, 2, 3, 7, 8, 9, 15, 16, 17,
                         31, 95, 96, 97, 128, 257};

std::vector<float> RandomVec(Rng* rng, size_t n, float scale = 1.0f) {
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng->NextUniform(-scale, scale));
  return v;
}

// ---------------- bit-equality across tiers ----------------

TEST(KernelsBitEqualityTest, DotAndSumSqAllSizes) {
  Rng rng(1234);
  for (size_t n : kSizes) {
    // Mixed magnitudes make the reduction order observable: a drifting
    // tier would differ in the low mantissa bits immediately.
    std::vector<float> a = RandomVec(&rng, n, 100.0f);
    std::vector<float> b = RandomVec(&rng, n, 0.01f);
    const double dot0 = kernels::Dot(a.data(), b.data(), n);
    const double sq0 = kernels::SumSq(a.data(), n);
    for (Isa isa : SupportedIsas()) {
      ScopedIsa scoped(isa);
      const double dot = kernels::Dot(a.data(), b.data(), n);
      const double sq = kernels::SumSq(a.data(), n);
      EXPECT_EQ(0, std::memcmp(&dot0, &dot, sizeof(double)))
          << "Dot n=" << n << " isa=" << kernels::IsaName(isa);
      EXPECT_EQ(0, std::memcmp(&sq0, &sq, sizeof(double)))
          << "SumSq n=" << n << " isa=" << kernels::IsaName(isa);
    }
  }
}

TEST(KernelsBitEqualityTest, AxpyAndScaleAllSizes) {
  Rng rng(99);
  for (size_t n : kSizes) {
    const std::vector<float> x = RandomVec(&rng, n);
    const std::vector<float> y0 = RandomVec(&rng, n);
    const float alpha = 0.37f;
    std::vector<float> ref = y0;
    kernels::Axpy(alpha, x.data(), ref.data(), n);
    std::vector<float> ref_scaled = y0;
    kernels::Scale(alpha, ref_scaled.data(), n);
    for (Isa isa : SupportedIsas()) {
      ScopedIsa scoped(isa);
      std::vector<float> y = y0;
      kernels::Axpy(alpha, x.data(), y.data(), n);
      std::vector<float> s = y0;
      kernels::Scale(alpha, s.data(), n);
      if (n == 0) continue;  // data() is null for empty vectors; memcmp
                             // with a null pointer is UB even at size 0.
      EXPECT_EQ(0, std::memcmp(ref.data(), y.data(), n * sizeof(float)))
          << "Axpy n=" << n << " isa=" << kernels::IsaName(isa);
      EXPECT_EQ(0,
                std::memcmp(ref_scaled.data(), s.data(), n * sizeof(float)))
          << "Scale n=" << n << " isa=" << kernels::IsaName(isa);
    }
  }
}

TEST(KernelsBitEqualityTest, MatrixKernelsAllShapes) {
  Rng rng(777);
  // Shapes chosen to hit ragged columns (SIMD tails) and the zero-skip
  // contract rows of MatTVec/AddOuter.
  const struct { size_t rows, cols; } shapes[] = {
      {1, 1}, {3, 7}, {8, 8}, {5, 9}, {12, 95}, {96, 17}, {4, 257}};
  for (const auto& shape : shapes) {
    std::vector<float> m0 = RandomVec(&rng, shape.rows * shape.cols);
    std::vector<float> x_cols = RandomVec(&rng, shape.cols);
    std::vector<float> x_rows = RandomVec(&rng, shape.rows);
    std::vector<float> b_cols = RandomVec(&rng, shape.cols);
    // Exercise the x[r] == 0 / alpha·a[r] == 0 skip in all tiers.
    if (shape.rows > 2) x_rows[1] = 0.0f;

    std::vector<float> mv_ref(shape.rows);
    kernels::MatVec(m0.data(), shape.rows, shape.cols, x_cols.data(),
                    mv_ref.data());
    std::vector<float> mtv_ref(shape.cols, 0.0f);
    kernels::MatTVec(m0.data(), shape.rows, shape.cols, x_rows.data(),
                     mtv_ref.data());
    std::vector<float> outer_ref = m0;
    kernels::AddOuter(0.25f, x_rows.data(), b_cols.data(), outer_ref.data(),
                      shape.rows, shape.cols);

    for (Isa isa : SupportedIsas()) {
      ScopedIsa scoped(isa);
      std::vector<float> mv(shape.rows);
      kernels::MatVec(m0.data(), shape.rows, shape.cols, x_cols.data(),
                      mv.data());
      EXPECT_EQ(0, std::memcmp(mv_ref.data(), mv.data(),
                               mv.size() * sizeof(float)))
          << "MatVec " << shape.rows << "x" << shape.cols << " isa="
          << kernels::IsaName(isa);
      std::vector<float> mtv(shape.cols, 0.0f);
      kernels::MatTVec(m0.data(), shape.rows, shape.cols, x_rows.data(),
                       mtv.data());
      EXPECT_EQ(0, std::memcmp(mtv_ref.data(), mtv.data(),
                               mtv.size() * sizeof(float)))
          << "MatTVec " << shape.rows << "x" << shape.cols << " isa="
          << kernels::IsaName(isa);
      std::vector<float> outer = m0;
      kernels::AddOuter(0.25f, x_rows.data(), b_cols.data(), outer.data(),
                        shape.rows, shape.cols);
      EXPECT_EQ(0, std::memcmp(outer_ref.data(), outer.data(),
                               outer.size() * sizeof(float)))
          << "AddOuter " << shape.rows << "x" << shape.cols << " isa="
          << kernels::IsaName(isa);
    }
  }
}

TEST(KernelsBitEqualityTest, LstmStepAllHiddenSizes) {
  Rng rng(4242);
  for (size_t hidden : {1u, 7u, 8u, 24u, 25u}) {
    const size_t input_dim = 2 * hidden + 3;
    std::vector<float> wx = RandomVec(&rng, 4 * hidden * input_dim);
    std::vector<float> wh = RandomVec(&rng, 4 * hidden * hidden);
    std::vector<float> bias = RandomVec(&rng, 4 * hidden);
    std::vector<float> x = RandomVec(&rng, input_dim);
    std::vector<float> h_prev = RandomVec(&rng, hidden);
    std::vector<float> c_prev = RandomVec(&rng, hidden);

    std::vector<float> pre_ref(4 * hidden);
    kernels::LstmGatePreact(wx.data(), wh.data(), bias.data(), x.data(),
                            h_prev.data(), hidden, input_dim, pre_ref.data());
    std::vector<float> i_ref(hidden), f_ref(hidden), o_ref(hidden),
        g_ref(hidden), c_ref(hidden), h_ref(hidden);
    kernels::LstmActivateGates(pre_ref.data(), c_prev.data(), hidden,
                               i_ref.data(), f_ref.data(), o_ref.data(),
                               g_ref.data(), c_ref.data(), h_ref.data());

    for (Isa isa : SupportedIsas()) {
      ScopedIsa scoped(isa);
      std::vector<float> pre(4 * hidden);
      kernels::LstmGatePreact(wx.data(), wh.data(), bias.data(), x.data(),
                              h_prev.data(), hidden, input_dim, pre.data());
      EXPECT_EQ(0, std::memcmp(pre_ref.data(), pre.data(),
                               pre.size() * sizeof(float)))
          << "LstmGatePreact H=" << hidden << " isa="
          << kernels::IsaName(isa);
      std::vector<float> i(hidden), f(hidden), o(hidden), g(hidden),
          c(hidden), h(hidden);
      kernels::LstmActivateGates(pre.data(), c_prev.data(), hidden, i.data(),
                                 f.data(), o.data(), g.data(), c.data(),
                                 h.data());
      EXPECT_EQ(0,
                std::memcmp(h_ref.data(), h.data(), hidden * sizeof(float)))
          << "LstmActivateGates H=" << hidden << " isa="
          << kernels::IsaName(isa);
      EXPECT_EQ(0,
                std::memcmp(c_ref.data(), c.data(), hidden * sizeof(float)))
          << "cell state H=" << hidden << " isa=" << kernels::IsaName(isa);
    }
  }
}

// ---------------- batched GEMM tier ----------------
// The batch widths cover every register-block remainder of every tier:
// scalar/avx2 block 4 (remainders 1-3), sse2 block 2 (remainder 1),
// plus widths beyond the 64-row tile boundary interplay.

TEST(KernelsBitEqualityTest, MatMulMatchesPerColumnMatVec) {
  Rng rng(31337);
  const struct { size_t rows, k; } shapes[] = {
      {1, 1}, {3, 7}, {8, 16}, {17, 31}, {96, 95}, {128, 48}};
  const size_t batches[] = {1, 2, 3, 4, 5, 8, 33};
  for (const auto& shape : shapes) {
    std::vector<float> m = RandomVec(&rng, shape.rows * shape.k);
    std::vector<float> bias = RandomVec(&rng, shape.rows);
    for (size_t batch : batches) {
      std::vector<float> x = RandomVec(&rng, batch * shape.k);
      // Reference: per-column single-vector kernels (the historical
      // B = 1 path), plus the logits bias contract float(double(b)+dot).
      std::vector<float> ref(batch * shape.rows);
      std::vector<float> ref_bias(batch * shape.rows);
      for (size_t b = 0; b < batch; ++b) {
        kernels::MatVec(m.data(), shape.rows, shape.k, x.data() + b * shape.k,
                        ref.data() + b * shape.rows);
        for (size_t r = 0; r < shape.rows; ++r) {
          ref_bias[b * shape.rows + r] = static_cast<float>(
              bias[r] + kernels::Dot(m.data() + r * shape.k,
                                     x.data() + b * shape.k, shape.k));
        }
      }
      for (Isa isa : SupportedIsas()) {
        ScopedIsa scoped(isa);
        std::vector<float> out(batch * shape.rows, -1.0f);
        kernels::MatMul(m.data(), shape.rows, shape.k, x.data(), batch,
                        /*bias=*/nullptr, out.data());
        EXPECT_EQ(0, std::memcmp(ref.data(), out.data(),
                                 out.size() * sizeof(float)))
            << "MatMul " << shape.rows << "x" << shape.k << " B=" << batch
            << " isa=" << kernels::IsaName(isa);
        std::vector<float> out_bias(batch * shape.rows, -1.0f);
        kernels::MatMul(m.data(), shape.rows, shape.k, x.data(), batch,
                        bias.data(), out_bias.data());
        EXPECT_EQ(0, std::memcmp(ref_bias.data(), out_bias.data(),
                                 out_bias.size() * sizeof(float)))
            << "MatMul+bias " << shape.rows << "x" << shape.k << " B="
            << batch << " isa=" << kernels::IsaName(isa);
      }
    }
  }
}

TEST(KernelsBitEqualityTest, MatTVecBatchMatchesPerVectorMatTVec) {
  Rng rng(2718);
  const struct { size_t rows, cols; } shapes[] = {
      {1, 1}, {4, 9}, {96, 24}, {17, 95}};
  for (const auto& shape : shapes) {
    std::vector<float> m = RandomVec(&rng, shape.rows * shape.cols);
    for (size_t batch : {1u, 2u, 3u, 8u, 33u}) {
      std::vector<float> x = RandomVec(&rng, batch * shape.rows);
      if (shape.rows > 2) {
        // Exercise the x[r] == 0 zero-skip in a batched column.
        x[shape.rows + 1 < x.size() ? shape.rows + 1 : 0] = 0.0f;
      }
      std::vector<float> ref(batch * shape.cols, 0.0f);
      for (size_t b = 0; b < batch; ++b) {
        kernels::MatTVec(m.data(), shape.rows, shape.cols,
                         x.data() + b * shape.rows,
                         ref.data() + b * shape.cols);
      }
      for (Isa isa : SupportedIsas()) {
        ScopedIsa scoped(isa);
        std::vector<float> out(batch * shape.cols, 0.0f);
        kernels::MatTVecBatch(m.data(), shape.rows, shape.cols, x.data(),
                              batch, out.data());
        EXPECT_EQ(0, std::memcmp(ref.data(), out.data(),
                                 out.size() * sizeof(float)))
            << "MatTVecBatch " << shape.rows << "x" << shape.cols << " B="
            << batch << " isa=" << kernels::IsaName(isa);
      }
    }
  }
}

TEST(KernelsBitEqualityTest, LstmGatePreactBatchMatchesSingle) {
  Rng rng(60221);
  for (size_t hidden : {1u, 7u, 8u, 24u}) {
    const size_t input_dim = 2 * hidden + 3;
    std::vector<float> wx = RandomVec(&rng, 4 * hidden * input_dim);
    std::vector<float> wh = RandomVec(&rng, 4 * hidden * hidden);
    std::vector<float> bias = RandomVec(&rng, 4 * hidden);
    for (size_t batch : {1u, 2u, 3u, 5u, 8u, 32u}) {
      std::vector<float> xs = RandomVec(&rng, batch * input_dim);
      std::vector<float> hs = RandomVec(&rng, batch * hidden);
      std::vector<float> ref(batch * 4 * hidden);
      for (size_t b = 0; b < batch; ++b) {
        kernels::LstmGatePreact(wx.data(), wh.data(), bias.data(),
                                xs.data() + b * input_dim,
                                hs.data() + b * hidden, hidden, input_dim,
                                ref.data() + b * 4 * hidden);
      }
      for (Isa isa : SupportedIsas()) {
        ScopedIsa scoped(isa);
        std::vector<float> pre(batch * 4 * hidden, -1.0f);
        kernels::LstmGatePreactBatch(wx.data(), wh.data(), bias.data(),
                                     xs.data(), hs.data(), hidden, input_dim,
                                     batch, pre.data());
        EXPECT_EQ(0, std::memcmp(ref.data(), pre.data(),
                                 pre.size() * sizeof(float)))
            << "LstmGatePreactBatch H=" << hidden << " B=" << batch
            << " isa=" << kernels::IsaName(isa);
      }
    }
  }
}

// ---------------- correctness vs naive references ----------------
// (hand-rolled loops below are the point: they are the independent
// references the kernels are validated against — allowlisted for the
// hand-rolled-kernel lint rule.)

TEST(KernelsCorrectnessTest, MatchesNaiveReferences) {
  Rng rng(5);
  for (size_t n : kSizes) {
    std::vector<float> a = RandomVec(&rng, n);
    std::vector<float> b = RandomVec(&rng, n);
    double dot_ref = 0, sq_ref = 0;
    for (size_t i = 0; i < n; ++i) {
      dot_ref += static_cast<double>(a[i]) * b[i];
      sq_ref += static_cast<double>(a[i]) * a[i];
    }
    EXPECT_NEAR(kernels::Dot(a.data(), b.data(), n), dot_ref,
                1e-10 * (1.0 + std::abs(dot_ref)))
        << "n=" << n;
    EXPECT_NEAR(kernels::SumSq(a.data(), n), sq_ref, 1e-10 * (1.0 + sq_ref))
        << "n=" << n;
  }
}

TEST(KernelsCorrectnessTest, CosineContract) {
  Rng rng(6);
  std::vector<float> a = RandomVec(&rng, 37);
  std::vector<float> b = RandomVec(&rng, 37);
  const double cos = kernels::Cosine(a.data(), b.data(), 37);
  EXPECT_GE(cos, -1.0 - 1e-9);
  EXPECT_LE(cos, 1.0 + 1e-9);
  EXPECT_NEAR(kernels::Cosine(a.data(), a.data(), 37), 1.0, 1e-9);
  // Zero vectors: cosine is defined to be 0, never NaN.
  std::vector<float> zero(37, 0.0f);
  EXPECT_EQ(kernels::Cosine(zero.data(), a.data(), 37), 0.0);
  EXPECT_EQ(kernels::CosineFromNorms(1.0, 0.0, 2.0), 0.0);
}

// ---------------- dispatch plumbing ----------------

TEST(KernelsDispatchTest, ParseAndNameRoundTrip) {
  for (Isa isa : {Isa::kScalar, Isa::kSse2, Isa::kAvx2}) {
    Isa parsed;
    ASSERT_TRUE(kernels::ParseIsa(kernels::IsaName(isa), &parsed));
    EXPECT_EQ(parsed, isa);
  }
  Isa parsed;
  EXPECT_FALSE(kernels::ParseIsa("avx512", &parsed));
  EXPECT_FALSE(kernels::ParseIsa("", &parsed));
}

TEST(KernelsDispatchTest, SetIsaSwitchesActiveTier) {
  for (Isa isa : SupportedIsas()) {
    ScopedIsa scoped(isa);
    EXPECT_EQ(kernels::ActiveIsa(), isa);
  }
  EXPECT_EQ(kernels::ActiveIsa(), kernels::BestSupportedIsa());
}

TEST(KernelsDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(kernels::IsaSupported(Isa::kScalar));
  EXPECT_TRUE(kernels::IsaSupported(kernels::BestSupportedIsa()));
}

TEST(KernelsDispatchTest, RecordSimdMetricsExportsGauges) {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  metrics.Reset();
  kernels::RecordSimdMetrics();
  const util::RunReport report = metrics.Snapshot();
  const Isa isa = kernels::ActiveIsa();
  ASSERT_TRUE(report.gauges.count("math.simd.isa_level"));
  EXPECT_EQ(report.gauges.at("math.simd.isa_level"),
            static_cast<double>(static_cast<int>(isa)));
  const std::string flag = std::string("math.simd.isa.") +
                           kernels::IsaName(isa);
  ASSERT_TRUE(report.gauges.count(flag));
  EXPECT_EQ(report.gauges.at(flag), 1.0);
  metrics.Reset();
}

// ---------------- end-to-end extraction equality ----------------

core::ProcessedCorpus MakeCorpus() {
  datagen::GeneratorConfig config;
  config.num_products = 40;
  config.seed = 11;
  datagen::GeneratedCategory category =
      datagen::GenerateCategory(datagen::CategoryId::kVacuumCleaner, config);
  return core::ProcessCorpus(category.corpus, 1);
}

core::PipelineConfig SmallConfig(int threads) {
  core::PipelineConfig config;
  config.model = core::ModelType::kCrf;
  config.iterations = 2;
  config.crf.max_iterations = 20;
  config.seed = 7;
  config.threads = threads;
  config.train_final_model = true;
  return config;
}

/// The whole bootstrap (CRF tagging + word2vec-driven semantic
/// cleaning) must produce byte-identical output whichever SIMD tier the
/// kernels dispatch to, at 1 and at 8 threads — the in-process
/// equivalent of running the binary under PAE_SIMD=scalar vs default.
TEST(KernelsEndToEndTest, PipelineByteIdenticalAcrossIsas) {
  const core::ProcessedCorpus corpus = MakeCorpus();
  for (int threads : {1, 8}) {
    auto run_with = [&](Isa isa) {
      ScopedIsa scoped(isa);
      core::Pipeline pipeline(SmallConfig(threads));
      auto result = pipeline.Run(corpus);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      return std::move(result).value();
    };
    const core::PipelineResult base = run_with(kernels::BestSupportedIsa());
    for (Isa isa : SupportedIsas()) {
      const core::PipelineResult other = run_with(isa);
      EXPECT_EQ(base.seed_triples, other.seed_triples)
          << "threads=" << threads << " isa=" << kernels::IsaName(isa);
      EXPECT_EQ(base.final_triples(), other.final_triples())
          << "threads=" << threads << " isa=" << kernels::IsaName(isa);
      EXPECT_EQ(base.known_pair_keys, other.known_pair_keys)
          << "threads=" << threads << " isa=" << kernels::IsaName(isa);
      auto* crf_a = dynamic_cast<crf::CrfTagger*>(base.final_tagger.get());
      auto* crf_b = dynamic_cast<crf::CrfTagger*>(other.final_tagger.get());
      ASSERT_NE(crf_a, nullptr);
      ASSERT_NE(crf_b, nullptr);
      const std::vector<double>& wa = crf_a->weights();
      const std::vector<double>& wb = crf_b->weights();
      ASSERT_EQ(wa.size(), wb.size());
      ASSERT_FALSE(wa.empty());
      EXPECT_EQ(0,
                std::memcmp(wa.data(), wb.data(), wa.size() * sizeof(double)))
          << "threads=" << threads << " isa=" << kernels::IsaName(isa);
    }
  }
}

/// The BiLSTM is the heaviest kernel consumer (fused gate MatVec per
/// timestep); training + prediction must not depend on the tier either.
TEST(KernelsEndToEndTest, BilstmTrainingIdenticalAcrossIsas) {
  Rng rng(3);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < 30; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"重量", "は", v, "kg", "です"};
    seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
    seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
    data.push_back(std::move(seq));
  }
  auto train_with = [&](Isa isa) {
    ScopedIsa scoped(isa);
    lstm::BiLstmOptions options;
    options.epochs = 3;
    options.seed = 17;
    lstm::BiLstmTagger tagger(options);
    EXPECT_TRUE(tagger.Train(data).ok());
    std::vector<std::string> all_labels;
    for (const auto& seq : data) {
      for (const std::string& label : tagger.Predict(seq)) {
        all_labels.push_back(label);
      }
    }
    return std::make_pair(tagger.epoch_losses(), all_labels);
  };
  const auto base = train_with(kernels::BestSupportedIsa());
  for (Isa isa : SupportedIsas()) {
    const auto other = train_with(isa);
    ASSERT_EQ(base.first.size(), other.first.size());
    for (size_t e = 0; e < base.first.size(); ++e) {
      EXPECT_EQ(0, std::memcmp(&base.first[e], &other.first[e],
                               sizeof(double)))
          << "epoch " << e << " isa=" << kernels::IsaName(isa);
    }
    EXPECT_EQ(base.second, other.second) << kernels::IsaName(isa);
  }
}

}  // namespace
}  // namespace pae
