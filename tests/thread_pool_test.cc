// Unit tests for the deterministic thread pool: construction/teardown,
// range partitioning edge cases, exception propagation, and the ordered
// reduction (shard decomposition + ascending merge order).

#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace pae::util {
namespace {

// ---------------- construction / teardown ----------------

TEST(ThreadPoolTest, ConstructAndDestroyRepeatedly) {
  for (int round = 0; round < 20; ++round) {
    for (int threads : {1, 2, 4, 8}) {
      ThreadPool pool(threads);
      EXPECT_EQ(pool.num_threads(), threads);
    }
  }
}

TEST(ThreadPoolTest, NonPositiveThreadCountsClampToOne) {
  EXPECT_EQ(ThreadPool(0).num_threads(), 1);
  EXPECT_EQ(ThreadPool(-3).num_threads(), 1);
}

TEST(ThreadPoolTest, DestroyWithoutEverRunningAJob) {
  ThreadPool pool(4);
  // No ParallelFor call; the destructor must still join cleanly.
}

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(3), 3);
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(0), ThreadPool::DefaultThreads());
  EXPECT_EQ(ThreadPool::ResolveThreads(-5), 1);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

// ---------------- range partitioning ----------------

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, 1, [&](size_t) { ++calls; });
  pool.ParallelFor(5, 5, 3, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(std::memory_order_seq_cst), 0);
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  for (size_t n : {1u, 2u, 3u, 7u, 64u, 1000u}) {
    for (size_t grain : {1u, 2u, 5u, 64u, 5000u}) {
      std::vector<std::atomic<int>> visits(n);
      for (auto& v : visits) v = 0;
      pool.ParallelFor(0, n, grain, [&](size_t i) { ++visits[i]; });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(visits[i].load(std::memory_order_seq_cst), 1)
            << "index " << i << " n=" << n << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPoolTest, NonZeroBeginOffset) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> visits(20);
  for (auto& v : visits) v = 0;
  pool.ParallelFor(7, 20, 3, [&](size_t i) { ++visits[i]; });
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(visits[i].load(std::memory_order_seq_cst), i >= 7 ? 1 : 0)
        << "index " << i;
  }
}

TEST(ThreadPoolTest, RangeSmallerThanWorkerCount) {
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 3, 1, [&](size_t i) { sum += i + 1; });
  EXPECT_EQ(sum.load(std::memory_order_seq_cst), 6u);
}

TEST(ThreadPoolTest, GrainZeroBehavesAsOne) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> visits(10);
  for (auto& v : visits) v = 0;
  pool.ParallelFor(0, 10, 0, [&](size_t i) { ++visits[i]; });
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(visits[i].load(std::memory_order_seq_cst), 1);
  }
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 5, 100, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(std::memory_order_seq_cst), 5);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  uint64_t sum = 0;  // no atomics needed: everything runs on this thread
  pool.ParallelFor(0, 100, 7, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossManyLoops) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, 100, 3, [&](size_t i) { sum += i; });
    ASSERT_EQ(sum.load(std::memory_order_seq_cst), 4950u) << "round " << round;
  }
}

// ---------------- exception propagation ----------------

TEST(ThreadPoolTest, ExceptionFromWorkerPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 100, 1,
                       [&](size_t i) {
                         if (i == 41) throw std::runtime_error("boom 41");
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, LowestThrowingChunkWinsDeterministically) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      // Chunks of 1 → chunk index == item index; 13 and 77 both throw,
      // and 13 must win every time regardless of scheduling.
      pool.ParallelFor(0, 100, 1, [&](size_t i) {
        if (i == 13) throw std::runtime_error("chunk 13");
        if (i == 77) throw std::runtime_error("chunk 77");
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "chunk 13");
    }
  }
}

TEST(ThreadPoolTest, AllChunksRunEvenWhenOneThrows) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(50);
  for (auto& v : visits) v = 0;
  EXPECT_THROW(pool.ParallelFor(0, 50, 1,
                                [&](size_t i) {
                                  ++visits[i];
                                  if (i == 0) throw std::logic_error("x");
                                }),
               std::logic_error);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(visits[i].load(std::memory_order_seq_cst), 1);
  }
}

TEST(ThreadPoolTest, PoolUsableAfterException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 10, 1, [](size_t) { throw std::runtime_error("e"); }),
      std::runtime_error);
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, 10, 1, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(std::memory_order_seq_cst), 45u);
}

TEST(ThreadPoolTest, InlinePathPropagatesExceptionsToo) {
  ThreadPool pool(1);
  EXPECT_THROW(
      pool.ParallelFor(0, 10, 1,
                       [](size_t i) {
                         if (i == 4) throw std::runtime_error("inline");
                       }),
      std::runtime_error);
}

// ---------------- reduction shard decomposition ----------------

TEST(NumReductionShardsTest, EdgeCases) {
  EXPECT_EQ(NumReductionShards(0, 4, 32), 0u);
  EXPECT_EQ(NumReductionShards(1, 4, 32), 1u);
  EXPECT_EQ(NumReductionShards(4, 4, 32), 1u);
  EXPECT_EQ(NumReductionShards(5, 4, 32), 2u);
  EXPECT_EQ(NumReductionShards(1000, 4, 32), 32u);  // capped
  EXPECT_EQ(NumReductionShards(10, 0, 32), 10u);    // grain 0 → 1
  EXPECT_EQ(NumReductionShards(10, 1, 0), 1u);      // max_shards 0 → 1
}

TEST(NumReductionShardsTest, IndependentOfNothingButItsArguments) {
  // The decomposition must not depend on hardware_concurrency; it is a
  // pure function, so calling it twice is trivially equal — the real
  // check is that no thread-count parameter exists in its signature.
  for (size_t n = 0; n < 200; ++n) {
    EXPECT_EQ(NumReductionShards(n, 4, 32), NumReductionShards(n, 4, 32));
  }
}

// ---------------- OrderedReduce ----------------

TEST(OrderedReduceTest, SumsEveryItemOnce) {
  ThreadPool pool(4);
  uint64_t total = 0;
  OrderedReduce<uint64_t>(
      pool, /*n=*/1000, /*grain=*/7, /*max_shards=*/16,
      []() { return uint64_t{0}; },
      [](uint64_t& acc, size_t i) { acc += i; },
      [&](uint64_t& acc, size_t) { total += acc; });
  EXPECT_EQ(total, 499500u);
}

TEST(OrderedReduceTest, MergeRunsInAscendingShardOrder) {
  ThreadPool pool(4);
  std::vector<size_t> merge_order;
  OrderedReduce<int>(
      pool, /*n=*/100, /*grain=*/1, /*max_shards=*/8,
      []() { return 0; }, [](int&, size_t) {},
      [&](int&, size_t s) { merge_order.push_back(s); });
  std::vector<size_t> expected(8);
  std::iota(expected.begin(), expected.end(), size_t{0});
  EXPECT_EQ(merge_order, expected);
}

TEST(OrderedReduceTest, ItemsAscendWithinEachShard) {
  ThreadPool pool(4);
  // Each shard records the indices it folds; within a shard they must be
  // contiguous and ascending, and shard s must cover [s*n/S, (s+1)*n/S).
  const size_t n = 103, grain = 10, max_shards = 6;
  const size_t shards = NumReductionShards(n, grain, max_shards);
  std::vector<std::vector<size_t>> per_shard;
  per_shard.reserve(shards);
  OrderedReduce<std::vector<size_t>*>(
      pool, n, grain, max_shards,
      [&]() {
        per_shard.emplace_back();
        return &per_shard.back();
      },
      [](std::vector<size_t>* acc, size_t i) { acc->push_back(i); },
      [](std::vector<size_t>*, size_t) {});
  ASSERT_EQ(per_shard.size(), shards);
  for (size_t s = 0; s < shards; ++s) {
    const size_t lo = s * n / shards;
    const size_t hi = (s + 1) * n / shards;
    ASSERT_EQ(per_shard[s].size(), hi - lo);
    for (size_t k = 0; k < per_shard[s].size(); ++k) {
      EXPECT_EQ(per_shard[s][k], lo + k);
    }
  }
}

TEST(OrderedReduceTest, FloatSumBitIdenticalAcrossPoolSizes) {
  // The determinism contract: the same reduction on pools of different
  // sizes produces bit-identical floating-point results.
  std::vector<double> values(10'000);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto reduce_with = [&](int threads) {
    ThreadPool pool(threads);
    double total = 0;
    OrderedReduce<double>(
        pool, values.size(), /*grain=*/4, /*max_shards=*/32,
        []() { return 0.0; },
        [&](double& acc, size_t i) { acc += values[i]; },
        [&](double& acc, size_t) { total += acc; });
    return total;
  };
  const double serial = reduce_with(1);
  for (int threads : {2, 3, 4, 8}) {
    EXPECT_EQ(serial, reduce_with(threads)) << "threads=" << threads;
  }
}

TEST(OrderedReduceTest, EmptyRangeCallsNothing) {
  ThreadPool pool(4);
  int make_calls = 0, merge_calls = 0;
  OrderedReduce<int>(
      pool, /*n=*/0, /*grain=*/4, /*max_shards=*/8,
      [&]() {
        ++make_calls;
        return 0;
      },
      [](int&, size_t) {}, [&](int&, size_t) { ++merge_calls; });
  EXPECT_EQ(make_calls, 0);
  EXPECT_EQ(merge_calls, 0);
}

}  // namespace
}  // namespace pae::util
