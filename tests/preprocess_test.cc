// Unit tests for the §V-A seed-construction chain on hand-built
// corpora: candidate discovery, aggregation edge cases, value cleaning,
// and value diversification.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/document.h"
#include "core/preprocess.h"

namespace pae::core {
namespace {

/// Builds a corpus whose pages each contain exactly one dictionary
/// table with the given rows (and a matching text mention per row).
ProcessedCorpus TableCorpus(
    const std::vector<std::vector<std::pair<std::string, std::string>>>&
        pages,
    std::vector<std::string> queries = {},
    text::Language language = text::Language::kJa) {
  Corpus corpus;
  corpus.language = language;
  corpus.query_log = std::move(queries);
  corpus.tokenizer_lexicon = {"重量", "カラー", "色",  "です",
                              "容量", "サイズ", "備考"};
  int id = 0;
  for (const auto& rows : pages) {
    ProductPage page;
    page.product_id = "p" + std::to_string(id++);
    std::string html = "<table>";
    for (const auto& [k, v] : rows) {
      html += "<tr><th>" + k + "</th><td>" + v + "</td></tr>";
    }
    // Structural padding: single-row grids are not dictionary-form
    // (by design), and empty cells are skipped by extraction.
    html += "<tr><th>空欄</th><td></td></tr>";
    html += "</table>";
    for (const auto& [k, v] : rows) {
      html += "<p>" + k + "は" + v + "です。</p>";
    }
    page.html = html;
    corpus.pages.push_back(std::move(page));
  }
  return ProcessCorpus(corpus);
}

TEST(DiscoverCandidatesTest, CountsAndProducts) {
  ProcessedCorpus corpus = TableCorpus({
      {{"カラー", "赤"}, {"重量", "5kg"}},
      {{"カラー", "赤"}},
      {{"カラー", "青"}},
  });
  CandidateSet set = DiscoverCandidates(corpus);
  ASSERT_EQ(set.pairs.size(), 3u);
  // Sorted by support: (カラー, 赤) has count 2.
  EXPECT_EQ(set.pairs[0].attribute, "カラー");
  EXPECT_EQ(set.pairs[0].value, "赤");
  EXPECT_EQ(set.pairs[0].count, 2);
  EXPECT_EQ(set.pairs[0].product_ids.size(), 2u);
}

TEST(DiscoverCandidatesTest, EmptyCorpus) {
  ProcessedCorpus corpus = TableCorpus({});
  EXPECT_TRUE(DiscoverCandidates(corpus).pairs.empty());
}

TEST(AggregationTest, SubsetRuleMergesSmallRangeIntoLarge) {
  // 色 has 3 values, 2 of which are inside カラー's range of 6 — the
  // small-corpus subset rule should merge them.
  std::vector<std::vector<std::pair<std::string, std::string>>> pages;
  for (const char* v : {"赤", "青", "白", "黒", "緑", "紫"}) {
    pages.push_back({{"カラー", v}});
  }
  pages.push_back({{"色", "赤"}});
  pages.push_back({{"色", "青"}});
  pages.push_back({{"色", "金"}});
  ProcessedCorpus corpus = TableCorpus(pages);
  CandidateSet set = DiscoverCandidates(corpus);
  auto mapping = AggregateAttributes(set, AggregationConfig{});
  EXPECT_EQ(mapping.at("色"), "カラー");
}

TEST(AggregationTest, ComparableRangesStayApart) {
  // Two attributes sharing most values but with equal range sizes
  // (sibling attributes like optical/digital zoom) must NOT merge via
  // the subset rule.
  std::vector<std::vector<std::pair<std::string, std::string>>> pages;
  for (const char* v : {"2倍", "4倍", "8倍", "10倍", "20倍"}) {
    pages.push_back({{"光学", v}});
    pages.push_back({{"デジタル", v}});
  }
  ProcessedCorpus corpus = TableCorpus(pages);
  CandidateSet set = DiscoverCandidates(corpus);
  AggregationConfig config;
  config.threshold = 0.95;  // keep the overlap rule out of the way
  auto mapping = AggregateAttributes(set, config);
  EXPECT_EQ(mapping.at("光学"), "光学");
  EXPECT_EQ(mapping.at("デジタル"), "デジタル");
}

TEST(BuildSeedTest, QueryLogRescuesRareValues) {
  // "金" appears once (below min_count) but is searched by users.
  std::vector<std::vector<std::pair<std::string, std::string>>> pages = {
      {{"カラー", "赤"}}, {{"カラー", "赤"}}, {{"カラー", "赤"}},
      {{"カラー", "金"}},
  };
  PreprocessConfig config;
  config.value_min_count = 3;
  config.enable_diversification = false;

  ProcessedCorpus without_queries = TableCorpus(pages);
  Seed seed_without = BuildSeed(without_queries, config);
  bool gold_without = false;
  for (const auto& pair : seed_without.pairs) {
    if (pair.value_display == "金") gold_without = true;
  }
  EXPECT_FALSE(gold_without);

  ProcessedCorpus with_queries = TableCorpus(pages, {"金"});
  Seed seed_with = BuildSeed(with_queries, config);
  bool gold_with = false;
  for (const auto& pair : seed_with.pairs) {
    if (pair.value_display == "金") gold_with = true;
  }
  EXPECT_TRUE(gold_with);
}

TEST(BuildSeedTest, DiversificationRecoversRareShapeValues) {
  // Frequent integer weights + several rare decimal weights sharing one
  // PoS shape: cleaning drops the decimals, diversification restores
  // the most frequent ones per shape.
  std::vector<std::vector<std::pair<std::string, std::string>>> pages = {
      {{"重量", "5kg"}}, {{"重量", "5kg"}}, {{"重量", "5kg"}},
      {{"重量", "7kg"}}, {{"重量", "7kg"}}, {{"重量", "7kg"}},
      {{"重量", "2.5kg"}}, {{"重量", "3.5kg"}}, {{"重量", "4.5kg"}},
      {{"重量", "1.5kg"}},
  };
  PreprocessConfig config;
  config.value_min_count = 3;
  config.diversify_min_shape_support = 3;

  config.enable_diversification = false;
  Seed seed_off = BuildSeed(TableCorpus(pages), config);
  int decimals_off = 0;
  for (const auto& pair : seed_off.pairs) {
    if (pair.value_display.find('.') != std::string::npos) ++decimals_off;
  }
  EXPECT_EQ(decimals_off, 0);

  config.enable_diversification = true;
  Seed seed_on = BuildSeed(TableCorpus(pages), config);
  int decimals_on = 0;
  for (const auto& pair : seed_on.pairs) {
    if (pair.value_display.find('.') != std::string::npos) ++decimals_on;
  }
  EXPECT_GT(decimals_on, 0);
  EXPECT_GT(seed_on.pairs_added_by_diversification, 0u);
}

TEST(BuildSeedTest, DiversificationShapeFloorBlocksScatteredJunk) {
  // The junk attribute 備考 gets unique long sentences: no shape reaches
  // the support floor, so diversification never resurrects it.
  std::vector<std::vector<std::pair<std::string, std::string>>> pages = {
      {{"カラー", "赤"}}, {{"カラー", "赤"}}, {{"カラー", "赤"}},
      {{"備考", "カラーと重量と色です"}},
      {{"備考", "サイズは容量です"}},
      {{"備考", "重量"}},
  };
  PreprocessConfig config;
  config.value_min_count = 3;
  config.diversify_min_shape_support = 3;
  Seed seed = BuildSeed(TableCorpus(pages), config);
  for (const auto& attribute : seed.attributes) {
    EXPECT_NE(attribute, "備考");
  }
}

TEST(BuildSeedTest, AttributeFilterMatchesSynonymSurfaces) {
  // Filter entries name any surface; the cluster must be kept whichever
  // synonym won the representative election.
  std::vector<std::vector<std::pair<std::string, std::string>>> pages;
  // 色 is the more frequent surface → becomes representative.
  for (const char* v : {"赤", "青", "白", "黒"}) {
    pages.push_back({{"色", v}});
    pages.push_back({{"色", v}});
    pages.push_back({{"色", v}});
    pages.push_back({{"カラー", v}});
    pages.push_back({{"カラー", v}});
  }
  ProcessedCorpus corpus = TableCorpus(pages);
  PreprocessConfig config;
  config.value_min_count = 2;
  config.attribute_filter = {"カラー"};  // the losing surface
  Seed seed = BuildSeed(corpus, config);
  ASSERT_FALSE(seed.pairs.empty());
  EXPECT_EQ(seed.attributes.size(), 1u);
  EXPECT_EQ(seed.attributes[0], "色");  // cluster representative
}

TEST(BuildSeedTest, TableTriplesReferenceSourceProducts) {
  ProcessedCorpus corpus = TableCorpus({
      {{"カラー", "赤"}}, {{"カラー", "赤"}}, {{"カラー", "赤"}},
  });
  PreprocessConfig config;
  config.value_min_count = 2;
  Seed seed = BuildSeed(corpus, config);
  ASSERT_EQ(seed.table_triples.size(), 3u);
  for (const auto& triple : seed.table_triples) {
    EXPECT_EQ(triple.attribute, "カラー");
    EXPECT_EQ(triple.value, "赤");
  }
}

}  // namespace
}  // namespace pae::core
