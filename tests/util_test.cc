#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae {
namespace {

// ---------------- Status / Result ----------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesSetTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailsThrough() {
  PAE_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

// ---------------- strings ----------------

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitSkipEmpty) {
  EXPECT_EQ(StrSplitSkipEmpty(",a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
  EXPECT_EQ(StrJoin({"only"}, "-"), "only");
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StringsTest, AsciiToLowerLeavesUtf8Alone) {
  EXPECT_EQ(AsciiToLower("AbC"), "abc");
  EXPECT_EQ(AsciiToLower("重量X"), "重量x");
}

TEST(StringsTest, IsAsciiDigits) {
  EXPECT_TRUE(IsAsciiDigits("0123"));
  EXPECT_FALSE(IsAsciiDigits(""));
  EXPECT_FALSE(IsAsciiDigits("12a"));
  EXPECT_FALSE(IsAsciiDigits("1.2"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(StrReplaceAll("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(StrReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(StrReplaceAll("abc", "", "zz"), "abc");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

// ---------------- rng ----------------

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleIndexFollowsWeights) {
  Rng rng(8);
  std::vector<double> weights = {1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.SampleIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(10);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  EXPECT_NE(c1.NextU64(), c2.NextU64());
}

// ---------------- table printer ----------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t("Demo");
  t.SetHeader({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22 |"), std::string::npos);
  EXPECT_NE(out.find("| a         | 1  |"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTitleOmitted) {
  TablePrinter t("");
  t.SetHeader({"h"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str().find("=="), std::string::npos);
}

}  // namespace
}  // namespace pae
