#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/mmap_file.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae {
namespace {

// ---------------- Status / Result ----------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesSetTheirCode) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailsThrough() {
  PAE_RETURN_IF_ERROR(Status::Internal("inner"));
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(FailsThrough().code(), StatusCode::kInternal);
}

// ---------------- contract macros ----------------

using ContractDeathTest = testing::Test;

TEST(ContractDeathTest, CheckAbortsWithMessage) {
  EXPECT_DEATH(PAE_CHECK(1 + 1 == 3) << "math broke", "Check failed");
  EXPECT_DEATH(PAE_CHECK_EQ(2, 3), "Check failed");
  EXPECT_DEATH(PAE_CHECK_LT(5, 5), "Check failed");
}

TEST(ContractDeathTest, CheckPassesSilently) {
  PAE_CHECK(true) << "never printed";
  PAE_CHECK_EQ(2, 2);
  PAE_CHECK_GE(3, 2);
}

TEST(ContractDeathTest, DcheckMatchesBuildTier) {
#if PAE_DCHECK_IS_ON
  EXPECT_DEATH(PAE_DCHECK(false) << "contract violated", "Check failed");
  EXPECT_DEATH(PAE_DCHECK_EQ(1, 2), "Check failed");
  EXPECT_DEATH(PAE_DCHECK_FINITE(std::nan("")), "Check failed");
  std::vector<double> poisoned = {1.0, std::nan(""), 3.0};
  EXPECT_DEATH(PAE_DCHECK_FINITE_VEC(poisoned), "Check failed");
#else
  // Release tier: the whole statement must compile to nothing, even
  // with a false condition and a streamed message.
  PAE_DCHECK(false) << "compiled out";
  PAE_DCHECK_EQ(1, 2);
  PAE_DCHECK_FINITE(std::nan(""));
  std::vector<double> poisoned = {std::nan("")};
  PAE_DCHECK_FINITE_VEC(poisoned);
#endif
}

TEST(ContractDeathTest, DcheckOperandsStayEvaluatedExactlyZeroTimes) {
  // The compiled-out form must not evaluate operands; the on form
  // evaluates them once. Either way a passing condition side-effects at
  // most once.
  int calls = 0;
  auto count = [&]() {
    ++calls;
    return true;
  };
  PAE_DCHECK(count());
  EXPECT_EQ(calls, PAE_DCHECK_IS_ON ? 1 : 0);
}

TEST(ContractDeathTest, FiniteGuardsAcceptFiniteValues) {
  PAE_DCHECK_FINITE(0.0);
  PAE_DCHECK_FINITE(-1e300);
  const std::vector<float> ok = {1.0f, -2.5f, 0.0f};
  PAE_DCHECK_FINITE_VEC(ok);
  EXPECT_TRUE(IsFiniteVec(ok));
  const std::vector<double> bad = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_FALSE(IsFiniteVec(bad));
}

TEST(ContractDeathTest, ResultMisuseDies) {
#if PAE_DCHECK_IS_ON
  // value() on an error Result and constructing a Result from an OK
  // status are both contract violations, not recoverable errors.
  EXPECT_DEATH(
      {
        Result<int> r(Status::NotFound("gone"));
        (void)r.value();
      },
      "Result::value\\(\\) on error");
  EXPECT_DEATH({ Result<int> r(Status::Ok()); }, "OK status needs a value");
#else
  GTEST_SKIP() << "Result contracts compiled out (PAE_DCHECK off)";
#endif
}

// ---------------- strings ----------------

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,,b", ','),
            (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, SplitSkipEmpty) {
  EXPECT_EQ(StrSplitSkipEmpty(",a,,b,", ','),
            (std::vector<std::string>{"a", "b"}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, "-"), "a-b-c");
  EXPECT_EQ(StrJoin({}, "-"), "");
  EXPECT_EQ(StrJoin({"only"}, "-"), "only");
}

TEST(StringsTest, Strip) {
  EXPECT_EQ(StripAsciiWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

TEST(StringsTest, AsciiToLowerLeavesUtf8Alone) {
  EXPECT_EQ(AsciiToLower("AbC"), "abc");
  EXPECT_EQ(AsciiToLower("重量X"), "重量x");
}

TEST(StringsTest, IsAsciiDigits) {
  EXPECT_TRUE(IsAsciiDigits("0123"));
  EXPECT_FALSE(IsAsciiDigits(""));
  EXPECT_FALSE(IsAsciiDigits("12a"));
  EXPECT_FALSE(IsAsciiDigits("1.2"));
}

TEST(StringsTest, ReplaceAll) {
  EXPECT_EQ(StrReplaceAll("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(StrReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(StrReplaceAll("abc", "", "zz"), "abc");
}

TEST(StringsTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

// ---------------- rng ----------------

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(4);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(6);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, SampleIndexFollowsWeights) {
  Rng rng(8);
  std::vector<double> weights = {1, 0, 3};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.SampleIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.4);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(10);
  Rng c1 = parent.Fork(1);
  Rng c2 = parent.Fork(2);
  EXPECT_NE(c1.NextU64(), c2.NextU64());
}

// ---------------- table printer ----------------

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t("Demo");
  t.SetHeader({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Demo"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22 |"), std::string::npos);
  EXPECT_NE(out.find("| a         | 1  |"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTitleOmitted) {
  TablePrinter t("");
  t.SetHeader({"h"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str().find("=="), std::string::npos);
}

// ---------------- ErrnoString ----------------

TEST(ErrnoStringTest, KnownErrnoFormats) {
  const std::string msg = ErrnoString(ENOENT);
  EXPECT_FALSE(msg.empty());
  // Exact text is libc's business, but ENOENT universally mentions the
  // file or directory.
  EXPECT_NE(msg.find("file"), std::string::npos) << msg;
}

TEST(ErrnoStringTest, DistinctErrnosDistinctMessages) {
  EXPECT_NE(ErrnoString(ENOENT), ErrnoString(EACCES));
}

// ---------------- MmapFile error paths ----------------
//
// Every branch must come back as a clean Status — no crash, no leak
// (the ASan legs run this binary), no half-constructed mapping.

std::string MmapTempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("pae_mmap_" + name))
      .string();
}

TEST(MmapFileTest, NonexistentFileIsNotFound) {
  auto result = util::MmapFile::Open(MmapTempPath("does_not_exist.bin"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(MmapFileTest, EmptyFileMapsWithZeroSize) {
  const std::string path = MmapTempPath("empty.bin");
  { std::ofstream out(path, std::ios::binary | std::ios::trunc); }
  auto result = util::MmapFile::Open(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().size(), 0u);
  EXPECT_EQ(result.value().data(), nullptr);
  EXPECT_TRUE(result.value().mapped());
  std::remove(path.c_str());
}

TEST(MmapFileTest, DirectoryIsInvalidArgument) {
  auto result = util::MmapFile::Open(
      std::filesystem::temp_directory_path().string());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().ToString().find("not a regular file"),
            std::string::npos);
}

TEST(MmapFileTest, UnreadableFileIsNotFound) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root ignores file modes; cannot provoke EACCES";
  }
  const std::string path = MmapTempPath("unreadable.bin");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "secret";
  }
  ASSERT_EQ(::chmod(path.c_str(), 0), 0);
  auto result = util::MmapFile::Open(path);
  EXPECT_FALSE(result.ok());
  ::chmod(path.c_str(), 0600);
  std::remove(path.c_str());
}

TEST(MmapFileTest, RegularFileRoundTrips) {
  const std::string path = MmapTempPath("round_trip.bin");
  const std::string payload = "paez bytes \x01\x02\x03";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << payload;
  }
  auto result = util::MmapFile::Open(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().size(), payload.size());
  EXPECT_EQ(std::memcmp(result.value().data(), payload.data(),
                        payload.size()),
            0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pae
