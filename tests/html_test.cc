#include <gtest/gtest.h>

#include "html/parser.h"
#include "html/table_extractor.h"

namespace pae::html {
namespace {

TEST(EntityTest, BasicNamedEntities) {
  EXPECT_EQ(DecodeEntities("a &amp; b &lt;x&gt; &quot;q&quot; &nbsp;"),
            "a & b <x> \"q\"  ");
}

TEST(EntityTest, NumericReferences) {
  EXPECT_EQ(DecodeEntities("&#65;&#x42;"), "AB");
  EXPECT_EQ(DecodeEntities("&#x91CF;"), "量");
}

TEST(EntityTest, UnknownEntityKeptVerbatim) {
  EXPECT_EQ(DecodeEntities("&bogus; &"), "&bogus; &");
}

TEST(ParserTest, SimpleTree) {
  auto root = ParseHtml("<html><body><p>hello</p></body></html>");
  ASSERT_EQ(root->children.size(), 1u);
  const HtmlNode* html = root->children[0].get();
  EXPECT_TRUE(html->IsElement("html"));
  const HtmlNode* body = html->children[0].get();
  ASSERT_TRUE(body->IsElement("body"));
  const HtmlNode* p = body->children[0].get();
  ASSERT_TRUE(p->IsElement("p"));
  ASSERT_EQ(p->children.size(), 1u);
  EXPECT_EQ(p->children[0]->text, "hello");
}

TEST(ParserTest, UppercaseTagsNormalized) {
  auto root = ParseHtml("<DIV>x</DIV>");
  EXPECT_TRUE(root->children[0]->IsElement("div"));
}

TEST(ParserTest, VoidElementsDontNest) {
  auto root = ParseHtml("<p>a<br>b</p>");
  const HtmlNode* p = root->children[0].get();
  // text 'a', <br>, text 'b' are siblings under <p>.
  ASSERT_EQ(p->children.size(), 3u);
  EXPECT_TRUE(p->children[1]->IsElement("br"));
}

TEST(ParserTest, UnmatchedCloseTagIgnored) {
  auto root = ParseHtml("<div>a</span>b</div>");
  const HtmlNode* div = root->children[0].get();
  ASSERT_EQ(div->children.size(), 2u);
  EXPECT_EQ(div->children[0]->text, "a");
  EXPECT_EQ(div->children[1]->text, "b");
}

TEST(ParserTest, UnclosedElementsClosedAtEof) {
  auto root = ParseHtml("<div><p>text");
  const HtmlNode* div = root->children[0].get();
  ASSERT_TRUE(div->IsElement("div"));
  ASSERT_EQ(div->children.size(), 1u);
  EXPECT_TRUE(div->children[0]->IsElement("p"));
}

TEST(ParserTest, CommentsAndDoctypeSkipped) {
  auto root = ParseHtml("<!DOCTYPE html><!-- note --><p>x</p>");
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_TRUE(root->children[0]->IsElement("p"));
}

TEST(ParserTest, ScriptBodyDropped) {
  auto root = ParseHtml("<p>a</p><script>var x = '<p>evil</p>';</script>"
                        "<p>b</p>");
  std::string text = ExtractText(*root);
  EXPECT_NE(text.find("a"), std::string::npos);
  EXPECT_NE(text.find("b"), std::string::npos);
  EXPECT_EQ(text.find("evil"), std::string::npos);
}

TEST(ParserTest, SelfClosingTag) {
  auto root = ParseHtml("<div><img/>x</div>");
  const HtmlNode* div = root->children[0].get();
  ASSERT_EQ(div->children.size(), 2u);
  EXPECT_EQ(div->children[1]->text, "x");
}

TEST(ParserTest, AttributesDiscardedButTagParsed) {
  auto root = ParseHtml("<div class=\"a b\" id='z'>x</div>");
  EXPECT_TRUE(root->children[0]->IsElement("div"));
}

TEST(ParserTest, EntitiesDecodedInText) {
  auto root = ParseHtml("<p>5 &lt; 7 &amp; 9</p>");
  EXPECT_EQ(root->children[0]->children[0]->text, "5 < 7 & 9");
}

TEST(ExtractTextTest, BlockBoundariesBecomeNewlines) {
  auto root = ParseHtml("<p>one</p><p>two</p>");
  std::string text = ExtractText(*root);
  EXPECT_NE(text.find("one\n"), std::string::npos);
  EXPECT_NE(text.find("two"), std::string::npos);
}

TEST(ExtractTextTest, InlineElementsDoNotBreak) {
  auto root = ParseHtml("<p>a<b>b</b>c</p>");
  std::string text = ExtractText(*root);
  EXPECT_NE(text.find("abc"), std::string::npos);
}

TEST(FindAllTest, DocumentOrder) {
  auto root = ParseHtml("<div><p>1</p><span><p>2</p></span></div><p>3</p>");
  auto ps = FindAll(*root, "p");
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps[0]->children[0]->text, "1");
  EXPECT_EQ(ps[2]->children[0]->text, "3");
}

// ---------------- tables ----------------

constexpr const char* kRowTable =
    "<table>"
    "<tr><th>重量</th><td>5kg</td></tr>"
    "<tr><th>カラー</th><td>ブラック</td></tr>"
    "</table>";

constexpr const char* kColTable =
    "<table>"
    "<tr><th>重量</th><th>カラー</th><th>サイズ</th></tr>"
    "<tr><td>5kg</td><td>ブラック</td><td>M</td></tr>"
    "</table>";

TEST(TableTest, ExtractGrid) {
  auto root = ParseHtml(kRowTable);
  auto tables = FindAll(*root, "table");
  ASSERT_EQ(tables.size(), 1u);
  TableGrid grid = ExtractGrid(*tables[0]);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0], (std::vector<std::string>{"重量", "5kg"}));
}

TEST(TableTest, TwoColumnDictionary) {
  auto root = ParseHtml(kRowTable);
  auto dicts = ExtractDictionaryTables(*root);
  ASSERT_EQ(dicts.size(), 1u);
  ASSERT_EQ(dicts[0].entries.size(), 2u);
  EXPECT_EQ(dicts[0].entries[0].first, "重量");
  EXPECT_EQ(dicts[0].entries[0].second, "5kg");
  EXPECT_EQ(dicts[0].entries[1].first, "カラー");
}

TEST(TableTest, TwoRowDictionary) {
  auto root = ParseHtml(kColTable);
  auto dicts = ExtractDictionaryTables(*root);
  ASSERT_EQ(dicts.size(), 1u);
  ASSERT_EQ(dicts[0].entries.size(), 3u);
  EXPECT_EQ(dicts[0].entries[2].first, "サイズ");
  EXPECT_EQ(dicts[0].entries[2].second, "M");
}

TEST(TableTest, NonDictionaryTableRejected) {
  auto root = ParseHtml(
      "<table>"
      "<tr><td>a</td><td>b</td><td>c</td></tr>"
      "<tr><td>1</td><td>2</td><td>3</td></tr>"
      "<tr><td>4</td><td>5</td><td>6</td></tr>"
      "</table>");
  EXPECT_TRUE(ExtractDictionaryTables(*root).empty());
}

TEST(TableTest, SingleRowRejected) {
  auto root =
      ParseHtml("<table><tr><td>a</td><td>b</td></tr></table>");
  EXPECT_TRUE(ExtractDictionaryTables(*root).empty());
}

TEST(TableTest, EmptyCellsSkipped) {
  auto root = ParseHtml(
      "<table>"
      "<tr><th>重量</th><td></td></tr>"
      "<tr><th>カラー</th><td>白</td></tr>"
      "</table>");
  auto dicts = ExtractDictionaryTables(*root);
  ASSERT_EQ(dicts.size(), 1u);
  ASSERT_EQ(dicts[0].entries.size(), 1u);
  EXPECT_EQ(dicts[0].entries[0].first, "カラー");
}

TEST(TableTest, MarkupInsideCellsStripped) {
  auto root = ParseHtml(
      "<table>"
      "<tr><th><b>重量</b></th><td><span>5kg</span></td></tr>"
      "<tr><th>色</th><td>白</td></tr>"
      "</table>");
  auto dicts = ExtractDictionaryTables(*root);
  ASSERT_EQ(dicts.size(), 1u);
  EXPECT_EQ(dicts[0].entries[0].first, "重量");
  EXPECT_EQ(dicts[0].entries[0].second, "5kg");
}

TEST(TableTest, MultipleTablesAllFound) {
  std::string page = std::string(kRowTable) + kColTable;
  auto root = ParseHtml(page);
  EXPECT_EQ(ExtractDictionaryTables(*root).size(), 2u);
}

TEST(GridToDictionaryTest, AmbiguousTwoByTwoReadAsRows) {
  // 2×2 grids are interpreted as two key/value rows (documented
  // behaviour; the generator only emits 2-row layout for ≥3 columns).
  TableGrid grid = {{"A", "B"}, {"C", "D"}};
  DictionaryTable dict;
  ASSERT_TRUE(GridToDictionary(grid, &dict));
  ASSERT_EQ(dict.entries.size(), 2u);
  EXPECT_EQ(dict.entries[0].first, "A");
  EXPECT_EQ(dict.entries[0].second, "B");
}

}  // namespace
}  // namespace pae::html
