#include <gtest/gtest.h>

#include <cmath>

#include "crf/crf_model.h"
#include "crf/crf_tagger.h"
#include "crf/feature_extractor.h"
#include "crf/owlqn.h"
#include "text/labeled_sequence.h"
#include "util/rng.h"

namespace pae::crf {
namespace {

// ---------------- feature extraction ----------------

text::LabeledSequence MakeSeq() {
  text::LabeledSequence seq;
  seq.tokens = {"重量", "は", "5", "kg"};
  seq.pos = {"NN", "PRT", "NUM", "UNIT"};
  seq.sentence_index = 2;
  return seq;
}

TEST(FeatureExtractorTest, ContainsPaperTemplate) {
  std::vector<std::vector<std::string>> feats;
  FeatureConfig config;
  config.window = 2;
  ExtractFeatures(MakeSeq(), config, &feats);
  ASSERT_EQ(feats.size(), 4u);
  const auto& f0 = feats[0];
  // The word itself.
  EXPECT_NE(std::find(f0.begin(), f0.end(), "w[0]=重量"), f0.end());
  // Window words with boundary padding.
  EXPECT_NE(std::find(f0.begin(), f0.end(), "w[-1]=<s>"), f0.end());
  EXPECT_NE(std::find(f0.begin(), f0.end(), "w[1]=は"), f0.end());
  EXPECT_NE(std::find(f0.begin(), f0.end(), "w[2]=5"), f0.end());
  // PoS of window positions.
  EXPECT_NE(std::find(f0.begin(), f0.end(), "p[0]=NN"), f0.end());
  EXPECT_NE(std::find(f0.begin(), f0.end(), "p[2]=NUM"), f0.end());
  // PoS concatenation of the window.
  EXPECT_NE(std::find(f0.begin(), f0.end(),
                      "pwin=<s>|<s>|NN|PRT|NUM"),
            f0.end());
  // Sentence number.
  EXPECT_NE(std::find(f0.begin(), f0.end(), "sent=2"), f0.end());
}

TEST(FeatureExtractorTest, SentenceBucketCapped) {
  text::LabeledSequence seq = MakeSeq();
  seq.sentence_index = 99;
  FeatureConfig config;
  config.max_sentence_bucket = 8;
  std::vector<std::vector<std::string>> feats;
  ExtractFeatures(seq, config, &feats);
  EXPECT_NE(std::find(feats[0].begin(), feats[0].end(), "sent=8"),
            feats[0].end());
}

TEST(FeatureExtractorTest, EmptySequence) {
  text::LabeledSequence seq;
  std::vector<std::vector<std::string>> feats;
  ExtractFeatures(seq, FeatureConfig{}, &feats);
  EXPECT_TRUE(feats.empty());
}

// ---------------- OWL-QN ----------------

TEST(OwlqnTest, MinimizesQuadratic) {
  // f(x) = Σ (x_i - t_i)^2, minimum at t.
  const std::vector<double> target = {1.5, -2.0, 0.25};
  SmoothObjective obj = [&](const std::vector<double>& x,
                            std::vector<double>* grad) {
    grad->assign(x.size(), 0.0);
    double f = 0;
    for (size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - target[i];
      f += d * d;
      (*grad)[i] = 2 * d;
    }
    return f;
  };
  std::vector<double> x(3, 0.0);
  OwlqnOptions options;
  options.epsilon = 1e-8;
  OwlqnReport report;
  ASSERT_TRUE(MinimizeOwlqn(obj, options, &x, &report).ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], target[i], 1e-4);
}

TEST(OwlqnTest, L1ProducesSoftThresholdedSolution) {
  // min ½(x-a)² + c|x|  →  x* = sign(a)·max(0, |a|-c).
  const double a = 2.0, c = 0.5;
  SmoothObjective obj = [&](const std::vector<double>& x,
                            std::vector<double>* grad) {
    grad->assign(1, x[0] - a);
    return 0.5 * (x[0] - a) * (x[0] - a);
  };
  std::vector<double> x = {0.0};
  OwlqnOptions options;
  options.l1_weight = c;
  options.epsilon = 1e-9;
  options.max_iterations = 200;
  OwlqnReport report;
  ASSERT_TRUE(MinimizeOwlqn(obj, options, &x, &report).ok());
  EXPECT_NEAR(x[0], 1.5, 1e-3);
}

TEST(OwlqnTest, StrongL1DrivesWeightToZero) {
  const double a = 0.3, c = 1.0;  // |a| < c → x* = 0
  SmoothObjective obj = [&](const std::vector<double>& x,
                            std::vector<double>* grad) {
    grad->assign(1, x[0] - a);
    return 0.5 * (x[0] - a) * (x[0] - a);
  };
  std::vector<double> x = {0.8};
  OwlqnOptions options;
  options.l1_weight = c;
  options.max_iterations = 200;
  OwlqnReport report;
  ASSERT_TRUE(MinimizeOwlqn(obj, options, &x, &report).ok());
  EXPECT_NEAR(x[0], 0.0, 1e-4);
}

TEST(OwlqnTest, RejectsEmptyVector) {
  std::vector<double> x;
  OwlqnReport report;
  SmoothObjective obj = [](const std::vector<double>&,
                           std::vector<double>*) { return 0.0; };
  EXPECT_FALSE(MinimizeOwlqn(obj, OwlqnOptions{}, &x, &report).ok());
}

TEST(OwlqnTest, RosenbrockConverges) {
  SmoothObjective obj = [](const std::vector<double>& x,
                           std::vector<double>* grad) {
    const double a = 1.0, b = 100.0;
    grad->assign(2, 0.0);
    const double f = (a - x[0]) * (a - x[0]) +
                     b * (x[1] - x[0] * x[0]) * (x[1] - x[0] * x[0]);
    (*grad)[0] = -2 * (a - x[0]) - 4 * b * x[0] * (x[1] - x[0] * x[0]);
    (*grad)[1] = 2 * b * (x[1] - x[0] * x[0]);
    return f;
  };
  std::vector<double> x = {-1.2, 1.0};
  OwlqnOptions options;
  options.max_iterations = 500;
  options.epsilon = 1e-10;
  OwlqnReport report;
  ASSERT_TRUE(MinimizeOwlqn(obj, options, &x, &report).ok());
  EXPECT_NEAR(x[0], 1.0, 1e-2);
  EXPECT_NEAR(x[1], 1.0, 1e-2);
}

// ---------------- CRF model core ----------------

/// Builds a tiny model with known labels/features and a random compiled
/// sequence for gradient/inference checks.
struct TinyCrf {
  CrfModel model;
  CompiledSequence seq;
  std::vector<double> weights;

  explicit TinyCrf(uint64_t seed, size_t num_labels = 3,
                   size_t num_features = 5, size_t length = 4) {
    Rng rng(seed);
    for (size_t y = 0; y < num_labels; ++y) {
      model.AddLabel("L" + std::to_string(y));
    }
    for (size_t f = 0; f < num_features; ++f) {
      model.AddFeature("F" + std::to_string(f));
    }
    seq.features.resize(length);
    seq.labels.resize(length);
    for (size_t t = 0; t < length; ++t) {
      for (size_t f = 0; f < num_features; ++f) {
        if (rng.Bernoulli(0.5)) {
          seq.features[t].push_back(static_cast<int>(f));
        }
      }
      seq.labels[t] = static_cast<int>(rng.NextBounded(num_labels));
    }
    weights.resize(model.WeightDim());
    for (double& w : weights) w = rng.NextGaussian() * 0.4;
  }
};

TEST(CrfModelTest, MarginalsSumToOne) {
  TinyCrf tiny(21);
  std::vector<double> marginals;
  tiny.model.Marginals(tiny.seq, tiny.weights, &marginals);
  const size_t L = tiny.model.num_labels();
  for (size_t t = 0; t < tiny.seq.length(); ++t) {
    double sum = 0;
    for (size_t y = 0; y < L; ++y) sum += marginals[t * L + y];
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(CrfModelTest, NllIsNonNegativeLogProb) {
  TinyCrf tiny(22);
  std::vector<double> grad(tiny.weights.size(), 0.0);
  const double nll = tiny.model.SequenceNll(tiny.seq, tiny.weights, &grad);
  EXPECT_GE(nll, 0.0);  // -log p ≥ 0
}

// Gradient check against central finite differences.
class CrfGradientTest : public ::testing::TestWithParam<int> {};

TEST_P(CrfGradientTest, AnalyticMatchesNumeric) {
  TinyCrf tiny(static_cast<uint64_t>(GetParam()) * 131 + 7);
  std::vector<double> grad(tiny.weights.size(), 0.0);
  tiny.model.SequenceNll(tiny.seq, tiny.weights, &grad);

  Rng rng(static_cast<uint64_t>(GetParam()) + 500);
  const double eps = 1e-6;
  for (int check = 0; check < 12; ++check) {
    const size_t i = rng.NextBounded(tiny.weights.size());
    std::vector<double> wp = tiny.weights, wm = tiny.weights;
    wp[i] += eps;
    wm[i] -= eps;
    std::vector<double> dummy(tiny.weights.size(), 0.0);
    const double fp = tiny.model.SequenceNll(tiny.seq, wp, &dummy);
    dummy.assign(tiny.weights.size(), 0.0);
    const double fm = tiny.model.SequenceNll(tiny.seq, wm, &dummy);
    const double numeric = (fp - fm) / (2 * eps);
    EXPECT_NEAR(grad[i], numeric, 1e-4)
        << "weight index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrfGradientTest, ::testing::Range(0, 8));

// Viterbi against brute-force enumeration.
class CrfViterbiTest : public ::testing::TestWithParam<int> {};

TEST_P(CrfViterbiTest, MatchesBruteForce) {
  TinyCrf tiny(static_cast<uint64_t>(GetParam()) * 31 + 3,
               /*num_labels=*/3, /*num_features=*/4, /*length=*/5);
  const size_t L = tiny.model.num_labels();
  const size_t T = tiny.seq.length();

  std::vector<double> scores;
  tiny.model.UnigramScores(tiny.seq, tiny.weights, &scores);
  const size_t F = tiny.model.num_features();
  const double* trans = tiny.weights.data() + F * L;
  const double* start = trans + L * L;
  const double* end = start + L;

  double best = -1e300;
  std::vector<int> best_path;
  std::vector<int> path(T, 0);
  // Enumerate all L^T paths.
  const size_t total = static_cast<size_t>(std::pow(L, T));
  for (size_t code = 0; code < total; ++code) {
    size_t c = code;
    for (size_t t = 0; t < T; ++t) {
      path[t] = static_cast<int>(c % L);
      c /= L;
    }
    double score = start[path[0]] + end[path[T - 1]];
    for (size_t t = 0; t < T; ++t) {
      score += scores[t * L + static_cast<size_t>(path[t])];
      if (t > 0) {
        score += trans[static_cast<size_t>(path[t - 1]) * L +
                       static_cast<size_t>(path[t])];
      }
    }
    if (score > best) {
      best = score;
      best_path = path;
    }
  }
  EXPECT_EQ(tiny.model.Viterbi(tiny.seq, tiny.weights), best_path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrfViterbiTest, ::testing::Range(0, 8));

// ---------------- end-to-end tagger ----------------

std::vector<text::LabeledSequence> PatternedData(int n, uint64_t seed) {
  // Pattern: "<attr> は <value> です" where <value> after 色 is a color
  // word and after 重 is a number+kg.
  Rng rng(seed);
  const std::vector<std::string> colors = {"赤", "青", "白", "黒"};
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < n; ++i) {
    text::LabeledSequence seq;
    if (rng.Bernoulli(0.5)) {
      const std::string color = colors[rng.NextBounded(colors.size())];
      seq.tokens = {"色", "は", color, "です"};
      seq.pos = {"NN", "PRT", "NN", "VB"};
      seq.labels = {"O", "O", "B-色", "O"};
    } else {
      const std::string num = std::to_string(rng.NextInt(1, 9));
      seq.tokens = {"重", "は", num, "kg", "です"};
      seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
      seq.labels = {"O", "O", "B-重", "I-重", "O"};
    }
    data.push_back(std::move(seq));
  }
  return data;
}

TEST(CrfTaggerTest, LearnsSimplePattern) {
  CrfOptions options;
  options.max_iterations = 50;
  CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(PatternedData(120, 77)).ok());

  // Unseen value in a known context: window features carry it.
  text::LabeledSequence probe;
  probe.tokens = {"重", "は", "7", "kg", "です"};
  probe.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
  std::vector<std::string> labels = tagger.Predict(probe);
  EXPECT_EQ(labels[2], "B-重");
  EXPECT_EQ(labels[3], "I-重");
  EXPECT_EQ(labels[0], "O");
}

TEST(CrfTaggerTest, EmptyTrainingSetRejected) {
  CrfTagger tagger;
  EXPECT_FALSE(tagger.Train({}).ok());
}

TEST(CrfTaggerTest, MissingLabelsRejected) {
  text::LabeledSequence seq;
  seq.tokens = {"a"};
  seq.pos = {"NN"};
  CrfTagger tagger;
  EXPECT_FALSE(tagger.Train({seq}).ok());
}

TEST(CrfTaggerTest, UntrainedPredictsOutside) {
  CrfTagger tagger;
  text::LabeledSequence probe;
  probe.tokens = {"a", "b"};
  probe.pos = {"NN", "NN"};
  EXPECT_EQ(tagger.Predict(probe),
            (std::vector<std::string>{"O", "O"}));
}

TEST(CrfTaggerTest, UnknownFeaturesHandledAtPrediction) {
  CrfOptions options;
  options.max_iterations = 20;
  CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(PatternedData(40, 88)).ok());
  text::LabeledSequence probe;
  probe.tokens = {"全く", "新しい", "文"};
  probe.pos = {"X", "Y", "Z"};
  std::vector<std::string> labels = tagger.Predict(probe);
  EXPECT_EQ(labels.size(), 3u);  // never crashes, length preserved
}

TEST(CrfTaggerTest, AdagradTrainerLearnsSamePattern) {
  CrfOptions options;
  options.trainer = CrfTrainer::kAdagrad;
  options.max_iterations = 80;
  CrfTagger tagger(options);
  ASSERT_TRUE(tagger.Train(PatternedData(120, 77)).ok());
  text::LabeledSequence probe;
  probe.tokens = {"重", "は", "7", "kg", "です"};
  probe.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
  std::vector<std::string> labels = tagger.Predict(probe);
  EXPECT_EQ(labels[2], "B-重");
  EXPECT_EQ(labels[3], "I-重");
}

TEST(CrfTaggerTest, AdagradObjectiveDecreases) {
  CrfOptions few;
  few.trainer = CrfTrainer::kAdagrad;
  few.max_iterations = 2;
  few.epsilon = 0;  // no early stop
  CrfTagger short_run(few);
  ASSERT_TRUE(short_run.Train(PatternedData(60, 88)).ok());

  CrfOptions many = few;
  many.max_iterations = 60;
  CrfTagger long_run(many);
  ASSERT_TRUE(long_run.Train(PatternedData(60, 88)).ok());
  EXPECT_LT(long_run.training_report().final_objective,
            short_run.training_report().final_objective);
}

TEST(CrfTaggerTest, L1SparsifiesWeights) {
  CrfOptions dense_options;
  dense_options.c1 = 0.0;
  dense_options.max_iterations = 40;
  CrfTagger dense(dense_options);
  ASSERT_TRUE(dense.Train(PatternedData(80, 99)).ok());

  CrfOptions sparse_options;
  sparse_options.c1 = 2.0;
  sparse_options.max_iterations = 40;
  CrfTagger sparse(sparse_options);
  ASSERT_TRUE(sparse.Train(PatternedData(80, 99)).ok());

  auto count_zeros = [](const std::vector<double>& w) {
    size_t zeros = 0;
    for (double v : w) {
      if (v == 0.0) ++zeros;
    }
    return zeros;
  };
  EXPECT_GT(count_zeros(sparse.weights()), count_zeros(dense.weights()));
}

}  // namespace
}  // namespace pae::crf
