#include <gtest/gtest.h>

#include <cmath>

#include "math/matrix.h"
#include "math/vec.h"
#include "util/rng.h"

namespace pae::math {
namespace {

TEST(VecTest, Dot) {
  EXPECT_FLOAT_EQ(Dot({1, 2, 3}, {4, 5, 6}), 32.0f);
  EXPECT_FLOAT_EQ(Dot({}, {}), 0.0f);
}

TEST(VecTest, Axpy) {
  std::vector<float> y = {1, 1};
  Axpy(2.0f, {3, 4}, &y);
  EXPECT_FLOAT_EQ(y[0], 7.0f);
  EXPECT_FLOAT_EQ(y[1], 9.0f);
}

TEST(VecTest, Norm2) {
  EXPECT_DOUBLE_EQ(Norm2({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Norm2({}), 0.0);
}

TEST(VecTest, CosineSimilarity) {
  EXPECT_NEAR(CosineSimilarity({1, 0}, {1, 0}), 1.0, 1e-6);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {0, 1}), 0.0, 1e-6);
  EXPECT_NEAR(CosineSimilarity({1, 0}, {-1, 0}), -1.0, 1e-6);
  EXPECT_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);  // zero vector guard
}

TEST(VecTest, LogSumExpMatchesBruteForce) {
  std::vector<double> x = {0.5, -1.2, 3.0, 2.2};
  double brute = 0;
  for (double v : x) brute += std::exp(v);
  EXPECT_NEAR(LogSumExp(x), std::log(brute), 1e-12);
}

TEST(VecTest, LogSumExpStableForLargeInputs) {
  std::vector<double> x = {1000.0, 1000.0};
  EXPECT_NEAR(LogSumExp(x), 1000.0 + std::log(2.0), 1e-9);
  std::vector<double> y = {-1e9, -1e9};
  EXPECT_NEAR(LogSumExp(y), -1e9 + std::log(2.0), 1.0);
}

TEST(VecTest, SoftmaxNormalizes) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(&x);
  float sum = x[0] + x[1] + x[2];
  EXPECT_NEAR(sum, 1.0f, 1e-5);
  EXPECT_GT(x[2], x[1]);
  EXPECT_GT(x[1], x[0]);
}

TEST(VecTest, SoftmaxHandlesLargeLogits) {
  std::vector<float> x = {10000.0f, 9999.0f};
  SoftmaxInPlace(&x);
  EXPECT_TRUE(std::isfinite(x[0]));
  EXPECT_NEAR(x[0] + x[1], 1.0f, 1e-5);
}

TEST(VecTest, Sigmoid) {
  EXPECT_NEAR(Sigmoid(0.0f), 0.5f, 1e-6);
  EXPECT_GT(Sigmoid(10.0f), 0.999f);
  EXPECT_LT(Sigmoid(-10.0f), 0.001f);
}

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  // [[1,2,3],[4,5,6]]
  float v = 1;
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) m.at(r, c) = v++;
  }
  std::vector<float> out;
  m.MatVec({1, 1, 1}, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_FLOAT_EQ(out[0], 6.0f);
  EXPECT_FLOAT_EQ(out[1], 15.0f);
}

TEST(MatrixTest, MatTVecIsTransposeOfMatVec) {
  Rng rng(11);
  Matrix m(4, 3);
  m.XavierInit(&rng);
  // Verify  y^T (M x) == (M^T y)^T x  for random vectors.
  std::vector<float> x = {0.3f, -1.2f, 0.7f};
  std::vector<float> y = {1.0f, -0.5f, 0.25f, 2.0f};
  std::vector<float> mx, mty;
  m.MatVec(x, &mx);
  m.MatTVec(y, &mty);
  EXPECT_NEAR(Dot(y, mx), Dot(mty, x), 1e-4);
}

TEST(MatrixTest, AddOuterMatchesManual) {
  Matrix m(2, 2);
  m.AddOuter(2.0f, {1, 3}, {5, 7});
  EXPECT_FLOAT_EQ(m.at(0, 0), 10.0f);
  EXPECT_FLOAT_EQ(m.at(0, 1), 14.0f);
  EXPECT_FLOAT_EQ(m.at(1, 0), 30.0f);
  EXPECT_FLOAT_EQ(m.at(1, 1), 42.0f);
}

TEST(MatrixTest, AddScaled) {
  Matrix a(1, 2), b(1, 2);
  a.at(0, 0) = 1;
  b.at(0, 0) = 2;
  b.at(0, 1) = 4;
  a.AddScaled(0.5f, b);
  EXPECT_FLOAT_EQ(a.at(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 2.0f);
}

TEST(MatrixTest, XavierInitWithinBounds) {
  Rng rng(12);
  Matrix m(10, 30);
  m.XavierInit(&rng);
  const float bound = std::sqrt(6.0f / 40.0f);
  float max_abs = 0;
  for (float v : m.data()) max_abs = std::max(max_abs, std::fabs(v));
  EXPECT_LE(max_abs, bound);
  EXPECT_GT(max_abs, 0.0f);
}

TEST(MatrixTest, SetZero) {
  Rng rng(13);
  Matrix m(3, 3);
  m.XavierInit(&rng);
  m.SetZero();
  for (float v : m.data()) EXPECT_EQ(v, 0.0f);
}

// Property sweep: MatVec linearity over random shapes/seeds.
class MatrixPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatrixPropertyTest, MatVecIsLinear) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const size_t rows = 1 + rng.NextBounded(8);
  const size_t cols = 1 + rng.NextBounded(8);
  Matrix m(rows, cols);
  m.XavierInit(&rng);
  std::vector<float> x(cols), y(cols);
  for (auto& v : x) v = static_cast<float>(rng.NextGaussian());
  for (auto& v : y) v = static_cast<float>(rng.NextGaussian());
  const float a = 0.7f, b = -1.3f;

  std::vector<float> combo(cols);
  for (size_t i = 0; i < cols; ++i) combo[i] = a * x[i] + b * y[i];
  std::vector<float> m_combo, mx, my;
  m.MatVec(combo, &m_combo);
  m.MatVec(x, &mx);
  m.MatVec(y, &my);
  for (size_t r = 0; r < rows; ++r) {
    EXPECT_NEAR(m_combo[r], a * mx[r] + b * my[r], 1e-3);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatrixPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace pae::math
