// Tests for util::ConcurrentStringInterner: single-threaded semantics,
// the two-phase canonicalization contract, a randomized differential
// check against std::unordered_map, and the multi-threaded hammer that
// the TSan pass of scripts/check.sh runs under
// --gtest_filter='ConcurrentInternerHammer*'.

#include "util/concurrent_interner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/interner.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace pae::util {
namespace {

using Handle = ConcurrentStringInterner::Handle;

TEST(ConcurrentInternerTest, InternReturnsStableHandles) {
  ConcurrentStringInterner interner(16);
  const Handle a = interner.Intern("alpha");
  const Handle b = interner.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(interner.Intern("alpha"), a);
  EXPECT_EQ(interner.Intern("beta"), b);
  EXPECT_EQ(interner.size(), 2u);
  EXPECT_EQ(interner.key(a), "alpha");
  EXPECT_EQ(interner.key(b), "beta");
}

TEST(ConcurrentInternerTest, FindDoesNotInsert) {
  ConcurrentStringInterner interner(16);
  const Handle a = interner.Intern("present");
  EXPECT_EQ(interner.Find("present"), a);
  EXPECT_EQ(interner.Find("absent"),
            ConcurrentStringInterner::kInvalidHandle);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(ConcurrentInternerTest, HandlesEmptyKey) {
  ConcurrentStringInterner interner(16);
  const Handle e = interner.Intern("");
  EXPECT_EQ(interner.Intern(""), e);
  EXPECT_EQ(interner.key(e), "");
  EXPECT_EQ(interner.Find(""), e);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(ConcurrentInternerTest, CapacityRoundsUpAndGuards) {
  ConcurrentStringInterner interner(100);
  // Capacity = next power of two >= 200; the guard allows 3/4 of it.
  EXPECT_EQ(interner.capacity(), 256u);
  EXPECT_EQ(interner.max_keys(), 192u);
}

TEST(ConcurrentInternerTest, CanonicalizeAssignsFirstOccurrenceIds) {
  ConcurrentStringInterner interner(16);
  const Handle a = interner.Intern("a");
  const Handle b = interner.Intern("b");
  const Handle c = interner.Intern("c");
  // Canonical order visits c first, then a (twice), then b: the ids a
  // serial interner would assign interning "c a a b".
  interner.Canonicalize({c, a, a, b});
  EXPECT_EQ(interner.id(c), 0);
  EXPECT_EQ(interner.id(a), 1);
  EXPECT_EQ(interner.id(b), 2);
  EXPECT_EQ(interner.key_for_id(0), "c");
  EXPECT_EQ(interner.key_for_id(1), "a");
  EXPECT_EQ(interner.key_for_id(2), "b");
  EXPECT_TRUE(interner.canonicalized());
}

TEST(ConcurrentInternerTest, CanonicalIdsMatchSerialFlatInterner) {
  // Interning any key sequence and canonicalizing over it must
  // reproduce FlatStringInterner's first-insertion dense ids exactly.
  Rng rng(20260809);
  std::vector<std::string> sequence;
  for (int i = 0; i < 5000; ++i) {
    sequence.push_back("key" + std::to_string(rng.NextBounded(700)));
  }
  ConcurrentStringInterner concurrent(1024);
  std::vector<Handle> order;
  order.reserve(sequence.size());
  for (const std::string& key : sequence) {
    order.push_back(concurrent.Intern(key));
  }
  concurrent.Canonicalize(order);

  FlatStringInterner serial;
  for (const std::string& key : sequence) serial.Intern(key);

  ASSERT_EQ(concurrent.size(), serial.size());
  for (size_t i = 0; i < sequence.size(); ++i) {
    EXPECT_EQ(concurrent.id(order[i]), serial.Find(sequence[i]));
  }
  for (size_t id = 0; id < serial.size(); ++id) {
    EXPECT_EQ(concurrent.key_for_id(static_cast<int32_t>(id)),
              serial.key(static_cast<int>(id)));
  }
}

TEST(ConcurrentInternerTest, RandomizedDifferentialVsUnorderedMap) {
  // Mixed Intern/Find stream checked against a std::unordered_map
  // reference after every operation batch.
  Rng rng(97);
  ConcurrentStringInterner interner(2048);
  std::unordered_map<std::string, Handle> reference;
  for (int round = 0; round < 20000; ++round) {
    std::string key = "k" + std::to_string(rng.NextBounded(3000));
    if (rng.Bernoulli(0.7)) {
      const Handle handle = interner.Intern(key);
      auto [it, inserted] = reference.emplace(key, handle);
      if (!inserted) {
        ASSERT_EQ(handle, it->second) << "re-intern changed the handle";
      }
      ASSERT_EQ(interner.key(handle), key);
    } else {
      const Handle found = interner.Find(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        ASSERT_EQ(found, ConcurrentStringInterner::kInvalidHandle);
      } else {
        ASSERT_EQ(found, it->second);
      }
    }
  }
  ASSERT_EQ(interner.size(), reference.size());
}

TEST(ConcurrentInternerTest, LongKeysLandInArenaChunksIntact) {
  ConcurrentStringInterner interner(64);
  std::vector<Handle> handles;
  std::vector<std::string> keys;
  for (int i = 0; i < 32; ++i) {
    // ~100 KiB keys force chunk-boundary skips (chunks are 256 KiB).
    keys.push_back(std::string(100'000 + i, static_cast<char>('a' + i % 26)) +
                   std::to_string(i));
    handles.push_back(interner.Intern(keys.back()));
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(interner.key(handles[i]), keys[i]);
    EXPECT_EQ(interner.Find(keys[i]), handles[i]);
  }
}

// ---------------------------------------------------------------------
// The TSan hammer (run by scripts/check.sh pass 2 under
// --gtest_filter='ConcurrentInternerHammer*'): 8 threads × 100k mixed
// intern/find operations over overlapping key sets, then exact-count
// and id-bijection asserts.

TEST(ConcurrentInternerHammer, MixedInternFindOverOverlappingKeys) {
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 100'000;
  // Overlapping key universes: thread t draws from [t*500, t*500+4000),
  // so neighbors contend on most of their range.
  constexpr int kRangePerThread = 4000;
  constexpr int kStride = 500;
  const int universe = kStride * (kThreads - 1) + kRangePerThread;

  ConcurrentStringInterner interner(static_cast<size_t>(universe));
  std::vector<std::vector<Handle>> thread_handles(
      kThreads, std::vector<Handle>(static_cast<size_t>(universe),
                                    ConcurrentStringInterner::kInvalidHandle));

  ThreadPool pool(kThreads);
  pool.ParallelFor(0, kThreads, 1, [&](size_t t) {
    Rng rng(0x9E3779B97F4A7C15ull + t);
    std::vector<Handle>& handles = thread_handles[t];
    for (int op = 0; op < kOpsPerThread; ++op) {
      const int key_index =
          static_cast<int>(t) * kStride +
          static_cast<int>(rng.NextBounded(kRangePerThread));
      const std::string key = "key-" + std::to_string(key_index);
      if (rng.Bernoulli(0.75)) {
        const Handle handle = interner.Intern(key);
        ASSERT_NE(handle, ConcurrentStringInterner::kInvalidHandle);
        Handle& slot = handles[static_cast<size_t>(key_index)];
        if (slot == ConcurrentStringInterner::kInvalidHandle) {
          slot = handle;
        } else {
          // A key's handle never changes once assigned.
          ASSERT_EQ(slot, handle);
        }
        // The key bytes are readable immediately through the handle.
        ASSERT_EQ(interner.key(handle), key);
      } else {
        const Handle found = interner.Find(key);
        if (found != ConcurrentStringInterner::kInvalidHandle) {
          ASSERT_EQ(interner.key(found), key);
        }
      }
    }
  });

  // Exact final count: the distinct keys any thread successfully
  // interned, no lost or duplicated slots.
  std::unordered_map<int, Handle> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (int k = 0; k < universe; ++k) {
      const Handle handle = thread_handles[static_cast<size_t>(t)]
                                          [static_cast<size_t>(k)];
      if (handle == ConcurrentStringInterner::kInvalidHandle) continue;
      auto [it, inserted] = expected.emplace(k, handle);
      if (!inserted) {
        // Two threads that interned the same key saw the same handle.
        ASSERT_EQ(it->second, handle) << "key " << k;
      }
    }
  }
  ASSERT_EQ(interner.size(), expected.size());

  // Id bijection via Canonicalize: every handle gets exactly one dense
  // canonical id in [0, size).
  std::vector<Handle> order;
  order.reserve(expected.size());
  for (const auto& [key_index, handle] : expected) order.push_back(handle);
  interner.Canonicalize(order);
  std::vector<bool> seen(interner.size(), false);
  for (const auto& [key_index, handle] : expected) {
    const int32_t id = interner.id(handle);
    ASSERT_GE(id, 0);
    ASSERT_LT(static_cast<size_t>(id), interner.size());
    ASSERT_FALSE(seen[static_cast<size_t>(id)]) << "duplicate id " << id;
    seen[static_cast<size_t>(id)] = true;
    ASSERT_EQ(interner.key_for_id(id),
              "key-" + std::to_string(key_index));
  }
}

TEST(ConcurrentInternerHammer, ConcurrentCountsAreExact) {
  // All threads intern the same small key set many times: the final
  // size must be exactly the distinct-key count (no double claims).
  constexpr int kThreads = 8;
  constexpr int kKeys = 257;
  ConcurrentStringInterner interner(kKeys);
  ThreadPool pool(kThreads);
  pool.ParallelFor(0, kThreads, 1, [&](size_t t) {
    Rng rng(t + 1);
    for (int op = 0; op < 20'000; ++op) {
      const int k = static_cast<int>(rng.NextBounded(kKeys));
      interner.Intern("shared-" + std::to_string(k));
    }
  });
  // Every key was interned with overwhelming probability (20k draws
  // per thread over 257 keys); assert the exact bound both ways.
  EXPECT_EQ(interner.size(), static_cast<size_t>(kKeys));
  std::unordered_set<Handle> distinct;
  for (int k = 0; k < kKeys; ++k) {
    const Handle handle = interner.Find("shared-" + std::to_string(k));
    ASSERT_NE(handle, ConcurrentStringInterner::kInvalidHandle);
    distinct.insert(handle);
  }
  EXPECT_EQ(distinct.size(), static_cast<size_t>(kKeys));
}

}  // namespace
}  // namespace pae::util
