#ifndef PAE_FUZZ_FRAME_HARNESS_H_
#define PAE_FUZZ_FRAME_HARNESS_H_

#include <cstddef>
#include <cstdint>

namespace pae::fuzz {

/// Feeds `size` bytes of `data` through the serve wire protocol: first
/// every pure payload decoder (request, response envelope, each typed
/// response body) runs over the bytes as one payload; then the raw
/// bytes are pushed through a socketpair and drained with ReadFrame so
/// the length-prefix framing (corrupt length words, truncated frames,
/// EOF mid-frame) is exercised end to end. Decode failures are the
/// expected outcome; only crashes and sanitizer reports are findings.
int FuzzFrameOneInput(const uint8_t* data, size_t size);

}  // namespace pae::fuzz

#endif  // PAE_FUZZ_FRAME_HARNESS_H_
