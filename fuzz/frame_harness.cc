#include "frame_harness.h"

#include <sys/socket.h>

#include <string>

#include "serve/protocol.h"
#include "serve/socket.h"

namespace pae::fuzz {

namespace {

/// Cap for the socketpair leg: one blocking write must fit in the
/// kernel socket buffer so the harness never deadlocks against itself.
/// Linux defaults give AF_UNIX pairs >200 KiB; 64 KiB is safely below.
constexpr size_t kMaxSocketBytes = 64u << 10;

/// ReadFrame ceiling for the fuzz stream — below kMaxSocketBytes so a
/// hostile length word is exercised as "oversized" (rejected before
/// allocation) rather than blocking on bytes that will never arrive.
constexpr uint32_t kFuzzFrameCap = 60000;

/// Every pure decoder over one payload. These parse attacker bytes
/// straight from the wire, so each must fail with Status, never crash.
void ExerciseDecoders(const std::string& payload) {
  auto request = serve::DecodeRequest(payload);
  (void)request.ok();

  for (serve::Op op : {serve::Op::kExtract, serve::Op::kPing,
                       serve::Op::kStats, serve::Op::kPublish,
                       serve::Op::kShutdown}) {
    size_t body_pos = 0;
    (void)serve::DecodeResponseEnvelope(payload, op, &body_pos);
  }
  (void)serve::DecodeExtractResponse(payload, "fuzz-product");
  (void)serve::DecodePingResponse(payload);
  (void)serve::DecodeStatsResponse(payload);
  (void)serve::DecodePublishResponse(payload);
  (void)serve::DecodeShutdownResponse(payload);
}

}  // namespace

int FuzzFrameOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(static_cast<const char*>(
                              static_cast<const void*>(data)),
                          size);

  // Leg 1: the bytes as one already-framed payload.
  ExerciseDecoders(bytes);

  // Leg 2: the bytes as a raw stream — length prefixes and all — pushed
  // through a real socket so ReadFrame's corrupt-length discipline
  // (oversize word, EOF mid-frame, EOF between frames) runs end to end.
  if (size > kMaxSocketBytes) return 0;
  int raw[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, raw) != 0) return 0;
  serve::Fd reader(raw[0]);
  {
    serve::Fd writer(raw[1]);
    if (!serve::WriteFull(writer, bytes.data(), bytes.size()).ok()) {
      return 0;
    }
    // writer closes here: the stream ends exactly at the input's end.
  }
  std::string payload;
  // A 64 KiB stream holds at most ~16K minimal frames; the bound is a
  // backstop, not a limit hit in practice.
  for (int i = 0; i < 1 << 14; ++i) {
    const Status status = serve::ReadFrame(reader, &payload, kFuzzFrameCap);
    if (!status.ok()) break;
    (void)serve::DecodeRequest(payload);
  }
  return 0;
}

}  // namespace pae::fuzz
