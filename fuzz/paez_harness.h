#ifndef PAE_FUZZ_PAEZ_HARNESS_H_
#define PAE_FUZZ_PAEZ_HARNESS_H_

#include <cstddef>
#include <cstdint>

namespace pae::fuzz {

/// Feeds `size` bytes of `data` through the `.paez` artifact open path:
/// the bytes are written to a scratch file, opened structurally (the
/// serving configuration, verify_checksums off), then opened again with
/// payload checksum verification on. When either open succeeds the
/// harness walks every accessor and builds the zero-copy CRF and
/// embedding views, running a prediction / similarity probe so the
/// string-table Find path executes against the (possibly hostile)
/// mapping. Any crash, sanitizer report, or out-of-mapping read is a
/// finding; Status errors are the expected outcome and return 0.
int FuzzPaezOneInput(const uint8_t* data, size_t size);

}  // namespace pae::fuzz

#endif  // PAE_FUZZ_PAEZ_HARNESS_H_
