// libFuzzer entry point for the serve wire-protocol harness (Clang
// only; built when PAE_FUZZER is ON). GCC builds exercise the same
// harness through pae-fuzz-replay instead.

#include <cstddef>
#include <cstdint>

#include "frame_harness.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return pae::fuzz::FuzzFrameOneInput(data, size);
}
