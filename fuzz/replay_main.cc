// pae-fuzz-replay: deterministic corpus replay for the fuzz harnesses.
//
// Usage: pae-fuzz-replay --target=paez|frame <corpus-dir-or-file>...
//
// Runs every file (recursively, sorted path order) through the chosen
// harness exactly once and exits 0 unless one crashes the process.
// This is the harness vehicle on toolchains without libFuzzer (GCC CI
// legs, local sanitizer runs) and the regression gate everywhere: a
// corpus entry that ever crashed stays committed and is replayed by
// check.sh and the fuzz_replay gtest on every build.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "frame_harness.h"
#include "paez_harness.h"

namespace {

namespace fs = std::filesystem;

std::vector<std::string> CollectFiles(const std::vector<std::string>& roots) {
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::cerr << "pae-fuzz-replay: no such corpus path: " << root << "\n";
      std::exit(2);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--target=", 0) == 0) {
      target = arg.substr(9);
    } else {
      roots.push_back(arg);
    }
  }
  if ((target != "paez" && target != "frame") || roots.empty()) {
    std::cerr << "usage: pae-fuzz-replay --target=paez|frame "
                 "<corpus-dir-or-file>...\n";
    return 2;
  }

  const std::vector<std::string> files = CollectFiles(roots);
  for (const std::string& file : files) {
    const std::string bytes = ReadBytes(file);
    const uint8_t* data =
        static_cast<const uint8_t*>(static_cast<const void*>(bytes.data()));
    if (target == "paez") {
      pae::fuzz::FuzzPaezOneInput(data, bytes.size());
    } else {
      pae::fuzz::FuzzFrameOneInput(data, bytes.size());
    }
  }
  std::cout << "pae-fuzz-replay: " << files.size() << " " << target
            << " inputs replayed clean\n";
  return 0;
}
