#ifndef PAE_FUZZ_PAEZ_MUTATOR_H_
#define PAE_FUZZ_PAEZ_MUTATOR_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/model_artifact.h"

namespace pae::fuzz {

/// Structure-aware mutation helpers over an in-memory `.paez` image.
/// Mutations that should penetrate past the table-checksum gate must
/// restamp the checksums they invalidate — that is the whole point of
/// being structure-aware: a blind bit flip dies at the checksum, while
/// a restamped mutation reaches the validation logic beyond it.
/// Everything is memcpy-based; no aliasing casts.

/// Reads the header from a file image. False when the image is shorter
/// than a header.
bool ReadPaezHeader(const std::string& file, core::PaezHeader* header);

/// Overwrites the header in place (image must hold one).
void WritePaezHeader(std::string* file, const core::PaezHeader& header);

/// Reads section-table entry `index`. False when the image is too
/// short for that entry.
bool ReadPaezSection(const std::string& file, size_t index,
                     core::PaezSection* section);

/// Overwrites section-table entry `index` in place.
void WritePaezSection(std::string* file, size_t index,
                      const core::PaezSection& section);

/// Index of the first table entry with `kind` per the header's section
/// count, or -1 when absent.
int FindPaezSection(const std::string& file, uint32_t kind);

/// Recomputes table entry `index`'s payload checksum from the payload
/// bytes currently in the image (clamped to the image end).
void RestampPaezSectionChecksum(std::string* file, size_t index);

/// Recomputes the header's table checksum from the section table
/// currently in the image. Call after any table edit.
void RestampPaezTableChecksum(std::string* file);

}  // namespace pae::fuzz

#endif  // PAE_FUZZ_PAEZ_MUTATOR_H_
