#include "paez_harness.h"

#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "core/model_artifact.h"
#include "crf/crf_tagger.h"
#include "embed/packed_embeddings.h"

namespace pae::fuzz {

namespace {

/// 4 MiB is plenty to express every header/table/meta mutation while
/// keeping a fuzzing iteration cheap; real corpus seeds are ~100 KiB.
constexpr size_t kMaxInputBytes = 4u << 20;

/// One scratch path per process, created once. Each input overwrites it
/// in place; the file is unlinked at exit by the OS tmp reaper. mkstemp
/// (not tmpnam) so parallel fuzzers never collide.
const std::string& ScratchPath() {
  static const std::string path = [] {
    std::string tmpl = "/tmp/pae_fuzz_paez_XXXXXX";
    const int fd = ::mkstemp(tmpl.data());
    if (fd >= 0) ::close(fd);
    return tmpl;
  }();
  return path;
}

/// Every artifact accessor plus both zero-copy views. The prediction
/// and similarity probes matter most: they drive StringTableView::Find
/// against the mapped (and possibly hostile) slot array, the read the
/// slot-count-overflow regression corpus entry proved could leave the
/// mapping.
void ExerciseArtifact(
    const std::shared_ptr<const core::ModelArtifact>& artifact) {
  (void)artifact->has_crf();
  (void)artifact->has_embeddings();
  (void)artifact->embeddings_quantized();
  (void)artifact->header();
  (void)artifact->sections();
  (void)artifact->crf_meta();
  (void)artifact->embed_meta();
  for (uint32_t kind = core::kCrfMeta; kind <= core::kLstmParams; ++kind) {
    const auto k = static_cast<core::PaezSectionKind>(kind);
    (void)artifact->SectionData(k);
    (void)artifact->SectionLength(k);
  }

  auto packed_crf = core::MakePackedCrfModel(artifact);
  if (packed_crf.ok()) {
    crf::CrfTagger tagger;
    if (tagger.LoadPacked(std::move(packed_crf).value()).ok()) {
      text::LabeledSequence probe;
      probe.tokens = {"重量", "は", "7", "kg", "です"};
      probe.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
      (void)tagger.Predict(probe);
    }
  }

  auto packed_embed = core::MakePackedEmbeddings(artifact);
  if (packed_embed.ok()) {
    const embed::PackedEmbeddings& embeddings = packed_embed.value();
    (void)embeddings.Contains("red");
    (void)embeddings.Similarity("red", "blue");
    if (embeddings.dim() > 0 && embeddings.dim() < 4096) {
      std::vector<float> row(embeddings.dim());
      (void)embeddings.CopyRow("red", row.data());
    }
  }
}

}  // namespace

int FuzzPaezOneInput(const uint8_t* data, size_t size) {
  if (size > kMaxInputBytes) return 0;
  {
    std::ofstream out(ScratchPath(), std::ios::binary | std::ios::trunc);
    if (!out) return 0;
    if (size > 0) {
      // Two static_casts through void — not reinterpret_cast — keep the
      // aliasing lint rule meaningful everywhere outside the mmap core.
      out.write(static_cast<const char*>(static_cast<const void*>(data)),
                static_cast<std::streamsize>(size));
    }
    if (!out.flush()) return 0;
  }

  // The serving configuration first: structural validation only, the
  // exact pass the hot-swap path trusts for memory safety.
  auto serving = core::ModelArtifact::Open(ScratchPath());
  if (serving.ok()) ExerciseArtifact(serving.value());

  // Then the packer's exit-check configuration, which additionally
  // walks every payload byte for the per-section checksums.
  core::ModelArtifact::OpenOptions verify;
  verify.verify_checksums = true;
  auto checked = core::ModelArtifact::Open(ScratchPath(), verify);
  if (checked.ok()) ExerciseArtifact(checked.value());
  return 0;
}

}  // namespace pae::fuzz
