// pae-fuzz-make-corpus: regenerates the committed seed corpus under
// fuzz/corpus/. Deterministic (seeded Rng throughout), so the corpus
// can be audited by regenerating and diffing.
//
// Usage: pae-fuzz-make-corpus <output-root>
//
// Writes paez/ (valid packed artifacts + structure-aware malformed
// variants, including the slot-count-overflow regression reproducer)
// and frame/ (framed protocol requests/responses + corrupt framing).

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/model_artifact.h"
#include "crf/crf_tagger.h"
#include "embed/word2vec.h"
#include "paez_mutator.h"
#include "serve/protocol.h"
#include "util/rng.h"

namespace pae::fuzz {
namespace {

namespace fs = std::filesystem;

std::vector<text::LabeledSequence> TinyTrainingData() {
  Rng rng(9);
  std::vector<text::LabeledSequence> data;
  for (int i = 0; i < 80; ++i) {
    text::LabeledSequence seq;
    const std::string v = std::to_string(rng.NextInt(1, 9));
    seq.tokens = {"重量", "は", v, "kg", "です"};
    seq.pos = {"NN", "PRT", "NUM", "UNIT", "VB"};
    seq.labels = {"O", "O", "B-重量", "I-重量", "O"};
    data.push_back(std::move(seq));
  }
  return data;
}

embed::Word2Vec TrainTinyEmbeddings() {
  embed::Word2VecOptions options;
  options.dim = 16;
  options.epochs = 4;
  options.min_count = 1;
  embed::Word2Vec model(options);
  std::vector<std::vector<std::string>> corpus;
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    corpus.push_back({"red", rng.Bernoulli(0.5) ? "blue" : "green", "heavy",
                      rng.Bernoulli(0.3) ? "light" : "solid", "red"});
  }
  if (!model.Train(corpus).ok()) std::exit(1);
  return model;
}

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out.flush()) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
}

void PatchU32(std::string* bytes, size_t offset, uint32_t value) {
  std::memcpy(bytes->data() + offset, &value, sizeof(value));
}

/// The committed reproducer for the slot-count multiplication overflow
/// in ModelArtifact::Open's expected-bytes check: feature_slot_count =
/// 2^60 makes count × sizeof(PackedStringSlot) wrap to exactly 0, so a
/// zero-length slots section matched the expected length, the
/// power-of-two shape check passed (2^60 is one), and the serving open
/// handed StringTableView a 2^60-slot table backed by zero mapped
/// bytes — Find's probe then read far outside the mapping. The
/// overflow-safe element-count check now rejects this file at Open.
std::string MakeSlotCountOverflowArtifact(std::string image) {
  const int meta_index = FindPaezSection(image, core::kCrfMeta);
  const int slots_index = FindPaezSection(image, core::kCrfFeatureSlots);
  if (meta_index < 0 || slots_index < 0) std::exit(1);

  core::PaezSection meta_section;
  ReadPaezSection(image, meta_index, &meta_section);
  core::PaezCrfMeta meta;
  if (meta_section.length != sizeof(meta)) std::exit(1);
  std::memcpy(&meta, image.data() + meta_section.offset, sizeof(meta));
  meta.feature_slot_count = 1ull << 60;
  std::memcpy(image.data() + meta_section.offset, &meta, sizeof(meta));
  RestampPaezSectionChecksum(&image, meta_index);

  core::PaezSection slots_section;
  ReadPaezSection(image, slots_index, &slots_section);
  slots_section.length = 0;
  WritePaezSection(&image, slots_index, slots_section);
  RestampPaezSectionChecksum(&image, slots_index);

  RestampPaezTableChecksum(&image);
  return image;
}

void WritePaezCorpus(const fs::path& dir) {
  crf::CrfOptions options;
  options.max_iterations = 15;
  crf::CrfTagger tagger(options);
  if (!tagger.Train(TinyTrainingData()).ok()) std::exit(1);
  embed::Word2Vec embeddings = TrainTinyEmbeddings();

  const fs::path crf_path = dir / "seed-crf.paez";
  if (!core::PackModelArtifact(tagger, nullptr, core::PackOptions(),
                               crf_path.string())
           .ok()) {
    std::exit(1);
  }
  if (!core::PackModelArtifact(tagger, &embeddings, core::PackOptions(),
                               (dir / "seed-crf-f32.paez").string())
           .ok()) {
    std::exit(1);
  }
  core::PackOptions quantized;
  quantized.quantize_embeddings = true;
  if (!core::PackModelArtifact(tagger, &embeddings, quantized,
                               (dir / "seed-crf-i8.paez").string())
           .ok()) {
    std::exit(1);
  }

  const std::string seed = ReadBytes(crf_path.string());

  WriteBytes(dir / "malformed-empty.bin", "");
  WriteBytes(dir / "malformed-short-header.bin", seed.substr(0, 16));
  WriteBytes(dir / "malformed-truncated.bin",
             seed.substr(0, seed.size() * 3 / 5));

  std::string mutated = seed;
  PatchU32(&mutated, 0, 0xDEADBEEF);  // magic
  WriteBytes(dir / "malformed-bad-magic.bin", mutated);

  mutated = seed;
  PatchU32(&mutated, 4, 99);  // version
  WriteBytes(dir / "malformed-bad-version.bin", mutated);

  mutated = seed;
  PatchU32(&mutated, 12, 1000);  // section_count over kMaxSections
  WriteBytes(dir / "malformed-section-count.bin", mutated);

  mutated = seed;
  mutated[core::kPaezHeaderBytes + 8] ^= 0x40;  // table byte, no restamp
  WriteBytes(dir / "malformed-table-corrupt.bin", mutated);

  WriteBytes(dir / "regression-slot-count-overflow.paez",
             MakeSlotCountOverflowArtifact(seed));
}

std::string Framed(const std::string& payload) {
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::string frame(sizeof(length), '\0');
  std::memcpy(frame.data(), &length, sizeof(length));
  return frame + payload;
}

void WriteFrameCorpus(const fs::path& dir) {
  serve::ExtractRequest extract;
  extract.product_id = "p-001";
  extract.html = "<html><body>重量は7kgです</body></html>";
  WriteBytes(dir / "seed-extract.bin",
             Framed(serve::EncodeExtractRequest(extract)));
  WriteBytes(dir / "seed-ping.bin", Framed(serve::EncodePingRequest()));
  WriteBytes(dir / "seed-stats.bin", Framed(serve::EncodeStatsRequest()));
  serve::PublishRequest publish;
  publish.model_path = "/tmp/model.paez";
  publish.resources_dir = "/tmp/resources";
  WriteBytes(dir / "seed-publish.bin",
             Framed(serve::EncodePublishRequest(publish)));
  WriteBytes(dir / "seed-shutdown.bin",
             Framed(serve::EncodeShutdownRequest()));

  serve::ExtractResponse response;
  response.generation = 7;
  response.triples.push_back({"p-001", "重量", "7kg"});
  WriteBytes(dir / "seed-extract-response.bin",
             Framed(serve::EncodeExtractResponse(response)));
  WriteBytes(dir / "seed-error-response.bin",
             Framed(serve::EncodeErrorResponse(
                 serve::Op::kExtract,
                 Status::InvalidArgument("fuzz seed error"))));

  // A multi-frame stream: framing must resynchronize across frames.
  WriteBytes(dir / "seed-stream.bin",
             Framed(serve::EncodePingRequest()) +
                 Framed(serve::EncodeStatsRequest()) +
                 Framed(serve::EncodeShutdownRequest()));

  // Corrupt framing: each targets one ReadFrame failure mode.
  std::string huge(sizeof(uint32_t), '\0');
  const uint32_t huge_len = 0xFFFFFFFFu;
  std::memcpy(huge.data(), &huge_len, sizeof(huge_len));
  WriteBytes(dir / "malformed-oversize-length.bin", huge + "xx");

  std::string lying = Framed(std::string(100, 'a'));
  lying.resize(sizeof(uint32_t) + 10);  // promises 100, delivers 10
  WriteBytes(dir / "malformed-truncated-frame.bin", lying);

  WriteBytes(dir / "malformed-unknown-opcode.bin",
             Framed(std::string(1, '\x7f')));
  WriteBytes(dir / "malformed-empty-frame.bin", Framed(""));
  WriteBytes(dir / "malformed-garbage.bin",
             std::string("\x01\x02garbage-not-a-frame\xff\xfe", 22));
}

int Run(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: pae-fuzz-make-corpus <output-root>\n";
    return 2;
  }
  const fs::path root = argv[1];
  const fs::path paez_dir = root / "paez";
  const fs::path frame_dir = root / "frame";
  fs::create_directories(paez_dir);
  fs::create_directories(frame_dir);
  WritePaezCorpus(paez_dir);
  WriteFrameCorpus(frame_dir);
  std::cout << "pae-fuzz-make-corpus: corpus written under " << root << "\n";
  return 0;
}

}  // namespace
}  // namespace pae::fuzz

int main(int argc, char** argv) { return pae::fuzz::Run(argc, argv); }
