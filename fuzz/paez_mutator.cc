#include "paez_mutator.h"

#include <algorithm>
#include <cstring>

namespace pae::fuzz {

namespace {

size_t SectionEntryOffset(size_t index) {
  return core::kPaezHeaderBytes + index * sizeof(core::PaezSection);
}

}  // namespace

bool ReadPaezHeader(const std::string& file, core::PaezHeader* header) {
  if (file.size() < sizeof(core::PaezHeader)) return false;
  std::memcpy(header, file.data(), sizeof(core::PaezHeader));
  return true;
}

void WritePaezHeader(std::string* file, const core::PaezHeader& header) {
  std::memcpy(file->data(), &header, sizeof(core::PaezHeader));
}

bool ReadPaezSection(const std::string& file, size_t index,
                     core::PaezSection* section) {
  const size_t offset = SectionEntryOffset(index);
  if (file.size() < offset + sizeof(core::PaezSection)) return false;
  std::memcpy(section, file.data() + offset, sizeof(core::PaezSection));
  return true;
}

void WritePaezSection(std::string* file, size_t index,
                      const core::PaezSection& section) {
  std::memcpy(file->data() + SectionEntryOffset(index), &section,
              sizeof(core::PaezSection));
}

int FindPaezSection(const std::string& file, uint32_t kind) {
  core::PaezHeader header;
  if (!ReadPaezHeader(file, &header)) return -1;
  for (size_t i = 0; i < header.section_count; ++i) {
    core::PaezSection section;
    if (!ReadPaezSection(file, i, &section)) return -1;
    if (section.kind == kind) return static_cast<int>(i);
  }
  return -1;
}

void RestampPaezSectionChecksum(std::string* file, size_t index) {
  core::PaezSection section;
  if (!ReadPaezSection(*file, index, &section)) return;
  const size_t offset = std::min<size_t>(section.offset, file->size());
  const size_t length =
      std::min<size_t>(section.length, file->size() - offset);
  section.checksum = core::ArtifactChecksum(file->data() + offset, length);
  WritePaezSection(file, index, section);
}

void RestampPaezTableChecksum(std::string* file) {
  core::PaezHeader header;
  if (!ReadPaezHeader(*file, &header)) return;
  const size_t table_bytes = header.section_count * sizeof(core::PaezSection);
  if (file->size() < core::kPaezHeaderBytes + table_bytes) return;
  header.table_checksum = core::ArtifactChecksum(
      file->data() + core::kPaezHeaderBytes, table_bytes);
  WritePaezHeader(file, header);
}

}  // namespace pae::fuzz
