#!/usr/bin/env bash
# clang-tidy over the whole tree, driven by the compile_commands.json
# that scripts/check.sh pass 1 exports into build-check/.
#
#   scripts/tidy.sh             # report warnings, exit 0 unless errors
#   scripts/tidy.sh --werror    # CI mode: any warning fails the run
#   scripts/tidy.sh --probe     # exit 0/3 for clang-tidy availability
#   PAE_CHECK_JOBS=4 scripts/tidy.sh
#
# The check selection lives in .clang-tidy at the repo root; this script
# only locates the binary, ensures a compilation database exists, and
# fans the .cc files out across jobs.

set -euo pipefail
cd "$(dirname "$0")/.."

# Locate clang-tidy, accepting the versioned names Debian/Ubuntu ship.
find_clang_tidy() {
  local cand
  for cand in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
    if command -v "${cand}" > /dev/null 2>&1; then
      echo "${cand}"
      return 0
    fi
  done
  return 1
}

CLANG_TIDY="$(find_clang_tidy || true)"
if [[ -z "${CLANG_TIDY}" ]]; then
  cat >&2 <<'EOF'
tidy.sh: clang-tidy not found on PATH (tried clang-tidy and
clang-tidy-14..20).

Install it, e.g.:
  apt-get install clang-tidy      # Debian/Ubuntu
  dnf install clang-tools-extra   # Fedora

The sanitizer passes in scripts/check.sh do not need clang-tidy; only
this static-analysis pass does.
EOF
  exit 3
fi

MODE="report"
for arg in "$@"; do
  case "${arg}" in
    --werror) MODE="werror" ;;
    --probe) exit 0 ;;  # reachable only if clang-tidy was found
    *)
      echo "tidy.sh: unknown argument '${arg}'" >&2
      exit 2
      ;;
  esac
done

BUILD_DIR="build-check"
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "==> exporting compile_commands.json into ${BUILD_DIR}/"
  cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

JOBS="${PAE_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
EXTRA_ARGS=()
if [[ "${MODE}" == "werror" ]]; then
  EXTRA_ARGS+=("--warnings-as-errors=*")
fi

echo "==> ${CLANG_TIDY} over src/, tools/, bench/, fuzz/" \
     "(${JOBS} jobs, mode: ${MODE})"
find src tools bench fuzz -name '*.cc' -print0 |
  xargs -0 -n 1 -P "${JOBS}" \
    "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet "${EXTRA_ARGS[@]}"

echo "==> clang-tidy clean"
