#!/usr/bin/env bash
# Ingestion benchmark: the four-phase barrier pipeline (LoadCorpus →
# ProcessCorpus → DiscoverCandidates → serial vocab fold) vs the
# single-pass streaming pipeline (core/ingest.h) over the same on-disk
# corpus, at several thread counts.
#
#   scripts/bench_ingest.sh                  # refresh BENCH_ingest.json
#   scripts/bench_ingest.sh --out custom.json
#
# One binary run produces the whole report: a single-threaded phase
# profile of the barrier pipeline, interleaved barrier/streaming timing
# arms per thread count (min of PAE_BENCH_REPS reps each), an interner
# micro-benchmark, and the FlatStringInterner::Reserve effect. The
# binary also re-checks the equivalence contract on every rep — the
# report's `outputs_identical_across_arms_and_threads` must be true or
# the timings are meaningless.
#
# Knobs (env):
#   PAE_BENCH_PRODUCTS=3000        corpus size (pages ≈ products × ~1.05)
#   PAE_BENCH_PAGE_SENTENCES=80    filler sentences per page; the default
#                                  camera schema's 3-8 sentence pages are
#                                  far shorter than field product pages
#   PAE_BENCH_REPS=5               timing reps per arm (min is reported)
#   PAE_BENCH_THREADS=1,4,8        thread counts to sweep
#   PAE_BENCH_SEED=1
#
# Corpus generation is deterministic in (seed, products, page length),
# so two runs on the same commit agree on everything but the seconds.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_ingest.json"
if [[ "${1:-}" == "--out" && -n "${2:-}" ]]; then
  OUT="$2"
fi

PRODUCTS="${PAE_BENCH_PRODUCTS:-3000}"
PAGE_SENTENCES="${PAE_BENCH_PAGE_SENTENCES:-80}"
REPS="${PAE_BENCH_REPS:-5}"
THREADS="${PAE_BENCH_THREADS:-1,4,8}"
SEED="${PAE_BENCH_SEED:-1}"
JOBS="$(nproc 2>/dev/null || echo 2)"

BUILD=build-bench-ingest
cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${BUILD}" -j "${JOBS}" --target bench_ingest > /dev/null

# The corpus is generated into the build tree on first use and reused
# afterwards; it is keyed by scale so knob changes regenerate it.
CORPUS="${BUILD}/ingest-corpus-p${PRODUCTS}-s${PAGE_SENTENCES}-seed${SEED}"

./"${BUILD}"/bench/bench_ingest --dir "${CORPUS}" \
      --products "${PRODUCTS}" --page-sentences "${PAGE_SENTENCES}" \
      --seed "${SEED}" --reps "${REPS}" --threads "${THREADS}" \
      --json "${OUT}"

echo "wrote ${OUT}"
python3 -c "
import json
r = json.load(open('${OUT}'))
arms = r['arms']
ok = arms['outputs_identical_across_arms_and_threads']
print('outputs identical across arms and threads:', ok)
for key in sorted(k for k in arms if k.startswith('threads_')):
    a = arms[key]
    print('%-10s barrier %.3fs  streaming %.3fs  speedup %.2fx' % (
        key, a['barrier_seconds'], a['streaming_seconds'],
        a['streaming_speedup']))
print('headline streaming_speedup_at_max_threads: %.2fx' %
      r['streaming_speedup_at_max_threads'])
assert ok, 'equivalence contract violated'
"
