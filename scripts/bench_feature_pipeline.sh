#!/usr/bin/env bash
# Runs the CRF feature-pipeline microbenchmarks (extraction, compilation,
# objective — string baseline vs interned vs cached, each at 1/2/4
# threads) and writes the google-benchmark JSON report to
# BENCH_feature_pipeline.json in the repository root.
#
#   scripts/bench_feature_pipeline.sh [build-dir]   # default: build-bench

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_micro_kernels

"${BUILD_DIR}/bench/bench_micro_kernels" \
  --benchmark_filter='FeatureExtract|FeatureCompile|CrfObjective' \
  --benchmark_repetitions=3 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out=BENCH_feature_pipeline.json \
  --benchmark_out_format=json

echo "wrote BENCH_feature_pipeline.json"
