#!/usr/bin/env bash
# Runs the SIMD kernel-layer microbenchmarks (Dot, MatVec, the word2vec
# negative-sampling step, the fused LSTM timestep, the batched MatMul
# GEMM and the batched LSTM-layer pass — each at every ISA tier the host
# supports, the batched ones additionally at B ∈ {1, 8, 32}) and writes
# the google-benchmark JSON report to BENCH_simd_kernels.json in the
# repository root.
#
#   scripts/bench_simd.sh [build-dir]   # default: build-bench
#
# The benchmarks call math::kernels::SetIsa per run, so a single process
# covers scalar, SSE2 and AVX2; tiers the host cannot execute are
# reported as skipped rather than silently dropped.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-bench}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target bench_micro_kernels

"${BUILD_DIR}/bench/bench_micro_kernels" \
  --benchmark_filter='BM_Simd' \
  --benchmark_repetitions=9 \
  --benchmark_report_aggregates_only=true \
  --benchmark_out=BENCH_simd_kernels.json \
  --benchmark_out_format=json

echo "wrote BENCH_simd_kernels.json"
