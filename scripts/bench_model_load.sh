#!/usr/bin/env bash
# Model-load benchmark: legacy BinaryReader parse vs the mmap'ed .paez
# artifact, at two scales, plus the serving hot-swap publish pass.
#
#   scripts/bench_model_load.sh                  # refresh BENCH_model_load.json
#   scripts/bench_model_load.sh --out custom.json
#
# Three passes, merged into one JSON:
#   1. trained model  — a real pipeline-trained CRF (~1.5k features):
#      parse vs first-touch vs warm, bytes copied, int8 cleaning gate.
#   2. field-scale model — synthesized at production feature counts
#      (the bundled corpora train only ~1.5k features; deployments carry
#      hundreds of thousands). The headline warm_speedup_vs_legacy and
#      the zero-copy proof come from this pass.
#   3. hot-swap publish — pae-serve on the .paez artifact, pae-loadgen
#      publishing a new generation mid-run; the serve.publish.load_seconds
#      histogram and the model.load.bytes_copied counter come from the
#      server's --metrics-out report.
#
# Knobs (env):
#   PAE_BENCH_PRODUCTS=120      corpus size for the trained model
#   PAE_BENCH_FEATURES=200000   synthesized field-scale feature count
#   PAE_BENCH_ITERATIONS=30     load repetitions per timing arm
#   PAE_BENCH_REQUESTS=600      hot-swap pass request count
#   PAE_BENCH_SEED=42
#
# Non-timing fields depend only on the seed + corpus + feature count, so
# two runs on the same commit must agree on everything but the seconds.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_model_load.json"
if [[ "${1:-}" == "--out" && -n "${2:-}" ]]; then
  OUT="$2"
fi

PRODUCTS="${PAE_BENCH_PRODUCTS:-120}"
FEATURES="${PAE_BENCH_FEATURES:-200000}"
ITERATIONS="${PAE_BENCH_ITERATIONS:-30}"
REQUESTS="${PAE_BENCH_REQUESTS:-600}"
SEED="${PAE_BENCH_SEED:-42}"
JOBS="$(nproc 2>/dev/null || echo 2)"

BUILD=build-bench-serving
cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${BUILD}" -j "${JOBS}" \
      --target pae-datagen pae-extract pae-serve pae-loadgen \
               pae-model-pack bench_model_load > /dev/null

CORPUS="${BUILD}/load-corpus"
SMALL="${BUILD}/load-trained.crf"
LARGE="${BUILD}/load-field.crf"

# ---- pass 1: real trained model ----
./"${BUILD}"/tools/pae-datagen --category vacuum \
      --products "${PRODUCTS}" --seed "${SEED}" --out "${CORPUS}" > /dev/null
./"${BUILD}"/tools/pae-extract --in "${CORPUS}" \
      --out "${BUILD}/load-triples.tsv" --iterations 2 \
      --save-model "${SMALL}" > /dev/null
./"${BUILD}"/tools/pae-model-pack --model "${SMALL}" \
      --out "${SMALL%.crf}.paez" > /dev/null
./"${BUILD}"/bench/bench_model_load --model "${SMALL}" \
      --paez "${SMALL%.crf}.paez" --iterations "${ITERATIONS}" \
      --json "${BUILD}/load-trained.json"

# ---- pass 2: field-scale model (headline speedup) ----
./"${BUILD}"/bench/bench_model_load --make-model "${LARGE}" \
      --make-features "${FEATURES}" --make-seed "${SEED}"
./"${BUILD}"/tools/pae-model-pack --model "${LARGE}" \
      --out "${LARGE%.crf}.paez" > /dev/null
./"${BUILD}"/bench/bench_model_load --model "${LARGE}" \
      --paez "${LARGE%.crf}.paez" --iterations "${ITERATIONS}" \
      --skip-int8-gate --json "${BUILD}/load-field.json"

# ---- pass 3: hot-swap publish over the wire ----
SOCKET="${BUILD}/load-bench.sock"
rm -f "${SOCKET}"
./"${BUILD}"/tools/pae-serve --socket "${SOCKET}" \
      --model "${SMALL%.crf}.paez" --resources "${CORPUS}" --workers 4 \
      --metrics-out "${BUILD}/load-serve-metrics.json" > /dev/null &
SERVE_PID=$!
for _ in $(seq 1 100); do
  [[ -S "${SOCKET}" ]] && break
  sleep 0.1
done
# Driver threads stay below the worker count so the swap/shutdown admin
# connections always find a free worker (each persistent connection
# parks on one pool thread).
./"${BUILD}"/tools/pae-loadgen --socket "${SOCKET}" --corpus "${CORPUS}" \
      --requests "${REQUESTS}" --warmup 50 --seed "${SEED}" --threads 2 \
      --swap-at "$((REQUESTS / 2))" --swap-model "${SMALL%.crf}.paez" \
      --swap-resources "${CORPUS}" --shutdown-after > /dev/null
wait "${SERVE_PID}"

# ---- merge ----
python3 - "${BUILD}/load-field.json" "${BUILD}/load-trained.json" \
      "${BUILD}/load-serve-metrics.json" "${OUT}" <<'EOF'
import json, sys
field, trained, serve, out = sys.argv[1:5]
with open(field) as f: report = json.load(f)
with open(trained) as f: report["trained_model"] = json.load(f)
with open(serve) as f: metrics = json.load(f)
report["hot_swap_publish"] = {
    "load_seconds": metrics["histograms"]["serve.publish.load_seconds"],
    "bytes_copied": metrics["counters"].get("model.load.bytes_copied", 0),
}
with open(out, "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
EOF

echo "wrote ${OUT}"
python3 -c "
import json
r = json.load(open('${OUT}'))
print('field-scale warm speedup: %.0fx (legacy %.1f ms vs mmap %.1f us)' % (
    r['warm_speedup_vs_legacy'],
    r['legacy_parse']['min_seconds'] * 1e3,
    r['paez_warm_mmap']['min_seconds'] * 1e6))
print('publish bytes copied: %d (labels only)' % r['hot_swap_publish']['bytes_copied'])
"
