#!/usr/bin/env bash
# Serving benchmark: train a CRF model on a synthetic corpus, then run
# the pae-loadgen self-serve sweep (one in-process pae-serve instance
# per worker count, each driven by exactly one persistent connection
# per worker) and write the p50/p95/p99 + sustained-QPS report.
#
#   scripts/bench_serving.sh                     # refresh BENCH_serving.json
#   scripts/bench_serving.sh --out custom.json   # write elsewhere
#
# Knobs (env):
#   PAE_BENCH_PRODUCTS=120   corpus size used for both training and load
#   PAE_BENCH_REQUESTS=1000  requests per worker-count run
#   PAE_BENCH_WARMUP=100     warm-phase prefix excluded from latency/QPS
#   PAE_BENCH_SEED=42        request-schedule seed
#   PAE_BENCH_WORKERS=1,4,8  worker counts to sweep
#
# The request schedule, aggregate triple count and response checksum
# depend only on the seed + corpus + model, so two runs on the same
# commit must agree on every non-timing field.

set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_serving.json"
if [[ "${1:-}" == "--out" && -n "${2:-}" ]]; then
  OUT="$2"
fi

PRODUCTS="${PAE_BENCH_PRODUCTS:-120}"
REQUESTS="${PAE_BENCH_REQUESTS:-1000}"
WARMUP="${PAE_BENCH_WARMUP:-100}"
SEED="${PAE_BENCH_SEED:-42}"
WORKERS="${PAE_BENCH_WORKERS:-1,4,8}"
JOBS="$(nproc 2>/dev/null || echo 2)"

BUILD=build-bench-serving
cmake -B "${BUILD}" -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build "${BUILD}" -j "${JOBS}" \
      --target pae-datagen pae-extract pae-serve pae-loadgen > /dev/null

CORPUS="${BUILD}/serving-corpus"
MODEL="${BUILD}/serving-model.crf"
./"${BUILD}"/tools/pae-datagen --category vacuum \
      --products "${PRODUCTS}" --seed "${SEED}" --out "${CORPUS}" > /dev/null
./"${BUILD}"/tools/pae-extract --in "${CORPUS}" \
      --out "${BUILD}/serving-triples.tsv" --iterations 2 \
      --save-model "${MODEL}" > /dev/null

./"${BUILD}"/tools/pae-loadgen --self-serve \
      --model "${MODEL}" --resources "${CORPUS}" --corpus "${CORPUS}" \
      --requests "${REQUESTS}" --warmup "${WARMUP}" --seed "${SEED}" \
      --worker-counts "${WORKERS}" --json "${OUT}"

echo "wrote ${OUT}"
