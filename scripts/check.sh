#!/usr/bin/env bash
# Repository check: build + full test suite three times — once plain,
# once with ThreadSanitizer focused on the concurrency surface, once
# with AddressSanitizer focused on the interner/feature-pipeline
# surface.
#
#   scripts/check.sh            # all passes
#   scripts/check.sh --no-tsan  # skip the TSan pass
#   scripts/check.sh --no-asan  # skip the ASan pass
#
# Pass 1 (default flags) configures build-check/ and runs every ctest
# target. Pass 2 configures build-check-tsan/ with -DPAE_SANITIZE=thread
# and runs the thread-pool + concurrency + feature-pipeline binaries
# directly: they are the tests whose failure modes are data races, and
# running them under TSan turns the determinism assertions into race
# detection. Pass 3 configures build-check-asan/ with
# -DPAE_SANITIZE=address and runs the interner + feature-pipeline
# binaries: the interner hands out raw string_views into a hand-managed
# arena, exactly the kind of code ASan exists for.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
RUN_TSAN=1
RUN_ASAN=1
for arg in "$@"; do
  [[ "${arg}" == "--no-tsan" ]] && RUN_TSAN=0
  [[ "${arg}" == "--no-asan" ]] && RUN_ASAN=0
done

echo "==> pass 1: default build + full ctest"
cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-check -j "${JOBS}"
ctest --test-dir build-check --output-on-failure -j "${JOBS}"

if [[ "${RUN_TSAN}" == "1" ]]; then
  echo "==> pass 2: ThreadSanitizer build + concurrency binaries"
  cmake -B build-check-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=thread > /dev/null
  cmake --build build-check-tsan -j "${JOBS}" \
        --target thread_pool_test concurrency_test feature_pipeline_test
  ./build-check-tsan/tests/thread_pool_test
  ./build-check-tsan/tests/concurrency_test
  ./build-check-tsan/tests/feature_pipeline_test
fi

if [[ "${RUN_ASAN}" == "1" ]]; then
  echo "==> pass 3: AddressSanitizer build + interner/pipeline binaries"
  cmake -B build-check-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=address > /dev/null
  cmake --build build-check-asan -j "${JOBS}" \
        --target interner_test feature_pipeline_test crf_test
  ./build-check-asan/tests/interner_test
  ./build-check-asan/tests/feature_pipeline_test
  ./build-check-asan/tests/crf_test
fi

echo "==> all checks passed"
