#!/usr/bin/env bash
# Repository check: build + test suite four times — once plain, once
# with ThreadSanitizer focused on the concurrency surface, once with
# AddressSanitizer focused on the interner/feature-pipeline surface,
# and once with UBSan over the FULL ctest suite.
#
#   scripts/check.sh             # all passes
#   scripts/check.sh --no-tsan   # skip the TSan pass
#   scripts/check.sh --no-asan   # skip the ASan pass
#   scripts/check.sh --no-ubsan  # skip the UBSan pass
#   scripts/check.sh --tidy      # additionally run scripts/tidy.sh
#   PAE_CHECK_JOBS=4 scripts/check.sh   # override build/test parallelism
#
# Pass 1 (default flags) configures build-check/ and runs every ctest
# target (including pae_lint), then runs an instrumented pae-extract
# pass over a small synthetic corpus and validates the emitted
# --metrics-out JSON report (pass 1b), then reruns the full suite with
# PAE_SIMD=scalar (pass 1c) so the portable kernel tier — the one CI
# hosts without AVX2 would silently fall back to — gets the same
# coverage as the dispatched default. Pass 2 configures build-check-tsan/ with
# -DPAE_SANITIZE=thread and runs the thread-pool + concurrency +
# feature-pipeline binaries directly: they are the tests whose failure
# modes are data races, and running them under TSan turns the
# determinism assertions into race detection. Pass 3 configures
# build-check-asan/ with -DPAE_SANITIZE=address and runs the interner +
# feature-pipeline binaries: the interner hands out raw string_views
# into a hand-managed arena, exactly the kind of code ASan exists for.
# Pass 4 configures build-check-ubsan/ with -DPAE_SANITIZE=undefined
# (which also enables float-divide-by-zero and -fno-sanitize-recover)
# and runs the WHOLE ctest suite: UBSan's costs are cheap enough to
# afford full coverage, and the ubsan_regression_test corpus of
# malformed UTF-8 / boundary offsets only earns its keep under it.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${PAE_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
RUN_TSAN=1
RUN_ASAN=1
RUN_UBSAN=1
RUN_TIDY=0
for arg in "$@"; do
  [[ "${arg}" == "--no-tsan" ]] && RUN_TSAN=0
  [[ "${arg}" == "--no-asan" ]] && RUN_ASAN=0
  [[ "${arg}" == "--no-ubsan" ]] && RUN_UBSAN=0
  [[ "${arg}" == "--tidy" ]] && RUN_TIDY=1
done

if [[ "${RUN_TIDY}" == "1" ]]; then
  # Fail fast before spending minutes on sanitizer builds: tidy.sh
  # exits 3 with an install hint when clang-tidy is not on PATH.
  if ! scripts/tidy.sh --probe; then
    echo "check.sh: --tidy requested but clang-tidy is unavailable" >&2
    exit 3
  fi
fi

echo "==> pass 1: default build + full ctest"
cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
cmake --build build-check -j "${JOBS}"
ctest --test-dir build-check --output-on-failure -j "${JOBS}"

echo "==> pass 1b: instrumented extraction run + metrics report"
# An end-to-end pae-extract run with --metrics-out proves the metrics
# surface works outside of unit tests: the run must succeed AND emit a
# parseable JSON report containing the core pipeline instruments.
./build-check/tools/pae-datagen --category vacuum --products 80 \
      --seed 5 --out build-check/metrics-corpus > /dev/null
./build-check/tools/pae-extract --in build-check/metrics-corpus \
      --out build-check/metrics-triples.tsv --iterations 2 \
      --metrics-out build-check/metrics-report.json > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - build-check/metrics-report.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("version", "counters", "gauges", "histograms", "series"):
    assert key in report, f"metrics report missing top-level key {key!r}"
assert report["version"] == 1, report["version"]
assert report["counters"].get("cleaning.input", 0) > 0, "no cleaning counters"
assert len(report["series"].get("crf.objective", [])) > 0, "no CRF objective"
assert len(report["series"].get("bootstrap.triples_total", [])) > 0, \
    "no bootstrap triple series"
print("metrics report OK:", len(report["counters"]), "counters,",
      len(report["histograms"]), "histograms,", len(report["series"]),
      "series")
PYEOF
else
  # No python3: settle for a structural grep that the report at least
  # contains the expected keys.
  for key in '"version"' '"counters"' '"crf.objective"' \
             '"bootstrap.triples_total"' '"cleaning.input"'; do
    grep -q "${key}" build-check/metrics-report.json || {
      echo "check.sh: metrics report missing ${key}" >&2; exit 1; }
  done
  echo "metrics report OK (grep-checked; python3 unavailable)"
fi

echo "==> pass 1c: full ctest with PAE_SIMD=scalar"
# Same binaries, scalar kernel tier. The kernels are bit-identical
# across tiers by contract, so every pass-1 expectation must hold
# unchanged here; a divergence means a tier broke the lane discipline.
PAE_SIMD=scalar ctest --test-dir build-check --output-on-failure -j "${JOBS}"

if [[ "${RUN_TSAN}" == "1" ]]; then
  echo "==> pass 2: ThreadSanitizer build + concurrency binaries"
  cmake -B build-check-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=thread > /dev/null
  cmake --build build-check-tsan -j "${JOBS}" \
        --target thread_pool_test concurrency_test feature_pipeline_test
  ./build-check-tsan/tests/thread_pool_test
  ./build-check-tsan/tests/concurrency_test
  ./build-check-tsan/tests/feature_pipeline_test
fi

if [[ "${RUN_ASAN}" == "1" ]]; then
  echo "==> pass 3: AddressSanitizer build + interner/pipeline binaries"
  cmake -B build-check-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=address > /dev/null
  cmake --build build-check-asan -j "${JOBS}" \
        --target interner_test feature_pipeline_test crf_test
  ./build-check-asan/tests/interner_test
  ./build-check-asan/tests/feature_pipeline_test
  ./build-check-asan/tests/crf_test
fi

if [[ "${RUN_UBSAN}" == "1" ]]; then
  echo "==> pass 4: UndefinedBehaviorSanitizer build + full ctest"
  cmake -B build-check-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=undefined > /dev/null
  cmake --build build-check-ubsan -j "${JOBS}"
  ctest --test-dir build-check-ubsan --output-on-failure -j "${JOBS}"
fi

if [[ "${RUN_TIDY}" == "1" ]]; then
  echo "==> extra pass: clang-tidy"
  scripts/tidy.sh
fi

echo "==> all checks passed"
