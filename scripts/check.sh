#!/usr/bin/env bash
# Repository check: build + test suite four times — once plain, once
# with ThreadSanitizer focused on the concurrency surface, once with
# AddressSanitizer focused on the interner/feature-pipeline surface,
# and once with UBSan over the FULL ctest suite.
#
#   scripts/check.sh             # all passes
#   scripts/check.sh --no-tsan   # skip the TSan pass
#   scripts/check.sh --no-asan   # skip the ASan pass
#   scripts/check.sh --no-ubsan  # skip the UBSan pass
#   scripts/check.sh --tidy      # additionally run scripts/tidy.sh
#   PAE_CHECK_JOBS=4 scripts/check.sh   # override build/test parallelism
#
# Pass 1 (default flags) configures build-check/ and runs every ctest
# target (including pae_lint). Pass 2 configures build-check-tsan/ with
# -DPAE_SANITIZE=thread and runs the thread-pool + concurrency +
# feature-pipeline binaries directly: they are the tests whose failure
# modes are data races, and running them under TSan turns the
# determinism assertions into race detection. Pass 3 configures
# build-check-asan/ with -DPAE_SANITIZE=address and runs the interner +
# feature-pipeline binaries: the interner hands out raw string_views
# into a hand-managed arena, exactly the kind of code ASan exists for.
# Pass 4 configures build-check-ubsan/ with -DPAE_SANITIZE=undefined
# (which also enables float-divide-by-zero and -fno-sanitize-recover)
# and runs the WHOLE ctest suite: UBSan's costs are cheap enough to
# afford full coverage, and the ubsan_regression_test corpus of
# malformed UTF-8 / boundary offsets only earns its keep under it.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${PAE_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
RUN_TSAN=1
RUN_ASAN=1
RUN_UBSAN=1
RUN_TIDY=0
for arg in "$@"; do
  [[ "${arg}" == "--no-tsan" ]] && RUN_TSAN=0
  [[ "${arg}" == "--no-asan" ]] && RUN_ASAN=0
  [[ "${arg}" == "--no-ubsan" ]] && RUN_UBSAN=0
  [[ "${arg}" == "--tidy" ]] && RUN_TIDY=1
done

if [[ "${RUN_TIDY}" == "1" ]]; then
  # Fail fast before spending minutes on sanitizer builds: tidy.sh
  # exits 3 with an install hint when clang-tidy is not on PATH.
  if ! scripts/tidy.sh --probe; then
    echo "check.sh: --tidy requested but clang-tidy is unavailable" >&2
    exit 3
  fi
fi

echo "==> pass 1: default build + full ctest"
cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
cmake --build build-check -j "${JOBS}"
ctest --test-dir build-check --output-on-failure -j "${JOBS}"

if [[ "${RUN_TSAN}" == "1" ]]; then
  echo "==> pass 2: ThreadSanitizer build + concurrency binaries"
  cmake -B build-check-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=thread > /dev/null
  cmake --build build-check-tsan -j "${JOBS}" \
        --target thread_pool_test concurrency_test feature_pipeline_test
  ./build-check-tsan/tests/thread_pool_test
  ./build-check-tsan/tests/concurrency_test
  ./build-check-tsan/tests/feature_pipeline_test
fi

if [[ "${RUN_ASAN}" == "1" ]]; then
  echo "==> pass 3: AddressSanitizer build + interner/pipeline binaries"
  cmake -B build-check-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=address > /dev/null
  cmake --build build-check-asan -j "${JOBS}" \
        --target interner_test feature_pipeline_test crf_test
  ./build-check-asan/tests/interner_test
  ./build-check-asan/tests/feature_pipeline_test
  ./build-check-asan/tests/crf_test
fi

if [[ "${RUN_UBSAN}" == "1" ]]; then
  echo "==> pass 4: UndefinedBehaviorSanitizer build + full ctest"
  cmake -B build-check-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=undefined > /dev/null
  cmake --build build-check-ubsan -j "${JOBS}"
  ctest --test-dir build-check-ubsan --output-on-failure -j "${JOBS}"
fi

if [[ "${RUN_TIDY}" == "1" ]]; then
  echo "==> extra pass: clang-tidy"
  scripts/tidy.sh
fi

echo "==> all checks passed"
