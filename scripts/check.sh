#!/usr/bin/env bash
# Repository check: build + full test suite twice — once plain, once
# with ThreadSanitizer focused on the concurrency surface.
#
#   scripts/check.sh            # both passes
#   scripts/check.sh --no-tsan  # plain pass only (e.g. TSan-less hosts)
#
# Pass 1 (default flags) configures build-check/ and runs every ctest
# target. Pass 2 configures build-check-tsan/ with -DPAE_SANITIZE=thread
# and runs the thread-pool + concurrency binaries directly: they are the
# tests whose failure modes are data races, and running them under TSan
# turns the determinism assertions into race detection.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
RUN_TSAN=1
[[ "${1:-}" == "--no-tsan" ]] && RUN_TSAN=0

echo "==> pass 1: default build + full ctest"
cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release > /dev/null
cmake --build build-check -j "${JOBS}"
ctest --test-dir build-check --output-on-failure -j "${JOBS}"

if [[ "${RUN_TSAN}" == "1" ]]; then
  echo "==> pass 2: ThreadSanitizer build + concurrency binaries"
  cmake -B build-check-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=thread > /dev/null
  cmake --build build-check-tsan -j "${JOBS}" \
        --target thread_pool_test concurrency_test
  ./build-check-tsan/tests/thread_pool_test
  ./build-check-tsan/tests/concurrency_test
fi

echo "==> all checks passed"
