#!/usr/bin/env bash
# Repository check: build + test suite four times — once plain, once
# with ThreadSanitizer focused on the concurrency surface, once with
# AddressSanitizer focused on the interner/feature-pipeline surface,
# and once with UBSan over the FULL ctest suite.
#
#   scripts/check.sh             # all passes
#   scripts/check.sh --no-tsan   # skip the TSan pass
#   scripts/check.sh --no-asan   # skip the ASan pass
#   scripts/check.sh --no-ubsan  # skip the UBSan pass
#   scripts/check.sh --no-fuzz   # skip the ASan+UBSan fuzz-replay pass
#   scripts/check.sh --tidy      # additionally run scripts/tidy.sh
#   PAE_CHECK_JOBS=4 scripts/check.sh   # override build/test parallelism
#
# Pass 1 (default flags) configures build-check/ and runs every ctest
# target (including pae_lint), then runs an instrumented pae-extract
# pass over a small synthetic corpus, validates the emitted
# --metrics-out JSON report, and packs + deep-verifies the mmap'ed
# .paez model artifact (pass 1b), drives the pae-serve daemon
# end-to-end over its unix socket — 200 loadgen requests, one hot swap
# publishing the .paez artifact, protocol shutdown — (pass 1d), then
# reruns the full suite with
# PAE_SIMD=scalar (pass 1c) so the portable kernel tier — the one CI
# hosts without AVX2 would silently fall back to — gets the same
# coverage as the dispatched default. Pass 2 configures build-check-tsan/ with
# -DPAE_SANITIZE=thread and runs the thread-pool + concurrency +
# feature-pipeline + concurrent-interner + serve binaries directly: they
# are the tests whose failure modes are data races; the serve hot-swap
# hammer is additionally repeated 100 times because the publish/drain
# race is the daemon's central invariant, and the concurrent-interner
# hammer is repeated 20 times for the same reason (CAS slot claims). Pass 3 configures
# build-check-asan/ with -DPAE_SANITIZE=address and runs the interner +
# feature-pipeline + serve + model-artifact binaries: the interner hands
# out raw string_views into a hand-managed arena, the serve protocol
# tests feed adversarial frames, and the packed-artifact tests probe
# mmap'ed tables in place — exactly the kind of code ASan exists for.
# Pass 4 configures build-check-ubsan/ with -DPAE_SANITIZE=undefined
# (which also enables float-divide-by-zero and -fno-sanitize-recover)
# and runs the WHOLE ctest suite: UBSan's costs are cheap enough to
# afford full coverage, and the ubsan_regression_test corpus of
# malformed UTF-8 / boundary offsets only earns its keep under it.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${PAE_CHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"
RUN_TSAN=1
RUN_ASAN=1
RUN_UBSAN=1
RUN_FUZZ=1
RUN_TIDY=0
for arg in "$@"; do
  [[ "${arg}" == "--no-tsan" ]] && RUN_TSAN=0
  [[ "${arg}" == "--no-asan" ]] && RUN_ASAN=0
  [[ "${arg}" == "--no-ubsan" ]] && RUN_UBSAN=0
  [[ "${arg}" == "--no-fuzz" ]] && RUN_FUZZ=0
  [[ "${arg}" == "--tidy" ]] && RUN_TIDY=1
done

if [[ "${RUN_TIDY}" == "1" ]]; then
  # Fail fast before spending minutes on sanitizer builds: tidy.sh
  # exits 3 with an install hint when clang-tidy is not on PATH.
  if ! scripts/tidy.sh --probe; then
    echo "check.sh: --tidy requested but clang-tidy is unavailable" >&2
    exit 3
  fi
fi

echo "==> pass 1: default build + full ctest"
cmake -B build-check -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
cmake --build build-check -j "${JOBS}"
ctest --test-dir build-check --output-on-failure -j "${JOBS}"

echo "==> pass 1b: instrumented extraction run + metrics report"
# An end-to-end pae-extract run with --metrics-out proves the metrics
# surface works outside of unit tests: the run must succeed AND emit a
# parseable JSON report containing the core pipeline instruments.
./build-check/tools/pae-datagen --category vacuum --products 80 \
      --seed 5 --out build-check/metrics-corpus > /dev/null
./build-check/tools/pae-extract --in build-check/metrics-corpus \
      --out build-check/metrics-triples.tsv --iterations 2 \
      --metrics-out build-check/metrics-report.json \
      --save-model build-check/metrics-model.crf > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - build-check/metrics-report.json <<'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
for key in ("version", "counters", "gauges", "histograms", "series"):
    assert key in report, f"metrics report missing top-level key {key!r}"
assert report["version"] == 1, report["version"]
assert report["counters"].get("cleaning.input", 0) > 0, "no cleaning counters"
assert len(report["series"].get("crf.objective", [])) > 0, "no CRF objective"
assert len(report["series"].get("bootstrap.triples_total", [])) > 0, \
    "no bootstrap triple series"
print("metrics report OK:", len(report["counters"]), "counters,",
      len(report["histograms"]), "histograms,", len(report["series"]),
      "series")
PYEOF
else
  # No python3: settle for a structural grep that the report at least
  # contains the expected keys.
  for key in '"version"' '"counters"' '"crf.objective"' \
             '"bootstrap.triples_total"' '"cleaning.input"'; do
    grep -q "${key}" build-check/metrics-report.json || {
      echo "check.sh: metrics report missing ${key}" >&2; exit 1; }
  done
  echo "metrics report OK (grep-checked; python3 unavailable)"
fi
# Pack the trained model into the mmap'ed .paez artifact and deep-verify
# it (structure + every section checksum): the packed form feeds the
# serve smoke below, so a packer regression fails here, not there.
./build-check/tools/pae-model-pack --model build-check/metrics-model.crf \
      --out build-check/metrics-model.paez
./build-check/tools/pae-model-pack --check build-check/metrics-model.paez

echo "==> pass 1d: serve smoke (daemon + loadgen + hot swap + shutdown)"
# End-to-end over the real wire: start the pae-serve daemon on the model
# saved in pass 1b, drive 200 requests through pae-loadgen with one
# mid-run hot swap, then shut the daemon down over the protocol. Driver
# threads stay below the daemon's worker count so the swap/shutdown
# admin connections always find a free worker (the server parks each
# persistent connection on one pool thread).
SMOKE_SOCK="build-check/pae-serve-smoke.sock"
SMOKE_LOG="build-check/pae-serve-smoke.log"
rm -f "${SMOKE_SOCK}" "${SMOKE_LOG}"
./build-check/tools/pae-serve --socket "${SMOKE_SOCK}" \
      --model build-check/metrics-model.crf \
      --resources build-check/metrics-corpus --workers 4 \
      > "${SMOKE_LOG}" 2>&1 &
SMOKE_PID=$!
for _ in $(seq 1 100); do
  grep -q "pae-serve ready" "${SMOKE_LOG}" 2>/dev/null && break
  kill -0 "${SMOKE_PID}" 2>/dev/null || {
    echo "check.sh: pae-serve died before ready:" >&2
    cat "${SMOKE_LOG}" >&2; exit 1; }
  sleep 0.1
done
grep -q "pae-serve ready" "${SMOKE_LOG}" || {
  echo "check.sh: pae-serve never became ready" >&2
  kill "${SMOKE_PID}" 2>/dev/null || true; exit 1; }
# The mid-run swap publishes the mmap'ed .paez artifact packed in pass
# 1b — the legacy-loaded generation 1 and the zero-copy generation 2
# must serve identical responses (the response checksum in the JSON
# report is seed-deterministic across both).
./build-check/tools/pae-loadgen --socket "${SMOKE_SOCK}" \
      --corpus build-check/metrics-corpus --requests 200 --threads 2 \
      --swap-at 100 --swap-model build-check/metrics-model.paez \
      --swap-resources build-check/metrics-corpus --shutdown-after \
      --json build-check/serve-smoke.json \
      | tee build-check/serve-smoke.out
grep -q "hot-swapped to generation 2" build-check/serve-smoke.out || {
  echo "check.sh: serve smoke hot swap did not happen" >&2; exit 1; }
grep -q "daemon shutdown acknowledged" build-check/serve-smoke.out || {
  echo "check.sh: daemon did not acknowledge shutdown" >&2; exit 1; }
for _ in $(seq 1 100); do
  kill -0 "${SMOKE_PID}" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "${SMOKE_PID}" 2>/dev/null; then
  echo "check.sh: pae-serve did not exit after shutdown request" >&2
  kill "${SMOKE_PID}"; exit 1
fi
wait "${SMOKE_PID}" || {
  echo "check.sh: pae-serve exited non-zero:" >&2
  cat "${SMOKE_LOG}" >&2; exit 1; }
grep -q '"transport_errors": 0' build-check/serve-smoke.json || {
  echo "check.sh: serve smoke saw transport errors" >&2
  cat build-check/serve-smoke.json >&2; exit 1; }
echo "serve smoke OK: 200 requests, one hot swap, clean shutdown"

echo "==> pass 1c: full ctest with PAE_SIMD=scalar"
# Same binaries, scalar kernel tier. The kernels are bit-identical
# across tiers by contract, so every pass-1 expectation must hold
# unchanged here; a divergence means a tier broke the lane discipline.
PAE_SIMD=scalar ctest --test-dir build-check --output-on-failure -j "${JOBS}"
# The batched-BiLSTM determinism gate, explicitly and by name: training
# and decode must be byte-identical at B ∈ {1, 8, 32} (and across
# thread counts) on the scalar tier too, not just on the dispatched
# default the full suite above already covered.
PAE_SIMD=scalar ./build-check/tests/lstm_test \
      --gtest_filter='BiLstmTaggerTest.TrainingByteIdenticalAcrossBatchSizes:BiLstmTaggerTest.DecodeByteIdenticalAcrossBatchSizesAndThreads'

if [[ "${RUN_TSAN}" == "1" ]]; then
  echo "==> pass 2: ThreadSanitizer build + concurrency binaries"
  cmake -B build-check-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=thread > /dev/null
  cmake --build build-check-tsan -j "${JOBS}" \
        --target thread_pool_test concurrency_test feature_pipeline_test \
        concurrent_interner_test streaming_ingest_test serve_test
  ./build-check-tsan/tests/thread_pool_test
  ./build-check-tsan/tests/concurrency_test
  ./build-check-tsan/tests/feature_pipeline_test
  ./build-check-tsan/tests/concurrent_interner_test
  # The full multi-worker ingest pipeline (reader + scanner + segmenter
  # + both concurrent interners) under TSan, not just the interner.
  ./build-check-tsan/tests/streaming_ingest_test
  ./build-check-tsan/tests/serve_test
  # The hot-swap hammer is the one test whose whole point is the
  # publish/drain race; a single pass can get lucky, 100 consecutive
  # passes under TSan cannot.
  ./build-check-tsan/tests/serve_test \
        --gtest_filter='GenerationCellTest.HotSwapHammer*' \
        --gtest_repeat=100 --gtest_brief=1
  # Same logic for the lock-free interner: the CAS slot-claim /
  # publish-wait protocol is its central invariant, so the 8-thread
  # mixed intern/find hammer gets repeated runs under TSan by name.
  ./build-check-tsan/tests/concurrent_interner_test \
        --gtest_filter='ConcurrentInternerHammer*' \
        --gtest_repeat=20 --gtest_brief=1
fi

if [[ "${RUN_ASAN}" == "1" ]]; then
  echo "==> pass 3: AddressSanitizer build + interner/pipeline binaries"
  cmake -B build-check-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=address > /dev/null
  cmake --build build-check-asan -j "${JOBS}" \
        --target interner_test feature_pipeline_test crf_test serve_test \
        serve_protocol_test model_artifact_test
  ./build-check-asan/tests/interner_test
  ./build-check-asan/tests/feature_pipeline_test
  ./build-check-asan/tests/crf_test
  ./build-check-asan/tests/serve_test
  # The packed-artifact tests run inference directly over the mmap'ed
  # tables (guarded probes into a caller-owned mapping) — the exact
  # surface where an off-by-one becomes an out-of-mapping read.
  ./build-check-asan/tests/model_artifact_test
  # The adversarial frame corpus (oversize length words, truncations,
  # partial writes) is exactly the input family that turns a missing
  # bounds check into a heap overflow; run it with ASan watching.
  ./build-check-asan/tests/serve_protocol_test
fi

if [[ "${RUN_UBSAN}" == "1" ]]; then
  echo "==> pass 4: UndefinedBehaviorSanitizer build + full ctest"
  cmake -B build-check-ubsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=undefined > /dev/null
  cmake --build build-check-ubsan -j "${JOBS}"
  ctest --test-dir build-check-ubsan --output-on-failure -j "${JOBS}"
fi

if [[ "${RUN_FUZZ}" == "1" ]]; then
  echo "==> pass 5: ASan+UBSan fuzz-harness replay over the corpus"
  # Both structure-aware harnesses over the committed corpus plus the
  # mutation-sweep gtest, instrumented with the fuzzing combo: ASan for
  # the out-of-mapping reads hostile artifacts aim for, UBSan for the
  # arithmetic on hostile header fields. Bounded (corpus replay, not
  # coverage search) so it fits every CI run; the coverage-guided
  # libFuzzer targets run on the Clang leg.
  cmake -B build-check-fuzz -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DPAE_SANITIZE=address+undefined > /dev/null
  cmake --build build-check-fuzz -j "${JOBS}" \
        --target pae-fuzz-replay fuzz_replay_test
  ./build-check-fuzz/fuzz/pae-fuzz-replay --target=paez fuzz/corpus/paez
  ./build-check-fuzz/fuzz/pae-fuzz-replay --target=frame fuzz/corpus/frame
  ./build-check-fuzz/tests/fuzz_replay_test
fi

if [[ "${RUN_TIDY}" == "1" ]]; then
  echo "==> extra pass: clang-tidy"
  scripts/tidy.sh
fi

echo "==> all checks passed"
