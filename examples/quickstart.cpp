// Quickstart: generate a small synthetic e-commerce category, run one
// bootstrap cycle of the PAE pipeline with a CRF tagger, and print the
// evaluation metrics of §VI-C.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "core/bootstrap.h"
#include "core/eval.h"
#include "datagen/generator.h"
#include "util/logging.h"
#include "util/strings.h"

int main() {
  using namespace pae;

  // 1. Generate a synthetic "Vacuum Cleaner" corpus (product pages,
  //    query log, language resources) plus the evaluation truth sample.
  datagen::GeneratorConfig gen_config;
  gen_config.num_products = 300;
  gen_config.seed = 42;
  datagen::GeneratedCategory category =
      datagen::GenerateCategory(datagen::CategoryId::kVacuumCleaner,
                                gen_config);
  std::cout << "Generated " << category.corpus.pages.size()
            << " product pages, " << category.corpus.query_log.size()
            << " queries, " << category.truth.entries.size()
            << " truth entries\n";

  // 2. Parse / tokenize / PoS-tag every page.
  core::ProcessedCorpus corpus = core::ProcessCorpus(category.corpus);

  // 3. Configure one bootstrap cycle with the CRF tagger.
  core::PipelineConfig config;
  config.model = core::ModelType::kCrf;
  config.iterations = 1;
  config.seed = 7;

  core::Pipeline pipeline(config);
  Result<core::PipelineResult> result = pipeline.Run(corpus);
  if (!result.ok()) {
    std::cerr << "pipeline failed: " << result.status().ToString() << "\n";
    return 1;
  }
  const core::PipelineResult& r = result.value();

  // 4. Report.
  std::cout << "\nSeed: " << r.seed.pairs.size() << " <attribute, value> pairs"
            << " (" << r.seed.pairs_added_by_diversification
            << " added by diversification) across "
            << r.seed.attributes.size() << " attributes\n";
  std::cout << "Attributes discovered: "
            << StrJoin(r.seed.attributes, ", ") << "\n";

  core::TripleMetrics seed_metrics = core::EvaluateTriples(
      r.seed_triples, category.truth, corpus.pages.size());
  std::cout << "\nSeed stage:   precision=" << FormatDouble(
                   seed_metrics.precision, 2)
            << "% coverage=" << FormatDouble(seed_metrics.coverage, 2)
            << "% triples=" << seed_metrics.total << "\n";

  core::TripleMetrics metrics = core::EvaluateTriples(
      r.final_triples(), category.truth, corpus.pages.size());
  std::cout << "After 1 iter: precision=" << FormatDouble(metrics.precision, 2)
            << "% coverage=" << FormatDouble(metrics.coverage, 2)
            << "% triples=" << metrics.total
            << " (correct=" << metrics.correct
            << " incorrect=" << metrics.incorrect
            << " maybe=" << metrics.maybe_incorrect
            << " unjudged=" << metrics.unjudged << ")\n";

  // 5. A few extracted triples.
  std::cout << "\nSample extracted triples:\n";
  int shown = 0;
  for (const core::Triple& t : r.final_triples()) {
    std::cout << "  <" << t.product_id << ", " << t.attribute << ", "
              << t.value << ">\n";
    if (++shown >= 8) break;
  }
  return 0;
}
