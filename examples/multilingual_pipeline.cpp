// Language-independence example (§II / §IX): the identical pipeline code
// runs on an unsegmented Japanese-like corpus and on a space-separated
// German-like corpus — only the tokenizer lexicon and PoS resources
// differ, exactly the boundary the paper draws.

#include <iostream>

#include "core/bootstrap.h"
#include "core/eval.h"
#include "datagen/generator.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

void RunOne(pae::datagen::CategoryId id) {
  using namespace pae;
  datagen::GeneratorConfig gen_config;
  gen_config.num_products = 300;
  gen_config.seed = 99;
  datagen::GeneratedCategory category =
      datagen::GenerateCategory(id, gen_config);
  core::ProcessedCorpus corpus = core::ProcessCorpus(category.corpus);

  // One pipeline configuration for every language.
  core::PipelineConfig config;
  config.iterations = 2;
  core::Pipeline pipeline(config);
  auto result = pipeline.Run(corpus);
  if (!result.ok()) {
    std::cerr << result.status().ToString() << "\n";
    return;
  }
  core::TripleMetrics metrics = core::EvaluateTriples(
      result.value().final_triples(), category.truth, corpus.pages.size());

  std::cout << "\n=== " << datagen::CategoryName(id) << " (lang="
            << text::LanguageName(corpus.language) << ") ===\n"
            << "  attributes discovered: "
            << StrJoin(result.value().seed.attributes, ", ") << "\n"
            << "  precision " << FormatDouble(metrics.precision, 2)
            << "%  coverage " << FormatDouble(metrics.coverage, 2)
            << "%  triples " << metrics.total << "\n";
  int shown = 0;
  for (const core::Triple& t : result.value().final_triples()) {
    std::cout << "    <" << t.product_id << ", " << t.attribute << ", "
              << t.value << ">\n";
    if (++shown >= 4) break;
  }
}

}  // namespace

int main() {
  pae::SetMinLogLevel(1);
  std::cout << "Same pipeline, two languages — only tokenizer + PoS\n"
            << "resources change (the paper's language-independence\n"
            << "claim, §IX).\n";
  RunOne(pae::datagen::CategoryId::kLadiesBags);   // Japanese
  RunOne(pae::datagen::CategoryId::kMailboxDe);    // German
  return 0;
}
