// Extension example: running the PAE pipeline on a corpus the library
// has never seen — hand-written product pages for a tiny "Wine" category
// — to show what a downstream adopter supplies: raw HTML pages, a query
// log, and (for unsegmented languages) tokenizer/PoS resources. Also
// demonstrates model choice (CRF vs BiLSTM) through one interface.

#include <iostream>
#include <string>
#include <vector>

#include "core/bootstrap.h"
#include "core/eval.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

/// Builds a small hand-written German-style wine catalog. Half the pages
/// carry dictionary spec tables (the seed source), the rest only free
/// text — the situation the bootstrap exists for.
pae::core::Corpus BuildWineCorpus() {
  pae::core::Corpus corpus;
  corpus.category = "Wine";
  corpus.language = pae::text::Language::kDe;

  const std::vector<std::string> grapes = {"Riesling", "Spätburgunder",
                                           "Müller-Thurgau", "Silvaner",
                                           "Dornfelder"};
  const std::vector<std::string> regions = {"Mosel", "Pfalz", "Rheingau",
                                            "Baden", "Nahe"};
  const std::vector<std::string> years = {"2018", "2019", "2020", "2021"};

  int id = 0;
  for (int i = 0; i < 60; ++i) {
    const std::string& grape = grapes[static_cast<size_t>(i) % grapes.size()];
    const std::string& region =
        regions[static_cast<size_t>(i) % regions.size()];
    const std::string& year = years[static_cast<size_t>(i) % years.size()];
    const std::string alcohol =
        std::to_string(11 + i % 4) + "," + std::to_string(i % 10) + " %";

    std::string html = "<html><body><h1>Wein Nr. " + std::to_string(i) +
                       "</h1><div>";
    html += "<p>Rebsorte : " + grape + " .</p>";
    html += "<p>Die Region ist " + region + " .</p>";
    if (i % 3 == 0) {
      html += "<p>Der Alkoholgehalt beträgt " + alcohol + " .</p>";
    }
    html += "<p>Jahrgang : " + year + " .</p>";
    html += "</div>";
    if (i % 2 == 0) {  // dictionary table on half the pages
      html += "<table>";
      html += "<tr><th>Rebsorte</th><td>" + grape + "</td></tr>";
      html += "<tr><th>Region</th><td>" + region + "</td></tr>";
      html += "<tr><th>Jahrgang</th><td>" + year + "</td></tr>";
      html += "</table>";
    }
    html += "</body></html>";

    pae::core::ProductPage page;
    page.product_id = "wine_" + std::to_string(id++);
    page.html = std::move(html);
    corpus.pages.push_back(std::move(page));
  }

  // Users search grapes and regions.
  for (const auto& g : grapes) corpus.query_log.push_back(g);
  for (const auto& r : regions) corpus.query_log.push_back(r);
  return corpus;
}

void RunWith(pae::core::ModelType model,
             const pae::core::ProcessedCorpus& corpus) {
  pae::core::PipelineConfig config;
  config.model = model;
  config.iterations = 2;
  config.preprocess.value_min_count = 2;  // tiny corpus
  config.lstm.epochs = 8;
  pae::core::Pipeline pipeline(config);
  auto result = pipeline.Run(corpus);
  if (!result.ok()) {
    std::cerr << "  " << pae::core::ModelTypeName(model)
              << " failed: " << result.status().ToString() << "\n";
    return;
  }
  std::cout << "\n[" << pae::core::ModelTypeName(model) << "] attributes: "
            << pae::StrJoin(result.value().seed.attributes, ", ") << "\n";
  int shown = 0;
  for (const auto& t : result.value().final_triples()) {
    std::cout << "  <" << t.product_id << ", " << t.attribute << ", "
              << t.value << ">\n";
    if (++shown >= 8) break;
  }
  std::cout << "  ... " << result.value().final_triples().size()
            << " triples total\n";
}

}  // namespace

int main() {
  pae::SetMinLogLevel(1);
  std::cout << "Custom 60-page 'Wine' catalog — no generator involved.\n";
  pae::core::Corpus corpus = BuildWineCorpus();
  pae::core::ProcessedCorpus processed = pae::core::ProcessCorpus(corpus);
  RunWith(pae::core::ModelType::kCrf, processed);
  RunWith(pae::core::ModelType::kBiLstm, processed);
  return 0;
}
