// Domain example: extracting the challenging Digital Camera attributes
// the paper studies in §VIII-C — shutter speed (complex value formats
// like "1/4000秒〜30秒"), effective pixels (confusable with total
// pixels, thousands separators), and weight — and comparing a global
// model against a specialized per-attribute-subset model (§VIII-D).

#include <iostream>
#include <vector>

#include "core/bootstrap.h"
#include "core/eval.h"
#include "datagen/generator.h"
#include "util/logging.h"
#include "util/strings.h"

namespace {

pae::core::TripleMetrics EvaluateAttribute(
    const pae::datagen::GeneratedCategory& category,
    const std::vector<pae::core::Triple>& triples,
    const std::string& attribute, size_t num_products) {
  std::vector<pae::core::Triple> filtered;
  for (const pae::core::Triple& t : triples) {
    if (category.truth.Canonical(t.attribute) == attribute) {
      filtered.push_back(t);
    }
  }
  return pae::core::EvaluateTriples(filtered, category.truth, num_products);
}

}  // namespace

int main() {
  using namespace pae;
  SetMinLogLevel(1);

  datagen::GeneratorConfig gen_config;
  gen_config.num_products = 400;
  gen_config.seed = 2024;
  datagen::GeneratedCategory cameras =
      datagen::GenerateCategory(datagen::CategoryId::kDigitalCameras,
                                gen_config);
  core::ProcessedCorpus corpus = core::ProcessCorpus(cameras.corpus);
  std::cout << "Digital Cameras corpus: " << corpus.pages.size()
            << " product pages\n";

  const std::vector<std::string> targets = {"シャッタースピード",
                                            "有効画素数", "重量"};

  // Global model over the full attribute set.
  core::PipelineConfig global_config;
  global_config.iterations = 2;
  core::Pipeline global_pipeline(global_config);
  auto global = global_pipeline.Run(corpus);
  if (!global.ok()) {
    std::cerr << global.status().ToString() << "\n";
    return 1;
  }

  // Specialized model restricted to the three hard attributes.
  core::PipelineConfig special_config = global_config;
  special_config.preprocess.attribute_filter = targets;
  core::Pipeline special_pipeline(special_config);
  auto special = special_pipeline.Run(corpus);
  if (!special.ok()) {
    std::cerr << special.status().ToString() << "\n";
    return 1;
  }

  std::cout << "\nPer-attribute results (global → specialized model):\n";
  for (const std::string& attribute : targets) {
    core::TripleMetrics g = EvaluateAttribute(
        cameras, global.value().final_triples(), attribute,
        corpus.pages.size());
    core::TripleMetrics s = EvaluateAttribute(
        cameras, special.value().final_triples(), attribute,
        corpus.pages.size());
    std::cout << "  " << attribute << ": coverage "
              << FormatDouble(g.coverage, 1) << "% → "
              << FormatDouble(s.coverage, 1) << "%,  precision "
              << FormatDouble(g.precision, 1) << "% → "
              << FormatDouble(s.precision, 1) << "%\n";
  }

  std::cout << "\nSample shutter-speed values extracted:\n";
  int shown = 0;
  for (const core::Triple& t : special.value().final_triples()) {
    if (cameras.truth.Canonical(t.attribute) != "シャッタースピード") {
      continue;
    }
    std::cout << "  <" << t.product_id << ", " << t.attribute << ", "
              << t.value << ">\n";
    if (++shown >= 6) break;
  }
  if (shown == 0) {
    std::cout << "  (none at this corpus scale — rerun with more "
                 "products)\n";
  }
  return 0;
}
