// Deployment example: bootstrap once on a reference crawl, persist the
// trained CRF, then tag a *new* crawl with the saved model — no
// re-bootstrapping. This is the production loop a catalog team runs
// nightly: slow calibration occasionally, fast application always.

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/apply.h"
#include "core/bootstrap.h"
#include "core/eval.h"
#include "crf/crf_tagger.h"
#include "datagen/generator.h"
#include "util/logging.h"
#include "util/strings.h"

int main() {
  using namespace pae;
  SetMinLogLevel(1);

  // ---- reference crawl: bootstrap + keep the final model ----
  datagen::GeneratorConfig reference;
  reference.num_products = 300;
  reference.seed = 42;
  auto crawl_a = datagen::GenerateCategory(
      datagen::CategoryId::kBackpacks, reference);
  core::ProcessedCorpus corpus_a = core::ProcessCorpus(crawl_a.corpus);

  core::PipelineConfig config;
  config.iterations = 2;
  config.train_final_model = true;
  core::Pipeline pipeline(config);
  auto trained = pipeline.Run(corpus_a);
  if (!trained.ok()) {
    std::cerr << trained.status().ToString() << "\n";
    return 1;
  }
  std::cout << "bootstrap: " << trained.value().final_triples().size()
            << " triples, " << trained.value().known_pair_keys.size()
            << " accepted <attribute, value> pairs\n";

  // ---- persist ----
  const std::string model_path =
      (std::filesystem::temp_directory_path() / "backpacks.crf").string();
  auto* crf = dynamic_cast<crf::CrfTagger*>(
      trained.value().final_tagger.get());
  if (crf == nullptr || !crf->Save(model_path).ok()) {
    std::cerr << "could not persist the model\n";
    return 1;
  }
  const size_t dropped = crf->Compact();  // shed L1 zero-weight features
  std::cout << "persisted " << model_path << " (compacted " << dropped
            << " dead features)\n";

  // ---- fresh crawl: load + apply ----
  datagen::GeneratorConfig fresh = reference;
  fresh.num_products = 150;
  fresh.seed = 20260706;
  auto crawl_b =
      datagen::GenerateCategory(datagen::CategoryId::kBackpacks, fresh);
  core::ProcessedCorpus corpus_b = core::ProcessCorpus(crawl_b.corpus);

  crf::CrfTagger loaded;
  if (!loaded.Load(model_path).ok()) {
    std::cerr << "could not load the model\n";
    return 1;
  }
  core::ApplyOptions apply;
  apply.min_span_confidence = 0.5;
  apply.accepted_pairs.insert(trained.value().known_pair_keys.begin(),
                              trained.value().known_pair_keys.end());
  std::vector<core::Triple> triples =
      core::ExtractWithModel(loaded, corpus_b, apply);

  core::TripleMetrics metrics = core::EvaluateTriples(
      triples, crawl_b.truth, corpus_b.pages.size());
  std::cout << "apply on fresh crawl: " << triples.size()
            << " triples, precision " << FormatDouble(metrics.precision, 2)
            << "%, coverage " << FormatDouble(metrics.coverage, 2) << "%\n";
  for (size_t i = 0; i < triples.size() && i < 5; ++i) {
    std::cout << "  <" << triples[i].product_id << ", "
              << triples[i].attribute << ", " << triples[i].value << ">\n";
  }
  std::remove(model_path.c_str());
  return 0;
}
