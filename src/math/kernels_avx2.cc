// AVX2 tier of the SIMD kernel layer (256-bit). Reductions keep the 8
// logical double lanes in two 4-wide registers (lanes 0-3 / 4-7), spill
// to a double[8], and finish with the shared tail + tree helpers —
// bit-identical to the scalar tier by construction. Note: no FMA
// intrinsics and -ffp-contract=off, even though dispatch gates this
// tier on the FMA cpuid bit — see kernels.cc.

#include "math/kernels_detail.h"

#if defined(PAE_KERNELS_HAVE_AVX2)

#include <immintrin.h>

namespace pae::math::kernels {
namespace {

double DotAvx2(const float* a, const float* b, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();  // lanes 0-3
  __m256d acc1 = _mm256_setzero_pd();  // lanes 4-7
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 af = _mm256_loadu_ps(a + i);
    const __m256 bf = _mm256_loadu_ps(b + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(af));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(af, 1));
    const __m256d blo = _mm256_cvtps_pd(_mm256_castps256_ps128(bf));
    const __m256d bhi = _mm256_cvtps_pd(_mm256_extractf128_ps(bf, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(alo, blo));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(ahi, bhi));
  }
  double lanes[8];
  _mm256_storeu_pd(lanes + 0, acc0);
  _mm256_storeu_pd(lanes + 4, acc1);
  return detail::FinishDot(lanes, a, b, i, n);
}

double SumSqAvx2(const float* a, size_t n) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 af = _mm256_loadu_ps(a + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(af));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(af, 1));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(alo, alo));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(ahi, ahi));
  }
  double lanes[8];
  _mm256_storeu_pd(lanes + 0, acc0);
  _mm256_storeu_pd(lanes + 4, acc1);
  return detail::FinishSumSq(lanes, a, i, n);
}

/// Σ of the eight epi32 lanes, widened to int64 (exact — order free).
int64_t HSum32Avx2(__m256i v) {
  alignas(32) int32_t lanes[8];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return static_cast<int64_t>(lanes[0]) + lanes[1] + lanes[2] + lanes[3] +
         lanes[4] + lanes[5] + lanes[6] + lanes[7];
}

Q8Moments DotQ8Avx2(const int8_t* a, const int8_t* b, size_t n) {
  // 32 int8 per iteration: cvtepi8_epi16 on each 16-byte half, then
  // madd_epi16 into epi32 partials, flushed to int64 every kFlushIters
  // iterations (same overflow budget as the SSE2 tier: worst case
  // 2·32768 per lane per iteration).
  constexpr size_t kFlushIters = 8192;
  Q8Moments m;
  const __m256i ones = _mm256_set1_epi16(1);
  size_t i = 0;
  while (i + 32 <= n) {
    __m256i dot = _mm256_setzero_si256();
    __m256i sa = _mm256_setzero_si256();
    __m256i sb = _mm256_setzero_si256();
    __m256i qa = _mm256_setzero_si256();
    __m256i qb = _mm256_setzero_si256();
    size_t iters = 0;
    for (; i + 32 <= n && iters < kFlushIters; i += 32, ++iters) {
      const __m256i av = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a + i));
      const __m256i bv = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(b + i));
      const __m256i alo =
          _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
      const __m256i ahi =
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1));
      const __m256i blo =
          _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
      const __m256i bhi =
          _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
      dot = _mm256_add_epi32(dot,
                             _mm256_add_epi32(_mm256_madd_epi16(alo, blo),
                                              _mm256_madd_epi16(ahi, bhi)));
      sa = _mm256_add_epi32(sa,
                            _mm256_add_epi32(_mm256_madd_epi16(alo, ones),
                                             _mm256_madd_epi16(ahi, ones)));
      sb = _mm256_add_epi32(sb,
                            _mm256_add_epi32(_mm256_madd_epi16(blo, ones),
                                             _mm256_madd_epi16(bhi, ones)));
      qa = _mm256_add_epi32(qa,
                            _mm256_add_epi32(_mm256_madd_epi16(alo, alo),
                                             _mm256_madd_epi16(ahi, ahi)));
      qb = _mm256_add_epi32(qb,
                            _mm256_add_epi32(_mm256_madd_epi16(blo, blo),
                                             _mm256_madd_epi16(bhi, bhi)));
    }
    m.dot += HSum32Avx2(dot);
    m.sum_a += HSum32Avx2(sa);
    m.sum_b += HSum32Avx2(sb);
    m.sumsq_a += HSum32Avx2(qa);
    m.sumsq_b += HSum32Avx2(qb);
  }
  detail::FinishDotQ8(&m, a, b, i, n);
  return m;
}

void AxpyAvx2(float alpha, const float* x, float* y, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_add_ps(_mm256_loadu_ps(y + i),
                             _mm256_mul_ps(va, _mm256_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleAvx2(float alpha, float* x, size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(x + i, _mm256_mul_ps(va, _mm256_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void MatVecAvx2(const float* m, size_t rows, size_t cols, const float* x,
                float* out) {
  detail::MatVecImpl(m, rows, cols, x, out, DotAvx2);
}

void MatTVecAvx2(const float* m, size_t rows, size_t cols, const float* x,
                 float* out) {
  detail::MatTVecImpl(m, rows, cols, x, out, AxpyAvx2);
}

void AddOuterAvx2(float alpha, const float* a, const float* b, float* m,
                  size_t rows, size_t cols) {
  detail::AddOuterImpl(alpha, a, b, m, rows, cols, AxpyAvx2);
}

void LstmGatePreactAvx2(const float* wx, const float* wh, const float* bias,
                        const float* x, const float* h_prev, size_t hidden,
                        size_t input_dim, float* pre) {
  detail::LstmGatePreactImpl(wx, wh, bias, x, h_prev, hidden, input_dim, pre,
                             DotAvx2);
}

/// Column-block micro-kernel: four dots of one row against the K-vectors
/// at x, x+k, x+2k, x+3k, sharing the two converted a-row registers; the
/// column data comes from the pre-widened double panel `xd` (same values
/// as x — see kernels_detail.h), so the inner loop has no b-side cvt/
/// extract chain. 4 columns × 2 accumulators + alo/ahi = 10 live ymm
/// registers; each column keeps DotAvx2's exact lane layout and finishes
/// through the shared tail, so each result is bit-equal to a standalone
/// DotAvx2.
void DotCols4Avx2(const float* a, const float* x, const double* xd, size_t k,
                  double* out) {
  __m256d acc0[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                     _mm256_setzero_pd(), _mm256_setzero_pd()};
  __m256d acc1[4] = {_mm256_setzero_pd(), _mm256_setzero_pd(),
                     _mm256_setzero_pd(), _mm256_setzero_pd()};
  size_t i = 0;
  for (; i + 8 <= k; i += 8) {
    const __m256 af = _mm256_loadu_ps(a + i);
    const __m256d alo = _mm256_cvtps_pd(_mm256_castps256_ps128(af));
    const __m256d ahi = _mm256_cvtps_pd(_mm256_extractf128_ps(af, 1));
    for (size_t c = 0; c < 4; ++c) {
      const __m256d blo = _mm256_loadu_pd(xd + c * k + i);
      const __m256d bhi = _mm256_loadu_pd(xd + c * k + i + 4);
      acc0[c] = _mm256_add_pd(acc0[c], _mm256_mul_pd(alo, blo));
      acc1[c] = _mm256_add_pd(acc1[c], _mm256_mul_pd(ahi, bhi));
    }
  }
  if (i == k) {
    // No tail: reduce in registers with ReduceLanes8's exact tree —
    // hadd pairs ((l0+l1),(l4+l5),(l2+l3),(l6+l7)), the 128-bit add
    // forms (l0+l1)+(l2+l3) and (l4+l5)+(l6+l7), and the final add_sd
    // joins them. Same additions, same association, so bit-identical
    // to the spill-and-FinishDot path.
    for (size_t c = 0; c < 4; ++c) {
      const __m256d h = _mm256_hadd_pd(acc0[c], acc1[c]);
      const __m128d s = _mm_add_pd(_mm256_castpd256_pd128(h),
                                   _mm256_extractf128_pd(h, 1));
      out[c] = _mm_cvtsd_f64(_mm_add_sd(s, _mm_unpackhi_pd(s, s)));
    }
    return;
  }
  for (size_t c = 0; c < 4; ++c) {
    double lanes[8];
    _mm256_storeu_pd(lanes + 0, acc0[c]);
    _mm256_storeu_pd(lanes + 4, acc1[c]);
    out[c] = detail::FinishDot(lanes, a, x + c * k, i, k);
  }
}

void MatMulAvx2(const float* m, size_t rows, size_t k, const float* x,
                size_t batch, const float* bias, float* out) {
  detail::MatMulImpl<4>(m, rows, k, x, batch, bias, out, DotAvx2,
                        DotCols4Avx2);
}

void MatTVecBatchAvx2(const float* m, size_t rows, size_t cols,
                      const float* x, size_t batch, float* out) {
  detail::MatTVecBatchImpl(m, rows, cols, x, batch, out, AxpyAvx2);
}

void LstmGatePreactBatchAvx2(const float* wx, const float* wh,
                             const float* bias, const float* xs,
                             const float* hs, size_t hidden, size_t input_dim,
                             size_t batch, float* pre) {
  detail::LstmGatePreactBatchImpl<4>(wx, wh, bias, xs, hs, hidden, input_dim,
                                     batch, pre, DotAvx2, DotCols4Avx2);
}

}  // namespace

namespace detail {
const KernelTable kAvx2Table = {
    DotAvx2,     SumSqAvx2,   DotQ8Avx2,    AxpyAvx2,
    ScaleAvx2,   MatVecAvx2,  MatTVecAvx2,  AddOuterAvx2,
    LstmGatePreactAvx2,       MatMulAvx2,   MatTVecBatchAvx2,
    LstmGatePreactBatchAvx2,
};
}  // namespace detail

}  // namespace pae::math::kernels

#endif  // PAE_KERNELS_HAVE_AVX2
