#ifndef PAE_MATH_KERNELS_DETAIL_H_
#define PAE_MATH_KERNELS_DETAIL_H_

// Internal contract shared by the per-ISA kernel translation units
// (kernels.cc, kernels_sse2.cc, kernels_avx2.cc). Not part of the
// public API — include math/kernels.h instead.
//
// The determinism scheme lives here: every reduction runs over 8
// logical double lanes (element i lands in lane i % 8) and the lanes
// are combined by ReduceLanes8's fixed tree. A SIMD tier computes the
// lane partial sums in registers, spills them to a double[8], routes
// the tail through the same scalar code as the fallback, and reduces
// with the same tree — which is why avx2/sse2/scalar agree to the bit.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/kernels.h"  // Q8Moments

namespace pae::math::kernels::detail {

/// Fixed lane-combine tree: ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
inline double ReduceLanes8(const double* l) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

/// Adds elements [i, n) of a·b into the lanes (lane i % 8) and reduces.
/// Every tier finishes its Dot through this helper.
inline double FinishDot(double* lanes, const float* a, const float* b,
                        size_t i, size_t n) {
  for (; i < n; ++i) {
    lanes[i % 8] += static_cast<double>(a[i]) * b[i];
  }
  return ReduceLanes8(lanes);
}

/// Tail + reduce for SumSq, mirroring FinishDot.
inline double FinishSumSq(double* lanes, const float* a, size_t i, size_t n) {
  for (; i < n; ++i) {
    lanes[i % 8] += static_cast<double>(a[i]) * a[i];
  }
  return ReduceLanes8(lanes);
}

// The row-loop kernels are the same for every tier except for which
// dot/axpy core they inline; the templates below are instantiated once
// per translation unit with that unit's core so there is no indirect
// call inside the row loop.

template <typename DotFn>
inline void MatVecImpl(const float* m, size_t rows, size_t cols,
                       const float* x, float* out, DotFn dot) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = static_cast<float>(dot(m + r * cols, x, cols));
  }
}

template <typename AxpyFn>
inline void MatTVecImpl(const float* m, size_t rows, size_t cols,
                        const float* x, float* out, AxpyFn axpy) {
  for (size_t r = 0; r < rows; ++r) {
    const float xv = x[r];
    if (xv == 0.0f) continue;  // contract: all tiers skip (signed zeros)
    axpy(xv, m + r * cols, out, cols);
  }
}

template <typename AxpyFn>
inline void AddOuterImpl(float alpha, const float* a, const float* b,
                         float* m, size_t rows, size_t cols, AxpyFn axpy) {
  for (size_t r = 0; r < rows; ++r) {
    const float av = alpha * a[r];
    if (av == 0.0f) continue;  // contract: all tiers skip
    axpy(av, b, m + r * cols, cols);
  }
}

template <typename DotFn>
inline void LstmGatePreactImpl(const float* wx, const float* wh,
                               const float* bias, const float* x,
                               const float* h_prev, size_t hidden,
                               size_t input_dim, float* pre, DotFn dot) {
  const size_t gates = 4 * hidden;
  for (size_t r = 0; r < gates; ++r) {
    pre[r] = static_cast<float>(static_cast<double>(bias[r]) +
                                dot(wx + r * input_dim, x, input_dim) +
                                dot(wh + r * hidden, h_prev, hidden));
  }
}

// ---- Batched GEMM loops ----
//
// Each tier provides a column-block micro-kernel
//   dot_cols(a, x, xd, k, out)
// computing kColBlock 8-lane dot products of one matrix row `a` against
// the kColBlock consecutive K-vectors packed at x, x+k, ... — sharing
// the converted a-row registers across columns. `xd` is the same panel
// pre-widened to double by the caller (xd[c·k + i] == double(x[c·k + i]),
// an exact conversion): the column data is reused by every row, so
// converting it once per panel removes the float→double work from the
// inner loop entirely — the shuffle-port cvt chain is what dominates
// the unbatched dot. The float panel is still passed for the FinishDot
// tail. Each column's result must be bit-equal to the tier's
// single-vector dot (same lanes, same tree, same FinishDot tail); the
// templates below then guarantee every output element of the blocked
// GEMM matches the unblocked MatVec.

/// Widens a float panel to double — exact, element-independent, so it
/// cannot perturb any downstream rounding.
inline void WidenPanel(const float* x, size_t n, double* xd) {
  for (size_t i = 0; i < n; ++i) xd[i] = static_cast<double>(x[i]);
}

/// Per-thread scratch for the widened column panel. Grows monotonically
/// and is reused across calls; thread-local so pool workers never share.
inline double* PanelScratch(size_t n) {
  thread_local std::vector<double> scratch;
  if (scratch.size() < n) scratch.resize(n);
  return scratch.data();
}

/// Blocked GEMM: out[b·rows + r] = float([bias[r] +] m_r·x_b).
/// Column panels are the outer loop: each kColBlock-column panel is
/// widened to double once, stays L1-resident while the whole weight
/// matrix streams over it, and the weight matrix is thus read
/// ceil(batch/kColBlock) times instead of `batch` times. Remainder
/// columns (batch % kColBlock) fall back to the tier's single-column
/// dot.
template <size_t kColBlock, typename DotFn, typename DotColsFn>
inline void MatMulImpl(const float* m, size_t rows, size_t k, const float* x,
                       size_t batch, const float* bias, float* out, DotFn dot,
                       DotColsFn dot_cols) {
  const size_t full = batch - batch % kColBlock;
  double d[kColBlock];
  double* xd = full > 0 ? PanelScratch(kColBlock * k) : nullptr;
  for (size_t b0 = 0; b0 < full; b0 += kColBlock) {
    WidenPanel(x + b0 * k, kColBlock * k, xd);
    for (size_t r = 0; r < rows; ++r) {
      dot_cols(m + r * k, x + b0 * k, xd, k, d);
      for (size_t c = 0; c < kColBlock; ++c) {
        out[(b0 + c) * rows + r] = static_cast<float>(
            bias != nullptr ? static_cast<double>(bias[r]) + d[c] : d[c]);
      }
    }
  }
  for (size_t b = full; b < batch; ++b) {
    for (size_t r = 0; r < rows; ++r) {
      const double dv = dot(m + r * k, x + b * k, k);
      out[b * rows + r] = static_cast<float>(
          bias != nullptr ? static_cast<double>(bias[r]) + dv : dv);
    }
  }
}

/// Batched MatTVec: rows outer so one weight-row load serves every batch
/// element; for a fixed b the axpy sequence is r-ascending — the same
/// order (and the same zero-skip contract) as per-vector MatTVecImpl.
template <typename AxpyFn>
inline void MatTVecBatchImpl(const float* m, size_t rows, size_t cols,
                             const float* x, size_t batch, float* out,
                             AxpyFn axpy) {
  for (size_t r = 0; r < rows; ++r) {
    const float* mr = m + r * cols;
    for (size_t b = 0; b < batch; ++b) {
      const float xv = x[b * rows + r];
      if (xv == 0.0f) continue;  // contract: all tiers skip (signed zeros)
      axpy(xv, mr, out + b * cols, cols);
    }
  }
}

/// Batched fused gate pre-activation: per column block both gate-weight
/// rows stream once for kColBlock sequences, against x/h panels widened
/// to double once per block. The per-element arithmetic —
/// float(double(bias) + dot_wx + dot_wh), left-associated, rounded
/// once — is exactly LstmGatePreactImpl's. The [4H × (D+H)] weight pair
/// is L2-resident at model sizes, so no extra row tiling here.
template <size_t kColBlock, typename DotFn, typename DotColsFn>
inline void LstmGatePreactBatchImpl(const float* wx, const float* wh,
                                    const float* bias, const float* xs,
                                    const float* hs, size_t hidden,
                                    size_t input_dim, size_t batch, float* pre,
                                    DotFn dot, DotColsFn dot_cols) {
  const size_t gates = 4 * hidden;
  const size_t full = batch - batch % kColBlock;
  double dx[kColBlock];
  double dh[kColBlock];
  double* panel =
      full > 0 ? PanelScratch(kColBlock * (input_dim + hidden)) : nullptr;
  double* xsd = panel;
  double* hsd = panel != nullptr ? panel + kColBlock * input_dim : nullptr;
  for (size_t b0 = 0; b0 < full; b0 += kColBlock) {
    WidenPanel(xs + b0 * input_dim, kColBlock * input_dim, xsd);
    WidenPanel(hs + b0 * hidden, kColBlock * hidden, hsd);
    for (size_t r = 0; r < gates; ++r) {
      dot_cols(wx + r * input_dim, xs + b0 * input_dim, xsd, input_dim, dx);
      dot_cols(wh + r * hidden, hs + b0 * hidden, hsd, hidden, dh);
      for (size_t c = 0; c < kColBlock; ++c) {
        pre[(b0 + c) * gates + r] = static_cast<float>(
            static_cast<double>(bias[r]) + dx[c] + dh[c]);
      }
    }
  }
  for (size_t b = full; b < batch; ++b) {
    LstmGatePreactImpl(wx, wh, bias, xs + b * input_dim, hs + b * hidden,
                       hidden, input_dim, pre + b * gates, dot);
  }
}

/// Scalar tail for DotQ8: folds elements [i, n) into `m`. Integer sums
/// are exact, so unlike the float kernels there is no lane discipline
/// to respect — every tier finishing through this helper agrees with
/// scalar automatically.
inline void FinishDotQ8(Q8Moments* m, const int8_t* a, const int8_t* b,
                        size_t i, size_t n) {
  for (; i < n; ++i) {
    const int32_t av = a[i];
    const int32_t bv = b[i];
    m->dot += av * bv;
    m->sum_a += av;
    m->sum_b += bv;
    m->sumsq_a += av * av;
    m->sumsq_b += bv * bv;
  }
}

/// Function-pointer table one ISA tier exports.
struct KernelTable {
  double (*dot)(const float*, const float*, size_t);
  double (*sumsq)(const float*, size_t);
  Q8Moments (*dotq8)(const int8_t*, const int8_t*, size_t);
  void (*axpy)(float, const float*, float*, size_t);
  void (*scale)(float, float*, size_t);
  void (*matvec)(const float*, size_t, size_t, const float*, float*);
  void (*mattvec)(const float*, size_t, size_t, const float*, float*);
  void (*addouter)(float, const float*, const float*, float*, size_t, size_t);
  void (*gate_preact)(const float*, const float*, const float*, const float*,
                      const float*, size_t, size_t, float*);
  void (*matmul)(const float*, size_t, size_t, const float*, size_t,
                 const float*, float*);
  void (*mattvec_batch)(const float*, size_t, size_t, const float*, size_t,
                        float*);
  void (*gate_preact_batch)(const float*, const float*, const float*,
                            const float*, const float*, size_t, size_t, size_t,
                            float*);
};

extern const KernelTable kScalarTable;
#if defined(PAE_KERNELS_HAVE_SSE2)
extern const KernelTable kSse2Table;
#endif
#if defined(PAE_KERNELS_HAVE_AVX2)
extern const KernelTable kAvx2Table;
#endif

}  // namespace pae::math::kernels::detail

#endif  // PAE_MATH_KERNELS_DETAIL_H_
