#ifndef PAE_MATH_KERNELS_DETAIL_H_
#define PAE_MATH_KERNELS_DETAIL_H_

// Internal contract shared by the per-ISA kernel translation units
// (kernels.cc, kernels_sse2.cc, kernels_avx2.cc). Not part of the
// public API — include math/kernels.h instead.
//
// The determinism scheme lives here: every reduction runs over 8
// logical double lanes (element i lands in lane i % 8) and the lanes
// are combined by ReduceLanes8's fixed tree. A SIMD tier computes the
// lane partial sums in registers, spills them to a double[8], routes
// the tail through the same scalar code as the fallback, and reduces
// with the same tree — which is why avx2/sse2/scalar agree to the bit.

#include <cstddef>
#include <cstdint>

#include "math/kernels.h"  // Q8Moments

namespace pae::math::kernels::detail {

/// Fixed lane-combine tree: ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)).
inline double ReduceLanes8(const double* l) {
  return ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
}

/// Adds elements [i, n) of a·b into the lanes (lane i % 8) and reduces.
/// Every tier finishes its Dot through this helper.
inline double FinishDot(double* lanes, const float* a, const float* b,
                        size_t i, size_t n) {
  for (; i < n; ++i) {
    lanes[i % 8] += static_cast<double>(a[i]) * b[i];
  }
  return ReduceLanes8(lanes);
}

/// Tail + reduce for SumSq, mirroring FinishDot.
inline double FinishSumSq(double* lanes, const float* a, size_t i, size_t n) {
  for (; i < n; ++i) {
    lanes[i % 8] += static_cast<double>(a[i]) * a[i];
  }
  return ReduceLanes8(lanes);
}

// The row-loop kernels are the same for every tier except for which
// dot/axpy core they inline; the templates below are instantiated once
// per translation unit with that unit's core so there is no indirect
// call inside the row loop.

template <typename DotFn>
inline void MatVecImpl(const float* m, size_t rows, size_t cols,
                       const float* x, float* out, DotFn dot) {
  for (size_t r = 0; r < rows; ++r) {
    out[r] = static_cast<float>(dot(m + r * cols, x, cols));
  }
}

template <typename AxpyFn>
inline void MatTVecImpl(const float* m, size_t rows, size_t cols,
                        const float* x, float* out, AxpyFn axpy) {
  for (size_t r = 0; r < rows; ++r) {
    const float xv = x[r];
    if (xv == 0.0f) continue;  // contract: all tiers skip (signed zeros)
    axpy(xv, m + r * cols, out, cols);
  }
}

template <typename AxpyFn>
inline void AddOuterImpl(float alpha, const float* a, const float* b,
                         float* m, size_t rows, size_t cols, AxpyFn axpy) {
  for (size_t r = 0; r < rows; ++r) {
    const float av = alpha * a[r];
    if (av == 0.0f) continue;  // contract: all tiers skip
    axpy(av, b, m + r * cols, cols);
  }
}

template <typename DotFn>
inline void LstmGatePreactImpl(const float* wx, const float* wh,
                               const float* bias, const float* x,
                               const float* h_prev, size_t hidden,
                               size_t input_dim, float* pre, DotFn dot) {
  const size_t gates = 4 * hidden;
  for (size_t r = 0; r < gates; ++r) {
    pre[r] = static_cast<float>(static_cast<double>(bias[r]) +
                                dot(wx + r * input_dim, x, input_dim) +
                                dot(wh + r * hidden, h_prev, hidden));
  }
}

/// Scalar tail for DotQ8: folds elements [i, n) into `m`. Integer sums
/// are exact, so unlike the float kernels there is no lane discipline
/// to respect — every tier finishing through this helper agrees with
/// scalar automatically.
inline void FinishDotQ8(Q8Moments* m, const int8_t* a, const int8_t* b,
                        size_t i, size_t n) {
  for (; i < n; ++i) {
    const int32_t av = a[i];
    const int32_t bv = b[i];
    m->dot += av * bv;
    m->sum_a += av;
    m->sum_b += bv;
    m->sumsq_a += av * av;
    m->sumsq_b += bv * bv;
  }
}

/// Function-pointer table one ISA tier exports.
struct KernelTable {
  double (*dot)(const float*, const float*, size_t);
  double (*sumsq)(const float*, size_t);
  Q8Moments (*dotq8)(const int8_t*, const int8_t*, size_t);
  void (*axpy)(float, const float*, float*, size_t);
  void (*scale)(float, float*, size_t);
  void (*matvec)(const float*, size_t, size_t, const float*, float*);
  void (*mattvec)(const float*, size_t, size_t, const float*, float*);
  void (*addouter)(float, const float*, const float*, float*, size_t, size_t);
  void (*gate_preact)(const float*, const float*, const float*, const float*,
                      const float*, size_t, size_t, float*);
};

extern const KernelTable kScalarTable;
#if defined(PAE_KERNELS_HAVE_SSE2)
extern const KernelTable kSse2Table;
#endif
#if defined(PAE_KERNELS_HAVE_AVX2)
extern const KernelTable kAvx2Table;
#endif

}  // namespace pae::math::kernels::detail

#endif  // PAE_MATH_KERNELS_DETAIL_H_
