#ifndef PAE_MATH_VEC_H_
#define PAE_MATH_VEC_H_

#include <cmath>
#include <cstddef>
#include <vector>

#include "math/kernels.h"
#include "util/logging.h"

namespace pae::math {

// The dense float primitives delegate to the runtime-dispatched SIMD
// kernel layer (math/kernels.h); results are bit-identical across the
// avx2/sse2/scalar tiers.

/// Dot product of equally sized vectors.
inline float Dot(const std::vector<float>& a, const std::vector<float>& b) {
  PAE_DCHECK_EQ(a.size(), b.size());
  return static_cast<float>(kernels::Dot(a.data(), b.data(), a.size()));
}

/// y += alpha * x.
inline void Axpy(float alpha, const std::vector<float>& x,
                 std::vector<float>* y) {
  PAE_DCHECK_EQ(x.size(), y->size());
  kernels::Axpy(alpha, x.data(), y->data(), x.size());
}

/// x *= alpha.
inline void Scale(float alpha, std::vector<float>* x) {
  kernels::Scale(alpha, x->data(), x->size());
}

/// Euclidean norm.
inline double Norm2(const std::vector<float>& x) {
  return kernels::Norm2(x.data(), x.size());
}

/// Cosine similarity; returns 0 when either vector is (near) zero.
inline double CosineSimilarity(const std::vector<float>& a,
                               const std::vector<float>& b) {
  PAE_DCHECK_EQ(a.size(), b.size());
  return kernels::Cosine(a.data(), b.data(), a.size());
}

/// Numerically stable log(sum(exp(x))) over doubles.
inline double LogSumExp(const std::vector<double>& x) {
  PAE_DCHECK(!x.empty());
  double m = x[0];
  for (double v : x) m = std::max(m, v);
  if (!std::isfinite(m)) return m;  // all -inf
  double s = 0;
  for (double v : x) s += std::exp(v - m);
  return m + std::log(s);
}

/// In-place softmax over floats (stable).
inline void SoftmaxInPlace(std::vector<float>* x) {
  PAE_DCHECK(!x->empty());
  float m = (*x)[0];
  for (float v : *x) m = std::max(m, v);
  double s = 0;
  for (float& v : *x) {
    v = std::exp(v - m);
    s += v;
  }
  const float inv = static_cast<float>(1.0 / s);
  for (float& v : *x) v *= inv;
}

/// Elementwise sigmoid.
inline float Sigmoid(float x) { return 1.0f / (1.0f + std::exp(-x)); }

}  // namespace pae::math

#endif  // PAE_MATH_VEC_H_
