#ifndef PAE_MATH_KERNELS_H_
#define PAE_MATH_KERNELS_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace pae::math::kernels {

/// Instruction-set tiers of the dense float kernels. Higher tiers are
/// strictly faster, never different: every kernel reduces over the same
/// 8 logical lanes in the same fixed tree order, so the results are
/// bit-identical across tiers (kernels_test asserts it). Dispatch picks
/// the best supported tier once per process; `PAE_SIMD=avx2|sse2|scalar`
/// overrides it (requests above the hardware fall back with a warning).
enum class Isa {
  kScalar = 0,  // portable C++, 8-lane emulation
  kSse2 = 1,    // 128-bit SSE2 (x86-64 baseline)
  kAvx2 = 2,    // 256-bit AVX2 (requires AVX2+FMA cpuid and OS ymm state)
};

/// Best tier the CPU and OS support (cpuid + xgetbv probe, cached).
Isa BestSupportedIsa();

/// True when `isa` can execute on this machine.
bool IsaSupported(Isa isa);

/// The tier the kernels currently dispatch to. Resolved on first use:
/// the PAE_SIMD override if set and supported, else BestSupportedIsa().
Isa ActiveIsa();

/// Forces dispatch to `isa` (testing/benchmarks; PAE_CHECKs support).
void SetIsa(Isa isa);

/// "scalar", "sse2", or "avx2".
const char* IsaName(Isa isa);

/// Parses an ISA name as accepted by PAE_SIMD. Returns false on junk.
bool ParseIsa(std::string_view name, Isa* out);

/// Records the dispatch decision into the global MetricsRegistry:
///   gauge math.simd.isa_level        0|1|2 (kScalar|kSse2|kAvx2)
///   gauge math.simd.isa.<name>       1 for the active tier
/// Call right before snapshotting a run report; gauges set at startup
/// would not survive a MetricsRegistry::Reset().
void RecordSimdMetrics();

// ---------------------------------------------------------------------
// Reductions. All of them accumulate in 8 logical double lanes (element
// i contributes to lane i % 8) and combine the lanes in one fixed tree:
// ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)). The AVX2 tier holds the lanes
// in two 4-wide double registers, the SSE2 tier in four 2-wide ones,
// the scalar tier in a plain array — same arithmetic, same bits.
// ---------------------------------------------------------------------

/// Σ a[i]·b[i], accumulated in double.
double Dot(const float* a, const float* b, size_t n);

/// Σ a[i]², accumulated in double.
double SumSq(const float* a, size_t n);

/// Euclidean norm: sqrt(SumSq).
inline double Norm2(const float* a, size_t n) { return std::sqrt(SumSq(a, n)); }

/// Cosine from a precomputed dot product and the two Euclidean norms;
/// 0 when either vector is (near) zero. The single place where the
/// repo's two historical cosine contracts (math::CosineSimilarity and
/// Word2Vec::Cosine) now meet.
inline double CosineFromNorms(double dot, double norm_a, double norm_b) {
  if (norm_a < 1e-12 || norm_b < 1e-12) return 0.0;
  return dot / (norm_a * norm_b);
}

/// Cosine similarity of two raw vectors (norms computed here).
inline double Cosine(const float* a, const float* b, size_t n) {
  return CosineFromNorms(Dot(a, b, n), Norm2(a, n), Norm2(b, n));
}

// ---------------------------------------------------------------------
// Quantized (int8) reductions for the mmap'ed embedding sections.
// ---------------------------------------------------------------------

/// Exact integer moments of two int8 rows. Every affine-quantization
/// similarity (dot, norm, cosine under per-row scale/zero-point)
/// expands into these five sums, and integer addition is associative —
/// so the SIMD tiers are bit-identical to scalar *by arithmetic*, not
/// just by lane discipline, and the float math happens exactly once in
/// the combine step (CosineQ8 below).
struct Q8Moments {
  int64_t dot = 0;      // Σ a[i]·b[i]
  int64_t sum_a = 0;    // Σ a[i]
  int64_t sum_b = 0;    // Σ b[i]
  int64_t sumsq_a = 0;  // Σ a[i]²
  int64_t sumsq_b = 0;  // Σ b[i]²
};

/// Computes the five Q8Moments sums in one pass (dispatched:
/// scalar / SSE2 madd / AVX2 madd).
Q8Moments DotQ8(const int8_t* a, const int8_t* b, size_t n);

/// Cosine of two affine-quantized rows (real[i] = scale·(q[i]−zp)) from
/// their integer moments. Expansion:
///   dot   = s_a·s_b·(Σab − z_b·Σa − z_a·Σb + n·z_a·z_b)
///   |a|²  = s_a²·(Σa² − 2·z_a·Σa + n·z_a²)
/// The moments are exact integers, so this is the only rounding site.
inline double CosineQ8(const Q8Moments& m, size_t n, float scale_a,
                       int32_t zp_a, float scale_b, int32_t zp_b) {
  const double sa = scale_a;
  const double sb = scale_b;
  const double za = zp_a;
  const double zb = zp_b;
  const double nd = static_cast<double>(n);
  const double dot = sa * sb *
                     (static_cast<double>(m.dot) - zb * m.sum_a -
                      za * m.sum_b + nd * za * zb);
  const double na2 =
      sa * sa * (static_cast<double>(m.sumsq_a) - 2.0 * za * m.sum_a +
                 nd * za * za);
  const double nb2 =
      sb * sb * (static_cast<double>(m.sumsq_b) - 2.0 * zb * m.sum_b +
                 nd * zb * zb);
  return CosineFromNorms(dot, std::sqrt(na2 > 0.0 ? na2 : 0.0),
                         std::sqrt(nb2 > 0.0 ? nb2 : 0.0));
}

// ---------------------------------------------------------------------
// Element-wise kernels. Each output element depends on exactly one
// input element, so vector width cannot reorder anything; bit-equality
// across tiers only needs fused-multiply-add contraction disabled
// (the kernel translation units compile with -ffp-contract=off).
// ---------------------------------------------------------------------

/// y[i] += alpha · x[i].
void Axpy(float alpha, const float* x, float* y, size_t n);

/// x[i] *= alpha.
void Scale(float alpha, float* x, size_t n);

/// Same contract as Axpy under the Matrix naming: y += alpha · x.
inline void AddScaled(float alpha, const float* x, float* y, size_t n) {
  Axpy(alpha, x, y, n);
}

// ---------------------------------------------------------------------
// Matrix kernels over row-major storage.
// ---------------------------------------------------------------------

/// out[r] = Σ_c m[r,c]·x[c]  (per-row 8-lane Dot, narrowed to float).
void MatVec(const float* m, size_t rows, size_t cols, const float* x,
            float* out);

/// out[c] += x[r]·m[r,c] for each r in order, skipping x[r] == 0 rows
/// (the skip is part of the contract: every tier takes it, so signed
/// zeros agree). `out` must be zeroed by the caller.
void MatTVec(const float* m, size_t rows, size_t cols, const float* x,
             float* out);

/// m[r,c] += alpha·a[r]·b[c], skipping alpha·a[r] == 0 rows.
void AddOuter(float alpha, const float* a, const float* b, float* m,
              size_t rows, size_t cols);

// ---------------------------------------------------------------------
// Batched GEMM tier. `x` packs `batch` contiguous K-vectors row-major
// ([batch × k]); `out` is row-major [batch × rows] so each batch
// element's result vector stays contiguous. Every output element is
// computed with the exact fixed-8-lane Dot above — blocking and cache
// tiling only reorder *which* element is computed when, never the
// arithmetic inside one element — so MatMul is bit-identical to `batch`
// MatVec calls at every tier, tile size and batch width.
// ---------------------------------------------------------------------

/// out[b·rows + r] = float(bias[r] + m_row_r · x_b)   (bias != nullptr)
///                 = float(m_row_r · x_b)             (bias == nullptr)
/// The biased form rounds once, matching the fused LstmGatePreact and
/// the tagger's output-layer contract (double bias + double dot).
void MatMul(const float* m, size_t rows, size_t k, const float* x,
            size_t batch, const float* bias, float* out);

/// Batched MatTVec: out_b[c] += x_b[r]·m[r,c] for each r ascending, with
/// the same x_b[r] == 0 row skip. `x` is [batch × rows], `out` is
/// [batch × cols] (caller zeroes). Rows are the outer loop so one
/// weight-row load serves every batch element; per element the axpy
/// order is r-ascending — identical to per-vector MatTVec.
void MatTVecBatch(const float* m, size_t rows, size_t cols, const float* x,
                  size_t batch, float* out);

// ---------------------------------------------------------------------
// Fused LSTM step kernels.
// ---------------------------------------------------------------------

/// Gate pre-activations for one timestep over the packed [4H × D] /
/// [4H × H] weight blocks:
///   pre[r] = float(b[r] + wx_row_r · x + wh_row_r · h_prev)
/// One fused pass instead of MatVec + bias + second accumulation — and
/// one float rounding instead of two.
void LstmGatePreact(const float* wx, const float* wh, const float* b,
                    const float* x, const float* h_prev, size_t hidden,
                    size_t input_dim, float* pre);

/// Batched LstmGatePreact over B sequences at one timestep: one
/// [4H×D]·[D×B] + [4H×H]·[H×B] GEMM pair per gate block.
///   pre[b·4H + r] = float(b[r] + wx_row_r · x_b + wh_row_r · h_prev_b)
/// `xs` is [batch × input_dim], `hs` is [batch × hidden], `pre` is
/// [batch × 4H]. Bit-identical to `batch` LstmGatePreact calls (same
/// per-element 8-lane dots, same single rounding).
void LstmGatePreactBatch(const float* wx, const float* wh, const float* b,
                         const float* xs, const float* hs, size_t hidden,
                         size_t input_dim, size_t batch, float* pre);

/// Fused gate activation for one timestep. Gate order in `pre` is
/// [i; f; o; g] (4H entries). Writes the four gate activations, the new
/// cell state and the hidden state. The sigmoid/tanh transcendentals
/// come from libm in every tier — they are not dispatched, which is
/// what keeps them bit-identical across ISAs.
void LstmActivateGates(const float* pre, const float* c_prev, size_t hidden,
                       float* i, float* f, float* o, float* g, float* c,
                       float* h);

}  // namespace pae::math::kernels

#endif  // PAE_MATH_KERNELS_H_
