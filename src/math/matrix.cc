#include "math/matrix.h"

#include <cmath>

namespace pae::math {

void Matrix::XavierInit(Rng* rng) {
  const float s = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
  UniformInit(rng, s);
}

void Matrix::UniformInit(Rng* rng, float range) {
  for (float& v : data_) {
    v = static_cast<float>(rng->NextUniform(-range, range));
  }
}

void Matrix::MatVec(const std::vector<float>& x,
                    std::vector<float>* out) const {
  PAE_DCHECK_EQ(x.size(), cols_);
  out->assign(rows_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    const float* row = Row(r);
    double s = 0;
    for (size_t c = 0; c < cols_; ++c) s += static_cast<double>(row[c]) * x[c];
    (*out)[r] = static_cast<float>(s);
  }
}

void Matrix::MatTVec(const std::vector<float>& x,
                     std::vector<float>* out) const {
  PAE_DCHECK_EQ(x.size(), rows_);
  out->assign(cols_, 0.0f);
  for (size_t r = 0; r < rows_; ++r) {
    const float* row = Row(r);
    const float xv = x[r];
    if (xv == 0.0f) continue;
    for (size_t c = 0; c < cols_; ++c) (*out)[c] += xv * row[c];
  }
}

void Matrix::AddOuter(float alpha, const std::vector<float>& a,
                      const std::vector<float>& b) {
  PAE_DCHECK_EQ(a.size(), rows_);
  PAE_DCHECK_EQ(b.size(), cols_);
  for (size_t r = 0; r < rows_; ++r) {
    const float av = alpha * a[r];
    if (av == 0.0f) continue;
    float* row = Row(r);
    for (size_t c = 0; c < cols_; ++c) row[c] += av * b[c];
  }
}

void Matrix::AddScaled(float alpha, const Matrix& other) {
  PAE_DCHECK_EQ(rows_, other.rows());
  PAE_DCHECK_EQ(cols_, other.cols());
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data()[i];
  }
}

}  // namespace pae::math
