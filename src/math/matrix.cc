#include "math/matrix.h"

#include <cmath>

#include "math/kernels.h"

namespace pae::math {

void Matrix::XavierInit(Rng* rng) {
  const float s = std::sqrt(6.0f / static_cast<float>(rows_ + cols_));
  UniformInit(rng, s);
}

void Matrix::UniformInit(Rng* rng, float range) {
  for (float& v : data_) {
    v = static_cast<float>(rng->NextUniform(-range, range));
  }
}

void Matrix::MatVec(const std::vector<float>& x,
                    std::vector<float>* out) const {
  PAE_DCHECK_EQ(x.size(), cols_);
  out->assign(rows_, 0.0f);
  kernels::MatVec(data_.data(), rows_, cols_, x.data(), out->data());
}

void Matrix::MatTVec(const std::vector<float>& x,
                     std::vector<float>* out) const {
  PAE_DCHECK_EQ(x.size(), rows_);
  out->assign(cols_, 0.0f);
  kernels::MatTVec(data_.data(), rows_, cols_, x.data(), out->data());
}

void Matrix::AddOuter(float alpha, const std::vector<float>& a,
                      const std::vector<float>& b) {
  PAE_DCHECK_EQ(a.size(), rows_);
  PAE_DCHECK_EQ(b.size(), cols_);
  kernels::AddOuter(alpha, a.data(), b.data(), data_.data(), rows_, cols_);
}

void Matrix::AddScaled(float alpha, const Matrix& other) {
  PAE_DCHECK_EQ(rows_, other.rows());
  PAE_DCHECK_EQ(cols_, other.cols());
  kernels::AddScaled(alpha, other.data().data(), data_.data(), data_.size());
}

}  // namespace pae::math
