#ifndef PAE_MATH_MATRIX_H_
#define PAE_MATH_MATRIX_H_

#include <cstddef>
#include <vector>

#include "util/logging.h"
#include "util/rng.h"

namespace pae::math {

/// Dense row-major float matrix. Sized for the small recurrent networks
/// and embedding tables this library trains (dozens to a few hundred
/// rows/cols); no BLAS dependency by design.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0f) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  float& at(size_t r, size_t c) {
    PAE_DCHECK_LT(r, rows_);
    PAE_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  float at(size_t r, size_t c) const {
    PAE_DCHECK_LT(r, rows_);
    PAE_DCHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Row pointer (hot paths). Bounds-checked in Debug/sanitizer builds
  /// only; compiles to bare pointer arithmetic in Release.
  float* Row(size_t r) {
    PAE_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }
  const float* Row(size_t r) const {
    PAE_DCHECK_LT(r, rows_);
    return data_.data() + r * cols_;
  }

  std::vector<float>& data() { return data_; }
  const std::vector<float>& data() const { return data_; }

  void SetZero() { std::fill(data_.begin(), data_.end(), 0.0f); }

  /// Xavier/Glorot uniform initialization: U(-s, s), s = sqrt(6/(r+c)).
  void XavierInit(Rng* rng);

  /// Uniform initialization in [-range, range].
  void UniformInit(Rng* rng, float range);

  /// out = this * x  (x has cols() entries, out gets rows() entries).
  void MatVec(const std::vector<float>& x, std::vector<float>* out) const;

  /// out = this^T * x (x has rows() entries, out gets cols() entries).
  void MatTVec(const std::vector<float>& x, std::vector<float>* out) const;

  /// this += alpha * a b^T  (rank-1 update; a has rows(), b has cols()).
  void AddOuter(float alpha, const std::vector<float>& a,
                const std::vector<float>& b);

  /// this += alpha * other (same shape).
  void AddScaled(float alpha, const Matrix& other);

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace pae::math

#endif  // PAE_MATH_MATRIX_H_
