// Runtime dispatch and scalar fallback for the SIMD kernel layer. This
// translation unit (like its SSE2/AVX2 siblings) is compiled with
// -ffp-contract=off: a contracted fused multiply-add rounds once where
// mul+add rounds twice, and any tier allowed to contract would drift
// from the others bit-wise. That is also why the AVX2 tier gates on the
// FMA cpuid bit but never emits FMA arithmetic — the bit identifies the
// hardware generation, the determinism contract forbids the fusion.

#include "math/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "math/kernels_detail.h"
#include "util/logging.h"
#include "util/metrics.h"

#if defined(PAE_KERNELS_HAVE_SSE2) || defined(PAE_KERNELS_HAVE_AVX2)
#include <cpuid.h>
#endif

namespace pae::math::kernels {

namespace {

using detail::KernelTable;

// ---- scalar tier: the 8-lane reference every SIMD tier must match ----

double DotScalar(const float* a, const float* b, size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t k = 0; k < 8; ++k) {
      lanes[k] += static_cast<double>(a[i + k]) * b[i + k];
    }
  }
  return detail::FinishDot(lanes, a, b, i, n);
}

double SumSqScalar(const float* a, size_t n) {
  double lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (size_t k = 0; k < 8; ++k) {
      lanes[k] += static_cast<double>(a[i + k]) * a[i + k];
    }
  }
  return detail::FinishSumSq(lanes, a, i, n);
}

Q8Moments DotQ8Scalar(const int8_t* a, const int8_t* b, size_t n) {
  Q8Moments m;
  detail::FinishDotQ8(&m, a, b, 0, n);
  return m;
}

void AxpyScalar(float alpha, const float* x, float* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleScalar(float alpha, float* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

void MatVecScalar(const float* m, size_t rows, size_t cols, const float* x,
                  float* out) {
  detail::MatVecImpl(m, rows, cols, x, out, DotScalar);
}

void MatTVecScalar(const float* m, size_t rows, size_t cols, const float* x,
                   float* out) {
  detail::MatTVecImpl(m, rows, cols, x, out, AxpyScalar);
}

void AddOuterScalar(float alpha, const float* a, const float* b, float* m,
                    size_t rows, size_t cols) {
  detail::AddOuterImpl(alpha, a, b, m, rows, cols, AxpyScalar);
}

void LstmGatePreactScalar(const float* wx, const float* wh, const float* bias,
                          const float* x, const float* h_prev, size_t hidden,
                          size_t input_dim, float* pre) {
  detail::LstmGatePreactImpl(wx, wh, bias, x, h_prev, hidden, input_dim, pre,
                             DotScalar);
}

/// Column-block micro-kernel: four 8-lane dots of one row against the
/// four K-vectors at x, x+k, x+2k, x+3k, sharing one pass over the row
/// and reading the pre-widened panel `xd` (same values as x — see
/// kernels_detail.h). Per column the lane arithmetic is exactly
/// DotScalar's.
void DotCols4Scalar(const float* a, const float* x, const double* xd,
                    size_t k, double* out) {
  double lanes[4][8] = {};
  size_t i = 0;
  for (; i + 8 <= k; i += 8) {
    for (size_t j = 0; j < 8; ++j) {
      const double av = static_cast<double>(a[i + j]);
      lanes[0][j] += av * xd[i + j];
      lanes[1][j] += av * xd[k + i + j];
      lanes[2][j] += av * xd[2 * k + i + j];
      lanes[3][j] += av * xd[3 * k + i + j];
    }
  }
  for (size_t c = 0; c < 4; ++c) {
    out[c] = detail::FinishDot(lanes[c], a, x + c * k, i, k);
  }
}

void MatMulScalar(const float* m, size_t rows, size_t k, const float* x,
                  size_t batch, const float* bias, float* out) {
  detail::MatMulImpl<4>(m, rows, k, x, batch, bias, out, DotScalar,
                        DotCols4Scalar);
}

void MatTVecBatchScalar(const float* m, size_t rows, size_t cols,
                        const float* x, size_t batch, float* out) {
  detail::MatTVecBatchImpl(m, rows, cols, x, batch, out, AxpyScalar);
}

void LstmGatePreactBatchScalar(const float* wx, const float* wh,
                               const float* bias, const float* xs,
                               const float* hs, size_t hidden,
                               size_t input_dim, size_t batch, float* pre) {
  detail::LstmGatePreactBatchImpl<4>(wx, wh, bias, xs, hs, hidden, input_dim,
                                     batch, pre, DotScalar, DotCols4Scalar);
}

// ---- cpuid feature probe ----

#if defined(PAE_KERNELS_HAVE_AVX2)
uint64_t Xgetbv0() {
  uint32_t eax = 0, edx = 0;
  __asm__ volatile("xgetbv" : "=a"(eax), "=d"(edx) : "c"(0));
  return (static_cast<uint64_t>(edx) << 32) | eax;
}

bool CpuHasAvx2Fma() {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) == 0) return false;
  const bool osxsave = (ecx & (1u << 27)) != 0;
  const bool avx = (ecx & (1u << 28)) != 0;
  const bool fma = (ecx & (1u << 12)) != 0;
  if (!osxsave || !avx || !fma) return false;
  // OS must save/restore the ymm state (XCR0 xmm|ymm bits).
  if ((Xgetbv0() & 0x6) != 0x6) return false;
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) == 0) return false;
  return (ebx & (1u << 5)) != 0;  // AVX2
}
#endif

const KernelTable* TableFor(Isa isa) {
  switch (isa) {
#if defined(PAE_KERNELS_HAVE_AVX2)
    case Isa::kAvx2:
      return &detail::kAvx2Table;
#endif
#if defined(PAE_KERNELS_HAVE_SSE2)
    case Isa::kSse2:
      return &detail::kSse2Table;
#endif
    default:
      return &detail::kScalarTable;
  }
}

struct Dispatch {
  const KernelTable* table;
  Isa isa;
};

/// Static per-tier dispatch records; tiers compiled out fall back to
/// the scalar table (unreachable through SetIsa, which gates on
/// IsaSupported).
const Dispatch* DispatchFor(Isa isa) {
  static const Dispatch tiers[3] = {
      {TableFor(Isa::kScalar), Isa::kScalar},
      {TableFor(Isa::kSse2), Isa::kSse2},
      {TableFor(Isa::kAvx2), Isa::kAvx2},
  };
  return &tiers[static_cast<int>(isa)];
}

Isa ResolveIsa() {
  Isa isa = BestSupportedIsa();
  // Read once, before any worker thread exists (this runs under the
  // dispatch-table initializer), so getenv cannot race a setenv.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* env = std::getenv("PAE_SIMD")) {
    Isa requested;
    if (!ParseIsa(env, &requested)) {
      PAE_LOG(WARNING) << "PAE_SIMD='" << env
                       << "' is not avx2|sse2|scalar; using "
                       << IsaName(isa);
    } else if (!IsaSupported(requested)) {
      PAE_LOG(WARNING) << "PAE_SIMD=" << IsaName(requested)
                       << " unsupported on this host; using " << IsaName(isa);
    } else {
      isa = requested;
    }
  }
  return isa;
}

std::atomic<const Dispatch*> g_dispatch{nullptr};

const Dispatch& ActiveDispatch() {
  const Dispatch* d = g_dispatch.load(std::memory_order_acquire);
  if (d == nullptr) {
    // Benign race: ResolveIsa is deterministic, so concurrent first
    // calls store the same static record.
    d = DispatchFor(ResolveIsa());
    g_dispatch.store(d, std::memory_order_release);
  }
  return *d;
}

}  // namespace

namespace detail {
const KernelTable kScalarTable = {
    DotScalar,     SumSqScalar,    DotQ8Scalar,         AxpyScalar,
    ScaleScalar,   MatVecScalar,   MatTVecScalar,       AddOuterScalar,
    LstmGatePreactScalar,          MatMulScalar,        MatTVecBatchScalar,
    LstmGatePreactBatchScalar,
};
}  // namespace detail

Isa BestSupportedIsa() {
#if defined(PAE_KERNELS_HAVE_AVX2)
  static const bool avx2 = CpuHasAvx2Fma();
  if (avx2) return Isa::kAvx2;
#endif
#if defined(PAE_KERNELS_HAVE_SSE2)
  return Isa::kSse2;  // x86-64 baseline
#else
  return Isa::kScalar;
#endif
}

bool IsaSupported(Isa isa) {
  return static_cast<int>(isa) <= static_cast<int>(BestSupportedIsa());
}

Isa ActiveIsa() { return ActiveDispatch().isa; }

void SetIsa(Isa isa) {
  PAE_CHECK(IsaSupported(isa))
      << "SetIsa(" << IsaName(isa) << ") unsupported on this host";
  g_dispatch.store(DispatchFor(isa), std::memory_order_release);
}

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kSse2:
      return "sse2";
    default:
      return "scalar";
  }
}

bool ParseIsa(std::string_view name, Isa* out) {
  if (name == "avx2") {
    *out = Isa::kAvx2;
  } else if (name == "sse2") {
    *out = Isa::kSse2;
  } else if (name == "scalar") {
    *out = Isa::kScalar;
  } else {
    return false;
  }
  return true;
}

void RecordSimdMetrics() {
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  const Isa isa = ActiveIsa();
  metrics.GetGauge("math.simd.isa_level")
      ->Set(static_cast<double>(static_cast<int>(isa)));
  metrics.GetGauge(std::string("math.simd.isa.") + IsaName(isa))->Set(1.0);
}

double Dot(const float* a, const float* b, size_t n) {
  return ActiveDispatch().table->dot(a, b, n);
}

double SumSq(const float* a, size_t n) {
  return ActiveDispatch().table->sumsq(a, n);
}

Q8Moments DotQ8(const int8_t* a, const int8_t* b, size_t n) {
  return ActiveDispatch().table->dotq8(a, b, n);
}

void Axpy(float alpha, const float* x, float* y, size_t n) {
  ActiveDispatch().table->axpy(alpha, x, y, n);
}

void Scale(float alpha, float* x, size_t n) {
  ActiveDispatch().table->scale(alpha, x, n);
}

void MatVec(const float* m, size_t rows, size_t cols, const float* x,
            float* out) {
  ActiveDispatch().table->matvec(m, rows, cols, x, out);
}

void MatTVec(const float* m, size_t rows, size_t cols, const float* x,
             float* out) {
  ActiveDispatch().table->mattvec(m, rows, cols, x, out);
}

void AddOuter(float alpha, const float* a, const float* b, float* m,
              size_t rows, size_t cols) {
  ActiveDispatch().table->addouter(alpha, a, b, m, rows, cols);
}

void LstmGatePreact(const float* wx, const float* wh, const float* b,
                    const float* x, const float* h_prev, size_t hidden,
                    size_t input_dim, float* pre) {
  ActiveDispatch().table->gate_preact(wx, wh, b, x, h_prev, hidden, input_dim,
                                      pre);
}

void MatMul(const float* m, size_t rows, size_t k, const float* x,
            size_t batch, const float* bias, float* out) {
  ActiveDispatch().table->matmul(m, rows, k, x, batch, bias, out);
}

void MatTVecBatch(const float* m, size_t rows, size_t cols, const float* x,
                  size_t batch, float* out) {
  ActiveDispatch().table->mattvec_batch(m, rows, cols, x, batch, out);
}

void LstmGatePreactBatch(const float* wx, const float* wh, const float* b,
                         const float* xs, const float* hs, size_t hidden,
                         size_t input_dim, size_t batch, float* pre) {
  ActiveDispatch().table->gate_preact_batch(wx, wh, b, xs, hs, hidden,
                                            input_dim, batch, pre);
}

void LstmActivateGates(const float* pre, const float* c_prev, size_t hidden,
                       float* i, float* f, float* o, float* g, float* c,
                       float* h) {
  // One fused pass over the four gate slabs: better locality than four
  // separate loops, and libm sigmoid/tanh in every tier keeps the
  // transcendentals bit-identical across ISAs.
  for (size_t k = 0; k < hidden; ++k) {
    const float ik = 1.0f / (1.0f + std::exp(-pre[k]));
    const float fk = 1.0f / (1.0f + std::exp(-pre[hidden + k]));
    const float ok = 1.0f / (1.0f + std::exp(-pre[2 * hidden + k]));
    const float gk = std::tanh(pre[3 * hidden + k]);
    const float cp = (c_prev != nullptr) ? c_prev[k] : 0.0f;
    const float ck = fk * cp + ik * gk;
    i[k] = ik;
    f[k] = fk;
    o[k] = ok;
    g[k] = gk;
    c[k] = ck;
    h[k] = ok * std::tanh(ck);
  }
}

}  // namespace pae::math::kernels
