// SSE2 tier of the SIMD kernel layer (128-bit, the x86-64 baseline).
// Reductions keep the 8 logical double lanes in four 2-wide registers
// (lanes 0-1 / 2-3 / 4-5 / 6-7), spill to a double[8], and finish with
// the shared tail + tree helpers — bit-identical to the scalar tier by
// construction. Compiled with -ffp-contract=off (see kernels.cc).

#include "math/kernels_detail.h"

#if defined(PAE_KERNELS_HAVE_SSE2)

#include <emmintrin.h>

namespace pae::math::kernels {
namespace {

double DotSse2(const float* a, const float* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 a0 = _mm_loadu_ps(a + i);      // a0 a1 a2 a3
    const __m128 a1 = _mm_loadu_ps(a + i + 4);  // a4 a5 a6 a7
    const __m128 b0 = _mm_loadu_ps(b + i);
    const __m128 b1 = _mm_loadu_ps(b + i + 4);
    acc01 = _mm_add_pd(acc01,
                       _mm_mul_pd(_mm_cvtps_pd(a0), _mm_cvtps_pd(b0)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(a0, a0)),
                          _mm_cvtps_pd(_mm_movehl_ps(b0, b0))));
    acc45 = _mm_add_pd(acc45,
                       _mm_mul_pd(_mm_cvtps_pd(a1), _mm_cvtps_pd(b1)));
    acc67 = _mm_add_pd(
        acc67, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(a1, a1)),
                          _mm_cvtps_pd(_mm_movehl_ps(b1, b1))));
  }
  double lanes[8];
  _mm_storeu_pd(lanes + 0, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
  _mm_storeu_pd(lanes + 4, acc45);
  _mm_storeu_pd(lanes + 6, acc67);
  return detail::FinishDot(lanes, a, b, i, n);
}

double SumSqSse2(const float* a, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 a0 = _mm_loadu_ps(a + i);
    const __m128 a1 = _mm_loadu_ps(a + i + 4);
    const __m128d d01 = _mm_cvtps_pd(a0);
    const __m128d d23 = _mm_cvtps_pd(_mm_movehl_ps(a0, a0));
    const __m128d d45 = _mm_cvtps_pd(a1);
    const __m128d d67 = _mm_cvtps_pd(_mm_movehl_ps(a1, a1));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    acc45 = _mm_add_pd(acc45, _mm_mul_pd(d45, d45));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(d67, d67));
  }
  double lanes[8];
  _mm_storeu_pd(lanes + 0, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
  _mm_storeu_pd(lanes + 4, acc45);
  _mm_storeu_pd(lanes + 6, acc67);
  return detail::FinishSumSq(lanes, a, i, n);
}

void AxpySse2(float alpha, const float* x, float* y, size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i),
                                    _mm_mul_ps(va, _mm_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleSse2(float alpha, float* x, size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_mul_ps(va, _mm_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void MatVecSse2(const float* m, size_t rows, size_t cols, const float* x,
                float* out) {
  detail::MatVecImpl(m, rows, cols, x, out, DotSse2);
}

void MatTVecSse2(const float* m, size_t rows, size_t cols, const float* x,
                 float* out) {
  detail::MatTVecImpl(m, rows, cols, x, out, AxpySse2);
}

void AddOuterSse2(float alpha, const float* a, const float* b, float* m,
                  size_t rows, size_t cols) {
  detail::AddOuterImpl(alpha, a, b, m, rows, cols, AxpySse2);
}

void LstmGatePreactSse2(const float* wx, const float* wh, const float* bias,
                        const float* x, const float* h_prev, size_t hidden,
                        size_t input_dim, float* pre) {
  detail::LstmGatePreactImpl(wx, wh, bias, x, h_prev, hidden, input_dim, pre,
                             DotSse2);
}

}  // namespace

namespace detail {
const KernelTable kSse2Table = {
    DotSse2,     SumSqSse2,   AxpySse2,     ScaleSse2,
    MatVecSse2,  MatTVecSse2, AddOuterSse2, LstmGatePreactSse2,
};
}  // namespace detail

}  // namespace pae::math::kernels

#endif  // PAE_KERNELS_HAVE_SSE2
