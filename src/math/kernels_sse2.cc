// SSE2 tier of the SIMD kernel layer (128-bit, the x86-64 baseline).
// Reductions keep the 8 logical double lanes in four 2-wide registers
// (lanes 0-1 / 2-3 / 4-5 / 6-7), spill to a double[8], and finish with
// the shared tail + tree helpers — bit-identical to the scalar tier by
// construction. Compiled with -ffp-contract=off (see kernels.cc).

#include "math/kernels_detail.h"

#if defined(PAE_KERNELS_HAVE_SSE2)

#include <emmintrin.h>

namespace pae::math::kernels {
namespace {

double DotSse2(const float* a, const float* b, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 a0 = _mm_loadu_ps(a + i);      // a0 a1 a2 a3
    const __m128 a1 = _mm_loadu_ps(a + i + 4);  // a4 a5 a6 a7
    const __m128 b0 = _mm_loadu_ps(b + i);
    const __m128 b1 = _mm_loadu_ps(b + i + 4);
    acc01 = _mm_add_pd(acc01,
                       _mm_mul_pd(_mm_cvtps_pd(a0), _mm_cvtps_pd(b0)));
    acc23 = _mm_add_pd(
        acc23, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(a0, a0)),
                          _mm_cvtps_pd(_mm_movehl_ps(b0, b0))));
    acc45 = _mm_add_pd(acc45,
                       _mm_mul_pd(_mm_cvtps_pd(a1), _mm_cvtps_pd(b1)));
    acc67 = _mm_add_pd(
        acc67, _mm_mul_pd(_mm_cvtps_pd(_mm_movehl_ps(a1, a1)),
                          _mm_cvtps_pd(_mm_movehl_ps(b1, b1))));
  }
  double lanes[8];
  _mm_storeu_pd(lanes + 0, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
  _mm_storeu_pd(lanes + 4, acc45);
  _mm_storeu_pd(lanes + 6, acc67);
  return detail::FinishDot(lanes, a, b, i, n);
}

double SumSqSse2(const float* a, size_t n) {
  __m128d acc01 = _mm_setzero_pd();
  __m128d acc23 = _mm_setzero_pd();
  __m128d acc45 = _mm_setzero_pd();
  __m128d acc67 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128 a0 = _mm_loadu_ps(a + i);
    const __m128 a1 = _mm_loadu_ps(a + i + 4);
    const __m128d d01 = _mm_cvtps_pd(a0);
    const __m128d d23 = _mm_cvtps_pd(_mm_movehl_ps(a0, a0));
    const __m128d d45 = _mm_cvtps_pd(a1);
    const __m128d d67 = _mm_cvtps_pd(_mm_movehl_ps(a1, a1));
    acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
    acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
    acc45 = _mm_add_pd(acc45, _mm_mul_pd(d45, d45));
    acc67 = _mm_add_pd(acc67, _mm_mul_pd(d67, d67));
  }
  double lanes[8];
  _mm_storeu_pd(lanes + 0, acc01);
  _mm_storeu_pd(lanes + 2, acc23);
  _mm_storeu_pd(lanes + 4, acc45);
  _mm_storeu_pd(lanes + 6, acc67);
  return detail::FinishSumSq(lanes, a, i, n);
}

/// Σ of the four epi32 lanes, widened to int64 (exact — order free).
int64_t HSum32Sse2(__m128i v) {
  alignas(16) int32_t lanes[4];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), v);
  return static_cast<int64_t>(lanes[0]) + lanes[1] + lanes[2] + lanes[3];
}

Q8Moments DotQ8Sse2(const int8_t* a, const int8_t* b, size_t n) {
  // 16 int8 per iteration: sign-extend via the unpack + arithmetic
  // shift trick, then madd_epi16 pairs into epi32 partials. The epi32
  // accumulators are flushed to int64 every kFlushIters iterations:
  // per lane per iteration the worst case is 2·128·128 = 32768 twice
  // (two madds added), so 8192 iterations stay well under INT32_MAX.
  constexpr size_t kFlushIters = 8192;
  Q8Moments m;
  const __m128i ones = _mm_set1_epi16(1);
  size_t i = 0;
  while (i + 16 <= n) {
    __m128i dot = _mm_setzero_si128();
    __m128i sa = _mm_setzero_si128();
    __m128i sb = _mm_setzero_si128();
    __m128i qa = _mm_setzero_si128();
    __m128i qb = _mm_setzero_si128();
    size_t iters = 0;
    for (; i + 16 <= n && iters < kFlushIters; i += 16, ++iters) {
      const __m128i av = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a + i));
      const __m128i bv = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(b + i));
      const __m128i alo = _mm_srai_epi16(_mm_unpacklo_epi8(av, av), 8);
      const __m128i ahi = _mm_srai_epi16(_mm_unpackhi_epi8(av, av), 8);
      const __m128i blo = _mm_srai_epi16(_mm_unpacklo_epi8(bv, bv), 8);
      const __m128i bhi = _mm_srai_epi16(_mm_unpackhi_epi8(bv, bv), 8);
      dot = _mm_add_epi32(dot, _mm_add_epi32(_mm_madd_epi16(alo, blo),
                                             _mm_madd_epi16(ahi, bhi)));
      sa = _mm_add_epi32(sa, _mm_add_epi32(_mm_madd_epi16(alo, ones),
                                           _mm_madd_epi16(ahi, ones)));
      sb = _mm_add_epi32(sb, _mm_add_epi32(_mm_madd_epi16(blo, ones),
                                           _mm_madd_epi16(bhi, ones)));
      qa = _mm_add_epi32(qa, _mm_add_epi32(_mm_madd_epi16(alo, alo),
                                           _mm_madd_epi16(ahi, ahi)));
      qb = _mm_add_epi32(qb, _mm_add_epi32(_mm_madd_epi16(blo, blo),
                                           _mm_madd_epi16(bhi, bhi)));
    }
    m.dot += HSum32Sse2(dot);
    m.sum_a += HSum32Sse2(sa);
    m.sum_b += HSum32Sse2(sb);
    m.sumsq_a += HSum32Sse2(qa);
    m.sumsq_b += HSum32Sse2(qb);
  }
  detail::FinishDotQ8(&m, a, b, i, n);
  return m;
}

void AxpySse2(float alpha, const float* x, float* y, size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i),
                                    _mm_mul_ps(va, _mm_loadu_ps(x + i))));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void ScaleSse2(float alpha, float* x, size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(x + i, _mm_mul_ps(va, _mm_loadu_ps(x + i)));
  }
  for (; i < n; ++i) x[i] *= alpha;
}

void MatVecSse2(const float* m, size_t rows, size_t cols, const float* x,
                float* out) {
  detail::MatVecImpl(m, rows, cols, x, out, DotSse2);
}

void MatTVecSse2(const float* m, size_t rows, size_t cols, const float* x,
                 float* out) {
  detail::MatTVecImpl(m, rows, cols, x, out, AxpySse2);
}

void AddOuterSse2(float alpha, const float* a, const float* b, float* m,
                  size_t rows, size_t cols) {
  detail::AddOuterImpl(alpha, a, b, m, rows, cols, AxpySse2);
}

void LstmGatePreactSse2(const float* wx, const float* wh, const float* bias,
                        const float* x, const float* h_prev, size_t hidden,
                        size_t input_dim, float* pre) {
  detail::LstmGatePreactImpl(wx, wh, bias, x, h_prev, hidden, input_dim, pre,
                             DotSse2);
}

/// Column-block micro-kernel: two dots of one row against the K-vectors
/// at x and x+k, sharing the four converted a-row registers; the column
/// data comes from the pre-widened double panel `xd` (same values as x
/// — see kernels_detail.h), so the inner loop has no b-side converts.
/// Each column keeps the full 8-lane accumulator set of DotSse2 (2 × 4
/// registers), spills, and finishes through the shared tail — so each
/// result is bit-equal to a standalone DotSse2.
void DotCols2Sse2(const float* a, const float* x, const double* xd, size_t k,
                  double* out) {
  const float* x0 = x;
  const float* x1 = x + k;
  const double* xd0 = xd;
  const double* xd1 = xd + k;
  __m128d c0_01 = _mm_setzero_pd(), c0_23 = _mm_setzero_pd();
  __m128d c0_45 = _mm_setzero_pd(), c0_67 = _mm_setzero_pd();
  __m128d c1_01 = _mm_setzero_pd(), c1_23 = _mm_setzero_pd();
  __m128d c1_45 = _mm_setzero_pd(), c1_67 = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 8 <= k; i += 8) {
    const __m128 a0 = _mm_loadu_ps(a + i);
    const __m128 a1 = _mm_loadu_ps(a + i + 4);
    const __m128d a01 = _mm_cvtps_pd(a0);
    const __m128d a23 = _mm_cvtps_pd(_mm_movehl_ps(a0, a0));
    const __m128d a45 = _mm_cvtps_pd(a1);
    const __m128d a67 = _mm_cvtps_pd(_mm_movehl_ps(a1, a1));
    c0_01 = _mm_add_pd(c0_01, _mm_mul_pd(a01, _mm_loadu_pd(xd0 + i)));
    c0_23 = _mm_add_pd(c0_23, _mm_mul_pd(a23, _mm_loadu_pd(xd0 + i + 2)));
    c0_45 = _mm_add_pd(c0_45, _mm_mul_pd(a45, _mm_loadu_pd(xd0 + i + 4)));
    c0_67 = _mm_add_pd(c0_67, _mm_mul_pd(a67, _mm_loadu_pd(xd0 + i + 6)));
    c1_01 = _mm_add_pd(c1_01, _mm_mul_pd(a01, _mm_loadu_pd(xd1 + i)));
    c1_23 = _mm_add_pd(c1_23, _mm_mul_pd(a23, _mm_loadu_pd(xd1 + i + 2)));
    c1_45 = _mm_add_pd(c1_45, _mm_mul_pd(a45, _mm_loadu_pd(xd1 + i + 4)));
    c1_67 = _mm_add_pd(c1_67, _mm_mul_pd(a67, _mm_loadu_pd(xd1 + i + 6)));
  }
  double lanes0[8], lanes1[8];
  _mm_storeu_pd(lanes0 + 0, c0_01);
  _mm_storeu_pd(lanes0 + 2, c0_23);
  _mm_storeu_pd(lanes0 + 4, c0_45);
  _mm_storeu_pd(lanes0 + 6, c0_67);
  _mm_storeu_pd(lanes1 + 0, c1_01);
  _mm_storeu_pd(lanes1 + 2, c1_23);
  _mm_storeu_pd(lanes1 + 4, c1_45);
  _mm_storeu_pd(lanes1 + 6, c1_67);
  out[0] = detail::FinishDot(lanes0, a, x0, i, k);
  out[1] = detail::FinishDot(lanes1, a, x1, i, k);
}

void MatMulSse2(const float* m, size_t rows, size_t k, const float* x,
                size_t batch, const float* bias, float* out) {
  detail::MatMulImpl<2>(m, rows, k, x, batch, bias, out, DotSse2,
                        DotCols2Sse2);
}

void MatTVecBatchSse2(const float* m, size_t rows, size_t cols,
                      const float* x, size_t batch, float* out) {
  detail::MatTVecBatchImpl(m, rows, cols, x, batch, out, AxpySse2);
}

void LstmGatePreactBatchSse2(const float* wx, const float* wh,
                             const float* bias, const float* xs,
                             const float* hs, size_t hidden, size_t input_dim,
                             size_t batch, float* pre) {
  detail::LstmGatePreactBatchImpl<2>(wx, wh, bias, xs, hs, hidden, input_dim,
                                     batch, pre, DotSse2, DotCols2Sse2);
}

}  // namespace

namespace detail {
const KernelTable kSse2Table = {
    DotSse2,     SumSqSse2,   DotQ8Sse2,    AxpySse2,
    ScaleSse2,   MatVecSse2,  MatTVecSse2,  AddOuterSse2,
    LstmGatePreactSse2,       MatMulSse2,   MatTVecBatchSse2,
    LstmGatePreactBatchSse2,
};
}  // namespace detail

}  // namespace pae::math::kernels

#endif  // PAE_KERNELS_HAVE_SSE2
