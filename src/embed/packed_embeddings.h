#ifndef PAE_EMBED_PACKED_EMBEDDINGS_H_
#define PAE_EMBED_PACKED_EMBEDDINGS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "embed/word2vec.h"
#include "util/interner.h"

namespace pae::embed {

/// Zero-copy similarity queries over an mmap'ed embedding section of a
/// `.paez` model artifact. The vocabulary probe table, the vectors
/// (float32 or per-row-affine int8), and the quantization parameters
/// all stay in the mapping — `owner` pins it. Id 0 is "<unk>" and is
/// treated as out-of-vocabulary, matching Word2Vec::Vector.
///
/// The int8 path never materializes dequantized rows: Similarity
/// computes exact integer moments with the dispatched DotQ8 kernel and
/// applies both rows' affine parameters once in double
/// (math::kernels::CosineQ8), so results are bit-identical across
/// scalar/SSE2/AVX2.
class PackedEmbeddings {
 public:
  PackedEmbeddings() = default;

  /// Binds a float32 section. `vectors` is vocab_count × dim row-major.
  static PackedEmbeddings FromF32(util::StringTableView vocab, size_t dim,
                                  const float* vectors,
                                  std::shared_ptr<const void> owner);

  /// Binds an int8 section with per-row QuantParams.
  static PackedEmbeddings FromInt8(util::StringTableView vocab, size_t dim,
                                   const int8_t* vectors,
                                   const QuantParams* params,
                                   std::shared_ptr<const void> owner);

  bool bound() const { return dim_ > 0; }
  bool quantized() const { return q8_ != nullptr; }
  size_t dim() const { return dim_; }
  size_t vocab_size() const { return vocab_.size(); }

  bool Contains(const std::string& word) const {
    return FindRow(word) > 0;
  }

  /// Cosine similarity of two in-vocabulary words; 0 if either is OOV.
  /// Float sections match Word2Vec::Similarity bit-for-bit. Int8
  /// sections agree with a QuantizeInPlace()'d Word2Vec to float
  /// rounding (the integer-moment path rounds once, the dequantized
  /// float path once per element); the cleaning accuracy gate compares
  /// decisions, and the artifact equivalence test bounds the delta.
  double Similarity(const std::string& a, const std::string& b) const;

  /// Copies word's vector (dequantized when int8) into out[0, dim).
  /// Returns false for OOV. For callers that need raw rows.
  bool CopyRow(const std::string& word, float* out) const;

 private:
  /// Row id for `word`, or -1 when OOV (includes id 0 = "<unk>").
  int FindRow(std::string_view word) const {
    const int id = vocab_.Find(word);
    return id <= 0 ? -1 : id;
  }

  util::StringTableView vocab_;
  size_t dim_ = 0;
  const float* f32_ = nullptr;
  const int8_t* q8_ = nullptr;
  const QuantParams* params_ = nullptr;
  std::shared_ptr<const void> owner_;
};

}  // namespace pae::embed

#endif  // PAE_EMBED_PACKED_EMBEDDINGS_H_
