#include "embed/packed_embeddings.h"

#include <utility>

#include "math/kernels.h"
#include "util/logging.h"

namespace pae::embed {

PackedEmbeddings PackedEmbeddings::FromF32(
    util::StringTableView vocab, size_t dim, const float* vectors,
    std::shared_ptr<const void> owner) {
  PAE_CHECK_GT(dim, 0u);
  PackedEmbeddings p;
  p.vocab_ = vocab;
  p.dim_ = dim;
  p.f32_ = vectors;
  p.owner_ = std::move(owner);
  return p;
}

PackedEmbeddings PackedEmbeddings::FromInt8(
    util::StringTableView vocab, size_t dim, const int8_t* vectors,
    const QuantParams* params, std::shared_ptr<const void> owner) {
  PAE_CHECK_GT(dim, 0u);
  PackedEmbeddings p;
  p.vocab_ = vocab;
  p.dim_ = dim;
  p.q8_ = vectors;
  p.params_ = params;
  p.owner_ = std::move(owner);
  return p;
}

double PackedEmbeddings::Similarity(const std::string& a,
                                    const std::string& b) const {
  const int ia = FindRow(a);
  const int ib = FindRow(b);
  if (ia < 0 || ib < 0) return 0.0;
  const size_t ra = static_cast<size_t>(ia);
  const size_t rb = static_cast<size_t>(ib);
  if (q8_ != nullptr) {
    const math::kernels::Q8Moments m = math::kernels::DotQ8(
        q8_ + ra * dim_, q8_ + rb * dim_, dim_);
    return math::kernels::CosineQ8(m, dim_, params_[ra].scale,
                                   params_[ra].zero_point, params_[rb].scale,
                                   params_[rb].zero_point);
  }
  return math::kernels::Cosine(f32_ + ra * dim_, f32_ + rb * dim_, dim_);
}

bool PackedEmbeddings::CopyRow(const std::string& word, float* out) const {
  const int id = FindRow(word);
  if (id < 0) return false;
  const size_t r = static_cast<size_t>(id);
  if (q8_ != nullptr) {
    DequantizeRow(q8_ + r * dim_, dim_, params_[r], out);
  } else {
    const float* row = f32_ + r * dim_;
    for (size_t i = 0; i < dim_; ++i) out[i] = row[i];
  }
  return true;
}

}  // namespace pae::embed
