#include "embed/word2vec.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "math/kernels.h"
#include "math/vec.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace pae::embed {

namespace {
constexpr size_t kUnigramTableSize = 1 << 17;
}

QuantParams QuantizeRow(const float* row, size_t dim, int8_t* out) {
  float lo = row[0];
  float hi = row[0];
  for (size_t i = 1; i < dim; ++i) {
    lo = std::min(lo, row[i]);
    hi = std::max(hi, row[i]);
  }
  QuantParams params;
  params.scale = (hi > lo) ? (hi - lo) / 255.0f : 1.0f;
  params.zero_point = static_cast<int32_t>(
      std::lround(-128.0 - static_cast<double>(lo) / params.scale));
  for (size_t i = 0; i < dim; ++i) {
    const long q = std::lround(static_cast<double>(row[i]) / params.scale) +
                   params.zero_point;
    out[i] = static_cast<int8_t>(std::clamp<long>(q, -128, 127));
  }
  return params;
}

void DequantizeRow(const int8_t* q, size_t dim, QuantParams params,
                   float* out) {
  for (size_t i = 0; i < dim; ++i) {
    out[i] = params.scale *
             static_cast<float>(static_cast<int32_t>(q[i]) -
                                params.zero_point);
  }
}

Word2Vec::Word2Vec(Word2VecOptions options) : options_(options) {}

Status Word2Vec::Train(
    const std::vector<std::vector<std::string>>& sentences) {
  if (sentences.empty()) {
    return Status::InvalidArgument("word2vec corpus is empty");
  }
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer train_timer(metrics.GetHistogram("embed.train.seconds"));
  metrics.GetCounter("embed.trainings")->Increment();
  metrics.GetCounter("embed.train.sentences")
      ->Add(static_cast<int64_t>(sentences.size()));
  Rng rng(options_.seed);

  // Vocabulary with frequency threshold.
  std::unordered_map<std::string, int64_t> raw_counts;
  for (const auto& sentence : sentences) {
    for (const auto& token : sentence) ++raw_counts[token];
  }
  vocab_ = text::Vocab();
  counts_.assign(1, 0);  // <unk>
  size_t eligible = 0;
  for (const auto& [word, count] : raw_counts) {
    if (count >= options_.min_count) ++eligible;
  }
  vocab_.Reserve(eligible + 1);  // + the <unk> sentinel
  for (const auto& [word, count] : raw_counts) {
    if (count >= options_.min_count) {
      int32_t id = vocab_.GetOrAdd(word);
      if (static_cast<size_t>(id) >= counts_.size()) counts_.resize(id + 1, 0);
      counts_[static_cast<size_t>(id)] = count;
    }
  }
  if (vocab_.size() <= 1) {
    return Status::FailedPrecondition(
        "word2vec: no words above min_count");
  }
  metrics.GetSeries("embed.vocab")
      ->Append(static_cast<double>(vocab_.size()));

  const size_t v = vocab_.size();
  const size_t d = dim();
  in_vectors_ = math::Matrix(v, d);
  in_vectors_.UniformInit(&rng, 0.5f / static_cast<float>(d));
  out_vectors_ = math::Matrix(v, d);
  out_vectors_.SetZero();

  // Unigram table with the standard 0.75 power smoothing.
  unigram_table_.clear();
  unigram_table_.reserve(kUnigramTableSize);
  double total_pow = 0;
  for (size_t i = 1; i < v; ++i) {
    total_pow += std::pow(static_cast<double>(counts_[i]), 0.75);
  }
  size_t word_index = 1;
  double cumulative =
      std::pow(static_cast<double>(counts_[1]), 0.75) / total_pow;
  for (size_t i = 0; i < kUnigramTableSize; ++i) {
    unigram_table_.push_back(static_cast<int32_t>(word_index));
    if (static_cast<double>(i) / kUnigramTableSize > cumulative &&
        word_index < v - 1) {
      ++word_index;
      cumulative +=
          std::pow(static_cast<double>(counts_[word_index]), 0.75) / total_pow;
    }
  }

  // Encode corpus once, applying frequent-word subsampling.
  int64_t total_tokens = 0;
  for (size_t i = 1; i < v; ++i) total_tokens += counts_[i];
  auto keep_prob = [&](int32_t id) -> double {
    if (options_.subsample <= 0) return 1.0;
    const double f = static_cast<double>(counts_[static_cast<size_t>(id)]) /
                     static_cast<double>(total_tokens);
    if (f <= options_.subsample) return 1.0;
    const double r = options_.subsample / f;
    return std::sqrt(r) + r;
  };
  std::vector<std::vector<int32_t>> encoded;
  encoded.reserve(sentences.size());
  for (const auto& sentence : sentences) {
    std::vector<int32_t> ids;
    for (const auto& token : sentence) {
      int32_t id = vocab_.Lookup(token);
      if (id == text::Vocab::kUnkId) continue;
      if (rng.NextDouble() >= keep_prob(id)) continue;
      ids.push_back(id);
    }
    if (ids.size() >= 2) encoded.push_back(std::move(ids));
  }
  if (encoded.empty()) {
    return Status::FailedPrecondition("word2vec: corpus reduced to nothing");
  }

  const float lr0 = options_.learning_rate;
  const int total_epochs = std::max(1, options_.epochs);

  // Skip-gram negative-sampling pass over encoded[lo, hi), updating
  // `in`/`out` in place and drawing every sample from `pass_rng`.
  auto train_range = [&](size_t lo, size_t hi, float lr, Rng& pass_rng,
                         math::Matrix& in, math::Matrix& out) {
    std::vector<float> grad_in(d);
    for (size_t sent = lo; sent < hi; ++sent) {
      const auto& ids = encoded[sent];
      const int n = static_cast<int>(ids.size());
      for (int pos = 0; pos < n; ++pos) {
        const int reduced =
            1 + static_cast<int>(pass_rng.NextBounded(
                    static_cast<uint64_t>(options_.window)));
        for (int off = -reduced; off <= reduced; ++off) {
          if (off == 0) continue;
          const int cpos = pos + off;
          if (cpos < 0 || cpos >= n) continue;
          const size_t center = static_cast<size_t>(ids[pos]);
          float* vin = in.Row(center);
          std::fill(grad_in.begin(), grad_in.end(), 0.0f);

          for (int s = 0; s < options_.negative + 1; ++s) {
            size_t target;
            float label;
            if (s == 0) {
              target = static_cast<size_t>(ids[static_cast<size_t>(cpos)]);
              label = 1.0f;
            } else {
              target = static_cast<size_t>(
                  unigram_table_[pass_rng.NextBounded(
                      unigram_table_.size())]);
              if (target ==
                  static_cast<size_t>(ids[static_cast<size_t>(cpos)])) {
                continue;
              }
              label = 0.0f;
            }
            float* vout = out.Row(target);
            const double dot = math::kernels::Dot(vin, vout, d);
            const float pred = math::Sigmoid(static_cast<float>(dot));
            const float g = (label - pred) * lr;
            // grad_in += g*vout must read vout before the vout update
            // writes it; two Axpy calls preserve that order (and stay
            // correct when target == center aliases vout onto vin's
            // matrix — they are distinct rows by construction here).
            math::kernels::Axpy(g, vout, grad_in.data(), d);
            math::kernels::Axpy(g, vin, vout, d);
          }
          math::kernels::Axpy(1.0f, grad_in.data(), vin, d);
        }
      }
    }
  };

  const size_t shards = std::min<size_t>(
      static_cast<size_t>(std::max(1, options_.shards)), encoded.size());
  util::ThreadPool pool(util::ThreadPool::ResolveThreads(options_.threads));

  for (int epoch = 0; epoch < total_epochs; ++epoch) {
    const float lr = lr0 * (1.0f - static_cast<float>(epoch) /
                                       static_cast<float>(total_epochs)) +
                     lr0 * 1e-2f;
    if (shards <= 1) {
      // Classic sequential SGD epoch, bit-identical to the historical
      // single-threaded trainer (continues the construction-time RNG).
      train_range(0, encoded.size(), lr, rng, in_vectors_, out_vectors_);
      continue;
    }
    // Sharded epoch: fixed contiguous shards, each trained on a private
    // copy of the matrices with its own seed-derived RNG stream, merged
    // in shard order. The decomposition and the merge depend only on
    // (corpus, seed, shards), never on the thread count.
    const std::vector<float> base_in = in_vectors_.data();
    const std::vector<float> base_out = out_vectors_.data();
    std::vector<math::Matrix> shard_in(shards, in_vectors_);
    std::vector<math::Matrix> shard_out(shards, out_vectors_);
    pool.ParallelFor(0, shards, 1, [&](size_t s) {
      const size_t lo = s * encoded.size() / shards;
      const size_t hi = (s + 1) * encoded.size() / shards;
      Rng shard_rng(options_.seed ^
                    (0x9e3779b97f4a7c15ULL *
                     (static_cast<uint64_t>(epoch) * shards + s + 1)));
      train_range(lo, hi, lr, shard_rng, shard_in[s], shard_out[s]);
    });
    // Element-wise delta merge; every element is independent, so this
    // also parallelizes without affecting the result.
    auto merge = [&](const std::vector<math::Matrix>& parts,
                     const std::vector<float>& base, math::Matrix* dst) {
      std::vector<float>& target = dst->data();
      pool.ParallelFor(0, target.size(), 4096, [&](size_t k) {
        double delta = 0;
        for (size_t s = 0; s < shards; ++s) {
          delta += static_cast<double>(parts[s].data()[k]) - base[k];
        }
        target[k] = static_cast<float>(base[k] + delta);
      });
    };
    merge(shard_in, base_in, &in_vectors_);
    merge(shard_out, base_out, &out_vectors_);
    // Shard merges sum float deltas in double; an exploding learning
    // rate shows up here first, one epoch before it would reach the
    // semantic-cleaning cosines.
    PAE_DCHECK_FINITE_VEC(in_vectors_.data())
        << "word2vec: non-finite input embedding after epoch " << epoch;
    PAE_DCHECK_FINITE_VEC(out_vectors_.data())
        << "word2vec: non-finite output embedding after epoch " << epoch;
  }
  // Centre the space: small skip-gram corpora develop a dominant common
  // direction that drives all cosines toward 1 (anisotropy); removing
  // the mean vector restores contrast (cf. "all-but-the-top").
  std::vector<double> mean(d, 0.0);
  for (size_t i = 1; i < v; ++i) {
    const float* row = in_vectors_.Row(i);
    for (size_t k = 0; k < d; ++k) mean[k] += row[k];
  }
  for (size_t k = 0; k < d; ++k) mean[k] /= static_cast<double>(v - 1);
  for (size_t i = 1; i < v; ++i) {
    float* row = in_vectors_.Row(i);
    for (size_t k = 0; k < d; ++k) {
      row[k] -= static_cast<float>(mean[k]);
    }
  }

  // Train runs once per bootstrap cycle: guarantee the cycle hands the
  // cleaning stage a finite embedding space.
  PAE_DCHECK_FINITE_VEC(in_vectors_.data())
      << "word2vec: non-finite embedding at end of training";
  trained_ = true;
  return Status::Ok();
}

void Word2Vec::QuantizeInPlace() {
  if (!trained_) return;
  const size_t d = dim();
  std::vector<int8_t> q(d);
  // Row 0 is "<unk>" and never served; quantize it anyway for symmetry.
  for (size_t i = 0; i < vocab_.size(); ++i) {
    float* row = in_vectors_.Row(i);
    const QuantParams params = QuantizeRow(row, d, q.data());
    DequantizeRow(q.data(), d, params, row);
  }
}

const float* Word2Vec::Vector(const std::string& word) const {
  if (!trained_) return nullptr;
  int32_t id = vocab_.Lookup(word);
  if (id == text::Vocab::kUnkId) return nullptr;
  return in_vectors_.Row(static_cast<size_t>(id));
}

bool Word2Vec::Contains(const std::string& word) const {
  return trained_ && vocab_.Lookup(word) != text::Vocab::kUnkId;
}

double Word2Vec::Similarity(const std::string& a, const std::string& b) const {
  const float* va = Vector(a);
  const float* vb = Vector(b);
  if (va == nullptr || vb == nullptr) return 0.0;
  return Cosine(va, vb, dim());
}

double Word2Vec::Cosine(const float* a, const float* b, size_t dim) {
  // Deduplicated against math::CosineSimilarity: both now share the
  // kernel-layer dot/norm reductions and the CosineFromNorms contract.
  return math::kernels::Cosine(a, b, dim);
}

}  // namespace pae::embed

namespace pae::embed {

namespace {
constexpr uint32_t kW2vMagic = 0x57325631;  // "W2V1"
constexpr uint32_t kW2vVersion = 1;
}  // namespace

Status Word2Vec::Save(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("word2vec: saving untrained model");
  }
  BinaryWriter writer(path, kW2vMagic, kW2vVersion);
  writer.WriteI32(options_.dim);
  std::vector<std::string> words;
  words.reserve(vocab_.size());
  for (size_t i = 0; i < vocab_.size(); ++i) {
    words.emplace_back(vocab_.Word(static_cast<int32_t>(i)));
  }
  writer.WriteStringVec(words);
  writer.WriteFloatVec(in_vectors_.data());
  return writer.Finish();
}

Status Word2Vec::Load(const std::string& path) {
  BinaryReader reader(path, kW2vMagic, kW2vVersion);
  if (!reader.ok()) return reader.status();
  int32_t dim = 0;
  std::vector<std::string> words;
  std::vector<float> vectors;
  if (!reader.ReadI32(&dim) || !reader.ReadStringVec(&words) ||
      !reader.ReadFloatVec(&vectors)) {
    return reader.status().ok()
               ? Status::Internal("word2vec: malformed model file")
               : reader.status();
  }
  if (dim <= 0 ||
      vectors.size() != words.size() * static_cast<size_t>(dim)) {
    return Status::InvalidArgument("word2vec: dimension mismatch");
  }
  options_.dim = dim;
  // Legacy parse copies the whole vocabulary and matrix into owned
  // memory; counted for the zero-copy before/after evidence.
  size_t copied = vectors.size() * sizeof(float);
  for (const std::string& word : words) copied += word.size();
  util::MetricsRegistry::Global()
      .GetCounter("model.load.bytes_copied")
      ->Add(static_cast<int64_t>(copied));
  vocab_ = text::Vocab();
  vocab_.Reserve(words.size() + 1);
  for (const std::string& word : words) vocab_.GetOrAdd(word);
  in_vectors_ = math::Matrix(words.size(), static_cast<size_t>(dim));
  in_vectors_.data() = std::move(vectors);
  out_vectors_ = math::Matrix();
  trained_ = true;
  return Status::Ok();
}

}  // namespace pae::embed
