#ifndef PAE_EMBED_WORD2VEC_H_
#define PAE_EMBED_WORD2VEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "math/matrix.h"
#include "text/vocab.h"
#include "util/rng.h"
#include "util/status.h"

namespace pae::embed {

/// Per-row affine int8 quantization parameters:
/// real[i] = scale · (q[i] − zero_point), q ∈ [−128, 127].
struct QuantParams {
  float scale = 1.0f;
  int32_t zero_point = 0;
};

/// Quantizes `row[0, dim)` to int8 with a per-row affine mapping that
/// spans [min, max] exactly. Deterministic: pure function of the row.
QuantParams QuantizeRow(const float* row, size_t dim, int8_t* out);

/// Inverse mapping: out[i] = params.scale · (q[i] − params.zero_point).
void DequantizeRow(const int8_t* q, size_t dim, QuantParams params,
                   float* out);

/// Word2vec hyper-parameters (skip-gram with negative sampling).
struct Word2VecOptions {
  int dim = 50;
  int window = 4;       // maximum context distance (sampled per position)
  int negative = 5;     // negative samples per positive pair
  int epochs = 3;
  float learning_rate = 0.025f;
  int min_count = 2;    // words rarer than this are dropped
  /// Frequent-word subsampling threshold (Mikolov et al.): tokens with
  /// corpus frequency f are kept with probability
  /// (sqrt(f/t)+1)·t/f. Without it, particles/copulas dominate every
  /// context window and all content words look alike. 0 disables.
  double subsample = 1e-3;
  uint64_t seed = 7;
  /// Training shards per epoch. 1 (default) is the classic sequential
  /// SGD pass. With shards > 1 each epoch splits the corpus into this
  /// many fixed contiguous shards, trains each on a private copy of the
  /// matrices with its own RNG stream derived from (seed, epoch, shard),
  /// and merges the per-shard deltas in shard order — so the result
  /// depends on `shards` but never on `threads`.
  int shards = 1;
  /// Threads executing the shards (0 = all hardware threads, negative
  /// clamps to 1). Never affects the trained vectors, only wall-clock.
  int threads = 1;
};

/// Skip-gram word2vec trained from scratch on the product-page corpus of
/// the current bootstrap iteration (§V-C: embeddings cannot be reused
/// across iterations because each iteration discovers new entities,
/// which the semantic-cleaning module must be able to place).
class Word2Vec {
 public:
  explicit Word2Vec(Word2VecOptions options = {});

  /// Trains on tokenized sentences. Multi-word attribute values must be
  /// pre-merged into single tokens by the caller (§V-C step i).
  Status Train(const std::vector<std::vector<std::string>>& sentences);

  /// Returns the input vector of `word`, or nullptr if out of vocabulary.
  const float* Vector(const std::string& word) const;

  size_t dim() const { return static_cast<size_t>(options_.dim); }
  size_t vocab_size() const { return vocab_.size(); }
  bool Contains(const std::string& word) const;

  /// Cosine similarity of two in-vocabulary words; 0 if either is OOV.
  double Similarity(const std::string& a, const std::string& b) const;

  /// Cosine similarity between raw vectors of dimension dim().
  static double Cosine(const float* a, const float* b, size_t dim);

  /// Persists the trained embeddings (vocabulary + input vectors).
  Status Save(const std::string& path) const;
  /// Restores embeddings previously written by Save. The loaded model
  /// answers similarity queries but cannot be trained further.
  Status Load(const std::string& path);

  /// Round-trips every published vector through per-row int8 affine
  /// quantization (QuantizeRow → DequantizeRow in place). After this,
  /// similarity queries see exactly the values an int8 `.paez`
  /// embedding section yields — the hook behind
  /// SemanticCleaner::Config::quantize_int8 and the accuracy gate for
  /// the quantized artifact variant. No-op before training.
  void QuantizeInPlace();

  /// Read access for the artifact writer (pae-model-pack).
  const text::Vocab& vocab() const { return vocab_; }
  const math::Matrix& vectors() const { return in_vectors_; }

 private:
  Word2VecOptions options_;
  text::Vocab vocab_;
  std::vector<int64_t> counts_;   // per vocab id
  math::Matrix in_vectors_;       // |V| × dim (the published embeddings)
  math::Matrix out_vectors_;      // |V| × dim (context vectors)
  std::vector<int32_t> unigram_table_;
  bool trained_ = false;
};

}  // namespace pae::embed

#endif  // PAE_EMBED_WORD2VEC_H_
