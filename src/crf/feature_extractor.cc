#include "crf/feature_extractor.h"

#include <algorithm>

#include "util/logging.h"

namespace pae::crf {

namespace {
const std::string kBos = "<s>";
const std::string kEos = "</s>";
}  // namespace

void ExtractFeatures(const text::LabeledSequence& seq,
                     const FeatureConfig& config,
                     std::vector<std::vector<std::string>>* out) {
  PAE_CHECK_EQ(seq.tokens.size(), seq.pos.size());
  const int n = static_cast<int>(seq.tokens.size());
  const int k = config.window;

  const auto token_at = [](const std::vector<std::string>& v,
                           int i) -> const std::string& {
    if (i < 0) return kBos;
    if (i >= static_cast<int>(v.size())) return kEos;
    return v[static_cast<size_t>(i)];
  };

  out->assign(static_cast<size_t>(n), {});
  const int sent_bucket =
      std::min(seq.sentence_index, config.max_sentence_bucket);
  const std::string sent_feature = "sent=" + std::to_string(sent_bucket);

  for (int t = 0; t < n; ++t) {
    std::vector<std::string>& feats = (*out)[static_cast<size_t>(t)];
    feats.reserve(static_cast<size_t>(4 * k + 5));
    // w[t] itself.
    feats.push_back("w[0]=" + seq.tokens[static_cast<size_t>(t)]);
    // Window words and their PoS tags.
    std::string pos_concat;
    for (int d = -k; d <= k; ++d) {
      const std::string& w = token_at(seq.tokens, t + d);
      const std::string& p = token_at(seq.pos, t + d);
      if (d != 0) {
        feats.push_back("w[" + std::to_string(d) + "]=" + w);
      }
      feats.push_back("p[" + std::to_string(d) + "]=" + p);
      if (!pos_concat.empty()) pos_concat.push_back('|');
      pos_concat += p;
    }
    feats.push_back("pwin=" + pos_concat);
    feats.push_back(sent_feature);
  }
}

const std::string& FeatureEncoder::TokenAt(const std::vector<std::string>& v,
                                           int i) {
  if (i < 0) return kBos;
  if (i >= static_cast<int>(v.size())) return kEos;
  return v[static_cast<size_t>(i)];
}

void FeatureEncoder::Reset(const FeatureConfig& config) {
  const bool same_window = initialized_ && config.window == config_.window;
  const bool same_bucket =
      initialized_ && config.max_sentence_bucket == config_.max_sentence_bucket;
  config_ = config;
  initialized_ = true;
  if (!same_bucket) sent_bucket_ = -1;  // force a sent= re-render
  if (same_window) return;
  const int k = config_.window;
  word_scratch_.clear();
  pos_scratch_.clear();
  for (int d = -k; d <= k; ++d) {
    Scratch w;
    w.buf = "w[" + std::to_string(d) + "]=";
    w.prefix = w.buf.size();
    word_scratch_.push_back(std::move(w));
    Scratch p;
    p.buf = "p[" + std::to_string(d) + "]=";
    p.prefix = p.buf.size();
    pos_scratch_.push_back(std::move(p));
  }
  pwin_buf_.assign("pwin=");
}

void FeatureEncoder::PrepareSentenceFeature(int sentence_index) {
  const int bucket = std::min(sentence_index, config_.max_sentence_bucket);
  if (bucket == sent_bucket_) return;
  sent_bucket_ = bucket;
  sent_feature_ = "sent=" + std::to_string(bucket);
}

}  // namespace pae::crf
