#include "crf/feature_extractor.h"

#include <algorithm>

#include "util/logging.h"

namespace pae::crf {

namespace {
constexpr const char* kBos = "<s>";
constexpr const char* kEos = "</s>";

const std::string& TokenAt(const std::vector<std::string>& v, int i,
                           const std::string& bos, const std::string& eos) {
  if (i < 0) return bos;
  if (i >= static_cast<int>(v.size())) return eos;
  return v[static_cast<size_t>(i)];
}
}  // namespace

void ExtractFeatures(const text::LabeledSequence& seq,
                     const FeatureConfig& config,
                     std::vector<std::vector<std::string>>* out) {
  PAE_CHECK_EQ(seq.tokens.size(), seq.pos.size());
  const int n = static_cast<int>(seq.tokens.size());
  const int k = config.window;
  static const std::string bos = kBos;
  static const std::string eos = kEos;

  out->assign(static_cast<size_t>(n), {});
  const int sent_bucket =
      std::min(seq.sentence_index, config.max_sentence_bucket);
  const std::string sent_feature = "sent=" + std::to_string(sent_bucket);

  for (int t = 0; t < n; ++t) {
    std::vector<std::string>& feats = (*out)[static_cast<size_t>(t)];
    feats.reserve(static_cast<size_t>(4 * k + 5));
    // w[t] itself.
    feats.push_back("w[0]=" + seq.tokens[static_cast<size_t>(t)]);
    // Window words and their PoS tags.
    std::string pos_concat;
    for (int d = -k; d <= k; ++d) {
      const std::string& w = TokenAt(seq.tokens, t + d, bos, eos);
      const std::string& p = TokenAt(seq.pos, t + d, bos, eos);
      if (d != 0) {
        feats.push_back("w[" + std::to_string(d) + "]=" + w);
      }
      feats.push_back("p[" + std::to_string(d) + "]=" + p);
      if (!pos_concat.empty()) pos_concat.push_back('|');
      pos_concat += p;
    }
    feats.push_back("pwin=" + pos_concat);
    feats.push_back(sent_feature);
  }
}

}  // namespace pae::crf
