#ifndef PAE_CRF_CRF_MODEL_H_
#define PAE_CRF_CRF_MODEL_H_

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/interner.h"
#include "util/status.h"

namespace pae::crf {

/// A training/prediction sequence after feature compilation: per-position
/// active feature ids and (for training) gold label ids.
struct CompiledSequence {
  std::vector<std::vector<int>> features;
  std::vector<int> labels;  // empty when unlabeled

  size_t length() const { return features.size(); }
};

/// The mathematical core of the linear-chain CRF: label/feature
/// dictionaries, the weight-vector layout, potentials, forward–backward,
/// negative log-likelihood with gradient, marginals, and Viterbi.
///
/// Weight layout (single flat vector, dimension WeightDim()):
///   [0, F*L)             unigram weights, index = feature*L + label
///   [F*L, F*L+L*L)       transition weights, index = prev*L + label
///   [..., ... + L)       start weights (label of first token)
///   [..., ... + L)       end weights (label of last token)
class CrfModel {
 public:
  /// Adds (or finds) a label; returns its id.
  int AddLabel(std::string_view label);
  /// Returns the label id or -1.
  int LookupLabel(std::string_view label) const;
  const std::string& LabelName(int id) const;
  size_t num_labels() const { return labels_.size(); }
  const std::vector<std::string>& labels() const { return labels_; }

  /// Adds (or finds) a feature; returns its id. Ids are dense and
  /// assigned in first-insertion order. Illegal on a model bound to a
  /// packed feature table (the table is read-only mapped memory).
  int AddFeature(std::string_view feature);
  /// Returns the feature id or -1 (unknown features are skipped at
  /// prediction time). Heterogeneous string_view lookup: scratch-buffer
  /// callers never materialize a std::string.
  int LookupFeature(std::string_view feature) const;
  size_t num_features() const {
    return packed_features_.bound() ? packed_features_.size()
                                    : features_.size();
  }
  /// The feature string for `id`; the view stays valid for the model's
  /// lifetime (interner arena storage never moves; a packed table's
  /// arena lives in the caller-owned mapping).
  std::string_view FeatureName(int id) const {
    return packed_features_.bound() ? packed_features_.key(id)
                                    : features_.key(id);
  }

  /// Pre-sizes the dictionaries for bulk builders with a known final
  /// size (Train's min-count survivor remap, Load, Compact), skipping
  /// the incremental rehash storm. Illegal on a packed model — the
  /// table is read-only mapped memory.
  void ReserveFeatures(size_t expected) {
    PAE_CHECK(!packed_features_.bound())
        << "ReserveFeatures on a packed model";
    features_.Reserve(expected);
  }
  void ReserveLabels(size_t expected) {
    labels_.reserve(expected);
    label_ids_.Reserve(expected);
  }

  /// Switches the feature dictionary to a zero-copy packed table (an
  /// mmap'ed model artifact section). The view's probe layout came from
  /// FlatStringInterner::ExportPacked, so LookupFeature returns exactly
  /// the ids the original interner assigned — inference over a packed
  /// model is byte-identical to the legacy-loaded one. The caller keeps
  /// the backing memory alive (CrfTagger::LoadPacked pins the mapping).
  void BindPackedFeatures(util::StringTableView view) {
    PAE_CHECK(features_.empty())
        << "BindPackedFeatures on a model with interned features";
    packed_features_ = view;
  }
  bool packed_features() const { return packed_features_.bound(); }

  /// Flat export of the feature dictionary for the artifact writer
  /// (core/model_artifact). Requires an interned (non-packed) model.
  void ExportPackedFeatures(std::vector<util::PackedStringSlot>* slots,
                            std::vector<util::PackedStringKey>* keys,
                            std::string* arena) const {
    PAE_CHECK(!packed_features_.bound())
        << "ExportPackedFeatures on a packed model (repack from the "
           "legacy file instead)";
    features_.ExportPacked(slots, keys, arena);
  }

  /// Total weight dimension for the current dictionaries.
  size_t WeightDim() const;

  // Inference takes the weights as a span so a model can run directly
  // over an mmap'ed weight section (zero-copy artifact) or over an
  // owned std::vector (training) — std::vector converts implicitly.

  /// Computes per-position label scores: scores[t*L + y].
  void UnigramScores(const CompiledSequence& seq, std::span<const double> w,
                     std::vector<double>* scores) const;

  /// Adds the sequence's negative log-likelihood to the return value and
  /// accumulates its gradient into `grad` (same layout as `w`).
  /// Requires gold labels.
  double SequenceNll(const CompiledSequence& seq, std::span<const double> w,
                     std::vector<double>* grad) const;

  /// Posterior marginals p(y_t = y | x): out[t*L + y]. For testing and
  /// confidence estimation.
  void Marginals(const CompiledSequence& seq, std::span<const double> w,
                 std::vector<double>* out) const;

  /// MAP label sequence via Viterbi.
  std::vector<int> Viterbi(const CompiledSequence& seq,
                           std::span<const double> w) const;

 private:
  /// Runs log-space forward–backward. alpha/beta are T×L, flattened.
  /// Returns log Z.
  double ForwardBackward(const CompiledSequence& seq,
                         const std::vector<double>& scores,
                         std::span<const double> w,
                         std::vector<double>* alpha,
                         std::vector<double>* beta) const;

  size_t TransBase() const { return num_features() * num_labels(); }
  size_t StartBase() const {
    return TransBase() + num_labels() * num_labels();
  }
  size_t EndBase() const { return StartBase() + num_labels(); }

  std::vector<std::string> labels_;
  util::FlatStringInterner label_ids_;
  util::FlatStringInterner features_;
  /// When bound, replaces features_ for all lookups (zero-copy mode).
  util::StringTableView packed_features_;
};

}  // namespace pae::crf

#endif  // PAE_CRF_CRF_MODEL_H_
