#ifndef PAE_CRF_OWLQN_H_
#define PAE_CRF_OWLQN_H_

#include <functional>
#include <vector>

#include "util/status.h"

namespace pae::crf {

/// Smooth part of an objective: returns f(x) and writes ∇f(x) into
/// `grad` (same dimension as x). The L1 term is handled by the
/// optimizer, not the objective.
using SmoothObjective =
    std::function<double(const std::vector<double>& x,
                         std::vector<double>* grad)>;

struct OwlqnOptions {
  int max_iterations = 100;
  /// Convergence: ||pseudo-grad||_inf below this stops the optimizer.
  double epsilon = 1e-4;
  /// L-BFGS history size.
  int memory = 6;
  /// L1 coefficient (c1). 0 disables the orthant-wise machinery and the
  /// algorithm reduces to plain L-BFGS with backtracking line search.
  double l1_weight = 0.0;
  /// Maximum backtracking steps per line search.
  int max_linesearch = 30;
};

struct OwlqnReport {
  int iterations = 0;
  double final_objective = 0.0;  // smooth + L1
  bool converged = false;
  /// Per-iteration trace, one entry per accepted iterate, in order:
  /// total objective (smooth + L1) after the step, and the inf-norm of
  /// the pseudo-gradient evaluated before the step.
  std::vector<double> objective_history;
  std::vector<double> grad_norm_history;
};

/// Minimizes f(x) + l1_weight * ||x||_1 with the Orthant-Wise Limited-
/// memory Quasi-Newton method (Andrew & Gao, 2007). `x` holds the start
/// point on entry and the solution on exit.
Status MinimizeOwlqn(const SmoothObjective& objective,
                     const OwlqnOptions& options, std::vector<double>* x,
                     OwlqnReport* report);

}  // namespace pae::crf

#endif  // PAE_CRF_OWLQN_H_
