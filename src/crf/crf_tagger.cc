#include "crf/crf_tagger.h"

#include <algorithm>
#include <cmath>

#include "util/interner.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/serial.h"
#include "util/thread_pool.h"

namespace pae::crf {

namespace {
/// Gradient-reduction decomposition: shards of ~kGradGrain sequences,
/// at most kMaxGradShards accumulator buffers. Both are constants of the
/// build — never of the thread count — so the summation tree and the
/// trained weights are identical however many threads run it.
constexpr size_t kGradGrain = 4;
constexpr size_t kMaxGradShards = 32;

/// Per-thread feature encoder: prediction-time compilation runs
/// concurrently on shared taggers (bootstrap/apply fan sentences out on
/// a pool), so the scratch buffers must be thread-private. Reset is a
/// no-op when the config matches, so interleaved taggers only pay for a
/// prefix rebuild when their window sizes actually differ.
FeatureEncoder& ThreadEncoder(const FeatureConfig& config) {
  static thread_local FeatureEncoder encoder;
  encoder.Reset(config);
  return encoder;
}
}  // namespace

CrfTagger::CrfTagger(CrfOptions options) : options_(options) {}

CompiledSequence CrfTagger::Compile(const text::LabeledSequence& seq,
                                    bool with_labels) const {
  CompiledSequence out;
  out.features.resize(seq.tokens.size());
  // The template emits exactly 4*window + 4 features per position.
  const size_t feats_per_token =
      static_cast<size_t>(4 * options_.features.window + 4);
  for (auto& feats : out.features) feats.reserve(feats_per_token);
  FeatureEncoder& encoder = ThreadEncoder(options_.features);
  encoder.Encode(seq, [&](size_t t, std::string_view feature) {
    const int id = model_.LookupFeature(feature);
    if (id >= 0) out.features[t].push_back(id);
  });
  if (with_labels) {
    out.labels.reserve(seq.labels.size());
    for (const std::string& label : seq.labels) {
      int id = model_.LookupLabel(label);
      // Unknown labels at training time were added already; map strays
      // to "O" defensively.
      out.labels.push_back(id >= 0 ? id : 0);
    }
  }
  return out;
}

Status CrfTagger::Train(const std::vector<text::LabeledSequence>& data) {
  if (data.empty()) {
    return Status::InvalidArgument("CRF training set is empty");
  }
  util::MetricsRegistry& metrics = util::MetricsRegistry::Global();
  util::ScopedTimer train_timer(metrics.GetHistogram("crf.train.seconds"));
  metrics.GetCounter("crf.trainings")->Increment();
  metrics.GetCounter("crf.train.sequences")
      ->Add(static_cast<int64_t>(data.size()));
  model_ = CrfModel();
  model_.AddLabel(text::kOutsideLabel);  // id 0

  // Single extraction pass: every feature string is encoded once,
  // interned into a training-set universe, and the per-position
  // universe ids kept — the count pass and the compile pass read the
  // same buffer instead of re-extracting (the old pipeline ran the
  // string template twice per sequence).
  util::FlatStringInterner universe;
  std::vector<int64_t> counts;
  std::vector<CompiledSequence> compiled;  // universe ids until remapped
  compiled.reserve(data.size());
  FeatureEncoder encoder(options_.features);
  for (const auto& seq : data) {
    if (seq.tokens.empty()) continue;
    if (!seq.HasLabels()) {
      return Status::InvalidArgument("CRF training sequence without labels");
    }
    for (const std::string& label : seq.labels) model_.AddLabel(label);
    CompiledSequence cs;
    cs.features.resize(seq.tokens.size());
    for (auto& feats : cs.features) {
      feats.reserve(static_cast<size_t>(4 * options_.features.window + 4));
    }
    encoder.Encode(seq, [&](size_t t, std::string_view feature) {
      const int id = universe.Intern(feature);
      if (static_cast<size_t>(id) == counts.size()) counts.push_back(0);
      ++counts[static_cast<size_t>(id)];
      cs.features[t].push_back(id);
    });
    cs.labels.reserve(seq.labels.size());
    for (const std::string& label : seq.labels) {
      cs.labels.push_back(model_.AddLabel(label));
    }
    compiled.push_back(std::move(cs));
  }

  // Frequency cut, then remap universe ids to final model ids. Model
  // feature ids follow first-occurrence order in the training set — a
  // pure function of the data, unlike the unordered_map iteration order
  // the string pipeline used.
  std::vector<int32_t> remap(universe.size(), -1);
  size_t survivors = 0;
  for (size_t id = 0; id < universe.size(); ++id) {
    if (counts[id] >= options_.min_feature_count) ++survivors;
  }
  model_.ReserveFeatures(survivors);
  for (size_t id = 0; id < universe.size(); ++id) {
    if (counts[id] >= options_.min_feature_count) {
      remap[id] =
          model_.AddFeature(universe.key(static_cast<int>(id)));
    }
  }
  if (model_.num_features() == 0) {
    return Status::FailedPrecondition("CRF: no features survived the cut");
  }
  for (CompiledSequence& cs : compiled) {
    for (std::vector<int>& feats : cs.features) {
      size_t kept = 0;
      for (int id : feats) {
        const int32_t mapped = remap[static_cast<size_t>(id)];
        if (mapped >= 0) feats[kept++] = mapped;
      }
      feats.resize(kept);
    }
  }

  // Per-sequence sorted unique feature lists: the sparse gradient merge
  // below only walks the weight blocks a shard actually touched.
  std::vector<std::vector<int>> unique_feats(compiled.size());
  for (size_t i = 0; i < compiled.size(); ++i) {
    std::vector<int>& u = unique_feats[i];
    for (const std::vector<int>& feats : compiled[i].features) {
      u.insert(u.end(), feats.begin(), feats.end());
    }
    std::sort(u.begin(), u.end());
    u.erase(std::unique(u.begin(), u.end()), u.end());
  }

  const size_t L = model_.num_labels();
  const size_t F = model_.num_features();
  const size_t dim = model_.WeightDim();
  const size_t trans_base = F * L;  // transition/start/end tail block
  weights_.assign(dim, 0.0);

  util::ThreadPool pool(util::ThreadPool::ResolveThreads(options_.threads));
  // Per-shard accumulators, allocated once and reused by every objective
  // evaluation. `grad` is dense for O(1) scatter inside SequenceNll, but
  // zeroing and merging are sparse: `touched` lists the unigram feature
  // blocks this shard wrote, so each evaluation merges and re-zeroes
  // only those blocks plus the (always-hit) transition tail — the old
  // dense merge cost O(WeightDim × shards) per evaluation regardless of
  // how sparse the shard's sequences were.
  struct ShardAcc {
    std::vector<double> grad;
    std::vector<int> touched;
    std::vector<uint8_t> mark;  // feature id → touched this evaluation
    double nll = 0;
  };
  std::vector<ShardAcc> shard_accs(
      util::NumReductionShards(compiled.size(), kGradGrain, kMaxGradShards));
  for (ShardAcc& acc : shard_accs) {
    acc.grad.assign(dim, 0.0);
    acc.mark.assign(F, 0);
  }

  SmoothObjective objective = [&](const std::vector<double>& w,
                                  std::vector<double>* grad) -> double {
    grad->assign(dim, 0.0);
    double nll = 0;
    util::OrderedReduce<ShardAcc*>(
        pool, compiled.size(), kGradGrain, kMaxGradShards,
        [&, next = size_t{0}]() mutable { return &shard_accs[next++]; },
        [&](ShardAcc* acc, size_t i) {
          acc->nll += model_.SequenceNll(compiled[i], w, &acc->grad);
          for (int f : unique_feats[i]) {
            if (!acc->mark[static_cast<size_t>(f)]) {
              acc->mark[static_cast<size_t>(f)] = 1;
              acc->touched.push_back(f);
            }
          }
        },
        [&](ShardAcc* acc, size_t /*shard*/) {
          nll += acc->nll;
          acc->nll = 0;
          for (int f : acc->touched) {
            const size_t base = static_cast<size_t>(f) * L;
            for (size_t y = 0; y < L; ++y) {
              (*grad)[base + y] += acc->grad[base + y];
              acc->grad[base + y] = 0.0;
            }
            acc->mark[static_cast<size_t>(f)] = 0;
          }
          acc->touched.clear();
          for (size_t i = trans_base; i < dim; ++i) {
            (*grad)[i] += acc->grad[i];
            acc->grad[i] = 0.0;
          }
        });
    // L2 regularization (c2), CRFsuite convention: c2 * ||w||^2 with
    // gradient 2 * c2 * w.
    if (options_.c2 > 0) {
      double reg = 0;
      for (size_t i = 0; i < dim; ++i) {
        reg += w[i] * w[i];
        (*grad)[i] += 2.0 * options_.c2 * w[i];
      }
      nll += options_.c2 * reg;
    }
    return nll;
  };

  if (options_.trainer == CrfTrainer::kOwlqn) {
    OwlqnOptions opts;
    opts.max_iterations = options_.max_iterations;
    opts.epsilon = options_.epsilon;
    opts.l1_weight = options_.c1;
    PAE_RETURN_IF_ERROR(MinimizeOwlqn(objective, opts, &weights_, &report_));
  } else {
    // Full-batch AdaGrad: per-coordinate step sizes shrink with the
    // accumulated squared gradient, so frequent features settle while
    // rare ones keep learning.
    std::vector<double> grad(dim, 0.0);
    std::vector<double> accum(dim, 1e-8);
    double previous = objective(weights_, &grad);
    report_ = OwlqnReport{};
    for (int epoch = 0; epoch < options_.max_iterations; ++epoch) {
      for (size_t i = 0; i < dim; ++i) {
        accum[i] += grad[i] * grad[i];
        weights_[i] -= options_.adagrad_learning_rate * grad[i] /
                       std::sqrt(accum[i]);
      }
      const double current = objective(weights_, &grad);
      report_.iterations = epoch + 1;
      report_.final_objective = current;
      report_.objective_history.push_back(current);
      double grad_inf = 0;
      for (double g : grad) grad_inf = std::max(grad_inf, std::fabs(g));
      report_.grad_norm_history.push_back(grad_inf);
      if (std::fabs(previous - current) <
          options_.epsilon * std::max(1.0, std::fabs(current))) {
        report_.converged = true;
        break;
      }
      previous = current;
    }
  }
  // The weights feed every later bootstrap cycle through Viterbi and
  // Marginals; a NaN here would silently zero all confidences.
  PAE_DCHECK_FINITE_VEC(weights_)
      << "CRF training produced non-finite weights";
  trained_ = true;
  packed_ = false;
  packed_owner_.reset();
  weights_span_ = weights_;
  ++generation_;
  metrics.GetSeries("crf.features")
      ->Append(static_cast<double>(model_.num_features()));
  metrics.GetSeries("crf.iterations")
      ->Append(static_cast<double>(report_.iterations));
  metrics.GetSeries("crf.final_objective")->Append(report_.final_objective);
  metrics.GetSeries("crf.objective")->Extend(report_.objective_history);
  metrics.GetSeries("crf.grad_norm")->Extend(report_.grad_norm_history);
  return Status::Ok();
}

std::vector<std::string> CrfTagger::Predict(
    const text::LabeledSequence& seq) const {
  if (!trained_ || seq.tokens.empty()) {
    return std::vector<std::string>(seq.tokens.size(),
                                    text::kOutsideLabel);
  }
  CompiledSequence compiled = Compile(seq, /*with_labels=*/false);
  std::vector<int> path = model_.Viterbi(compiled, weights_span_);
  std::vector<std::string> labels;
  labels.reserve(path.size());
  for (int y : path) labels.push_back(model_.LabelName(y));
  return labels;
}

text::SequenceTagger::ScoredPrediction CrfTagger::ScoreCompiled(
    const CompiledSequence& compiled) const {
  ScoredPrediction out;
  std::vector<int> path = model_.Viterbi(compiled, weights_span_);
  std::vector<double> marginals;
  model_.Marginals(compiled, weights_span_, &marginals);
  const size_t num_labels = model_.num_labels();
  out.labels.reserve(path.size());
  out.confidence.reserve(path.size());
  for (size_t t = 0; t < path.size(); ++t) {
    out.labels.push_back(model_.LabelName(path[t]));
    out.confidence.push_back(
        marginals[t * num_labels + static_cast<size_t>(path[t])]);
  }
  return out;
}

text::SequenceTagger::ScoredPrediction CrfTagger::PredictScored(
    const text::LabeledSequence& seq) const {
  if (!trained_ || seq.tokens.empty()) {
    ScoredPrediction out;
    out.labels.assign(seq.tokens.size(), text::kOutsideLabel);
    out.confidence.assign(seq.tokens.size(), 1.0);
    return out;
  }
  return ScoreCompiled(Compile(seq, /*with_labels=*/false));
}

text::SequenceTagger::ScoredPrediction CrfTagger::PredictScored(
    const CompiledSequence& compiled) const {
  if (!trained_ || compiled.length() == 0) {
    ScoredPrediction out;
    out.labels.assign(compiled.length(), text::kOutsideLabel);
    out.confidence.assign(compiled.length(), 1.0);
    return out;
  }
  return ScoreCompiled(compiled);
}

}  // namespace pae::crf

namespace pae::crf {

namespace {
constexpr uint32_t kCrfMagic = 0x43524631;  // "CRF1"
constexpr uint32_t kCrfVersion = 1;
}  // namespace

size_t CrfTagger::Compact() {
  // A packed tagger's dictionaries live in a read-only mapping; the
  // artifact was compacted (or not) when it was packed.
  if (!trained_ || packed_) return 0;
  const size_t L = model_.num_labels();
  const size_t F = model_.num_features();

  std::vector<bool> keep(F, false);
  size_t kept = 0;
  for (size_t f = 0; f < F; ++f) {
    for (size_t y = 0; y < L; ++y) {
      if (weights_[f * L + y] != 0.0) {
        keep[f] = true;
        ++kept;
        break;
      }
    }
  }
  if (kept == F) return 0;

  CrfModel compacted;
  compacted.ReserveLabels(L);
  compacted.ReserveFeatures(kept);
  for (const std::string& label : model_.labels()) {
    compacted.AddLabel(label);
  }
  std::vector<double> new_weights;
  new_weights.reserve(kept * L + L * L + 2 * L);
  for (size_t f = 0; f < F; ++f) {
    if (!keep[f]) continue;
    compacted.AddFeature(model_.FeatureName(static_cast<int>(f)));
    for (size_t y = 0; y < L; ++y) {
      new_weights.push_back(weights_[f * L + y]);
    }
  }
  // Transition + start + end blocks carry over verbatim.
  for (size_t i = F * L; i < weights_.size(); ++i) {
    new_weights.push_back(weights_[i]);
  }
  const size_t removed = F - kept;
  model_ = std::move(compacted);
  weights_ = std::move(new_weights);
  weights_span_ = weights_;
  PAE_CHECK_EQ(weights_.size(), model_.WeightDim());
  ++generation_;
  return removed;
}

Status CrfTagger::Save(const std::string& path) const {
  if (!trained_) {
    return Status::FailedPrecondition("CRF: saving an untrained model");
  }
  if (packed_) {
    return Status::FailedPrecondition(
        "CRF: Save on a packed (mmap) model; the .paez artifact on disk "
        "is already the serialized form");
  }
  BinaryWriter writer(path, kCrfMagic, kCrfVersion);
  writer.WriteI32(options_.features.window);
  writer.WriteI32(options_.features.max_sentence_bucket);
  writer.WriteDouble(options_.c1);
  writer.WriteDouble(options_.c2);
  writer.WriteStringVec(model_.labels());
  std::vector<std::string> feature_names;
  feature_names.reserve(model_.num_features());
  for (size_t f = 0; f < model_.num_features(); ++f) {
    feature_names.emplace_back(model_.FeatureName(static_cast<int>(f)));
  }
  writer.WriteStringVec(feature_names);
  writer.WriteDoubleVec(weights_);
  return writer.Finish();
}

Status CrfTagger::Load(const std::string& path) {
  BinaryReader reader(path, kCrfMagic, kCrfVersion);
  if (!reader.ok()) return reader.status();
  int32_t window = 0, bucket = 0;
  double c1 = 0, c2 = 0;
  std::vector<std::string> labels, features;
  std::vector<double> weights;
  if (!reader.ReadI32(&window) || !reader.ReadI32(&bucket) ||
      !reader.ReadDouble(&c1) || !reader.ReadDouble(&c2) ||
      !reader.ReadStringVec(&labels) || !reader.ReadStringVec(&features) ||
      !reader.ReadDoubleVec(&weights)) {
    return reader.status().ok()
               ? Status::Internal("CRF: malformed model file")
               : reader.status();
  }
  options_.features.window = window;
  options_.features.max_sentence_bucket = bucket;
  options_.c1 = c1;
  options_.c2 = c2;
  model_ = CrfModel();
  model_.ReserveLabels(labels.size());
  model_.ReserveFeatures(features.size());
  for (const std::string& label : labels) model_.AddLabel(label);
  for (const std::string& feature : features) model_.AddFeature(feature);
  if (weights.size() != model_.WeightDim()) {
    return Status::InvalidArgument("CRF: weight dimension mismatch");
  }
  // Legacy parse: every byte of the model was copied out of the file
  // into owned memory. The counter is the before/after evidence for the
  // zero-copy artifact path (LoadPacked copies labels only).
  size_t copied = weights.size() * sizeof(double);
  for (const std::string& label : labels) copied += label.size();
  for (const std::string& feature : features) copied += feature.size();
  util::MetricsRegistry::Global()
      .GetCounter("model.load.bytes_copied")
      ->Add(static_cast<int64_t>(copied));
  weights_ = std::move(weights);
  weights_span_ = weights_;
  packed_ = false;
  packed_owner_.reset();
  trained_ = true;
  ++generation_;
  return Status::Ok();
}

Status CrfTagger::LoadPacked(PackedCrfModel packed) {
  if (!packed.features.bound() || packed.weights.empty()) {
    return Status::InvalidArgument("CRF: packed model has no features/weights");
  }
  options_.features.window = packed.window;
  options_.features.max_sentence_bucket = packed.max_sentence_bucket;
  options_.c1 = packed.c1;
  options_.c2 = packed.c2;
  model_ = CrfModel();
  size_t copied = 0;
  for (const std::string& label : packed.labels) {
    model_.AddLabel(label);
    copied += label.size();
  }
  model_.BindPackedFeatures(packed.features);
  if (packed.weights.size() != model_.WeightDim()) {
    return Status::InvalidArgument("CRF: packed weight dimension mismatch");
  }
  weights_.clear();
  weights_.shrink_to_fit();
  weights_span_ = packed.weights;
  packed_owner_ = std::move(packed.owner);
  packed_ = true;
  trained_ = true;
  ++generation_;
  util::MetricsRegistry::Global()
      .GetCounter("model.load.bytes_copied")
      ->Add(static_cast<int64_t>(copied));
  return Status::Ok();
}

}  // namespace pae::crf
