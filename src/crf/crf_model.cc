#include "crf/crf_model.h"

#include <cmath>

#include "math/vec.h"
#include "util/logging.h"

namespace pae::crf {

int CrfModel::AddLabel(std::string_view label) {
  const int id = label_ids_.Intern(label);
  if (static_cast<size_t>(id) == labels_.size()) {
    labels_.emplace_back(label);
  }
  return id;
}

int CrfModel::LookupLabel(std::string_view label) const {
  return label_ids_.Find(label);
}

const std::string& CrfModel::LabelName(int id) const {
  PAE_CHECK_GE(id, 0);
  PAE_CHECK_LT(static_cast<size_t>(id), labels_.size());
  return labels_[static_cast<size_t>(id)];
}

int CrfModel::AddFeature(std::string_view feature) {
  PAE_CHECK(!packed_features_.bound())
      << "AddFeature on a model bound to a packed (read-only) table";
  return features_.Intern(feature);
}

int CrfModel::LookupFeature(std::string_view feature) const {
  return packed_features_.bound() ? packed_features_.Find(feature)
                                  : features_.Find(feature);
}

size_t CrfModel::WeightDim() const {
  const size_t L = num_labels();
  return num_features() * L + L * L + 2 * L;
}

void CrfModel::UnigramScores(const CompiledSequence& seq,
                             std::span<const double> w,
                             std::vector<double>* scores) const {
  const size_t L = num_labels();
  const size_t T = seq.length();
  scores->assign(T * L, 0.0);
  for (size_t t = 0; t < T; ++t) {
    double* row = scores->data() + t * L;
    for (int f : seq.features[t]) {
      // Ids must come from this model's dictionary (a stale
      // CompiledCorpus bound to another generation would stray here).
      PAE_DCHECK_GE(f, 0);
      PAE_DCHECK_LT(static_cast<size_t>(f), num_features());
      const double* wf = w.data() + static_cast<size_t>(f) * L;
      for (size_t y = 0; y < L; ++y) row[y] += wf[y];
    }
  }
}

double CrfModel::ForwardBackward(const CompiledSequence& seq,
                                 const std::vector<double>& scores,
                                 std::span<const double> w,
                                 std::vector<double>* alpha,
                                 std::vector<double>* beta) const {
  const size_t L = num_labels();
  const size_t T = seq.length();
  PAE_DCHECK_GT(T, 0u);
  const double* trans = w.data() + TransBase();
  const double* start = w.data() + StartBase();
  const double* end = w.data() + EndBase();

  alpha->assign(T * L, 0.0);
  beta->assign(T * L, 0.0);
  std::vector<double> tmp(L);

  // Forward.
  for (size_t y = 0; y < L; ++y) {
    (*alpha)[y] = start[y] + scores[y];
  }
  for (size_t t = 1; t < T; ++t) {
    for (size_t y = 0; y < L; ++y) {
      for (size_t yp = 0; yp < L; ++yp) {
        tmp[yp] = (*alpha)[(t - 1) * L + yp] + trans[yp * L + y];
      }
      (*alpha)[t * L + y] = math::LogSumExp(tmp) + scores[t * L + y];
    }
  }

  // Backward.
  for (size_t y = 0; y < L; ++y) {
    (*beta)[(T - 1) * L + y] = end[y];
  }
  for (size_t t = T - 1; t > 0; --t) {
    for (size_t yp = 0; yp < L; ++yp) {
      for (size_t y = 0; y < L; ++y) {
        tmp[y] = trans[yp * L + y] + scores[t * L + y] + (*beta)[t * L + y];
      }
      (*beta)[(t - 1) * L + yp] = math::LogSumExp(tmp);
    }
  }

  for (size_t y = 0; y < L; ++y) {
    tmp[y] = (*alpha)[(T - 1) * L + y] + end[y];
  }
  return math::LogSumExp(tmp);
}

double CrfModel::SequenceNll(const CompiledSequence& seq,
                             std::span<const double> w,
                             std::vector<double>* grad) const {
  const size_t L = num_labels();
  const size_t T = seq.length();
  PAE_DCHECK_EQ(seq.labels.size(), T);
  PAE_DCHECK_EQ(w.size(), WeightDim());
  PAE_DCHECK_EQ(grad->size(), WeightDim());

  std::vector<double> scores, alpha, beta;
  UnigramScores(seq, w, &scores);
  const double log_z = ForwardBackward(seq, scores, w, &alpha, &beta);
  // A non-finite partition function here means the weights (or a
  // feature score) already went NaN/inf upstream — fail at the source
  // instead of poisoning the whole gradient.
  PAE_DCHECK_FINITE(log_z);

  const double* trans = w.data() + TransBase();
  const double* start = w.data() + StartBase();
  const double* end = w.data() + EndBase();
  double* g_trans = grad->data() + TransBase();
  double* g_start = grad->data() + StartBase();
  double* g_end = grad->data() + EndBase();

  // Gold score and empirical counts (subtracted from gradient).
  double gold = start[static_cast<size_t>(seq.labels[0])];
  for (size_t t = 0; t < T; ++t) {
    const size_t y = static_cast<size_t>(seq.labels[t]);
    gold += scores[t * L + y];
    for (int f : seq.features[t]) {
      (*grad)[static_cast<size_t>(f) * L + y] -= 1.0;
    }
    if (t > 0) {
      const size_t yp = static_cast<size_t>(seq.labels[t - 1]);
      g_trans[yp * L + y] -= 1.0;
      gold += trans[yp * L + y];
    }
  }
  gold += end[static_cast<size_t>(seq.labels[T - 1])];
  g_start[static_cast<size_t>(seq.labels[0])] -= 1.0;
  g_end[static_cast<size_t>(seq.labels[T - 1])] -= 1.0;

  // Expected counts (added to gradient).
  std::vector<double> marg(L);
  for (size_t t = 0; t < T; ++t) {
    for (size_t y = 0; y < L; ++y) {
      marg[y] = std::exp(alpha[t * L + y] + beta[t * L + y] - log_z);
    }
    for (int f : seq.features[t]) {
      double* gf = grad->data() + static_cast<size_t>(f) * L;
      for (size_t y = 0; y < L; ++y) gf[y] += marg[y];
    }
    if (t == 0) {
      for (size_t y = 0; y < L; ++y) g_start[y] += marg[y];
    }
    if (t == T - 1) {
      for (size_t y = 0; y < L; ++y) g_end[y] += marg[y];
    }
  }
  // Pairwise expectations for transitions.
  for (size_t t = 1; t < T; ++t) {
    for (size_t yp = 0; yp < L; ++yp) {
      const double a = alpha[(t - 1) * L + yp];
      for (size_t y = 0; y < L; ++y) {
        const double logp = a + trans[yp * L + y] + scores[t * L + y] +
                            beta[t * L + y] - log_z;
        g_trans[yp * L + y] += std::exp(logp);
      }
    }
  }
  PAE_DCHECK_FINITE(gold);
  return log_z - gold;
}

void CrfModel::Marginals(const CompiledSequence& seq,
                         std::span<const double> w,
                         std::vector<double>* out) const {
  const size_t L = num_labels();
  const size_t T = seq.length();
  std::vector<double> scores, alpha, beta;
  UnigramScores(seq, w, &scores);
  const double log_z = ForwardBackward(seq, scores, w, &alpha, &beta);
  out->assign(T * L, 0.0);
  for (size_t i = 0; i < T * L; ++i) {
    (*out)[i] = std::exp(alpha[i] + beta[i] - log_z);
  }
}

std::vector<int> CrfModel::Viterbi(const CompiledSequence& seq,
                                   std::span<const double> w) const {
  const size_t L = num_labels();
  const size_t T = seq.length();
  if (T == 0) return {};
  std::vector<double> scores;
  UnigramScores(seq, w, &scores);
  const double* trans = w.data() + TransBase();
  const double* start = w.data() + StartBase();
  const double* end = w.data() + EndBase();

  std::vector<double> delta(T * L, 0.0);
  std::vector<int> back(T * L, 0);
  for (size_t y = 0; y < L; ++y) delta[y] = start[y] + scores[y];
  for (size_t t = 1; t < T; ++t) {
    for (size_t y = 0; y < L; ++y) {
      double best = -1e300;
      int best_prev = 0;
      for (size_t yp = 0; yp < L; ++yp) {
        const double v = delta[(t - 1) * L + yp] + trans[yp * L + y];
        if (v > best) {
          best = v;
          best_prev = static_cast<int>(yp);
        }
      }
      delta[t * L + y] = best + scores[t * L + y];
      back[t * L + y] = best_prev;
    }
  }
  double best = -1e300;
  int best_y = 0;
  for (size_t y = 0; y < L; ++y) {
    const double v = delta[(T - 1) * L + y] + end[y];
    if (v > best) {
      best = v;
      best_y = static_cast<int>(y);
    }
  }
  std::vector<int> path(T);
  path[T - 1] = best_y;
  for (size_t t = T - 1; t > 0; --t) {
    path[t - 1] = back[t * L + static_cast<size_t>(path[t])];
  }
  return path;
}

}  // namespace pae::crf
