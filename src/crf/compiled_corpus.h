#ifndef PAE_CRF_COMPILED_CORPUS_H_
#define PAE_CRF_COMPILED_CORPUS_H_

#include <cstdint>
#include <vector>

#include "crf/crf_model.h"
#include "crf/feature_extractor.h"
#include "text/labeled_sequence.h"
#include "util/interner.h"

namespace pae::crf {

/// Feature-compilation cache for repeated tagging of a fixed sentence
/// set — the bootstrap loop's dominant pattern: every Tagger–Cleaner
/// cycle retrains the CRF and re-tags the *same* unlabeled sentences.
///
/// Feature *extraction* (the string template) depends only on the
/// FeatureConfig, never on the trained model, so it is done exactly
/// once per corpus: `Build` encodes every sentence through the
/// allocation-free `FeatureEncoder` and interns each feature into a
/// corpus-level dictionary, leaving one flat array of corpus-space
/// feature ids.
///
/// Feature *ids* depend on the model's dictionary, which changes every
/// time the tagger retrains. `Bind` recomputes the corpus-id →
/// model-id remap once per tagger generation (keyed by
/// `CrfTagger::Generation()`); `Materialize` then compiles any sentence
/// with a remap gather — no hashing, no string formatting, no
/// allocation beyond the output vectors.
///
/// Thread contract: `Build` and `Bind` mutate and must run outside any
/// parallel region; `Materialize` is const and safe to call from many
/// threads once bound.
class CompiledCorpus {
 public:
  /// Extracts and interns the features of every sentence. Pointers must
  /// stay valid while the cache is used. Deterministic: the corpus
  /// dictionary depends only on the sentence order and the config.
  void Build(std::vector<const text::LabeledSequence*> sentences,
             const FeatureConfig& config);

  size_t size() const { return sentence_begin_.empty()
                            ? 0
                            : sentence_begin_.size() - 1; }
  bool built() const { return !sentence_begin_.empty(); }
  /// Distinct features across the corpus (the dictionary size).
  size_t num_corpus_features() const { return features_.size(); }

  /// Recomputes the corpus→model feature remap unless `generation`
  /// matches the one already bound.
  void Bind(const CrfModel& model, uint64_t generation);

  /// Compiles sentence `i` into `out` (reused — buffers keep their
  /// capacity across calls). Features the bound model does not know are
  /// skipped, exactly like string-based compilation. Labels are not
  /// filled (tagging-side cache).
  void Materialize(size_t i, CompiledSequence* out) const;

 private:
  FeatureConfig config_;
  FeatureEncoder encoder_;
  util::FlatStringInterner features_;
  /// Sentence i's tokens are [sentence_begin_[i], sentence_begin_[i+1])
  /// in token space; token j's features are [token_begin_[j],
  /// token_begin_[j+1]) in ids_.
  std::vector<uint32_t> sentence_begin_;
  std::vector<uint32_t> token_begin_;
  std::vector<int32_t> ids_;  // corpus-space feature ids, flattened
  /// Corpus feature id → bound model's feature id (-1 = unknown).
  std::vector<int32_t> remap_;
  uint64_t bound_generation_ = UINT64_MAX;
  bool bound_ = false;
};

}  // namespace pae::crf

#endif  // PAE_CRF_COMPILED_CORPUS_H_
