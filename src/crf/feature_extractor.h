#ifndef PAE_CRF_FEATURE_EXTRACTOR_H_
#define PAE_CRF_FEATURE_EXTRACTOR_H_

#include <string>
#include <vector>

#include "text/labeled_sequence.h"

namespace pae::crf {

/// The paper's CRF feature template (§VI-D): for a token at position t,
/// the word w[t]; the words in a window of size K around w[t]; the PoS
/// tags of those words; the concatenation of the PoS tags of the window;
/// and the sentence number.
struct FeatureConfig {
  int window = 2;  // K

  /// Caps the sentence-number feature so sentence ids beyond this bucket
  /// share one feature (long descriptions otherwise explode the space).
  int max_sentence_bucket = 8;
};

/// Generates the string features for every position of `seq`.
/// `out->at(t)` holds the feature strings active at position t.
void ExtractFeatures(const text::LabeledSequence& seq,
                     const FeatureConfig& config,
                     std::vector<std::vector<std::string>>* out);

}  // namespace pae::crf

#endif  // PAE_CRF_FEATURE_EXTRACTOR_H_
