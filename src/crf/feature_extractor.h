#ifndef PAE_CRF_FEATURE_EXTRACTOR_H_
#define PAE_CRF_FEATURE_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <vector>

#include "text/labeled_sequence.h"
#include "util/logging.h"

namespace pae::crf {

/// The paper's CRF feature template (§VI-D): for a token at position t,
/// the word w[t]; the words in a window of size K around w[t]; the PoS
/// tags of those words; the concatenation of the PoS tags of the window;
/// and the sentence number.
struct FeatureConfig {
  int window = 2;  // K

  /// Caps the sentence-number feature so sentence ids beyond this bucket
  /// share one feature (long descriptions otherwise explode the space).
  int max_sentence_bucket = 8;
};

/// Generates the string features for every position of `seq`.
/// `out->at(t)` holds the feature strings active at position t.
///
/// This is the straightforward string-materializing implementation. The
/// hot paths use `FeatureEncoder` below instead; this function is kept
/// as the reference implementation the golden byte-equality tests
/// compare the allocation-free pipeline against
/// (tests/feature_pipeline_test.cc).
void ExtractFeatures(const text::LabeledSequence& seq,
                     const FeatureConfig& config,
                     std::vector<std::vector<std::string>>* out);

/// Allocation-free encoder for the same feature template.
///
/// Instead of materializing every feature as its own `std::string`,
/// `Encode` formats each feature into one reusable scratch buffer and
/// hands it to the caller as a `std::string_view` — the caller interns
/// or looks it up before the next feature overwrites the buffer. After
/// the first few sentences warm the buffers up, a sentence encodes with
/// zero heap allocations.
///
/// Feature order per position is byte-identical to `ExtractFeatures`:
/// w[0], then for d = -K..K the window word (d ≠ 0) and PoS tag, then
/// the PoS-window concatenation, then the sentence bucket.
///
/// An encoder is cheap but stateful scratch — use one per thread
/// (`thread_local` in the tagger hot paths), never share one across
/// threads.
class FeatureEncoder {
 public:
  FeatureEncoder() = default;
  explicit FeatureEncoder(const FeatureConfig& config) { Reset(config); }

  /// Adopts `config`, rebuilding the per-offset prefix strings only if
  /// the window size actually changed (cheap to call per sentence).
  void Reset(const FeatureConfig& config);

  /// Calls `emit(t, feature)` for every feature of every position t of
  /// `seq`, in the reference order. The `std::string_view` argument is
  /// only valid for the duration of that call.
  template <typename Emit>
  void Encode(const text::LabeledSequence& seq, Emit&& emit) {
    PAE_CHECK_EQ(seq.tokens.size(), seq.pos.size());
    const int n = static_cast<int>(seq.tokens.size());
    const int k = config_.window;
    PrepareSentenceFeature(seq.sentence_index);
    for (int t = 0; t < n; ++t) {
      // w[t] itself. Each scratch buffer keeps its "w[d]=" / "p[d]="
      // prefix permanently: resizing down to the prefix preserves those
      // bytes (and the capacity), so only the token bytes are copied.
      Scratch& w0 = word_scratch_[static_cast<size_t>(k)];
      w0.buf.resize(w0.prefix);
      w0.buf.append(seq.tokens[static_cast<size_t>(t)]);
      emit(static_cast<size_t>(t), std::string_view(w0.buf));
      // Window words and their PoS tags; the PoS-window concatenation
      // accumulates directly behind pwin_buf_'s "pwin=" prefix.
      pwin_buf_.resize(kPwinPrefix);
      for (int d = -k; d <= k; ++d) {
        const std::string& w = TokenAt(seq.tokens, t + d);
        const std::string& p = TokenAt(seq.pos, t + d);
        if (d != 0) {
          Scratch& sw = word_scratch_[static_cast<size_t>(d + k)];
          sw.buf.resize(sw.prefix);
          sw.buf.append(w);
          emit(static_cast<size_t>(t), std::string_view(sw.buf));
        }
        Scratch& sp = pos_scratch_[static_cast<size_t>(d + k)];
        sp.buf.resize(sp.prefix);
        sp.buf.append(p);
        emit(static_cast<size_t>(t), std::string_view(sp.buf));
        if (pwin_buf_.size() > kPwinPrefix) pwin_buf_.push_back('|');
        pwin_buf_.append(p);
      }
      emit(static_cast<size_t>(t), std::string_view(pwin_buf_));
      emit(static_cast<size_t>(t), std::string_view(sent_feature_));
    }
  }

  const FeatureConfig& config() const { return config_; }

 private:
  /// A reusable feature buffer whose first `prefix` bytes are the
  /// constant feature prefix.
  struct Scratch {
    std::string buf;
    size_t prefix = 0;
  };
  static constexpr size_t kPwinPrefix = 5;  // strlen("pwin=")

  static const std::string& TokenAt(const std::vector<std::string>& v, int i);
  /// Re-renders the "sent=<bucket>" feature when the bucket changes.
  void PrepareSentenceFeature(int sentence_index);

  FeatureConfig config_;
  bool initialized_ = false;
  /// Index d + window → scratch pre-filled with "w[d]=" / "p[d]=".
  std::vector<Scratch> word_scratch_;
  std::vector<Scratch> pos_scratch_;
  std::string pwin_buf_;  // "pwin=" + PoS-window concatenation
  std::string sent_feature_;
  int sent_bucket_ = -1;
};

}  // namespace pae::crf

#endif  // PAE_CRF_FEATURE_EXTRACTOR_H_
