#include "crf/compiled_corpus.h"

#include "util/logging.h"

namespace pae::crf {

void CompiledCorpus::Build(
    std::vector<const text::LabeledSequence*> sentences,
    const FeatureConfig& config) {
  // The previous build's dictionary size is the best available estimate
  // for the rebuilt one: across bootstrap iterations the sentence sample
  // changes but the feature vocabulary barely does.
  const size_t previous_features = features_.size();
  config_ = config;
  encoder_.Reset(config);
  features_ = util::FlatStringInterner();
  features_.Reserve(previous_features);
  sentence_begin_.clear();
  token_begin_.clear();
  ids_.clear();
  remap_.clear();
  bound_ = false;
  bound_generation_ = UINT64_MAX;

  // The template emits a fixed feature count per position: w[0] (1),
  // window words (2K), window PoS tags (2K + 1), pwin (1), sent (1).
  const uint32_t feats_per_token =
      static_cast<uint32_t>(4 * config_.window + 4);

  // Emission counts are exact up front (fixed per-token arity), so the
  // two big flat arrays get one allocation each.
  size_t total_tokens = 0;
  for (const text::LabeledSequence* seq : sentences) {
    PAE_CHECK(seq != nullptr);
    total_tokens += seq->tokens.size();
  }
  ids_.reserve(total_tokens * feats_per_token);
  token_begin_.reserve(total_tokens + 1);
  sentence_begin_.reserve(sentences.size() + 1);
  sentence_begin_.push_back(0);
  token_begin_.push_back(0);
  for (const text::LabeledSequence* seq : sentences) {
    PAE_CHECK(seq != nullptr);
    encoder_.Encode(*seq, [&](size_t /*t*/, std::string_view feature) {
      ids_.push_back(features_.Intern(feature));
    });
    uint32_t cursor = token_begin_.back();
    for (size_t t = 0; t < seq->tokens.size(); ++t) {
      cursor += feats_per_token;
      token_begin_.push_back(cursor);
    }
    PAE_DCHECK_EQ(static_cast<size_t>(cursor), ids_.size());
    sentence_begin_.push_back(
        static_cast<uint32_t>(token_begin_.size() - 1));
  }
}

void CompiledCorpus::Bind(const CrfModel& model, uint64_t generation) {
  PAE_CHECK(built());
  if (bound_ && generation == bound_generation_) return;
  remap_.resize(features_.size());
  for (size_t id = 0; id < features_.size(); ++id) {
    remap_[id] = model.LookupFeature(features_.key(static_cast<int>(id)));
    // LookupFeature returns -1 (unknown) or a dense id inside the bound
    // model's dictionary; anything else would scatter out of bounds in
    // UnigramScores.
    PAE_DCHECK_GE(remap_[id], -1);
    PAE_DCHECK_LT(remap_[id], static_cast<int32_t>(model.num_features()));
  }
  bound_generation_ = generation;
  bound_ = true;
}

void CompiledCorpus::Materialize(size_t i, CompiledSequence* out) const {
  PAE_DCHECK(bound_);
  PAE_DCHECK_LT(i, size());
  PAE_DCHECK_EQ(remap_.size(), features_.size());
  const size_t tok_lo = sentence_begin_[i];
  const size_t tok_hi = sentence_begin_[i + 1];
  PAE_DCHECK_LE(tok_lo, tok_hi);
  PAE_DCHECK_LT(tok_hi, token_begin_.size());
  const size_t n = tok_hi - tok_lo;
  out->labels.clear();
  out->features.resize(n);
  for (size_t t = 0; t < n; ++t) {
    std::vector<int>& feats = out->features[t];
    feats.clear();
    const size_t lo = token_begin_[tok_lo + t];
    const size_t hi = token_begin_[tok_lo + t + 1];
    for (size_t j = lo; j < hi; ++j) {
      const int32_t mapped = remap_[static_cast<size_t>(ids_[j])];
      if (mapped >= 0) feats.push_back(mapped);
    }
  }
}

}  // namespace pae::crf
