#include "crf/owlqn.h"

#include <cmath>
#include <deque>

#include "util/logging.h"

namespace pae::crf {

namespace {

double L1Norm(const std::vector<double>& x) {
  double s = 0;
  for (double v : x) s += std::fabs(v);
  return s;
}

double InfNorm(const std::vector<double>& x) {
  double m = 0;
  for (double v : x) m = std::max(m, std::fabs(v));
  return m;
}

double DotD(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// Pseudo-gradient of f(x) + C||x||_1 (Andrew & Gao, eq. 4).
void PseudoGradient(const std::vector<double>& x,
                    const std::vector<double>& grad, double c,
                    std::vector<double>* pg) {
  pg->resize(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0) {
      (*pg)[i] = grad[i] + c;
    } else if (x[i] < 0) {
      (*pg)[i] = grad[i] - c;
    } else {
      if (grad[i] + c < 0) {
        (*pg)[i] = grad[i] + c;  // can decrease by moving positive
      } else if (grad[i] - c > 0) {
        (*pg)[i] = grad[i] - c;  // can decrease by moving negative
      } else {
        (*pg)[i] = 0;
      }
    }
  }
}

}  // namespace

Status MinimizeOwlqn(const SmoothObjective& objective,
                     const OwlqnOptions& options, std::vector<double>* x,
                     OwlqnReport* report) {
  if (x->empty()) {
    return Status::InvalidArgument("OWL-QN: empty parameter vector");
  }
  const size_t n = x->size();
  const double c = options.l1_weight;
  const bool use_l1 = c > 0;

  std::vector<double> grad(n), pg(n), direction(n), x_new(n), grad_new(n);
  std::deque<std::vector<double>> s_list, y_list;
  std::deque<double> rho_list;

  double f = objective(*x, &grad);
  if (!std::isfinite(f)) {
    return Status::Internal("OWL-QN: objective not finite at start");
  }
  PAE_DCHECK_FINITE_VEC(grad) << "OWL-QN: gradient not finite at start";
  double obj = f + (use_l1 ? c * L1Norm(*x) : 0.0);

  report->iterations = 0;
  report->converged = false;
  report->objective_history.clear();
  report->grad_norm_history.clear();

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    if (use_l1) {
      PseudoGradient(*x, grad, c, &pg);
    } else {
      pg = grad;
    }
    const double pg_norm = InfNorm(pg);
    if (pg_norm < options.epsilon) {
      report->converged = true;
      break;
    }

    // Two-loop recursion: direction = -H * pg.
    direction = pg;
    std::vector<double> alpha(s_list.size());
    for (size_t i = s_list.size(); i-- > 0;) {
      alpha[i] = rho_list[i] * DotD(s_list[i], direction);
      for (size_t k = 0; k < n; ++k) direction[k] -= alpha[i] * y_list[i][k];
    }
    if (!s_list.empty()) {
      const auto& s_last = s_list.back();
      const auto& y_last = y_list.back();
      double scale = DotD(s_last, y_last) / DotD(y_last, y_last);
      for (double& v : direction) v *= scale;
    }
    for (size_t i = 0; i < s_list.size(); ++i) {
      double beta = rho_list[i] * DotD(y_list[i], direction);
      for (size_t k = 0; k < n; ++k) {
        direction[k] += (alpha[i] - beta) * s_list[i][k];
      }
    }
    for (double& v : direction) v = -v;

    if (use_l1) {
      // Constrain the direction to the orthant of -pg.
      for (size_t k = 0; k < n; ++k) {
        if (direction[k] * pg[k] >= 0) direction[k] = 0;
      }
    }

    double dir_deriv = DotD(direction, pg);
    if (dir_deriv >= 0) {
      // Not a descent direction; restart from steepest descent.
      s_list.clear();
      y_list.clear();
      rho_list.clear();
      for (size_t k = 0; k < n; ++k) direction[k] = -pg[k];
      dir_deriv = DotD(direction, pg);
      if (dir_deriv >= 0) break;  // pg == 0
    }

    // Backtracking (Armijo) line search with orthant projection.
    double step = (iter == 0) ? 1.0 / std::max(1.0, InfNorm(direction)) : 1.0;
    const double armijo_c = 1e-4;
    bool accepted = false;
    double obj_new = obj;
    for (int ls = 0; ls < options.max_linesearch; ++ls) {
      for (size_t k = 0; k < n; ++k) {
        x_new[k] = (*x)[k] + step * direction[k];
        if (use_l1) {
          // Project onto the orthant of x (or of -pg for x == 0).
          double orthant = ((*x)[k] != 0)
                               ? (*x)[k]
                               : -pg[k];
          if (x_new[k] * orthant < 0) x_new[k] = 0;
        }
      }
      double f_new = objective(x_new, &grad_new);
      obj_new = f_new + (use_l1 ? c * L1Norm(x_new) : 0.0);
      if (std::isfinite(obj_new) &&
          obj_new <= obj + armijo_c * step * dir_deriv) {
        accepted = true;
        break;
      }
      step *= 0.5;
    }
    if (!accepted) break;  // Line search failed: accept current solution.

    // Update L-BFGS history with smooth-gradient differences.
    std::vector<double> s(n), y(n);
    for (size_t k = 0; k < n; ++k) {
      s[k] = x_new[k] - (*x)[k];
      y[k] = grad_new[k] - grad[k];
    }
    double sy = DotD(s, y);
    if (sy > 1e-10) {
      s_list.push_back(std::move(s));
      y_list.push_back(std::move(y));
      rho_list.push_back(1.0 / sy);
      if (static_cast<int>(s_list.size()) > options.memory) {
        s_list.pop_front();
        y_list.pop_front();
        rho_list.pop_front();
      }
    }

    double improvement = obj - obj_new;
    PAE_DCHECK_FINITE_VEC(x_new)
        << "OWL-QN: accepted iterate contains non-finite weights";
    PAE_DCHECK_FINITE_VEC(grad_new)
        << "OWL-QN: accepted gradient contains non-finite entries";
    *x = x_new;
    grad = grad_new;
    obj = obj_new;
    report->iterations = iter + 1;
    report->objective_history.push_back(obj);
    report->grad_norm_history.push_back(pg_norm);
    if (improvement < options.epsilon * std::max(1.0, std::fabs(obj))) {
      report->converged = true;
      break;
    }
  }
  report->final_objective = obj;
  return Status::Ok();
}

}  // namespace pae::crf
