#ifndef PAE_CRF_CRF_TAGGER_H_
#define PAE_CRF_CRF_TAGGER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "crf/crf_model.h"
#include "crf/feature_extractor.h"
#include "crf/owlqn.h"
#include "text/sequence_tagger.h"

namespace pae::crf {

/// Training algorithm. The paper uses CRFsuite's default (L-BFGS with
/// L1+L2 = OWL-QN); AdaGrad is provided as the scalable alternative
/// CRFsuite also ships for large corpora.
enum class CrfTrainer {
  kOwlqn,
  kAdagrad,
};

/// Training configuration. Defaults follow the paper's setup (§VI-D):
/// L-BFGS with L1+L2 regularization and the standard CRFsuite-style
/// feature template.
struct CrfOptions {
  FeatureConfig features;
  CrfTrainer trainer = CrfTrainer::kOwlqn;
  double c1 = 0.05;         // L1 coefficient (OWL-QN only)
  double c2 = 1.0;          // L2 coefficient
  int max_iterations = 60;  // L-BFGS iterations / AdaGrad epochs
  double epsilon = 1e-3;
  double adagrad_learning_rate = 0.5;
  /// Features seen fewer times than this in training are dropped.
  int min_feature_count = 1;
  /// Threads for the per-sequence NLL/gradient accumulation (0 = all
  /// hardware threads, negative clamps to 1). The gradient reduction is
  /// sharded by a fixed decomposition of the training set, so trained
  /// weights are bit-identical for every thread count.
  int threads = 1;
};

/// A CRF model described by views into externally owned memory —
/// typically sections of an mmap'ed `.paez` artifact (built by
/// core/model_artifact). Labels are the one copied piece (a handful of
/// short strings); the feature table and the weight vector are used in
/// place. `owner` pins whatever backs the views (the file mapping) for
/// the tagger's lifetime.
struct PackedCrfModel {
  int32_t window = 0;
  int32_t max_sentence_bucket = 0;
  double c1 = 0;
  double c2 = 0;
  std::vector<std::string> labels;
  util::StringTableView features;
  std::span<const double> weights;
  std::shared_ptr<const void> owner;
};

/// Linear-chain CRF sequence tagger (the paper's primary model family).
class CrfTagger : public text::SequenceTagger {
 public:
  explicit CrfTagger(CrfOptions options = {});

  Status Train(const std::vector<text::LabeledSequence>& data) override;
  std::vector<std::string> Predict(
      const text::LabeledSequence& seq) const override;
  /// Viterbi labels with forward-backward marginal confidences.
  ScoredPrediction PredictScored(
      const text::LabeledSequence& seq) const override;
  /// Same, over an already-compiled sequence — the `CompiledCorpus`
  /// fast path: extraction and feature-id lookup were done by the cache,
  /// so this runs inference only. Produces byte-identical output to the
  /// string overload for an identically compiled sequence.
  ScoredPrediction PredictScored(const CompiledSequence& compiled) const;
  std::string Name() const override { return "crf"; }

  /// Monotonic counter bumped whenever the model or weights change
  /// (successful Train, Load, and a Compact that removed features).
  /// Compiled-sequence caches key their feature-id remaps on this.
  uint64_t Generation() const { return generation_; }

  /// Persists the trained model (labels, feature dictionary, weights,
  /// feature-template configuration) to `path`. FailedPrecondition on a
  /// packed (mmap-backed) tagger — the artifact on disk already *is*
  /// the serialized form.
  Status Save(const std::string& path) const;
  /// Restores a model previously written by Save (the legacy parse
  /// path: every table is copied into freshly allocated memory).
  Status Load(const std::string& path);
  /// Binds the tagger to a packed model without copying: the feature
  /// table and weights stay in `packed.owner`'s memory (an mmap'ed
  /// artifact), so "loading" costs label strings only. Predictions are
  /// byte-identical to the Load() path for the same model.
  Status LoadPacked(PackedCrfModel packed);
  /// True when backed by a packed artifact (Save/Compact unavailable).
  bool packed() const { return packed_; }

  /// Drops features whose weights are all exactly zero — OWL-QN's L1
  /// term produces many — shrinking the model file and the prediction
  /// feature lookups without changing any prediction. Returns the
  /// number of features removed.
  size_t Compact();

  /// Introspection for tests and diagnostics.
  const CrfOptions& options() const { return options_; }
  const CrfModel& model() const { return model_; }
  /// The owned weight vector — empty on a packed tagger; prefer
  /// weights_span() which is valid in both modes.
  const std::vector<double>& weights() const { return weights_; }
  /// The weights inference runs over: the owned vector after
  /// Train/Load/Compact, the mapped section after LoadPacked.
  std::span<const double> weights_span() const { return weights_span_; }
  const OwlqnReport& training_report() const { return report_; }
  bool trained() const { return trained_; }

 private:
  CompiledSequence Compile(const text::LabeledSequence& seq,
                           bool with_labels) const;
  /// Shared Viterbi + marginals path behind both PredictScored
  /// overloads.
  ScoredPrediction ScoreCompiled(const CompiledSequence& compiled) const;

  CrfOptions options_;
  CrfModel model_;
  std::vector<double> weights_;
  /// What inference actually reads; re-pointed whenever weights_ is
  /// rebuilt, or aimed at the mapped section by LoadPacked.
  std::span<const double> weights_span_;
  /// Pins the mapping backing weights_span_/packed features.
  std::shared_ptr<const void> packed_owner_;
  OwlqnReport report_;
  bool trained_ = false;
  bool packed_ = false;
  uint64_t generation_ = 0;
};

}  // namespace pae::crf

#endif  // PAE_CRF_CRF_TAGGER_H_
