#ifndef PAE_TEXT_NEGATION_H_
#define PAE_TEXT_NEGATION_H_

#include <string>
#include <vector>

#include "text/tokenizer.h"

namespace pae::text {

/// Sentence-scope negation detection. Definition 3.1 of the paper
/// requires that "this product does not include an Apple phone" yields
/// no <cellphone, brand, Apple> triple; the pipeline drops value spans
/// found in negated sentences when negation filtering is enabled.
///
/// The heuristic is deliberately simple (whole-sentence scope, cue-word
/// lexicon per language): negation cues are rare and overwhelmingly
/// sentence-final in merchant text, so finer scoping buys little.
class NegationDetector {
 public:
  explicit NegationDetector(Language language);

  /// True if the token sequence contains a negation cue.
  bool IsNegated(const std::vector<std::string>& tokens) const;

  /// The cue inventory for `language` (exposed for corpus builders).
  static const std::vector<std::string>& Cues(Language language);

 private:
  Language language_;
};

}  // namespace pae::text

#endif  // PAE_TEXT_NEGATION_H_
