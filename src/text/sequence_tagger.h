#ifndef PAE_TEXT_SEQUENCE_TAGGER_H_
#define PAE_TEXT_SEQUENCE_TAGGER_H_

#include <string>
#include <vector>

#include "text/labeled_sequence.h"
#include "util/status.h"

namespace pae::text {

/// Strategy interface over the two sequence-labeling model families the
/// paper evaluates (CRF, BiLSTM). The bootstrap Tagger module (§V-B)
/// programs against this interface only.
class SequenceTagger {
 public:
  virtual ~SequenceTagger() = default;

  /// Trains the model from scratch on `data` (labels required).
  virtual Status Train(const std::vector<LabeledSequence>& data) = 0;

  /// Predicts one BIO label per token. `seq.labels` is ignored.
  virtual std::vector<std::string> Predict(
      const LabeledSequence& seq) const = 0;

  /// A prediction with a per-token confidence in [0, 1]: the model's
  /// posterior for the emitted label (CRF marginals, LSTM softmax).
  struct ScoredPrediction {
    std::vector<std::string> labels;
    std::vector<double> confidence;
  };

  /// Like Predict but with confidences. The default implementation
  /// reports full confidence everywhere; models override it with their
  /// posteriors so the pipeline can trade coverage for precision
  /// (min_span_confidence).
  virtual ScoredPrediction PredictScored(const LabeledSequence& seq) const {
    ScoredPrediction out;
    out.labels = Predict(seq);
    out.confidence.assign(out.labels.size(), 1.0);
    return out;
  }

  /// Short model name for reports ("crf", "bilstm").
  virtual std::string Name() const = 0;
};

}  // namespace pae::text

#endif  // PAE_TEXT_SEQUENCE_TAGGER_H_
