#include "text/negation.h"

#include <unordered_set>

namespace pae::text {

namespace {

const std::vector<std::string>& JaCues() {
  static const auto* kCues = new std::vector<std::string>{
      "ない",       "ありません", "ではありません", "含まれません",
      "除く",       "以外",       "付属しません",   "非対応",
      "不可",       "なし"};
  return *kCues;
}

const std::vector<std::string>& DeCues() {
  static const auto* kCues = new std::vector<std::string>{
      "nicht", "kein", "keine", "keinen", "ohne", "ausgenommen",
      "exklusive"};
  return *kCues;
}

}  // namespace

NegationDetector::NegationDetector(Language language)
    : language_(language) {}

const std::vector<std::string>& NegationDetector::Cues(Language language) {
  return language == Language::kJa ? JaCues() : DeCues();
}

bool NegationDetector::IsNegated(
    const std::vector<std::string>& tokens) const {
  static const auto* kJaSet =
      new std::unordered_set<std::string>(JaCues().begin(), JaCues().end());
  static const auto* kDeSet =
      new std::unordered_set<std::string>(DeCues().begin(), DeCues().end());
  const auto& cues = language_ == Language::kJa ? *kJaSet : *kDeSet;
  for (const std::string& token : tokens) {
    if (cues.count(token) > 0) return true;
  }
  return false;
}

}  // namespace pae::text
