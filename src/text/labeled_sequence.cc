#include "text/labeled_sequence.h"

namespace pae::text {

bool ParseBioLabel(const std::string& label, std::string* attribute,
                   bool* begin) {
  if (label.size() < 3) return false;
  if (label[1] != '-') return false;
  if (label[0] == 'B') {
    *begin = true;
  } else if (label[0] == 'I') {
    *begin = false;
  } else {
    return false;
  }
  *attribute = label.substr(2);
  return true;
}

std::vector<ValueSpan> DecodeBioSpans(const std::vector<std::string>& labels) {
  std::vector<ValueSpan> spans;
  std::string attr;
  bool begin = false;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (!ParseBioLabel(labels[i], &attr, &begin)) continue;  // "O"
    const bool continues = !begin && !spans.empty() &&
                           spans.back().end == i &&
                           spans.back().attribute == attr;
    if (continues) {
      spans.back().end = i + 1;
    } else {
      spans.push_back(ValueSpan{attr, i, i + 1});
    }
  }
  return spans;
}

}  // namespace pae::text
