#include "text/fused_segmenter.h"

#include <algorithm>
#include <cctype>

#include "text/utf8.h"

namespace pae::text {

namespace {

constexpr size_t kInitialCacheSlots = 1024;        // power of two
constexpr size_t kMaxCachedSentences = size_t{1} << 17;

/// StripAsciiWhitespace trims bytes; trimming the raw sentence bytes is
/// equivalent to trimming decoded code points because every byte of a
/// multi-byte sequence is >= 0x80 and can never test as ASCII space.
bool IsAsciiSpaceByte(char c) {
  return static_cast<unsigned char>(c) < 128 &&
         std::isspace(static_cast<unsigned char>(c)) != 0;
}

bool IsDigitCp(char32_t cp) {
  return (cp >= U'0' && cp <= U'9') || (cp >= 0xFF10 && cp <= 0xFF19);
}

}  // namespace

FusedSegmenter::CacheEntry* FusedSegmenter::SentenceCache::FindOrInsert(
    std::string_view key, bool* inserted) {
  if (slots_.empty()) slots_.resize(kInitialCacheSlots);
  const uint64_t hash = std::hash<std::string_view>{}(key);
  size_t mask = slots_.size() - 1;
  size_t idx = static_cast<size_t>(hash) & mask;
  while (slots_[idx].entry != nullptr) {
    if (slots_[idx].hash == hash && slots_[idx].key == key) {
      *inserted = false;
      return slots_[idx].entry.get();
    }
    idx = (idx + 1) & mask;
  }
  if (count_ >= kMaxCachedSentences) {
    *inserted = false;
    return nullptr;
  }
  if ((count_ + 1) * 2 > slots_.size()) {
    Grow();
    mask = slots_.size() - 1;
    idx = static_cast<size_t>(hash) & mask;
    while (slots_[idx].entry != nullptr) idx = (idx + 1) & mask;
  }
  Slot& slot = slots_[idx];
  slot.hash = hash;
  slot.key.assign(key.data(), key.size());
  slot.entry = std::make_unique<CacheEntry>();
  ++count_;
  *inserted = true;
  return slot.entry.get();
}

void FusedSegmenter::SentenceCache::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(old.size() * 2);
  const size_t mask = slots_.size() - 1;
  for (Slot& slot : old) {
    if (slot.entry == nullptr) continue;
    size_t idx = static_cast<size_t>(slot.hash) & mask;
    while (slots_[idx].entry != nullptr) idx = (idx + 1) & mask;
    slots_[idx] = std::move(slot);
  }
}

FusedSegmenter::FusedSegmenter(
    Language lang, const std::vector<std::string>& tokenizer_lexicon,
    const PosLexicon& pos_lexicon)
    : ja_(lang == Language::kJa), pos_lexicon_(pos_lexicon) {
  if (!ja_) return;
  std::string round_trip;
  for (const std::string& word : tokenizer_lexicon) {
    if (word.empty()) continue;
    // CjkTokenizer takes its probe limit from every non-empty word, even
    // ones that could never match; mirror that before the filter below.
    max_word_cps_ = std::max(max_word_cps_, Utf8Length(word));
    const std::vector<char32_t> cps = DecodeUtf8(word);
    round_trip.clear();
    for (const char32_t cp : cps) AppendUtf8(cp, &round_trip);
    // The tokenizer compares lexicon entries against re-encoded spans, so
    // a word whose bytes do not round-trip through decoding can never
    // match and is safe to drop from the code-point set.
    if (round_trip != word) continue;
    if (cps.size() >= 2) {
      const size_t bit = std::min<size_t>(cps.size() - 2, 63);
      cjk_first_cp_lens_[cps[0]] |= uint64_t{1} << bit;
    }
    cjk_lexicon_.emplace(cps.begin(), cps.end());
  }
}

void FusedSegmenter::Segment(std::string_view text,
                             std::vector<LabeledSequence>* out,
                             Scratch* scratch,
                             std::vector<CacheEntry*>* entry_out) const {
  int sentence_index = static_cast<int>(out->size());

  auto emit = [&](size_t byte_begin, size_t byte_end) {
    while (byte_begin < byte_end && IsAsciiSpaceByte(text[byte_begin])) {
      ++byte_begin;
    }
    while (byte_end > byte_begin && IsAsciiSpaceByte(text[byte_end - 1])) {
      --byte_end;
    }
    if (byte_begin == byte_end) return;

    // Memo lookup by the trimmed sentence bytes — segmentation is a pure
    // function of them. Templated product pages repeat most sentences
    // corpus-wide, so a hit skips decode + tokenize + tag entirely and
    // copies byte-identical results.
    const std::string_view key =
        text.substr(byte_begin, byte_end - byte_begin);
    bool inserted = false;
    CacheEntry* entry = scratch->cache.FindOrInsert(key, &inserted);
    if (entry != nullptr && !inserted) {
      if (entry->cached.tokens.empty()) return;  // all-skip sentence
      LabeledSequence seq;
      seq.tokens = entry->cached.tokens;
      seq.pos = entry->cached.pos;
      seq.sentence_index = sentence_index++;
      out->push_back(std::move(seq));
      if (entry_out != nullptr) entry_out->push_back(entry);
      return;
    }

    // Miss: decode just this sentence. NextCodepoint is context-free, so
    // decoding the span equals the matching slice of a whole-page decode.
    scratch->cps.clear();
    scratch->byte_offsets.clear();
    scratch->all_valid = true;
    for (size_t pos = 0; pos < key.size();) {
      scratch->byte_offsets.push_back(static_cast<uint32_t>(pos));
      const size_t before = pos;
      const char32_t cp = NextCodepoint(key, &pos);
      scratch->cps.push_back(cp);
      // A decode failure consumes one byte; a genuine U+FFFD consumes
      // its canonical three. Everything NextCodepoint accepts re-encodes
      // to the exact input bytes (overlong forms are rejected).
      if (cp == kReplacementChar && pos - before != 3) {
        scratch->all_valid = false;
      }
    }
    scratch->byte_offsets.push_back(static_cast<uint32_t>(key.size()));
    const size_t m = scratch->cps.size();
    scratch->classes.resize(m);
    for (size_t i = 0; i < m; ++i) {
      scratch->classes[i] = ClassifyChar(scratch->cps[i]);
    }

    scratch->token_spans.clear();
    if (ja_) {
      TokenizeCjk(scratch, 0, m);
    } else {
      TokenizeLatin(scratch, 0, m);
    }
    const std::vector<std::pair<size_t, size_t>>& spans =
        scratch->token_spans;
    LabeledSequence seq;
    seq.tokens.reserve(spans.size());
    for (const auto& [tb, te] : spans) {
      std::string& token = seq.tokens.emplace_back();
      if (scratch->all_valid) {
        const uint32_t token_begin = scratch->byte_offsets[tb];
        token.assign(key.data() + token_begin,
                     scratch->byte_offsets[te] - token_begin);
      } else {
        for (size_t k = tb; k < te; ++k) {
          AppendUtf8(scratch->cps[k], &token);
        }
      }
    }
    seq.pos.reserve(spans.size());
    for (size_t t = 0; t < spans.size(); ++t) {
      seq.pos.push_back(TagToken(*scratch, seq.tokens[t], spans[t].first,
                                 spans[t].second));
    }
    if (entry != nullptr) {
      entry->cached.tokens = seq.tokens;
      entry->cached.pos = seq.pos;
    }
    if (seq.tokens.empty()) return;
    seq.sentence_index = sentence_index++;
    out->push_back(std::move(seq));
    if (entry_out != nullptr) entry_out->push_back(entry);
  };

  // SplitSentences boundary rules, walked over the raw bytes: every
  // NextCodepoint failure consumes exactly one byte, so byte positions
  // reached here are exactly the code-point boundaries of a whole-page
  // decode, and only the '.' rule needs the neighbor classes (which
  // deliberately cross sentence edges, hence the running prev_digit).
  size_t start = 0;
  bool prev_digit = false;
  for (size_t pos = 0; pos < text.size();) {
    const size_t cp_begin = pos;
    const char32_t cp = NextCodepoint(text, &pos);
    bool boundary = false;
    if (cp == U'\n' || cp == 0x3002 /* 。 */ || cp == U'!' || cp == U'?' ||
        cp == 0xFF01 /* ！ */ || cp == 0xFF1F /* ？ */) {
      boundary = true;
    } else if (cp == U'.') {
      bool digit_after = false;
      if (pos < text.size()) {
        size_t peek = pos;
        digit_after = IsDigitCp(NextCodepoint(text, &peek));
      }
      boundary = !(prev_digit && digit_after);
    }
    prev_digit = IsDigitCp(cp);
    if (boundary) {
      // The boundary code point belongs to the sentence unless it is a
      // newline, exactly as SplitSentences appends before flushing.
      emit(start, cp == U'\n' ? cp_begin : pos);
      start = pos;
    }
  }
  emit(start, text.size());
}

void FusedSegmenter::TokenizeLatin(Scratch* scratch, size_t begin,
                                   size_t end) const {
  const std::vector<char32_t>& cps = scratch->cps;
  const std::vector<CharClass>& classes = scratch->classes;
  std::vector<std::pair<size_t, size_t>>& spans = scratch->token_spans;

  size_t token_begin = begin;
  bool open = false;
  CharClass current_class = CharClass::kSpace;

  auto flush = [&](size_t stop) {
    if (!open) return;
    spans.emplace_back(token_begin, stop);
    open = false;
  };

  for (size_t i = begin; i < end; ++i) {
    const char32_t cp = cps[i];
    const CharClass cls = classes[i];
    if (cls == CharClass::kSpace) {
      flush(i);
      current_class = CharClass::kSpace;
      continue;
    }
    // A '.' or ',' between two digits stays inside the number token;
    // note current_class is intentionally left at kDigit.
    if (cls == CharClass::kSymbol && (cp == U'.' || cp == U',') &&
        current_class == CharClass::kDigit && i + 1 < end &&
        classes[i + 1] == CharClass::kDigit) {
      if (!open) {
        token_begin = i;
        open = true;
      }
      continue;
    }
    if (cls == CharClass::kSymbol) {
      flush(i);
      spans.emplace_back(i, i + 1);
      current_class = CharClass::kSymbol;
      continue;
    }
    const bool same_run =
        (cls == current_class) ||
        (cls == CharClass::kLatin && current_class == CharClass::kLatin);
    if (!same_run) flush(i);
    if (!open) {
      token_begin = i;
      open = true;
    }
    current_class = cls;
  }
  flush(end);
}

void FusedSegmenter::TokenizeCjk(Scratch* scratch, size_t begin,
                                 size_t end) const {
  const std::vector<char32_t>& cps = scratch->cps;
  const std::vector<CharClass>& classes = scratch->classes;
  std::vector<std::pair<size_t, size_t>>& spans = scratch->token_spans;

  auto push = [&](size_t tb, size_t te) { spans.emplace_back(tb, te); };
  auto run_end = [&](size_t from, CharClass cls) {
    size_t j = from;
    while (j < end && classes[j] == cls) ++j;
    return j;
  };

  size_t i = begin;
  while (i < end) {
    const CharClass cls = classes[i];
    switch (cls) {
      case CharClass::kSpace:
        ++i;
        break;
      case CharClass::kDigit:
      case CharClass::kLatin:
      case CharClass::kKatakana: {
        const size_t j = run_end(i, cls);
        push(i, j);
        i = j;
        break;
      }
      case CharClass::kHiragana:
      case CharClass::kCjk: {
        // Greedy longest match against the lexicon within the run. The
        // first-cp length mask skips every probe that cannot match, so
        // the common no-entry position costs one small-map lookup.
        const size_t j = run_end(i, cls);
        while (i < j) {
          size_t best = 1;
          const auto mask_it = cjk_first_cp_lens_.find(cps[i]);
          if (mask_it != cjk_first_cp_lens_.end()) {
            const uint64_t mask = mask_it->second;
            const size_t limit = std::min(max_word_cps_, j - i);
            for (size_t len = limit; len >= 2; --len) {
              const size_t bit = len - 2;
              if (bit < 63 && ((mask >> bit) & 1) == 0) continue;
              scratch->probe.assign(cps.data() + i, len);
              if (cjk_lexicon_.count(scratch->probe) > 0) {
                best = len;
                break;
              }
            }
          }
          push(i, i + best);
          i += best;
        }
        break;
      }
      case CharClass::kSymbol:
      case CharClass::kOther:
        push(i, i + 1);
        ++i;
        break;
    }
  }
}

std::string FusedSegmenter::TagToken(const Scratch& scratch,
                                     const std::string& token, size_t begin,
                                     size_t end) const {
  const auto it = pos_lexicon_.word_tags.find(token);
  if (it != pos_lexicon_.word_tags.end()) return it->second;

  const std::vector<char32_t>& cps = scratch.cps;
  const std::vector<CharClass>& classes = scratch.classes;
  if (begin == end) return std::string(kPosSymbol);

  bool all_digits = true;
  bool all_hiragana = true;
  for (size_t k = begin; k < end; ++k) {
    if (classes[k] != CharClass::kDigit) all_digits = false;
    if (classes[k] != CharClass::kHiragana) all_hiragana = false;
  }
  if (all_digits) return std::string(kPosNumber);
  // Latin numbers may keep an inner separator ("2,5"); still NUM.
  if (classes[begin] == CharClass::kDigit &&
      classes[end - 1] == CharClass::kDigit) {
    bool numeric = true;
    for (size_t k = begin; k < end; ++k) {
      if (classes[k] != CharClass::kDigit && cps[k] != U'.' &&
          cps[k] != U',') {
        numeric = false;
        break;
      }
    }
    if (numeric) return std::string(kPosNumber);
  }
  if (end - begin == 1 && (classes[begin] == CharClass::kSymbol ||
                           classes[begin] == CharClass::kOther)) {
    return std::string(kPosSymbol);
  }
  if (all_hiragana) return std::string(kPosParticle);
  return std::string(kPosNoun);
}

}  // namespace pae::text
