#ifndef PAE_TEXT_CHAR_CLASS_H_
#define PAE_TEXT_CHAR_CLASS_H_

#include <cstdint>

namespace pae::text {

/// Coarse Unicode character classes driving segmentation and the
/// PoS-tagger fallback rules.
enum class CharClass {
  kSpace,
  kDigit,        // ASCII and fullwidth digits
  kLatin,        // ASCII letters and Latin-1 letters (incl. umlauts)
  kHiragana,     // U+3040..U+309F
  kKatakana,     // U+30A0..U+30FF and halfwidth katakana
  kCjk,          // CJK unified ideographs
  kSymbol,       // punctuation and everything symbol-like
  kOther,
};

/// Classifies a single code point.
inline CharClass ClassifyChar(char32_t cp) {
  if (cp == U' ' || cp == U'\t' || cp == U'\n' || cp == U'\r' ||
      cp == 0x3000 /* ideographic space */) {
    return CharClass::kSpace;
  }
  if ((cp >= U'0' && cp <= U'9') || (cp >= 0xFF10 && cp <= 0xFF19)) {
    return CharClass::kDigit;
  }
  if ((cp >= U'A' && cp <= U'Z') || (cp >= U'a' && cp <= U'z') ||
      (cp >= 0x00C0 && cp <= 0x024F)) {  // Latin-1 supplement + extended
    return CharClass::kLatin;
  }
  if (cp >= 0x3040 && cp <= 0x309F) return CharClass::kHiragana;
  if ((cp >= 0x30A0 && cp <= 0x30FF) || (cp >= 0xFF66 && cp <= 0xFF9D)) {
    return CharClass::kKatakana;
  }
  if ((cp >= 0x4E00 && cp <= 0x9FFF) || (cp >= 0x3400 && cp <= 0x4DBF)) {
    return CharClass::kCjk;
  }
  if (cp < 0x80 || (cp >= 0x2000 && cp <= 0x206F) ||
      (cp >= 0x3001 && cp <= 0x303F) || (cp >= 0xFF00 && cp <= 0xFF65)) {
    return CharClass::kSymbol;  // remaining ASCII + general/CJK punctuation
  }
  return CharClass::kOther;
}

/// Returns a short stable name for the class ("digit", "latin", ...).
inline const char* CharClassName(CharClass c) {
  switch (c) {
    case CharClass::kSpace:
      return "space";
    case CharClass::kDigit:
      return "digit";
    case CharClass::kLatin:
      return "latin";
    case CharClass::kHiragana:
      return "hiragana";
    case CharClass::kKatakana:
      return "katakana";
    case CharClass::kCjk:
      return "cjk";
    case CharClass::kSymbol:
      return "symbol";
    case CharClass::kOther:
      return "other";
  }
  return "other";
}

}  // namespace pae::text

#endif  // PAE_TEXT_CHAR_CLASS_H_
