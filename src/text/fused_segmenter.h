#ifndef PAE_TEXT_FUSED_SEGMENTER_H_
#define PAE_TEXT_FUSED_SEGMENTER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "text/char_class.h"
#include "text/labeled_sequence.h"
#include "text/pos_tagger.h"
#include "text/tokenizer.h"

namespace pae::text {

/// Fused sentence-split + tokenize + PoS-tag with per-sentence
/// memoization.
///
/// The modular pipeline (SplitSentences -> Tokenizer::Tokenize ->
/// PosTagger::Tag) decodes the same text three times and materializes a
/// string per sentence that is thrown away immediately. This class walks
/// the page bytes once to find sentence boundaries, looks each trimmed
/// sentence up in a per-thread memo by its raw bytes, and only on a miss
/// decodes that one sentence and runs the exact token / tag state
/// machines over it. Product pages are heavily templated, so most
/// sentences recur corpus-wide and the common case is a memo hit that
/// copies byte-identical results. It is the text half of the streaming
/// ingestion hot path (core/ingest.h).
///
/// Equivalence contract, enforced by tests/stream_scanner_test.cc with
/// randomized differentials: Segment(text) produces exactly the
/// LabeledSequences that ProcessCorpus's loop
///   for s in SplitSentences(text): tokens = Tokenize(s);
///     if empty continue; pos = Tag(tokens); sentence_index++
/// produces, byte for byte, for both languages.
class FusedSegmenter {
 public:
  /// Tokens + tags of one distinct trimmed sentence. Segmentation is a
  /// pure function of the sentence bytes, so the cached copy is
  /// byte-identical to recomputing it.
  struct CachedSentence {
    std::vector<std::string> tokens;
    std::vector<std::string> pos;
  };

  /// One memo entry. `cookie` / `cookie_generation` are an opaque slot
  /// for callers that layer their own per-sentence caches on top of the
  /// memo — core/ingest stores one interner handle per token there, so
  /// repeated sentences skip interning too. The segmenter never reads
  /// them; callers must treat a generation mismatch as "not filled"
  /// (entries outlive whatever run-scoped state the cookie refers to).
  struct CacheEntry {
    CachedSentence cached;
    uint64_t cookie_generation = 0;
    std::vector<uint64_t> cookie;
  };

  /// Open-addressing sentence-bytes -> CacheEntry memo. Flat slots keep
  /// a lookup at one probe chain over (hash, key) pairs — roughly half
  /// the cache misses of a node-based unordered_map — and find + insert
  /// share a single hash computation. Entries are heap-allocated so the
  /// pointers FindOrInsert hands out stay valid across growth.
  class SentenceCache {
   public:
    /// Returns the entry for `key`, inserting an empty one if absent
    /// (*inserted reports which). Returns nullptr without inserting
    /// when the cache is full and `key` is absent — the caller simply
    /// recomputes, so adversarial corpora with unbounded distinct
    /// sentences cannot grow the memo without limit.
    CacheEntry* FindOrInsert(std::string_view key, bool* inserted);

    size_t size() const { return count_; }

   private:
    struct Slot {
      uint64_t hash = 0;
      std::string key;
      std::unique_ptr<CacheEntry> entry;  // empty slot iff nullptr
    };

    void Grow();

    std::vector<Slot> slots_;
    size_t count_ = 0;
  };

  /// Per-thread reusable buffers; Segment is const and thread-safe as
  /// long as each thread passes its own Scratch.
  struct Scratch {
    SentenceCache cache;
    /// Decoded code points / classes / byte offsets of the sentence
    /// currently being segmented (memo misses only). byte_offsets has a
    /// trailing end sentinel so token strings can be copied straight out
    /// of the sentence bytes instead of re-encoded.
    std::vector<char32_t> cps;
    std::vector<CharClass> classes;
    std::vector<uint32_t> byte_offsets;
    /// False if a byte sequence in the current sentence failed to
    /// decode; those positions re-encode differently (U+FFFD), so the
    /// byte-copy fast path is off for that sentence.
    bool all_valid = true;
    std::vector<std::pair<size_t, size_t>> token_spans;
    std::u32string probe;  // reusable lexicon-lookup key
  };

  /// `pos_lexicon` must outlive the segmenter (it is read per token).
  FusedSegmenter(Language lang,
                 const std::vector<std::string>& tokenizer_lexicon,
                 const PosLexicon& pos_lexicon);

  /// Appends the segmented sentences of `text` to `out`. If `entry_out`
  /// is non-null, appends one memo-entry pointer per appended sentence
  /// (null when the sentence was not cached because the memo is full),
  /// letting callers read or fill the entry cookies.
  void Segment(std::string_view text, std::vector<LabeledSequence>* out,
               Scratch* scratch,
               std::vector<CacheEntry*>* entry_out = nullptr) const;

 private:
  /// Both tokenizers emit spans into scratch->token_spans only; the
  /// caller materializes token strings afterwards with an exact reserve.
  void TokenizeLatin(Scratch* scratch, size_t begin, size_t end) const;
  void TokenizeCjk(Scratch* scratch, size_t begin, size_t end) const;
  std::string TagToken(const Scratch& scratch, const std::string& token,
                       size_t begin, size_t end) const;

  bool ja_ = false;
  const PosLexicon& pos_lexicon_;
  /// CjkTokenizer's greedy lexicon, pre-decoded so the span lookups do
  /// not re-encode candidate substrings. Words that do not round-trip
  /// through UTF-8 decoding could never match an encoded span and are
  /// dropped; max_word_cps_ mirrors CjkTokenizer exactly.
  std::unordered_set<std::u32string> cjk_lexicon_;
  /// First code point → bitmask of word lengths present in the lexicon
  /// (bit L-2 set iff some word of L code points starts with that cp;
  /// lengths ≥ 65 saturate into bit 63). The greedy matcher skips the
  /// probe for any length whose bit is clear — by far the common case —
  /// and skips the whole position when the first cp has no entry.
  std::unordered_map<char32_t, uint64_t> cjk_first_cp_lens_;
  size_t max_word_cps_ = 1;
};

}  // namespace pae::text

#endif  // PAE_TEXT_FUSED_SEGMENTER_H_
