#ifndef PAE_TEXT_UTF8_H_
#define PAE_TEXT_UTF8_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace pae::text {

/// Replacement character emitted for invalid byte sequences.
inline constexpr char32_t kReplacementChar = 0xFFFD;

/// Decodes the UTF-8 code point starting at `*pos` in `s` and advances
/// `*pos` past it. Invalid sequences consume one byte and yield
/// kReplacementChar. Precondition: *pos < s.size().
char32_t NextCodepoint(std::string_view s, size_t* pos);

/// Decodes a whole string; invalid bytes become kReplacementChar.
std::vector<char32_t> DecodeUtf8(std::string_view s);

/// Encodes one code point as UTF-8 and appends it to `out`.
void AppendUtf8(char32_t cp, std::string* out);

/// Encodes one code point as a UTF-8 string.
std::string EncodeUtf8(char32_t cp);

/// Encodes a code point sequence as a UTF-8 string.
std::string EncodeUtf8(const std::vector<char32_t>& cps);

/// Number of code points in `s`.
size_t Utf8Length(std::string_view s);

}  // namespace pae::text

#endif  // PAE_TEXT_UTF8_H_
