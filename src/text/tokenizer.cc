#include "text/tokenizer.h"

#include "text/char_class.h"
#include "text/utf8.h"

namespace pae::text {

const char* LanguageName(Language lang) {
  return lang == Language::kJa ? "ja" : "de";
}

std::vector<std::string> LatinTokenizer::Tokenize(
    std::string_view text) const {
  std::vector<char32_t> cps = DecodeUtf8(text);
  std::vector<std::string> tokens;
  std::string current;
  CharClass current_class = CharClass::kSpace;

  auto flush = [&]() {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };

  for (size_t i = 0; i < cps.size(); ++i) {
    const char32_t cp = cps[i];
    CharClass cls = ClassifyChar(cp);
    if (cls == CharClass::kSpace) {
      flush();
      current_class = CharClass::kSpace;
      continue;
    }
    // A '.' or ',' between two digits stays inside the number token.
    if (cls == CharClass::kSymbol && (cp == U'.' || cp == U',') &&
        current_class == CharClass::kDigit && i + 1 < cps.size() &&
        ClassifyChar(cps[i + 1]) == CharClass::kDigit) {
      AppendUtf8(cp, &current);
      continue;
    }
    if (cls == CharClass::kSymbol) {
      flush();
      tokens.push_back(EncodeUtf8(cp));
      current_class = CharClass::kSymbol;
      continue;
    }
    // Letters and digits: extend runs of the same class; treat Latin,
    // hiragana/katakana/CJK alike (they rarely occur in Latin text).
    const bool same_run =
        (cls == current_class) ||
        (cls == CharClass::kLatin && current_class == CharClass::kLatin);
    if (!same_run) flush();
    AppendUtf8(cp, &current);
    current_class = cls;
  }
  flush();
  return tokens;
}

CjkTokenizer::CjkTokenizer(const std::vector<std::string>& lexicon) {
  for (const std::string& word : lexicon) {
    if (word.empty()) continue;
    lexicon_.insert(word);
    size_t n = Utf8Length(word);
    if (n > max_word_cps_) max_word_cps_ = n;
  }
}

std::vector<std::string> CjkTokenizer::Tokenize(std::string_view text) const {
  std::vector<char32_t> cps = DecodeUtf8(text);
  std::vector<std::string> tokens;
  size_t i = 0;
  const size_t n = cps.size();

  auto run_end = [&](size_t start, CharClass cls) {
    size_t j = start;
    while (j < n && ClassifyChar(cps[j]) == cls) ++j;
    return j;
  };
  auto encode_range = [&](size_t b, size_t e) {
    std::string out;
    for (size_t k = b; k < e; ++k) AppendUtf8(cps[k], &out);
    return out;
  };

  while (i < n) {
    const char32_t cp = cps[i];
    const CharClass cls = ClassifyChar(cp);
    switch (cls) {
      case CharClass::kSpace:
        ++i;
        break;
      case CharClass::kDigit: {
        size_t j = run_end(i, CharClass::kDigit);
        tokens.push_back(encode_range(i, j));
        i = j;
        break;
      }
      case CharClass::kLatin: {
        size_t j = run_end(i, CharClass::kLatin);
        tokens.push_back(encode_range(i, j));
        i = j;
        break;
      }
      case CharClass::kKatakana: {
        size_t j = run_end(i, CharClass::kKatakana);
        tokens.push_back(encode_range(i, j));
        i = j;
        break;
      }
      case CharClass::kHiragana:
      case CharClass::kCjk: {
        // Greedy longest match against the lexicon within the run.
        size_t j = run_end(i, cls);
        while (i < j) {
          size_t best = 1;
          size_t limit = std::min(max_word_cps_, j - i);
          for (size_t len = limit; len >= 2; --len) {
            if (lexicon_.count(encode_range(i, i + len)) > 0) {
              best = len;
              break;
            }
          }
          tokens.push_back(encode_range(i, i + best));
          i += best;
        }
        break;
      }
      case CharClass::kSymbol:
      case CharClass::kOther:
        tokens.push_back(EncodeUtf8(cp));
        ++i;
        break;
    }
  }
  return tokens;
}

std::unique_ptr<Tokenizer> MakeTokenizer(
    Language lang, const std::vector<std::string>& lexicon) {
  if (lang == Language::kJa) {
    return std::make_unique<CjkTokenizer>(lexicon);
  }
  return std::make_unique<LatinTokenizer>();
}

}  // namespace pae::text
