#ifndef PAE_TEXT_VOCAB_H_
#define PAE_TEXT_VOCAB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/logging.h"

namespace pae::text {

/// Bidirectional string ↔ dense-id map shared by the ML modules.
/// Id 0 is reserved for the unknown token "<unk>".
class Vocab {
 public:
  Vocab() { GetOrAdd("<unk>"); }

  static constexpr int32_t kUnkId = 0;

  /// Returns the id for `word`, inserting it if absent.
  int32_t GetOrAdd(const std::string& word) {
    auto [it, inserted] =
        ids_.emplace(word, static_cast<int32_t>(words_.size()));
    if (inserted) words_.push_back(word);
    return it->second;
  }

  /// Returns the id for `word` or kUnkId if absent.
  int32_t Lookup(const std::string& word) const {
    auto it = ids_.find(word);
    return it == ids_.end() ? kUnkId : it->second;
  }

  /// True if `word` is present.
  bool Contains(const std::string& word) const { return ids_.count(word) > 0; }

  /// The word for `id`.
  const std::string& Word(int32_t id) const {
    PAE_CHECK_GE(id, 0);
    PAE_CHECK_LT(static_cast<size_t>(id), words_.size());
    return words_[id];
  }

  size_t size() const { return words_.size(); }

 private:
  std::unordered_map<std::string, int32_t> ids_;
  std::vector<std::string> words_;
};

}  // namespace pae::text

#endif  // PAE_TEXT_VOCAB_H_
