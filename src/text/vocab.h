#ifndef PAE_TEXT_VOCAB_H_
#define PAE_TEXT_VOCAB_H_

#include <cstdint>
#include <string_view>

#include "util/interner.h"
#include "util/logging.h"

namespace pae::text {

/// Bidirectional string ↔ dense-id map shared by the ML modules.
/// Id 0 is reserved for the unknown token "<unk>".
///
/// Backed by `util::FlatStringInterner`: every accessor takes a
/// `std::string_view`, so call sites that hold a token slice or a
/// scratch buffer look words up without constructing a `std::string`
/// temporary, and `Word()` returns a view into the interner's arena
/// (stable for the Vocab's lifetime).
class Vocab {
 public:
  Vocab() { GetOrAdd("<unk>"); }

  static constexpr int32_t kUnkId = 0;

  /// Returns the id for `word`, inserting it if absent.
  int32_t GetOrAdd(std::string_view word) {
    return static_cast<int32_t>(words_.Intern(word));
  }

  /// Returns the id for `word` or kUnkId if absent.
  int32_t Lookup(std::string_view word) const {
    const int id = words_.Find(word);
    return id < 0 ? kUnkId : static_cast<int32_t>(id);
  }

  /// True if `word` is present.
  bool Contains(std::string_view word) const { return words_.Find(word) >= 0; }

  /// The word for `id`. The view stays valid as long as this Vocab does
  /// (insertions never move stored keys).
  std::string_view Word(int32_t id) const {
    PAE_CHECK_GE(id, 0);
    PAE_CHECK_LT(static_cast<size_t>(id), words_.size());
    return words_.key(id);
  }

  size_t size() const { return words_.size(); }

  /// Pre-sizes for `expected_words` total words (the "<unk>" sentinel
  /// counts). Bulk builders with a known final size (model load paths,
  /// post-frequency-cut loops) skip the rehash storm entirely.
  void Reserve(size_t expected_words) { words_.Reserve(expected_words); }

  /// Flat export for the zero-copy model artifact (see
  /// FlatStringInterner::ExportPacked). A StringTableView over the
  /// exported buffers resolves Lookup()-equivalent ids.
  void ExportPacked(std::vector<util::PackedStringSlot>* slots,
                    std::vector<util::PackedStringKey>* keys,
                    std::string* arena) const {
    words_.ExportPacked(slots, keys, arena);
  }

 private:
  util::FlatStringInterner words_;
};

}  // namespace pae::text

#endif  // PAE_TEXT_VOCAB_H_
