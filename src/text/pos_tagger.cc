#include "text/pos_tagger.h"

#include "text/char_class.h"
#include "text/utf8.h"

namespace pae::text {

PosTagger::PosTagger(Language lang, PosLexicon lexicon)
    : lang_(lang), lexicon_(std::move(lexicon)) {}

std::string PosTagger::TagToken(const std::string& token) const {
  auto it = lexicon_.word_tags.find(token);
  if (it != lexicon_.word_tags.end()) return it->second;

  std::vector<char32_t> cps = DecodeUtf8(token);
  if (cps.empty()) return std::string(kPosSymbol);

  bool all_digits = true;
  bool all_hiragana = true;
  for (char32_t cp : cps) {
    CharClass cls = ClassifyChar(cp);
    if (cls != CharClass::kDigit) all_digits = false;
    if (cls != CharClass::kHiragana) all_hiragana = false;
  }
  if (all_digits) return std::string(kPosNumber);
  // Latin numbers may keep an inner separator ("2,5"); still NUM.
  if (ClassifyChar(cps[0]) == CharClass::kDigit &&
      ClassifyChar(cps.back()) == CharClass::kDigit) {
    bool numeric = true;
    for (char32_t cp : cps) {
      CharClass cls = ClassifyChar(cp);
      if (cls != CharClass::kDigit && cp != U'.' && cp != U',') {
        numeric = false;
        break;
      }
    }
    if (numeric) return std::string(kPosNumber);
  }
  if (cps.size() == 1 && (ClassifyChar(cps[0]) == CharClass::kSymbol ||
                          ClassifyChar(cps[0]) == CharClass::kOther)) {
    return std::string(kPosSymbol);
  }
  if (all_hiragana) return std::string(kPosParticle);
  return std::string(kPosNoun);
}

std::vector<std::string> PosTagger::Tag(
    const std::vector<std::string>& tokens) const {
  std::vector<std::string> tags;
  tags.reserve(tokens.size());
  for (const std::string& token : tokens) tags.push_back(TagToken(token));
  return tags;
}

}  // namespace pae::text
