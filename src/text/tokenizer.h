#ifndef PAE_TEXT_TOKENIZER_H_
#define PAE_TEXT_TOKENIZER_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace pae::text {

/// The two corpus languages of the evaluation (§VI-A). The tokenizer and
/// PoS tagger are the only language-specific components of the pipeline,
/// exactly as in the paper.
enum class Language { kJa, kDe };

/// Returns "ja" or "de".
const char* LanguageName(Language lang);

/// Splits raw text into surface tokens.
class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  /// Tokenizes one sentence (or any text span without sentence logic).
  virtual std::vector<std::string> Tokenize(std::string_view text) const = 0;
};

/// Whitespace + character-class tokenizer for space-separated languages.
/// Decimal points and thousands separators *between digits* stay inside
/// the number token ("2,5" and "1.299" are single tokens); any other
/// punctuation becomes a single-character token.
class LatinTokenizer : public Tokenizer {
 public:
  std::vector<std::string> Tokenize(std::string_view text) const override;
};

/// Dictionary + character-class tokenizer for unsegmented (Japanese-like)
/// text. Segmentation rules, mirroring a MeCab-style tokenizer's
/// behaviour as described in the paper:
///   * digit runs are one token, but '.' and ',' are always separate
///     tokens, so "1.5" tokenizes into three tokens (§V-A footnote 3);
///   * katakana runs and Latin runs are single tokens;
///   * CJK/hiragana runs are segmented by greedy longest match against
///     the lexicon, falling back to single characters;
///   * every symbol is a single token; whitespace is dropped.
class CjkTokenizer : public Tokenizer {
 public:
  /// `lexicon` lists known words (UTF-8) used for longest-match
  /// segmentation of ideograph/hiragana runs.
  explicit CjkTokenizer(const std::vector<std::string>& lexicon);

  std::vector<std::string> Tokenize(std::string_view text) const override;

 private:
  std::unordered_set<std::string> lexicon_;
  size_t max_word_cps_ = 1;  // longest lexicon entry, in code points
};

/// Factory selecting the tokenizer for `lang`. The lexicon is ignored by
/// the Latin tokenizer.
std::unique_ptr<Tokenizer> MakeTokenizer(
    Language lang, const std::vector<std::string>& lexicon);

}  // namespace pae::text

#endif  // PAE_TEXT_TOKENIZER_H_
