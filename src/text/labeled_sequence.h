#ifndef PAE_TEXT_LABELED_SEQUENCE_H_
#define PAE_TEXT_LABELED_SEQUENCE_H_

#include <string>
#include <vector>

namespace pae::text {

/// Label used for tokens outside any attribute value.
inline constexpr const char* kOutsideLabel = "O";

/// One tokenized sentence with parallel PoS tags and (for training data)
/// BIO labels: "O", "B-<attribute>", "I-<attribute>".
struct LabeledSequence {
  std::vector<std::string> tokens;
  std::vector<std::string> pos;
  std::vector<std::string> labels;

  /// Index of this sentence within its product page; a CRF feature
  /// (§VI-D lists "the sentence number" in the template).
  int sentence_index = 0;

  bool HasLabels() const { return labels.size() == tokens.size(); }
};

/// Builds a BIO label pair for an attribute ("B-colour", "I-colour").
inline std::string BeginLabel(const std::string& attribute) {
  return "B-" + attribute;
}
inline std::string InsideLabel(const std::string& attribute) {
  return "I-" + attribute;
}

/// True if `label` marks an attribute span; if so, *attribute receives
/// the attribute name and *begin whether it is a B- tag.
bool ParseBioLabel(const std::string& label, std::string* attribute,
                   bool* begin);

/// A contiguous value span decoded from a BIO-labeled sequence.
struct ValueSpan {
  std::string attribute;
  size_t begin = 0;  // token index, inclusive
  size_t end = 0;    // token index, exclusive
};

/// Decodes the maximal BIO spans of a label sequence. An I- tag without a
/// preceding compatible B-/I- tag starts a new span (standard BIO repair).
std::vector<ValueSpan> DecodeBioSpans(const std::vector<std::string>& labels);

}  // namespace pae::text

#endif  // PAE_TEXT_LABELED_SEQUENCE_H_
