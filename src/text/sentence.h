#ifndef PAE_TEXT_SENTENCE_H_
#define PAE_TEXT_SENTENCE_H_

#include <string>
#include <string_view>
#include <vector>

namespace pae::text {

/// Splits raw text into sentences. Boundaries: newline, '。', '!', '?',
/// fullwidth '！'/'？', and '.' when not between two digits (so decimal
/// numbers survive). Empty sentences are dropped; surrounding ASCII
/// whitespace is trimmed.
std::vector<std::string> SplitSentences(std::string_view text);

}  // namespace pae::text

#endif  // PAE_TEXT_SENTENCE_H_
