#include "text/utf8.h"

namespace pae::text {

char32_t NextCodepoint(std::string_view s, size_t* pos) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(s.data());
  size_t i = *pos;
  unsigned char b0 = bytes[i];

  auto fail = [&]() -> char32_t {
    *pos = i + 1;
    return kReplacementChar;
  };

  if (b0 < 0x80) {
    *pos = i + 1;
    return b0;
  }
  int len;
  char32_t cp;
  if ((b0 & 0xE0) == 0xC0) {
    len = 2;
    cp = b0 & 0x1F;
  } else if ((b0 & 0xF0) == 0xE0) {
    len = 3;
    cp = b0 & 0x0F;
  } else if ((b0 & 0xF8) == 0xF0) {
    len = 4;
    cp = b0 & 0x07;
  } else {
    return fail();
  }
  if (i + len > s.size()) return fail();
  for (int k = 1; k < len; ++k) {
    unsigned char b = bytes[i + k];
    if ((b & 0xC0) != 0x80) return fail();
    cp = (cp << 6) | (b & 0x3F);
  }
  // Reject overlong encodings and surrogates.
  static constexpr char32_t kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (cp < kMin[len] || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) {
    return fail();
  }
  *pos = i + len;
  return cp;
}

std::vector<char32_t> DecodeUtf8(std::string_view s) {
  std::vector<char32_t> out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) out.push_back(NextCodepoint(s, &pos));
  return out;
}

void AppendUtf8(char32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) cp = kReplacementChar;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

std::string EncodeUtf8(char32_t cp) {
  std::string out;
  AppendUtf8(cp, &out);
  return out;
}

std::string EncodeUtf8(const std::vector<char32_t>& cps) {
  std::string out;
  out.reserve(cps.size() * 3);
  for (char32_t cp : cps) AppendUtf8(cp, &out);
  return out;
}

size_t Utf8Length(std::string_view s) {
  size_t pos = 0, n = 0;
  while (pos < s.size()) {
    NextCodepoint(s, &pos);
    ++n;
  }
  return n;
}

}  // namespace pae::text
