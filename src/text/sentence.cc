#include "text/sentence.h"

#include "text/char_class.h"
#include "text/utf8.h"
#include "util/strings.h"

namespace pae::text {

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<char32_t> cps = DecodeUtf8(text);
  std::vector<std::string> sentences;
  std::string current;

  auto flush = [&]() {
    std::string_view trimmed = StripAsciiWhitespace(current);
    if (!trimmed.empty()) sentences.emplace_back(trimmed);
    current.clear();
  };

  for (size_t i = 0; i < cps.size(); ++i) {
    const char32_t cp = cps[i];
    bool boundary = false;
    if (cp == U'\n' || cp == 0x3002 /* 。 */ || cp == U'!' || cp == U'?' ||
        cp == 0xFF01 /* ！ */ || cp == 0xFF1F /* ？ */) {
      boundary = true;
    } else if (cp == U'.') {
      const bool digit_before =
          i > 0 && ClassifyChar(cps[i - 1]) == CharClass::kDigit;
      const bool digit_after =
          i + 1 < cps.size() && ClassifyChar(cps[i + 1]) == CharClass::kDigit;
      boundary = !(digit_before && digit_after);
    }
    if (boundary) {
      if (cp != U'\n') AppendUtf8(cp, &current);
      flush();
    } else {
      AppendUtf8(cp, &current);
    }
  }
  flush();
  return sentences;
}

}  // namespace pae::text
