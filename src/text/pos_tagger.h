#ifndef PAE_TEXT_POS_TAGGER_H_
#define PAE_TEXT_POS_TAGGER_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "text/tokenizer.h"

namespace pae::text {

/// Part-of-speech tags emitted by the rule/lexicon tagger. The CRF
/// feature template and the value-diversification module consume these
/// as opaque strings, so the inventory only needs to be stable.
inline constexpr std::string_view kPosNoun = "NN";
inline constexpr std::string_view kPosNumber = "NUM";
inline constexpr std::string_view kPosSymbol = "SYM";
inline constexpr std::string_view kPosUnit = "UNIT";
inline constexpr std::string_view kPosParticle = "PRT";
inline constexpr std::string_view kPosVerb = "VB";
inline constexpr std::string_view kPosAdjective = "ADJ";

/// Word → tag entries that override the class-based fallback rules.
/// Populated by the corpus generator (units, particles, verbs) — this is
/// the "existing PoS tagger" the paper treats as given per language.
struct PosLexicon {
  std::unordered_map<std::string, std::string> word_tags;
};

/// Deterministic rule + lexicon PoS tagger. Fallback rules:
/// lexicon hit → its tag; all-digit token → NUM; single symbol → SYM;
/// hiragana-only token → PRT; everything else → NN.
class PosTagger {
 public:
  PosTagger(Language lang, PosLexicon lexicon);

  /// Tags a full token sequence (one tag per token).
  std::vector<std::string> Tag(const std::vector<std::string>& tokens) const;

  /// Tags a single token.
  std::string TagToken(const std::string& token) const;

 private:
  Language lang_;
  PosLexicon lexicon_;
};

}  // namespace pae::text

#endif  // PAE_TEXT_POS_TAGGER_H_
