#include "datagen/generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "core/normalize.h"
#include "datagen/word_factory.h"
#include "text/negation.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"

namespace pae::datagen {

namespace {

uint64_t HashName(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// The per-product sampled value of one attribute.
struct ProductValue {
  int attr_index = -1;
  const AttributeSpec* attr = nullptr;
  std::string enum_display;  // kEnum / kRange: fixed display string
  double number = 0;         // kNumeric
  bool is_decimal = false;   // kNumeric
};

class CategoryGenerator {
 public:
  CategoryGenerator(const CategorySpec& spec, const GeneratorConfig& config)
      : spec_(spec),
        config_(config),
        rng_(config.seed ^ HashName(spec.name)),
        wf_(spec.language),
        ja_(spec.language == text::Language::kJa) {}

  GeneratedCategory Run();

 private:
  // ---- resources ----
  void Reg(const std::string& word) { lexicon_.insert(word); }
  void RegPos(const std::string& word, std::string_view tag) {
    lexicon_.insert(word);
    pos_lexicon_.word_tags[word] = std::string(tag);
  }
  void InitCommon();
  void RegisterSchema(const CategorySpec& s);

  // ---- value rendering ----
  ProductValue SampleValue(int attr_index, const AttributeSpec& attr);
  std::string RenderValue(const ProductValue& pv, bool for_table);
  std::string RenderRange(const AttributeSpec& attr);

  // ---- text building ----
  std::string Join(const std::vector<std::string>& tokens) const {
    return ja_ ? StrJoin(tokens, "") : StrJoin(tokens, " ");
  }
  std::string AttributeSentence(const std::string& surface,
                                const std::string& value, bool is_enum);
  std::string FillerSentence();
  std::string PickSurface(const AttributeSpec& attr);

  // ---- truth bookkeeping ----
  void AddTruth(const std::string& pid, const std::string& canonical,
                const std::string& value, bool correct,
                bool pair_valid = true);
  void MaybeLogQuery(const AttributeSpec& attr, const std::string& value);

  void GenerateProduct(int index);

  const CategorySpec& spec_;
  const GeneratorConfig& config_;
  Rng rng_;
  WordFactory wf_;
  const bool ja_;

  std::unordered_set<std::string> lexicon_;
  text::PosLexicon pos_lexicon_;
  std::vector<std::string> filler_nouns_;
  std::vector<std::string> commentary_words_;
  std::vector<std::string> product_nouns_;
  std::vector<std::string> decorations_;
  std::vector<std::pair<std::string, std::string>> junk_rows_;

  GeneratedCategory out_;
  std::unordered_set<std::string> truth_keys_;  // dedupe triple entries

  struct QueryCandidate {
    int mentions = 0;
    double query_prob = 0;
  };
  std::unordered_map<std::string, QueryCandidate> query_candidates_;

  /// normalized enum value → canonical attributes whose pool contains
  /// it. Used to judge cross-attribute assignments of shared values as
  /// incorrect (the annotator knowledge that makes heterogeneous
  /// categories measurably harder, §VIII-E).
  std::unordered_map<std::string, std::unordered_set<std::string>>
      enum_value_attrs_;
};

void CategoryGenerator::InitCommon() {
  for (const auto& w : wf_.FunctionWords()) {
    RegPos(w, text::kPosParticle);
  }
  for (const auto& w : wf_.Copulas()) RegPos(w, text::kPosVerb);
  for (const auto& cue : text::NegationDetector::Cues(
           ja_ ? text::Language::kJa : text::Language::kDe)) {
    Reg(cue);
  }
  for (const auto& u : wf_.Units()) RegPos(u, text::kPosUnit);

  // Filler/product noun pools.
  std::unordered_set<std::string> seen;
  while (filler_nouns_.size() < 22) {
    std::string w = ja_ ? (rng_.Bernoulli(0.5)
                               ? wf_.MakeNoun(&rng_, static_cast<int>(
                                                         rng_.NextInt(2, 4)))
                               : wf_.MakeIdeographWord(&rng_, 2))
                        : wf_.MakeNoun(&rng_, static_cast<int>(
                                                  rng_.NextInt(2, 3)));
    if (seen.insert(w).second) {
      filler_nouns_.push_back(w);
      Reg(w);
    }
  }
  while (product_nouns_.size() < 8) {
    std::string w = wf_.MakeNoun(&rng_, static_cast<int>(rng_.NextInt(3, 5)));
    if (seen.insert(w).second) {
      product_nouns_.push_back(w);
      Reg(w);
    }
  }
  // Commentary vocabulary: merchant opinions about attributes ("the
  // color is gorgeous"). A wide pool ensures the taggers keep meeting
  // unseen commentary words, which they drift onto as pseudo-values —
  // the error class the semantic cleaner removes (§VIII-B).
  if (ja_) {
    commentary_words_ = {"人気", "重要", "大切", "特別", "最高",
                         "魅力", "自慢", "評判"};
  } else {
    commentary_words_ = {"beliebt", "wichtig", "besonders", "hochwertig",
                         "elegant", "robust"};
  }
  while (commentary_words_.size() < 24) {
    std::string w = ja_ ? wf_.MakeIdeographWord(&rng_, 2)
                        : wf_.MakeNoun(&rng_, 2);
    if (seen.insert(w).second) commentary_words_.push_back(w);
  }
  for (const auto& w : commentary_words_) Reg(w);

  if (ja_) {
    for (const char* w :
         {"商品", "送料", "無料", "価格", "新品", "即納", "備考",
          "注意事項", "おすすめ", "円", "セール", "限定", "関連",
          "キーワード"}) {
      Reg(w);
    }
    RegPos("円", text::kPosUnit);
    decorations_ = {"送料無料", "新品", "即納", "セール", "限定"};
    for (const auto& d : decorations_) Reg(d);
    junk_rows_ = {
        {"備考", ""},          // value filled at render time
        {"注意事項", ""},
        {"送料", "無料"},
        {"お問い合わせ", "こちらまで"},
    };
    Reg("お問い合わせ");
    Reg("こちらまで");
    Reg("ください");
  } else {
    decorations_ = {"Neu", "Sale", "Gratisversand", "Top"};
    junk_rows_ = {
        {"Hinweis", ""},
        {"Versand", "kostenlos"},
        {"Lieferzeit", "3 Tage"},
    };
  }
}

void CategoryGenerator::RegisterSchema(const CategorySpec& s) {
  for (const auto& attr : s.attributes) {
    Reg(attr.canonical);
    out_.truth.attribute_aliases[attr.canonical] = attr.canonical;
    for (const auto& syn : attr.synonyms) {
      Reg(syn);
      out_.truth.attribute_aliases[syn] = attr.canonical;
    }
    for (const auto& v : attr.enum_values) {
      Reg(v);
      enum_value_attrs_[core::NormalizeValue(v)].insert(attr.canonical);
    }
    if (!attr.numeric.unit.empty()) {
      RegPos(attr.numeric.unit, text::kPosUnit);
    }
    bool known = false;
    for (const auto& name : out_.attribute_names) {
      if (name == attr.canonical) known = true;
    }
    if (!known) out_.attribute_names.push_back(attr.canonical);
  }
}

ProductValue CategoryGenerator::SampleValue(int attr_index,
                                            const AttributeSpec& attr) {
  ProductValue pv;
  pv.attr_index = attr_index;
  pv.attr = &attr;
  switch (attr.kind) {
    case ValueKind::kEnum:
      pv.enum_display = rng_.Pick(attr.enum_values);
      break;
    case ValueKind::kRange:
      pv.enum_display = RenderRange(attr);
      break;
    case ValueKind::kNumeric: {
      pv.is_decimal = rng_.Bernoulli(attr.numeric.decimal_prob_text);
      double raw = rng_.NextUniform(attr.numeric.min, attr.numeric.max);
      if (pv.is_decimal) {
        const double scale = std::pow(10.0, attr.numeric.decimals);
        pv.number = std::round(raw * scale) / scale;
        // Avoid decimals that round to .0 (they would print as decimals
        // with a trailing zero, which merchants do write, keep them).
      } else {
        pv.number = std::round(raw);
      }
      break;
    }
  }
  return pv;
}

std::string CategoryGenerator::RenderRange(const AttributeSpec& attr) {
  static const int kDenoms[] = {1000, 1250, 1600, 2000, 3200, 4000, 6000,
                                8000};
  static const int kSlows[] = {15, 30, 60};
  const int d = kDenoms[rng_.NextBounded(8)];
  const int n = kSlows[rng_.NextBounded(3)];
  const std::string& unit = attr.numeric.unit;  // 秒
  switch (rng_.NextBounded(3)) {
    case 0:
      return "1/" + std::to_string(d) + unit + "〜" + std::to_string(n) +
             unit;
    case 1:
      return "1/" + std::to_string(d);
    default:
      return "1〜1/" + std::to_string(d) + unit;
  }
}

std::string CategoryGenerator::RenderValue(const ProductValue& pv,
                                           bool for_table) {
  const AttributeSpec& attr = *pv.attr;
  if (attr.kind != ValueKind::kNumeric) return pv.enum_display;

  bool decimal = pv.is_decimal;
  if (for_table && decimal) {
    // Merchants round decimals away in spec tables with probability
    // 1 - decimal_prob_table (the §VIII-A lever).
    decimal = rng_.Bernoulli(attr.numeric.decimal_prob_table);
  }
  const double value = decimal ? pv.number : std::round(pv.number);
  const bool thousands =
      value >= 1000 && rng_.Bernoulli(attr.numeric.thousands_sep_prob);
  std::string number = wf_.FormatNumber(
      value, decimal ? attr.numeric.decimals : 0, thousands);
  if (attr.numeric.unit.empty()) return number;
  if (ja_) return number + attr.numeric.unit;
  return number + " " + attr.numeric.unit;
}

std::string CategoryGenerator::PickSurface(const AttributeSpec& attr) {
  if (attr.synonyms.empty() || rng_.Bernoulli(0.55)) return attr.canonical;
  return rng_.Pick(attr.synonyms);
}

std::string CategoryGenerator::AttributeSentence(const std::string& surface,
                                                 const std::string& value,
                                                 bool is_enum) {
  // Merchants in noisy categories more often drop the attribute name
  // and write bare-value sentences; those ambiguous contexts are what
  // drives tagger drift (and gives the cleaning modules work to do).
  // Numeric specs essentially always carry their label ("重量:2.5kg"),
  // so the bare form is only generated for named entities.
  const double value_only_prob =
      is_enum ? 0.12 + 0.5 * spec_.noise_level : 0.0;
  if (rng_.Bernoulli(value_only_prob)) {
    return ja_ ? Join({value, "の", rng_.Pick(filler_nouns_), "です", "。"})
               : Join({"Mit", value, rng_.Pick(filler_nouns_), "."});
  }
  if (ja_) {
    switch (rng_.NextBounded(4)) {
      case 0:
        return Join({surface, "は", value, "です", "。"});
      case 1:
        return Join({surface, ":", value, "。"});
      case 2:
        return Join({"この", "商品", "の", surface, "は", value, "です",
                     "。"});
      default:
        return Join({surface, "が", value, "になります", "。"});
    }
  }
  switch (rng_.NextBounded(4)) {
    case 0:
      return Join({surface, ":", value, "."});
    case 1:
      return Join({"Der", surface, "beträgt", value, "."});
    case 2:
      return Join({"Die", rng_.Pick(product_nouns_), "hat", surface, value,
                   "."});
    default:
      return Join({surface, "ist", value, "."});
  }
}

std::string CategoryGenerator::FillerSentence() {
  const std::string price =
      std::to_string(rng_.NextInt(3, 98) * 100 + rng_.NextInt(0, 1) * 80);
  if (ja_) {
    switch (rng_.NextBounded(5)) {
      case 0:
        return Join({rng_.Pick(filler_nouns_), "の",
                     rng_.Pick(filler_nouns_), "です", "。"});
      case 1:
        return Join({"送料", "は", price, "円", "です", "。"});
      case 2:
        return Join({"価格", ":", price, "円", "。"});
      case 3:
        return Join({"この", rng_.Pick(filler_nouns_), "が", "おすすめ",
                     "です", "。"});
      default:
        return Join({rng_.Pick(filler_nouns_), "と",
                     rng_.Pick(filler_nouns_), "の",
                     rng_.Pick(filler_nouns_), "です", "。"});
    }
  }
  switch (rng_.NextBounded(4)) {
    case 0:
      return Join({"Die", rng_.Pick(filler_nouns_), "mit",
                   rng_.Pick(filler_nouns_), "."});
    case 1:
      return Join({"Versand", ":", price, "€", "."});
    case 2:
      return Join({"Preis", ":", price, "€", "."});
    default:
      return Join({"Ein", rng_.Pick(filler_nouns_), "für",
                   rng_.Pick(filler_nouns_), "."});
  }
}

void CategoryGenerator::AddTruth(const std::string& pid,
                                 const std::string& canonical,
                                 const std::string& value, bool correct,
                                 bool pair_valid) {
  const std::string norm = core::NormalizeValue(value);
  std::string key = pid + "\t" + canonical + "\t" + norm + "\t" +
                    (correct ? "1" : "0");
  if (!truth_keys_.insert(key).second) return;
  core::TruthEntry entry;
  entry.triple.product_id = pid;
  entry.triple.attribute = canonical;
  entry.triple.value = value;
  entry.triple_correct = correct;
  entry.pair_valid = pair_valid;
  out_.truth.entries.push_back(std::move(entry));
  if (correct && pair_valid) {
    out_.truth.valid_pairs.insert(core::PairKey(canonical, norm));
    // When the same surface value belongs to several attributes'
    // pools, assigning it to one of the *other* attributes on this
    // product is a judged error.
    auto it = enum_value_attrs_.find(norm);
    if (it != enum_value_attrs_.end()) {
      for (const std::string& other : it->second) {
        if (other != canonical) {
          AddTruth(pid, other, value, /*correct=*/false,
                   /*pair_valid=*/true);
        }
      }
    }
  }
}

void CategoryGenerator::MaybeLogQuery(const AttributeSpec& attr,
                                      const std::string& value) {
  // Queries mirror what shoppers actually type: only values that turn
  // out to be *popular* across the catalog make it into the log (rare
  // one-off formats — e.g. a specific decimal weight — are never
  // searched, which is why the paper's initial seed misses them until
  // value diversification recovers their shape).
  auto [it, inserted] = query_candidates_.emplace(
      value, QueryCandidate{0, attr.query_prob});
  it->second.mentions += 1;
}

void CategoryGenerator::GenerateProduct(int index) {
  const CategorySpec& sub =
      spec_.heterogeneous()
          ? spec_.mixture[rng_.NextBounded(spec_.mixture.size())]
          : spec_;
  char pid_buf[64];
  std::snprintf(pid_buf, sizeof(pid_buf), "%s_%05d",
                ja_ ? "item" : "artikel", index);
  const std::string pid = pid_buf;

  // ---- sample the product's true attribute values ----
  const double sparse_prob =
      std::min(0.55, 0.22 + 0.5 * sub.noise_level);
  const bool sparse = rng_.Bernoulli(sparse_prob);
  // Sparse pages describe accessories / bundles whose text carries no
  // (or one) machine-readable attribute — the reason product coverage
  // stays well below 100 % in the paper's Table III.
  const size_t sparse_limit = rng_.Bernoulli(0.5) ? 0 : 1;
  std::vector<ProductValue> values;
  for (size_t i = 0; i < sub.attributes.size(); ++i) {
    const AttributeSpec& attr = sub.attributes[i];
    if (sparse && values.size() >= sparse_limit) break;
    if (!rng_.Bernoulli(attr.presence_prob)) continue;
    values.push_back(SampleValue(static_cast<int>(i), attr));
  }

  // ---- title ----
  std::vector<std::string> title_tokens;
  if (rng_.Bernoulli(0.6)) {
    title_tokens.push_back(ja_ ? "【" + rng_.Pick(decorations_) + "】"
                               : rng_.Pick(decorations_));
  }
  std::string title_value_mention;
  for (const auto& pv : values) {
    // Brand-ish and color-ish enums may surface in the title.
    if (pv.attr->kind == ValueKind::kEnum && rng_.Bernoulli(0.35)) {
      const std::string v = RenderValue(pv, /*for_table=*/false);
      title_tokens.push_back(v);
      AddTruth(pid, pv.attr->canonical, v, /*correct=*/true);
      MaybeLogQuery(*pv.attr, v);
      if (title_tokens.size() >= 3) break;
    }
  }
  title_tokens.push_back(rng_.Pick(product_nouns_));
  const std::string title = ja_ ? StrJoin(title_tokens, " ")
                                : StrJoin(title_tokens, " ");

  // ---- description sentences ----
  std::vector<std::string> sentences;
  for (const auto& pv : values) {
    if (!rng_.Bernoulli(pv.attr->text_prob)) continue;
    const int mentions = rng_.Bernoulli(0.2) ? 2 : 1;
    for (int m = 0; m < mentions; ++m) {
      const std::string v = RenderValue(pv, /*for_table=*/false);
      sentences.push_back(AttributeSentence(
          PickSurface(*pv.attr), v, pv.attr->kind == ValueKind::kEnum));
      AddTruth(pid, pv.attr->canonical, v, /*correct=*/true);
      MaybeLogQuery(*pv.attr, v);
    }
  }
  const int n_filler = static_cast<int>(rng_.NextInt(
      sub.min_sentences, sub.max_sentences));
  for (int i = 0; i < n_filler; ++i) sentences.push_back(FillerSentence());

  // Commentary sentences about attributes: same surface pattern as an
  // attribute statement, but the "value" slot holds an opinion word.
  // Judged as invalid associations by the annotators.
  const int n_commentary =
      rng_.Bernoulli(0.3 + sub.noise_level) ? static_cast<int>(
          rng_.NextInt(1, 2)) : 0;
  for (int i = 0; i < n_commentary && !sub.attributes.empty(); ++i) {
    const AttributeSpec& attr =
        sub.attributes[rng_.NextBounded(sub.attributes.size())];
    const std::string& word = rng_.Pick(commentary_words_);
    sentences.push_back(
        ja_ ? Join({PickSurface(attr), "は", word, "です", "。"})
            : Join({PickSurface(attr), "ist", word, "."}));
    AddTruth(pid, attr.canonical, word, /*correct=*/false,
             /*pair_valid=*/false);
  }

  // Negated mentions (Definition 3.1): the page explicitly says the
  // product does NOT have some value ("ケースは付属しません").
  // Extracting a triple from these is a judged error.
  if (rng_.Bernoulli(0.07) && !sub.attributes.empty()) {
    const AttributeSpec& attr =
        sub.attributes[rng_.NextBounded(sub.attributes.size())];
    ProductValue other = SampleValue(-1, attr);
    const std::string v = RenderValue(other, /*for_table=*/false);
    sentences.push_back(
        ja_ ? (rng_.Bernoulli(0.5)
                   ? Join({PickSurface(attr), "は", v, "ではありません",
                           "。"})
                   : Join({v, "は", "付属しません", "。"}))
            : Join({"Der", PickSurface(attr), "ist", "nicht", v, "."}));
    AddTruth(pid, attr.canonical, v, /*correct=*/false);
  }

  // Related-keyword lists: context-free enum values from other
  // products. Anything the tagger picks up here is a judged error.
  if (rng_.Bernoulli(sub.noise_level * 0.25) && !sub.attributes.empty()) {
    std::vector<std::string> line;
    line.push_back(ja_ ? "関連キーワード" : "Stichworte");
    line.push_back(":");
    const int k = static_cast<int>(rng_.NextInt(1, 2));
    for (int i = 0; i < k; ++i) {
      const AttributeSpec& attr =
          sub.attributes[rng_.NextBounded(sub.attributes.size())];
      if (attr.kind != ValueKind::kEnum || attr.enum_values.empty()) {
        continue;
      }
      const std::string v = rng_.Pick(attr.enum_values);
      line.push_back(v);
      if (ja_) line.push_back("・");
      // The keyword does not describe this product: judged incorrect
      // unless the product genuinely has that exact value (in which
      // case the earlier correct entry wins in the evaluator).
      AddTruth(pid, attr.canonical, v, /*correct=*/false);
    }
    sentences.push_back(Join(line));
  }
  rng_.Shuffle(&sentences);

  // Confusable siblings: when the page mentions both attributes of a
  // confusable pair, record cross-assignments as judged-incorrect (the
  // annotator-knowledge the paper's truth sample encodes).
  for (const auto& a : values) {
    if (a.attr->confusable_with < 0) continue;
    for (const auto& b : values) {
      if (b.attr_index != a.attr->confusable_with) continue;
      const std::string va = RenderValue(a, false);
      const std::string vb = RenderValue(b, false);
      if (core::NormalizeValue(va) != core::NormalizeValue(vb)) {
        AddTruth(pid, a.attr->canonical, vb, /*correct=*/false);
      }
    }
  }

  // ---- secondary product block (§VIII error source 1) ----
  std::vector<std::string> secondary_sentences;
  if (rng_.Bernoulli(sub.secondary_product_prob)) {
    secondary_sentences.push_back(
        ja_ ? Join({"おすすめ", "商品", ":", rng_.Pick(product_nouns_),
                    "。"})
            : Join({"Empfehlung", ":", rng_.Pick(product_nouns_), "."}));
    const int k = static_cast<int>(rng_.NextInt(1, 2));
    for (int i = 0; i < k && !sub.attributes.empty(); ++i) {
      const size_t ai = rng_.NextBounded(sub.attributes.size());
      const AttributeSpec& attr = sub.attributes[ai];
      ProductValue pv = SampleValue(static_cast<int>(ai), attr);
      const std::string v = RenderValue(pv, /*for_table=*/false);
      secondary_sentences.push_back(
          AttributeSentence(PickSurface(attr), v,
                            attr.kind == ValueKind::kEnum));
      // The value belongs to the secondary item, not this product.
      AddTruth(pid, attr.canonical, v, /*correct=*/false);
    }
  }

  // ---- spec table ----
  std::string table_html;
  if (rng_.Bernoulli(sub.table_fraction)) {
    std::vector<std::pair<std::string, std::string>> rows;
    struct RowTruth {
      const AttributeSpec* attr;
      std::string canonical;
      std::string value;
      bool correct;
    };
    std::vector<RowTruth> row_truth;
    for (const auto& pv : values) {
      if (!rng_.Bernoulli(pv.attr->table_prob)) continue;
      std::string v = RenderValue(pv, /*for_table=*/true);
      bool corrupted = false;
      if (rng_.Bernoulli(sub.noise_level * 0.25)) {
        corrupted = true;
        switch (rng_.NextBounded(3)) {
          case 0:
            v = ja_ ? "お問い合わせください" : "auf Anfrage";
            break;
          case 1:
            v = "★" + v + "★";
            break;
          default: {
            // A value leaked from another attribute.
            const size_t ai = rng_.NextBounded(sub.attributes.size());
            ProductValue other =
                SampleValue(static_cast<int>(ai), sub.attributes[ai]);
            v = RenderValue(other, true);
            corrupted = (sub.attributes[ai].canonical !=
                         pv.attr->canonical);
            break;
          }
        }
      }
      rows.emplace_back(PickSurface(*pv.attr), v);
      row_truth.push_back({pv.attr, pv.attr->canonical, v, !corrupted});
    }
    // Junk rows (noise): invalid associations in dictionary position.
    if (rng_.Bernoulli(sub.noise_level) && !junk_rows_.empty()) {
      auto junk = junk_rows_[rng_.NextBounded(junk_rows_.size())];
      if (junk.second.empty()) junk.second = FillerSentence();
      rows.push_back(junk);
      row_truth.push_back({nullptr, junk.first, junk.second, false});
    }
    if (rows.size() >= 2) {
      // Only record table mentions in the truth sample if the table is
      // actually rendered on the page.
      for (const auto& rt : row_truth) {
        AddTruth(pid, rt.canonical, rt.value, rt.correct, rt.correct);
        if (rt.correct && rt.attr != nullptr) MaybeLogQuery(*rt.attr, rt.value);
      }
      rng_.Shuffle(&rows);
      std::string t = "<table>";
      // The 2-rows × n-columns layout is ambiguous for 2×2 grids (it
      // parses as two key/value rows), so merchants with two specs use
      // the column layout.
      if (rows.size() == 2 || rng_.Bernoulli(0.75)) {  // n rows × 2 columns
        for (const auto& [k, v] : rows) {
          t += "<tr><th>" + k + "</th><td>" + v + "</td></tr>";
        }
      } else {  // 2 rows × n columns
        t += "<tr>";
        for (const auto& [k, v] : rows) t += "<th>" + k + "</th>";
        t += "</tr><tr>";
        for (const auto& [k, v] : rows) t += "<td>" + v + "</td>";
        t += "</tr>";
      }
      t += "</table>";
      table_html = t;
    }
  }

  // ---- assemble HTML ----
  std::string html = "<html><head><title>" + title +
                     "</title></head><body><h1>" + title + "</h1>";
  html += "<div class=\"description\">";
  for (const auto& s : sentences) {
    std::string para = s;
    if (rng_.Bernoulli(sub.noise_level * 0.5)) {
      para += ja_ ? "<span>★★★</span>" : "<span>***</span>";
    }
    if (rng_.Bernoulli(0.3)) {
      html += "<p><b>" + para + "</b></p>";
    } else {
      html += "<p>" + para + "</p>";
    }
  }
  html += "</div>";
  if (!secondary_sentences.empty()) {
    html += "<div class=\"recommend\">";
    for (const auto& s : secondary_sentences) html += "<p>" + s + "</p>";
    html += "</div>";
  }
  html += table_html;
  html += "</body></html>";

  core::ProductPage page;
  page.product_id = pid;
  page.html = std::move(html);
  out_.corpus.pages.push_back(std::move(page));
}

GeneratedCategory CategoryGenerator::Run() {
  out_.corpus.category = spec_.name;
  out_.corpus.language = spec_.language;
  InitCommon();
  if (spec_.heterogeneous()) {
    for (const auto& sub : spec_.mixture) RegisterSchema(sub);
  } else {
    RegisterSchema(spec_);
  }
  for (int i = 0; i < config_.num_products; ++i) GenerateProduct(i);

  // Query log from popular values (≥3 mentions across the catalog).
  for (const auto& [value, candidate] : query_candidates_) {
    if (candidate.mentions < 3) continue;
    const int copies = static_cast<int>(
        std::ceil(candidate.mentions * candidate.query_prob * 0.3));
    for (int i = 0; i < copies; ++i) {
      out_.corpus.query_log.push_back(value);
    }
  }

  // Noise queries.
  const int noise_queries = static_cast<int>(
      config_.query_noise_fraction *
      static_cast<double>(out_.corpus.query_log.size()));
  for (int i = 0; i < noise_queries; ++i) {
    out_.corpus.query_log.push_back(rng_.Pick(filler_nouns_));
  }
  rng_.Shuffle(&out_.corpus.query_log);

  out_.corpus.tokenizer_lexicon.assign(lexicon_.begin(), lexicon_.end());
  std::sort(out_.corpus.tokenizer_lexicon.begin(),
            out_.corpus.tokenizer_lexicon.end());
  out_.corpus.pos_lexicon = pos_lexicon_;
  return std::move(out_);
}

}  // namespace

GeneratedCategory GenerateCategory(const CategorySpec& spec,
                                   const GeneratorConfig& config) {
  CategoryGenerator generator(spec, config);
  return generator.Run();
}

GeneratedCategory GenerateCategory(CategoryId id,
                                   const GeneratorConfig& config) {
  return GenerateCategory(BuildCategorySpec(id), config);
}

}  // namespace pae::datagen
