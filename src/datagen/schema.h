#ifndef PAE_DATAGEN_SCHEMA_H_
#define PAE_DATAGEN_SCHEMA_H_

#include <string>
#include <vector>

#include "text/tokenizer.h"

namespace pae::datagen {

/// The evaluation categories of §VI-A plus the §VIII-E heterogeneity
/// study. Eight Japanese categories carry the paper's table rows; three
/// German categories back §VII-B/C; the Baby pair backs §VIII-E.
enum class CategoryId {
  kTennis,
  kKitchen,
  kCosmetics,
  kGarden,
  kShoes,
  kLadiesBags,
  kDigitalCameras,
  kVacuumCleaner,
  kMailboxDe,
  kCoffeeMachinesDe,
  kGardenDe,
  kBabyCarriers,
  kBabyGoods,  // heterogeneous parent category (carriers + clothes + toys)
  // Additional Japanese categories rounding the catalog out to the
  // paper's scale (§VI-A: 18 Japanese + 3 German categories).
  kWatches,
  kGolf,
  kWine,
  kFuton,
  kRice,
  kHeadphones,
  kBackpacks,
  kCurtains,
  kPetSupplies,
  kBicycles,
};

/// All category ids, in a stable reporting order.
const std::vector<CategoryId>& AllCategories();

/// The eight Japanese categories of Tables I–III (paper column order).
const std::vector<CategoryId>& PaperTableCategories();

const char* CategoryName(CategoryId id);
text::Language CategoryLanguage(CategoryId id);

/// How an attribute's values are built.
enum class ValueKind {
  kEnum,     // a fixed pool of named entities (colors, brands, types)
  kNumeric,  // number + unit ("5kg", "2,430万画素")
  kRange,    // "1/4000秒〜30秒"-style composite values (shutter speed)
};

/// Formatting knobs for numeric/range values. The split between
/// `decimal_prob_table` and `decimal_prob_text` is the lever behind the
/// value-diversification study (§VIII-A): vacuum-cleaner weights are
/// written as integers in spec tables but as decimals in free text.
struct NumericFormat {
  double min = 1;
  double max = 30;
  int decimals = 1;
  double decimal_prob_table = 0.1;
  double decimal_prob_text = 0.5;
  double thousands_sep_prob = 0.0;  // "2,430"-style grouping
  std::string unit;
};

/// One product attribute of a category schema.
struct AttributeSpec {
  std::string canonical;              // primary surface name
  std::vector<std::string> synonyms;  // merchant-variant surface names
  ValueKind kind = ValueKind::kEnum;
  std::vector<std::string> enum_values;
  NumericFormat numeric;

  /// Probability the product has this attribute at all.
  double presence_prob = 0.8;
  /// Probability the attribute appears in the page's spec table (when
  /// the page has one and the product has the attribute).
  double table_prob = 0.7;
  /// Probability the attribute is mentioned in the description text.
  double text_prob = 0.55;
  /// Probability that values of this attribute show up in the query log.
  double query_prob = 0.35;
  /// Index of a sibling attribute with the same value space that pages
  /// also mention (optical vs digital zoom; product weight vs maximum
  /// shipment weight); -1 if none.
  int confusable_with = -1;
};

/// A category schema plus its difficulty knobs.
struct CategorySpec {
  CategoryId id = CategoryId::kTennis;
  std::string name;
  text::Language language = text::Language::kJa;
  std::vector<AttributeSpec> attributes;

  /// Fraction of product pages that carry a dictionary-form spec table —
  /// the dominant factor behind seed coverage (Table I: Garden ≈ 1–8 %,
  /// Ladies Bags ≈ 40 %).
  double table_fraction = 0.25;
  /// 0..1: malformed table rows, markup inside values, stray symbols.
  double noise_level = 0.1;
  /// Probability a page also describes a secondary product (§VIII error
  /// source 1).
  double secondary_product_prob = 0.08;
  int min_sentences = 3;
  int max_sentences = 8;

  /// Heterogeneous categories (§VIII-E): pages are drawn from these
  /// sub-schemas instead of `attributes`.
  std::vector<CategorySpec> mixture;

  bool heterogeneous() const { return !mixture.empty(); }
};

/// Builds the full schema (with concrete deterministic value pools) for
/// one category.
CategorySpec BuildCategorySpec(CategoryId id);

}  // namespace pae::datagen

#endif  // PAE_DATAGEN_SCHEMA_H_
