#include "datagen/schema.h"

#include <unordered_set>

#include "datagen/word_factory.h"
#include "util/logging.h"
#include "util/rng.h"

namespace pae::datagen {

namespace {

// ---------- fixed value inventories ----------

std::vector<std::string> JaColors() {
  return {"ブラック", "ホワイト", "レッド",   "ブルー",   "グリーン",
          "イエロー", "ピンク",   "パープル", "ブラウン", "グレー",
          "シルバー", "ゴールド", "ネイビー", "ベージュ", "オレンジ",
          "黒",       "白",       "赤",       "青",       "緑"};
}

std::vector<std::string> DeColors() {
  return {"schwarz", "weiß", "rot",    "blau",   "grün",  "gelb",
          "rosa",    "braun", "grau",  "silber", "beige", "anthrazit"};
}

std::vector<std::string> JaCountries() {
  return {"日本",     "中国",   "韓国",     "台湾",   "ベトナム",
          "タイ",     "ドイツ", "フランス", "イタリア", "アメリカ"};
}

std::vector<std::string> JaApparelSizes() {
  return {"S", "M", "L", "XL", "LL", "フリーサイズ", "23cm", "24cm",
          "25cm", "26cm", "27cm"};
}

// ---------- pool builders ----------

std::vector<std::string> NounPool(const WordFactory& wf, Rng* rng, int n,
                                  int min_syl, int max_syl) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> pool;
  int guard = 0;
  while (static_cast<int>(pool.size()) < n && guard++ < n * 50) {
    std::string w = wf.MakeNoun(
        rng, static_cast<int>(rng->NextInt(min_syl, max_syl)));
    if (seen.insert(w).second) pool.push_back(w);
  }
  return pool;
}

std::vector<std::string> IdeographPool(const WordFactory& wf, Rng* rng, int n,
                                       int len) {
  std::unordered_set<std::string> seen;
  std::vector<std::string> pool;
  int guard = 0;
  while (static_cast<int>(pool.size()) < n && guard++ < n * 50) {
    std::string w = wf.MakeIdeographWord(rng, len);
    if (seen.insert(w).second) pool.push_back(w);
  }
  return pool;
}

// ---------- attribute builders ----------

AttributeSpec Enum(std::string name, std::vector<std::string> synonyms,
                   std::vector<std::string> values, double presence,
                   double table_prob, double text_prob) {
  AttributeSpec a;
  a.canonical = std::move(name);
  a.synonyms = std::move(synonyms);
  a.kind = ValueKind::kEnum;
  a.enum_values = std::move(values);
  a.presence_prob = presence;
  a.table_prob = table_prob;
  a.text_prob = text_prob;
  return a;
}

AttributeSpec Numeric(std::string name, std::vector<std::string> synonyms,
                      NumericFormat format, double presence,
                      double table_prob, double text_prob) {
  AttributeSpec a;
  a.canonical = std::move(name);
  a.synonyms = std::move(synonyms);
  a.kind = ValueKind::kNumeric;
  a.numeric = std::move(format);
  a.presence_prob = presence;
  a.table_prob = table_prob;
  a.text_prob = text_prob;
  // Shoppers query brands/types/colors, not spec numbers: numeric
  // values only survive seed cleaning through raw frequency, which is
  // what starves rare formats (decimals, thousands separators) out of
  // the initial seed (§VIII-A).
  a.query_prob = 0.0;
  return a;
}

NumericFormat Fmt(double min, double max, int decimals, double dec_table,
                  double dec_text, std::string unit,
                  double thousands = 0.0) {
  NumericFormat f;
  f.min = min;
  f.max = max;
  f.decimals = decimals;
  f.decimal_prob_table = dec_table;
  f.decimal_prob_text = dec_text;
  f.unit = std::move(unit);
  f.thousands_sep_prob = thousands;
  return f;
}

// Shared attribute makers (JA).
AttributeSpec JaMaker(const WordFactory& wf, Rng* rng) {
  return Enum("メーカー", {"製造元", "ブランド"}, NounPool(wf, rng, 22, 3, 5),
              0.85, 0.8, 0.5);
}
AttributeSpec JaColor() {
  return Enum("カラー", {"色"}, JaColors(), 0.8, 0.7, 0.65);
}
AttributeSpec JaMaterial(const WordFactory& wf, Rng* rng) {
  std::vector<std::string> pool = {"コットン", "ポリエステル", "ナイロン",
                                   "レザー", "キャンバス"};
  for (auto& w : IdeographPool(wf, rng, 10, 2)) pool.push_back(w);
  return Enum("素材", {"材質"}, std::move(pool), 0.75, 0.7, 0.5);
}
AttributeSpec JaCountry() {
  return Enum("原産国", {"生産国"}, JaCountries(), 0.6, 0.7, 0.35);
}
AttributeSpec JaWeight(double max_kg, double dec_table, double dec_text) {
  return Numeric("重量", {"本体重量"},
                 Fmt(1, max_kg, 1, dec_table, dec_text, "kg"), 0.7, 0.75,
                 0.55);
}

CategorySpec Base(CategoryId id, const char* name, text::Language lang) {
  CategorySpec spec;
  spec.id = id;
  spec.name = name;
  spec.language = lang;
  return spec;
}

// ---------- per-category schemas ----------

CategorySpec BuildTennis() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1001);
  CategorySpec s = Base(CategoryId::kTennis, "Tennis", text::Language::kJa);
  s.table_fraction = 0.27;
  s.noise_level = 0.03;
  s.secondary_product_prob = 0.04;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      Enum("サイズ", {"寸法"}, JaApparelSizes(), 0.7, 0.7, 0.5),
      JaMaterial(wf, &rng),
      Enum("ガット", {}, NounPool(wf, &rng, 12, 3, 4), 0.5, 0.6, 0.4),
      Numeric("グリップサイズ", {}, Fmt(1, 5, 0, 0.0, 0.0, "号"), 0.55, 0.7,
              0.45),
  };
  return s;
}

CategorySpec BuildKitchen() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1002);
  CategorySpec s = Base(CategoryId::kKitchen, "Kitchen", text::Language::kJa);
  s.table_fraction = 0.21;
  s.noise_level = 0.14;
  s.secondary_product_prob = 0.10;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      JaMaterial(wf, &rng),
      Numeric("容量", {"内容量"}, Fmt(0.5, 5, 1, 0.4, 0.6, "L"), 0.7, 0.75,
              0.5),
      Numeric("耐熱温度", {}, Fmt(80, 250, 0, 0.0, 0.0, "度"), 0.5, 0.65,
              0.35),
      Enum("サイズ", {"寸法"},
           {"20cm", "22cm", "24cm", "26cm", "28cm", "30cm"}, 0.65, 0.7, 0.45),
      JaCountry(),
  };
  return s;
}

CategorySpec BuildCosmetics() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1003);
  CategorySpec s =
      Base(CategoryId::kCosmetics, "Cosmetics", text::Language::kJa);
  s.table_fraction = 0.37;
  s.noise_level = 0.10;
  s.secondary_product_prob = 0.12;
  s.attributes = {
      JaMaker(wf, &rng),
      Numeric("内容量", {"容量"}, Fmt(10, 500, 0, 0.1, 0.2, "ml"), 0.85, 0.8,
              0.6),
      Enum("成分", {"主成分"}, NounPool(wf, &rng, 18, 4, 6), 0.6, 0.6, 0.5),
      JaColor(),
      JaCountry(),
      Enum("タイプ", {"種類"}, IdeographPool(wf, &rng, 10, 2), 0.65, 0.65,
           0.5),
  };
  return s;
}

CategorySpec BuildGarden() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1004);
  CategorySpec s = Base(CategoryId::kGarden, "Garden", text::Language::kJa);
  s.table_fraction = 0.085;
  s.noise_level = 0.30;
  s.secondary_product_prob = 0.10;
  s.min_sentences = 2;
  s.max_sentences = 6;
  s.attributes = {
      JaColor(),
      Enum("花形", {"花の形"},
           {"一重咲き", "八重咲き", "房咲き", "丸弁", "剣弁", "カップ咲き",
            "ロゼット咲き", "平咲き"},
           0.45, 0.5, 0.5),
      JaMaterial(wf, &rng),
      JaWeight(/*max_kg=*/25, /*dec_table=*/0.15, /*dec_text=*/0.5),
      Enum("サイズ", {"寸法"}, {"30cm", "45cm", "60cm", "90cm", "120cm"},
           0.6, 0.6, 0.4),
      JaCountry(),
  };
  // Product weight vs maximum shipment weight (§VIII error source 2).
  AttributeSpec max_load =
      Numeric("最大積載重量", {}, Fmt(1, 25, 1, 0.15, 0.5, "kg"), 0.4, 0.4,
              0.45);
  s.attributes.push_back(max_load);
  s.attributes[3].confusable_with = static_cast<int>(s.attributes.size()) - 1;
  s.attributes.back().confusable_with = 3;
  return s;
}

CategorySpec BuildShoes() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1005);
  CategorySpec s = Base(CategoryId::kShoes, "Shoes", text::Language::kJa);
  s.table_fraction = 0.07;
  s.noise_level = 0.13;
  s.secondary_product_prob = 0.10;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      Enum("サイズ", {"寸法"}, JaApparelSizes(), 0.85, 0.75, 0.65),
      JaMaterial(wf, &rng),
      Numeric("ヒール高", {"ヒールの高さ"}, Fmt(1, 12, 1, 0.4, 0.6, "cm"),
              0.5, 0.6, 0.45),
      Enum("幅", {"足幅"}, {"2E", "3E", "4E", "D", "E"}, 0.4, 0.55, 0.3),
  };
  return s;
}

CategorySpec BuildLadiesBags() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1006);
  CategorySpec s =
      Base(CategoryId::kLadiesBags, "Ladies bags", text::Language::kJa);
  s.table_fraction = 0.42;
  s.noise_level = 0.04;
  s.secondary_product_prob = 0.05;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      Enum("サイズ", {"寸法"}, {"小", "中", "大", "A4対応", "B5対応"}, 0.7,
           0.75, 0.5),
      JaMaterial(wf, &rng),
      JaWeight(/*max_kg=*/3, /*dec_table=*/0.5, /*dec_text=*/0.6),
      Enum("開閉方式", {}, {"ファスナー", "マグネット", "ボタン", "オープン"},
           0.55, 0.65, 0.4),
  };
  return s;
}

CategorySpec BuildDigitalCameras() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1007);
  CategorySpec s = Base(CategoryId::kDigitalCameras, "Digital Cameras",
                        text::Language::kJa);
  s.table_fraction = 0.13;
  s.noise_level = 0.05;
  s.secondary_product_prob = 0.07;
  s.min_sentences = 4;
  s.max_sentences = 9;

  AttributeSpec shutter;
  shutter.canonical = "シャッタースピード";
  shutter.synonyms = {"シャッター速度"};
  shutter.kind = ValueKind::kRange;
  shutter.numeric = Fmt(1000, 8000, 0, 0.0, 0.0, "秒");
  shutter.presence_prob = 0.6;
  shutter.table_prob = 0.8;
  shutter.text_prob = 0.35;
  shutter.query_prob = 0.0;

  AttributeSpec effective_px =
      Numeric("有効画素数", {"有効画素"},
              Fmt(800, 6100, 0, 0.0, 0.0, "万画素", /*thousands=*/0.45), 0.7,
              0.75, 0.5);
  AttributeSpec total_px =
      Numeric("総画素数", {},
              Fmt(900, 6500, 0, 0.0, 0.0, "万画素", /*thousands=*/0.45), 0.5,
              0.6, 0.35);
  AttributeSpec optical_zoom = Numeric(
      "光学ズーム", {}, Fmt(2, 40, 0, 0.0, 0.0, "倍"), 0.6, 0.65, 0.45);
  AttributeSpec digital_zoom = Numeric(
      "デジタルズーム", {}, Fmt(2, 40, 0, 0.0, 0.0, "倍"), 0.5, 0.6, 0.4);

  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      shutter,
      effective_px,
      total_px,
      optical_zoom,
      digital_zoom,
      JaWeight(/*max_kg=*/2, /*dec_table=*/0.4, /*dec_text=*/0.55),
  };
  s.attributes[3].confusable_with = 4;  // effective ↔ total pixels
  s.attributes[4].confusable_with = 3;
  s.attributes[5].confusable_with = 6;  // optical ↔ digital zoom
  s.attributes[6].confusable_with = 5;
  return s;
}

CategorySpec BuildVacuumCleaner() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1008);
  CategorySpec s = Base(CategoryId::kVacuumCleaner, "Vacuum Cleaner",
                        text::Language::kJa);
  s.table_fraction = 0.28;
  s.noise_level = 0.08;
  s.secondary_product_prob = 0.08;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      Enum("タイプ", {"種類"},
           {"キャニスター", "スティック", "ハンディ", "ロボット",
            "ふとん用"},
           0.75, 0.75, 0.55),
      Enum("集じん方式", {"集塵方式"},
           {"サイクロン式", "紙パック式", "カプセル式", "フィルター式"},
           0.65, 0.7, 0.5),
      Enum("電源方式", {"電源"},
           {"コード式", "充電式", "AC電源", "バッテリー式"}, 0.6, 0.65,
           0.45),
      // Integer-biased table weights vs decimal text weights: the
      // §VIII-A diversification case study.
      JaWeight(/*max_kg=*/8, /*dec_table=*/0.12, /*dec_text=*/0.75),
      Numeric("容量", {"内容量"}, Fmt(0.3, 2, 1, 0.5, 0.7, "L"), 0.55, 0.6,
              0.4),
  };
  return s;
}

CategorySpec BuildMailboxDe() {
  WordFactory wf(text::Language::kDe);
  Rng rng(2001);
  CategorySpec s =
      Base(CategoryId::kMailboxDe, "Mailbox (DE)", text::Language::kDe);
  s.table_fraction = 0.30;
  s.noise_level = 0.07;
  s.secondary_product_prob = 0.06;
  s.attributes = {
      Enum("Farbe", {"Farbton"}, DeColors(), 0.8, 0.75, 0.6),
      Enum("Material", {"Werkstoff"},
           {"Edelstahl", "Stahl", "Aluminium", "Kunststoff", "Holz",
            "Zink"},
           0.75, 0.75, 0.55),
      Numeric("Gewicht", {"Eigengewicht"}, Fmt(1, 15, 1, 0.3, 0.55, "kg"),
              0.65, 0.7, 0.5),
      Enum("Hersteller", {"Marke"}, NounPool(wf, &rng, 18, 2, 3), 0.8, 0.75,
           0.5),
      Enum("Montageart", {},
           {"Wandmontage", "Standmontage", "Zaunmontage"}, 0.5, 0.6, 0.4),
      Enum("Größe", {"Abmessung"}, {"30cm", "40cm", "50cm", "60cm"}, 0.55,
           0.6, 0.4),
  };
  return s;
}

CategorySpec BuildCoffeeMachinesDe() {
  WordFactory wf(text::Language::kDe);
  Rng rng(2002);
  CategorySpec s = Base(CategoryId::kCoffeeMachinesDe, "Coffee machines (DE)",
                        text::Language::kDe);
  s.table_fraction = 0.26;
  s.noise_level = 0.10;
  s.secondary_product_prob = 0.08;
  s.attributes = {
      Enum("Hersteller", {"Marke"}, NounPool(wf, &rng, 18, 2, 3), 0.85, 0.8,
           0.55),
      Enum("Farbe", {"Farbton"}, DeColors(), 0.75, 0.7, 0.55),
      Numeric("Leistung", {}, Fmt(600, 2400, 0, 0.0, 0.0, "Watt"), 0.7,
              0.75, 0.5),
      Numeric("Fassungsvermögen", {"Volumen"},
              Fmt(0.6, 2, 1, 0.6, 0.7, "Liter"), 0.6, 0.65, 0.45),
      Enum("Typ", {"Bauart"},
           {"Filtermaschine", "Kapselmaschine", "Vollautomat",
            "Siebträger", "Padmaschine"},
           0.7, 0.7, 0.5),
      Numeric("Gewicht", {"Eigengewicht"}, Fmt(1, 12, 1, 0.3, 0.5, "kg"),
              0.55, 0.6, 0.4),
  };
  return s;
}

CategorySpec BuildGardenDe() {
  WordFactory wf(text::Language::kDe);
  Rng rng(2003);
  CategorySpec s =
      Base(CategoryId::kGardenDe, "Garden (DE)", text::Language::kDe);
  s.table_fraction = 0.12;
  s.noise_level = 0.22;
  s.secondary_product_prob = 0.12;
  s.attributes = {
      Enum("Farbe", {"Farbton"}, DeColors(), 0.75, 0.7, 0.6),
      Enum("Material", {"Werkstoff"},
           {"Holz", "Kunststoff", "Metall", "Rattan", "Stein"}, 0.7, 0.7,
           0.5),
      Numeric("Gewicht", {"Eigengewicht"}, Fmt(1, 30, 1, 0.2, 0.5, "kg"),
              0.6, 0.6, 0.5),
      Enum("Hersteller", {"Marke"}, NounPool(wf, &rng, 16, 2, 3), 0.7, 0.7,
           0.45),
      Enum("Größe", {"Abmessung"}, {"60cm", "90cm", "120cm", "180cm"}, 0.55,
           0.55, 0.4),
  };
  AttributeSpec max_load = Numeric("Traglast", {"Belastbarkeit"},
                                   Fmt(1, 30, 1, 0.2, 0.5, "kg"), 0.4, 0.45,
                                   0.4);
  s.attributes.push_back(max_load);
  s.attributes[2].confusable_with = static_cast<int>(s.attributes.size()) - 1;
  s.attributes.back().confusable_with = 2;
  return s;
}

CategorySpec BuildBabyCarriers() {
  WordFactory wf(text::Language::kJa);
  Rng rng(3001);
  CategorySpec s =
      Base(CategoryId::kBabyCarriers, "Baby Carriers", text::Language::kJa);
  s.table_fraction = 0.22;
  s.noise_level = 0.12;
  s.secondary_product_prob = 0.08;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      Enum("タイプ", {"種類"},
           {"抱っこ紐", "おんぶ紐", "スリング", "ヒップシート"}, 0.7, 0.7,
           0.5),
      Enum("対象年齢", {"対象月齢"},
           {"新生児から", "3ヶ月から", "6ヶ月から", "12ヶ月から"}, 0.6,
           0.65, 0.45),
      JaWeight(/*max_kg=*/2, /*dec_table=*/0.4, /*dec_text=*/0.6),
      Enum("安全基準", {}, {"SG基準", "EN基準", "ASTM基準"}, 0.4, 0.5, 0.3),
  };
  return s;
}

CategorySpec BuildBabyClothes() {
  WordFactory wf(text::Language::kJa);
  Rng rng(3002);
  CategorySpec s =
      Base(CategoryId::kBabyGoods, "Baby Clothes", text::Language::kJa);
  s.table_fraction = 0.18;
  s.noise_level = 0.12;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      // Bare-number sizes: in the heterogeneous parent these collide
      // with the toys sub-schema's bare-number target ages — the
      // "often overlapping values" of §VIII-E.
      Enum("サイズ", {"寸法"}, {"50", "60", "70", "80", "90", "95"}, 0.85,
           0.75, 0.6),
      JaMaterial(wf, &rng),
      Enum("対象年齢", {"対象月齢"},
           {"50cm対応", "60cm対応", "70cm対応", "80cm対応"}, 0.5, 0.55,
           0.4),
  };
  return s;
}

CategorySpec BuildBabyToys() {
  WordFactory wf(text::Language::kJa);
  Rng rng(3003);
  CategorySpec s =
      Base(CategoryId::kBabyGoods, "Baby Toys", text::Language::kJa);
  s.table_fraction = 0.18;
  s.noise_level = 0.12;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      // Target age in bare months — "60" and "70" collide with the
      // clothes sub-schema's bare-number sizes (§VIII-E value overlap).
      Enum("対象年齢", {"対象月齢"},
           {"6", "12", "18", "24", "36", "60", "70"}, 0.7, 0.65, 0.5),
      JaMaterial(wf, &rng),
      Enum("電池", {"電源"}, {"単三電池", "単四電池", "ボタン電池", "不要"},
           0.45, 0.55, 0.35),
      Enum("タイプ", {"種類"},
           {"ガラガラ", "積み木", "ぬいぐるみ", "知育玩具"}, 0.6, 0.6, 0.45),
  };
  return s;
}

CategorySpec BuildBabyGoods() {
  CategorySpec s =
      Base(CategoryId::kBabyGoods, "Baby Goods", text::Language::kJa);
  s.table_fraction = 0.20;
  s.noise_level = 0.12;
  s.secondary_product_prob = 0.08;
  s.mixture = {BuildBabyCarriers(), BuildBabyClothes(), BuildBabyToys()};
  // The mixture children keep their own knobs; the parent's id/name win.
  for (auto& sub : s.mixture) sub.id = CategoryId::kBabyGoods;
  return s;
}


// ---------- additional Japanese categories (catalog breadth) ----------

CategorySpec BuildWatches() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1011);
  CategorySpec s = Base(CategoryId::kWatches, "Watches", text::Language::kJa);
  s.table_fraction = 0.33;
  s.noise_level = 0.06;
  s.secondary_product_prob = 0.07;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      Enum("バンド素材", {"ベルト素材"},
           {"レザー", "ステンレス", "ラバー", "ナイロン", "チタン"}, 0.7,
           0.7, 0.5),
      Enum("ムーブメント", {"駆動方式"},
           {"クオーツ", "自動巻き", "手巻き", "ソーラー", "電波"}, 0.65,
           0.7, 0.45),
      Numeric("ケース径", {"文字盤サイズ"}, Fmt(28, 46, 1, 0.3, 0.5, "mm"),
              0.6, 0.65, 0.4),
      Numeric("防水", {"防水性能"}, Fmt(3, 20, 0, 0.0, 0.0, "気圧"), 0.5,
              0.6, 0.35),
  };
  return s;
}

CategorySpec BuildGolf() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1012);
  CategorySpec s = Base(CategoryId::kGolf, "Golf", text::Language::kJa);
  s.table_fraction = 0.24;
  s.noise_level = 0.08;
  s.secondary_product_prob = 0.08;
  s.attributes = {
      JaMaker(wf, &rng),
      Enum("シャフト", {"シャフト素材"},
           {"カーボン", "スチール", "グラファイト"}, 0.65, 0.7, 0.5),
      Numeric("ロフト角", {}, Fmt(8, 60, 1, 0.5, 0.6, "度"), 0.6, 0.7,
              0.45),
      Enum("フレックス", {"硬さ"}, {"R", "S", "SR", "X", "L"}, 0.6, 0.65,
           0.45),
      Numeric("長さ", {"クラブ長"}, Fmt(33, 46, 1, 0.4, 0.55, "インチ"),
              0.55, 0.6, 0.4),
      Enum("利き手", {}, {"右利き用", "左利き用", "両対応"}, 0.5, 0.6,
           0.3),
  };
  return s;
}

CategorySpec BuildWine() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1013);
  CategorySpec s = Base(CategoryId::kWine, "Wine", text::Language::kJa);
  s.table_fraction = 0.30;
  s.noise_level = 0.07;
  s.secondary_product_prob = 0.12;
  s.attributes = {
      Enum("タイプ", {"種類"}, {"赤", "白", "ロゼ", "スパークリング"},
           0.85, 0.8, 0.6),
      Enum("産地", {"生産地"},
           {"フランス", "イタリア", "スペイン", "チリ", "日本",
            "アメリカ"},
           0.75, 0.75, 0.55),
      Enum("ぶどう品種", {"品種"}, NounPool(wf, &rng, 14, 4, 6), 0.6, 0.65,
           0.45),
      Numeric("容量", {"内容量"}, Fmt(375, 1500, 0, 0.0, 0.0, "ml"), 0.7,
              0.75, 0.45),
      Numeric("アルコール度数", {"度数"}, Fmt(5, 15, 1, 0.6, 0.7, "%"),
              0.55, 0.65, 0.4),
      Enum("ヴィンテージ", {"年代"},
           {"2015年", "2016年", "2017年", "2018年", "2019年", "2020年",
            "2021年"},
           0.5, 0.6, 0.35),
  };
  return s;
}

CategorySpec BuildFuton() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1014);
  CategorySpec s = Base(CategoryId::kFuton, "Futon", text::Language::kJa);
  s.table_fraction = 0.19;
  s.noise_level = 0.12;
  s.secondary_product_prob = 0.1;
  s.attributes = {
      JaColor(),
      JaMaterial(wf, &rng),
      Enum("サイズ", {"寸法"},
           {"シングル", "セミダブル", "ダブル", "クイーン"}, 0.8, 0.75,
           0.55),
      JaWeight(/*max_kg=*/6, /*dec_table=*/0.25, /*dec_text=*/0.6),
      Enum("中綿", {"詰め物"},
           {"羽毛", "羊毛", "ポリエステル綿", "綿"}, 0.6, 0.65, 0.45),
      JaCountry(),
  };
  return s;
}

CategorySpec BuildRice() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1015);
  CategorySpec s = Base(CategoryId::kRice, "Rice", text::Language::kJa);
  s.table_fraction = 0.26;
  s.noise_level = 0.09;
  s.secondary_product_prob = 0.08;
  s.attributes = {
      Enum("銘柄", {"品種"},
           {"コシヒカリ", "あきたこまち", "ひとめぼれ", "ササニシキ",
            "ゆめぴりか"},
           0.85, 0.8, 0.6),
      Enum("産地", {"生産地"},
           {"新潟県", "秋田県", "北海道", "宮城県", "山形県"}, 0.8, 0.75,
           0.55),
      Numeric("内容量", {"容量"}, Fmt(2, 30, 0, 0.0, 0.0, "kg"), 0.8,
              0.75, 0.5),
      Enum("精米", {"精米度"}, {"白米", "玄米", "無洗米", "分づき米"},
           0.6, 0.65, 0.45),
      Enum("産年", {"年産"}, {"令和4年産", "令和5年産", "令和6年産"},
           0.5, 0.6, 0.3),
  };
  return s;
}

CategorySpec BuildHeadphones() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1016);
  CategorySpec s =
      Base(CategoryId::kHeadphones, "Headphones", text::Language::kJa);
  s.table_fraction = 0.22;
  s.noise_level = 0.06;
  s.secondary_product_prob = 0.09;
  s.min_sentences = 4;
  s.max_sentences = 9;
  AttributeSpec impedance = Numeric("インピーダンス", {},
                                    Fmt(16, 300, 0, 0.0, 0.0, "Ω"), 0.55,
                                    0.65, 0.35);
  AttributeSpec sensitivity = Numeric("感度", {},
                                      Fmt(85, 110, 0, 0.0, 0.0, "dB"), 0.5,
                                      0.6, 0.3);
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      Enum("接続方式", {"接続"},
           {"ワイヤレス", "有線", "Bluetooth", "2.4GHz無線"}, 0.75, 0.75,
           0.55),
      Enum("装着方式", {"タイプ"},
           {"オーバーイヤー", "オンイヤー", "カナル型", "インナーイヤー"},
           0.65, 0.7, 0.5),
      impedance,
      sensitivity,
      Numeric("重量", {"本体重量"}, Fmt(4, 400, 0, 0.1, 0.4, "g"), 0.6,
              0.65, 0.45),
  };
  // Impedance and sensitivity are both bare numbers with unit; they are
  // the camera-style confusable pair of this category.
  s.attributes[4].confusable_with = 5;
  s.attributes[5].confusable_with = 4;
  return s;
}

CategorySpec BuildBackpacks() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1017);
  CategorySpec s =
      Base(CategoryId::kBackpacks, "Backpacks", text::Language::kJa);
  s.table_fraction = 0.28;
  s.noise_level = 0.05;
  s.secondary_product_prob = 0.06;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      Numeric("容量", {"内容量"}, Fmt(10, 60, 0, 0.0, 0.0, "L"), 0.75,
              0.75, 0.55),
      JaMaterial(wf, &rng),
      JaWeight(/*max_kg=*/3, /*dec_table=*/0.4, /*dec_text=*/0.65),
      Enum("用途", {}, {"通勤", "通学", "登山", "旅行", "タウンユース"},
           0.55, 0.6, 0.45),
  };
  return s;
}

CategorySpec BuildCurtains() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1018);
  CategorySpec s =
      Base(CategoryId::kCurtains, "Curtains", text::Language::kJa);
  s.table_fraction = 0.17;
  s.noise_level = 0.14;
  s.secondary_product_prob = 0.1;
  s.attributes = {
      JaColor(),
      JaMaterial(wf, &rng),
      Enum("サイズ", {"寸法"},
           {"100×135cm", "100×178cm", "100×200cm", "150×178cm",
            "150×200cm"},
           0.8, 0.75, 0.55),
      Enum("機能", {},
           {"遮光", "遮熱", "防炎", "洗える", "UVカット"}, 0.65, 0.65,
           0.5),
      Enum("開閉タイプ", {}, {"両開き", "片開き", "シェード式"}, 0.45, 0.55, 0.3),
  };
  return s;
}

CategorySpec BuildPetSupplies() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1019);
  CategorySpec s =
      Base(CategoryId::kPetSupplies, "Pet Supplies", text::Language::kJa);
  s.table_fraction = 0.15;
  s.noise_level = 0.18;
  s.secondary_product_prob = 0.12;
  s.attributes = {
      JaMaker(wf, &rng),
      Enum("対象", {"対象ペット"},
           {"犬用", "猫用", "小動物用", "犬猫兼用"}, 0.8, 0.7, 0.55),
      Numeric("内容量", {"容量"}, Fmt(0.5, 10, 1, 0.3, 0.55, "kg"), 0.65,
              0.65, 0.45),
      Enum("ライフステージ", {},
           {"子犬用", "成犬用", "シニア犬用", "全年齢"}, 0.5, 0.6, 0.4),
      JaCountry(),
  };
  return s;
}

CategorySpec BuildBicycles() {
  WordFactory wf(text::Language::kJa);
  Rng rng(1020);
  CategorySpec s =
      Base(CategoryId::kBicycles, "Bicycles", text::Language::kJa);
  s.table_fraction = 0.21;
  s.noise_level = 0.1;
  s.secondary_product_prob = 0.09;
  s.attributes = {
      JaMaker(wf, &rng),
      JaColor(),
      Enum("タイヤサイズ", {"ホイールサイズ"},
           {"20インチ", "24インチ", "26インチ", "27インチ", "700C"},
           0.8, 0.75, 0.55),
      Numeric("変速", {"変速段数"}, Fmt(1, 21, 0, 0.0, 0.0, "段"), 0.65,
              0.7, 0.45),
      JaWeight(/*max_kg=*/22, /*dec_table=*/0.2, /*dec_text=*/0.6),
      Enum("フレーム素材", {"フレーム"},
           {"アルミ", "スチール", "カーボン", "クロモリ"}, 0.55, 0.6,
           0.4),
  };
  return s;
}

}  // namespace

const std::vector<CategoryId>& AllCategories() {
  static const auto* kAll = new std::vector<CategoryId>{
      CategoryId::kTennis,          CategoryId::kKitchen,
      CategoryId::kCosmetics,       CategoryId::kGarden,
      CategoryId::kShoes,           CategoryId::kLadiesBags,
      CategoryId::kDigitalCameras,  CategoryId::kVacuumCleaner,
      CategoryId::kMailboxDe,       CategoryId::kCoffeeMachinesDe,
      CategoryId::kGardenDe,        CategoryId::kBabyCarriers,
      CategoryId::kBabyGoods,       CategoryId::kWatches,
      CategoryId::kGolf,            CategoryId::kWine,
      CategoryId::kFuton,           CategoryId::kRice,
      CategoryId::kHeadphones,      CategoryId::kBackpacks,
      CategoryId::kCurtains,        CategoryId::kPetSupplies,
      CategoryId::kBicycles};
  return *kAll;
}

const std::vector<CategoryId>& PaperTableCategories() {
  static const auto* kTable = new std::vector<CategoryId>{
      CategoryId::kTennis,         CategoryId::kKitchen,
      CategoryId::kCosmetics,      CategoryId::kGarden,
      CategoryId::kShoes,          CategoryId::kLadiesBags,
      CategoryId::kDigitalCameras, CategoryId::kVacuumCleaner};
  return *kTable;
}

const char* CategoryName(CategoryId id) {
  switch (id) {
    case CategoryId::kTennis:
      return "Tennis";
    case CategoryId::kKitchen:
      return "Kitchen";
    case CategoryId::kCosmetics:
      return "Cosmetics";
    case CategoryId::kGarden:
      return "Garden";
    case CategoryId::kShoes:
      return "Shoes";
    case CategoryId::kLadiesBags:
      return "Ladies bags";
    case CategoryId::kDigitalCameras:
      return "Digital Cameras";
    case CategoryId::kVacuumCleaner:
      return "Vacuum Cleaner";
    case CategoryId::kMailboxDe:
      return "Mailbox (DE)";
    case CategoryId::kCoffeeMachinesDe:
      return "Coffee machines (DE)";
    case CategoryId::kGardenDe:
      return "Garden (DE)";
    case CategoryId::kBabyCarriers:
      return "Baby Carriers";
    case CategoryId::kBabyGoods:
      return "Baby Goods";
    case CategoryId::kWatches:
      return "Watches";
    case CategoryId::kGolf:
      return "Golf";
    case CategoryId::kWine:
      return "Wine";
    case CategoryId::kFuton:
      return "Futon";
    case CategoryId::kRice:
      return "Rice";
    case CategoryId::kHeadphones:
      return "Headphones";
    case CategoryId::kBackpacks:
      return "Backpacks";
    case CategoryId::kCurtains:
      return "Curtains";
    case CategoryId::kPetSupplies:
      return "Pet Supplies";
    case CategoryId::kBicycles:
      return "Bicycles";
  }
  return "Unknown";
}

text::Language CategoryLanguage(CategoryId id) {
  switch (id) {
    case CategoryId::kMailboxDe:
    case CategoryId::kCoffeeMachinesDe:
    case CategoryId::kGardenDe:
      return text::Language::kDe;
    default:
      return text::Language::kJa;
  }
}

CategorySpec BuildCategorySpec(CategoryId id) {
  switch (id) {
    case CategoryId::kTennis:
      return BuildTennis();
    case CategoryId::kKitchen:
      return BuildKitchen();
    case CategoryId::kCosmetics:
      return BuildCosmetics();
    case CategoryId::kGarden:
      return BuildGarden();
    case CategoryId::kShoes:
      return BuildShoes();
    case CategoryId::kLadiesBags:
      return BuildLadiesBags();
    case CategoryId::kDigitalCameras:
      return BuildDigitalCameras();
    case CategoryId::kVacuumCleaner:
      return BuildVacuumCleaner();
    case CategoryId::kMailboxDe:
      return BuildMailboxDe();
    case CategoryId::kCoffeeMachinesDe:
      return BuildCoffeeMachinesDe();
    case CategoryId::kGardenDe:
      return BuildGardenDe();
    case CategoryId::kBabyCarriers:
      return BuildBabyCarriers();
    case CategoryId::kBabyGoods:
      return BuildBabyGoods();
    case CategoryId::kWatches:
      return BuildWatches();
    case CategoryId::kGolf:
      return BuildGolf();
    case CategoryId::kWine:
      return BuildWine();
    case CategoryId::kFuton:
      return BuildFuton();
    case CategoryId::kRice:
      return BuildRice();
    case CategoryId::kHeadphones:
      return BuildHeadphones();
    case CategoryId::kBackpacks:
      return BuildBackpacks();
    case CategoryId::kCurtains:
      return BuildCurtains();
    case CategoryId::kPetSupplies:
      return BuildPetSupplies();
    case CategoryId::kBicycles:
      return BuildBicycles();
  }
  PAE_LOG(FATAL) << "unknown category id";
  return {};
}

}  // namespace pae::datagen
