#ifndef PAE_DATAGEN_WORD_FACTORY_H_
#define PAE_DATAGEN_WORD_FACTORY_H_

#include <string>
#include <vector>

#include "text/tokenizer.h"
#include "util/rng.h"

namespace pae::datagen {

/// Generates deterministic pseudo-vocabulary for the synthetic corpora.
/// Japanese-like words use real katakana / CJK / hiragana code points so
/// the UTF-8 and segmentation machinery is exercised exactly as it would
/// be on real Rakuten Ichiba text; German-like words are syllable
/// compounds over Latin letters.
class WordFactory {
 public:
  explicit WordFactory(text::Language lang);

  /// A content word (katakana word for JA, capitalized pseudo-noun for
  /// DE). `syllables` controls length.
  std::string MakeNoun(Rng* rng, int syllables) const;

  /// A CJK-ideograph word of `len` characters (JA only; returns a Latin
  /// word for DE).
  std::string MakeIdeographWord(Rng* rng, int len) const;

  /// Grammar glue: particles for JA (の, は, ...), function words for DE
  /// (der, mit, ...).
  const std::vector<std::string>& FunctionWords() const;

  /// Sentence-final / copula tokens (です, ます / ist, hat ...).
  const std::vector<std::string>& Copulas() const;

  /// Measurement units in the language's writing system.
  const std::vector<std::string>& Units() const;

  /// Formats a number in merchant style. `decimals` = 0 renders an
  /// integer. German uses a decimal comma; Japanese a decimal point.
  /// `thousands_sep` inserts grouping separators (e.g. 2,430).
  std::string FormatNumber(double value, int decimals,
                           bool thousands_sep) const;

  text::Language language() const { return lang_; }

 private:
  text::Language lang_;
};

}  // namespace pae::datagen

#endif  // PAE_DATAGEN_WORD_FACTORY_H_
