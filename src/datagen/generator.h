#ifndef PAE_DATAGEN_GENERATOR_H_
#define PAE_DATAGEN_GENERATOR_H_

#include <string>
#include <vector>

#include "core/types.h"
#include "datagen/schema.h"

namespace pae::datagen {

/// Corpus-size and determinism knobs. `num_products` defaults to a
/// laptop-scale corpus; the paper's categories held 2k–12k items and all
/// experiment shapes are stable from a few hundred products up.
struct GeneratorConfig {
  int num_products = 800;
  uint64_t seed = 12345;
  /// Fraction of additional filler-only query-log entries.
  double query_noise_fraction = 0.10;
};

/// One generated category: the extraction corpus (pages + query log +
/// language resources) and the evaluation truth sample built with the
/// §VI-B protocol (correct / incorrect judgements; alias knowledge).
struct GeneratedCategory {
  core::Corpus corpus;
  core::TruthSample truth;
  /// Canonical attribute names of the schema (union over sub-schemas for
  /// heterogeneous categories).
  std::vector<std::string> attribute_names;
};

/// Generates the synthetic corpus + ground truth for `spec`.
/// Deterministic in (spec, config).
GeneratedCategory GenerateCategory(const CategorySpec& spec,
                                   const GeneratorConfig& config);

/// Convenience overload: build the schema and generate in one call.
GeneratedCategory GenerateCategory(CategoryId id,
                                   const GeneratorConfig& config);

}  // namespace pae::datagen

#endif  // PAE_DATAGEN_GENERATOR_H_
