#include "datagen/word_factory.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "text/utf8.h"

namespace pae::datagen {

namespace {

// Katakana syllabary subset used to compose product-ish words.
const std::vector<std::string>& KatakanaSyllables() {
  static const auto* kSyllables = new std::vector<std::string>{
      "ア", "イ", "ウ", "エ", "オ", "カ", "キ", "ク", "ケ", "コ",
      "サ", "シ", "ス", "セ", "ソ", "タ", "チ", "ツ", "テ", "ト",
      "ナ", "ニ", "ヌ", "ネ", "ノ", "ハ", "ヒ", "フ", "ヘ", "ホ",
      "マ", "ミ", "ム", "メ", "モ", "ヤ", "ユ", "ヨ", "ラ", "リ",
      "ル", "レ", "ロ", "ワ", "ン", "ー", "ガ", "ギ", "グ", "ゲ",
      "ゴ", "ザ", "ジ", "ズ", "ゼ", "ゾ", "ダ", "デ", "ド", "バ",
      "ビ", "ブ", "ベ", "ボ", "パ", "ピ", "プ", "ペ", "ポ"};
  return *kSyllables;
}

// Pool of CJK ideographs for pseudo-kanji value/filler words.
const std::vector<std::string>& KanjiPool() {
  static const auto* kPool = new std::vector<std::string>{
      "高", "品", "質", "新", "型", "軽", "強", "速", "静", "大",
      "小", "中", "上", "下", "外", "内", "自", "動", "手", "作",
      "業", "用", "専", "家", "庭", "園", "花", "形", "式", "能",
      "力", "電", "源", "水", "火", "風", "光", "音", "波", "熱",
      "冷", "温", "固", "柔", "軟", "硬", "黒", "白", "赤", "青",
      "緑", "黄", "銀", "金", "茶", "紫", "灰", "桜", "紺", "橙"};
  return *kPool;
}

const std::vector<std::string>& JaFunctionWords() {
  static const auto* kWords = new std::vector<std::string>{
      "の", "は", "が", "を", "に", "で", "と", "も", "や", "この",
      "その", "より", "から", "まで"};
  return *kWords;
}

const std::vector<std::string>& JaCopulas() {
  static const auto* kWords =
      new std::vector<std::string>{"です", "ます", "でした", "になります"};
  return *kWords;
}

const std::vector<std::string>& JaUnits() {
  static const auto* kUnits = new std::vector<std::string>{
      "kg", "g", "cm", "mm", "秒", "万画素", "W", "L", "ml", "号", "倍"};
  return *kUnits;
}

const std::vector<std::string>& DeSyllables() {
  static const auto* kSyllables = new std::vector<std::string>{
      "bau", "berg", "blat", "brau", "brief", "dorf", "fach", "feld",
      "gar",  "gel",  "gras", "halt", "haus",  "hof",  "kam",  "kas",
      "kes",  "klap", "korb", "kraft", "lade", "land", "lauf", "lech",
      "mark", "meis", "pfan", "rahm", "rand",  "rau",  "reis", "scha",
      "schlos", "schnit", "sei", "stahl", "stein", "tal", "tor", "wald",
      "wan",  "wer",  "zeug", "zin"};
  return *kSyllables;
}

const std::vector<std::string>& DeFunctionWords() {
  static const auto* kWords = new std::vector<std::string>{
      "der", "die", "das", "mit", "und", "für", "aus", "ein", "eine",
      "im",  "am",  "zum", "bei", "sehr"};
  return *kWords;
}

const std::vector<std::string>& DeCopulas() {
  static const auto* kWords = new std::vector<std::string>{
      "ist", "hat", "beträgt", "bietet", "liefert"};
  return *kWords;
}

const std::vector<std::string>& DeUnits() {
  static const auto* kUnits = new std::vector<std::string>{
      "kg", "g", "cm", "mm", "Watt", "Liter", "ml", "Stück"};
  return *kUnits;
}

}  // namespace

WordFactory::WordFactory(text::Language lang) : lang_(lang) {}

std::string WordFactory::MakeNoun(Rng* rng, int syllables) const {
  std::string out;
  if (lang_ == text::Language::kJa) {
    const auto& pool = KatakanaSyllables();
    for (int i = 0; i < syllables; ++i) out += rng->Pick(pool);
    return out;
  }
  const auto& pool = DeSyllables();
  for (int i = 0; i < syllables; ++i) out += rng->Pick(pool);
  if (!out.empty()) {
    out[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(out[0])));
  }
  return out;
}

std::string WordFactory::MakeIdeographWord(Rng* rng, int len) const {
  if (lang_ != text::Language::kJa) return MakeNoun(rng, len);
  std::string out;
  for (int i = 0; i < len; ++i) out += rng->Pick(KanjiPool());
  return out;
}

const std::vector<std::string>& WordFactory::FunctionWords() const {
  return lang_ == text::Language::kJa ? JaFunctionWords() : DeFunctionWords();
}

const std::vector<std::string>& WordFactory::Copulas() const {
  return lang_ == text::Language::kJa ? JaCopulas() : DeCopulas();
}

const std::vector<std::string>& WordFactory::Units() const {
  return lang_ == text::Language::kJa ? JaUnits() : DeUnits();
}

std::string WordFactory::FormatNumber(double value, int decimals,
                                      bool thousands_sep) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  std::string s(buf);
  const char decimal_sep = (lang_ == text::Language::kDe) ? ',' : '.';
  const char group_sep = (lang_ == text::Language::kDe) ? '.' : ',';
  size_t dot = s.find('.');
  std::string integer_part = (dot == std::string::npos) ? s : s.substr(0, dot);
  std::string frac_part = (dot == std::string::npos) ? "" : s.substr(dot + 1);

  if (thousands_sep && integer_part.size() > 3) {
    std::string grouped;
    int count = 0;
    for (size_t i = integer_part.size(); i-- > 0;) {
      grouped.insert(grouped.begin(), integer_part[i]);
      if (++count == 3 && i > 0) {
        grouped.insert(grouped.begin(), group_sep);
        count = 0;
      }
    }
    integer_part = grouped;
  }
  if (frac_part.empty()) return integer_part;
  return integer_part + decimal_sep + frac_part;
}

}  // namespace pae::datagen
