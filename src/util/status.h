#ifndef PAE_UTIL_STATUS_H_
#define PAE_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

namespace pae {

/// Error categories used across the library. Library code does not throw
/// exceptions; fallible operations return a `Status` or a `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A cheap, copyable success-or-error value. Mirrors the error-handling
/// idiom of production database libraries (RocksDB `Status`, Arrow
/// `Status`): OK statuses carry no allocation, error statuses carry a
/// code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of an error result aborts in checked builds (PAE_DCHECK, which
/// logs the violated contract with file:line through util/logging).
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error status: allows `return Status::...;`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    PAE_DCHECK(!status_.ok())
        << "Result constructed from OK status needs a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PAE_DCHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    PAE_DCHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    PAE_DCHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pae

/// Propagates an error status from an expression returning Status.
#define PAE_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::pae::Status _pae_status = (expr);        \
    if (!_pae_status.ok()) return _pae_status; \
  } while (0)

#endif  // PAE_UTIL_STATUS_H_
