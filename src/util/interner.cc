#include "util/interner.h"

#include <cstring>

#include "util/logging.h"

namespace pae::util {

namespace {
/// Max load factor: resize once size > capacity * 7/8. Linear probing
/// stays short at this density because the finalizer below spreads
/// clustered inputs.
constexpr size_t kLoadNum = 7;
constexpr size_t kLoadDen = 8;
}  // namespace

FlatStringInterner::FlatStringInterner() {
  slots_.assign(kMinCapacity, Slot{});
  mask_ = kMinCapacity - 1;
}

FlatStringInterner::FlatStringInterner(const FlatStringInterner& other)
    : FlatStringInterner() {
  Reserve(other.size());
  for (size_t id = 0; id < other.size(); ++id) {
    Intern(other.key(static_cast<int>(id)));
  }
}

FlatStringInterner& FlatStringInterner::operator=(
    const FlatStringInterner& other) {
  if (this == &other) return *this;
  FlatStringInterner copy(other);
  *this = std::move(copy);
  return *this;
}

const char* FlatStringInterner::StoreKey(std::string_view key) {
  if (key.size() > kBlockBytes) {
    // Oversized key: dedicated block, inserted *behind* the current
    // block so the current block keeps filling.
    auto block = std::make_unique<char[]>(key.size());
    char* data = block.get();
    std::memcpy(data, key.data(), key.size());
    const size_t at = blocks_.empty() ? 0 : blocks_.size() - 1;
    blocks_.insert(blocks_.begin() + static_cast<long>(at),
                   std::move(block));
    return data;
  }
  if (blocks_.empty() || block_used_ + key.size() > block_cap_) {
    blocks_.push_back(std::make_unique<char[]>(kBlockBytes));
    block_used_ = 0;
    block_cap_ = kBlockBytes;
  }
  char* data = blocks_.back().get() + block_used_;
  if (!key.empty()) std::memcpy(data, key.data(), key.size());
  block_used_ += key.size();
  PAE_DCHECK_LE(block_used_, block_cap_);
  return data;
}

void FlatStringInterner::Rehash(size_t capacity) {
  PAE_DCHECK_GT(capacity, keys_.size());
  PAE_DCHECK_EQ(capacity & (capacity - 1), 0u);  // power of two
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
  for (size_t id = 0; id < keys_.size(); ++id) {
    const std::string_view k(keys_[id].first, keys_[id].second);
    size_t slot = Hash(k) & mask_;
    while (slots_[slot].id != kEmpty) slot = (slot + 1) & mask_;
    slots_[slot].hash = Hash(k);
    slots_[slot].id = static_cast<int32_t>(id);
  }
}

void FlatStringInterner::Reserve(size_t expected_keys) {
  size_t capacity = kMinCapacity;
  while (capacity * kLoadNum / kLoadDen <= expected_keys) capacity <<= 1;
  if (capacity > slots_.size()) Rehash(capacity);
}

int FlatStringInterner::Intern(std::string_view key) {
  PAE_DCHECK_LT(keys_.size(), slots_.size());
  PAE_DCHECK_EQ(mask_, slots_.size() - 1);
  const uint64_t hash = Hash(key);
  size_t slot = hash & mask_;
  while (slots_[slot].id != kEmpty) {
    if (slots_[slot].hash == hash) {
      const auto& [ptr, len] = keys_[static_cast<size_t>(slots_[slot].id)];
      if (len == key.size() &&
          (len == 0 || std::memcmp(ptr, key.data(), len) == 0)) {
        return slots_[slot].id;
      }
    }
    slot = (slot + 1) & mask_;
  }
  const int32_t id = static_cast<int32_t>(keys_.size());
  const char* stored = StoreKey(key);
  keys_.emplace_back(stored, static_cast<uint32_t>(key.size()));
  slots_[slot].hash = hash;
  slots_[slot].id = id;
  if (keys_.size() * kLoadDen > slots_.size() * kLoadNum) {
    Rehash(slots_.size() << 1);
  }
  return id;
}

std::string_view FlatStringInterner::key(int id) const {
  PAE_DCHECK_GE(id, 0);
  PAE_DCHECK_LT(static_cast<size_t>(id), keys_.size());
  const auto& [ptr, len] = keys_[static_cast<size_t>(id)];
  return std::string_view(ptr, len);
}

void FlatStringInterner::ExportPacked(std::vector<PackedStringSlot>* slots,
                                      std::vector<PackedStringKey>* keys,
                                      std::string* arena) const {
  // The slot array is copied verbatim: its layout depends only on the
  // key hashes and insertion order, never on where the key bytes live,
  // so a StringTableView over the export probes exactly like Find().
  slots->clear();
  slots->resize(slots_.size());
  for (size_t i = 0; i < slots_.size(); ++i) {
    (*slots)[i].hash = slots_[i].hash;
    (*slots)[i].id = slots_[i].id;
    (*slots)[i].pad = 0;
  }
  // Key bytes are re-laid into one contiguous arena in id order (the
  // live interner keeps them in chunked blocks with stable pointers —
  // good for growth, wrong for a flat file).
  keys->clear();
  keys->resize(keys_.size());
  size_t total = 0;
  for (const auto& [ptr, len] : keys_) total += len;
  arena->clear();
  arena->reserve(total);
  for (size_t id = 0; id < keys_.size(); ++id) {
    const auto& [ptr, len] = keys_[id];
    (*keys)[id].offset = arena->size();
    (*keys)[id].length = len;
    (*keys)[id].pad = 0;
    arena->append(ptr, len);
  }
}

Status StringTableView::Validate(const PackedStringSlot* slots,
                                 size_t slot_count,
                                 const PackedStringKey* keys,
                                 size_t key_count, size_t arena_bytes) {
  if (slot_count == 0 || (slot_count & (slot_count - 1)) != 0) {
    return Status::InvalidArgument(
        "string table: slot count is not a power of two");
  }
  if (key_count >= slot_count) {
    // A full table would make the linear probe in Find() spin forever
    // on a miss; the interner never exceeds 7/8 load, so a packed table
    // without a free slot is corrupt by construction.
    return Status::InvalidArgument(
        "string table: no free slot (probe would spin)");
  }
  size_t occupied = 0;
  for (size_t i = 0; i < slot_count; ++i) {
    const int32_t id = slots[i].id;
    if (id < 0) continue;
    if (static_cast<size_t>(id) >= key_count) {
      return Status::OutOfRange("string table: slot id out of range");
    }
    ++occupied;
  }
  if (occupied != key_count) {
    return Status::InvalidArgument(
        "string table: occupied slot count does not match key count");
  }
  for (size_t id = 0; id < key_count; ++id) {
    const uint64_t end = keys[id].offset + keys[id].length;
    if (end < keys[id].offset || end > arena_bytes) {
      return Status::OutOfRange("string table: key bytes out of arena bounds");
    }
  }
  return Status::Ok();
}

}  // namespace pae::util
