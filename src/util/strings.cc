#include "util/strings.h"

#include <string.h>

#include <cctype>
#include <cstdio>

namespace pae {

std::vector<std::string> StrSplit(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> StrSplitSkipEmpty(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (auto& piece : StrSplit(s, sep)) {
    if (!piece.empty()) out.push_back(std::move(piece));
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsAsciiDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

namespace {

// strerror_r has two incompatible signatures (POSIX returns int, GNU
// returns char*); overload dispatch picks the right unpacking for
// whichever one the libc provides without a feature-macro guess.
[[maybe_unused]] const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "unknown error";
}
[[maybe_unused]] const char* StrerrorResult(const char* msg,
                                            const char* /*buf*/) {
  return msg != nullptr ? msg : "unknown error";
}

}  // namespace

std::string ErrnoString(int errno_value) {
  char buf[256] = {};
  return StrerrorResult(::strerror_r(errno_value, buf, sizeof(buf)), buf);
}

}  // namespace pae
