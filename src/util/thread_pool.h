#ifndef PAE_UTIL_THREAD_POOL_H_
#define PAE_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace pae::util {

/// Fixed-size worker pool for data-parallel loops over index ranges.
///
/// Determinism contract: ParallelFor partitions [begin, end) into chunks
/// of `grain` consecutive indices. Chunks may run on any worker in any
/// order, so a correct `fn` only writes state owned by its own index (or
/// chunk). For floating-point reductions use OrderedReduce (below),
/// whose decomposition is a pure function of the problem size — never of
/// the thread count or the scheduling — and whose partial results merge
/// in shard index order, so sums are bit-identical for every thread
/// count, 1 included.
class ThreadPool {
 public:
  /// Spawns `threads - 1` workers; the calling thread participates in
  /// every loop, so `threads == 1` runs loops inline and creates no
  /// worker threads at all. Values < 1 are clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(i) for every i in [begin, end), distributing chunks of
  /// `grain` consecutive indices across the pool (grain 0 counts as 1).
  /// Blocks until every index has been processed. If invocations throw,
  /// every chunk still runs and the exception raised by the lowest
  /// throwing chunk is rethrown here — a deterministic choice, unlike
  /// "first to throw wins".
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t)>& fn)
      PAE_EXCLUDES(mutex_);

  /// Hardware concurrency with a floor of 1 (hardware_concurrency may
  /// legally return 0).
  static int DefaultThreads();

  /// Resolves a user-facing thread-count knob: 0 means "auto"
  /// (DefaultThreads), negative values clamp to 1. Callers with a Status
  /// channel should reject negatives before resolving; this clamp is the
  /// UB-free safety net for the ones without.
  static int ResolveThreads(int configured);

 private:
  struct Job {
    size_t begin = 0;
    size_t end = 0;
    size_t grain = 1;
    size_t num_chunks = 0;
    const std::function<void(size_t)>* fn = nullptr;
    std::atomic<size_t> next_chunk{0};
    std::atomic<size_t> chunks_done{0};
    Mutex error_mutex;
    /// Lowest-chunk exception wins; both fields move under error_mutex
    /// (read back on the caller thread only after every chunk joined).
    std::exception_ptr error PAE_GUARDED_BY(error_mutex);
    size_t error_chunk PAE_GUARDED_BY(error_mutex) = SIZE_MAX;
    /// Total nanoseconds threads spent inside RunChunks for this job;
    /// feeds the threadpool.busy_nanos utilization counter.
    std::atomic<int64_t> busy_nanos{0};
  };

  void WorkerLoop();
  /// Claims chunks from `job` until none remain. Runs on workers and on
  /// the calling thread alike.
  void RunChunks(Job* job);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar wake_;  // workers: a new job (or stop) arrived
  CondVar done_;  // caller: all chunks of the job finished
  std::shared_ptr<Job> job_ PAE_GUARDED_BY(mutex_);
  uint64_t epoch_ PAE_GUARDED_BY(mutex_) = 0;  // job generation
  bool stop_ PAE_GUARDED_BY(mutex_) = false;
};

/// Number of shards an ordered reduction splits `n` items into: one
/// shard per `grain` items, capped at `max_shards`, and never a function
/// of the thread count — the cap is what bounds the merge cost and the
/// per-shard accumulator memory.
inline size_t NumReductionShards(size_t n, size_t grain, size_t max_shards) {
  if (n == 0) return 0;
  if (grain == 0) grain = 1;
  if (max_shards == 0) max_shards = 1;
  const size_t shards = (n + grain - 1) / grain;
  return shards < max_shards ? shards : max_shards;
}

/// Deterministic ordered reduction over [0, n).
///
/// The range splits into NumReductionShards(n, grain, max_shards)
/// contiguous shards: shard s covers [s*n/S, (s+1)*n/S). For each shard
/// `make_state()` builds a private accumulator (called on the calling
/// thread, in shard order), `item(state, i)` folds item i into it with i
/// ascending inside the shard, and once every shard has finished
/// `merge(state, s)` runs on the calling thread in ascending shard
/// order. Because the decomposition and the merge order depend only on
/// (n, grain, max_shards), the result — floating-point rounding included
/// — is identical for every pool size.
template <typename State, typename MakeState, typename ItemFn,
          typename MergeFn>
void OrderedReduce(ThreadPool& pool, size_t n, size_t grain,
                   size_t max_shards, MakeState make_state, ItemFn item,
                   MergeFn merge) {
  const size_t shards = NumReductionShards(n, grain, max_shards);
  if (shards == 0) return;
  std::vector<State> states;
  states.reserve(shards);
  for (size_t s = 0; s < shards; ++s) states.push_back(make_state());
  pool.ParallelFor(0, shards, 1, [&](size_t s) {
    const size_t lo = s * n / shards;
    const size_t hi = (s + 1) * n / shards;
    State& state = states[s];
    for (size_t i = lo; i < hi; ++i) item(state, i);
  });
  for (size_t s = 0; s < shards; ++s) merge(states[s], s);
}

}  // namespace pae::util

#endif  // PAE_UTIL_THREAD_POOL_H_
