#ifndef PAE_UTIL_CONCURRENT_INTERNER_H_
#define PAE_UTIL_CONCURRENT_INTERNER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "util/interner.h"
#include "util/logging.h"

namespace pae::util {

/// Lock-free open-addressing string interner for the streaming
/// ingestion pass: many workers intern page tokens and candidate keys
/// concurrently while pages complete out of order.
///
/// The catch is the determinism contract: FlatStringInterner ids are
/// dense *first-insertion-order* ids, and that order is part of every
/// downstream artifact (Vocab words, CompiledCorpus dictionaries, the
/// model files themselves). Under concurrency the insertion order is
/// scheduling noise. So interning runs in two phases:
///
///   1. Concurrent phase — `Intern` is safe from any number of threads
///      and returns a stable `Handle`. Handles are claim-order ids:
///      dense, but scheduling-dependent. Workers store handles, never
///      ids.
///   2. Canonicalization — after the parallel region joins, one O(n)
///      `Canonicalize(order)` pass renumbers the handles in the
///      caller's deterministic order (page-major first occurrence for
///      ingestion). `id(handle)` then yields exactly the dense id a
///      serial FlatStringInterner pass over `order` would have
///      assigned, at every thread count.
///
/// Slot protocol (16-byte slots, linear probing):
///
///   struct Slot { atomic<uint64> hash; atomic<uint32> entry; pad; }
///
///   * hash == 0 marks an empty slot (real hashes are forced nonzero).
///     An inserter claims an empty slot by CAS-ing 0 → hash; exactly
///     one thread wins a slot.
///   * entry == 0 marks a claimed-but-unpublished slot. The winner
///     copies the key bytes into the arena, fills its handle-table row,
///     and publishes with a release store of handle + 1. Probers that
///     match the hash acquire-load `entry`, spin the (tiny) window
///     until it is nonzero, then memcmp the key bytes — same-hash
///     different-key probes continue down the table.
///
/// Memory orders (the full table is in DESIGN.md §14):
///   hash CAS        acq_rel   claim is both publish and observe point
///   hash load       acquire   pairs with a winner's CAS
///   entry store     release   publishes arena bytes + handle row
///   entry load      acquire   pairs with the store above
///   arena bump      relaxed   bytes are published by `entry`, not here
///   chunk ptr CAS   acq_rel   first-needer allocates, losers free
///
/// Growth: none. The table is pre-sized from `expected_keys` with a
/// load-factor guard — interning may exceed the estimate up to the
/// guard (1.5× at the default 50% sizing), past which it PAE_CHECK-
/// fails with a resize instruction rather than deadlocking on a full
/// table. Key bytes live in append-only chunks claimed by an atomic
/// bump cursor; a key never spans a chunk boundary, and chunk memory is
/// never moved or freed before destruction, so `key()` views stay valid
/// for the interner's lifetime.
class ConcurrentStringInterner {
 public:
  /// Stable claim-order id returned by the concurrent phase.
  using Handle = uint32_t;
  static constexpr Handle kInvalidHandle = 0xFFFFFFFFu;

  /// Pre-sizes for `expected_keys` distinct keys (capacity = next power
  /// of two above 2× that, so the steady-state load factor is ≤ 1/2).
  explicit ConcurrentStringInterner(size_t expected_keys);
  ~ConcurrentStringInterner();

  ConcurrentStringInterner(const ConcurrentStringInterner&) = delete;
  ConcurrentStringInterner& operator=(const ConcurrentStringInterner&) =
      delete;

  /// Returns the handle for `key`, inserting a copy of its bytes if it
  /// is new. Thread-safe, lock-free (the only wait is the publish
  /// window of a racing inserter of the same slot).
  Handle Intern(std::string_view key);

  /// Returns the handle for `key` or kInvalidHandle. Thread-safe
  /// against concurrent Intern calls.
  Handle Find(std::string_view key) const;

  /// The key bytes for a handle this thread obtained from Intern/Find
  /// (or any handle once the parallel region joined). Valid for the
  /// interner's lifetime.
  std::string_view key(Handle handle) const {
    PAE_DCHECK_LT(handle, next_handle_.load(std::memory_order_acquire));
    const Entry& entry = entries_[handle];
    return std::string_view(entry.data, entry.length);
  }

  /// Number of distinct keys claimed so far. Exact once every interning
  /// thread joined; during the concurrent phase it may briefly count a
  /// claim whose key bytes are still being published.
  size_t size() const {
    return next_handle_.load(std::memory_order_acquire);
  }

  /// Keys the table can hold before the load-factor guard fires.
  size_t max_keys() const { return max_keys_; }
  size_t capacity() const { return mask_ + 1; }

  // ---- canonicalization (single-threaded, after the workers join) ----

  /// Assigns dense canonical ids 0..size()-1 by first occurrence in
  /// `order` — a handle sequence in the deterministic order a serial
  /// pass would have interned (duplicates fine, every handle must
  /// appear). O(|order|).
  void Canonicalize(const std::vector<Handle>& order);

  /// The canonical id for a handle (after Canonicalize).
  int32_t id(Handle handle) const {
    PAE_DCHECK_LT(static_cast<size_t>(handle), ids_.size());
    return ids_[handle];
  }

  /// The key owning canonical id `id` (after Canonicalize).
  std::string_view key_for_id(int32_t id) const {
    PAE_DCHECK_GE(id, 0);
    PAE_DCHECK_LT(static_cast<size_t>(id), id_to_handle_.size());
    return key(id_to_handle_[static_cast<size_t>(id)]);
  }

  bool canonicalized() const { return !id_to_handle_.empty() || size() == 0; }

 private:
  struct Slot {
    /// 0 = empty. Claimed (CAS 0 → hash) by exactly one inserter.
    std::atomic<uint64_t> hash{0};
    /// 0 = claimed but unpublished; handle + 1 once the key bytes and
    /// the handle-table row are readable.
    std::atomic<uint32_t> entry{0};
    uint32_t pad = 0;
  };
  static_assert(sizeof(Slot) == 16, "slot is one half cache line");

  struct Entry {
    const char* data = nullptr;
    uint32_t length = 0;
  };

  static constexpr size_t kMinCapacity = 64;
  /// Arena chunk size; also the maximum internable key length (a key
  /// never spans chunks).
  static constexpr size_t kChunkBytes = 256 * 1024;
  /// Fixed chunk directory: 8192 × 256 KiB = 2 GiB of key bytes, far
  /// past any corpus dictionary; the directory itself is 64 KiB.
  static constexpr size_t kMaxChunks = 8192;

  /// Bump-allocates `length` arena bytes that do not cross a chunk
  /// boundary and returns a stable pointer.
  char* AllocateKeyBytes(size_t length);

  std::unique_ptr<Slot[]> slots_;
  size_t mask_ = 0;       // capacity - 1 (capacity is a power of two)
  size_t max_keys_ = 0;   // load-factor guard (3/4 of capacity)
  size_t expected_keys_ = 0;

  /// handle → (arena pointer, length). Pre-sized to max_keys_; row h is
  /// written by h's claimer before the slot's `entry` release-store and
  /// read only after the matching acquire load.
  std::unique_ptr<Entry[]> entries_;
  std::atomic<uint32_t> next_handle_{0};

  std::unique_ptr<std::atomic<char*>[]> chunks_;
  std::atomic<uint64_t> arena_next_{0};

  /// Canonicalization output (single-threaded phase).
  std::vector<int32_t> ids_;          // handle → canonical id
  std::vector<Handle> id_to_handle_;  // canonical id → handle
};

}  // namespace pae::util

#endif  // PAE_UTIL_CONCURRENT_INTERNER_H_
