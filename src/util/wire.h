#ifndef PAE_UTIL_WIRE_H_
#define PAE_UTIL_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/serial.h"
#include "util/status.h"

namespace pae::util {

/// In-memory counterparts of BinaryWriter/BinaryReader for wire frames:
/// fixed-width little-endian scalars and u32-length-prefixed strings
/// appended to / parsed from a byte buffer instead of a file stream.
/// They share BinaryWriter/BinaryReader's error discipline — every
/// failure latches a non-Ok status, later calls become no-ops, and a
/// corrupt payload can never decode back as Ok — and serial.h's
/// kMaxSerialElements bound on every length word, so a hostile frame
/// cannot request an absurd allocation.
class WireWriter {
 public:
  WireWriter() = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  void PutU8(uint8_t v) { PutRaw(&v, sizeof(v)); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  /// u32 byte count + raw bytes. Strings longer than kMaxSerialElements
  /// latch OutOfRange and append nothing (no truncated length words).
  void PutString(std::string_view s);

  /// The accumulated payload. Meaningless unless ok().
  const std::string& data() const { return buffer_; }
  /// Final state: Ok, or the first latched error.
  Status Finish() const { return status_; }

 private:
  void PutRaw(const void* bytes, size_t size);

  std::string buffer_;
  Status status_;
};

/// Parses a payload produced by WireWriter (or hostile bytes from the
/// wire). Every Get* returns false once the buffer underruns or a
/// length word exceeds kMaxSerialElements, and latches status().
class WireReader {
 public:
  /// The reader aliases `payload`; it must outlive the reader.
  explicit WireReader(std::string_view payload) : data_(payload) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  size_t remaining() const { return data_.size() - pos_; }

  bool GetU8(uint8_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU32(uint32_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetU64(uint64_t* v) { return GetRaw(v, sizeof(*v)); }
  bool GetString(std::string* s);

  /// Latches InvalidArgument unless the payload was consumed exactly —
  /// trailing bytes in a request are a protocol violation, not padding.
  bool ExpectEnd();

 private:
  bool GetRaw(void* bytes, size_t size);
  void Latch(Status status);

  std::string_view data_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace pae::util

#endif  // PAE_UTIL_WIRE_H_
