#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "util/strings.h"

namespace pae::util {

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::NotFound("mmap: cannot open " + path + ": " +
                            ErrnoString(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const std::string err = ErrnoString(errno);
    ::close(fd);
    return Status::Internal("mmap: fstat " + path + ": " + err);
  }
  // Directories open fine but map with surprising errnos (or not at
  // all); FIFOs and devices would block or lie about st_size. Only
  // regular files have the "st_size bytes, mappable" contract.
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::InvalidArgument("mmap: " + path +
                                   " is not a regular file");
  }
  MmapFile file;
  file.size_ = static_cast<size_t>(st.st_size);
  if (file.size_ > 0) {
    // PROT_READ + MAP_SHARED: read-only pages backed directly by the
    // page cache, shared across every process mapping the same file.
    void* addr =
        ::mmap(nullptr, file.size_, PROT_READ, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      const std::string err = ErrnoString(errno);
      ::close(fd);
      return Status::Internal("mmap: map " + path + ": " + err);
    }
    file.data_ = static_cast<const uint8_t*>(addr);
  }
  // The mapping outlives the descriptor (POSIX keeps the pages alive).
  ::close(fd);
  return file;
}

}  // namespace pae::util
