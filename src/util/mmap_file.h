#ifndef PAE_UTIL_MMAP_FILE_H_
#define PAE_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace pae::util {

/// RAII read-only memory mapping of a whole file.
///
/// The mapping is `MAP_SHARED`, so every process that opens the same
/// artifact shares one set of physical pages — N pae-serve workers on
/// one host pay for the model's weight blocks once, and a hot-swap
/// publish touches no model-sized memory at all (the kernel pages the
/// file in lazily on first access).
///
/// Move-only; the destructor unmaps. All accessors are valid only while
/// the object (or a shared_ptr owner holding it) is alive — the
/// zero-copy model views hand out spans into `data()`, so they carry a
/// `shared_ptr<const void>` owner to pin the mapping.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. Empty files map successfully with
  /// size() == 0 and data() == nullptr.
  static Result<MmapFile> Open(const std::string& path);

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool mapped() const { return data_ != nullptr || size_ == 0; }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace pae::util

#endif  // PAE_UTIL_MMAP_FILE_H_
