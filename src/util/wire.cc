#include "util/wire.h"

#include <cstring>

namespace pae::util {

void WireWriter::PutRaw(const void* bytes, size_t size) {
  if (!status_.ok()) return;
  buffer_.append(static_cast<const char*>(bytes), size);
}

void WireWriter::PutString(std::string_view s) {
  if (!status_.ok()) return;
  if (s.size() > kMaxSerialElements) {
    status_ = Status::OutOfRange("wire string of " +
                                 std::to_string(s.size()) +
                                 " bytes exceeds kMaxSerialElements");
    return;
  }
  PutU32(static_cast<uint32_t>(s.size()));
  buffer_.append(s.data(), s.size());
}

void WireReader::Latch(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

bool WireReader::GetRaw(void* bytes, size_t size) {
  if (!status_.ok()) return false;
  if (data_.size() - pos_ < size) {
    Latch(Status::OutOfRange("wire payload truncated: need " +
                             std::to_string(size) + " bytes, have " +
                             std::to_string(data_.size() - pos_)));
    return false;
  }
  std::memcpy(bytes, data_.data() + pos_, size);
  pos_ += size;
  return true;
}

bool WireReader::GetString(std::string* s) {
  uint32_t size = 0;
  if (!GetU32(&size)) return false;
  if (size > kMaxSerialElements) {
    Latch(Status::OutOfRange("wire string length " + std::to_string(size) +
                             " exceeds kMaxSerialElements"));
    return false;
  }
  if (data_.size() - pos_ < size) {
    Latch(Status::OutOfRange("wire string truncated: length word says " +
                             std::to_string(size) + ", payload has " +
                             std::to_string(data_.size() - pos_)));
    return false;
  }
  s->assign(data_.data() + pos_, size);
  pos_ += size;
  return true;
}

bool WireReader::ExpectEnd() {
  if (!status_.ok()) return false;
  if (pos_ != data_.size()) {
    Latch(Status::InvalidArgument(
        std::to_string(data_.size() - pos_) +
        " trailing bytes after a complete wire message"));
    return false;
  }
  return true;
}

}  // namespace pae::util
