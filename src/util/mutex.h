#ifndef PAE_UTIL_MUTEX_H_
#define PAE_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace pae::util {

/// Annotated mutex: a thin std::mutex wrapper that Clang's
/// -Wthread-safety analysis can see. Every field the mutex protects is
/// declared PAE_GUARDED_BY(the_mutex), every helper that expects it
/// held is PAE_REQUIRES(the_mutex), and the compiler then proves the
/// lock discipline on every path — before a test (or TSan) ever runs.
///
/// This is the only mutex type allowed outside src/util/ (pae_lint's
/// raw-mutex rule): std::mutex carries no annotations, so code using it
/// is invisible to the analysis.
class PAE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PAE_ACQUIRE() { mu_.lock(); }
  void Unlock() PAE_RELEASE() { mu_.unlock(); }
  bool TryLock() PAE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over a pae::util::Mutex — the annotated std::lock_guard.
class PAE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) PAE_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() PAE_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait() takes the mutex the
/// caller already holds (PAE_REQUIRES-checked) and re-holds it on
/// return, exactly like std::condition_variable — but spelled so the
/// analysis tracks the lock across the wait.
///
/// Use the explicit-loop idiom rather than a predicate lambda:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);   // ready_ is PAE_GUARDED_BY(mu_)
///
/// A predicate lambda would be analyzed as a separate function that
/// touches guarded state without visibly holding the lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits, and re-acquires `mu` before
  /// returning. Spurious wakeups happen; always wait in a while loop.
  void Wait(Mutex& mu) PAE_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() keeps it held when the unique_lock goes out of scope.
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pae::util

#endif  // PAE_UTIL_MUTEX_H_
