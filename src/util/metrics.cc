#include "util/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/logging.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace pae::util {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds,
                     const std::atomic<bool>* enabled)
    : bounds_(std::move(bounds)), enabled_(enabled) {
  PAE_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must be ascending";
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::Observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  MutexLock lock(mutex_);
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  ++counts_[bucket];
  sum_ += v;
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
}

uint64_t Histogram::count() const {
  MutexLock lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  MutexLock lock(mutex_);
  return sum_;
}

double Histogram::min() const {
  MutexLock lock(mutex_);
  return min_;
}

double Histogram::max() const {
  MutexLock lock(mutex_);
  return max_;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  MutexLock lock(mutex_);
  return counts_;
}

void Histogram::Reset() {
  MutexLock lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = min_ = max_ = 0;
}

// ---------------------------------------------------------------------------
// Series
// ---------------------------------------------------------------------------

void Series::Append(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  MutexLock lock(mutex_);
  values_.push_back(v);
}

void Series::Extend(const std::vector<double>& values) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  MutexLock lock(mutex_);
  values_.insert(values_.end(), values.begin(), values.end());
}

std::vector<double> Series::values() const {
  MutexLock lock(mutex_);
  return values_;
}

size_t Series::size() const {
  MutexLock lock(mutex_);
  return values_.size();
}

void Series::Reset() {
  MutexLock lock(mutex_);
  values_.clear();
}

// ---------------------------------------------------------------------------
// Default bucket bounds
// ---------------------------------------------------------------------------

const std::vector<double>& DefaultLatencyBoundsSeconds() {
  static const auto* kBounds = new std::vector<double>{
      1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 100, 300};
  return *kBounds;
}

const std::vector<double>& DefaultSizeBounds() {
  static const auto* kBounds = new std::vector<double>{
      1, 10, 100, 1e3, 1e4, 1e5, 1e6, 1e7};
  return *kBounds;
}

// ---------------------------------------------------------------------------
// ScopedTimer
// ---------------------------------------------------------------------------

ScopedTimer::ScopedTimer(Histogram* histogram) : histogram_(histogram) {
  if (histogram_ != nullptr &&
      histogram_->enabled_->load(std::memory_order_relaxed)) {
    start_ = std::chrono::steady_clock::now();
    running_ = true;
  }
}

double ScopedTimer::Stop() {
  if (!running_) return 0;
  running_ = false;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  histogram_->Observe(elapsed.count());
  return elapsed.count();
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static auto* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(std::string_view name,
                                                    Kind kind) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return nullptr;
  PAE_CHECK(it->second.kind == kind)
      << "metric '" << std::string(name)
      << "' re-requested with a different type";
  return &it->second;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(mutex_);
  if (Entry* entry = FindOrNull(name, Kind::kCounter)) {
    return entry->counter.get();
  }
  Entry entry;
  entry.kind = Kind::kCounter;
  entry.counter.reset(new Counter(&enabled_));
  return metrics_.emplace(std::string(name), std::move(entry))
      .first->second.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(mutex_);
  if (Entry* entry = FindOrNull(name, Kind::kGauge)) {
    return entry->gauge.get();
  }
  Entry entry;
  entry.kind = Kind::kGauge;
  entry.gauge.reset(new Gauge(&enabled_));
  return metrics_.emplace(std::string(name), std::move(entry))
      .first->second.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetHistogram(name, DefaultLatencyBoundsSeconds());
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  MutexLock lock(mutex_);
  if (Entry* entry = FindOrNull(name, Kind::kHistogram)) {
    return entry->histogram.get();
  }
  Entry entry;
  entry.kind = Kind::kHistogram;
  entry.histogram.reset(new Histogram(std::move(bounds), &enabled_));
  return metrics_.emplace(std::string(name), std::move(entry))
      .first->second.histogram.get();
}

Series* MetricsRegistry::GetSeries(std::string_view name) {
  MutexLock lock(mutex_);
  if (Entry* entry = FindOrNull(name, Kind::kSeries)) {
    return entry->series.get();
  }
  Entry entry;
  entry.kind = Kind::kSeries;
  entry.series.reset(new Series(&enabled_));
  return metrics_.emplace(std::string(name), std::move(entry))
      .first->second.series.get();
}

void MetricsRegistry::Reset() {
  MutexLock lock(mutex_);
  for (auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
      case Kind::kSeries:
        entry.series->Reset();
        break;
    }
  }
}

RunReport MetricsRegistry::Snapshot() const {
  RunReport report;
  MutexLock lock(mutex_);
  for (const auto& [name, entry] : metrics_) {
    switch (entry.kind) {
      case Kind::kCounter:
        report.counters[name] = entry.counter->value();
        break;
      case Kind::kGauge:
        report.gauges[name] = entry.gauge->value();
        break;
      case Kind::kHistogram: {
        RunReport::HistogramSnapshot snapshot;
        snapshot.bounds = entry.histogram->bounds();
        snapshot.counts = entry.histogram->bucket_counts();
        snapshot.count = entry.histogram->count();
        snapshot.sum = entry.histogram->sum();
        snapshot.min = entry.histogram->min();
        snapshot.max = entry.histogram->max();
        report.histograms[name] = std::move(snapshot);
        break;
      }
      case Kind::kSeries:
        report.series[name] = entry.series->values();
        break;
    }
  }
  return report;
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

namespace {

void AppendJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void AppendJsonNumber(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no inf/nan; null keeps the report parsable
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

void RunReport::WriteJson(std::ostream& os) const {
  os << "{\n  \"version\": 1,\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(os, name);
    os << ": " << value;
  }
  os << (counters.empty() ? "},\n" : "\n  },\n");

  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(os, name);
    os << ": ";
    AppendJsonNumber(os, value);
  }
  os << (gauges.empty() ? "},\n" : "\n  },\n");

  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(os, name);
    os << ": {\"count\": " << h.count << ", \"sum\": ";
    AppendJsonNumber(os, h.sum);
    os << ", \"min\": ";
    AppendJsonNumber(os, h.min);
    os << ", \"max\": ";
    AppendJsonNumber(os, h.max);
    os << ", \"buckets\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) os << ", ";
      os << "{\"le\": ";
      if (b < h.bounds.size()) {
        AppendJsonNumber(os, h.bounds[b]);
      } else {
        os << "\"inf\"";
      }
      os << ", \"count\": " << h.counts[b] << "}";
    }
    os << "]}";
  }
  os << (histograms.empty() ? "},\n" : "\n  },\n");

  os << "  \"series\": {";
  first = true;
  for (const auto& [name, values] : series) {
    os << (first ? "\n    " : ",\n    ");
    first = false;
    AppendJsonString(os, name);
    os << ": [";
    for (size_t i = 0; i < values.size(); ++i) {
      if (i > 0) os << ", ";
      AppendJsonNumber(os, values[i]);
    }
    os << "]";
  }
  os << (series.empty() ? "}\n" : "\n  }\n");
  os << "}\n";
}

Status RunReport::WriteJsonFile(const std::string& path) const {
  if (path == "-") {
    WriteJson(std::cout);
    return std::cout.good()
               ? Status::Ok()
               : Status::Internal("failed writing metrics report to stdout");
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out.good()) {
    return Status::Internal("cannot open metrics report file " + path);
  }
  WriteJson(out);
  out.flush();
  if (!out.good()) {
    return Status::Internal("failed writing metrics report " + path);
  }
  return Status::Ok();
}

void RunReport::PrintSummary(std::ostream& os) const {
  if (!histograms.empty()) {
    TablePrinter table("Run report — timers & distributions");
    table.SetHeader({"histogram", "count", "total", "mean", "min", "max"});
    for (const auto& [name, h] : histograms) {
      const double mean =
          h.count > 0 ? h.sum / static_cast<double>(h.count) : 0;
      table.AddRow({name, std::to_string(h.count), FormatDouble(h.sum, 4),
                    FormatDouble(mean, 4), FormatDouble(h.min, 4),
                    FormatDouble(h.max, 4)});
    }
    table.Print(os);
  }
  if (!counters.empty()) {
    TablePrinter table("Run report — counters");
    table.SetHeader({"counter", "value"});
    for (const auto& [name, value] : counters) {
      table.AddRow({name, std::to_string(value)});
    }
    table.Print(os);
  }
  if (!gauges.empty()) {
    TablePrinter table("Run report — gauges");
    table.SetHeader({"gauge", "value"});
    for (const auto& [name, value] : gauges) {
      table.AddRow({name, FormatDouble(value, 4)});
    }
    table.Print(os);
  }
  if (!series.empty()) {
    TablePrinter table("Run report — series");
    table.SetHeader({"series", "n", "values"});
    for (const auto& [name, values] : series) {
      // Print the full series up to 8 entries, then the tail — enough to
      // see per-iteration trajectories without drowning the terminal.
      std::string rendered;
      const size_t shown = std::min<size_t>(values.size(), 8);
      for (size_t i = 0; i < shown; ++i) {
        if (i > 0) rendered += " ";
        rendered += FormatDouble(values[i], 3);
      }
      if (values.size() > shown) {
        rendered += " .. " + FormatDouble(values.back(), 3);
      }
      table.AddRow({name, std::to_string(values.size()), rendered});
    }
    table.Print(os);
  }
}

}  // namespace pae::util
