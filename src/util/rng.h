#ifndef PAE_UTIL_RNG_H_
#define PAE_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace pae {

/// Deterministic pseudo-random generator (xoshiro256** seeded via
/// splitmix64). Every randomized component of the library takes an
/// explicit seed so that all experiments reproduce bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // splitmix64 expansion of the seed into the 4-word state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      state_[i] = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    PAE_CHECK_GT(bound, 0u);
    return NextU64() % bound;  // Modulo bias is negligible for our bounds.
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    PAE_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// True with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniform double in [lo, hi).
  double NextUniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Box–Muller.
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Samples an index from unnormalized non-negative weights.
  /// Returns weights.size()-1 if rounding leaves residual mass.
  size_t SampleIndex(const std::vector<double>& weights) {
    PAE_CHECK(!weights.empty());
    double total = 0;
    for (double w : weights) total += w;
    PAE_CHECK_GT(total, 0);
    double r = NextDouble() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
      r -= weights[i];
      if (r < 0) return i;
    }
    return weights.size() - 1;
  }

  /// Picks a uniformly random element of `v` (must be non-empty).
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    PAE_CHECK(!v.empty());
    return v[NextBounded(v.size())];
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = NextBounded(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each
  /// product / category its own stream so corpora are stable under
  /// parameter changes elsewhere.
  Rng Fork(uint64_t salt) { return Rng(NextU64() ^ (salt * 0x9e3779b9ULL)); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace pae

#endif  // PAE_UTIL_RNG_H_
