#ifndef PAE_UTIL_LOGGING_H_
#define PAE_UTIL_LOGGING_H_

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace pae {
namespace internal_logging {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Minimum severity that is actually emitted. Benchmarks raise this to
/// kWarning to keep experiment output clean.
LogSeverity& MinLogSeverity();

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the global minimum log severity (0=INFO .. 3=FATAL).
void SetMinLogLevel(int level);

/// True when every element of `v` is finite (no NaN, no ±inf). Works for
/// any container of floats/doubles with begin()/end(). The numeric-guard
/// companion of PAE_DCHECK_FINITE: gradient, weight and embedding vectors
/// are validated wholesale at hot-path boundaries.
template <typename Container>
bool IsFiniteVec(const Container& v) {
  for (const auto& x : v) {
    if (!std::isfinite(static_cast<double>(x))) return false;
  }
  return true;
}

}  // namespace pae

#define PAE_LOG_INFO                                                \
  ::pae::internal_logging::LogMessage(                              \
      ::pae::internal_logging::LogSeverity::kInfo, __FILE__, __LINE__)
#define PAE_LOG_WARNING                                             \
  ::pae::internal_logging::LogMessage(                              \
      ::pae::internal_logging::LogSeverity::kWarning, __FILE__, __LINE__)
#define PAE_LOG_ERROR                                               \
  ::pae::internal_logging::LogMessage(                              \
      ::pae::internal_logging::LogSeverity::kError, __FILE__, __LINE__)
#define PAE_LOG_FATAL                                               \
  ::pae::internal_logging::LogMessage(                              \
      ::pae::internal_logging::LogSeverity::kFatal, __FILE__, __LINE__)

#define PAE_LOG(severity) PAE_LOG_##severity

/// CHECK aborts with a message when `cond` is false, in all build modes.
/// Used for programmer errors (broken invariants), not for data errors.
#define PAE_CHECK(cond)                                          \
  if (!(cond))                                                   \
  PAE_LOG(FATAL) << "Check failed: " #cond " at " << __FILE__ << ":" \
                 << __LINE__ << " "

#define PAE_CHECK_EQ(a, b) PAE_CHECK((a) == (b))
#define PAE_CHECK_NE(a, b) PAE_CHECK((a) != (b))
#define PAE_CHECK_LT(a, b) PAE_CHECK((a) < (b))
#define PAE_CHECK_LE(a, b) PAE_CHECK((a) <= (b))
#define PAE_CHECK_GT(a, b) PAE_CHECK((a) > (b))
#define PAE_CHECK_GE(a, b) PAE_CHECK((a) >= (b))

/// DCHECK is the debug-only contract tier: identical to PAE_CHECK in
/// Debug builds and in sanitizer builds (CMake defines
/// PAE_DCHECK_ALWAYS_ON whenever PAE_SANITIZE is set), compiled out to
/// nothing in plain Release builds. Use it on hot paths — per-token
/// bounds checks, per-iteration finiteness guards — where PAE_CHECK's
/// always-on branch is too expensive. Invariants that must hold even in
/// production (serialization framing, public API misuse) stay PAE_CHECK.
#if !defined(NDEBUG) || defined(PAE_DCHECK_ALWAYS_ON)
#define PAE_DCHECK_IS_ON 1
#else
#define PAE_DCHECK_IS_ON 0
#endif

#if PAE_DCHECK_IS_ON
#define PAE_DCHECK(cond) PAE_CHECK(cond)
#else
/// The `while (false)` arm keeps the condition (and any streamed
/// message) syntactically alive — operands stay "used" and type-checked
/// — but dead-code elimination removes every trace from the binary.
#define PAE_DCHECK(cond) \
  while (false) PAE_CHECK(cond)
#endif

#define PAE_DCHECK_EQ(a, b) PAE_DCHECK((a) == (b))
#define PAE_DCHECK_NE(a, b) PAE_DCHECK((a) != (b))
#define PAE_DCHECK_LT(a, b) PAE_DCHECK((a) < (b))
#define PAE_DCHECK_LE(a, b) PAE_DCHECK((a) <= (b))
#define PAE_DCHECK_GT(a, b) PAE_DCHECK((a) > (b))
#define PAE_DCHECK_GE(a, b) PAE_DCHECK((a) >= (b))

/// Numeric guards: a scalar must be finite / a container must contain
/// only finite values. The bootstrap loop's failure mode is a NaN that
/// leaks out of one optimizer step and silently poisons every later
/// cleaning cycle; these make it die at the source in checked builds.
#define PAE_DCHECK_FINITE(x) \
  PAE_DCHECK(std::isfinite(static_cast<double>(x))) << " value=" << (x)
#define PAE_DCHECK_FINITE_VEC(v) PAE_DCHECK(::pae::IsFiniteVec(v))

#endif  // PAE_UTIL_LOGGING_H_
