#ifndef PAE_UTIL_LOGGING_H_
#define PAE_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pae {
namespace internal_logging {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Minimum severity that is actually emitted. Benchmarks raise this to
/// kWarning to keep experiment output clean.
LogSeverity& MinLogSeverity();

/// Accumulates one log line and emits it (to stderr) on destruction.
/// Fatal messages abort the process.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

/// Sets the global minimum log severity (0=INFO .. 3=FATAL).
void SetMinLogLevel(int level);

}  // namespace pae

#define PAE_LOG_INFO                                                \
  ::pae::internal_logging::LogMessage(                              \
      ::pae::internal_logging::LogSeverity::kInfo, __FILE__, __LINE__)
#define PAE_LOG_WARNING                                             \
  ::pae::internal_logging::LogMessage(                              \
      ::pae::internal_logging::LogSeverity::kWarning, __FILE__, __LINE__)
#define PAE_LOG_ERROR                                               \
  ::pae::internal_logging::LogMessage(                              \
      ::pae::internal_logging::LogSeverity::kError, __FILE__, __LINE__)
#define PAE_LOG_FATAL                                               \
  ::pae::internal_logging::LogMessage(                              \
      ::pae::internal_logging::LogSeverity::kFatal, __FILE__, __LINE__)

#define PAE_LOG(severity) PAE_LOG_##severity

/// CHECK aborts with a message when `cond` is false, in all build modes.
/// Used for programmer errors (broken invariants), not for data errors.
#define PAE_CHECK(cond)                                          \
  if (!(cond))                                                   \
  PAE_LOG(FATAL) << "Check failed: " #cond " at " << __FILE__ << ":" \
                 << __LINE__ << " "

#define PAE_CHECK_EQ(a, b) PAE_CHECK((a) == (b))
#define PAE_CHECK_NE(a, b) PAE_CHECK((a) != (b))
#define PAE_CHECK_LT(a, b) PAE_CHECK((a) < (b))
#define PAE_CHECK_LE(a, b) PAE_CHECK((a) <= (b))
#define PAE_CHECK_GT(a, b) PAE_CHECK((a) > (b))
#define PAE_CHECK_GE(a, b) PAE_CHECK((a) >= (b))

#endif  // PAE_UTIL_LOGGING_H_
