#ifndef PAE_UTIL_STRINGS_H_
#define PAE_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pae {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view s, char sep);

/// Splits `s` on `sep`, dropping empty pieces.
std::vector<std::string> StrSplitSkipEmpty(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view StripAsciiWhitespace(std::string_view s);

/// ASCII lowercase copy (multibyte UTF-8 sequences pass through).
std::string AsciiToLower(std::string_view s);

/// True if `s` consists only of ASCII digits (and is non-empty).
bool IsAsciiDigits(std::string_view s);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to);

/// Formats `value` with `digits` decimal places ("12.34").
std::string FormatDouble(double value, int digits);

/// Thread-safe strerror: formats `errno_value` via strerror_r into an
/// owned string. std::strerror returns a pointer into static storage
/// and races against concurrent callers — every errno-to-text path in
/// the tree goes through this instead.
std::string ErrnoString(int errno_value);

}  // namespace pae

#endif  // PAE_UTIL_STRINGS_H_
