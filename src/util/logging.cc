#include "util/logging.h"

namespace pae {
namespace internal_logging {

LogSeverity& MinLogSeverity() {
  static LogSeverity severity = LogSeverity::kInfo;
  return severity;
}

namespace {
const char* SeverityTag(LogSeverity s) {
  switch (s) {
    case LogSeverity::kInfo:
      return "I";
    case LogSeverity::kWarning:
      return "W";
    case LogSeverity::kError:
      return "E";
    case LogSeverity::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityTag(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity()) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging

void SetMinLogLevel(int level) {
  using internal_logging::LogSeverity;
  if (level < 0) level = 0;
  if (level > 3) level = 3;
  internal_logging::MinLogSeverity() = static_cast<LogSeverity>(level);
}

}  // namespace pae
