#ifndef PAE_UTIL_METRICS_H_
#define PAE_UTIL_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace pae::util {

class MetricsRegistry;

/// Monotonically increasing integer metric (events, items, nanoseconds).
/// Additions are atomic and order-independent, so totals are identical
/// for every thread count even when incremented from a ThreadPool loop.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(int64_t n) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
  const std::atomic<bool>* enabled_;
};

/// Last-write-wins double metric (configuration values, sizes).
class Gauge {
 public:
  void Set(double v) {
    if (enabled_->load(std::memory_order_relaxed)) {
      value_.store(v, std::memory_order_relaxed);
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_;
};

/// Fixed-bucket histogram for latencies and sizes. Bucket boundaries are
/// chosen at registration and never change; a value lands in the first
/// bucket whose upper bound is >= the value ("le" semantics), or in the
/// overflow bucket past the last bound. Tracks count/sum/min/max so the
/// run report can print totals and means without re-deriving them.
class Histogram {
 public:
  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  uint64_t count() const;
  double sum() const;
  /// Minimum observed value (0 when count() == 0).
  double min() const;
  double max() const;
  /// Per-bucket counts; size is bounds().size() + 1 (last = overflow).
  std::vector<uint64_t> bucket_counts() const;

 private:
  friend class MetricsRegistry;
  friend class ScopedTimer;  // reads enabled_ to skip the clock entirely
  Histogram(std::vector<double> bounds, const std::atomic<bool>* enabled);
  void Reset();

  mutable Mutex mutex_;
  std::vector<double> bounds_;  // ascending upper bounds, set once in ctor
  std::vector<uint64_t> counts_ PAE_GUARDED_BY(mutex_);  // bounds+1 slots
  uint64_t count_ PAE_GUARDED_BY(mutex_) = 0;
  double sum_ PAE_GUARDED_BY(mutex_) = 0;
  double min_ PAE_GUARDED_BY(mutex_) = 0;
  double max_ PAE_GUARDED_BY(mutex_) = 0;
  const std::atomic<bool>* enabled_;
};

/// Append-only ordered sequence of doubles: per-iteration objective
/// values, per-epoch losses, per-bootstrap-cycle triple counts — any
/// metric whose *order* carries information a histogram would destroy.
class Series {
 public:
  void Append(double v);
  void Extend(const std::vector<double>& values);
  std::vector<double> values() const;
  size_t size() const;

 private:
  friend class MetricsRegistry;
  explicit Series(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void Reset();

  mutable Mutex mutex_;
  std::vector<double> values_ PAE_GUARDED_BY(mutex_);
  const std::atomic<bool>* enabled_;
};

/// Default latency bucket bounds in seconds: 100 µs .. 300 s, 1-3-10
/// progression. Stage timers across the pipeline share these so reports
/// from different runs line up.
const std::vector<double>& DefaultLatencyBoundsSeconds();

/// Default size bucket bounds: powers of ten 1 .. 10^7.
const std::vector<double>& DefaultSizeBounds();

/// Observes the wall time of a scope into a latency histogram, in
/// seconds, on destruction (or at an explicit Stop()). A null histogram
/// or a disabled registry makes the timer a no-op, clock calls included.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram);
  ~ScopedTimer() { Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Observes now instead of at scope exit; later calls are no-ops.
  /// Returns the elapsed seconds (0 when inactive).
  double Stop();

 private:
  Histogram* histogram_;
  std::chrono::steady_clock::time_point start_;
  bool running_ = false;
};

/// Immutable snapshot of a registry, ready for reporting. Maps are
/// ordered by metric name so the JSON and the summary table are
/// deterministic.
struct RunReport {
  struct HistogramSnapshot {
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  // bounds.size() + 1, last = overflow
    uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
  };

  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
  std::map<std::string, std::vector<double>> series;

  /// Structured JSON: {"version": 1, "counters": {...}, "gauges": {...},
  /// "histograms": {...}, "series": {...}}. Non-finite values are
  /// emitted as null so the output always parses.
  void WriteJson(std::ostream& os) const;

  /// Writes the JSON report to `path` ("-" writes to stdout).
  Status WriteJsonFile(const std::string& path) const;

  /// Human-readable end-of-run tables (timers, counters, series tails)
  /// rendered through util/table_printer.
  void PrintSummary(std::ostream& os) const;
};

/// Thread-safe name → metric registry. Metrics are created on first use
/// and live as long as the registry; returned pointers are stable, so
/// hot paths look a metric up once and cache the pointer. Re-requesting
/// a name with a different metric type is a programmer error (PAE_CHECK).
///
/// Naming convention: `<module>.<stage>.<what>[_<unit>]`, lower-case,
/// dot-separated — e.g. `crf.train.seconds`, `cleaning.veto_symbol`,
/// `threadpool.busy_nanos`. Timers are histograms named `*.seconds`.
///
/// Disabling a registry (set_enabled(false)) turns every mutation into a
/// no-op while keeping all pointers valid; reads still work. The
/// pipeline's outputs never depend on the registry either way — metrics
/// observe, they do not steer.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry used by the instrumented pipeline stages.
  static MetricsRegistry& Global();

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// Registers with DefaultLatencyBoundsSeconds() when first created.
  Histogram* GetHistogram(std::string_view name);
  /// `bounds` must be ascending; only the first call's bounds are used.
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);
  Series* GetSeries(std::string_view name);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Zeroes every registered metric; registrations (and handed-out
  /// pointers) survive. Run reports for sequential experiments call this
  /// between runs.
  void Reset();

  RunReport Snapshot() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kSeries };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Series> series;
  };

  Entry* FindOrNull(std::string_view name, Kind kind)
      PAE_REQUIRES(mutex_);

  mutable Mutex mutex_;
  std::atomic<bool> enabled_{true};
  std::map<std::string, Entry, std::less<>> metrics_
      PAE_GUARDED_BY(mutex_);
};

}  // namespace pae::util

#endif  // PAE_UTIL_METRICS_H_
