#include "util/concurrent_interner.h"

#include <cstring>
#include <thread>

namespace pae::util {

namespace {

/// Spin with escalation: a claimed slot publishes within a handful of
/// instructions, so the first iterations busy-wait; past that the
/// claimer was preempted and yielding is cheaper than burning the
/// quantum (this matters on single-core CI runners, where the claimer
/// cannot run until the spinner gives up the CPU).
inline void PublishWait(int spin) {
  if (spin >= 64) std::this_thread::yield();
}

}  // namespace

ConcurrentStringInterner::ConcurrentStringInterner(size_t expected_keys)
    : expected_keys_(expected_keys) {
  size_t capacity = kMinCapacity;
  while (capacity < expected_keys * 2) capacity <<= 1;
  slots_ = std::make_unique<Slot[]>(capacity);
  mask_ = capacity - 1;
  max_keys_ = capacity / 4 * 3;
  entries_ = std::make_unique<Entry[]>(max_keys_);
  chunks_ = std::make_unique<std::atomic<char*>[]>(kMaxChunks);
  for (size_t i = 0; i < kMaxChunks; ++i) {
    chunks_[i].store(nullptr, std::memory_order_relaxed);
  }
}

ConcurrentStringInterner::~ConcurrentStringInterner() {
  for (size_t i = 0; i < kMaxChunks; ++i) {
    delete[] chunks_[i].load(std::memory_order_acquire);
  }
}

char* ConcurrentStringInterner::AllocateKeyBytes(size_t length) {
  PAE_CHECK_LE(length, kChunkBytes)
      << "ConcurrentStringInterner: key longer than one arena chunk";
  // Claim [aligned, aligned + length) with a relaxed CAS loop; a key
  // that would cross a chunk boundary skips to the next chunk (the gap
  // is dead space, never reused). The bytes themselves are published by
  // the slot's `entry` release-store, so the cursor needs no ordering.
  uint64_t start = arena_next_.load(std::memory_order_relaxed);
  uint64_t aligned;
  do {
    const uint64_t room = kChunkBytes - (start & (kChunkBytes - 1));
    aligned = length <= room ? start : start + room;
  } while (!arena_next_.compare_exchange_weak(start, aligned + length,
                                              std::memory_order_relaxed,
                                              std::memory_order_relaxed));
  const size_t chunk_index = static_cast<size_t>(aligned / kChunkBytes);
  PAE_CHECK_LT(chunk_index, kMaxChunks)
      << "ConcurrentStringInterner: arena exhausted (2 GiB of key bytes)";
  char* chunk = chunks_[chunk_index].load(std::memory_order_acquire);
  if (chunk == nullptr) {
    // First thread to need this chunk allocates it; CAS losers free
    // their attempt and use the winner's.
    char* fresh = new char[kChunkBytes];
    char* expected = nullptr;
    if (chunks_[chunk_index].compare_exchange_strong(
            expected, fresh, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      chunk = fresh;
    } else {
      delete[] fresh;
      chunk = expected;
    }
  }
  return chunk + (aligned & (kChunkBytes - 1));
}

ConcurrentStringInterner::Handle ConcurrentStringInterner::Intern(
    std::string_view key) {
  uint64_t hash = FlatStringInterner::Hash(key);
  if (hash == 0) hash = 1;  // 0 marks an empty slot
  size_t slot = hash & mask_;
  for (;;) {
    uint64_t cur = slots_[slot].hash.load(std::memory_order_acquire);
    if (cur == 0) {
      if (slots_[slot].hash.compare_exchange_strong(
              cur, hash, std::memory_order_acq_rel,
              std::memory_order_acquire)) {
        // Claimed: materialize the key, then publish the handle.
        const uint32_t handle =
            next_handle_.fetch_add(1, std::memory_order_relaxed);
        PAE_CHECK_LT(handle, max_keys_)
            << "ConcurrentStringInterner over its load-factor guard: "
            << max_keys_ << " keys (expected_keys=" << expected_keys_
            << "); construct with a larger expected_keys";
        Entry& entry = entries_[handle];
        entry.length = static_cast<uint32_t>(key.size());
        if (key.empty()) {
          // Zero-length keys need no arena bytes; point at the slot
          // array so key() returns a valid (empty) view.
          entry.data = "";
        } else {
          char* data = AllocateKeyBytes(key.size());
          std::memcpy(data, key.data(), key.size());
          entry.data = data;
        }
        slots_[slot].entry.store(handle + 1, std::memory_order_release);
        return handle;
      }
      // Lost the claim; `cur` now holds the winner's hash — fall
      // through to the match check.
    }
    if (cur == hash) {
      uint32_t published =
          slots_[slot].entry.load(std::memory_order_acquire);
      for (int spin = 0; published == 0; ++spin) {
        PublishWait(spin);
        published = slots_[slot].entry.load(std::memory_order_acquire);
      }
      const Handle handle = published - 1;
      const Entry& entry = entries_[handle];
      if (entry.length == key.size() &&
          (key.empty() ||
           std::memcmp(entry.data, key.data(), key.size()) == 0)) {
        return handle;
      }
      // 64-bit hash collision with a different key: keep probing.
    }
    slot = (slot + 1) & mask_;
  }
}

ConcurrentStringInterner::Handle ConcurrentStringInterner::Find(
    std::string_view key) const {
  uint64_t hash = FlatStringInterner::Hash(key);
  if (hash == 0) hash = 1;
  size_t slot = hash & mask_;
  for (size_t probes = 0; probes <= mask_; ++probes) {
    const uint64_t cur = slots_[slot].hash.load(std::memory_order_acquire);
    if (cur == 0) return kInvalidHandle;
    if (cur == hash) {
      // A concurrent inserter may have claimed but not yet published;
      // wait out the window exactly like Intern does, so a Find racing
      // the insertion of its own key cannot miss it.
      uint32_t published =
          slots_[slot].entry.load(std::memory_order_acquire);
      for (int spin = 0; published == 0; ++spin) {
        PublishWait(spin);
        published = slots_[slot].entry.load(std::memory_order_acquire);
      }
      const Handle handle = published - 1;
      const Entry& entry = entries_[handle];
      if (entry.length == key.size() &&
          (key.empty() ||
           std::memcmp(entry.data, key.data(), key.size()) == 0)) {
        return handle;
      }
    }
    slot = (slot + 1) & mask_;
  }
  return kInvalidHandle;
}

void ConcurrentStringInterner::Canonicalize(
    const std::vector<Handle>& order) {
  const size_t n = size();
  ids_.assign(n, -1);
  id_to_handle_.clear();
  id_to_handle_.reserve(n);
  for (const Handle handle : order) {
    PAE_DCHECK_LT(static_cast<size_t>(handle), n);
    int32_t& id = ids_[handle];
    if (id < 0) {
      id = static_cast<int32_t>(id_to_handle_.size());
      id_to_handle_.push_back(handle);
    }
  }
  PAE_CHECK_EQ(id_to_handle_.size(), n)
      << "Canonicalize: order does not cover every interned handle";
}

}  // namespace pae::util
