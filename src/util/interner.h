#ifndef PAE_UTIL_INTERNER_H_
#define PAE_UTIL_INTERNER_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "util/logging.h"
#include "util/status.h"

namespace pae::util {

/// One slot of a packed (on-disk) string table: the open-addressing
/// probe array entry. Mirrors FlatStringInterner's Slot so a mapped
/// table probes exactly like the in-memory one. POD, fixed 16 bytes.
struct PackedStringSlot {
  uint64_t hash = 0;
  int32_t id = -1;  // -1 marks a free slot
  uint32_t pad = 0;
};
static_assert(sizeof(PackedStringSlot) == 16, "slot layout is part of the format");

/// One key of a packed string table: an (offset, length) reference into
/// the table's contiguous arena. POD, fixed 16 bytes.
struct PackedStringKey {
  uint64_t offset = 0;  // byte offset into the arena section
  uint32_t length = 0;
  uint32_t pad = 0;
};
static_assert(sizeof(PackedStringKey) == 16, "key layout is part of the format");

/// Open-addressing string → dense-id dictionary built for hot feature
/// and vocabulary lookups.
///
/// Compared to `std::unordered_map<std::string, int>`:
///  * heterogeneous lookup — `Intern`/`Find` take a `std::string_view`,
///    so callers hash a scratch buffer or a token slice without ever
///    materializing a `std::string` temporary;
///  * one flat slot array (64-bit hash + id per slot, linear probing)
///    instead of a node allocation per key, so probes hit one or two
///    cache lines;
///  * key bytes live in a chunked arena owned by the interner. Arena
///    blocks are never reallocated, so the `std::string_view`s returned
///    by `key()` stay valid for the interner's whole lifetime — across
///    any number of later insertions and table rehashes.
///
/// Ids are dense and assigned in first-insertion order: the i-th
/// distinct key interned gets id i. This makes the id assignment a pure
/// function of the insertion sequence (unlike unordered_map iteration
/// order, which is implementation defined).
///
/// Not thread-safe for writes; concurrent `Find`/`key` calls are safe
/// once no thread is interning.
class FlatStringInterner {
 public:
  FlatStringInterner();
  ~FlatStringInterner() = default;

  /// Copying re-interns every key into a fresh arena (rarely needed —
  /// models are typically moved).
  FlatStringInterner(const FlatStringInterner& other);
  FlatStringInterner& operator=(const FlatStringInterner& other);
  FlatStringInterner(FlatStringInterner&&) noexcept = default;
  FlatStringInterner& operator=(FlatStringInterner&&) noexcept = default;

  /// Returns the id for `key`, inserting a copy of its bytes into the
  /// arena if it is new.
  int Intern(std::string_view key);

  /// Returns the id for `key` or -1 if absent. Never allocates.
  /// Defined inline below — it is the per-feature probe on the compile
  /// hot path.
  int Find(std::string_view key) const;

  /// True if `key` has been interned.
  bool Contains(std::string_view key) const { return Find(key) >= 0; }

  /// The key for `id` (valid for the interner's lifetime).
  std::string_view key(int id) const;

  size_t size() const { return keys_.size(); }
  bool empty() const { return keys_.empty(); }

  /// Pre-sizes the slot table for `expected_keys` insertions: one
  /// up-front rehash instead of the O(log n) doubling storm a bulk
  /// build otherwise pays. Call it wherever the final size is known
  /// (model load paths, survivor counts after a frequency cut).
  void Reserve(size_t expected_keys);

  /// Current slot-table capacity (observability for Reserve call
  /// sites and tests; the table itself is an implementation detail).
  size_t capacity() const { return slots_.size(); }

  /// Deterministic flat export for the zero-copy model artifact: the
  /// live slot table (hash + id per slot, same capacity and probe
  /// layout), the id → (offset, length) key references, and one
  /// contiguous arena holding every key's bytes in id order. A
  /// StringTableView over these three buffers answers Find()/key()
  /// identically to this interner.
  void ExportPacked(std::vector<PackedStringSlot>* slots,
                    std::vector<PackedStringKey>* keys,
                    std::string* arena) const;

  /// 64-bit wyhash-style chunked multiply-mix with an avalanche
  /// finalizer (splitmix64-style), so short keys with shared prefixes
  /// still spread over the table. Defined inline below.
  static uint64_t Hash(std::string_view key);

 private:
  struct Slot {
    uint64_t hash = 0;
    int32_t id = kEmpty;  // kEmpty marks a free slot
  };
  static constexpr int32_t kEmpty = -1;
  static constexpr size_t kMinCapacity = 16;
  /// Arena block size; keys longer than this get a dedicated block.
  static constexpr size_t kBlockBytes = 64 * 1024;

  /// Grows the slot table to `capacity` (a power of two) and re-seats
  /// every existing id. Key bytes never move.
  void Rehash(size_t capacity);
  /// Copies `key`'s bytes into the arena; returns the stable pointer.
  const char* StoreKey(std::string_view key);

  std::vector<Slot> slots_;  // size is a power of two
  size_t mask_ = 0;          // slots_.size() - 1
  /// id → stable (pointer, length) into the arena, insertion order.
  std::vector<std::pair<const char*, uint32_t>> keys_;
  std::vector<std::unique_ptr<char[]>> blocks_;
  size_t block_used_ = 0;
  size_t block_cap_ = 0;
};

inline uint64_t FlatStringInterner::Hash(std::string_view key) {
  // wyhash-style chunked multiply-mix: 8 bytes per round instead of
  // FNV's byte-at-a-time multiply chain — feature keys are 8–25 bytes,
  // so this is 1–3 rounds. Only internal consistency matters (ids come
  // from insertion order, never from hash values), so the byte-order
  // dependence of the memcpy loads is fine.
  const char* p = key.data();
  size_t n = key.size();
  uint64_t h = 0x9e3779b97f4a7c15ull ^ (key.size() * 0xff51afd7ed558ccdull);
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    chunk *= 0x9ddfea08eb382d69ull;
    chunk ^= chunk >> 32;
    h = (h ^ chunk) * 0xc2b2ae3d27d4eb4full;
    p += 8;
    n -= 8;
  }
  if (n > 0) {
    uint64_t tail = 0;
    std::memcpy(&tail, p, n);
    h = (h ^ tail) * 0x87c37b91114253d5ull;
  }
  // splitmix64-style finalizer so short, similar keys (w[-2]=…,
  // w[-1]=…) don't leave correlated low bits — the table indexes with
  // the low bits.
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 32;
  return h;
}

/// Read-only string → dense-id lookup over a packed table produced by
/// FlatStringInterner::ExportPacked — typically three sections of an
/// mmap'ed model artifact. Performs zero allocations: the slot array,
/// key references and arena are used in place, so N processes mapping
/// the same artifact share one physical copy of the feature dictionary.
///
/// The probe algorithm (hash, mask, linear probe, hash-then-memcmp
/// confirm) is byte-for-byte the one in FlatStringInterner::Find, so a
/// view over an exported table returns exactly the ids the interner
/// would.
///
/// A default-constructed view is empty and answers Find() == -1.
class StringTableView {
 public:
  StringTableView() = default;

  /// Binds the view. The caller must have checked the O(1) shape
  /// invariants (slot count a nonzero power of two, key_count <
  /// slot_count); per-entry integrity is enforced lazily by the guarded
  /// probe, or eagerly via Validate() on deep-verification paths.
  StringTableView(const PackedStringSlot* slots, size_t slot_count,
                  const PackedStringKey* keys, size_t key_count,
                  const char* arena, size_t arena_bytes)
      : slots_(slots),
        mask_(slot_count - 1),
        keys_(keys),
        key_count_(key_count),
        arena_(arena),
        arena_bytes_(arena_bytes) {
    PAE_DCHECK_GT(slot_count, 0u);
    PAE_DCHECK_EQ(slot_count & (slot_count - 1), 0u);
    PAE_DCHECK_LT(key_count, slot_count);
  }

  /// Deep validation of an untrusted packed table: slot count is a
  /// power of two with at least one free slot (probe termination), every
  /// slot id is -1 or a valid key index, the number of occupied slots
  /// matches the key count, and every key reference lies inside the
  /// arena. O(slots + keys) — run on pack, `pae-model-pack --check`, and
  /// checksum-verified opens. The serving open skips it: the guarded
  /// probe in Find()/key() enforces the same never-read-outside-the-
  /// mapping guarantee per query, so binding is O(1) in the model size.
  static Status Validate(const PackedStringSlot* slots, size_t slot_count,
                         const PackedStringKey* keys, size_t key_count,
                         size_t arena_bytes);

  /// Returns the id for `key` or -1 if absent. Never allocates.
  ///
  /// The probe is guarded: the probe count is capped at the table size,
  /// a slot id outside [0, key_count) answers like a miss, and a key
  /// whose (offset, length) extent leaves the arena answers like a
  /// miss. Every query is therefore memory-safe even over a corrupt
  /// table — no read can leave [slots, keys, arena] — which is what
  /// lets the serving open bind a mapped table after O(1) shape checks
  /// instead of the O(table) Validate() sweep. For a well-formed table
  /// none of the guards ever fires, so ids match FlatStringInterner
  /// exactly.
  int Find(std::string_view key) const {
    if (slots_ == nullptr) return -1;
    const uint64_t hash = FlatStringInterner::Hash(key);
    size_t slot = hash & mask_;
    for (size_t probes = 0; probes <= mask_; ++probes) {
      const int32_t id = slots_[slot].id;
      if (id < 0) return -1;
      if (slots_[slot].hash == hash) {
        if (static_cast<size_t>(id) >= key_count_) return -1;  // corrupt id
        const PackedStringKey& ref = keys_[static_cast<size_t>(id)];
        if (ref.offset > arena_bytes_ ||
            ref.length > arena_bytes_ - ref.offset) {
          return -1;  // corrupt extent
        }
        if (ref.length == key.size() &&
            (ref.length == 0 ||
             std::memcmp(arena_ + ref.offset, key.data(), ref.length) == 0)) {
          return id;
        }
      }
      slot = (slot + 1) & mask_;
    }
    return -1;  // full table (corrupt): probe cap reached
  }

  bool Contains(std::string_view key) const { return Find(key) >= 0; }

  /// The key for `id`; a view into the mapped arena, valid while the
  /// mapping owner is alive. Same guard as Find(): a corrupt extent
  /// yields an empty view rather than a read outside the arena.
  std::string_view key(int id) const {
    PAE_DCHECK_GE(id, 0);
    PAE_DCHECK_LT(static_cast<size_t>(id), key_count_);
    const PackedStringKey& ref = keys_[static_cast<size_t>(id)];
    if (ref.offset > arena_bytes_ || ref.length > arena_bytes_ - ref.offset) {
      return std::string_view();
    }
    return std::string_view(arena_ + ref.offset, ref.length);
  }

  size_t size() const { return key_count_; }
  bool empty() const { return key_count_ == 0; }
  bool bound() const { return slots_ != nullptr; }

 private:
  const PackedStringSlot* slots_ = nullptr;
  size_t mask_ = 0;
  const PackedStringKey* keys_ = nullptr;
  size_t key_count_ = 0;
  const char* arena_ = nullptr;
  size_t arena_bytes_ = 0;
};

inline int FlatStringInterner::Find(std::string_view key) const {
  // Probe-termination invariant: the table always keeps free slots
  // (load factor <= 7/8), so the linear probe below cannot spin.
  PAE_DCHECK_LT(keys_.size(), slots_.size());
  PAE_DCHECK_EQ(mask_, slots_.size() - 1);
  const uint64_t hash = Hash(key);
  size_t slot = hash & mask_;
  while (slots_[slot].id != kEmpty) {
    if (slots_[slot].hash == hash) {
      const auto& [ptr, len] = keys_[static_cast<size_t>(slots_[slot].id)];
      if (len == key.size() &&
          (len == 0 || std::memcmp(ptr, key.data(), len) == 0)) {
        return slots_[slot].id;
      }
    }
    slot = (slot + 1) & mask_;
  }
  return -1;
}

}  // namespace pae::util

#endif  // PAE_UTIL_INTERNER_H_
