#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "util/metrics.h"

namespace pae::util {

namespace {

/// Pool utilization telemetry (one set of global counters; pools are
/// created and destroyed per pipeline stage). `busy_nanos` sums the time
/// threads spent executing chunks, `wall_nanos` sums each job's
/// caller-observed wall time, and `idle_nanos` is the per-job gap
/// wall × threads − busy — the time workers waited instead of working.
struct PoolCounters {
  Counter* jobs;
  Counter* chunks;
  Counter* busy_nanos;
  Counter* wall_nanos;
  Counter* idle_nanos;

  static const PoolCounters& Get() {
    static const PoolCounters counters = [] {
      MetricsRegistry& registry = MetricsRegistry::Global();
      return PoolCounters{registry.GetCounter("threadpool.jobs"),
                          registry.GetCounter("threadpool.chunks"),
                          registry.GetCounter("threadpool.busy_nanos"),
                          registry.GetCounter("threadpool.wall_nanos"),
                          registry.GetCounter("threadpool.idle_nanos")};
    }();
    return counters;
  }
};

int64_t ElapsedNanos(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

ThreadPool::ThreadPool(int threads) : num_threads_(std::max(1, threads)) {
  MetricsRegistry::Global()
      .GetGauge("threadpool.threads")
      ->Set(static_cast<double>(num_threads_));
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stop_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::DefaultThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

int ThreadPool::ResolveThreads(int configured) {
  if (configured == 0) return DefaultThreads();
  return std::max(1, configured);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = (n + grain - 1) / grain;
  job->fn = &fn;

  const bool record = MetricsRegistry::Global().enabled();
  const auto start = record ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point();

  if (workers_.empty() || job->num_chunks == 1) {
    // Inline path: same chunk decomposition, same (trivial) order.
    RunChunks(job.get());
  } else {
    {
      MutexLock lock(mutex_);
      job_ = job;
      ++epoch_;
    }
    wake_.NotifyAll();
    RunChunks(job.get());  // the caller is a worker too
    {
      MutexLock lock(mutex_);
      while (job->chunks_done.load(std::memory_order_acquire) !=
             job->num_chunks) {
        done_.Wait(mutex_);
      }
      if (job_ == job) job_.reset();
    }
  }
  if (record) {
    const PoolCounters& counters = PoolCounters::Get();
    const int64_t wall = ElapsedNanos(start);
    const int64_t busy = job->busy_nanos.load(std::memory_order_relaxed);
    counters.jobs->Increment();
    counters.chunks->Add(static_cast<int64_t>(job->num_chunks));
    counters.wall_nanos->Add(wall);
    counters.busy_nanos->Add(busy);
    counters.idle_nanos->Add(
        std::max<int64_t>(0, wall * num_threads_ - busy));
  }
  // Every chunk has joined, so the error fields are quiescent; the lock
  // is uncontended and keeps the annotated discipline airtight.
  std::exception_ptr error;
  {
    MutexLock lock(job->error_mutex);
    error = job->error;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::RunChunks(Job* job) {
  const bool record = MetricsRegistry::Global().enabled();
  const auto start = record ? std::chrono::steady_clock::now()
                            : std::chrono::steady_clock::time_point();
  while (true) {
    const size_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) break;
    const size_t lo = job->begin + c * job->grain;
    const size_t hi = std::min(job->end, lo + job->grain);
    try {
      for (size_t i = lo; i < hi; ++i) (*job->fn)(i);
    } catch (...) {
      MutexLock lock(job->error_mutex);
      if (c < job->error_chunk) {
        job->error_chunk = c;
        job->error = std::current_exception();
      }
    }
    const size_t done =
        job->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == job->num_chunks) {
      // Lock before notifying so the caller cannot check the predicate
      // between our increment and our notify and then sleep forever.
      { MutexLock lock(mutex_); }
      done_.NotifyAll();
    }
  }
  if (record) {
    job->busy_nanos.fetch_add(ElapsedNanos(start), std::memory_order_relaxed);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(mutex_);
      while (!stop_ && (job_ == nullptr || epoch_ == seen_epoch)) {
        wake_.Wait(mutex_);
      }
      if (stop_) return;
      job = job_;
      seen_epoch = epoch_;
    }
    RunChunks(job.get());
  }
}

}  // namespace pae::util
