#include "util/thread_pool.h"

#include <algorithm>

namespace pae::util {

ThreadPool::ThreadPool(int threads) : num_threads_(std::max(1, threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::DefaultThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

int ThreadPool::ResolveThreads(int configured) {
  if (configured == 0) return DefaultThreads();
  return std::max(1, configured);
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const size_t n = end - begin;

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = (n + grain - 1) / grain;
  job->fn = &fn;

  if (workers_.empty() || job->num_chunks == 1) {
    // Inline path: same chunk decomposition, same (trivial) order.
    RunChunks(job.get());
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = job;
      ++epoch_;
    }
    wake_.notify_all();
    RunChunks(job.get());  // the caller is a worker too
    {
      std::unique_lock<std::mutex> lock(mutex_);
      done_.wait(lock, [&] {
        return job->chunks_done.load(std::memory_order_acquire) ==
               job->num_chunks;
      });
      if (job_ == job) job_.reset();
    }
  }
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::RunChunks(Job* job) {
  while (true) {
    const size_t c = job->next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job->num_chunks) return;
    const size_t lo = job->begin + c * job->grain;
    const size_t hi = std::min(job->end, lo + job->grain);
    try {
      for (size_t i = lo; i < hi; ++i) (*job->fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job->error_mutex);
      if (c < job->error_chunk) {
        job->error_chunk = c;
        job->error = std::current_exception();
      }
    }
    const size_t done =
        job->chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (done == job->num_chunks) {
      // Lock before notifying so the caller cannot check the predicate
      // between our increment and our notify and then sleep forever.
      { std::lock_guard<std::mutex> lock(mutex_); }
      done_.notify_all();
    }
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_epoch = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      job = job_;
      seen_epoch = epoch_;
    }
    RunChunks(job.get());
  }
}

}  // namespace pae::util
