#ifndef PAE_UTIL_THREAD_ANNOTATIONS_H_
#define PAE_UTIL_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attributes, spelled the way this project
// uses them. Under Clang with -Wthread-safety these turn lock-discipline
// violations (touching PAE_GUARDED_BY state without the mutex, releasing
// a mutex twice, calling a PAE_REQUIRES function unlocked) into
// compile-time diagnostics; the CI clang leg builds with
// -Wthread-safety -Werror so they fail the build. On every other
// compiler the macros expand to nothing, so GCC builds are unaffected.
//
// The vocabulary (mirrors the official clang attribute set):
//
//   PAE_CAPABILITY(name)      class is a lockable capability (pae::util::Mutex)
//   PAE_SCOPED_CAPABILITY     RAII class that acquires in its constructor
//                             and releases in its destructor (MutexLock)
//   PAE_GUARDED_BY(mu)        field may only be read/written holding `mu`
//   PAE_PT_GUARDED_BY(mu)     pointee guarded by `mu` (pointer itself free)
//   PAE_REQUIRES(mu)          caller must hold `mu` to call this function
//   PAE_ACQUIRE(mu)           function acquires `mu` and does not release
//   PAE_RELEASE(mu)           function releases `mu`
//   PAE_TRY_ACQUIRE(ok, mu)   acquires `mu` iff the return value is `ok`
//   PAE_EXCLUDES(mu)          caller must NOT already hold `mu` (deadlock
//                             guard on self-locking public APIs)
//   PAE_ASSERT_CAPABILITY(mu) runtime assertion that `mu` is held
//   PAE_RETURN_CAPABILITY(mu) function returns a reference to `mu`
//   PAE_NO_THREAD_SAFETY_ANALYSIS
//                             opt a function out (last resort; say why)
//
// Use the pae::util::Mutex / MutexLock / CondVar wrappers (util/mutex.h)
// instead of std::mutex — the std types carry no annotations, so the
// analysis is blind to them (and pae_lint's raw-mutex rule rejects them
// outside src/util/).

#if defined(__clang__) && !defined(SWIG)
#define PAE_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define PAE_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op on non-Clang
#endif

#define PAE_CAPABILITY(x) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define PAE_SCOPED_CAPABILITY \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define PAE_GUARDED_BY(x) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PAE_PT_GUARDED_BY(x) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define PAE_ACQUIRED_BEFORE(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define PAE_ACQUIRED_AFTER(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define PAE_REQUIRES(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define PAE_REQUIRES_SHARED(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define PAE_ACQUIRE(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define PAE_ACQUIRE_SHARED(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define PAE_RELEASE(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define PAE_RELEASE_SHARED(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define PAE_TRY_ACQUIRE(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define PAE_EXCLUDES(...) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define PAE_ASSERT_CAPABILITY(x) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define PAE_RETURN_CAPABILITY(x) \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define PAE_NO_THREAD_SAFETY_ANALYSIS \
  PAE_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // PAE_UTIL_THREAD_ANNOTATIONS_H_
