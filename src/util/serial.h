#ifndef PAE_UTIL_SERIAL_H_
#define PAE_UTIL_SERIAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace pae {

/// Minimal binary serialization for model persistence. Fixed-width
/// little-endian scalars, length-prefixed strings and vectors, and a
/// magic+version header per file. Not an interchange format — models
/// are written and read by the same library version.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header.
  BinaryWriter(const std::string& path, uint32_t magic, uint32_t version);

  bool ok() const { return out_.good(); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s);
  void WriteDoubleVec(const std::vector<double>& v);
  void WriteFloatVec(const std::vector<float>& v);
  void WriteStringVec(const std::vector<std::string>& v);

  /// Flushes and reports the final state.
  Status Finish();

 private:
  void WriteRaw(const void* data, size_t size);
  std::ofstream out_;
  std::string path_;
};

/// Counterpart reader. Every Read* returns false once the stream is
/// bad; callers check ok()/status at the end (or per field).
class BinaryReader {
 public:
  /// Opens `path` and validates the header.
  BinaryReader(const std::string& path, uint32_t magic,
               uint32_t expected_version);

  bool ok() const { return good_ && in_.good(); }
  /// Error found while opening/validating (ok status if none).
  const Status& status() const { return status_; }

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadDouble(double* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadFloat(float* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadString(std::string* s);
  bool ReadDoubleVec(std::vector<double>* v);
  bool ReadFloatVec(std::vector<float>* v);
  bool ReadStringVec(std::vector<std::string>* v);

 private:
  bool ReadRaw(void* data, size_t size);
  std::ifstream in_;
  bool good_ = false;
  Status status_;
};

}  // namespace pae

#endif  // PAE_UTIL_SERIAL_H_
