#ifndef PAE_UTIL_SERIAL_H_
#define PAE_UTIL_SERIAL_H_

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "util/status.h"

namespace pae {

/// Hard ceiling on the element count of any serialized string or vector
/// (2^28). The reader rejects corrupt length words above it instead of
/// attempting an absurd allocation, and the writer refuses to emit a
/// container it knows the reader could never accept — which also rules
/// out the silent size_t → uint32_t length truncation a >4 GiB payload
/// would otherwise suffer.
inline constexpr uint32_t kMaxSerialElements = 1u << 28;

/// Minimal binary serialization for model persistence. Fixed-width
/// little-endian scalars, length-prefixed strings and vectors, and a
/// magic+version header per file. Not an interchange format — models
/// are written and read by the same library version.
class BinaryWriter {
 public:
  /// Opens `path` for writing and emits the header.
  BinaryWriter(const std::string& path, uint32_t magic, uint32_t version);

  bool ok() const { return status_.ok() && out_.good(); }

  void WriteU32(uint32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { WriteRaw(&v, sizeof(v)); }
  void WriteDouble(double v) { WriteRaw(&v, sizeof(v)); }
  void WriteFloat(float v) { WriteRaw(&v, sizeof(v)); }
  void WriteString(const std::string& s);
  void WriteDoubleVec(const std::vector<double>& v);
  void WriteFloatVec(const std::vector<float>& v);
  void WriteStringVec(const std::vector<std::string>& v);

  /// Flushes and reports the final state. Oversize containers
  /// (> kMaxSerialElements) latch an OutOfRange error here; nothing is
  /// written for them, so a truncated length can never reach disk.
  Status Finish();

 private:
  bool CheckLength(size_t size, const char* what);
  void WriteRaw(const void* data, size_t size);
  std::ofstream out_;
  std::string path_;
  Status status_;
};

/// Counterpart reader. Every Read* returns false once the stream is bad
/// or a length word is corrupt, and every failure latches a non-Ok
/// status(): a corrupt file can never read back as Ok.
class BinaryReader {
 public:
  /// Opens `path` and validates the header.
  BinaryReader(const std::string& path, uint32_t magic,
               uint32_t expected_version);

  bool ok() const { return good_ && in_.good(); }
  /// First error encountered while opening, validating, or reading
  /// (Ok status if none).
  const Status& status() const { return status_; }

  bool ReadU32(uint32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadDouble(double* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadFloat(float* v) { return ReadRaw(v, sizeof(*v)); }
  bool ReadString(std::string* s);
  bool ReadDoubleVec(std::vector<double>* v);
  bool ReadFloatVec(std::vector<float>* v);
  bool ReadStringVec(std::vector<std::string>* v);

 private:
  bool ReadRaw(void* data, size_t size);
  /// Reads a length word and validates it against kMaxSerialElements;
  /// a corrupt length fails the reader with OutOfRange.
  bool ReadLength(uint32_t* size, const char* what);
  std::ifstream in_;
  bool good_ = false;
  Status status_;
};

}  // namespace pae

#endif  // PAE_UTIL_SERIAL_H_
