#include "util/serial.h"

namespace pae {

BinaryWriter::BinaryWriter(const std::string& path, uint32_t magic,
                           uint32_t version)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path) {
  WriteU32(magic);
  WriteU32(version);
}

void BinaryWriter::WriteRaw(const void* data, size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
}

bool BinaryWriter::CheckLength(size_t size, const char* what) {
  if (size <= kMaxSerialElements) return true;
  if (status_.ok()) {
    status_ = Status::OutOfRange(
        path_ + ": refusing to serialize " + what + " of " +
        std::to_string(size) + " elements (limit " +
        std::to_string(kMaxSerialElements) +
        "); the length word would be unreadable");
  }
  return false;
}

void BinaryWriter::WriteString(const std::string& s) {
  if (!CheckLength(s.size(), "string")) return;
  WriteU32(static_cast<uint32_t>(s.size()));
  WriteRaw(s.data(), s.size());
}

void BinaryWriter::WriteDoubleVec(const std::vector<double>& v) {
  if (!CheckLength(v.size(), "double vector")) return;
  WriteU32(static_cast<uint32_t>(v.size()));
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(double));
}

void BinaryWriter::WriteFloatVec(const std::vector<float>& v) {
  if (!CheckLength(v.size(), "float vector")) return;
  WriteU32(static_cast<uint32_t>(v.size()));
  if (!v.empty()) WriteRaw(v.data(), v.size() * sizeof(float));
}

void BinaryWriter::WriteStringVec(const std::vector<std::string>& v) {
  if (!CheckLength(v.size(), "string vector")) return;
  WriteU32(static_cast<uint32_t>(v.size()));
  for (const std::string& s : v) WriteString(s);
}

Status BinaryWriter::Finish() {
  if (!status_.ok()) return status_;
  out_.flush();
  if (!out_.good()) {
    return Status::Internal("failed writing " + path_);
  }
  out_.close();
  return Status::Ok();
}

BinaryReader::BinaryReader(const std::string& path, uint32_t magic,
                           uint32_t expected_version)
    : in_(path, std::ios::binary) {
  if (!in_.good()) {
    status_ = Status::NotFound("cannot open " + path);
    return;
  }
  good_ = true;
  uint32_t file_magic = 0, version = 0;
  if (!ReadU32(&file_magic) || file_magic != magic) {
    good_ = false;
    status_ = Status::InvalidArgument(path + ": bad magic");
    return;
  }
  if (!ReadU32(&version) || version != expected_version) {
    good_ = false;
    status_ = Status::InvalidArgument(path + ": unsupported version");
  }
}

bool BinaryReader::ReadRaw(void* data, size_t size) {
  if (!good_) return false;
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in_.good()) {
    good_ = false;
    status_ = Status::OutOfRange("truncated model file");
  }
  return good_;
}

bool BinaryReader::ReadLength(uint32_t* size, const char* what) {
  if (!ReadU32(size)) return false;  // ReadRaw latched good_/status_
  if (*size > kMaxSerialElements) {
    good_ = false;
    status_ = Status::OutOfRange(
        std::string("corrupt ") + what + " length " + std::to_string(*size) +
        " (limit " + std::to_string(kMaxSerialElements) + ")");
    return false;
  }
  return true;
}

bool BinaryReader::ReadString(std::string* s) {
  uint32_t size = 0;
  if (!ReadLength(&size, "string")) return false;
  s->resize(size);
  return size == 0 || ReadRaw(s->data(), size);
}

bool BinaryReader::ReadDoubleVec(std::vector<double>* v) {
  uint32_t size = 0;
  if (!ReadLength(&size, "double vector")) return false;
  v->resize(size);
  return size == 0 || ReadRaw(v->data(), size * sizeof(double));
}

bool BinaryReader::ReadFloatVec(std::vector<float>* v) {
  uint32_t size = 0;
  if (!ReadLength(&size, "float vector")) return false;
  v->resize(size);
  return size == 0 || ReadRaw(v->data(), size * sizeof(float));
}

bool BinaryReader::ReadStringVec(std::vector<std::string>* v) {
  uint32_t size = 0;
  if (!ReadLength(&size, "string vector")) return false;
  v->clear();
  v->reserve(size);
  for (uint32_t i = 0; i < size; ++i) {
    std::string s;
    if (!ReadString(&s)) return false;
    v->push_back(std::move(s));
  }
  return true;
}

}  // namespace pae
